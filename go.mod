module somrm

go 1.22
