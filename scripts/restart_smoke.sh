#!/usr/bin/env bash
# Crash/restart smoke test: start somrm-serve with a persisted cache
# directory, record a healthy baseline, then kill -9 the replica in the
# middle of a fresh solve storm (leaving whatever journal tail the crash
# left behind) and restart it over the same directory. The warm replica
# must answer every baseline request byte-for-byte identically from the
# restored cache without re-entering the solver. Run via
# `make restart-smoke`.
set -euo pipefail

PORT="${SOMRM_SMOKE_PORT:-18741}"
URL="http://127.0.0.1:$PORT"

tmp="$(mktemp -d)"
pid=""
cleanup() {
  [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$tmp/somrm" ./cmd/somrm
go build -o "$tmp/somrm-serve" ./cmd/somrm-serve

cat >"$tmp/model.json" <<'EOF'
{
  "states": 3,
  "transitions": [
    {"from": 0, "to": 1, "rate": 2.0},
    {"from": 1, "to": 2, "rate": 1.0},
    {"from": 1, "to": 0, "rate": 3.0},
    {"from": 2, "to": 0, "rate": 0.5}
  ],
  "rates": [1.5, -0.5, 0.25],
  "variances": [0.2, 1.0, 0.5],
  "initial": [1, 0, 0]
}
EOF

CACHE_DIR="$tmp/cache"
mkdir -p "$CACHE_DIR"

start_server() {
  "$tmp/somrm-serve" -addr "127.0.0.1:$PORT" -workers 2 \
    -cache-persist "$CACHE_DIR" >>"$tmp/serve.log" 2>&1 &
  pid="$!"
  disown "$pid" # keep the shell's job notifications out of the output
  for _ in $(seq 1 100); do
    if curl -fsS "$URL/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "server never became healthy" >&2
  cat "$tmp/serve.log" >&2
  exit 1
}

metric() {
  curl -fsS "$URL/metrics" | tr ',{' '\n\n' | sed -n "s/.*\"$1\"://p"
}

solve() {
  "$tmp/somrm" -model "$tmp/model.json" -t "$1" -order 4 -bounds 0.5,1 -server "$URL"
}

start_server
echo "== server up with cache persistence under $CACHE_DIR"

# Healthy baseline: a handful of distinct solves, each journaled as it
# completes. Every later byte-comparison is against these files.
TIMES=(0.75 1.0 1.25 1.5 2.0)
for t in "${TIMES[@]}"; do
  solve "$t" >"$tmp/baseline-$t.txt"
done
echo "== baseline recorded (${#TIMES[@]} solves persisted)"

# Fresh storm + kill -9 mid-flight: new parameters keep journal appends
# in progress while the process dies, so the crash can leave a torn tail
# after the baseline entries. The recovery path must truncate whatever
# junk the crash left and still restore every verifiable entry.
for t in 3.0 3.25 3.5 3.75 4.0 4.25 4.5 4.75; do
  solve "$t" >/dev/null 2>&1 &
done
sleep 0.2
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
wait || true # let the storm clients fail out
pid=""
echo "== killed replica mid-storm (no shutdown, no journal compaction)"

start_server
restored="$(metric cache_restored_total)"
if [ -z "$restored" ] || [ "$restored" -lt "${#TIMES[@]}" ]; then
  echo "warm restart restored '$restored' cache entries, want >= ${#TIMES[@]}" >&2
  cat "$tmp/serve.log" >&2
  exit 1
fi
echo "== warm restart restored $restored cache entries"

for t in "${TIMES[@]}"; do
  solve "$t" >"$tmp/after-$t.txt"
  if ! cmp -s "$tmp/baseline-$t.txt" "$tmp/after-$t.txt"; then
    echo "restored result differs from healthy baseline at t=$t:" >&2
    diff "$tmp/baseline-$t.txt" "$tmp/after-$t.txt" >&2 || true
    exit 1
  fi
done

# Every baseline replay must have come from the restored cache: the warm
# replica's solver must not have run for them.
solves="$(metric solves)"
if [ "$solves" != "0" ]; then
  echo "warm replica re-solved $solves times; want 0 (all served from restored cache)" >&2
  exit 1
fi

echo "== restart smoke passed: $restored entries restored, ${#TIMES[@]} responses byte-identical, 0 re-solves"
