#!/usr/bin/env bash
# Cluster failover smoke test: start three somrm-serve replicas as a
# consistent-hash cluster, solve through the cluster-aware client, then
# kill replicas one at a time and assert the rerouted results are
# byte-for-byte identical to the healthy-cluster baseline. Run via
# `make cluster-smoke`.
set -euo pipefail

BASE_PORT="${SOMRM_SMOKE_PORT:-18731}"
PORTS=("$BASE_PORT" "$((BASE_PORT + 1))" "$((BASE_PORT + 2))")
URLS=()
for p in "${PORTS[@]}"; do
  URLS+=("http://127.0.0.1:$p")
done
LIST="${URLS[0]},${URLS[1]},${URLS[2]}"

tmp="$(mktemp -d)"
pids=()
cleanup() {
  for pid in "${pids[@]}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$tmp"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$tmp/somrm" ./cmd/somrm
go build -o "$tmp/somrm-serve" ./cmd/somrm-serve

cat >"$tmp/model.json" <<'EOF'
{
  "states": 3,
  "transitions": [
    {"from": 0, "to": 1, "rate": 2.0},
    {"from": 1, "to": 2, "rate": 1.0},
    {"from": 1, "to": 0, "rate": 3.0},
    {"from": 2, "to": 0, "rate": 0.5}
  ],
  "rates": [1.5, -0.5, 0.25],
  "variances": [0.2, 1.0, 0.5],
  "initial": [1, 0, 0]
}
EOF

echo "== starting ${#URLS[@]} replicas"
for i in "${!URLS[@]}"; do
  peers=""
  for j in "${!URLS[@]}"; do
    if [ "$i" != "$j" ]; then
      peers="${peers:+$peers,}${URLS[$j]}"
    fi
  done
  "$tmp/somrm-serve" -addr "127.0.0.1:${PORTS[$i]}" -workers 2 \
    -self "${URLS[$i]}" -peers "$peers" -probe-interval 250ms \
    >"$tmp/serve-$i.log" 2>&1 &
  pids+=("$!")
  disown "$!" # keep the shell's job notifications out of the output
done

for i in "${!URLS[@]}"; do
  for _ in $(seq 1 100); do
    if curl -fsS "${URLS[$i]}/healthz" >/dev/null 2>&1; then
      continue 2
    fi
    sleep 0.1
  done
  echo "replica $i never became healthy" >&2
  cat "$tmp/serve-$i.log" >&2
  exit 1
done
echo "== all replicas healthy"

solve() {
  "$tmp/somrm" -model "$tmp/model.json" -t 1.25 -order 4 -bounds 0.5,1 -server "$LIST"
}

solve >"$tmp/baseline.txt"
echo "== baseline recorded"

# The solve must have been routed to exactly one owner.
locals=0
for i in "${!URLS[@]}"; do
  n="$(curl -fsS "${URLS[$i]}/metrics" | tr ',{' '\n\n' | sed -n 's/.*"route_local_total"://p')"
  locals=$((locals + n))
done
if [ "$locals" -lt 1 ]; then
  echo "no replica counted the solve as locally owned" >&2
  exit 1
fi

# Kill replicas one at a time (covering whichever owns the model) and
# re-solve through the same cluster list: the failover result must be
# byte-for-byte identical.
for victim in 0 1; do
  kill -9 "${pids[$victim]}"
  wait "${pids[$victim]}" 2>/dev/null || true
  echo "== killed replica $victim, re-solving"
  solve >"$tmp/after-$victim.txt"
  if ! cmp -s "$tmp/baseline.txt" "$tmp/after-$victim.txt"; then
    echo "failover result differs from baseline after killing replica $victim:" >&2
    diff "$tmp/baseline.txt" "$tmp/after-$victim.txt" >&2 || true
    exit 1
  fi
done

echo "== cluster smoke passed: results byte-identical through two replica failures"
