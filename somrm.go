// Package somrm analyzes second-order Markov reward models: continuous-time
// Markov chains whose accumulated reward evolves as a Brownian motion with
// state-dependent drift r_i and variance sigma_i^2, after
//
//	G. Horváth, S. Rácz, M. Telek, "Analysis of Second-Order Markov Reward
//	Models", DSN 2004.
//
// The primary entry points are:
//
//   - NewModel / NewModelFromRates / OnOffModel construct models (Q, R, S, pi).
//   - Model.AccumulatedReward computes raw moments of the accumulated reward
//     B(t) with the paper's randomization method (Theorems 3-4), including
//     the provable truncation error bound of eq. (11).
//   - MomentsByODE integrates the moment ODE of Theorem 2 (the paper's
//     trapezoid-rule baseline).
//   - NewSimulator draws exact Monte Carlo trajectories (the paper's
//     simulation baseline).
//   - NewDistributionBounds turns computed moments into sharp
//     Chebyshev-Markov bounds on the reward distribution (Figures 5-7).
//   - NewTransformer evaluates/inverts the transform-domain descriptions of
//     eq. (2) and (5), and SolveDensityPDE solves the density PDE of eq. (4)
//     for small models.
//   - NewServer (and the cmd/somrm-serve binary) exposes the solvers as an
//     HTTP JSON service with a bounded worker pool, result caching,
//     prepared-model caching, in-flight request deduplication, and a batch
//     endpoint that solves whole time grids in one shared randomization
//     sweep; NewServerClient talks to it.
//
// The package is pure Go with no dependencies outside the standard library.
package somrm

import (
	"context"

	"somrm/internal/cluster"
	"somrm/internal/core"
	"somrm/internal/ctmc"
	"somrm/internal/laplace"
	"somrm/internal/models"
	"somrm/internal/momentbounds"
	"somrm/internal/odesolver"
	"somrm/internal/pde"
	"somrm/internal/resilience"
	"somrm/internal/server"
	"somrm/internal/sim"
	"somrm/internal/sparse"
	"somrm/internal/spec"
)

// Re-exported core types. See the internal packages for method-level
// documentation; every method is part of the public API surface.
type (
	// Model is a second-order Markov reward model (Q, R, S, pi).
	Model = core.Model
	// SolveOptions configures the randomization moment solver.
	SolveOptions = core.Options
	// Result holds accumulated-reward moments and solver statistics.
	Result = core.Result
	// SolveStats reports randomization work (q, qt, d, G, flops).
	SolveStats = core.Stats

	// Generator is a validated CTMC generator matrix.
	Generator = ctmc.Generator

	// Matrix is a compressed-sparse-row matrix used for generators and
	// impulse-reward matrices.
	Matrix = sparse.CSR
	// MatrixBuilder accumulates triplets into a Matrix.
	MatrixBuilder = sparse.Builder

	// Simulator draws Monte Carlo trajectories of a model.
	Simulator = sim.Simulator
	// SimEstimate holds Monte Carlo moment estimates with standard errors.
	SimEstimate = sim.Estimate
	// Trajectory is a jointly sampled state and reward path (Figure 1).
	Trajectory = sim.Trajectory
	// FirstPassage is one simulated completion-time replication.
	FirstPassage = sim.FirstPassage
	// PassageEstimate aggregates first-passage replications.
	PassageEstimate = sim.PassageEstimate

	// Asymptotics holds the long-run CLT parameters of the reward
	// (Model.LongRun).
	Asymptotics = core.Asymptotics
	// JointResult holds joint reward-state moments (Model.JointMoments).
	JointResult = core.JointResult
	// CompletionBound bounds the completion-time distribution
	// (Model.CompletionProbability).
	CompletionBound = core.CompletionBound

	// DistributionBounds computes sharp moment-based CDF bounds.
	DistributionBounds = momentbounds.Estimator
	// CDFBounds is a lower/upper bound pair for a CDF value.
	CDFBounds = momentbounds.Bounds
	// EdgeworthEstimate is a smooth Gram-Charlier density/CDF approximation
	// from moments (complementing the hard bounds).
	EdgeworthEstimate = momentbounds.EdgeworthEstimate

	// ODEOptions configures the ODE moment baseline.
	ODEOptions = odesolver.MomentOptions

	// Transformer evaluates transform-domain reward descriptions.
	Transformer = laplace.Transformer

	// PDEOptions configures the density PDE solver.
	PDEOptions = pde.Options
	// PDESolution is the PDE density on a grid.
	PDESolution = pde.Solution

	// Server is the solver HTTP service: a worker pool, result cache,
	// prepared-model cache, and request deduplication around the solvers
	// (see cmd/somrm-serve).
	Server = server.Server
	// ServerOptions configures NewServer.
	ServerOptions = server.Options
	// SolveRequest / SolveResponse are the POST /v1/solve wire types.
	SolveRequest  = server.SolveRequest
	SolveResponse = server.SolveResponse
	// BatchRequest / BatchResponse are the POST /v1/solve/batch wire types:
	// one model solved at many time grids, with per-item status (BatchItem,
	// BatchItemResult, BatchPoint).
	BatchRequest    = server.BatchRequest
	BatchResponse   = server.BatchResponse
	BatchItem       = server.BatchItem
	BatchItemResult = server.BatchItemResult
	BatchPoint      = server.BatchPoint
	// Client is an HTTP client for the solver service (Solve, SolveBatch,
	// Metrics, Health) with built-in retry/backoff and a circuit breaker.
	Client = server.Client
	// ClientOption configures NewServerClient (retry policy, budget,
	// breaker, transport).
	ClientOption = server.ClientOption
	// RetryPolicy is the client's exponential-backoff-with-full-jitter
	// schedule.
	RetryPolicy = resilience.RetryPolicy
	// RetryBudget is the client's token-bucket retry throttle.
	RetryBudget = resilience.Budget
	// BreakerConfig configures the client's sliding-window circuit breaker.
	BreakerConfig = resilience.BreakerConfig
	// BreakerStats counts breaker state transitions and rejections.
	BreakerStats = resilience.BreakerStats
	// ServerMetrics is the JSON document served at /metrics.
	ServerMetrics = server.MetricsSnapshot
	// FaultConfig / FaultInjector inject probabilistic faults (503s,
	// truncated responses, handler panics, latency) into a server handler
	// chain for chaos testing. Never enabled by default; see the
	// somrm-serve -fault-* flags.
	FaultConfig   = server.FaultConfig
	FaultInjector = server.FaultInjector

	// ClusterClient routes solves across a somrm-serve cluster: each
	// model is assigned to an owning replica on a consistent-hash ring
	// (maximizing that replica's cache hits) with failover along the ring
	// and a per-replica circuit breaker.
	ClusterClient = cluster.Client
	// ClusterOption configures NewClusterClient beyond the shared
	// ClientOptions (virtual nodes, probing, breaker config).
	ClusterOption = cluster.Option
	// ClusterNode is one replica of a solver cluster: a Server wired into
	// the ring with peer cache fill and drain handoff (see somrm-serve
	// -self/-peers).
	ClusterNode = cluster.Node
	// ClusterNodeOptions configures NewClusterNode.
	ClusterNodeOptions = cluster.NodeOptions
	// ClusterRing is the deterministic consistent-hash placement ring
	// shared by every replica and client.
	ClusterRing = cluster.Ring

	// PreparedModel is a model with its uniformized solver matrices
	// precomputed; repeated and multi-time solves against it skip the
	// model-only setup (PrepareModel).
	PreparedModel = core.Prepared

	// OnOffParams parameterizes the paper's ON-OFF multiplexer example.
	OnOffParams = models.OnOffParams
	// MultiprocessorParams parameterizes the repairable multiprocessor
	// performability model.
	MultiprocessorParams = models.MultiprocessorParams
	// QueueDrainParams parameterizes the two-mode queue drain model.
	QueueDrainParams = models.QueueDrainParams
)

// ODE integration methods for MomentsByODE.
const (
	ODEMethodHeun = odesolver.MethodHeun
	ODEMethodRK4  = odesolver.MethodRK4
	ODEMethodRK45 = odesolver.MethodRK45
)

// NewModel builds a second-order Markov reward model from a validated
// generator, per-state drifts, per-state variances, and an initial
// distribution.
func NewModel(gen *Generator, rates, variances, initial []float64) (*Model, error) {
	return core.New(gen, rates, variances, initial)
}

// NewFirstOrderModel builds an ordinary Markov reward model (variances all
// zero).
func NewFirstOrderModel(gen *Generator, rates, initial []float64) (*Model, error) {
	return core.NewFirstOrder(gen, rates, initial)
}

// NewModelFromRates builds a model from an off-diagonal rate function
// rate(i, j) over n states, plus drifts, variances and the initial
// distribution.
func NewModelFromRates(n int, rate func(i, j int) float64, rates, variances, initial []float64) (*Model, error) {
	gen, err := ctmc.NewGeneratorFromRates(n, rate)
	if err != nil {
		return nil, err
	}
	return core.New(gen, rates, variances, initial)
}

// NewGenerator validates a CSR rate matrix as a CTMC generator.
func NewGenerator(m *Matrix) (*Generator, error) { return ctmc.NewGenerator(m) }

// NewGeneratorFromDense validates a row-major dense rate matrix.
func NewGeneratorFromDense(n int, data []float64) (*Generator, error) {
	return ctmc.NewGeneratorFromDense(n, data)
}

// NewBirthDeathGenerator builds a birth-death generator from birth rates
// up[i] (i -> i+1) and death rates down[i] (i+1 -> i).
func NewBirthDeathGenerator(up, down []float64) (*Generator, error) {
	return ctmc.NewBirthDeath(up, down)
}

// NewMatrixBuilder returns a builder for a rows x cols sparse matrix.
func NewMatrixBuilder(rows, cols int) *MatrixBuilder { return sparse.NewBuilder(rows, cols) }

// UnitDistribution returns the distribution concentrated on state i.
func UnitDistribution(n, i int) ([]float64, error) { return ctmc.UnitDistribution(n, i) }

// MomentsByODE integrates the moment ODE system of Theorem 2 (eq. 6) as an
// independent baseline for Model.AccumulatedReward. It returns the raw
// moment vectors V^(0..order)(t) per initial state.
func MomentsByODE(m *Model, t float64, order int, opts *ODEOptions) ([][]float64, error) {
	return odesolver.MomentsByODE(m, t, order, opts)
}

// NewSimulator builds a Monte Carlo simulator with a deterministic seed.
func NewSimulator(m *Model, seed int64) (*Simulator, error) { return sim.New(m, seed) }

// NewDistributionBounds builds a moment-based distribution bound estimator
// from raw moments raw[j] = E[X^j] (raw[0] = 1). Feed it Result.Moments to
// bound the accumulated-reward distribution as in Figures 5-7.
func NewDistributionBounds(raw []float64) (*DistributionBounds, error) {
	return momentbounds.New(raw)
}

// NewEdgeworthEstimate builds a Gram-Charlier A density/CDF approximation
// from raw moments (order 3..6).
func NewEdgeworthEstimate(raw []float64, order int) (*EdgeworthEstimate, error) {
	return momentbounds.NewEdgeworth(raw, order)
}

// NewTransformer prepares transform-domain evaluation (eq. 2, 5) and
// Fourier/Gil-Pelaez distribution inversion for a small model.
func NewTransformer(m *Model) (*Transformer, error) { return laplace.NewTransformer(m) }

// SolveDensityPDE solves the density PDE of eq. (4) on a truncated grid.
func SolveDensityPDE(m *Model, t float64, opts *PDEOptions) (*PDESolution, error) {
	return pde.SolveDensity(m, t, opts)
}

// OnOffModel builds the paper's section-7 ON-OFF multiplexer model.
func OnOffModel(p OnOffParams) (*Model, error) { return models.OnOff(p) }

// OnOffPaperSmall returns the Table 1 parameters with the given variance.
func OnOffPaperSmall(sigma2 float64) OnOffParams { return models.PaperSmall(sigma2) }

// OnOffPaperLarge returns the Table 2 parameters (N = 200,000).
func OnOffPaperLarge() OnOffParams { return models.PaperLarge() }

// MultiprocessorModel builds the repairable multiprocessor performability
// model.
func MultiprocessorModel(p MultiprocessorParams) (*Model, error) {
	return models.Multiprocessor(p)
}

// QueueDrainModel builds the two-mode queue drain model with possibly
// negative net drifts.
func QueueDrainModel(p QueueDrainParams) (*Model, error) { return models.QueueDrain(p) }

// ParseModelJSON builds a model from the JSON interchange format shared
// with cmd/somrm (see internal/spec for the schema).
func ParseModelJSON(data []byte) (*Model, error) {
	parsed, err := spec.Parse(data)
	if err != nil {
		return nil, err
	}
	return parsed.Build()
}

// ModelToJSON renders a model in the JSON interchange format.
func ModelToJSON(m *Model) ([]byte, error) {
	s, err := spec.FromModel(m)
	if err != nil {
		return nil, err
	}
	return s.Encode()
}

// NewServer builds the solver HTTP service; mount Handler() on an
// http.Server and call Shutdown to drain (cmd/somrm-serve does both).
func NewServer(opts ServerOptions) *Server { return server.New(opts) }

// NewServerClient returns an HTTP client for a solver service rooted at
// baseURL (e.g. "http://localhost:8080"). By default transient failures
// (503s, connection errors, truncated responses) are retried with
// jittered exponential backoff under a retry budget and a sliding-window
// circuit breaker; options tune or disable each layer. Solves are
// idempotent by construction, so retries never duplicate work
// server-side beyond a cache hit. 4xx responses are never retried.
func NewServerClient(baseURL string, opts ...ClientOption) *Client {
	return server.NewClient(baseURL, opts...)
}

// NewClusterClient returns a client for a somrm-serve cluster given every
// replica's base URL (the same set each replica was started with).
// Requests route to the replica owning the model's canonical hash on the
// cluster's consistent-hash ring and fail over along the ring when that
// replica is down, tripped, or shedding; results are bitwise identical
// whichever replica answers. The ClientOptions apply to every per-replica
// client. A single URL behaves exactly like NewServerClient. Call Close
// to release the client when done.
func NewClusterClient(urls []string, opts ...ClientOption) *ClusterClient {
	return cluster.NewClient(urls, cluster.WithClientOptions(opts...))
}

// ErrNoReplicas is returned by a ClusterClient built with zero replica
// URLs (an empty or all-blank server list): no request can be routed.
var ErrNoReplicas = cluster.ErrNoReplicas

// NewClusterNode builds one replica of a solver cluster: a Server whose
// ownership, peer cache-fill, and drain-handoff hooks are wired to the
// cluster ring (cmd/somrm-serve does this for the -self/-peers flags).
func NewClusterNode(opts ClusterNodeOptions) (*ClusterNode, error) {
	return cluster.NewNode(opts)
}

// Client resilience options for NewServerClient.
var (
	// WithClientHTTP sets the HTTP transport.
	WithClientHTTP = server.WithHTTPClient
	// WithClientRetryPolicy overrides the backoff schedule.
	WithClientRetryPolicy = server.WithRetryPolicy
	// WithClientRetryBudget overrides the retry budget (max tokens,
	// deposit ratio per success).
	WithClientRetryBudget = server.WithRetryBudget
	// WithClientBreaker overrides the circuit-breaker configuration.
	WithClientBreaker = server.WithBreaker
	// WithoutClientBreaker disables the circuit breaker.
	WithoutClientBreaker = server.WithoutBreaker
	// WithoutClientRetry disables retries, the budget, and the breaker.
	WithoutClientRetry = server.WithoutRetry
)

// PrepareModel precomputes the uniformized solver matrices for m so that
// repeated solves (and multi-time grids via AccumulatedRewardAt) skip the
// model-only setup. The server threads all solves through an LRU of these.
func PrepareModel(m *Model) (*PreparedModel, error) { return core.Prepare(m) }

// AccumulatedRewardAt computes accumulated-reward moments at every time in
// times with one shared randomization sweep: the coefficient vectors of
// Theorem 4 are time-independent, so a grid of time points costs one sweep
// to the largest truncation depth instead of one sweep per point.
func AccumulatedRewardAt(m *Model, times []float64, order int, opts *SolveOptions) ([]*Result, error) {
	return m.AccumulatedRewardAt(times, order, opts)
}

// AccumulatedRewardWithContext computes accumulated-reward moments with
// cooperative cancellation: the randomization loop polls ctx and aborts
// with its error on cancellation or deadline expiry.
func AccumulatedRewardWithContext(ctx context.Context, m *Model, t float64, order int, opts *SolveOptions) (*Result, error) {
	return m.AccumulatedRewardContext(ctx, t, order, opts)
}

// Compose builds the joint model of two independent models with additive
// rewards (Kronecker-sum structure process). Products above the
// materialization threshold come back matrix-free: the joint generator
// exists only as its Kronecker-sum factors and the solver streams it in
// O(sum of factor sizes) memory.
func Compose(a, b *Model) (*Model, error) { return core.Compose(a, b) }

// ComposeAll folds Compose over a list of independent models.
func ComposeAll(models ...*Model) (*Model, error) { return core.ComposeAll(models...) }

// ErrComposeImpulse identifies the rejection of impulse-reward components
// in Compose/ComposeAll (wrapped in the model validation error), so
// callers — the HTTP server in particular — can classify it as invalid
// input rather than an internal failure.
var ErrComposeImpulse = core.ErrComposeImpulse

// RawToCentral converts raw moments (index 0 = 1) to central moments.
func RawToCentral(raw []float64) ([]float64, error) { return core.RawToCentral(raw) }

// RawToCumulants converts raw moments to cumulants (indices 1..n).
func RawToCumulants(raw []float64) ([]float64, error) { return core.RawToCumulants(raw) }
