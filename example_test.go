package somrm_test

import (
	"fmt"
	"log"

	"somrm"
)

// ExampleModel_AccumulatedReward computes moments of the accumulated
// reward of a two-mode server with the randomization method.
func ExampleModel_AccumulatedReward() {
	model, err := somrm.NewModelFromRates(2,
		func(i, j int) float64 {
			if i == 0 && j == 1 {
				return 0.4
			}
			if i == 1 && j == 0 {
				return 1.5
			}
			return 0
		},
		[]float64{2.0, 0.5}, // drifts
		[]float64{0.5, 1.5}, // variances
		[]float64{1, 0},
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := model.AccumulatedReward(2.0, 2, nil)
	if err != nil {
		log.Fatal(err)
	}
	mean, _ := res.Mean()
	variance, _ := res.Variance()
	fmt.Printf("mean=%.4f variance=%.4f\n", mean, variance)
	// Output: mean=3.5309 variance=1.7354
}

// ExampleNewDistributionBounds bounds the reward CDF from computed
// moments, the Figures 5-7 pipeline of the paper.
func ExampleNewDistributionBounds() {
	model, err := somrm.OnOffModel(somrm.OnOffPaperSmall(1))
	if err != nil {
		log.Fatal(err)
	}
	res, err := model.AccumulatedReward(0.5, 23, nil)
	if err != nil {
		log.Fatal(err)
	}
	bounds, err := somrm.NewDistributionBounds(res.Moments)
	if err != nil {
		log.Fatal(err)
	}
	b, err := bounds.CDFBounds(8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(B(0.5) <= 8) in [%.4f, %.4f]\n", b.Lower, b.Upper)
	// Output: P(B(0.5) <= 8) in [0.0343, 0.2020]
}

// ExampleModel_LongRun computes the CLT parameters of the reward.
func ExampleModel_LongRun() {
	model, err := somrm.NewModelFromRates(2,
		func(i, j int) float64 {
			if i != j {
				return 1
			}
			return 0
		},
		[]float64{3, 1},
		[]float64{0.5, 0.5},
		[]float64{1, 0},
	)
	if err != nil {
		log.Fatal(err)
	}
	asym, err := model.LongRun()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("B(t) ~ Normal(%.2f t, %.2f t) for large t\n", asym.MeanRate, asym.VarianceRate)
	// Output: B(t) ~ Normal(2.00 t, 1.50 t) for large t
}

// ExampleCompose builds a two-source system from independent components.
func ExampleCompose() {
	source := func() *somrm.Model {
		m, err := somrm.NewModelFromRates(2,
			func(i, j int) float64 {
				if i == 0 && j == 1 {
					return 3 // OFF -> ON
				}
				if i == 1 && j == 0 {
					return 4 // ON -> OFF
				}
				return 0
			},
			[]float64{0, 1},
			[]float64{0, 0.5},
			[]float64{1, 0},
		)
		if err != nil {
			log.Fatal(err)
		}
		return m
	}
	joint, err := somrm.Compose(source(), source())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("joint states: %d\n", joint.N())
	// Output: joint states: 4
}
