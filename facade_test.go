package somrm_test

import (
	"math"
	"strings"
	"testing"

	"somrm"
)

func TestFacadeModelCatalog(t *testing.T) {
	large := somrm.OnOffPaperLarge()
	if large.N != 200_000 || large.Sigma2 != 10 {
		t.Errorf("OnOffPaperLarge = %+v", large)
	}
	mp, err := somrm.MultiprocessorModel(somrm.MultiprocessorParams{
		P: 3, Lambda: 0.2, Mu: 1, Work: 1, Sigma2: 0.1,
	})
	if err != nil || mp.N() != 4 {
		t.Errorf("MultiprocessorModel: %v", err)
	}
}

func TestFacadeJSONRoundTrip(t *testing.T) {
	model, err := somrm.QueueDrainModel(somrm.QueueDrainParams{
		ArrivalRate: 1, FastRate: 2, SlowRate: 0.5,
		FailRate: 1, FixRate: 2, Sigma2Fast: 0.1, Sigma2Slow: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := somrm.ModelToJSON(model)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"transitions"`) {
		t.Errorf("JSON missing transitions: %s", data)
	}
	back, err := somrm.ParseModelJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := model.AccumulatedReward(1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := back.AccumulatedReward(1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j <= 2; j++ {
		if math.Abs(r1.Moments[j]-r2.Moments[j]) > 1e-13*(1+math.Abs(r1.Moments[j])) {
			t.Errorf("round-trip moment %d differs", j)
		}
	}
	if _, err := somrm.ParseModelJSON([]byte("{bad")); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestFacadeComposeAll(t *testing.T) {
	unit, err := somrm.NewModelFromRates(2, func(i, j int) float64 { return 1 },
		[]float64{0, 1}, []float64{0, 0.1}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	joint, err := somrm.ComposeAll(unit, unit, unit)
	if err != nil {
		t.Fatal(err)
	}
	if joint.N() != 8 {
		t.Errorf("ComposeAll states = %d", joint.N())
	}
}

func TestFacadeEdgeworth(t *testing.T) {
	model, err := somrm.OnOffModel(somrm.OnOffPaperSmall(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := model.AccumulatedReward(0.5, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := somrm.NewEdgeworthEstimate(res.Moments, 4)
	if err != nil {
		t.Fatal(err)
	}
	mean, err := res.Mean()
	if err != nil {
		t.Fatal(err)
	}
	c := e.CDF(mean)
	if c < 0.35 || c > 0.65 {
		t.Errorf("Edgeworth CDF at mean = %g", c)
	}
}

func TestFacadeODEMethodConstants(t *testing.T) {
	model, err := somrm.OnOffModel(somrm.OnOffPaperSmall(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []somrm.ODEOptions{
		{Method: somrm.ODEMethodHeun, Steps: 2000},
		{Method: somrm.ODEMethodRK45},
	} {
		method := method
		if _, err := somrm.MomentsByODE(model, 0.1, 1, &method); err != nil {
			t.Errorf("method %v: %v", method.Method, err)
		}
	}
}

func TestFacadeFirstPassage(t *testing.T) {
	model, err := somrm.QueueDrainModel(somrm.QueueDrainParams{
		ArrivalRate: 1, FastRate: 3, SlowRate: 0.5,
		FailRate: 1, FixRate: 2, Sigma2Fast: 0.3, Sigma2Slow: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := somrm.NewSimulator(model, 3)
	if err != nil {
		t.Fatal(err)
	}
	est, err := s.EstimateFirstPassage(1.0, 3.0, 1e-3, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if est.HitProbability <= 0 || est.HitProbability > 1 {
		t.Errorf("hit probability = %g", est.HitProbability)
	}
	cb, err := model.CompletionProbability(1.0, 3.0, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if est.HitProbability+4*est.HitStdErr < cb.Lower {
		t.Errorf("passage %g below completion lower bound %g", est.HitProbability, cb.Lower)
	}
}

func TestFacadeIntervalAvailability(t *testing.T) {
	gen, err := somrm.NewBirthDeathGenerator([]float64{2}, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	pi, err := somrm.UnitDistribution(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	av, err := gen.IntervalAvailability(pi, []bool{false, true}, 4, 0.5, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if av <= 0.5 || av > 1 {
		t.Errorf("availability = %g for a mostly-up system", av)
	}
}

func TestFacadeJointMoments(t *testing.T) {
	model, err := somrm.OnOffModel(somrm.OnOffPaperSmall(1))
	if err != nil {
		t.Fatal(err)
	}
	joint, err := model.JointMoments(0.2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	marg, err := joint.Marginal(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := model.AccumulatedReward(0.2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(marg[0]-res.VectorMoments[1][0]) > 1e-8*(1+res.VectorMoments[1][0]) {
		t.Errorf("joint marginal %g vs vector solver %g", marg[0], res.VectorMoments[1][0])
	}
}

func TestFacadeTimeAveragedAndLongRun(t *testing.T) {
	model, err := somrm.OnOffModel(somrm.OnOffPaperSmall(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := model.AccumulatedReward(2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	avg, err := res.TimeAveraged()
	if err != nil {
		t.Fatal(err)
	}
	asym, err := model.LongRun()
	if err != nil {
		t.Fatal(err)
	}
	// At t=2 the time-averaged mean should be near (above) the long-run rate.
	if avg[1] < asym.MeanRate || avg[1] > 32 {
		t.Errorf("time-averaged mean %g vs long-run rate %g", avg[1], asym.MeanRate)
	}
}
