GO ?= go

.PHONY: all build test vet ci chaos cluster-smoke restart-smoke serve bench bench-server bench-batch bench-persist bench-sweep bench-sweep-smoke bench-check cover experiments fuzz clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The gate CI runs on every push: build, vet, the full test suite under
# the race detector, and the fuzz seed corpora as plain tests.
ci:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run Fuzz ./internal/spec/ ./internal/specfn/ ./internal/sparse/

# The resilience gate: chaos suite (fault injection against the real
# server: injected 503s, truncated responses, forced panics, a full
# outage and recovery) plus the hardening tests, under the race
# detector, repeated to shake out schedule-dependent bugs.
chaos:
	$(GO) vet ./internal/server/ ./internal/resilience/ ./internal/testutil/
	$(GO) test -race -run 'Chaos|Panic|Shed|Breaker|Hammer' -count=2 ./internal/server/ ./internal/resilience/

# The cluster failover smoke: three somrm-serve replicas on a
# consistent-hash ring, solved through the cluster client, with replicas
# killed one at a time — rerouted results must be byte-for-byte identical
# to the healthy baseline (see scripts/cluster_smoke.sh).
cluster-smoke:
	bash scripts/cluster_smoke.sh

# The crash/restart smoke: one somrm-serve replica with a persisted
# cache dir, killed -9 mid-storm and warm-restarted over the same dir —
# restored responses must be byte-identical to the healthy baseline with
# zero re-solves (see scripts/restart_smoke.sh).
restart-smoke:
	bash scripts/restart_smoke.sh

# Run the solver HTTP service (see README "Running the server").
serve:
	$(GO) run ./cmd/somrm-serve $(SERVE_FLAGS)

bench:
	$(GO) test -bench=. -benchmem ./...

# The serving baseline tracked in BENCHMARKS.md.
bench-server:
	$(GO) test -bench BenchmarkServerSolve -benchmem -run '^$$' ./internal/server

# The batch-vs-sequential comparison tracked in BENCHMARKS.md.
bench-batch:
	$(GO) test -bench BenchmarkBatchSolve -benchmem -run '^$$' ./internal/server

# The cache-persistence serving-cost comparison tracked in BENCHMARKS.md.
bench-persist:
	$(GO) test -bench BenchmarkServerPersist -benchmem -run '^$$' ./internal/server

# The randomization-sweep kernel comparison tracked in BENCHMARKS.md:
# serial reference vs the fused kernel at the paper's large-example shape,
# recorded as machine-readable JSON (name, ns/op, B/op, allocs/op, cores,
# commit) for committing and diffing across revisions.
bench-sweep:
	$(GO) test -bench BenchmarkSweep -benchmem -benchtime 10x -run '^$$' \
		-timeout 30m ./internal/core | $(GO) run ./cmd/benchjson -o BENCH_sweep.json
	@echo wrote BENCH_sweep.json

# Advisory perf-regression check: re-run the sweep benchmarks and diff
# against the committed BENCH_sweep.json baseline (>15% ns/op growth on
# any shared benchmark flags a regression). The leading `-` keeps the
# target advisory — timings are machine-dependent, so read the report
# instead of failing the build on it.
bench-check:
	$(GO) test -bench BenchmarkSweep -benchmem -benchtime 10x -run '^$$' \
		-timeout 30m ./internal/core | $(GO) run ./cmd/benchjson -o /tmp/somrm_bench_new.json
	-$(GO) run ./cmd/benchjson -compare BENCH_sweep.json /tmp/somrm_bench_new.json -tol 0.15

# CI smoke: one iteration per sweep benchmark, just to prove every kernel
# variant still runs end to end at the paper shape. Output is discarded.
bench-sweep-smoke:
	$(GO) test -bench BenchmarkSweep -benchtime 1x -run '^$$' \
		-timeout 30m ./internal/core | $(GO) run ./cmd/benchjson -o /dev/null

cover:
	$(GO) test -cover ./...

# Regenerate every paper table/figure (scaled fig8; use FULL=1 for N=200k).
experiments:
	$(GO) run ./cmd/somrm-experiments all $(if $(FULL),-full,)

fuzz:
	$(GO) test -fuzz FuzzBetaInc -fuzztime 30s ./internal/specfn/
	$(GO) test -fuzz FuzzParseBuild -fuzztime 30s ./internal/spec/
	$(GO) test -fuzz FuzzBandRoundTrip -fuzztime 30s ./internal/sparse/
	$(GO) test -fuzz FuzzQBDRoundTrip -fuzztime 30s ./internal/sparse/
	$(GO) test -fuzz FuzzKronSumMatVec -fuzztime 30s ./internal/sparse/

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
