GO ?= go

.PHONY: all build test vet bench cover experiments fuzz clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -cover ./...

# Regenerate every paper table/figure (scaled fig8; use FULL=1 for N=200k).
experiments:
	$(GO) run ./cmd/somrm-experiments all $(if $(FULL),-full,)

fuzz:
	$(GO) test -fuzz FuzzBetaInc -fuzztime 30s ./internal/specfn/
	$(GO) test -fuzz FuzzParseBuild -fuzztime 30s ./internal/spec/

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
