// Large model: the scaling story of section 7 (Table 2 / Figure 8). The
// randomization solver's cost is G sparse iterations of (m+2) vector
// products each; this example sweeps the ON-OFF model size from 1,000 to
// 50,000 sources and reports the measured cost next to the analytic
// prediction, demonstrating the linear-in-states complexity that lets the
// paper solve a 200,001-state second-order model.
package main

import (
	"fmt"
	"log"
	"time"

	"somrm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const t = 0.01
	fmt.Println("ON-OFF model scaling at t=0.01, eps=1e-9, moments up to order 3")
	fmt.Println()
	fmt.Println("N        states   q          qt      G     flops/iter   elapsed")
	for _, n := range []int{1_000, 5_000, 10_000, 50_000} {
		p := somrm.OnOffPaperLarge()
		p.N = n
		p.C = float64(n)
		model, err := somrm.OnOffModel(p)
		if err != nil {
			return err
		}
		start := time.Now()
		res, err := model.AccumulatedReward(t, 3, &somrm.SolveOptions{Epsilon: 1e-9})
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		fmt.Printf("%-8d %-8d %-10.0f %-7.0f %-5d %-12d %v\n",
			n, model.N(), res.Stats.Q, res.Stats.QT, res.Stats.G,
			res.Stats.FlopsPerIteration, elapsed.Round(time.Millisecond))
	}
	fmt.Println("\npaper reference: N=200,000, t=0.05 needs G=41,588 iterations of")
	fmt.Println("(3+1+1)*200,001*4 multiplications (once ~1h on 2004 hardware);")
	fmt.Println("run `somrm-experiments fig8 -full` to reproduce it.")
	return nil
}
