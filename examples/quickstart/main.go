// Quickstart: build a tiny second-order Markov reward model, compute
// moments of the accumulated reward with the randomization method, and
// cross-check against an exact Monte Carlo simulation.
//
// The model: a server alternating between a NORMAL mode (reward drift 2.0,
// variance 0.5) and a DEGRADED mode (drift 0.5, variance 1.5). The
// accumulated reward B(t) is the work done in (0, t); its randomness comes
// both from the mode switching and from the Brownian second-order noise.
package main

import (
	"fmt"
	"log"

	"somrm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Structure process: NORMAL (state 0) <-> DEGRADED (state 1).
	model, err := somrm.NewModelFromRates(2,
		func(i, j int) float64 {
			if i == 0 && j == 1 {
				return 0.4 // failure rate
			}
			if i == 1 && j == 0 {
				return 1.5 // recovery rate
			}
			return 0
		},
		[]float64{2.0, 0.5}, // reward drifts r_i
		[]float64{0.5, 1.5}, // reward variances sigma_i^2
		[]float64{1, 0},     // start in NORMAL
	)
	if err != nil {
		return err
	}

	// 2. Moments of the accumulated reward at a few horizons.
	fmt.Println("t      E[B]      Var[B]    skewness")
	for _, t := range []float64{0.5, 1, 2, 4} {
		res, err := model.AccumulatedReward(t, 3, nil)
		if err != nil {
			return err
		}
		mean, err := res.Mean()
		if err != nil {
			return err
		}
		variance, err := res.Variance()
		if err != nil {
			return err
		}
		skew, err := res.Skewness()
		if err != nil {
			return err
		}
		fmt.Printf("%-6g %-9.4f %-9.4f %-9.4f\n", t, mean, variance, skew)
	}

	// 3. Cross-check one horizon by simulation.
	simulator, err := somrm.NewSimulator(model, 1)
	if err != nil {
		return err
	}
	const t = 2.0
	res, err := model.AccumulatedReward(t, 2, nil)
	if err != nil {
		return err
	}
	est, err := simulator.EstimateMoments(t, 2, 50_000)
	if err != nil {
		return err
	}
	hw, err := est.HalfWidth95(1)
	if err != nil {
		return err
	}
	fmt.Printf("\nat t=%g: analytic mean %.4f, simulated %.4f +/- %.4f (95%%)\n",
		t, res.Moments[1], est.Moments[1], hw)
	fmt.Printf("solver work: G=%d iterations at uniformization rate q=%g\n",
		res.Stats.G, res.Stats.Q)
	return nil
}
