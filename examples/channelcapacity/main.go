// Channel capacity: the paper's section-7 workload. A channel of capacity
// C serves N ON-OFF sources with priority; the reward B(t) is the capacity
// left for best-effort (class 2) traffic over (0, t). The example shows how
// the second-order variance parameter changes the distribution of the
// available capacity even though the mean is unaffected — exactly the
// comparison of Figures 3 and 4.
package main

import (
	"fmt"
	"log"

	"somrm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const t = 0.5

	fmt.Println("ON-OFF multiplexer (C=32, N=32, alpha=4, beta=3, r=1), t = 0.5")
	fmt.Println()
	fmt.Println("sigma2   E[B]      StdDev[B]  skewness   G")

	for _, sigma2 := range []float64{0, 1, 10} {
		model, err := somrm.OnOffModel(somrm.OnOffPaperSmall(sigma2))
		if err != nil {
			return err
		}
		res, err := model.AccumulatedReward(t, 3, nil)
		if err != nil {
			return err
		}
		sd, err := res.StdDev()
		if err != nil {
			return err
		}
		skew, err := res.Skewness()
		if err != nil {
			return err
		}
		fmt.Printf("%-8g %-9.4f %-10.4f %-10.4f %d\n",
			sigma2, res.Moments[1], sd, skew, res.Stats.G)
	}

	// Dimensioning question: how much class-2 traffic can be admitted so
	// that the available capacity over (0, t) suffices with high
	// probability? Bound P(B(t) <= x) from the computed moments.
	fmt.Println("\nP(available capacity B(0.5) <= x), bounded from 23 moments:")
	model, err := somrm.OnOffModel(somrm.OnOffPaperSmall(10))
	if err != nil {
		return err
	}
	res, err := model.AccumulatedReward(t, 23, nil)
	if err != nil {
		return err
	}
	bounds, err := somrm.NewDistributionBounds(res.Moments)
	if err != nil {
		return err
	}
	for _, x := range []float64{8, 9, 10, 11, 12} {
		b, err := bounds.CDFBounds(x)
		if err != nil {
			return err
		}
		fmt.Printf("  x=%-4g  in [%.6f, %.6f]\n", x, b.Lower, b.Upper)
	}

	// The steady-state line of Figure 3 for reference.
	rate, err := model.SteadyStateMeanRate()
	if err != nil {
		return err
	}
	fmt.Printf("\nsteady-state available rate: %.4f per unit time (mean ~ %.4f at t=%g)\n",
		rate, rate*t, t)
	return nil
}
