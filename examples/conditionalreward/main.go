// Conditional performability: joint reward-state moments. For a degrading
// system the question is often not just "how much work was done in (0,t)"
// but "how much work was done on the runs that ended up degraded" — the
// joint moments E[B(t)^n 1{Z(t)=k}] answer it exactly. The example also
// demonstrates the law of total expectation as a built-in consistency
// check, and validates a conditional mean against filtered Monte Carlo.
package main

import (
	"fmt"
	"log"
	"math"

	"somrm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 3-state degradation chain: HEALTHY -> WORN -> FAILED (repairable).
	model, err := somrm.NewModelFromRates(3,
		func(i, j int) float64 {
			switch {
			case i == 0 && j == 1:
				return 0.8 // wear
			case i == 1 && j == 2:
				return 0.5 // failure
			case i == 1 && j == 0:
				return 1.0 // preventive maintenance
			case i == 2 && j == 0:
				return 2.0 // repair
			}
			return 0
		},
		[]float64{3, 1.5, 0},   // work rates
		[]float64{0.4, 0.8, 0}, // throughput noise
		[]float64{1, 0, 0},
	)
	if err != nil {
		return err
	}

	const t = 2.0
	joint, err := model.JointMoments(t, 2, nil)
	if err != nil {
		return err
	}

	names := []string{"HEALTHY", "WORN", "FAILED"}
	fmt.Printf("work done in (0, %g), by final state (started HEALTHY):\n\n", t)
	fmt.Println("final     P(Z(t)=k)   E[B | Z(t)=k]")
	var totalMean, totalMass float64
	for k := 0; k < 3; k++ {
		p, err := joint.At(0, 0, k)
		if err != nil {
			return err
		}
		cm, err := joint.ConditionalMean(0, k)
		if err != nil {
			return err
		}
		fmt.Printf("%-9s %.4f      %.4f\n", names[k], p, cm)
		totalMean += p * cm
		totalMass += p
	}

	res, err := model.AccumulatedReward(t, 1, nil)
	if err != nil {
		return err
	}
	fmt.Printf("\nlaw of total expectation: sum p_k E[B|k] = %.6f vs E[B] = %.6f\n",
		totalMean, res.Moments[1])

	// Monte Carlo check of one conditional mean: simulate, filter by final
	// state. The simulator does not expose the final state directly, so
	// use a trajectory sample.
	simulator, err := somrm.NewSimulator(model, 5)
	if err != nil {
		return err
	}
	const reps = 20_000
	var sum float64
	var hits int
	for r := 0; r < reps; r++ {
		tr, err := simulator.SampleTrajectory(t, t/200)
		if err != nil {
			return err
		}
		if tr.States[len(tr.States)-1] == 1 { // ended WORN
			sum += tr.Reward[len(tr.Reward)-1]
			hits++
		}
	}
	mcCond := sum / float64(hits)
	exact, err := joint.ConditionalMean(0, 1)
	if err != nil {
		return err
	}
	fmt.Printf("E[B | ended WORN]: analytic %.4f vs Monte Carlo %.4f (%d/%d paths)\n",
		exact, mcCond, hits, reps)
	if math.Abs(exact-mcCond) > 0.1 {
		return fmt.Errorf("conditional mean mismatch: %g vs %g", exact, mcCond)
	}
	return nil
}
