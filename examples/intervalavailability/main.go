// Interval availability: the fraction of (0, t) a repairable system is
// operational. The occupation time O(t) of the UP states is the
// accumulated reward of a first-order model with 0/1 rewards; this example
// computes its distribution three ways — the exact randomization/Beta
// algorithm on the structure chain, moment bounds from the reward solver,
// and Monte Carlo — and prints the classical interval-availability curve
// P(O(t)/t >= level).
package main

import (
	"fmt"
	"log"

	"somrm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 2-component system: UP states = at least one component running.
	// States: 0 = both up, 1 = one up, 2 = both down.
	const (
		lambda = 0.5 // per-component failure rate
		mu     = 2.0 // repair rate (single repairman)
	)
	gen, err := somrm.NewBirthDeathGenerator(
		[]float64{mu, mu},             // repairs: 2 down -> 1 down -> 0 down
		[]float64{lambda, 2 * lambda}, // failures
	)
	if err != nil {
		return err
	}
	// Birth-death state i = number of components UP (0..2); start both up.
	pi, err := somrm.UnitDistribution(3, 2)
	if err != nil {
		return err
	}
	operational := []bool{false, true, true}

	const t = 10.0
	fmt.Printf("2-component repairable system over (0, %g): P(uptime fraction >= a)\n\n", t)
	fmt.Println("a      exact (occupation)  moment bounds        Monte Carlo")

	// Reward model view: first-order model with reward 1 on UP states.
	rates := []float64{0, 1, 1}
	model, err := somrm.NewFirstOrderModel(gen, rates, pi)
	if err != nil {
		return err
	}
	res, err := model.AccumulatedReward(t, 16, nil)
	if err != nil {
		return err
	}
	bounds, err := somrm.NewDistributionBounds(res.Moments)
	if err != nil {
		return err
	}
	simulator, err := somrm.NewSimulator(model, 11)
	if err != nil {
		return err
	}
	const reps = 40_000

	for _, level := range []float64{0.90, 0.95, 0.98, 0.99} {
		exact, err := gen.IntervalAvailability(pi, operational, t, level, 1e-10)
		if err != nil {
			return err
		}
		tb, err := bounds.TailBounds(level * t)
		if err != nil {
			return err
		}
		var hit int
		for r := 0; r < reps; r++ {
			b, err := simulator.SampleReward(t)
			if err != nil {
				return err
			}
			if b >= level*t {
				hit++
			}
		}
		mc := float64(hit) / reps
		fmt.Printf("%.2f   %.6f            [%.4f, %.4f]     %.4f\n",
			level, exact, tb.Lower, tb.Upper, mc)
	}

	fmt.Println("\nthe exact column uses the uniformization/Beta-spacings algorithm")
	fmt.Println("(Generator.IntervalAvailability); the bounds use only 16 moments.")
	return nil
}
