// Distribution bounds: reproduce the Figure 5-7 pipeline end to end on a
// model with negative drift. A two-mode queue drain accumulates net work
// B(t) that can go negative in the degraded mode; the example computes
// moments with the randomization solver (which shifts negative drifts
// internally), bounds the CDF from those moments, and verifies against the
// Gil-Pelaez transform inversion and the PDE density solver — three
// independent distribution routes in one program.
package main

import (
	"fmt"
	"log"

	"somrm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	model, err := somrm.QueueDrainModel(somrm.QueueDrainParams{
		ArrivalRate: 2.0,
		FastRate:    3.0, // net drift +1 in fast mode
		SlowRate:    0.5, // net drift -1.5 in degraded mode
		FailRate:    0.8,
		FixRate:     2.0,
		Sigma2Fast:  0.4,
		Sigma2Slow:  1.2,
	})
	if err != nil {
		return err
	}
	const t = 2.0

	res, err := model.AccumulatedReward(t, 16, nil)
	if err != nil {
		return err
	}
	mean, err := res.Mean()
	if err != nil {
		return err
	}
	sd, err := res.StdDev()
	if err != nil {
		return err
	}
	fmt.Printf("net drained work at t=%g: mean %.4f, sd %.4f (drift shift applied: %g)\n",
		t, mean, sd, res.Stats.Shift)

	bounds, err := somrm.NewDistributionBounds(res.Moments)
	if err != nil {
		return err
	}
	edge, err := somrm.NewEdgeworthEstimate(res.Moments, 4)
	if err != nil {
		return err
	}
	tr, err := somrm.NewTransformer(model)
	if err != nil {
		return err
	}
	sol, err := somrm.SolveDensityPDE(model, t, nil)
	if err != nil {
		return err
	}
	pi := model.Initial()

	fmt.Println("\nx      moment bounds           Gil-Pelaez   PDE CDF   Edgeworth")
	for _, x := range []float64{mean - 2*sd, mean - sd, mean, mean + sd, mean + 2*sd} {
		b, err := bounds.CDFBounds(x)
		if err != nil {
			return err
		}
		cdf, err := tr.CDF(t, x, nil)
		if err != nil {
			return err
		}
		var gp, pd float64
		for i, p := range pi {
			gp += p * cdf[i]
			c, err := sol.CDFAt(i, x)
			if err != nil {
				return err
			}
			pd += p * c
		}
		fmt.Printf("%-6.2f [%.4f, %.4f]  %10.4f  %8.4f  %8.4f\n", x, b.Lower, b.Upper, gp, pd, edge.CDF(x))
	}
	fmt.Println("\nall distribution routes agree within the bound widths;")
	fmt.Println("the moment bounds are the only route that scales past ~100 states.")
	return nil
}
