// Reliability / performability: a repairable multiprocessor delivering
// noisy computational work. The reward B(t) is the amount of work completed
// in (0, t); processors fail and are repaired, and each processor's
// throughput carries second-order (Brownian) noise. The example also
// exercises the impulse-reward extension: each repair completion charges a
// fixed cost against the accumulated reward metric.
package main

import (
	"fmt"
	"log"

	"somrm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	base := somrm.MultiprocessorParams{
		P:      8,
		Lambda: 0.1, // failures per processor per unit time
		Mu:     2.0, // repairs per unit time (single repair facility)
		Work:   1.0, // work units per processor per unit time
		Sigma2: 0.3, // throughput noise per processor
	}

	fmt.Println("Repairable multiprocessor, P=8, lambda=0.1, mu=2, work=1, sigma2=0.3")
	fmt.Println()
	fmt.Println("t     E[work]   StdDev    P(work <= 0.9*E) bounds")
	for _, t := range []float64{1, 5, 10, 20} {
		model, err := somrm.MultiprocessorModel(base)
		if err != nil {
			return err
		}
		res, err := model.AccumulatedReward(t, 12, nil)
		if err != nil {
			return err
		}
		sd, err := res.StdDev()
		if err != nil {
			return err
		}
		bounds, err := somrm.NewDistributionBounds(res.Moments)
		if err != nil {
			return err
		}
		b, err := bounds.CDFBounds(0.9 * res.Moments[1])
		if err != nil {
			return err
		}
		fmt.Printf("%-5g %-9.3f %-9.3f [%.4f, %.4f]\n",
			t, res.Moments[1], sd, b.Lower, b.Upper)
	}

	// Impulse extension: charge 0.05 work units per repair completion.
	withCost := base
	withCost.RepairCost = 0.05
	plain, err := somrm.MultiprocessorModel(base)
	if err != nil {
		return err
	}
	charged, err := somrm.MultiprocessorModel(withCost)
	if err != nil {
		return err
	}
	const t = 10.0
	resPlain, err := plain.AccumulatedReward(t, 2, nil)
	if err != nil {
		return err
	}
	resCharged, err := charged.AccumulatedReward(t, 2, nil)
	if err != nil {
		return err
	}
	fmt.Printf("\nimpulse extension at t=%g: mean work %.4f plain vs %.4f with +0.05/repair\n",
		t, resPlain.Moments[1], resCharged.Moments[1])
	fmt.Printf("(difference %.4f ~ 0.05 x expected repair count)\n",
		resCharged.Moments[1]-resPlain.Moments[1])
	return nil
}
