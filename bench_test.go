package somrm_test

import (
	"strconv"
	"testing"

	"somrm"
	"somrm/internal/experiments"
)

// Benchmarks regenerating the paper's tables and figures. Each benchmark
// runs the same experiment code as cmd/somrm-experiments; see DESIGN.md for
// the experiment index and EXPERIMENTS.md for paper-vs-measured values.

// BenchmarkFig1SamplePath draws the Figure 1 joint state/reward trajectory.
func BenchmarkFig1SamplePath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1(2.5, 0.005, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3Mean regenerates the Figure 3 mean-reward series (three
// variance parameters over the default time grid).
func BenchmarkFig3Mean(b *testing.B) {
	times := experiments.DefaultTimes()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(times, 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Moments regenerates the Figure 4 2nd/3rd-moment series.
func BenchmarkFig4Moments(b *testing.B) {
	times := experiments.DefaultTimes()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(times, 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Bounds .. BenchmarkFig7Bounds regenerate the moment-based
// distribution bounds at t=0.5 for the three variance parameters.
func benchBounds(b *testing.B, sigma2 float64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FigBounds(sigma2, 0.5, 23, 41, 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Bounds(b *testing.B) { benchBounds(b, 0) }
func BenchmarkFig6Bounds(b *testing.B) { benchBounds(b, 1) }
func BenchmarkFig7Bounds(b *testing.B) { benchBounds(b, 10) }

// BenchmarkFig8Large runs the Table 2 / Figure 8 sweep on the scale-100
// model (N=2,000 sources; pass -full to cmd/somrm-experiments for the
// paper-size N=200,000 run).
func BenchmarkFig8Large(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FigLarge(100, 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrossCheckSolvers reproduces the section-7 validation run:
// randomization vs ODE vs simulation on the small model.
func BenchmarkCrossCheckSolvers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CrossCheck(1, 0.5, 3, 20_000, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Solver micro-benchmarks (the PERF row of the experiment index) ---

func smallModel(b *testing.B, sigma2 float64) *somrm.Model {
	b.Helper()
	m, err := somrm.OnOffModel(somrm.OnOffPaperSmall(sigma2))
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkRandomizationSmall times one moment solve of the Table 1 model
// (the paper reports well under a second per figure on 2004 hardware).
func BenchmarkRandomizationSmall(b *testing.B) {
	m := smallModel(b, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.AccumulatedReward(0.5, 3, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRandomizationHighOrder times the 23-moment solve behind the
// bound figures.
func BenchmarkRandomizationHighOrder(b *testing.B) {
	m := smallModel(b, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.AccumulatedReward(0.5, 23, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkODEBaseline times the trapezoid/RK4 baseline the paper compares
// against (same model and order as BenchmarkRandomizationSmall).
func BenchmarkODEBaseline(b *testing.B) {
	m := smallModel(b, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := somrm.MomentsByODE(m, 0.5, 3, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulationBaseline times the Monte Carlo baseline at 10k
// replications.
func BenchmarkSimulationBaseline(b *testing.B) {
	m := smallModel(b, 10)
	s, err := somrm.NewSimulator(m, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.EstimateMoments(0.5, 3, 10_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScalingStates measures the linear-in-states iteration cost on
// growing ON-OFF models (the complexity claim of section 6).
func BenchmarkScalingStates(b *testing.B) {
	for _, n := range []int{100, 1_000, 10_000} {
		p := somrm.OnOffPaperLarge()
		p.N = n
		p.C = float64(n)
		m, err := somrm.OnOffModel(p)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(byteCount(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.AccumulatedReward(0.01, 3, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScalingOrder measures the linear-in-order cost of computing
// more moments in one sweep.
func BenchmarkScalingOrder(b *testing.B) {
	m := smallModel(b, 10)
	for _, order := range []int{1, 4, 16} {
		order := order
		b.Run(byteCount(order), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.AccumulatedReward(0.5, order, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMultiTimeSweep vs BenchmarkPointwiseSweep: ablation for the
// shared-sweep multi-time solver (one U^(n)(k) recursion serving a whole
// time series, as used by the Figure 3/4 harness).
func BenchmarkMultiTimeSweep(b *testing.B) {
	m := smallModel(b, 10)
	times := experiments.DefaultTimes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.AccumulatedRewardAt(times, 3, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPointwiseSweep(b *testing.B) {
	m := smallModel(b, 10)
	times := experiments.DefaultTimes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range times {
			if _, err := m.AccumulatedReward(t, 3, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkDistributionBounds times the Figures 5-7 bound computation from
// precomputed moments.
func BenchmarkDistributionBounds(b *testing.B) {
	m := smallModel(b, 10)
	res, err := m.AccumulatedReward(0.5, 23, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est, err := somrm.NewDistributionBounds(res.Moments)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := est.CDFBounds(11.0); err != nil {
			b.Fatal(err)
		}
	}
}

func byteCount(n int) string {
	switch {
	case n >= 1_000_000:
		return strconv.Itoa(n/1_000_000) + "M"
	case n >= 1_000:
		return strconv.Itoa(n/1_000) + "k"
	default:
		return strconv.Itoa(n)
	}
}
