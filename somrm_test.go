package somrm_test

import (
	"math"
	"testing"

	"somrm"
)

// End-to-end through the public facade: build the paper's model, solve,
// cross-check with ODE and simulation, and bound the distribution.
func TestPublicAPIEndToEnd(t *testing.T) {
	model, err := somrm.OnOffModel(somrm.OnOffPaperSmall(1))
	if err != nil {
		t.Fatal(err)
	}
	const tt = 0.5
	res, err := model.AccumulatedReward(tt, 8, &somrm.SolveOptions{Epsilon: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	mean, err := res.Mean()
	if err != nil {
		t.Fatal(err)
	}
	if mean <= 0 || mean >= 32*tt {
		t.Errorf("mean = %g outside (0, %g)", mean, 32*tt)
	}

	vm, err := somrm.MomentsByODE(model, tt, 3, &somrm.ODEOptions{Method: somrm.ODEMethodRK4})
	if err != nil {
		t.Fatal(err)
	}
	pi := model.Initial()
	var odeMean float64
	for i, p := range pi {
		odeMean += p * vm[1][i]
	}
	if math.Abs(odeMean-mean) > 1e-7*(1+mean) {
		t.Errorf("ODE mean %g vs randomization %g", odeMean, mean)
	}

	s, err := somrm.NewSimulator(model, 17)
	if err != nil {
		t.Fatal(err)
	}
	est, err := s.EstimateMoments(tt, 1, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := est.HalfWidth95(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Moments[1]-mean) > hw/1.96*4 {
		t.Errorf("simulated mean %g vs analytic %g", est.Moments[1], mean)
	}

	bounds, err := somrm.NewDistributionBounds(res.Moments)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bounds.CDFBounds(mean)
	if err != nil {
		t.Fatal(err)
	}
	if !(b.Lower < 0.5 && 0.5 < b.Upper) {
		t.Errorf("bounds at the mean should straddle ~0.5: [%g, %g]", b.Lower, b.Upper)
	}
}

func TestPublicModelBuilders(t *testing.T) {
	gen, err := somrm.NewGeneratorFromDense(2, []float64{-1, 1, 2, -2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := somrm.NewModel(gen, []float64{1, 2}, []float64{0, 1}, []float64{1, 0}); err != nil {
		t.Errorf("NewModel: %v", err)
	}
	if _, err := somrm.NewFirstOrderModel(gen, []float64{1, 2}, []float64{1, 0}); err != nil {
		t.Errorf("NewFirstOrderModel: %v", err)
	}
	if _, err := somrm.NewModelFromRates(2, func(i, j int) float64 { return 1 },
		[]float64{1, 2}, []float64{0, 0}, []float64{0.5, 0.5}); err != nil {
		t.Errorf("NewModelFromRates: %v", err)
	}
	if _, err := somrm.NewBirthDeathGenerator([]float64{1}, []float64{2}); err != nil {
		t.Errorf("NewBirthDeathGenerator: %v", err)
	}
	b := somrm.NewMatrixBuilder(2, 2)
	if err := b.Add(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	if got := b.Build().At(0, 1); got != 3 {
		t.Errorf("builder At = %g", got)
	}
	pi, err := somrm.UnitDistribution(3, 2)
	if err != nil || pi[2] != 1 {
		t.Errorf("UnitDistribution: %v %v", pi, err)
	}
}

func TestPublicTransformAndPDE(t *testing.T) {
	model, err := somrm.QueueDrainModel(somrm.QueueDrainParams{
		ArrivalRate: 1, FastRate: 2, SlowRate: 0.5,
		FailRate: 1, FixRate: 2, Sigma2Fast: 0.3, Sigma2Slow: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := somrm.NewTransformer(model)
	if err != nil {
		t.Fatal(err)
	}
	const tt = 1.0
	cdf, err := tr.CDF(tt, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := somrm.SolveDensityPDE(model, tt, nil)
	if err != nil {
		t.Fatal(err)
	}
	pdeCDF, err := sol.CDFAt(0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cdf[0]-pdeCDF) > 0.02 {
		t.Errorf("Gil-Pelaez %g vs PDE %g", cdf[0], pdeCDF)
	}
}

func TestPublicMomentConversions(t *testing.T) {
	cm, err := somrm.RawToCentral([]float64{1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if cm[2] != 1 {
		t.Errorf("central m2 = %g, want 1", cm[2])
	}
	kappa, err := somrm.RawToCumulants([]float64{1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if kappa[1] != 2 || kappa[2] != 1 {
		t.Errorf("cumulants = %v", kappa)
	}
}
