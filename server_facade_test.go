package somrm_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"somrm"
)

// TestServerFacade exercises the public serving surface: NewServer,
// Handler, the wire types, and Shutdown.
func TestServerFacade(t *testing.T) {
	s := somrm.NewServer(somrm.ServerOptions{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"model": {"states": 2,
	  "transitions": [{"from":0,"to":1,"rate":0.4},{"from":1,"to":0,"rate":1.5}],
	  "rates": [2,0.5], "variances": [0.5,1.5], "initial": [1,0]},
	  "t": 10, "order": 2, "bounds_at": [15]}`
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out somrm.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Moments) != 3 || out.Moments[1] <= 0 {
		t.Errorf("bad moments: %v", out.Moments)
	}
	if len(out.Bounds) != 1 {
		t.Errorf("bounds missing: %+v", out.Bounds)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestAccumulatedRewardWithContext covers the facade cancellation helper.
func TestAccumulatedRewardWithContext(t *testing.T) {
	model, err := somrm.OnOffModel(somrm.OnOffPaperSmall(0.5))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := somrm.AccumulatedRewardWithContext(ctx, model, 1, 2, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	res, err := somrm.AccumulatedRewardWithContext(context.Background(), model, 1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Moments) != 3 {
		t.Fatalf("bad result: %+v", res)
	}
}
