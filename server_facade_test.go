package somrm_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"somrm"
)

// TestServerFacade exercises the public serving surface: NewServer,
// Handler, the wire types, and Shutdown.
func TestServerFacade(t *testing.T) {
	s := somrm.NewServer(somrm.ServerOptions{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"model": {"states": 2,
	  "transitions": [{"from":0,"to":1,"rate":0.4},{"from":1,"to":0,"rate":1.5}],
	  "rates": [2,0.5], "variances": [0.5,1.5], "initial": [1,0]},
	  "t": 10, "order": 2, "bounds_at": [15]}`
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out somrm.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Moments) != 3 || out.Moments[1] <= 0 {
		t.Errorf("bad moments: %v", out.Moments)
	}
	if len(out.Bounds) != 1 {
		t.Errorf("bounds missing: %+v", out.Bounds)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestAccumulatedRewardWithContext covers the facade cancellation helper.
func TestAccumulatedRewardWithContext(t *testing.T) {
	model, err := somrm.OnOffModel(somrm.OnOffPaperSmall(0.5))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := somrm.AccumulatedRewardWithContext(ctx, model, 1, 2, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	res, err := somrm.AccumulatedRewardWithContext(context.Background(), model, 1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Moments) != 3 {
		t.Fatalf("bad result: %+v", res)
	}
}

// TestBatchAndClientFacade exercises the batch wire types, the HTTP
// client, and the prepared-model helper through the public surface only.
func TestBatchAndClientFacade(t *testing.T) {
	s := somrm.NewServer(somrm.ServerOptions{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	model, err := somrm.OnOffModel(somrm.OnOffPaperSmall(0.5))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := somrm.ModelToJSON(model)
	if err != nil {
		t.Fatal(err)
	}
	// External callers name the model by its JSON interchange form.
	var sp somrm.BatchRequest
	body := `{"model": ` + string(raw) + `, "items": [{"times": [0.5, 1, 2], "order": 2}]}`
	if err := json.Unmarshal([]byte(body), &sp); err != nil {
		t.Fatal(err)
	}

	client := somrm.NewServerClient(ts.URL)
	if err := client.Health(context.Background()); err != nil {
		t.Fatalf("health: %v", err)
	}
	resp, err := client.SolveBatch(context.Background(), &sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 1 || resp.Items[0].Status != "ok" {
		t.Fatalf("bad batch response: %+v", resp.Items)
	}

	// The batch points must equal the prepared-model shared sweep exactly.
	prep, err := somrm.PrepareModel(model)
	if err != nil {
		t.Fatal(err)
	}
	want, err := prep.AccumulatedRewardAt([]float64{0.5, 1, 2}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, pt := range resp.Items[0].Points {
		for j := range pt.Moments {
			if pt.Moments[j] != want[k].Moments[j] {
				t.Errorf("point %d moment %d: %g want %g", k, j, pt.Moments[j], want[k].Moments[j])
			}
		}
	}

	snap, err := client.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.BatchRequests != 1 || snap.BatchItems.Sum != 1 {
		t.Errorf("batch metrics: %+v", snap)
	}
}

// TestAccumulatedRewardAtFacade covers the multi-time facade helper.
func TestAccumulatedRewardAtFacade(t *testing.T) {
	model, err := somrm.OnOffModel(somrm.OnOffPaperSmall(0.5))
	if err != nil {
		t.Fatal(err)
	}
	results, err := somrm.AccumulatedRewardAt(model, []float64{1, 2, 3}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("want 3 results, got %d", len(results))
	}
	single, err := model.AccumulatedReward(2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := range single.Moments {
		if results[1].Moments[j] != single.Moments[j] {
			t.Errorf("moment %d: grid %g vs single %g", j, results[1].Moments[j], single.Moments[j])
		}
	}
}
