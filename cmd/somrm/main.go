// Command somrm computes accumulated-reward moments (and optionally
// moment-based distribution bounds) for a second-order Markov reward model
// described by a JSON file.
//
// Model specification:
//
//	{
//	  "states": 2,
//	  "transitions": [{"from": 0, "to": 1, "rate": 2.0},
//	                  {"from": 1, "to": 0, "rate": 3.0}],
//	  "rates":     [1.5, -0.5],
//	  "variances": [0.2, 1.0],
//	  "initial":   [1, 0],
//	  "impulses":  [{"from": 0, "to": 1, "reward": 0.1}]
//	}
//
// Usage:
//
//	somrm -model model.json -t 1.0 -order 4 [-eps 1e-9] [-per-state] [-bounds x1,x2,...]
//	somrm -model model.json -times 0.5,1,2 -order 4   # CSV series, one shared sweep
//	somrm -model model.json -t 1.0 -server http://localhost:8639   # solve remotely
//	somrm -model model.json -t 1.0 -server http://a:8639,http://b:8639,http://c:8639
//
// With -server the model is shipped to a running somrm-serve instance:
// -times maps onto a single POST /v1/solve/batch (the whole grid shares
// one randomization sweep server-side), everything else onto POST
// /v1/solve. Output is identical to the in-process path. Transient
// failures (503s, connection errors) are retried with jittered
// exponential backoff behind a circuit breaker; tune with -retries,
// -retry-base, -retry-max, -no-breaker.
//
// A comma-separated -server list addresses a somrm-serve cluster: the
// request is routed to the replica owning the model's hash on the
// cluster's consistent-hash ring (maximizing cache hits) and fails over
// along the ring when that replica is unreachable. A single URL behaves
// exactly as before.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"somrm"
	"somrm/internal/report"
	"somrm/internal/spec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "somrm:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("somrm", flag.ContinueOnError)
	modelPath := fs.String("model", "", "path to the JSON model spec ('-' for stdin)")
	t := fs.Float64("t", 1, "accumulation time")
	order := fs.Int("order", 3, "highest moment order")
	eps := fs.Float64("eps", 1e-9, "randomization truncation accuracy")
	sweepWorkers := fs.Int("sweep-workers", 0, "randomization sweep parallelism: 0 auto, N forces a fused team of N, negative forces the serial reference sweep (all bitwise identical)")
	matrixFormat := fs.String("matrix-format", "", "sweep matrix storage: auto (default) picks band, qbd or compact CSR by structure; csr forces compact indices, band the band kernel, qbd the block-tridiagonal window, csr64 the original layout, kron the matrix-free Kronecker-sum operator for composed models (all bitwise identical)")
	temporalBlock := fs.Int("temporal-block", 0, "wavefront temporal blocking depth of the sweep: 0 auto-tunes from bandwidth and state size, 1 disables, N>=2 forces N iterations per cache-resident row block (all bitwise identical)")
	sweepTile := fs.Int("sweep-tile", 0, "row-tile width of the fused sweep kernels and block width of the temporally blocked driver; 0 keeps the built-in default (bitwise neutral)")
	noSIMD := fs.Bool("no-simd", false, "force the pure-Go scalar sweep kernels even on AVX2 hardware (bitwise identical; SOMRM_NOSIMD=1 does the same)")
	perState := fs.Bool("per-state", false, "print per-initial-state moment vectors")
	boundsAt := fs.String("bounds", "", "comma-separated reward levels for CDF bounds")
	timesAt := fs.String("times", "", "comma-separated time grid: emit a CSV moment series instead of a single point")
	serverURL := fs.String("server", "", "base URL of a somrm-serve instance (or a comma-separated cluster of them): solve there instead of in-process")
	retries := fs.Int("retries", 0, "with -server: total attempts per request, 1 disables retries (0 = default 4)")
	retryBase := fs.Duration("retry-base", 0, "with -server: base backoff delay (0 = default 50ms)")
	retryMax := fs.Duration("retry-max", 0, "with -server: backoff delay cap (0 = default 2s)")
	noBreaker := fs.Bool("no-breaker", false, "with -server: disable the client circuit breaker")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unknown subcommand or stray argument %q (somrm takes flags only)", fs.Arg(0))
	}
	if *modelPath == "" {
		fs.Usage()
		return fmt.Errorf("missing -model")
	}

	sp, err := loadSpec(*modelPath)
	if err != nil {
		return err
	}

	if *serverURL != "" {
		if *perState {
			return fmt.Errorf("-per-state is not available with -server (vector moments stay server-side)")
		}
		var clientOpts []somrm.ClientOption
		if *retries != 0 || *retryBase != 0 || *retryMax != 0 {
			clientOpts = append(clientOpts, somrm.WithClientRetryPolicy(somrm.RetryPolicy{
				MaxAttempts: *retries, BaseDelay: *retryBase, MaxDelay: *retryMax,
			}))
		}
		if *noBreaker {
			clientOpts = append(clientOpts, somrm.WithoutClientBreaker())
		}
		// A comma in -server selects the cluster client; a single URL keeps
		// the plain client, byte for byte.
		var client solverClient
		if strings.Contains(*serverURL, ",") {
			cc := somrm.NewClusterClient(splitURLs(*serverURL), clientOpts...)
			defer cc.Close()
			client = cc
		} else {
			client = somrm.NewServerClient(*serverURL, clientOpts...)
		}
		return runRemote(client, sp, *timesAt, *t, *order, *eps, *boundsAt, out)
	}

	model, err := sp.Build()
	if err != nil {
		return err
	}

	if *timesAt != "" {
		times, err := parseFloats(*timesAt)
		if err != nil {
			return fmt.Errorf("bad -times: %w", err)
		}
		results, err := model.AccumulatedRewardAt(times, *order, &somrm.SolveOptions{Epsilon: *eps, SweepWorkers: *sweepWorkers, MatrixFormat: *matrixFormat, TemporalBlock: *temporalBlock, SweepTile: *sweepTile, NoSIMD: *noSIMD})
		if err != nil {
			return err
		}
		return writeSeries(results, *order, out)
	}

	res, err := model.AccumulatedReward(*t, *order, &somrm.SolveOptions{Epsilon: *eps, SweepWorkers: *sweepWorkers, MatrixFormat: *matrixFormat, TemporalBlock: *temporalBlock, SweepTile: *sweepTile, NoSIMD: *noSIMD})
	if err != nil {
		return err
	}

	tab := report.NewTable(fmt.Sprintf("Moments of the accumulated reward at t=%g", *t), "order", "E[B^j]")
	for j := 0; j <= *order; j++ {
		if err := tab.AddFloatRow(strconv.Itoa(j), res.Moments[j]); err != nil {
			return err
		}
	}
	if err := tab.Render(out); err != nil {
		return err
	}
	fmt.Fprintf(out, "solver: q=%g qt=%g d=%g G=%d shift=%g error-bound=%.3g%s%s\n",
		res.Stats.Q, res.Stats.QT, res.Stats.D, res.Stats.G, res.Stats.Shift, res.Stats.ErrorBound,
		formatSuffix(res.Stats.MatrixFormat), kernelSuffix(res.Stats.SweepKernel))

	if *perState {
		head := []string{"state"}
		for j := 0; j <= *order; j++ {
			head = append(head, "j="+strconv.Itoa(j))
		}
		pt := report.NewTable("Per-initial-state moments", head...)
		for i := 0; i < model.N(); i++ {
			vals := make([]float64, *order+1)
			for j := 0; j <= *order; j++ {
				vals[j] = res.VectorMoments[j][i]
			}
			if err := pt.AddFloatRow(strconv.Itoa(i), vals...); err != nil {
				return err
			}
		}
		if err := pt.Render(out); err != nil {
			return err
		}
	}

	if *boundsAt != "" {
		est, err := somrm.NewDistributionBounds(res.Moments)
		if err != nil {
			return fmt.Errorf("distribution bounds: %w", err)
		}
		bt := report.NewTable(fmt.Sprintf("CDF bounds (usable moment depth %d)", 2*est.MaxNodes()),
			"x", "lower", "upper")
		for _, tok := range strings.Split(*boundsAt, ",") {
			x, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				return fmt.Errorf("bad bounds point %q: %w", tok, err)
			}
			b, err := est.CDFBounds(x)
			if err != nil {
				return err
			}
			if err := bt.AddFloatRow(report.FormatFloat(x), b.Lower, b.Upper); err != nil {
				return err
			}
		}
		if err := bt.Render(out); err != nil {
			return err
		}
	}
	return nil
}

// formatSuffix renders the resolved sweep matrix format for the solver
// stats line; older servers (and the serial reference path) leave it
// empty, in which case nothing is appended.
func formatSuffix(format string) string {
	if format == "" {
		return ""
	}
	return " format=" + format
}

// kernelSuffix renders the dispatched sweep compute kernel ("avx2" or
// "scalar") like formatSuffix; empty (no sweep ran, or an older server)
// appends nothing.
func kernelSuffix(kernel string) string {
	if kernel == "" {
		return ""
	}
	return " kernel=" + kernel
}

func loadSpec(path string) (*spec.Model, error) {
	var raw []byte
	var err error
	if path == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	return spec.Parse(raw)
}

func parseFloats(arg string) ([]float64, error) {
	var vals []float64
	for _, tok := range strings.Split(arg, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", tok, err)
		}
		vals = append(vals, v)
	}
	return vals, nil
}

// writeSeries emits one CSV row of moments per time point.
func writeSeries(results []*somrm.Result, order int, out io.Writer) error {
	headers := make([]string, 0, order+2)
	headers = append(headers, "t")
	for j := 0; j <= order; j++ {
		headers = append(headers, "m"+strconv.Itoa(j))
	}
	csv, err := report.NewCSV(out, headers...)
	if err != nil {
		return err
	}
	for _, res := range results {
		row := make([]float64, 0, order+2)
		row = append(row, res.T)
		row = append(row, res.Moments...)
		if err := csv.Row(row...); err != nil {
			return err
		}
	}
	return nil
}

// solverClient abstracts over the single-server client and the cluster
// client; both expose identical Solve/SolveBatch signatures.
type solverClient interface {
	Solve(ctx context.Context, req *somrm.SolveRequest) (*somrm.SolveResponse, error)
	SolveBatch(ctx context.Context, req *somrm.BatchRequest) (*somrm.BatchResponse, error)
}

// splitURLs parses a comma-separated URL list, dropping empty tokens.
func splitURLs(arg string) []string {
	var urls []string
	for _, tok := range strings.Split(arg, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			urls = append(urls, tok)
		}
	}
	return urls
}

// runRemote ships the model to a somrm-serve instance (or cluster). A
// -times grid maps onto one batch request so the whole series shares a
// single randomization sweep server-side; a single -t maps onto POST
// /v1/solve.
func runRemote(client solverClient, sp *spec.Model, timesArg string, t float64, order int, eps float64, boundsArg string, out io.Writer) error {
	ctx := context.Background()

	if timesArg != "" {
		times, err := parseFloats(timesArg)
		if err != nil {
			return fmt.Errorf("bad -times: %w", err)
		}
		resp, err := client.SolveBatch(ctx, &somrm.BatchRequest{
			Model: sp,
			Items: []somrm.BatchItem{{Times: times, Order: order, Epsilon: eps}},
		})
		if err != nil {
			return err
		}
		item := resp.Items[0]
		if item.Status != "ok" {
			return fmt.Errorf("server: %s", item.Error)
		}
		results := make([]*somrm.Result, len(item.Points))
		for i, pt := range item.Points {
			results[i] = &somrm.Result{T: pt.T, Moments: pt.Moments}
		}
		return writeSeries(results, order, out)
	}

	req := &somrm.SolveRequest{Model: sp, T: t, Order: order, Epsilon: eps}
	if boundsArg != "" {
		bounds, err := parseFloats(boundsArg)
		if err != nil {
			return fmt.Errorf("bad -bounds: %w", err)
		}
		req.BoundsAt = bounds
	}
	resp, err := client.Solve(ctx, req)
	if err != nil {
		return err
	}
	tab := report.NewTable(fmt.Sprintf("Moments of the accumulated reward at t=%g", t), "order", "E[B^j]")
	for j := 0; j <= order; j++ {
		if err := tab.AddFloatRow(strconv.Itoa(j), resp.Moments[j]); err != nil {
			return err
		}
	}
	if err := tab.Render(out); err != nil {
		return err
	}
	if st := resp.Stats; st != nil {
		fmt.Fprintf(out, "solver: q=%g qt=%g d=%g G=%d shift=%g error-bound=%.3g%s%s\n",
			st.Q, st.QT, st.D, st.G, st.Shift, st.ErrorBound,
			formatSuffix(st.MatrixFormat), kernelSuffix(st.SweepKernel))
	}
	if len(resp.Bounds) > 0 {
		bt := report.NewTable("CDF bounds", "x", "lower", "upper")
		for _, b := range resp.Bounds {
			if err := bt.AddFloatRow(report.FormatFloat(b.X), b.Lower, b.Upper); err != nil {
				return err
			}
		}
		if err := bt.Render(out); err != nil {
			return err
		}
	}
	return nil
}
