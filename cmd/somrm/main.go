// Command somrm computes accumulated-reward moments (and optionally
// moment-based distribution bounds) for a second-order Markov reward model
// described by a JSON file.
//
// Model specification:
//
//	{
//	  "states": 2,
//	  "transitions": [{"from": 0, "to": 1, "rate": 2.0},
//	                  {"from": 1, "to": 0, "rate": 3.0}],
//	  "rates":     [1.5, -0.5],
//	  "variances": [0.2, 1.0],
//	  "initial":   [1, 0],
//	  "impulses":  [{"from": 0, "to": 1, "reward": 0.1}]
//	}
//
// Usage:
//
//	somrm -model model.json -t 1.0 -order 4 [-eps 1e-9] [-per-state] [-bounds x1,x2,...]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"somrm"
	"somrm/internal/report"
	"somrm/internal/spec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "somrm:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("somrm", flag.ContinueOnError)
	modelPath := fs.String("model", "", "path to the JSON model spec ('-' for stdin)")
	t := fs.Float64("t", 1, "accumulation time")
	order := fs.Int("order", 3, "highest moment order")
	eps := fs.Float64("eps", 1e-9, "randomization truncation accuracy")
	perState := fs.Bool("per-state", false, "print per-initial-state moment vectors")
	boundsAt := fs.String("bounds", "", "comma-separated reward levels for CDF bounds")
	timesAt := fs.String("times", "", "comma-separated time grid: emit a CSV moment series instead of a single point")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unknown subcommand or stray argument %q (somrm takes flags only)", fs.Arg(0))
	}
	if *modelPath == "" {
		fs.Usage()
		return fmt.Errorf("missing -model")
	}

	model, err := loadModel(*modelPath)
	if err != nil {
		return err
	}

	if *timesAt != "" {
		return runSeries(model, *timesAt, *order, *eps, out)
	}

	res, err := model.AccumulatedReward(*t, *order, &somrm.SolveOptions{Epsilon: *eps})
	if err != nil {
		return err
	}

	tab := report.NewTable(fmt.Sprintf("Moments of the accumulated reward at t=%g", *t), "order", "E[B^j]")
	for j := 0; j <= *order; j++ {
		if err := tab.AddFloatRow(strconv.Itoa(j), res.Moments[j]); err != nil {
			return err
		}
	}
	if err := tab.Render(out); err != nil {
		return err
	}
	fmt.Fprintf(out, "solver: q=%g qt=%g d=%g G=%d shift=%g error-bound=%.3g\n",
		res.Stats.Q, res.Stats.QT, res.Stats.D, res.Stats.G, res.Stats.Shift, res.Stats.ErrorBound)

	if *perState {
		head := []string{"state"}
		for j := 0; j <= *order; j++ {
			head = append(head, "j="+strconv.Itoa(j))
		}
		pt := report.NewTable("Per-initial-state moments", head...)
		for i := 0; i < model.N(); i++ {
			vals := make([]float64, *order+1)
			for j := 0; j <= *order; j++ {
				vals[j] = res.VectorMoments[j][i]
			}
			if err := pt.AddFloatRow(strconv.Itoa(i), vals...); err != nil {
				return err
			}
		}
		if err := pt.Render(out); err != nil {
			return err
		}
	}

	if *boundsAt != "" {
		est, err := somrm.NewDistributionBounds(res.Moments)
		if err != nil {
			return fmt.Errorf("distribution bounds: %w", err)
		}
		bt := report.NewTable(fmt.Sprintf("CDF bounds (usable moment depth %d)", 2*est.MaxNodes()),
			"x", "lower", "upper")
		for _, tok := range strings.Split(*boundsAt, ",") {
			x, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				return fmt.Errorf("bad bounds point %q: %w", tok, err)
			}
			b, err := est.CDFBounds(x)
			if err != nil {
				return err
			}
			if err := bt.AddFloatRow(report.FormatFloat(x), b.Lower, b.Upper); err != nil {
				return err
			}
		}
		if err := bt.Render(out); err != nil {
			return err
		}
	}
	return nil
}

func loadModel(path string) (*somrm.Model, error) {
	var raw []byte
	var err error
	if path == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	parsed, err := spec.Parse(raw)
	if err != nil {
		return nil, err
	}
	return parsed.Build()
}

// runSeries evaluates a whole time grid in one shared randomization sweep
// and emits the moments as CSV.
func runSeries(model *somrm.Model, timesArg string, order int, eps float64, out io.Writer) error {
	var times []float64
	for _, tok := range strings.Split(timesArg, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return fmt.Errorf("bad time %q: %w", tok, err)
		}
		times = append(times, v)
	}
	results, err := model.AccumulatedRewardAt(times, order, &somrm.SolveOptions{Epsilon: eps})
	if err != nil {
		return err
	}
	headers := make([]string, 0, order+2)
	headers = append(headers, "t")
	for j := 0; j <= order; j++ {
		headers = append(headers, "m"+strconv.Itoa(j))
	}
	csv, err := report.NewCSV(out, headers...)
	if err != nil {
		return err
	}
	for _, res := range results {
		row := make([]float64, 0, order+2)
		row = append(row, res.T)
		row = append(row, res.Moments...)
		if err := csv.Row(row...); err != nil {
			return err
		}
	}
	return nil
}
