package main

import (
	"context"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"somrm"
)

const validSpec = `{
  "states": 2,
  "transitions": [{"from":0,"to":1,"rate":2.0},{"from":1,"to":0,"rate":3.0}],
  "rates": [1.5, -0.5],
  "variances": [0.2, 1.0],
  "initial": [1, 0]
}`

func writeSpec(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "model.json")
	if err := os.WriteFile(path, []byte(body), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunHappyPath(t *testing.T) {
	path := writeSpec(t, validSpec)
	var sb strings.Builder
	err := run([]string{"-model", path, "-t", "1", "-order", "3", "-per-state", "-bounds", "0,1"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Moments of the accumulated reward", "Per-initial-state moments", "CDF bounds", "solver: q=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunMissingModel(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Error("missing -model accepted")
	}
}

func TestRunUnreadableFile(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-model", "/nonexistent/x.json"}, &sb); err == nil {
		t.Error("unreadable file accepted")
	}
}

func TestRunBadJSON(t *testing.T) {
	path := writeSpec(t, "{nope")
	var sb strings.Builder
	if err := run([]string{"-model", path}, &sb); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestRunBadModels(t *testing.T) {
	cases := map[string]string{
		"no states":       `{"states":0}`,
		"self transition": `{"states":1,"transitions":[{"from":0,"to":0,"rate":1}],"rates":[1],"variances":[0],"initial":[1]}`,
		"bad rate":        `{"states":2,"transitions":[{"from":0,"to":1,"rate":-2}],"rates":[1,1],"variances":[0,0],"initial":[1,0]}`,
		"bad initial":     `{"states":2,"transitions":[{"from":0,"to":1,"rate":1},{"from":1,"to":0,"rate":1}],"rates":[1,1],"variances":[0,0],"initial":[0.4,0.4]}`,
		"out of range":    `{"states":2,"transitions":[{"from":0,"to":5,"rate":1}],"rates":[1,1],"variances":[0,0],"initial":[1,0]}`,
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			path := writeSpec(t, body)
			var sb strings.Builder
			if err := run([]string{"-model", path}, &sb); err == nil {
				t.Error("invalid spec accepted")
			}
		})
	}
}

func TestRunWithImpulses(t *testing.T) {
	spec := `{
	  "states": 2,
	  "transitions": [{"from":0,"to":1,"rate":2.0},{"from":1,"to":0,"rate":3.0}],
	  "rates": [1, 0],
	  "variances": [0.1, 0.1],
	  "initial": [1, 0],
	  "impulses": [{"from":0,"to":1,"reward":0.5}]
	}`
	path := writeSpec(t, spec)
	var sb strings.Builder
	if err := run([]string{"-model", path, "-t", "1", "-order", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
}

func TestRunTimesSeries(t *testing.T) {
	path := writeSpec(t, validSpec)
	var sb strings.Builder
	if err := run([]string{"-model", path, "-times", "0.5,1,2", "-order", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "t,m0,m1,m2\n") {
		t.Errorf("series header missing:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 4 {
		t.Errorf("want 4 CSV lines:\n%s", out)
	}
	if err := run([]string{"-model", path, "-times", "abc"}, &sb); err == nil {
		t.Error("bad time token accepted")
	}
}

func TestRunBadBoundsPoint(t *testing.T) {
	path := writeSpec(t, validSpec)
	var sb strings.Builder
	if err := run([]string{"-model", path, "-bounds", "abc"}, &sb); err == nil {
		t.Error("unparseable bounds point accepted")
	}
}

// TestHelperProcess re-executes the test binary as the somrm CLI so the
// exit-path tests below can observe the real process exit code and
// stderr. It is not a test; the parent drives it via SOMRM_HELPER.
func TestHelperProcess(t *testing.T) {
	if os.Getenv("SOMRM_HELPER") != "1" {
		t.Skip("helper process for exit-code tests")
	}
	args := []string{"somrm"}
	if packed := os.Getenv("SOMRM_ARGS"); packed != "" {
		args = append(args, strings.Split(packed, "\x1f")...)
	}
	os.Args = args
	main()
	os.Exit(0)
}

// runBinary re-executes this test binary as `somrm args...` and returns
// the exit code and stderr.
func runBinary(t *testing.T, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestHelperProcess$")
	cmd.Env = append(os.Environ(),
		"SOMRM_HELPER=1",
		"SOMRM_ARGS="+strings.Join(args, "\x1f"))
	var stderr strings.Builder
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		return 0, stderr.String()
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), stderr.String()
	}
	t.Fatalf("re-exec failed: %v", err)
	return -1, ""
}

// TestExitCodes asserts the contract the shell sees: every error path
// exits non-zero with a "somrm:" diagnostic on stderr, and the happy path
// exits zero.
func TestExitCodes(t *testing.T) {
	valid := writeSpec(t, validSpec)
	malformed := writeSpec(t, `{"states": 2, "transitions": [`)
	cases := []struct {
		name      string
		args      []string
		wantInErr string
	}{
		{"malformed spec file", []string{"-model", malformed}, "invalid model specification"},
		{"missing spec file", []string{"-model", filepath.Join(t.TempDir(), "gone.json")}, "no such file"},
		{"negative t", []string{"-model", valid, "-t", "-2"}, "invalid argument"},
		{"unknown subcommand", []string{"solve", "-model", valid}, "unknown subcommand"},
		{"unknown flag", []string{"-model", valid, "-frobnicate"}, "flag provided but not defined"},
		{"missing -model", nil, "missing -model"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, stderr := runBinary(t, c.args...)
			if code == 0 {
				t.Fatalf("exit code 0, want non-zero; stderr:\n%s", stderr)
			}
			if !strings.Contains(stderr, c.wantInErr) {
				t.Errorf("stderr missing %q:\n%s", c.wantInErr, stderr)
			}
			// Every failure must carry the program-name prefix except
			// flag-package usage errors, which print their own text.
			if c.wantInErr != "flag provided but not defined" && !strings.Contains(stderr, "somrm:") {
				t.Errorf("stderr missing somrm: prefix:\n%s", stderr)
			}
		})
	}
	if code, stderr := runBinary(t, "-model", valid, "-t", "1", "-order", "2"); code != 0 {
		t.Errorf("happy path exit code %d; stderr:\n%s", code, stderr)
	}
}

// TestRunAgainstServer drives the -server path end to end against an
// in-process solver service: the -times grid must produce CSV identical to
// the local shared-sweep path, and single solves must match too.
func TestRunAgainstServer(t *testing.T) {
	svc := somrm.NewServer(somrm.ServerOptions{Workers: 2})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	path := writeSpec(t, validSpec)

	var local, remote strings.Builder
	if err := run([]string{"-model", path, "-times", "0.5,1,2", "-order", "3"}, &local); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-model", path, "-times", "0.5,1,2", "-order", "3", "-server", ts.URL}, &remote); err != nil {
		t.Fatal(err)
	}
	if local.String() != remote.String() {
		t.Errorf("remote series differs from local:\nlocal:\n%s\nremote:\n%s", local.String(), remote.String())
	}

	var single strings.Builder
	if err := run([]string{"-model", path, "-t", "1", "-order", "2", "-bounds", "0,1", "-server", ts.URL}, &single); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Moments of the accumulated reward", "CDF bounds", "solver: q=3"} {
		if !strings.Contains(single.String(), want) {
			t.Errorf("remote solve output missing %q:\n%s", want, single.String())
		}
	}

	var sb strings.Builder
	if err := run([]string{"-model", path, "-t", "1", "-per-state", "-server", ts.URL}, &sb); err == nil {
		t.Error("-per-state with -server accepted")
	}
	if err := run([]string{"-model", path, "-t", "1", "-server", "http://127.0.0.1:1"}, &sb); err == nil {
		t.Error("unreachable server accepted")
	}
}

// TestRunAgainstCluster drives a comma-separated -server list end to end
// against three in-process cluster replicas: output must match the local
// path exactly, and must stay identical after one replica dies (the
// request fails over along the ring).
func TestRunAgainstCluster(t *testing.T) {
	var srvs []*httptest.Server
	var urls []string
	for i := 0; i < 3; i++ {
		ts := httptest.NewUnstartedServer(nil)
		srvs = append(srvs, ts)
		urls = append(urls, "http://"+ts.Listener.Addr().String())
	}
	for i, ts := range srvs {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		node, err := somrm.NewClusterNode(somrm.ClusterNodeOptions{
			Self:          urls[i],
			Peers:         peers,
			Server:        somrm.ServerOptions{Workers: 2},
			ProbeInterval: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts.Config.Handler = node.Handler()
		ts.Start()
		defer node.Shutdown(context.Background())
		defer ts.Close()
	}

	path := writeSpec(t, validSpec)
	list := strings.Join(urls, ",")

	var local, remote strings.Builder
	if err := run([]string{"-model", path, "-times", "0.5,1,2", "-order", "3"}, &local); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-model", path, "-times", "0.5,1,2", "-order", "3", "-server", list}, &remote); err != nil {
		t.Fatal(err)
	}
	if local.String() != remote.String() {
		t.Errorf("cluster series differs from local:\nlocal:\n%s\nremote:\n%s", local.String(), remote.String())
	}

	var before strings.Builder
	if err := run([]string{"-model", path, "-t", "1", "-order", "2", "-server", list}, &before); err != nil {
		t.Fatal(err)
	}

	// Kill one replica; the same command must produce byte-identical
	// moments via a ring successor.
	srvs[0].CloseClientConnections()
	srvs[0].Close()
	var after strings.Builder
	if err := run([]string{"-model", path, "-t", "1", "-order", "2", "-server", list}, &after); err != nil {
		t.Fatal(err)
	}
	if before.String() != after.String() {
		t.Errorf("failover output differs:\nbefore:\n%s\nafter:\n%s", before.String(), after.String())
	}
}
