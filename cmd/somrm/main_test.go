package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const validSpec = `{
  "states": 2,
  "transitions": [{"from":0,"to":1,"rate":2.0},{"from":1,"to":0,"rate":3.0}],
  "rates": [1.5, -0.5],
  "variances": [0.2, 1.0],
  "initial": [1, 0]
}`

func writeSpec(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "model.json")
	if err := os.WriteFile(path, []byte(body), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunHappyPath(t *testing.T) {
	path := writeSpec(t, validSpec)
	var sb strings.Builder
	err := run([]string{"-model", path, "-t", "1", "-order", "3", "-per-state", "-bounds", "0,1"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Moments of the accumulated reward", "Per-initial-state moments", "CDF bounds", "solver: q=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunMissingModel(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Error("missing -model accepted")
	}
}

func TestRunUnreadableFile(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-model", "/nonexistent/x.json"}, &sb); err == nil {
		t.Error("unreadable file accepted")
	}
}

func TestRunBadJSON(t *testing.T) {
	path := writeSpec(t, "{nope")
	var sb strings.Builder
	if err := run([]string{"-model", path}, &sb); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestRunBadModels(t *testing.T) {
	cases := map[string]string{
		"no states":       `{"states":0}`,
		"self transition": `{"states":1,"transitions":[{"from":0,"to":0,"rate":1}],"rates":[1],"variances":[0],"initial":[1]}`,
		"bad rate":        `{"states":2,"transitions":[{"from":0,"to":1,"rate":-2}],"rates":[1,1],"variances":[0,0],"initial":[1,0]}`,
		"bad initial":     `{"states":2,"transitions":[{"from":0,"to":1,"rate":1},{"from":1,"to":0,"rate":1}],"rates":[1,1],"variances":[0,0],"initial":[0.4,0.4]}`,
		"out of range":    `{"states":2,"transitions":[{"from":0,"to":5,"rate":1}],"rates":[1,1],"variances":[0,0],"initial":[1,0]}`,
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			path := writeSpec(t, body)
			var sb strings.Builder
			if err := run([]string{"-model", path}, &sb); err == nil {
				t.Error("invalid spec accepted")
			}
		})
	}
}

func TestRunWithImpulses(t *testing.T) {
	spec := `{
	  "states": 2,
	  "transitions": [{"from":0,"to":1,"rate":2.0},{"from":1,"to":0,"rate":3.0}],
	  "rates": [1, 0],
	  "variances": [0.1, 0.1],
	  "initial": [1, 0],
	  "impulses": [{"from":0,"to":1,"reward":0.5}]
	}`
	path := writeSpec(t, spec)
	var sb strings.Builder
	if err := run([]string{"-model", path, "-t", "1", "-order", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
}

func TestRunTimesSeries(t *testing.T) {
	path := writeSpec(t, validSpec)
	var sb strings.Builder
	if err := run([]string{"-model", path, "-times", "0.5,1,2", "-order", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "t,m0,m1,m2\n") {
		t.Errorf("series header missing:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 4 {
		t.Errorf("want 4 CSV lines:\n%s", out)
	}
	if err := run([]string{"-model", path, "-times", "abc"}, &sb); err == nil {
		t.Error("bad time token accepted")
	}
}

func TestRunBadBoundsPoint(t *testing.T) {
	path := writeSpec(t, validSpec)
	var sb strings.Builder
	if err := run([]string{"-model", path, "-bounds", "abc"}, &sb); err == nil {
		t.Error("unparseable bounds point accepted")
	}
}
