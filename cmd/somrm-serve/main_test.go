package main

import (
	"bytes"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestRunBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-nope"}, &sb, nil); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"extra"}, &sb, nil); err == nil || !strings.Contains(err.Error(), "unexpected argument") {
		t.Errorf("positional argument accepted: %v", err)
	}
	if err := run([]string{"-addr", "999.999.999.999:0"}, &sb, nil); err == nil {
		t.Error("unlistenable address accepted")
	}
	if err := run([]string{"-matrix-format", "nope"}, &sb, nil); err == nil || !strings.Contains(err.Error(), "matrix-format") {
		t.Errorf("bad -matrix-format accepted: %v", err)
	}
}

// bootServe starts run() with the given extra flags on an ephemeral port
// and returns the base URL plus a stop function that SIGTERMs the server
// and waits for a clean exit.
func bootServe(t *testing.T, extra ...string) (string, func()) {
	t.Helper()
	var logbuf bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, extra...)
	go func() { done <- run(args, &logbuf, ready) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v\n%s", err, logbuf.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	stop := func() {
		if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run returned %v\n%s", err, logbuf.String())
			}
		case <-time.After(10 * time.Second):
			t.Fatal("server did not shut down on SIGTERM")
		}
	}
	return "http://" + addr, stop
}

// TestPprofGate proves the profiling endpoints are absent by default and
// present with -pprof: exposing CPU profiles must be an explicit opt-in.
func TestPprofGate(t *testing.T) {
	// Default: /debug/pprof/ is unrouted, so the probe 404s instantly.
	base, stop := bootServe(t)
	resp, err := http.Get(base + "/debug/pprof/profile?seconds=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof profile without -pprof: status %d, want 404", resp.StatusCode)
	}
	stop()

	// With the flag: the index and a 1-second CPU profile both serve.
	base, stop = bootServe(t, "-pprof")
	defer stop()
	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	var index bytes.Buffer
	index.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(index.String(), "profile") {
		t.Errorf("pprof index with -pprof: status %d body %.120s", resp.StatusCode, index.String())
	}
	resp, err = http.Get(base + "/debug/pprof/profile?seconds=1")
	if err != nil {
		t.Fatal(err)
	}
	var prof bytes.Buffer
	prof.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || prof.Len() == 0 {
		t.Errorf("pprof profile with -pprof: status %d, %d bytes", resp.StatusCode, prof.Len())
	}
	// The API itself still works behind the outer mux.
	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz behind pprof mux: %d", hresp.StatusCode)
	}
}

// TestRunServeAndSignalShutdown boots the real binary entry point on an
// ephemeral port, solves once over HTTP, and shuts it down via SIGTERM.
func TestRunServeAndSignalShutdown(t *testing.T) {
	var logbuf bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, &logbuf, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v\n%s", err, logbuf.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	base := "http://" + addr
	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", hresp.StatusCode)
	}

	body := `{"model": {"states": 2,
	  "transitions": [{"from":0,"to":1,"rate":2},{"from":1,"to":0,"rate":3}],
	  "rates": [1.5,-0.5], "variances": [0.2,1], "initial": [1,0]},
	  "t": 1, "order": 3}`
	sresp, err := http.Post(base+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := out.ReadFrom(sresp.Body); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", sresp.StatusCode, out.String())
	}
	if !strings.Contains(out.String(), `"moments"`) {
		t.Errorf("solve response missing moments: %s", out.String())
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v\n%s", err, logbuf.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down on SIGTERM")
	}
	if !strings.Contains(logbuf.String(), "shutting down") {
		t.Errorf("shutdown not logged:\n%s", logbuf.String())
	}
}

func TestRunClusterFlagValidation(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-peers", "http://a:1"}, &sb, nil); err == nil || !strings.Contains(err.Error(), "-self") {
		t.Errorf("-peers without -self accepted: %v", err)
	}
	if err := run([]string{"-peer-secret", "s"}, &sb, nil); err == nil || !strings.Contains(err.Error(), "-self") {
		t.Errorf("-peer-secret without -self accepted: %v", err)
	}
}
