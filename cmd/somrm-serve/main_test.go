package main

import (
	"bytes"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestRunBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-nope"}, &sb, nil); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"extra"}, &sb, nil); err == nil || !strings.Contains(err.Error(), "unexpected argument") {
		t.Errorf("positional argument accepted: %v", err)
	}
	if err := run([]string{"-addr", "999.999.999.999:0"}, &sb, nil); err == nil {
		t.Error("unlistenable address accepted")
	}
}

// TestRunServeAndSignalShutdown boots the real binary entry point on an
// ephemeral port, solves once over HTTP, and shuts it down via SIGTERM.
func TestRunServeAndSignalShutdown(t *testing.T) {
	var logbuf bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, &logbuf, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v\n%s", err, logbuf.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	base := "http://" + addr
	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", hresp.StatusCode)
	}

	body := `{"model": {"states": 2,
	  "transitions": [{"from":0,"to":1,"rate":2},{"from":1,"to":0,"rate":3}],
	  "rates": [1.5,-0.5], "variances": [0.2,1], "initial": [1,0]},
	  "t": 1, "order": 3}`
	sresp, err := http.Post(base+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := out.ReadFrom(sresp.Body); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", sresp.StatusCode, out.String())
	}
	if !strings.Contains(out.String(), `"moments"`) {
		t.Errorf("solve response missing moments: %s", out.String())
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v\n%s", err, logbuf.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down on SIGTERM")
	}
	if !strings.Contains(logbuf.String(), "shutting down") {
		t.Errorf("shutdown not logged:\n%s", logbuf.String())
	}
}
