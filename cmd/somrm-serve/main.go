// Command somrm-serve runs the somrm solver service: an HTTP JSON API
// over the model interchange format of internal/spec, with a bounded
// worker pool, an LRU result cache, in-flight deduplication of identical
// requests, and graceful shutdown on SIGINT/SIGTERM.
//
// Usage:
//
//	somrm-serve [-addr :8639] [-workers N] [-queue N] [-batch-reserve N]
//	            [-cache N] [-prepared-cache N] [-timeout 30s]
//	            [-max-order 12] [-drain-timeout 30s]
//	            [-sweep-workers N] [-matrix-format auto|csr|band|qbd|csr64|kron]
//	            [-temporal-block N] [-sweep-tile N]
//	            [-checkpoints] [-checkpoint-ttl 2m] [-checkpoint-cap 64]
//	            [-cache-persist DIR] [-mem-budget BYTES]
//	            [-self URL -peers URL,URL,...] [-peer-secret S]
//	            [-probe-interval 2s] [-handoff-max N]
//	            [-pprof]
//	            [-fault-503 P] [-fault-truncate P] [-fault-panic P]
//	            [-fault-latency D] [-fault-seed N]
//	            [-fault-disk-err P] [-fault-disk-torn P]
//
// Durability (see README "Durability & recovery"): -checkpoints (on by
// default) turns mid-sweep deadlines into 202 partial responses with a
// resume token instead of wasted work; -cache-persist journals the result
// cache under DIR so a killed replica restarts warm; -mem-budget sheds
// requests whose estimated solver working set would not fit, with a typed
// 503, before they can OOM the replica.
//
// -self enables cluster mode: the replica joins a consistent-hash ring
// with the -peers replicas (every replica must be started with the same
// URL set), serves peer cache fills on its shard, and streams its hottest
// cache entries to ring successors when draining. The internal /v1/peer/*
// endpoints exist only in cluster mode; -peer-secret (or the
// SOMRM_PEER_SECRET environment variable, preferred since it stays out of
// ps output) guards them with a shared secret that every replica must be
// given. See README "Running a cluster".
//
// -pprof mounts Go's net/http/pprof profiling handlers under
// /debug/pprof/ on the same listener; they are absent unless the flag
// is set.
//
// The -fault-* flags enable the fault-injection middleware for chaos
// testing (probabilities in [0,1]); they are never on by default and
// log a warning when set. Do not use them in production.
//
// Endpoints:
//
//	POST /v1/solve        solve a model (see README "Running the server")
//	POST /v1/solve/batch  solve one model at many time grids in one request
//	GET  /healthz         liveness (503 while draining)
//	GET  /metrics         JSON counters and solve latency histogram
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"somrm/internal/cluster"
	"somrm/internal/server"
	"somrm/internal/sparse"
)

func main() {
	if err := run(os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "somrm-serve:", err)
		os.Exit(1)
	}
}

// run starts the service and blocks until the context-cancelling signal
// arrives (or, in tests, until ready has been consumed and stop fires).
// ready, when non-nil, receives the bound address once listening.
func run(args []string, logw io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("somrm-serve", flag.ContinueOnError)
	fs.SetOutput(logw)
	addr := fs.String("addr", ":8639", "listen address")
	workers := fs.Int("workers", 0, "solver pool size (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "solve queue capacity (0 = default 64)")
	batchReserve := fs.Int("batch-reserve", 0, "queue slots reserved for single solves; batch items are shed first (0 = default queue/4, negative disables)")
	cache := fs.Int("cache", 0, "result cache entries (0 = default 256, negative disables)")
	prepCache := fs.Int("prepared-cache", 0, "prepared-model cache entries (0 = default 128, negative disables)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request solve deadline")
	maxOrder := fs.Int("max-order", 0, "highest accepted moment order (0 = default 12)")
	sweepWorkers := fs.Int("sweep-workers", 0, "per-solve randomization sweep parallelism: 0 auto, N forces a fused team of N, negative forces the serial reference sweep")
	matrixFormat := fs.String("matrix-format", "", "sweep matrix storage: auto (default), csr, band, qbd, csr64, or kron (all bitwise identical; server-wide, not per-request)")
	temporalBlock := fs.Int("temporal-block", 0, "wavefront temporal blocking depth of the sweep: 0 auto, 1 disables, N>=2 forces (bitwise identical; server-wide, not per-request)")
	sweepTile := fs.Int("sweep-tile", 0, "row-tile width of the fused sweep kernels (0 = built-in default; bitwise neutral)")
	noSIMD := fs.Bool("no-simd", false, "force the pure-Go scalar sweep kernels even on AVX2 hardware (bitwise identical; server-wide; SOMRM_NOSIMD=1 does the same)")
	checkpoints := fs.Bool("checkpoints", true, "answer mid-sweep deadlines with a 202 partial + resume token instead of discarding progress")
	checkpointTTL := fs.Duration("checkpoint-ttl", 0, "how long an unclaimed resume checkpoint is held (0 = default 2m)")
	checkpointCap := fs.Int("checkpoint-cap", 0, "max held resume checkpoints, oldest evicted first (0 = default 64)")
	cachePersist := fs.String("cache-persist", "", "directory for the crash-safe warm cache (journal + snapshot); empty disables persistence")
	memBudget := fs.Int64("mem-budget", 0, "shed solves whose estimated working set would push in-flight bytes past this budget (0 disables)")
	self := fs.String("self", "", "cluster mode: this replica's advertised base URL (e.g. http://10.0.0.3:8639)")
	peers := fs.String("peers", "", "cluster mode: comma-separated base URLs of the other replicas")
	peerSecret := fs.String("peer-secret", "", "cluster mode: shared secret authenticating the internal /v1/peer/* endpoints (defaults to $SOMRM_PEER_SECRET; empty leaves them open)")
	probeInterval := fs.Duration("probe-interval", 2*time.Second, "cluster mode: peer /healthz probe cadence (negative disables probing)")
	handoffMax := fs.Int("handoff-max", 0, "cluster mode: max cache entries streamed to ring successors on drain (0 = default 128, negative disables)")
	pprofFlag := fs.Bool("pprof", false, "expose net/http/pprof profiling endpoints under /debug/pprof/ (off by default)")
	drain := fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	fault503 := fs.Float64("fault-503", 0, "TESTING ONLY: probability of injecting a 503 per request")
	faultTrunc := fs.Float64("fault-truncate", 0, "TESTING ONLY: probability of truncating a response mid-body")
	faultPanic := fs.Float64("fault-panic", 0, "TESTING ONLY: probability of panicking in the handler")
	faultLatency := fs.Duration("fault-latency", 0, "TESTING ONLY: fixed latency added to every request")
	faultDiskErr := fs.Float64("fault-disk-err", 0, "TESTING ONLY: probability of failing a cache-persistence write")
	faultDiskTorn := fs.Float64("fault-disk-torn", 0, "TESTING ONLY: probability of tearing a cache-persistence write mid-line")
	faultSeed := fs.Int64("fault-seed", 0, "TESTING ONLY: fault injection RNG seed (0 = 1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	// Fail at startup, not on the first solve, if the format is unknown.
	if _, err := sparse.ParseMatrixFormat(*matrixFormat); err != nil {
		return fmt.Errorf("-matrix-format: %w", err)
	}

	logger := log.New(logw, "somrm-serve: ", log.LstdFlags)
	faults := server.FaultConfig{
		FailureRate:  *fault503,
		TruncateRate: *faultTrunc,
		PanicRate:    *faultPanic,
		Latency:      *faultLatency,
		DiskErrRate:  *faultDiskErr,
		DiskTornRate: *faultDiskTorn,
		Seed:         *faultSeed,
	}
	var injector *server.FaultInjector
	if faults != (server.FaultConfig{Seed: faults.Seed}) {
		logger.Printf("WARNING: fault injection enabled (503 %.2f, truncate %.2f, panic %.2f, latency %s, disk-err %.2f, disk-torn %.2f) — testing only",
			faults.FailureRate, faults.TruncateRate, faults.PanicRate, faults.Latency, faults.DiskErrRate, faults.DiskTornRate)
		injector = server.NewFaultInjector(faults)
	}

	srvOpts := server.Options{
		Workers:           *workers,
		QueueSize:         *queue,
		BatchQueueReserve: *batchReserve,
		CacheSize:         *cache,
		PreparedCacheSize: *prepCache,
		DefaultTimeout:    *timeout,
		MaxOrder:          *maxOrder,
		SweepWorkers:      *sweepWorkers,
		MatrixFormat:      *matrixFormat,
		TemporalBlock:     *temporalBlock,
		SweepTile:         *sweepTile,
		NoSIMD:            *noSIMD,
		HandoffMax:        *handoffMax,
		Checkpoints:       *checkpoints,
		CheckpointTTL:     *checkpointTTL,
		CheckpointCap:     *checkpointCap,
		PersistDir:        *cachePersist,
		DiskFaults:        injector,
		MemBudget:         *memBudget,
	}
	if *cachePersist != "" {
		logger.Printf("cache persistence enabled under %s", *cachePersist)
	}
	if *memBudget > 0 {
		logger.Printf("memory admission gate enabled: budget %d bytes", *memBudget)
	}

	var handler http.Handler
	var shutdown func(context.Context) error
	if *self != "" {
		secret := *peerSecret
		if secret == "" {
			// Keep the secret off the command line where it would show in
			// ps; the environment is the recommended channel.
			secret = os.Getenv("SOMRM_PEER_SECRET")
		}
		peerURLs := splitURLs(*peers)
		node, err := cluster.NewNode(cluster.NodeOptions{
			Self:          *self,
			Peers:         peerURLs,
			Server:        srvOpts,
			ProbeInterval: *probeInterval,
			PeerSecret:    secret,
		})
		if err != nil {
			return err
		}
		handler = node.Handler()
		shutdown = node.Shutdown
		logger.Printf("cluster mode: self=%s ring=%d replicas peer-auth=%v",
			*self, len(node.Ring().Nodes()), secret != "")
	} else {
		if *peers != "" {
			return fmt.Errorf("-peers requires -self (this replica's own advertised URL)")
		}
		if *peerSecret != "" {
			return fmt.Errorf("-peer-secret requires -self (cluster mode)")
		}
		// Fail at startup if the persistence directory is unusable, rather
		// than silently running with a cold cache.
		svc, err := server.NewWithPersistence(srvOpts)
		if err != nil {
			return err
		}
		if restored := svc.Metrics().CacheRestored.Load(); restored > 0 {
			logger.Printf("restored %d cache entries from %s", restored, *cachePersist)
		}
		handler = svc.Handler()
		shutdown = svc.Shutdown
	}
	if injector != nil {
		handler = injector.Middleware(handler)
	}
	if *pprofFlag {
		// Mount the profiling endpoints on an outer mux so they bypass the
		// fault injector and the service's own routing. Off by default:
		// pprof exposes stack traces and CPU profiles, so it is opt-in.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		logger.Printf("pprof profiling endpoints enabled at /debug/pprof/")
	}
	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Printf("listening on %s", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	logger.Printf("shutting down (draining up to %s)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting connections and let in-flight HTTP exchanges finish,
	// then drain the solver pool (queued solves 503 immediately).
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if err := shutdown(drainCtx); err != nil && !errors.Is(err, context.Canceled) {
		return fmt.Errorf("drain: %w", err)
	}
	logger.Printf("bye")
	return nil
}

// splitURLs parses a comma-separated URL list, dropping empty tokens.
func splitURLs(arg string) []string {
	var urls []string
	for _, tok := range strings.Split(arg, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			urls = append(urls, tok)
		}
	}
	return urls
}
