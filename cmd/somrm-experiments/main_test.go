package main

import (
	"bytes"
	"encoding/xml"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected to a buffer.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan struct{})
	var buf bytes.Buffer
	go func() {
		defer close(done)
		_, _ = io.Copy(&buf, r)
	}()
	runErr := fn()
	_ = w.Close()
	<-done
	return buf.String(), runErr
}

func TestRunNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no arguments accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"fig99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunFig1(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"fig1", "-t", "0.5", "-dt", "0.05"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "t,state,reward\n") {
		t.Errorf("fig1 output:\n%s", out)
	}
}

func TestRunFig3(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"fig3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 3", "steady-state", "18.285714"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig3 output missing %q", want)
		}
	}
}

func TestRunFig4(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"fig4"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "Figure 4") != 2 {
		t.Errorf("fig4 should print two moment tables:\n%s", out)
	}
}

func TestRunFig6SmallMoments(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"fig6", "-moments", "10", "-points", "5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sigma2=1") {
		t.Errorf("fig6 output:\n%s", out)
	}
}

func TestRunFig8Scaled(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"fig8", "-scale", "2000"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "N=100 sources") {
		t.Errorf("fig8 output:\n%s", out)
	}
}

func TestRunCrossCheck(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"crosscheck", "-reps", "5000", "-order", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "randomization") || !strings.Contains(out, "simulation within 3 sigma") {
		t.Errorf("crosscheck output:\n%s", out)
	}
}

func TestRunErrorBound(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"errorbound", "-order", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "eq. (11)") {
		t.Errorf("errorbound output:\n%s", out)
	}
}

func TestRunSVGOutput(t *testing.T) {
	dir := t.TempDir()
	fig3 := filepath.Join(dir, "fig3.svg")
	fig4 := filepath.Join(dir, "fig4.svg")
	fig6 := filepath.Join(dir, "fig6.svg")
	if _, err := captureStdout(t, func() error {
		return run([]string{"fig3", "-svg", fig3})
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := captureStdout(t, func() error {
		return run([]string{"fig4", "-svg", fig4})
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := captureStdout(t, func() error {
		return run([]string{"fig6", "-moments", "10", "-points", "7", "-svg", fig6})
	}); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{fig3, filepath.Join(dir, "fig4-m2.svg"), filepath.Join(dir, "fig4-m3.svg"), fig6} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing SVG %s: %v", path, err)
		}
		if !strings.HasPrefix(string(data), "<svg") || !strings.Contains(string(data), "</svg>") {
			t.Errorf("%s does not look like SVG", path)
		}
		if err := xml.Unmarshal(data, new(struct{})); err != nil {
			// xml.Unmarshal into an empty struct still validates syntax.
			t.Errorf("%s is not well-formed XML: %v", path, err)
		}
	}
}

func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"fig3", "-eps", "notanumber"},
		{"fig5", "-moments", "1"},
		{"fig8", "-scale", "0"},
	} {
		if _, err := captureStdout(t, func() error { return run(args) }); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
