// Command somrm-experiments regenerates the tables and figures of
// "Analysis of Second-Order Markov Reward Models" (DSN 2004). Each
// subcommand prints the corresponding series/table to stdout; see
// EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	somrm-experiments fig1|fig3|fig4|fig5|fig6|fig7|fig8|crosscheck|errorbound|all [flags]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"somrm/internal/experiments"
	"somrm/internal/plot"
	"somrm/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "somrm-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: somrm-experiments <fig1|fig3|fig4|fig5|fig6|fig7|fig8|crosscheck|errorbound|all> [flags]")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "fig1":
		return runFig1(rest)
	case "fig3":
		return runFig3(rest)
	case "fig4":
		return runFig4(rest)
	case "fig5":
		return runBounds(rest, 0)
	case "fig6":
		return runBounds(rest, 1)
	case "fig7":
		return runBounds(rest, 10)
	case "fig8", "table2":
		return runLarge(rest)
	case "crosscheck":
		return runCrossCheck(rest)
	case "errorbound":
		return runErrorBound(rest)
	case "all":
		for _, c := range []string{"fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "crosscheck", "errorbound"} {
			fmt.Printf("==== %s ====\n", c)
			if err := run(append([]string{c}, rest...)); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", cmd)
	}
}

func runFig1(args []string) error {
	fs := flag.NewFlagSet("fig1", flag.ContinueOnError)
	horizon := fs.Float64("t", 2.5, "trajectory horizon")
	dt := fs.Float64("dt", 0.005, "observation grid spacing")
	seed := fs.Int64("seed", 7, "RNG seed")
	svg := fs.String("svg", "", "write the figure as SVG to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := experiments.Fig1(*horizon, *dt, *seed)
	if err != nil {
		return err
	}
	if *svg != "" {
		states := make([]float64, len(tr.States))
		for i, st := range tr.States {
			states[i] = float64(st + 1)
		}
		chart := &plot.Chart{
			Title:  "Figure 1: sample realization of a second-order reward model",
			XLabel: "t",
			Series: []plot.Series{
				{Name: "accumulated reward B(t)", X: tr.Times, Y: tr.Reward},
				{Name: "structure state Z(t)", X: tr.Times, Y: states, Style: plot.StyleStep},
			},
		}
		if err := writeSVG(*svg, chart); err != nil {
			return err
		}
	}
	csv, err := report.NewCSV(os.Stdout, "t", "state", "reward")
	if err != nil {
		return err
	}
	for i := range tr.Times {
		if err := csv.Row(tr.Times[i], float64(tr.States[i]+1), tr.Reward[i]); err != nil {
			return err
		}
	}
	fmt.Printf("# %d grid points, %d state transitions\n", len(tr.Times), len(tr.Jumps))
	return nil
}

func runFig3(args []string) error {
	fs := flag.NewFlagSet("fig3", flag.ContinueOnError)
	eps := fs.Float64("eps", 1e-9, "randomization accuracy")
	svg := fs.String("svg", "", "write the figure as SVG to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	data, err := experiments.Fig3(experiments.DefaultTimes(), *eps)
	if err != nil {
		return err
	}
	if *svg != "" {
		times := data.Series[0].Times
		chart := &plot.Chart{
			Title:  "Figure 3: mean accumulated reward",
			XLabel: "t", YLabel: "E[B(t)]",
			Series: []plot.Series{
				{Name: "all-OFF start (any sigma2)", X: times, Y: seriesMoment(data.Series[0], 1)},
				{Name: "steady-state start", X: times, Y: scaleTimes(times, data.SteadyStateRate)},
			},
		}
		if err := writeSVG(*svg, chart); err != nil {
			return err
		}
	}
	tab := report.NewTable("Figure 3: mean accumulated reward E[B(t)] (initial state: all sources OFF)",
		"t", "sigma2=0", "sigma2=1", "sigma2=10", "steady-state")
	for k, t := range data.Series[0].Times {
		if err := tab.AddFloatRow(report.FormatFloat(t),
			data.Series[0].Values[k][1],
			data.Series[1].Values[k][1],
			data.Series[2].Values[k][1],
			data.SteadyStateRate*t); err != nil {
			return err
		}
	}
	if err := tab.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("steady-state mean rate pi.r = %.6f (paper: mean independent of sigma^2)\n", data.SteadyStateRate)
	return nil
}

func runFig4(args []string) error {
	fs := flag.NewFlagSet("fig4", flag.ContinueOnError)
	eps := fs.Float64("eps", 1e-9, "randomization accuracy")
	svg := fs.String("svg", "", "write the figures as SVG (suffixed -m2/-m3)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	data, err := experiments.Fig4(experiments.DefaultTimes(), *eps)
	if err != nil {
		return err
	}
	if *svg != "" {
		times := data.Series[0].Times
		for _, j := range []int{2, 3} {
			chart := &plot.Chart{
				Title:  fmt.Sprintf("Figure 4: %d. moment of the accumulated reward", j),
				XLabel: "t", YLabel: fmt.Sprintf("E[B(t)^%d]", j),
				Series: []plot.Series{
					{Name: "sigma2=0", X: times, Y: seriesMoment(data.Series[0], j)},
					{Name: "sigma2=1", X: times, Y: seriesMoment(data.Series[1], j)},
					{Name: "sigma2=10", X: times, Y: seriesMoment(data.Series[2], j)},
				},
			}
			if err := writeSVG(suffixPath(*svg, fmt.Sprintf("-m%d", j)), chart); err != nil {
				return err
			}
		}
	}
	for _, j := range []int{2, 3} {
		tab := report.NewTable(fmt.Sprintf("Figure 4: %d. moment of the accumulated reward", j),
			"t", "sigma2=0", "sigma2=1", "sigma2=10")
		for k, t := range data.Series[0].Times {
			if err := tab.AddFloatRow(report.FormatFloat(t),
				data.Series[0].Values[k][j],
				data.Series[1].Values[k][j],
				data.Series[2].Values[k][j]); err != nil {
				return err
			}
		}
		if err := tab.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func runBounds(args []string, sigma2 float64) error {
	fs := flag.NewFlagSet("bounds", flag.ContinueOnError)
	t := fs.Float64("t", 0.5, "accumulation time")
	moments := fs.Int("moments", 23, "number of moments (paper uses 23)")
	points := fs.Int("points", 41, "plot points")
	eps := fs.Float64("eps", 1e-9, "randomization accuracy")
	svg := fs.String("svg", "", "write the figure as SVG to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	data, err := experiments.FigBounds(sigma2, *t, *moments, *points, *eps)
	if err != nil {
		return err
	}
	if *svg != "" {
		xs := make([]float64, len(data.Points))
		lower := make([]float64, len(data.Points))
		upper := make([]float64, len(data.Points))
		exact := make([]float64, 0, len(data.Points))
		exactX := make([]float64, 0, len(data.Points))
		for i, p := range data.Points {
			xs[i], lower[i], upper[i] = p.X, p.Lower, p.Upper
			if p.ExactCDF == p.ExactCDF { // not NaN
				exactX = append(exactX, p.X)
				exact = append(exact, p.ExactCDF)
			}
		}
		chart := &plot.Chart{
			Title:  fmt.Sprintf("Figures 5-7: bounds for P(B(%g) <= x), sigma2=%g", data.T, data.Sigma2),
			XLabel: "x", YLabel: "CDF",
			Series: []plot.Series{
				{Name: "lower bound", X: xs, Y: lower, Style: plot.StyleStep},
				{Name: "upper bound", X: xs, Y: upper, Style: plot.StyleStep},
			},
		}
		if len(exact) > 0 {
			chart.Series = append(chart.Series, plot.Series{Name: "exact CDF (Gil-Pelaez)", X: exactX, Y: exact})
		}
		if err := writeSVG(*svg, chart); err != nil {
			return err
		}
	}
	tab := report.NewTable(
		fmt.Sprintf("Figures 5-7: CDF bounds of B(%g), sigma2=%g (moments requested %d, usable depth %d)",
			data.T, data.Sigma2, data.MomentsRequested, data.MomentsUsable),
		"x", "lower", "upper", "width", "exact CDF")
	for _, p := range data.Points {
		if err := tab.AddFloatRow(strconv.FormatFloat(p.X, 'f', 4, 64),
			p.Lower, p.Upper, p.Upper-p.Lower, p.ExactCDF); err != nil {
			return err
		}
	}
	return tab.Render(os.Stdout)
}

func runLarge(args []string) error {
	fs := flag.NewFlagSet("fig8", flag.ContinueOnError)
	full := fs.Bool("full", false, "run the full N=200,000 paper model (minutes of CPU)")
	scale := fs.Int("scale", 100, "source-count divisor when not running -full")
	eps := fs.Float64("eps", 1e-9, "randomization accuracy (paper: 1e-9)")
	svg := fs.String("svg", "", "write the figure as SVG to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *full {
		*scale = 1
	}
	data, err := experiments.FigLarge(*scale, *eps)
	if err != nil {
		return err
	}
	if *svg != "" {
		times := make([]float64, len(data.Points))
		m1 := make([]float64, len(data.Points))
		for i, p := range data.Points {
			times[i] = p.T
			m1[i] = p.Moments[1]
		}
		chart := &plot.Chart{
			Title:  fmt.Sprintf("Figure 8: mean accumulated reward of the large model (N=%d)", data.N),
			XLabel: "t", YLabel: "E[B(t)]",
			Series: []plot.Series{{Name: "E[B(t)]", X: times, Y: m1}},
		}
		if err := writeSVG(*svg, chart); err != nil {
			return err
		}
	}
	tab := report.NewTable(
		fmt.Sprintf("Figure 8 / Table 2: large ON-OFF model, N=%d sources (%d states)", data.N, data.N+1),
		"t", "E[B]", "E[B^2]", "E[B^3]", "G", "q", "qt", "flops/iter", "elapsed")
	for _, p := range data.Points {
		if err := tab.AddRow(
			report.FormatFloat(p.T),
			report.FormatFloat(p.Moments[1]),
			report.FormatFloat(p.Moments[2]),
			report.FormatFloat(p.Moments[3]),
			strconv.Itoa(p.Stats.G),
			report.FormatFloat(p.Stats.Q),
			report.FormatFloat(p.Stats.QT),
			strconv.FormatInt(p.Stats.FlopsPerIteration, 10),
			p.Elapsed.Round(1e6).String(),
		); err != nil {
			return err
		}
	}
	if err := tab.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("# paper (N=200,000, t=0.05, eps=1e-9): G=41,588, q=800,000, qt=40,000, flops/iter=(3+1+1)*200,001*4")
	return nil
}

func runCrossCheck(args []string) error {
	fs := flag.NewFlagSet("crosscheck", flag.ContinueOnError)
	t := fs.Float64("t", 0.5, "accumulation time")
	sigma2 := fs.Float64("sigma2", 1, "per-source variance")
	order := fs.Int("order", 3, "highest moment")
	reps := fs.Int("reps", 200_000, "simulation replications")
	seed := fs.Int64("seed", 42, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	data, err := experiments.CrossCheck(*sigma2, *t, *order, *reps, *seed)
	if err != nil {
		return err
	}
	tab := report.NewTable(
		fmt.Sprintf("Cross-check (section 7): three solution methods, sigma2=%g, t=%g", data.Sigma2, data.T),
		"moment", "randomization", "ODE (RK4)", "simulation", "sim 95% hw")
	for j := 0; j <= data.Order; j++ {
		if err := tab.AddFloatRow(strconv.Itoa(j),
			data.Randomization[j], data.ODE[j], data.Simulation[j], data.SimHalfWidth[j]); err != nil {
			return err
		}
	}
	if err := tab.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("timings: randomization=%v ode=%v simulation=%v (%d reps)\n",
		data.RandomizationTime, data.ODETime, data.SimulationTime, data.SimReps)
	fmt.Printf("max rel diff randomization vs ODE: %.3g; simulation within 3 sigma: %v\n",
		data.MaxRelDiffODE, data.SimWithinCI)
	return nil
}

func runErrorBound(args []string) error {
	fs := flag.NewFlagSet("errorbound", flag.ContinueOnError)
	t := fs.Float64("t", 0.5, "accumulation time")
	sigma2 := fs.Float64("sigma2", 10, "per-source variance")
	order := fs.Int("order", 3, "highest moment")
	if err := fs.Parse(args); err != nil {
		return err
	}
	eps := []float64{1e-3, 1e-6, 1e-9, 1e-12}
	points, err := experiments.ErrorBoundAblation(*sigma2, *t, *order, eps)
	if err != nil {
		return err
	}
	tab := report.NewTable(
		"Ablation: tightness of the eq. (11) truncation bound (vs eps=1e-14 reference)",
		"epsilon", "G", "bound at G", "actual error")
	for _, p := range points {
		if err := tab.AddFloatRow(report.FormatFloat(p.Epsilon),
			float64(p.G), p.Bound, p.ActualError); err != nil {
			return err
		}
	}
	return tab.Render(os.Stdout)
}

// writeSVG renders a chart into the given file.
func writeSVG(path string, chart *plot.Chart) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := chart.RenderSVG(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// suffixPath inserts a suffix before the file extension.
func suffixPath(path, suffix string) string {
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + suffix + ext
}

// seriesMoment extracts the order-j column of a moment series.
func seriesMoment(s experiments.MomentSeries, j int) []float64 {
	out := make([]float64, len(s.Values))
	for k, v := range s.Values {
		out[k] = v[j]
	}
	return out
}

// scaleTimes returns rate*t for each grid time.
func scaleTimes(times []float64, rate float64) []float64 {
	out := make([]float64, len(times))
	for i, t := range times {
		out[i] = rate * t
	}
	return out
}
