// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark runs can be committed and diffed (see
// `make bench-sweep`, which records the randomization sweep benchmarks in
// BENCH_sweep.json).
//
// Usage:
//
//	go test -bench Sweep -benchmem ./internal/core/ | benchjson -o BENCH_sweep.json
//	benchjson -compare old.json new.json -tol 0.15
//
// The commit hash is taken from -commit, falling back to `git rev-parse
// HEAD`, falling back to "unknown" — the tool never fails just because
// the tree is not a checkout.
//
// -compare diffs two recorded reports benchmark-by-benchmark and exits
// nonzero when any shared benchmark's ns/op grew by more than the -tol
// fraction (default 0.15), so `make bench-check` can flag perf
// regressions against the committed baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// BenchResult is one parsed benchmark line.
type BenchResult struct {
	// Name is the benchmark name without the trailing -P procs suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix of the line (1 when absent).
	Procs int `json:"procs"`
	// Iterations is the measured iteration count (b.N).
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present with -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Report is the emitted JSON document.
type Report struct {
	// Commit identifies the source revision the run measured.
	Commit string `json:"commit"`
	// Cores is the machine's logical CPU count at conversion time.
	Cores int `json:"cores"`
	// GoOS/GoArch/CPU echo the bench header when present.
	GoOS       string        `json:"goos,omitempty"`
	GoArch     string        `json:"goarch,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	commit := flag.String("commit", "", "commit hash to record (default: git rev-parse HEAD)")
	compareMode := flag.Bool("compare", false, "compare two recorded reports (old.json new.json) instead of converting; exit 1 on regression")
	tol := flag.Float64("tol", 0.15, "with -compare: allowed fractional ns/op growth before a benchmark counts as regressed")
	flag.Parse()

	if *compareMode {
		os.Exit(runCompare(flag.Args(), *tol, os.Stdout, os.Stderr))
	}

	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rep.Commit = resolveCommit(*commit)
	rep.Cores = runtime.NumCPU()

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// resolveCommit picks the recorded commit hash: the explicit flag, then
// the git HEAD of the working directory, then "unknown".
func resolveCommit(flagValue string) string {
	if flagValue != "" {
		return flagValue
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// parse reads `go test -bench` output and collects header fields and
// benchmark lines. Unrecognized lines (test logs, PASS/ok trailers) are
// skipped, so piping full `go test` output works.
func parse(r io.Reader) (*Report, error) {
	return parseWithProcs(r, runtime.GOMAXPROCS(0))
}

// parseWithProcs is parse with the GOMAXPROCS of the machine that ran the
// benchmarks made explicit, so tests can exercise both suffix regimes.
func parseWithProcs(r io.Reader, procs int) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBenchLine(line, procs)
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	return rep, nil
}

// parseBenchLine parses one result line of the form
//
//	BenchmarkName[-P] <iters> <ns> ns/op [<bytes> B/op] [<allocs> allocs/op]
func parseBenchLine(line string, procs int) (BenchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return BenchResult{}, false
	}
	res := BenchResult{Name: fields[0], Procs: 1}
	// Split a trailing -P procs suffix. The testing package appends one
	// only when GOMAXPROCS != 1, and P is always that GOMAXPROCS value —
	// so only strip a "-P" that matches it. Stripping any numeric tail
	// would eat legitimate name suffixes like "workers-1".
	if procs > 1 {
		suffix := "-" + strconv.Itoa(procs)
		if strings.HasSuffix(res.Name, suffix) && len(res.Name) > len(suffix) {
			res.Name = res.Name[:len(res.Name)-len(suffix)]
			res.Procs = procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return BenchResult{}, false
	}
	res.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			b := v
			res.BytesPerOp = &b
		case "allocs/op":
			a := v
			res.AllocsPerOp = &a
		}
	}
	if res.NsPerOp == 0 && res.BytesPerOp == nil {
		return BenchResult{}, false
	}
	return res, true
}
