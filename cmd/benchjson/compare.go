package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// runCompare implements `benchjson -compare old.json new.json [-tol F]`:
// load two reports, match benchmarks by name, and flag any whose ns/op
// grew by more than the tolerance fraction. Returns the process exit
// code: 0 clean, 1 at least one regression, 2 usage or I/O error.
//
// The trailing -tol is scanned by hand because the flag package stops
// parsing at the first positional argument, so a -tol written after the
// file names lands in flag.Args() untouched.
func runCompare(args []string, tol float64, stdout, stderr io.Writer) int {
	paths := make([]string, 0, 2)
	for i := 0; i < len(args); i++ {
		switch a := args[i]; {
		case a == "-tol" || a == "--tol":
			if i+1 >= len(args) {
				fmt.Fprintln(stderr, "benchjson: -tol needs a value")
				return 2
			}
			v, err := strconv.ParseFloat(args[i+1], 64)
			if err != nil {
				fmt.Fprintf(stderr, "benchjson: bad -tol %q: %v\n", args[i+1], err)
				return 2
			}
			tol = v
			i++
		case strings.HasPrefix(a, "-tol=") || strings.HasPrefix(a, "--tol="):
			v, err := strconv.ParseFloat(a[strings.Index(a, "=")+1:], 64)
			if err != nil {
				fmt.Fprintf(stderr, "benchjson: bad %s: %v\n", a, err)
				return 2
			}
			tol = v
		default:
			paths = append(paths, a)
		}
	}
	if len(paths) != 2 {
		fmt.Fprintln(stderr, "benchjson: -compare needs exactly two report files: old.json new.json")
		return 2
	}
	if tol < 0 {
		fmt.Fprintln(stderr, "benchjson: -tol must be non-negative")
		return 2
	}
	oldRep, err := loadReport(paths[0])
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}
	newRep, err := loadReport(paths[1])
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}
	if compareReports(oldRep, newRep, tol, stdout) > 0 {
		return 1
	}
	return 0
}

func loadReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(raw, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in report", path)
	}
	return rep, nil
}

// benchKey identifies one benchmark entry for comparison. Keying by
// (Name, Procs) rather than name alone keeps multi-core variants of the
// same benchmark distinct: a report can legitimately hold "sweep/N100001"
// at 1 core and at 8 cores, and only like-for-like pairs should be diffed.
type benchKey struct {
	Name  string
	Procs int
}

// label renders the key for the diff listing, suffixing the proc count
// only when it disambiguates.
func (k benchKey) label() string {
	if k.Procs > 1 {
		return fmt.Sprintf("%s@%dcores", k.Name, k.Procs)
	}
	return k.Name
}

// compareReports prints one line per benchmark shared by both reports and
// returns the number of regressions: benchmarks whose ns/op exceeds the
// old value by more than the tolerance fraction. Entries are matched by
// (name, procs), so per-core variants diff like for like. Benchmarks
// present on only one side are noted but never count as regressions —
// renames and new variants should not fail a perf gate on their own.
func compareReports(oldRep, newRep *Report, tol float64, w io.Writer) int {
	oldBy := make(map[benchKey]BenchResult, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		oldBy[benchKey{b.Name, b.Procs}] = b
	}
	seen := make(map[benchKey]bool, len(newRep.Benchmarks))
	regressions := 0
	compared := 0
	for _, nb := range newRep.Benchmarks {
		key := benchKey{nb.Name, nb.Procs}
		ob, ok := oldBy[key]
		if !ok {
			fmt.Fprintf(w, "  new       %-44s %s\n", key.label(), fmtNs(nb.NsPerOp))
			continue
		}
		seen[key] = true
		compared++
		delta := (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp
		if delta > tol {
			regressions++
			fmt.Fprintf(w, "  REGRESSED %-44s %s -> %s  %+.1f%% (tolerance %.0f%%)\n",
				key.label(), fmtNs(ob.NsPerOp), fmtNs(nb.NsPerOp), delta*100, tol*100)
			continue
		}
		fmt.Fprintf(w, "  ok        %-44s %s -> %s  %+.1f%%\n",
			key.label(), fmtNs(ob.NsPerOp), fmtNs(nb.NsPerOp), delta*100)
	}
	for _, ob := range oldRep.Benchmarks {
		key := benchKey{ob.Name, ob.Procs}
		if !seen[key] {
			fmt.Fprintf(w, "  missing   %-44s was %s\n", key.label(), fmtNs(ob.NsPerOp))
		}
	}
	fmt.Fprintf(w, "%d compared (%s -> %s), %d regressed beyond %.0f%%\n",
		compared, oldRep.Commit, newRep.Commit, regressions, tol*100)
	return regressions
}

// fmtNs renders a ns/op figure in the most readable unit.
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}
