package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: somrm/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSweep/N100001/reference         	      10	 345862450 ns/op	16059544 B/op	      40 allocs/op
BenchmarkSweep/N100001/fused-single      	      10	 157680519 ns/op	22465720 B/op	      43 allocs/op
BenchmarkSweep/N100001/fused-auto-8      	      12	 145756858 ns/op
PASS
ok  	somrm/internal/core	21.110s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" {
		t.Errorf("header: goos=%q goarch=%q", rep.GoOS, rep.GoArch)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("cpu header: %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}

	ref := rep.Benchmarks[0]
	if ref.Name != "BenchmarkSweep/N100001/reference" || ref.Procs != 1 {
		t.Errorf("reference: name=%q procs=%d", ref.Name, ref.Procs)
	}
	if ref.Iterations != 10 || ref.NsPerOp != 345862450 {
		t.Errorf("reference: iters=%d ns=%g", ref.Iterations, ref.NsPerOp)
	}
	if ref.BytesPerOp == nil || *ref.BytesPerOp != 16059544 {
		t.Errorf("reference: bytes=%v", ref.BytesPerOp)
	}
	if ref.AllocsPerOp == nil || *ref.AllocsPerOp != 40 {
		t.Errorf("reference: allocs=%v", ref.AllocsPerOp)
	}

	auto := rep.Benchmarks[2]
	if auto.Name != "BenchmarkSweep/N100001/fused-auto" || auto.Procs != 8 {
		t.Errorf("procs suffix not split: name=%q procs=%d", auto.Name, auto.Procs)
	}
	if auto.BytesPerOp != nil {
		t.Errorf("no -benchmem columns, but bytes=%v", auto.BytesPerOp)
	}
}

func TestParseNoBenchLines(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok pkg 1s\n")); err == nil {
		t.Error("expected an error on input without benchmark lines")
	}
}

func TestParseBenchLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",
		"BenchmarkX abc 5 ns/op",
		"BenchmarkX 10 fast very",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("accepted %q", line)
		}
	}
}
