package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: somrm/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSweep/N100001/reference         	      10	 345862450 ns/op	16059544 B/op	      40 allocs/op
BenchmarkSweep/N100001/fused-single      	      10	 157680519 ns/op	22465720 B/op	      43 allocs/op
BenchmarkSweep/N100001/fused-auto-8      	      12	 145756858 ns/op
PASS
ok  	somrm/internal/core	21.110s
`

func TestParse(t *testing.T) {
	// The sample was recorded on a GOMAXPROCS=8 machine (note the -8
	// suffix on fused-auto), so parse with that procs value regardless of
	// where the test runs.
	rep, err := parseWithProcs(strings.NewReader(sampleOutput), 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" {
		t.Errorf("header: goos=%q goarch=%q", rep.GoOS, rep.GoArch)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("cpu header: %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}

	ref := rep.Benchmarks[0]
	if ref.Name != "BenchmarkSweep/N100001/reference" || ref.Procs != 1 {
		t.Errorf("reference: name=%q procs=%d", ref.Name, ref.Procs)
	}
	if ref.Iterations != 10 || ref.NsPerOp != 345862450 {
		t.Errorf("reference: iters=%d ns=%g", ref.Iterations, ref.NsPerOp)
	}
	if ref.BytesPerOp == nil || *ref.BytesPerOp != 16059544 {
		t.Errorf("reference: bytes=%v", ref.BytesPerOp)
	}
	if ref.AllocsPerOp == nil || *ref.AllocsPerOp != 40 {
		t.Errorf("reference: allocs=%v", ref.AllocsPerOp)
	}

	auto := rep.Benchmarks[2]
	if auto.Name != "BenchmarkSweep/N100001/fused-auto" || auto.Procs != 8 {
		t.Errorf("procs suffix not split: name=%q procs=%d", auto.Name, auto.Procs)
	}
	if auto.BytesPerOp != nil {
		t.Errorf("no -benchmem columns, but bytes=%v", auto.BytesPerOp)
	}
}

func TestParsePreservesNumericNameSuffix(t *testing.T) {
	// On a GOMAXPROCS=1 machine the testing package appends no -P suffix,
	// so a trailing "-1" is part of the benchmark name (e.g. the
	// per-worker-count sweep variants) and must survive parsing intact.
	const out = `BenchmarkSweep/N100001/workers-1         	      10	 121100000 ns/op
BenchmarkSweep/N100001/fused-band        	      10	 108060000 ns/op
`
	rep, err := parseWithProcs(strings.NewReader(out), 1)
	if err != nil {
		t.Fatal(err)
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkSweep/N100001/workers-1" {
		t.Errorf("name %q: trailing -1 was stripped", b.Name)
	}
	if b.Procs != 1 {
		t.Errorf("procs = %d, want 1", b.Procs)
	}
}

func TestParseStripsOnlyExactProcsSuffix(t *testing.T) {
	// With GOMAXPROCS=8 every name gains a "-8" tail; only that exact
	// suffix is split off, even from names ending in other digits, and a
	// name that IS the suffix ("Benchmark-8") is left alone.
	const out = `BenchmarkSweep/workers-4-8         	      10	  61100000 ns/op
BenchmarkSweep/workers-8-8         	      10	  41100000 ns/op
BenchmarkSweep/workers-16-8        	      10	  31100000 ns/op
`
	rep, err := parseWithProcs(strings.NewReader(out), 8)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"BenchmarkSweep/workers-4", "BenchmarkSweep/workers-8", "BenchmarkSweep/workers-16"}
	for i, b := range rep.Benchmarks {
		if b.Name != want[i] {
			t.Errorf("benchmark %d: name %q, want %q", i, b.Name, want[i])
		}
		if b.Procs != 8 {
			t.Errorf("benchmark %d: procs = %d, want 8", i, b.Procs)
		}
	}
}

func TestParseNoBenchLines(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok pkg 1s\n")); err == nil {
		t.Error("expected an error on input without benchmark lines")
	}
}

func writeReport(t *testing.T, path string, rep *Report) {
	t.Helper()
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func benchNs(name string, ns float64) BenchResult {
	return BenchResult{Name: name, Procs: 1, Iterations: 10, NsPerOp: ns}
}

func TestCompareReports(t *testing.T) {
	oldRep := &Report{Commit: "aaa", Benchmarks: []BenchResult{
		benchNs("BenchmarkSweep/N100001/reference", 300e6),
		benchNs("BenchmarkSweep/N100001/fused-single", 150e6),
		benchNs("BenchmarkSweep/N100001/gone", 10e6),
	}}
	newRep := &Report{Commit: "bbb", Benchmarks: []BenchResult{
		benchNs("BenchmarkSweep/N100001/reference", 310e6),    // +3.3%: within tolerance
		benchNs("BenchmarkSweep/N100001/fused-single", 200e6), // +33%: regression
		benchNs("BenchmarkSweep/N100001/fused-band", 100e6),   // new
	}}
	var out strings.Builder
	if got := compareReports(oldRep, newRep, 0.15, &out); got != 1 {
		t.Errorf("regressions = %d, want 1\n%s", got, out.String())
	}
	for _, want := range []string{
		"ok        BenchmarkSweep/N100001/reference",
		"REGRESSED BenchmarkSweep/N100001/fused-single",
		"new       BenchmarkSweep/N100001/fused-band",
		"missing   BenchmarkSweep/N100001/gone",
		"2 compared (aaa -> bbb), 1 regressed beyond 15%",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}

	// A looser tolerance absorbs the +33% growth.
	out.Reset()
	if got := compareReports(oldRep, newRep, 0.5, &out); got != 0 {
		t.Errorf("regressions at tol 0.5 = %d, want 0\n%s", got, out.String())
	}
}

func TestCompareMatchesByNameAndProcs(t *testing.T) {
	oldRep := &Report{Commit: "aaa", Benchmarks: []BenchResult{
		{Name: "BenchmarkSweep/N100001", Procs: 1, NsPerOp: 100e6},
		{Name: "BenchmarkSweep/N100001", Procs: 8, NsPerOp: 20e6},
	}}
	newRep := &Report{Commit: "bbb", Benchmarks: []BenchResult{
		// The 1-core entry regressed 50% while the 8-core entry improved.
		// If the comparison collapsed both onto the bare name, one pair
		// would be diffed against the wrong baseline.
		{Name: "BenchmarkSweep/N100001", Procs: 1, NsPerOp: 150e6},
		{Name: "BenchmarkSweep/N100001", Procs: 8, NsPerOp: 15e6},
	}}
	var out strings.Builder
	if got := compareReports(oldRep, newRep, 0.15, &out); got != 1 {
		t.Errorf("regressions = %d, want 1 (the 1-core pair)\n%s", got, out.String())
	}
	for _, want := range []string{
		"REGRESSED BenchmarkSweep/N100001 ",
		"ok        BenchmarkSweep/N100001@8cores",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}

	// An entry whose procs changed between reports is a new/missing pair,
	// not a comparison against the wrong core count.
	out.Reset()
	soloOld := &Report{Commit: "aaa", Benchmarks: []BenchResult{{Name: "BenchmarkX", Procs: 1, NsPerOp: 100e6}}}
	soloNew := &Report{Commit: "bbb", Benchmarks: []BenchResult{{Name: "BenchmarkX", Procs: 8, NsPerOp: 500e6}}}
	if got := compareReports(soloOld, soloNew, 0.15, &out); got != 0 {
		t.Errorf("cross-procs pair compared: %d regressions\n%s", got, out.String())
	}
	for _, want := range []string{"new       BenchmarkX@8cores", "missing   BenchmarkX "} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunCompare drives the CLI entry point end to end, including the
// hand-scanned trailing -tol (the flag package stops at the first
// positional, so `-compare a b -tol 0.5` leaves `-tol 0.5` in Args()).
func TestRunCompare(t *testing.T) {
	dir := t.TempDir()
	oldPath, newPath := filepath.Join(dir, "old.json"), filepath.Join(dir, "new.json")
	writeReport(t, oldPath, &Report{Commit: "aaa", Benchmarks: []BenchResult{benchNs("BenchmarkX", 100e6)}})
	writeReport(t, newPath, &Report{Commit: "bbb", Benchmarks: []BenchResult{benchNs("BenchmarkX", 140e6)}})

	var stdout, stderr strings.Builder
	if code := runCompare([]string{oldPath, newPath}, 0.15, &stdout, &stderr); code != 1 {
		t.Errorf("default tolerance: exit %d, want 1\n%s%s", code, stdout.String(), stderr.String())
	}
	stdout.Reset()
	if code := runCompare([]string{oldPath, newPath, "-tol", "0.5"}, 0.15, &stdout, &stderr); code != 0 {
		t.Errorf("trailing -tol 0.5: exit %d, want 0\n%s%s", code, stdout.String(), stderr.String())
	}
	stdout.Reset()
	if code := runCompare([]string{oldPath, newPath, "-tol=0.5"}, 0.15, &stdout, &stderr); code != 0 {
		t.Errorf("trailing -tol=0.5: exit %d, want 0\n%s%s", code, stdout.String(), stderr.String())
	}

	// Usage and I/O failures exit 2, not 1.
	for name, args := range map[string][]string{
		"one file":     {oldPath},
		"three files":  {oldPath, newPath, oldPath},
		"missing file": {oldPath, filepath.Join(dir, "nope.json")},
		"bad tol":      {oldPath, newPath, "-tol", "abc"},
		"dangling tol": {oldPath, newPath, "-tol"},
	} {
		if code := runCompare(args, 0.15, &stdout, &stderr); code != 2 {
			t.Errorf("%s: exit %d, want 2", name, code)
		}
	}
	if code := runCompare([]string{oldPath, newPath, "-tol", "-1"}, 0.15, &stdout, &stderr); code != 2 {
		t.Error("negative tolerance accepted")
	}
}

func TestParseBenchLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",
		"BenchmarkX abc 5 ns/op",
		"BenchmarkX 10 fast very",
	} {
		if _, ok := parseBenchLine(line, 1); ok {
			t.Errorf("accepted %q", line)
		}
	}
}
