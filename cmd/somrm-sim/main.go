// Command somrm-sim simulates second-order Markov reward models: it either
// estimates moments of the accumulated reward by Monte Carlo (mode
// "moments") or emits a sampled joint state/reward trajectory as CSV (mode
// "path"), using the paper's section-7 ON-OFF model or a JSON spec shared
// with cmd/somrm.
//
// Usage:
//
//	somrm-sim -mode moments -sigma2 1 -t 0.5 -order 3 -reps 100000
//	somrm-sim -mode path -sigma2 10 -t 1 -dt 0.002 > path.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"somrm"
	"somrm/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "somrm-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("somrm-sim", flag.ContinueOnError)
	mode := fs.String("mode", "moments", "moments | path")
	sigma2 := fs.Float64("sigma2", 1, "per-source variance of the ON-OFF model")
	t := fs.Float64("t", 0.5, "horizon")
	order := fs.Int("order", 3, "highest moment (moments mode)")
	reps := fs.Int("reps", 100_000, "replications (moments mode)")
	dt := fs.Float64("dt", 0.002, "observation grid (path mode)")
	seed := fs.Int64("seed", 1, "RNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	model, err := somrm.OnOffModel(somrm.OnOffPaperSmall(*sigma2))
	if err != nil {
		return err
	}
	simulator, err := somrm.NewSimulator(model, *seed)
	if err != nil {
		return err
	}

	switch *mode {
	case "moments":
		est, err := simulator.EstimateMoments(*t, *order, *reps)
		if err != nil {
			return err
		}
		tab := report.NewTable(
			fmt.Sprintf("Monte Carlo moments, ON-OFF model sigma2=%g, t=%g, %d reps", *sigma2, *t, *reps),
			"order", "estimate", "95% half-width")
		for j := 0; j <= *order; j++ {
			hw, err := est.HalfWidth95(j)
			if err != nil {
				return err
			}
			if err := tab.AddFloatRow(strconv.Itoa(j), est.Moments[j], hw); err != nil {
				return err
			}
		}
		return tab.Render(out)
	case "path":
		tr, err := simulator.SampleTrajectory(*t, *dt)
		if err != nil {
			return err
		}
		csv, err := report.NewCSV(out, "t", "state", "reward")
		if err != nil {
			return err
		}
		for i := range tr.Times {
			if err := csv.Row(tr.Times[i], float64(tr.States[i]), tr.Reward[i]); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}
