package main

import (
	"strings"
	"testing"
)

func TestRunMoments(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-mode", "moments", "-reps", "2000", "-order", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Monte Carlo moments") || !strings.Contains(out, "95% half-width") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestRunPath(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-mode", "path", "-t", "0.1", "-dt", "0.01"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "t,state,reward\n") {
		t.Errorf("CSV header missing:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 5 {
		t.Error("too few CSV rows")
	}
}

func TestRunUnknownMode(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-mode", "nope"}, &sb); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestRunBadVariance(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-sigma2", "-3"}, &sb); err == nil {
		t.Error("negative variance accepted")
	}
}
