package server

import (
	"context"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"net/http"

	"somrm/internal/core"
	"somrm/internal/spec"
)

// ClusterHooks connects a Server to a solver cluster without the server
// package knowing about ring or membership types (the cluster package
// imports server, not the other way around). All hooks must be non-nil
// when the struct itself is set; internal/cluster.NewNode wires them.
type ClusterHooks struct {
	// Self is this replica's advertised base URL.
	Self string
	// Secret, when non-empty, authenticates the internal peer endpoints:
	// every /v1/peer/* request must carry it in the X-Somrm-Peer-Secret
	// header or is refused with 403. All replicas must share one value
	// (server.WithPeerSecret makes the per-peer clients send it). Empty
	// keeps the endpoints open — acceptable only on a trusted network.
	Secret string
	// Owner maps a canonical spec hash (hex) to the owning replica's base
	// URL and reports whether that replica is this process. Placement is
	// keyed on the model hash, not the full result key, so every
	// (params, t) variant of one model lands on the same owner and its
	// prepared-model cache pays off.
	Owner func(specHash string) (url string, local bool)
	// FetchResult asks the owner's result cache for a result-cache key
	// (peer cache fill). It returns ok=false on a miss or any peer
	// failure; the caller then solves locally.
	FetchResult func(ctx context.Context, ownerURL, key string) (resp *SolveResponse, ok bool)
	// Handoff streams the hottest cache entries to ring successors during
	// drain and returns how many entries peers accepted.
	Handoff func(ctx context.Context, entries []HandoffEntry) int
	// PeerStates reports each peer's circuit-breaker state for the
	// /metrics per-peer gauge.
	PeerStates func() map[string]string
}

// HandoffEntry is one cache entry streamed to a ring successor when a
// replica drains. Exactly one of Response (a result-cache entry),
// SpecJSON (a prepared-model cache entry, shipped as its canonical spec
// so the receiver rebuilds it bitwise-identically), or Checkpoint (a held
// interrupted-sweep snapshot) is set.
type HandoffEntry struct {
	// Key is the result-cache key (results and checkpoints) or the
	// canonical spec hash (prepared models).
	Key string `json:"key"`
	// SpecHash is the canonical spec hash of the entry's model; it routes
	// the entry to the replica that owns the model.
	SpecHash string `json:"spec_hash"`
	// Response is the cached solve response for result entries.
	Response *SolveResponse `json:"response,omitempty"`
	// SpecJSON is the canonical spec serialization for prepared entries.
	SpecJSON json.RawMessage `json:"spec,omitempty"`
	// Token and Checkpoint carry a held interrupted-sweep snapshot: the
	// receiver adopts it under the same resume token, so a client's
	// re-POST continues on the successor exactly where the drained replica
	// stopped.
	Token      string `json:"token,omitempty"`
	Checkpoint []byte `json:"checkpoint,omitempty"`
}

// HandoffRequest is the body of POST /v1/peer/handoff.
type HandoffRequest struct {
	Entries []HandoffEntry `json:"entries"`
}

// maxHandoffEntries bounds how many entries one handoff request may carry;
// larger pushes are truncated by the drainer and rejected by the receiver.
const maxHandoffEntries = 1024

// maxHandoffSpecEntries bounds how many prepared-model rebuilds one
// handoff request may trigger. Result entries are plain cache inserts, but
// each spec entry costs a full model build (validation, uniformization,
// matrix scaling), so the per-request CPU exposure is capped far below the
// raw entry limit; excess spec entries are skipped, and the sender's
// successor simply rebuilds those models on demand.
const maxHandoffSpecEntries = 64

// peerSecretHeader carries the cluster's shared secret on internal peer
// calls when ClusterHooks.Secret is configured.
const peerSecretHeader = "X-Somrm-Peer-Secret"

// peerAuthorized checks the shared-secret header against the configured
// cluster secret (constant-time). An empty secret admits everything. Only
// called from the peer handlers, which are registered solely when
// opts.Cluster is non-nil.
func (s *Server) peerAuthorized(r *http.Request) bool {
	secret := s.opts.Cluster.Secret
	if secret == "" {
		return true
	}
	got := r.Header.Get(peerSecretHeader)
	return subtle.ConstantTimeCompare([]byte(got), []byte(secret)) == 1
}

// handlePeerResult serves GET /v1/peer/result/{key}: a read-only lookup of
// this replica's result cache by full result-cache key, used by non-owner
// replicas for peer cache fill before solving locally. It deliberately
// works while draining — handing out cached results is exactly what a
// draining owner is still good for.
func (s *Server) handlePeerResult(w http.ResponseWriter, r *http.Request) {
	if !s.peerAuthorized(r) {
		writeError(w, http.StatusForbidden, "missing or invalid peer secret")
		return
	}
	key := r.PathValue("key")
	if !validHexKey(key) {
		writeError(w, http.StatusBadRequest, "bad result key")
		return
	}
	resp, ok := s.cache.Get(key)
	if !ok {
		writeError(w, http.StatusNotFound, "not cached")
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handlePeerHandoff serves POST /v1/peer/handoff: it absorbs a draining
// peer's hottest entries, inserting results into the local result cache
// and rebuilding prepared models from their canonical specs. Entries are
// validated individually; a malformed one is skipped, not fatal, so one
// bad entry cannot void a whole drain. Prepared-model rebuilds run on the
// worker pool under this server's normal admission control and are capped
// at maxHandoffSpecEntries per request.
func (s *Server) handlePeerHandoff(w http.ResponseWriter, r *http.Request) {
	if !s.peerAuthorized(r) {
		writeError(w, http.StatusForbidden, "missing or invalid peer secret")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, ErrShuttingDown.Error())
		return
	}
	var req HandoffRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Entries) > maxHandoffEntries {
		writeError(w, http.StatusBadRequest, "too many handoff entries")
		return
	}
	// One deadline for the whole push: a drain handoff is best effort, so
	// it must never hold this handler (or the pool slots its rebuilds
	// occupy) longer than a regular solve is allowed to run.
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.DefaultTimeout)
	defer cancel()
	accepted := 0
	specBudget := maxHandoffSpecEntries
	for i := range req.Entries {
		e := &req.Entries[i]
		if e.Response == nil && len(e.SpecJSON) > 0 {
			if specBudget == 0 {
				continue
			}
			specBudget--
		}
		if s.acceptHandoffEntry(ctx, e) {
			accepted++
		}
	}
	s.metrics.HandoffEntries.Add(int64(accepted))
	writeJSON(w, http.StatusOK, map[string]int{"accepted": accepted})
}

// acceptHandoffEntry installs one streamed entry, reporting whether it was
// usable.
func (s *Server) acceptHandoffEntry(ctx context.Context, e *HandoffEntry) bool {
	if !validHexKey(e.Key) || !validHexKey(e.SpecHash) {
		return false
	}
	switch {
	case e.Response != nil:
		// A result entry: adopt it as-is. The response is bitwise the
		// owner's solve, so serving it locally preserves the cluster's
		// determinism guarantee.
		s.cache.Put(e.Key, e.SpecHash, e.Response)
		return true
	case len(e.Checkpoint) > 0:
		// A held interrupted-sweep snapshot: adopt it under the sender's
		// token so the client's resume re-POST lands here unchanged. The
		// blob is self-verifying; a corrupt or implausible one is skipped.
		if s.checkpoints == nil || !validHexKey(e.Token) {
			return false
		}
		cp, err := core.DecodeCheckpoint(e.Checkpoint)
		if err != nil {
			return false
		}
		s.checkpoints.adopt(e.Token, e.Key, e.SpecHash, e.Checkpoint, cp.Completed, cp.GMax)
		return true
	case len(e.SpecJSON) > 0:
		// A prepared-model entry: rebuild from the canonical spec through
		// the prepared cache (single-flight, LRU). The key must be the
		// spec's own canonical hash — a mismatch means a corrupted entry.
		sp, err := spec.Parse(e.SpecJSON)
		if err != nil {
			return false
		}
		h, err := sp.Hash()
		if err != nil || hex.EncodeToString(h[:]) != e.Key {
			return false
		}
		// The rebuild is real CPU work (validation, uniformization, matrix
		// scaling), so it runs on the worker pool like any solve: queue
		// admission control applies, and a full queue or expired deadline
		// skips the entry instead of pinning the handler goroutine.
		var prepErr error
		if poolErr := s.pool.Do(ctx, func(context.Context) {
			_, _, prepErr = s.preparedFor(e.Key, func() (*core.Prepared, error) { return buildPrepared(sp) }, sp)
		}); poolErr != nil {
			return false
		}
		return prepErr == nil
	default:
		return false
	}
}

// validHexKey reports whether k looks like one of our content hashes: a
// non-empty, reasonably bounded, lowercase-hex string. Peer endpoints are
// internal, but the check keeps junk out of cache keys and URL paths.
func validHexKey(k string) bool {
	if len(k) == 0 || len(k) > 128 {
		return false
	}
	for i := 0; i < len(k); i++ {
		c := k[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// handoffEntries snapshots the hottest result-cache and prepared-model
// entries for drain handoff, most recently used first, bounded by the
// configured budget.
func (s *Server) handoffEntries(limit int) []HandoffEntry {
	if limit <= 0 {
		return nil
	}
	entries := s.cache.Hottest(limit)
	// Held checkpoints ride along outside the result/spec budget (their
	// own, much smaller cap): they are the only entries whose loss costs a
	// client real progress, not just a recompute.
	if s.checkpoints != nil {
		entries = append(entries, s.checkpoints.export(maxHandoffCheckpointEntries)...)
	}
	// Spend what remains of the budget on prepared models: results are
	// the cheaper win (no recompute at all), prepared specs save the
	// receiver a build per model.
	if rest := limit - len(entries); rest > 0 {
		entries = append(entries, s.prepared.Hottest(rest)...)
	}
	return entries
}
