package server

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"net/http"

	"somrm/internal/spec"
)

// ClusterHooks connects a Server to a solver cluster without the server
// package knowing about ring or membership types (the cluster package
// imports server, not the other way around). All hooks must be non-nil
// when the struct itself is set; internal/cluster.NewNode wires them.
type ClusterHooks struct {
	// Self is this replica's advertised base URL.
	Self string
	// Owner maps a canonical spec hash (hex) to the owning replica's base
	// URL and reports whether that replica is this process. Placement is
	// keyed on the model hash, not the full result key, so every
	// (params, t) variant of one model lands on the same owner and its
	// prepared-model cache pays off.
	Owner func(specHash string) (url string, local bool)
	// FetchResult asks the owner's result cache for a result-cache key
	// (peer cache fill). It returns ok=false on a miss or any peer
	// failure; the caller then solves locally.
	FetchResult func(ctx context.Context, ownerURL, key string) (resp *SolveResponse, ok bool)
	// Handoff streams the hottest cache entries to ring successors during
	// drain and returns how many entries peers accepted.
	Handoff func(ctx context.Context, entries []HandoffEntry) int
	// PeerStates reports each peer's circuit-breaker state for the
	// /metrics per-peer gauge.
	PeerStates func() map[string]string
}

// HandoffEntry is one cache entry streamed to a ring successor when a
// replica drains. Exactly one of Response (a result-cache entry) or
// SpecJSON (a prepared-model cache entry, shipped as its canonical spec
// so the receiver rebuilds it bitwise-identically) is set.
type HandoffEntry struct {
	// Key is the result-cache key (results) or the canonical spec hash
	// (prepared models).
	Key string `json:"key"`
	// SpecHash is the canonical spec hash of the entry's model; it routes
	// the entry to the replica that owns the model.
	SpecHash string `json:"spec_hash"`
	// Response is the cached solve response for result entries.
	Response *SolveResponse `json:"response,omitempty"`
	// SpecJSON is the canonical spec serialization for prepared entries.
	SpecJSON json.RawMessage `json:"spec,omitempty"`
}

// HandoffRequest is the body of POST /v1/peer/handoff.
type HandoffRequest struct {
	Entries []HandoffEntry `json:"entries"`
}

// maxHandoffEntries bounds how many entries one handoff request may carry;
// larger pushes are truncated by the drainer and rejected by the receiver.
const maxHandoffEntries = 1024

// handlePeerResult serves GET /v1/peer/result/{key}: a read-only lookup of
// this replica's result cache by full result-cache key, used by non-owner
// replicas for peer cache fill before solving locally. It deliberately
// works while draining — handing out cached results is exactly what a
// draining owner is still good for.
func (s *Server) handlePeerResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validHexKey(key) {
		writeError(w, http.StatusBadRequest, "bad result key")
		return
	}
	resp, ok := s.cache.Get(key)
	if !ok {
		writeError(w, http.StatusNotFound, "not cached")
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handlePeerHandoff serves POST /v1/peer/handoff: it absorbs a draining
// peer's hottest entries, inserting results into the local result cache
// and rebuilding prepared models from their canonical specs. Entries are
// validated individually; a malformed one is skipped, not fatal, so one
// bad entry cannot void a whole drain.
func (s *Server) handlePeerHandoff(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, ErrShuttingDown.Error())
		return
	}
	var req HandoffRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Entries) > maxHandoffEntries {
		writeError(w, http.StatusBadRequest, "too many handoff entries")
		return
	}
	accepted := 0
	for i := range req.Entries {
		if s.acceptHandoffEntry(&req.Entries[i]) {
			accepted++
		}
	}
	s.metrics.HandoffEntries.Add(int64(accepted))
	writeJSON(w, http.StatusOK, map[string]int{"accepted": accepted})
}

// acceptHandoffEntry installs one streamed entry, reporting whether it was
// usable.
func (s *Server) acceptHandoffEntry(e *HandoffEntry) bool {
	if !validHexKey(e.Key) || !validHexKey(e.SpecHash) {
		return false
	}
	switch {
	case e.Response != nil:
		// A result entry: adopt it as-is. The response is bitwise the
		// owner's solve, so serving it locally preserves the cluster's
		// determinism guarantee.
		s.cache.Put(e.Key, e.SpecHash, e.Response)
		return true
	case len(e.SpecJSON) > 0:
		// A prepared-model entry: rebuild from the canonical spec through
		// the prepared cache (single-flight, LRU). The key must be the
		// spec's own canonical hash — a mismatch means a corrupted entry.
		sp, err := spec.Parse(e.SpecJSON)
		if err != nil {
			return false
		}
		h, err := sp.Hash()
		if err != nil || hex.EncodeToString(h[:]) != e.Key {
			return false
		}
		if _, _, err := s.preparedFor(e.Key, sp); err != nil {
			return false
		}
		return true
	default:
		return false
	}
}

// validHexKey reports whether k looks like one of our content hashes: a
// non-empty, reasonably bounded, lowercase-hex string. Peer endpoints are
// internal, but the check keeps junk out of cache keys and URL paths.
func validHexKey(k string) bool {
	if len(k) == 0 || len(k) > 128 {
		return false
	}
	for i := 0; i < len(k); i++ {
		c := k[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// handoffEntries snapshots the hottest result-cache and prepared-model
// entries for drain handoff, most recently used first, bounded by the
// configured budget.
func (s *Server) handoffEntries(limit int) []HandoffEntry {
	if limit <= 0 {
		return nil
	}
	entries := s.cache.Hottest(limit)
	// Spend what remains of the budget on prepared models: results are
	// the cheaper win (no recompute at all), prepared specs save the
	// receiver a build per model.
	if rest := limit - len(entries); rest > 0 {
		entries = append(entries, s.prepared.Hottest(rest)...)
	}
	return entries
}
