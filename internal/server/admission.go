package server

import (
	"fmt"
	"sync"

	"somrm/internal/core"
	"somrm/internal/spec"
)

// MemShedError reports a request refused by the memory admission gate: its
// estimated solver working set did not fit the remaining budget. Handlers
// surface it as 503 and count it in mem_shed_total; clients should back
// off and retry, exactly as for a full queue.
type MemShedError struct {
	// Need is the request's estimated working set, Budget the configured
	// limit, InFlight the estimate reserved by admitted solves at the time
	// of the refusal (all bytes).
	Need, Budget, InFlight int64
}

func (e *MemShedError) Error() string {
	return fmt.Sprintf("server: memory budget exceeded (need ~%d bytes, %d of %d in flight)",
		e.Need, e.InFlight, e.Budget)
}

// memGate admits solver work against a byte budget: each admitted request
// reserves its estimated working set until its release runs. A request
// whose estimate exceeds the whole budget is always shed — a budget is a
// statement that such a solve must not run here.
type memGate struct {
	mu       sync.Mutex
	budget   int64
	inFlight int64
}

func newMemGate(budget int64) *memGate {
	return &memGate{budget: budget}
}

// Reserve admits need bytes against the budget, returning the paired
// release (idempotent) and whether admission succeeded.
func (g *memGate) Reserve(need int64) (func(), bool) {
	if need < 0 {
		need = 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.inFlight+need > g.budget {
		return nil, false
	}
	g.inFlight += need
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			g.inFlight -= need
			g.mu.Unlock()
		})
	}, true
}

// InFlight reports the reserved byte total (the mem_inflight_bytes gauge).
func (g *memGate) InFlight() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inFlight
}

// estimateWorkingSet is the admission-time footprint estimate for a single
// solve request. See estimateFootprint for what is counted.
func estimateWorkingSet(req *SolveRequest, sweepWorkers int, matrixFormat string) int64 {
	return estimateFootprint(req.Model, req.Compose, req.Method, req.Order, 1, matrixFormat)
}

// estimateItemWorkingSet is the admission-time estimate for one batch item
// against the batch's shared model.
func estimateItemWorkingSet(model *spec.Model, item *BatchItem, sweepWorkers int, matrixFormat string) int64 {
	return estimateFootprint(model, nil, item.Method, item.Order, len(item.Times), matrixFormat)
}

// estimateFootprint approximates the peak solver working set of one solve
// in bytes, from the request spec alone (nothing is built): the matrix in
// the storage format the structure-adaptive engine will pick, plus the
// sweep's coefficient vectors and per-time-point accumulators. It is a
// deliberate overestimate-by-a-little — admission control needs an upper
// bound that tracks the real footprint's shape (states, density,
// bandwidth, format), not an exact byte count.
func estimateFootprint(model *spec.Model, compose []*spec.Model, method string, order, nTimes int, matrixFormat string) int64 {
	n, nnz, bandwidth := 0, 0, 0
	matrixFree := false
	switch {
	case len(compose) > 0:
		n = 1
		perState := 0 // summed average out-degree of the factors
		for _, c := range compose {
			n *= c.States
			if c.States > 0 {
				perState += (len(c.Transitions) + c.States - 1) / c.States
			}
		}
		// Above the materialization threshold the composed generator stays
		// matrix-free (Kronecker-sum operator): only the tiny factor
		// matrices are stored, and the vectors dominate.
		matrixFree = n > core.ComposeMaterializeThreshold
		nnz = n * (perState + 1) // Kronecker sum density: one factor move per axis
		bandwidth = n            // composition scrambles locality; assume no band
	case model != nil:
		n = model.States
		nnz = len(model.Transitions) + n // off-diagonals plus the diagonal
		for _, tr := range model.Transitions {
			if d := tr.From - tr.To; d > bandwidth || -d > bandwidth {
				if d < 0 {
					d = -d
				}
				bandwidth = d
			}
		}
	default:
		return 0
	}
	if n <= 0 {
		return 0
	}

	vec := int64(n) * 8
	csr32 := int64(nnz)*(8+4) + int64(n+1)*4 // values + 32-bit cols + row pointers
	csr64 := int64(nnz)*(8+8) + int64(n+1)*8
	band := int64(n) * int64(2*bandwidth+1) * 8 // full stencil, present or not
	var matrix int64
	switch {
	case matrixFree:
		matrix = 0 // factor storage is negligible next to the product vectors
	case matrixFormat == "band":
		matrix = band
	case matrixFormat == "csr64":
		matrix = csr64
	case matrixFormat == "csr" || matrixFormat == "qbd":
		matrix = csr32
	default:
		// auto: the structure-adaptive engine picks the compact layout.
		matrix = min(band, csr32)
	}

	switch method {
	case MethodODE, MethodSimulation:
		// Point solvers keep a handful of length-n vectors per order.
		return matrix + vec*int64(order+2)*2
	}
	// Randomization: cur/next coefficient blocks (order 3 runs the
	// interleaved 4-wide layout; count the worst of the two) plus one
	// accumulator block per time point.
	perBlock := vec * int64(order+1)
	return matrix + 2*perBlock + int64(nTimes)*perBlock
}
