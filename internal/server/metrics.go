package server

import (
	"sync/atomic"
	"time"
)

// latencyBucketsMS are the upper bounds (milliseconds) of the solve
// latency histogram; the final implicit bucket is +Inf.
var latencyBucketsMS = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Metrics holds the server's expvar-style counters. All fields are
// updated atomically and may be read while the server is live.
type Metrics struct {
	// Requests counts /v1/solve requests accepted for processing.
	Requests atomic.Int64
	// Solves counts actual solver executions: requests that were neither
	// cache hits nor deduplicated onto another request's solve.
	Solves atomic.Int64
	// CacheHits / CacheMisses count result-cache lookups.
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
	// DedupShared counts requests served by another in-flight identical
	// request (single-flight followers).
	DedupShared atomic.Int64
	// Rejected counts requests turned away with 503 (full queue or
	// shutdown in progress), including whole batches rejected up front and
	// individual batch items that found the queue full.
	Rejected atomic.Int64
	// Failures counts requests that reached the solver and failed, or
	// timed out (batch items count individually).
	Failures atomic.Int64
	// Panics counts solver panics recovered by the worker pool and the
	// batch item runners. The process survives every one of them; each
	// surfaces to its caller as a sanitized 500.
	Panics atomic.Int64
	// BatchShed counts batch items refused admission to keep queue
	// headroom free for single solves (a subset of Rejected).
	BatchShed atomic.Int64
	// ShedQueueFull counts work refused instantly because the queue was at
	// capacity; ShedDeadline counts work that enqueued but whose deadline
	// expired before a worker picked it up. Both are queue-pressure
	// signals; the split tells operators whether the queue is too small
	// (full) or too slow to drain (deadline).
	ShedQueueFull atomic.Int64
	ShedDeadline  atomic.Int64
	// MemShed counts requests and batch items refused by the memory
	// admission gate (estimated working set over budget; a subset of
	// Rejected).
	MemShed atomic.Int64

	// Partials counts solves interrupted at their deadline that answered
	// 202 with a resume token; Resumes counts solves continued from a held
	// checkpoint to completion.
	Partials atomic.Int64
	Resumes  atomic.Int64

	// CacheRestored counts result-cache entries replayed from the
	// persistence journal at startup; PersistWrites counts journaled cache
	// inserts; PersistErrors counts journal write failures (each downgrades
	// persistence, never the solve).
	CacheRestored atomic.Int64
	PersistWrites atomic.Int64
	PersistErrors atomic.Int64

	// BatchRequests counts /v1/solve/batch requests accepted for
	// processing.
	BatchRequests atomic.Int64
	// PreparedHits / PreparedMisses count prepared-model cache lookups
	// (hits include joining an in-flight single-flight build).
	PreparedHits   atomic.Int64
	PreparedMisses atomic.Int64
	// BatchItems is the items-per-batch histogram; SweepPoints is the
	// time-points-per-shared-sweep histogram (randomization items only).
	BatchItems  sizeHistogram
	SweepPoints sizeHistogram

	// RouteLocal / RouteRemote classify solve and batch requests by ring
	// ownership of their model hash: RouteLocal counts requests this
	// replica owns, RouteRemote requests owned elsewhere (served here
	// anyway — after a peer cache fill attempt — because a client failed
	// over or routed freely). Both stay zero outside cluster mode.
	RouteLocal  atomic.Int64
	RouteRemote atomic.Int64
	// PeerFillHits / PeerFillMisses count peer cache-fill attempts for
	// non-owned requests: a hit adopted the owner's cached result instead
	// of solving locally; a miss (owner had no entry, or was unreachable)
	// fell through to a local solve.
	PeerFillHits   atomic.Int64
	PeerFillMisses atomic.Int64
	// HandoffEntries counts drain-handoff entries this replica accepted
	// from draining peers via POST /v1/peer/handoff.
	HandoffEntries atomic.Int64

	// SweepFormatBand / SweepFormatQBD / SweepFormatCSR32 /
	// SweepFormatCSR64 / SweepFormatKron count solver executions by the
	// matrix storage format the randomization sweep streamed
	// (core.Stats.MatrixFormat) — the label operators watch to confirm
	// the structure-adaptive engine picked the band or block-tridiagonal
	// kernel for their models, or streamed a composed model matrix-free
	// through the Kronecker-sum operator.
	SweepFormatBand  atomic.Int64
	SweepFormatQBD   atomic.Int64
	SweepFormatCSR32 atomic.Int64
	SweepFormatCSR64 atomic.Int64
	SweepFormatKron  atomic.Int64
	// SweepBlocked counts solver executions whose sweep ran temporally
	// blocked (core.Stats.TemporalBlock > 1) — the signal operators watch
	// to confirm wavefront blocking engaged for their models.
	SweepBlocked atomic.Int64
	// SweepKernelAVX2 / SweepKernelScalar count solver executions by the
	// compute kernel the sweep dispatched (core.Stats.SweepKernel) — the
	// signal operators watch to confirm the vectorized kernels are
	// actually serving solves (a fleet stuck on "scalar" means missing
	// hardware support or a forgotten SOMRM_NOSIMD/-no-simd switch).
	SweepKernelAVX2   atomic.Int64
	SweepKernelScalar atomic.Int64

	// solveLatency tracks end-to-end solve time (queue wait included);
	// sweepLatency tracks only the randomization sweep inside the solver
	// (core.Stats.SweepNS), so operators can tell solver cost from queue
	// pressure when the two histograms diverge.
	solveLatency latencyHistogram
	sweepLatency latencyHistogram
}

// latencyHistogram is a fixed-bucket duration histogram sharing the
// latencyBucketsMS bounds; all fields are updated atomically.
type latencyHistogram struct {
	count atomic.Int64
	sumUS atomic.Int64 // microseconds, to keep the sum integral
	bins  [14]atomic.Int64
}

// Observe records one duration.
func (h *latencyHistogram) Observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	h.count.Add(1)
	h.sumUS.Add(int64(d / time.Microsecond))
	for i, ub := range latencyBucketsMS {
		if ms <= ub {
			h.bins[i].Add(1)
			return
		}
	}
	h.bins[len(latencyBucketsMS)].Add(1)
}

func (h *latencyHistogram) snapshot() LatencySnapshot {
	snap := LatencySnapshot{
		Count: h.count.Load(),
		SumMS: float64(h.sumUS.Load()) / 1000,
	}
	var cum int64
	for i := range h.bins {
		cum += h.bins[i].Load()
		b := HistogramBucket{Count: cum}
		if i < len(latencyBucketsMS) {
			b.LE = latencyBucketsMS[i]
		} else {
			b.Inf = true
		}
		snap.Buckets = append(snap.Buckets, b)
	}
	return snap
}

// sizeBucketBounds are the upper bounds of the size histograms (items per
// batch, time points per sweep); the final implicit bucket is +Inf.
var sizeBucketBounds = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// sizeHistogram counts small integer sizes (batch fan-out widths, sweep
// grid lengths) into power-of-two-ish buckets.
type sizeHistogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [10]atomic.Int64
}

// Observe records one size observation.
func (h *sizeHistogram) Observe(n int) {
	h.count.Add(1)
	h.sum.Add(int64(n))
	for i, ub := range sizeBucketBounds {
		if int64(n) <= ub {
			h.buckets[i].Add(1)
			return
		}
	}
	h.buckets[len(sizeBucketBounds)].Add(1)
}

// SizeBucket is one cumulative-style bucket of a size histogram. LE is the
// bucket's inclusive upper bound (a count, not a duration); the +Inf bucket
// is rendered with LE = 0 and Inf = true.
type SizeBucket struct {
	LE    int64 `json:"le"`
	Inf   bool  `json:"inf,omitempty"`
	Count int64 `json:"count"`
}

// SizeSnapshot is a size histogram in the /metrics payload.
type SizeSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Buckets []SizeBucket `json:"buckets"`
}

func (h *sizeHistogram) snapshot() SizeSnapshot {
	snap := SizeSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		b := SizeBucket{Count: cum}
		if i < len(sizeBucketBounds) {
			b.LE = sizeBucketBounds[i]
		} else {
			b.Inf = true
		}
		snap.Buckets = append(snap.Buckets, b)
	}
	return snap
}

// ObserveLatency records one end-to-end solve latency.
func (m *Metrics) ObserveLatency(d time.Duration) {
	m.solveLatency.Observe(d)
}

// ObserveSweep records the randomization-sweep portion of one solve.
func (m *Metrics) ObserveSweep(d time.Duration) {
	m.sweepLatency.Observe(d)
}

// ObserveSweepFormat records the matrix storage format one solver
// execution streamed (core.Stats.MatrixFormat). Unknown or empty labels
// (solves that never ran a sweep) are ignored.
func (m *Metrics) ObserveSweepFormat(format string) {
	switch format {
	case "band":
		m.SweepFormatBand.Add(1)
	case "qbd":
		m.SweepFormatQBD.Add(1)
	case "csr32":
		m.SweepFormatCSR32.Add(1)
	case "csr64":
		m.SweepFormatCSR64.Add(1)
	case "kron":
		m.SweepFormatKron.Add(1)
	}
}

// ObserveSweepBlocking records whether one solver execution ran its sweep
// temporally blocked (core.Stats.TemporalBlock > 1). Depths of 0 (no
// sweep) and 1 (unblocked) are ignored.
func (m *Metrics) ObserveSweepBlocking(depth int) {
	if depth > 1 {
		m.SweepBlocked.Add(1)
	}
}

// ObserveSweepKernel records the compute kernel one solver execution
// dispatched (core.Stats.SweepKernel). Unknown or empty labels (solves
// that never ran a sweep) are ignored.
func (m *Metrics) ObserveSweepKernel(kernel string) {
	switch kernel {
	case "avx2":
		m.SweepKernelAVX2.Add(1)
	case "scalar":
		m.SweepKernelScalar.Add(1)
	}
}

// HistogramBucket is one cumulative-style histogram bucket in the
// /metrics payload. LE is the bucket's inclusive upper bound in
// milliseconds; the +Inf bucket is rendered with LE = 0 and Inf = true.
type HistogramBucket struct {
	LE    float64 `json:"le_ms"`
	Inf   bool    `json:"inf,omitempty"`
	Count int64   `json:"count"`
}

// LatencySnapshot is the solve latency histogram in the /metrics payload.
type LatencySnapshot struct {
	Count   int64             `json:"count"`
	SumMS   float64           `json:"sum_ms"`
	Buckets []HistogramBucket `json:"buckets"`
}

// MetricsSnapshot is the JSON document served at /metrics.
type MetricsSnapshot struct {
	Requests    int64 `json:"requests"`
	Solves      int64 `json:"solves"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	DedupShared int64 `json:"dedup_shared"`
	Rejected    int64 `json:"rejected"`
	Failures    int64 `json:"failures"`
	Panics      int64 `json:"panics_total"`
	BatchShed   int64 `json:"batch_shed_total"`

	// Load-shedding split: instant queue-full refusals vs deadlines that
	// expired in the queue, plus memory-admission sheds.
	ShedQueueFull int64 `json:"shed_queue_full_total"`
	ShedDeadline  int64 `json:"shed_deadline_total"`
	MemShed       int64 `json:"mem_shed_total"`

	// Durability counters: 202 partial responses and checkpoint resumes,
	// persisted-cache activity, and the live checkpoint/memory gauges.
	Partials      int64 `json:"partials_total"`
	Resumes       int64 `json:"resumes_total"`
	CacheRestored int64 `json:"cache_restored_total"`
	PersistWrites int64 `json:"persist_writes_total"`
	PersistErrors int64 `json:"persist_errors_total"`
	// CheckpointEntries is the live held-checkpoint count; MemInFlightBytes
	// and MemBudgetBytes expose the admission gate (all zero when the
	// features are off).
	CheckpointEntries int64 `json:"checkpoint_entries"`
	MemInFlightBytes  int64 `json:"mem_inflight_bytes"`
	MemBudgetBytes    int64 `json:"mem_budget_bytes"`

	BatchRequests  int64 `json:"batch_requests"`
	PreparedHits   int64 `json:"prepared_hits"`
	PreparedMisses int64 `json:"prepared_misses"`

	// Cluster counters: request routing by ring ownership, peer
	// cache-fill outcomes, and drain-handoff entries accepted from
	// draining peers. All zero outside cluster mode.
	RouteLocal     int64 `json:"route_local_total"`
	RouteRemote    int64 `json:"route_remote_total"`
	PeerFillHits   int64 `json:"peer_fill_hits_total"`
	PeerFillMisses int64 `json:"peer_fill_misses_total"`
	HandoffEntries int64 `json:"handoff_entries_total"`
	// PeerBreakers is the per-peer circuit-breaker state gauge ("closed",
	// "open", "half-open") keyed by peer URL; absent outside cluster mode.
	PeerBreakers map[string]string `json:"peer_breakers,omitempty"`

	// SweepFormats counts solver executions by the matrix storage format
	// the randomization sweep streamed, keyed by the core.Stats label
	// ("band", "csr32", "csr64").
	SweepFormats map[string]int64 `json:"sweep_formats"`
	// SweepBlocked counts solver executions whose randomization sweep ran
	// with wavefront temporal blocking engaged (depth > 1).
	SweepBlocked int64 `json:"sweep_blocked_total"`
	// SweepKernels counts solver executions by the compute kernel the
	// sweep dispatched, keyed by the core.Stats label ("avx2", "scalar").
	SweepKernels map[string]int64 `json:"sweep_kernels"`

	QueueDepth      int     `json:"queue_depth"`
	Workers         int     `json:"workers"`
	CacheEntries    int     `json:"cache_entries"`
	PreparedEntries int     `json:"prepared_entries"`
	UptimeSeconds   float64 `json:"uptime_seconds"`

	BatchItems   SizeSnapshot    `json:"batch_items"`
	SweepPoints  SizeSnapshot    `json:"sweep_points"`
	SolveLatency LatencySnapshot `json:"solve_latency"`
	SweepLatency LatencySnapshot `json:"sweep_latency"`
}

// Snapshot returns a consistent-enough point-in-time copy of the
// counters (each counter is read atomically; the set is not fenced).
func (m *Metrics) Snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		Requests:       m.Requests.Load(),
		Solves:         m.Solves.Load(),
		CacheHits:      m.CacheHits.Load(),
		CacheMisses:    m.CacheMisses.Load(),
		DedupShared:    m.DedupShared.Load(),
		Rejected:       m.Rejected.Load(),
		Failures:       m.Failures.Load(),
		Panics:         m.Panics.Load(),
		BatchShed:      m.BatchShed.Load(),
		ShedQueueFull:  m.ShedQueueFull.Load(),
		ShedDeadline:   m.ShedDeadline.Load(),
		MemShed:        m.MemShed.Load(),
		Partials:       m.Partials.Load(),
		Resumes:        m.Resumes.Load(),
		CacheRestored:  m.CacheRestored.Load(),
		PersistWrites:  m.PersistWrites.Load(),
		PersistErrors:  m.PersistErrors.Load(),
		BatchRequests:  m.BatchRequests.Load(),
		PreparedHits:   m.PreparedHits.Load(),
		PreparedMisses: m.PreparedMisses.Load(),
		RouteLocal:     m.RouteLocal.Load(),
		RouteRemote:    m.RouteRemote.Load(),
		PeerFillHits:   m.PeerFillHits.Load(),
		PeerFillMisses: m.PeerFillMisses.Load(),
		HandoffEntries: m.HandoffEntries.Load(),
		BatchItems:     m.BatchItems.snapshot(),
		SweepPoints:    m.SweepPoints.snapshot(),
		SweepFormats: map[string]int64{
			"band":  m.SweepFormatBand.Load(),
			"qbd":   m.SweepFormatQBD.Load(),
			"csr32": m.SweepFormatCSR32.Load(),
			"csr64": m.SweepFormatCSR64.Load(),
			"kron":  m.SweepFormatKron.Load(),
		},
		SweepBlocked: m.SweepBlocked.Load(),
		SweepKernels: map[string]int64{
			"avx2":   m.SweepKernelAVX2.Load(),
			"scalar": m.SweepKernelScalar.Load(),
		},
	}
	snap.SolveLatency = m.solveLatency.snapshot()
	snap.SweepLatency = m.sweepLatency.snapshot()
	return snap
}
