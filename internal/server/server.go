// Package server turns the somrm solvers into an HTTP JSON service: a
// bounded worker pool executes solves with per-request deadlines, an LRU
// cache keyed by a canonical (model, params) hash serves repeated
// requests, and concurrent identical requests are deduplicated onto a
// single solve. The package is stdlib-only, like the rest of the module.
//
// Endpoints:
//
//	POST /v1/solve        — solve one model (see SolveRequest / SolveResponse)
//	POST /v1/solve/batch  — solve one model at many time grids in one request
//	                        (see BatchRequest / BatchResponse)
//	GET  /healthz         — liveness; 503 while draining
//	GET  /metrics         — counters and the solve latency histogram (JSON)
package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"somrm/internal/core"
)

// Options configures a Server. The zero value selects sensible defaults.
type Options struct {
	// Workers is the solver pool size (default GOMAXPROCS). Solves are
	// CPU-bound, so more workers than cores only adds contention.
	Workers int
	// QueueSize bounds the number of solves waiting for a worker
	// (default 64). A full queue rejects with 503 rather than building an
	// unbounded backlog.
	QueueSize int
	// BatchQueueReserve is the number of queue slots batch items may never
	// consume: when free slots drop to this reserve, batch items are shed
	// with 503-per-item while single solves still enqueue, so wide batches
	// cannot starve interactive traffic. Default QueueSize/4 (at least 1);
	// negative disables the reserve.
	BatchQueueReserve int
	// CacheSize is the LRU result-cache capacity in entries
	// (default 256; negative disables caching).
	CacheSize int
	// PreparedCacheSize is the prepared-model LRU capacity in entries
	// (default 128; negative disables). Prepared models carry the validated
	// model plus its uniformized matrices, so repeated solves and batches
	// against the same model skip parsing, validation, and matrix scaling.
	PreparedCacheSize int
	// DefaultTimeout caps per-request solve time (default 30s). Requests
	// may ask for less via timeout_ms, never more.
	DefaultTimeout time.Duration
	// MaxOrder bounds the requested moment order (default 12).
	MaxOrder int
	// MaxBodyBytes bounds the request body (default 8 MiB).
	MaxBodyBytes int64
	// SweepWorkers is passed through to the randomization solver
	// (core.Options.SweepWorkers): 0 picks automatically (serial below the
	// solver's parallel threshold, a fused worker team above it), > 0
	// forces a team size, < 0 forces the serial reference sweep. Results
	// are bitwise identical for every setting. Note the server also runs
	// Workers solves concurrently; on a machine with C cores, keeping
	// Workers x SweepWorkers near C avoids oversubscription.
	SweepWorkers int
	// Cluster connects this server to a solver cluster: request routing
	// is classified against the ring, non-owned cache misses try a peer
	// cache fill before solving locally, and Shutdown streams the hottest
	// cache entries to ring successors. nil (the default) disables all
	// cluster behavior; internal/cluster.NewNode wires it.
	Cluster *ClusterHooks
	// HandoffMax bounds how many cache entries (results first, then
	// prepared-model specs) a draining replica streams to its successors
	// (default 128; negative disables drain handoff).
	HandoffMax int
	// MatrixFormat is passed through to the randomization solver
	// (core.Options.MatrixFormat): "" or "auto" picks the storage
	// representation per model (band for narrow-band generators, the
	// block-tridiagonal qbd window for level-structured ones,
	// compact-index CSR otherwise); "csr", "band", "qbd" and "csr64"
	// force one, and "kron" streams composed models through the
	// matrix-free Kronecker-sum operator (matrix-free models always use
	// it, whatever the setting). Results are bitwise identical for every
	// setting, so the knob is server-wide and deliberately not part of
	// requests or cache keys.
	MatrixFormat string
	// TemporalBlock is passed through to the randomization solver
	// (core.Options.TemporalBlock): 0 lets the sweep auto-tune wavefront
	// temporal blocking from the model's bandwidth and state size, 1
	// disables it, and N >= 2 forces N iterations per cache-resident row
	// block. Blocking changes memory traffic only — results are bitwise
	// identical for every setting — so, like MatrixFormat, the knob is
	// server-wide and not part of requests or cache keys.
	TemporalBlock int
	// SweepTile is passed through to the randomization solver
	// (core.Options.SweepTile): the row-tile width of the fused sweep
	// kernels and the block width of the temporally blocked driver. 0
	// keeps the solver's built-in default. Bitwise neutral.
	SweepTile int
	// NoSIMD is passed through to the randomization solver
	// (core.Options.NoSIMD): true forces the pure-Go scalar sweep
	// kernels even on AVX2 hardware. The vector kernels are bitwise
	// identical to the scalar loops, so — like MatrixFormat — the knob
	// is server-wide and not part of requests or cache keys; solver
	// stats and /metrics report the kernel each solve dispatched.
	NoSIMD bool
	// Checkpoints enables durable solves: a randomization solve that hits
	// its deadline mid-sweep captures the iteration state at the barrier
	// where the cancellation lands and answers 202 with a resume token; a
	// re-POST of the same request carrying the token continues from the
	// checkpoint (bitwise identical to an uninterrupted solve) instead of
	// restarting. Held checkpoints live in a bounded, TTL'd store and are
	// included in drain handoff so in-flight work migrates to ring
	// successors. Off by default.
	Checkpoints bool
	// CheckpointTTL is how long an unclaimed checkpoint is held (default
	// 2m); CheckpointCap bounds how many are held at once (default 64,
	// oldest evicted first). Both only apply with Checkpoints enabled.
	CheckpointTTL time.Duration
	CheckpointCap int
	// PersistDir enables the crash-safe warm cache: result-cache writes
	// are journaled (append + fsync) under this directory and reloaded on
	// startup, so a killed replica restarts warm and serves byte-identical
	// cache hits instead of re-solving. Empty disables persistence.
	PersistDir string
	// DiskFaults, when non-nil, injects write faults into the persistence
	// writer (chaos testing); see FaultConfig.DiskErrRate / DiskTornRate.
	DiskFaults *FaultInjector
	// MemBudget bounds the estimated solver working set (bytes) admitted
	// concurrently: requests whose format-aware footprint estimate would
	// push the in-flight total past the budget are shed with a typed 503
	// and counted in mem_shed_total, instead of letting concurrent large
	// solves OOM the replica. Zero or negative disables the gate.
	MemBudget int64
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 64
	}
	if o.BatchQueueReserve == 0 {
		o.BatchQueueReserve = max(1, o.QueueSize/4)
	}
	if o.BatchQueueReserve < 0 {
		o.BatchQueueReserve = 0
	}
	if o.CacheSize == 0 {
		o.CacheSize = 256
	}
	if o.PreparedCacheSize == 0 {
		o.PreparedCacheSize = 128
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.MaxOrder <= 0 {
		o.MaxOrder = 12
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 8 << 20
	}
	if o.HandoffMax == 0 {
		o.HandoffMax = 128
	}
	if o.HandoffMax < 0 {
		o.HandoffMax = 0
	}
	if o.HandoffMax > maxHandoffEntries {
		o.HandoffMax = maxHandoffEntries
	}
	if o.CheckpointTTL <= 0 {
		o.CheckpointTTL = defaultCheckpointTTL
	}
	if o.CheckpointCap <= 0 {
		o.CheckpointCap = defaultCheckpointCap
	}
	return o
}

// Server is the solver service. Create it with New, mount Handler on an
// http.Server, and call Shutdown to drain.
type Server struct {
	opts        Options
	pool        *pool
	cache       *lruCache
	prepared    *preparedCache
	flight      *flightGroup
	metrics     *Metrics
	checkpoints *checkpointStore // nil unless Options.Checkpoints
	persist     *cachePersister  // nil unless Options.PersistDir
	memGate     *memGate         // nil unless Options.MemBudget > 0
	start       time.Time
	draining    atomic.Bool

	// solve is the request executor; tests substitute it to control
	// timing and count executions.
	solve func(ctx context.Context, req *SolveRequest) (*SolveResponse, error)
	// solveItem is the batch-item executor; tests substitute it likewise.
	solveItem func(ctx context.Context, prep *core.Prepared, item *BatchItem) ([]BatchPoint, error)
}

// New builds a Server and starts its worker pool. With Options.PersistDir
// set it also replays the cache journal, restoring every verifiable entry
// into the result cache (a corrupt tail is truncated, never fatal).
func New(opts Options) *Server {
	s, err := NewWithPersistence(opts)
	if err != nil {
		// Persistence failing to initialize degrades to a cold cache: the
		// server stays correct, it just re-solves. NewWithPersistence is
		// the entry point for callers that want the error.
		o := opts
		o.PersistDir = ""
		s, _ = NewWithPersistence(o)
	}
	return s
}

// NewWithPersistence is New returning the persistence-layer error instead
// of silently degrading to a cold in-memory cache.
func NewWithPersistence(opts Options) (*Server, error) {
	o := opts.withDefaults()
	s := &Server{
		opts:     o,
		cache:    newLRU(o.CacheSize),
		prepared: newPreparedCache(o.PreparedCacheSize),
		flight:   newFlightGroup(),
		metrics:  &Metrics{},
		start:    time.Now(),
	}
	s.pool = newPool(o.Workers, o.QueueSize, func(any) { s.metrics.Panics.Add(1) })
	s.solve = s.preparedSolve
	s.solveItem = s.runBatchItem
	if o.Checkpoints {
		s.checkpoints = newCheckpointStore(o.CheckpointCap, o.CheckpointTTL)
	}
	if o.MemBudget > 0 {
		s.memGate = newMemGate(o.MemBudget)
	}
	if o.PersistDir != "" {
		p, restored, err := openCachePersister(o.PersistDir, o.DiskFaults, s.metrics)
		if err != nil {
			// The pool is already running; stop its workers before failing
			// so an aborted construction leaks nothing.
			_ = s.pool.Shutdown(context.Background())
			return nil, err
		}
		s.persist = p
		for _, e := range restored {
			s.cache.Put(e.Key, e.SpecHash, e.Response)
		}
		s.metrics.CacheRestored.Add(int64(len(restored)))
		// Journal every future insert. The hook runs outside the cache
		// mutex, so the fsync never serializes cache readers.
		s.cache.onPut = s.persist.Append
	}
	return s, nil
}

// Metrics exposes the server's live counters (primarily for tests and
// embedding binaries; HTTP clients use /metrics).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/solve/batch", s.handleBatch)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.opts.Cluster != nil {
		// The peer endpoints accept cache writes (handoff) and expose raw
		// cache reads, so they exist only in cluster mode; a single-node
		// deployment keeps its read/compute-only surface and answers 404
		// here.
		mux.HandleFunc("GET /v1/peer/result/{key}", s.handlePeerResult)
		mux.HandleFunc("POST /v1/peer/handoff", s.handlePeerHandoff)
	}
	return mux
}

// Shutdown drains the server: new and queued requests are rejected with
// 503 while in-flight solves run to completion (or the context expires).
// The HTTP listener itself is the caller's to close; call this after
// http.Server.Shutdown has stopped accepting connections, or before to
// fail fast.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	// Drain handoff: stream the hottest result and prepared-model entries
	// to ring successors before the pool stops, so a rolling restart does
	// not cold-start the shard. Best effort — a failed push only costs the
	// successor a recompute.
	if h := s.opts.Cluster; h != nil && h.Handoff != nil && s.opts.HandoffMax > 0 {
		if entries := s.handoffEntries(s.opts.HandoffMax); len(entries) > 0 {
			h.Handoff(ctx, entries)
		}
	}
	err := s.pool.Shutdown(ctx)
	if s.persist != nil {
		// Close after the pool: in-flight solves may still append entries.
		if cerr := s.persist.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.Snapshot()
	snap.QueueDepth = s.pool.Depth()
	snap.Workers = s.opts.Workers
	snap.CacheEntries = s.cache.Len()
	snap.PreparedEntries = s.prepared.Len()
	snap.UptimeSeconds = time.Since(s.start).Seconds()
	if s.checkpoints != nil {
		snap.CheckpointEntries = int64(s.checkpoints.Len())
	}
	if s.memGate != nil {
		snap.MemInFlightBytes = s.memGate.InFlight()
		snap.MemBudgetBytes = s.opts.MemBudget
	}
	if h := s.opts.Cluster; h != nil && h.PeerStates != nil {
		snap.PeerBreakers = h.PeerStates()
	}
	writeJSON(w, http.StatusOK, snap)
}

// classifyRoute counts one request against the ring-ownership counters and
// reports the owning replica when the model is owned elsewhere.
func (s *Server) classifyRoute(specHash string) (ownerURL string, remote bool) {
	h := s.opts.Cluster
	if h == nil || h.Owner == nil {
		return "", false
	}
	owner, local := h.Owner(specHash)
	if local {
		s.metrics.RouteLocal.Add(1)
		return "", false
	}
	s.metrics.RouteRemote.Add(1)
	return owner, true
}

// peerFill tries to adopt the owner's cached result for a non-owned
// request instead of solving locally. It runs inside the single-flight
// leader, so concurrent identical requests share one fill attempt.
func (s *Server) peerFill(ctx context.Context, owner, key, specHash string) (*SolveResponse, bool) {
	h := s.opts.Cluster
	if h == nil || h.FetchResult == nil {
		return nil, false
	}
	resp, ok := h.FetchResult(ctx, owner, key)
	if !ok {
		s.metrics.PeerFillMisses.Add(1)
		return nil, false
	}
	s.metrics.PeerFillHits.Add(1)
	// Cache a clean copy: PeerFilled describes how this request was
	// served, not the entry itself — later local hits must read as plain
	// Cached results.
	cached := *resp
	cached.Cached = false
	cached.Deduped = false
	cached.PeerFilled = false
	s.cache.Put(key, specHash, &cached)
	resp.PeerFilled = true
	resp.Cached = false
	return resp, true
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.metrics.Requests.Add(1)
	if s.draining.Load() {
		s.metrics.Rejected.Add(1)
		writeError(w, http.StatusServiceUnavailable, ErrShuttingDown.Error())
		return
	}

	var req SolveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if err := req.normalize(s.opts.MaxOrder); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key, err := req.cacheKey()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	owner, remote := s.classifyRoute(req.specHash)

	started := time.Now()
	if resp, ok := s.cache.Get(key); ok {
		s.metrics.CacheHits.Add(1)
		hit := *resp
		hit.Cached = true
		hit.ElapsedMS = msSince(started)
		writeJSON(w, http.StatusOK, &hit)
		return
	}
	s.metrics.CacheMisses.Add(1)

	// Resolve the resume token before dispatch, so a dead token fails fast
	// with a typed status instead of burning a solve from scratch.
	if req.ResumeToken != "" {
		if err := s.resolveResume(&req, key); err != nil {
			s.writeSolveError(w, err)
			return
		}
	}
	// Capture a checkpoint if the deadline lands mid-sweep, so the client
	// can resume instead of restarting.
	req.checkpoint = s.checkpoints != nil && req.Method == MethodRandomization

	timeout := s.opts.DefaultTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	resp, shared, err := s.flight.Do(ctx, key, func() (*SolveResponse, error) {
		// Peer cache fill: a non-owned request first asks the owner's
		// result cache; a hit skips the local solve entirely (the owner's
		// response is bitwise what we would compute).
		if remote {
			if filled, ok := s.peerFill(ctx, owner, key, req.specHash); ok {
				return filled, nil
			}
		}
		// Memory admission: refuse work whose estimated solver working set
		// does not fit the remaining budget, before it can occupy a worker.
		release, admitErr := s.admit(&req)
		if admitErr != nil {
			return nil, admitErr
		}
		defer release()
		var solved *SolveResponse
		var solveErr error
		if poolErr := s.pool.Do(ctx, func(ctx context.Context) {
			s.metrics.Solves.Add(1)
			solved, solveErr = s.solve(ctx, &req)
		}); poolErr != nil {
			return nil, poolErr
		}
		if solveErr != nil {
			return nil, solveErr
		}
		if req.resume != nil {
			s.metrics.Resumes.Add(1)
			s.checkpoints.Remove(req.ResumeToken)
		}
		solved.ElapsedMS = msSince(started)
		s.cache.Put(key, req.specHash, solved)
		s.metrics.ObserveLatency(time.Since(started))
		if solved.Stats != nil && solved.Stats.SweepNS > 0 {
			s.metrics.ObserveSweep(time.Duration(solved.Stats.SweepNS))
			s.metrics.ObserveSweepFormat(solved.Stats.MatrixFormat)
			s.metrics.ObserveSweepBlocking(solved.Stats.TemporalBlock)
			s.metrics.ObserveSweepKernel(solved.Stats.SweepKernel)
		}
		return solved, nil
	})
	if shared {
		s.metrics.DedupShared.Add(1)
	}
	if err != nil {
		if s.writePartial(w, &req, key, err) {
			return
		}
		s.writeSolveError(w, err)
		return
	}
	if shared {
		// Don't mutate the cached response other callers may be reading.
		dup := *resp
		dup.Deduped = true
		resp = &dup
	}
	writeJSON(w, http.StatusOK, resp)
}

// resolveResume validates the request's resume token against the held
// checkpoint store and attaches the decoded checkpoint to the request. The
// token must name a checkpoint captured for this exact request key —
// model, t, order, epsilon, method — so a token cannot be replayed against
// a different solve.
func (s *Server) resolveResume(req *SolveRequest, key string) error {
	if s.checkpoints == nil {
		return badRequestf("resume_token set but checkpoints are disabled on this server")
	}
	e, ok := s.checkpoints.Get(req.ResumeToken)
	if !ok {
		return errResumeTokenGone
	}
	if e.key != key {
		return badRequestf("resume_token was issued for a different request")
	}
	cp, err := core.DecodeCheckpoint(e.blob)
	if err != nil {
		// A corrupt held checkpoint is unrecoverable; drop it so the
		// client's retry-without-token path solves from scratch.
		s.checkpoints.Remove(req.ResumeToken)
		return errResumeTokenGone
	}
	req.resume = cp
	return nil
}

// writePartial answers an interrupted checkpoint-enabled solve with a 202
// partial status carrying the resume token. Returns false when the error
// is not an interruption (the caller falls through to writeSolveError).
func (s *Server) writePartial(w http.ResponseWriter, req *SolveRequest, key string, err error) bool {
	var ir *core.Interrupted
	if s.checkpoints == nil || !errors.As(err, &ir) {
		return false
	}
	cp := ir.Checkpoint
	token := s.checkpoints.Put(key, req.specHash, cp.Encode(), cp.Completed, cp.GMax)
	s.metrics.Partials.Add(1)
	writeJSON(w, http.StatusAccepted, &PartialResponse{
		Status:      "partial",
		ResumeToken: token,
		Completed:   cp.Completed,
		GMax:        cp.GMax,
		Progress:    cp.Progress(),
		Error:       "solve deadline exceeded; re-POST with resume_token to continue",
	})
	return true
}

// admit reserves the request's estimated working set against the memory
// budget; the returned release must be called when the solve finishes. A
// nil memGate admits everything.
func (s *Server) admit(req *SolveRequest) (func(), error) {
	if s.memGate == nil {
		return func() {}, nil
	}
	need := estimateWorkingSet(req, s.opts.SweepWorkers, s.opts.MatrixFormat)
	release, ok := s.memGate.Reserve(need)
	if !ok {
		s.metrics.MemShed.Add(1)
		s.metrics.Rejected.Add(1)
		return nil, &MemShedError{Need: need, Budget: s.opts.MemBudget, InFlight: s.memGate.InFlight()}
	}
	return release, nil
}

// writeSolveError maps solve failures to HTTP statuses: capacity and
// shutdown to 503 (memory shed included), deadlines to 504, malformed
// input to 400, dead resume tokens to 410, checkpoint/request mismatches
// to 409, recovered panics to a sanitized 500, anything else to 500.
func (s *Server) writeSolveError(w http.ResponseWriter, err error) {
	var bad *errBadRequest
	var pe *PanicError
	var shed *MemShedError
	switch {
	case errors.As(err, &shed):
		// Counted (mem_shed_total and rejected) at the admission gate.
		writeError(w, http.StatusServiceUnavailable, shed.Error())
	case errors.Is(err, errResumeTokenGone):
		s.metrics.Failures.Add(1)
		writeError(w, http.StatusGone, err.Error())
	case errors.Is(err, core.ErrCheckpoint):
		s.metrics.Failures.Add(1)
		writeError(w, http.StatusConflict, err.Error())
	case errors.Is(err, ErrQueueFull):
		s.metrics.ShedQueueFull.Add(1)
		s.metrics.Rejected.Add(1)
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, ErrShuttingDown):
		s.metrics.Rejected.Add(1)
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.As(err, new(*QueueDeadlineError)):
		// Still a 504 to the client, but counted as queue pressure, not
		// solver slowness.
		s.metrics.ShedDeadline.Add(1)
		s.metrics.Failures.Add(1)
		writeError(w, http.StatusGatewayTimeout, err.Error())
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.metrics.Failures.Add(1)
		writeError(w, http.StatusGatewayTimeout, "solve deadline exceeded")
	case errors.As(err, &bad):
		s.metrics.Failures.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
	case errors.As(err, &pe):
		// PanicError.Error() is sanitized by construction: no panic value,
		// no stack, nothing internal crosses the wire.
		s.metrics.Failures.Add(1)
		writeError(w, http.StatusInternalServerError, pe.Error())
	default:
		s.metrics.Failures.Add(1)
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}
