package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"somrm/internal/core"
)

// serverCountdownCtx reports cancellation after Err has been polled a
// fixed number of times, so tests interrupt a solve at an exact iteration
// barrier instead of racing a wall-clock deadline.
type serverCountdownCtx struct {
	context.Context
	polls int
}

func (c *serverCountdownCtx) Err() error {
	if c.polls <= 0 {
		return context.DeadlineExceeded
	}
	c.polls--
	return nil
}

// interruptRequest runs the request's solve under a countdown context with
// checkpointing on, returning the genuine *core.Interrupted error the
// solver produces at a mid-sweep deadline.
func interruptRequest(t *testing.T, req *SolveRequest, polls int) error {
	t.Helper()
	prep, err := req.buildFor()()
	if err != nil {
		t.Fatal(err)
	}
	ctx := &serverCountdownCtx{Context: context.Background(), polls: polls}
	_, err = prep.AccumulatedRewardContext(ctx, req.T, req.Order, &core.Options{
		Epsilon: req.Epsilon, Checkpoint: true, CancelStride: 1,
	})
	var ir *core.Interrupted
	if !errors.As(err, &ir) {
		t.Fatalf("want *core.Interrupted, got %v", err)
	}
	return err
}

// TestSolvePartialAndResume drives the full durable-solve loop over HTTP:
// a deadline mid-sweep answers 202 with a resume token, the re-POST with
// the token completes from the checkpoint, the final moments are bitwise
// identical to an uninterrupted solve, and the finished result is cached.
func TestSolvePartialAndResume(t *testing.T) {
	s := New(Options{Workers: 2, Checkpoints: true})
	defer s.Shutdown(context.Background())

	calls := 0
	s.solve = func(ctx context.Context, req *SolveRequest) (*SolveResponse, error) {
		calls++
		if calls == 1 {
			return nil, interruptRequest(t, req, 4)
		}
		return runSolve(ctx, req)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := &SolveRequest{Model: testSpec(1), T: 1.2, Order: 3}
	if err := req.normalize(12); err != nil {
		t.Fatal(err)
	}
	full, err := runSolve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	body := solveBody(t, &SolveRequest{Model: testSpec(1), T: 1.2, Order: 3})
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var partial PartialResponse
	raw, _ := readAll(resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &partial); err != nil {
		t.Fatal(err)
	}
	if partial.Status != "partial" || partial.ResumeToken == "" {
		t.Fatalf("bad partial response: %+v", partial)
	}
	if partial.Completed <= 0 || partial.Completed >= partial.GMax {
		t.Fatalf("implausible progress: %+v", partial)
	}
	if got := s.metrics.Partials.Load(); got != 1 {
		t.Fatalf("partials_total = %d, want 1", got)
	}
	if s.cache.Len() != 0 {
		t.Fatal("partial result must not be cached")
	}

	// Re-POST with the token: completes from the checkpoint, bitwise equal.
	withToken := solveBody(t, &SolveRequest{Model: testSpec(1), T: 1.2, Order: 3, ResumeToken: partial.ResumeToken})
	hresp, out, rawOut := postSolve(t, ts.URL, withToken)
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("resume status %d: %s", hresp.StatusCode, rawOut)
	}
	if !out.Resumed {
		t.Fatal("resumed response not marked resumed")
	}
	for j := range full.Moments {
		if math.Float64bits(out.Moments[j]) != math.Float64bits(full.Moments[j]) {
			t.Fatalf("resumed moment %d = %x, want %x (not bitwise identical)",
				j, math.Float64bits(out.Moments[j]), math.Float64bits(full.Moments[j]))
		}
	}
	if got := s.metrics.Resumes.Load(); got != 1 {
		t.Fatalf("resumes_total = %d, want 1", got)
	}
	if s.checkpoints.Len() != 0 {
		t.Fatal("checkpoint not removed after successful resume")
	}

	// The completed result is cached under the token-free key.
	hresp2, out2, _ := postSolve(t, ts.URL, body)
	if hresp2.StatusCode != http.StatusOK || !out2.Cached {
		t.Fatalf("finished result not cached: status %d cached=%v", hresp2.StatusCode, out2.Cached)
	}
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

// TestResumeTokenErrors pins the typed failure statuses: unknown tokens
// answer 410 Gone, tokens replayed against a different request 400, and
// tokens on a server without checkpoints 400.
func TestResumeTokenErrors(t *testing.T) {
	s := New(Options{Workers: 1, Checkpoints: true})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(req *SolveRequest) (int, string) {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(solveBody(t, req)))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := readAll(resp)
		return resp.StatusCode, string(raw)
	}

	if code, body := post(&SolveRequest{Model: testSpec(0), T: 1, Order: 2, ResumeToken: strings.Repeat("ab", 16)}); code != http.StatusGone {
		t.Fatalf("unknown token: status %d, want 410: %s", code, body)
	}
	if code, body := post(&SolveRequest{Model: testSpec(0), T: 1, Order: 2, ResumeToken: "not hex!"}); code != http.StatusBadRequest {
		t.Fatalf("malformed token: status %d, want 400: %s", code, body)
	}

	// A token held for one request replayed against another: 400, typed.
	req := &SolveRequest{Model: testSpec(0), T: 1, Order: 2}
	if err := req.normalize(12); err != nil {
		t.Fatal(err)
	}
	key, err := req.cacheKey()
	if err != nil {
		t.Fatal(err)
	}
	ierr := interruptRequest(t, req, 3)
	var ir *core.Interrupted
	errors.As(ierr, &ir)
	token := s.checkpoints.Put(key, req.specHash, ir.Checkpoint.Encode(), ir.Checkpoint.Completed, ir.Checkpoint.GMax)
	if code, body := post(&SolveRequest{Model: testSpec(0), T: 2, Order: 2, ResumeToken: token}); code != http.StatusBadRequest {
		t.Fatalf("token for different request: status %d, want 400: %s", code, body)
	}

	// Checkpoints disabled: resume tokens are a client error.
	s2 := New(Options{Workers: 1})
	defer s2.Shutdown(context.Background())
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp, err := http.Post(ts2.URL+"/v1/solve", "application/json",
		bytes.NewReader(solveBody(t, &SolveRequest{Model: testSpec(0), T: 1, Order: 2, ResumeToken: strings.Repeat("cd", 16)})))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := readAll(resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("checkpoints off: status %d, want 400: %s", resp.StatusCode, raw)
	}
}

// TestCheckpointStore pins the store's bookkeeping: stable tokens per
// request key, monotone progress on refresh, TTL expiry, cap eviction, and
// newest-first bounded export.
func TestCheckpointStore(t *testing.T) {
	now := time.Unix(1000, 0)
	cs := newCheckpointStore(3, time.Minute)
	cs.now = func() time.Time { return now }

	tok := cs.Put("key-a", "spec-a", []byte("blob1"), 5, 100)
	if tok == "" || !validHexKey(tok) {
		t.Fatalf("bad token %q", tok)
	}
	// Same key again: token is stable, fresher state wins, staler is kept out.
	if tok2 := cs.Put("key-a", "spec-a", []byte("blob2"), 9, 100); tok2 != tok {
		t.Fatalf("token changed on refresh: %q -> %q", tok, tok2)
	}
	if e, _ := cs.Get(tok); string(e.blob) != "blob2" || e.completed != 9 {
		t.Fatalf("fresher state lost: %+v", e)
	}
	if tok3 := cs.Put("key-a", "spec-a", []byte("stale"), 2, 100); tok3 != tok {
		t.Fatal("token changed on stale refresh")
	}
	if e, _ := cs.Get(tok); string(e.blob) != "blob2" {
		t.Fatal("stale state overwrote fresher checkpoint")
	}

	// TTL expiry.
	now = now.Add(2 * time.Minute)
	if _, ok := cs.Get(tok); ok {
		t.Fatal("expired checkpoint still served")
	}
	if cs.Len() != 0 {
		t.Fatalf("expired entries not purged: len=%d", cs.Len())
	}

	// Cap eviction, oldest first.
	for i := 0; i < 4; i++ {
		cs.Put(fmt.Sprintf("key-%d", i), "spec", []byte("b"), i, 10)
	}
	if cs.Len() != 3 {
		t.Fatalf("cap not enforced: len=%d", cs.Len())
	}

	// Export: newest first, bounded.
	got := cs.export(2)
	if len(got) != 2 {
		t.Fatalf("export returned %d entries, want 2", len(got))
	}
	if got[0].Key != "key-3" || got[1].Key != "key-2" {
		t.Fatalf("export not newest-first: %q, %q", got[0].Key, got[1].Key)
	}
	if got[0].Token == "" || len(got[0].Checkpoint) == 0 {
		t.Fatalf("export entry missing token or blob: %+v", got[0])
	}
}

// TestCheckpointHandoff moves a held checkpoint between replicas through
// the drain-handoff path and resumes it on the successor with the original
// token — in-flight work survives a rolling restart.
func TestCheckpointHandoff(t *testing.T) {
	s1 := New(Options{Workers: 1, Checkpoints: true, Cluster: &ClusterHooks{
		Self:  "http://a",
		Owner: func(string) (string, bool) { return "", true },
	}})
	defer s1.Shutdown(context.Background())
	s2 := New(Options{Workers: 2, Checkpoints: true, Cluster: &ClusterHooks{
		Self:  "http://b",
		Owner: func(string) (string, bool) { return "", true },
	}})
	defer s2.Shutdown(context.Background())

	req := &SolveRequest{Model: testSpec(3), T: 1.1, Order: 3}
	if err := req.normalize(12); err != nil {
		t.Fatal(err)
	}
	key, err := req.cacheKey()
	if err != nil {
		t.Fatal(err)
	}
	ierr := interruptRequest(t, req, 5)
	var ir *core.Interrupted
	errors.As(ierr, &ir)
	token := s1.checkpoints.Put(key, req.specHash, ir.Checkpoint.Encode(), ir.Checkpoint.Completed, ir.Checkpoint.GMax)

	entries := s1.handoffEntries(16)
	var cpEntries int
	for i := range entries {
		if len(entries[i].Checkpoint) > 0 {
			cpEntries++
			if !s2.acceptHandoffEntry(context.Background(), &entries[i]) {
				t.Fatal("successor refused checkpoint handoff entry")
			}
		}
	}
	if cpEntries != 1 {
		t.Fatalf("handoff exported %d checkpoint entries, want 1", cpEntries)
	}

	// A corrupt blob is refused, never adopted.
	bad := HandoffEntry{Key: key, SpecHash: req.specHash, Token: strings.Repeat("ef", 16), Checkpoint: []byte("garbage")}
	if s2.acceptHandoffEntry(context.Background(), &bad) {
		t.Fatal("successor adopted a corrupt checkpoint")
	}

	// The client's original token resumes on the successor.
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	full, err := runSolve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	hresp, out, raw := postSolve(t, ts2.URL, solveBody(t, &SolveRequest{Model: testSpec(3), T: 1.1, Order: 3, ResumeToken: token}))
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("resume on successor: status %d: %s", hresp.StatusCode, raw)
	}
	if !out.Resumed {
		t.Fatal("successor solve not marked resumed")
	}
	for j := range full.Moments {
		if math.Float64bits(out.Moments[j]) != math.Float64bits(full.Moments[j]) {
			t.Fatalf("handed-off resume moment %d not bitwise identical", j)
		}
	}
}

// TestQueueDeadlineTyped pins the queue-shed split: a deadline that
// expires while the task is queued surfaces as *QueueDeadlineError (still
// a 504 and still a context deadline for errors.Is), counted separately
// from instant queue-full rejections.
func TestQueueDeadlineTyped(t *testing.T) {
	p := newPool(1, 4, nil)
	defer p.Shutdown(context.Background())

	release := make(chan struct{})
	blocked := make(chan struct{})
	go p.Do(context.Background(), func(context.Context) {
		close(blocked)
		<-release
	})
	<-blocked

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	errCh := make(chan error, 1)
	go func() { errCh <- p.Do(ctx, func(context.Context) {}) }()
	<-ctx.Done()
	close(release)
	err := <-errCh
	var qd *QueueDeadlineError
	if !errors.As(err, &qd) {
		t.Fatalf("want *QueueDeadlineError, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("QueueDeadlineError must unwrap to the context error")
	}

	// Metric split via the HTTP error writer.
	s := New(Options{Workers: 1})
	defer s.Shutdown(context.Background())
	rec := httptest.NewRecorder()
	s.writeSolveError(rec, err)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("queue-deadline status %d, want 504", rec.Code)
	}
	if s.metrics.ShedDeadline.Load() != 1 || s.metrics.ShedQueueFull.Load() != 0 {
		t.Fatalf("shed split wrong: deadline=%d full=%d", s.metrics.ShedDeadline.Load(), s.metrics.ShedQueueFull.Load())
	}
	rec2 := httptest.NewRecorder()
	s.writeSolveError(rec2, ErrQueueFull)
	if rec2.Code != http.StatusServiceUnavailable || s.metrics.ShedQueueFull.Load() != 1 {
		t.Fatalf("queue-full not counted: status %d full=%d", rec2.Code, s.metrics.ShedQueueFull.Load())
	}
}

// TestNewDegradesToColdCache: an unusable persistence directory must not
// stop the server — New falls back to an in-memory cache.
func TestNewDegradesToColdCache(t *testing.T) {
	dir := t.TempDir()
	blocker := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(Options{Workers: 1, PersistDir: filepath.Join(blocker, "sub")})
	defer s.Shutdown(context.Background())
	if s.persist != nil {
		t.Fatal("persistence should have been disabled")
	}
	if _, err := NewWithPersistence(Options{Workers: 1, PersistDir: filepath.Join(blocker, "sub")}); err == nil {
		t.Fatal("NewWithPersistence should surface the error")
	}
}
