package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"somrm/internal/core"
	"somrm/internal/momentbounds"
	"somrm/internal/odesolver"
	"somrm/internal/sim"
	"somrm/internal/sparse"
	"somrm/internal/spec"
)

// Solve methods accepted by the API.
const (
	MethodRandomization = "randomization"
	MethodODE           = "ode"
	MethodSimulation    = "simulation"
)

// Limits applied during request validation (beyond Options).
const (
	maxSimReps     = 1_000_000
	defaultSimReps = 4000
	maxBoundsAt    = 64
	// maxComposeStates caps the product state space of a composed solve
	// request. Above the materialization threshold the model is
	// matrix-free, so memory is not the binding constraint — solve time
	// is; the cap keeps a single request from monopolizing the queue.
	maxComposeStates = 4_000_000
)

// SimParams parameterizes the Monte Carlo baseline. The seed makes the
// estimate deterministic, which is what lets simulation results be cached.
type SimParams struct {
	// Seed is the RNG seed (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Reps is the replication count (default 4000, max 1e6).
	Reps int `json:"reps,omitempty"`
}

// ODEParams parameterizes the ODE baseline.
type ODEParams struct {
	// Method is one of "heun", "rk4" (default), "rk45".
	Method string `json:"method,omitempty"`
	// Steps is the fixed step count for heun/rk4 (0 = automatic).
	Steps int `json:"steps,omitempty"`
}

// SolveRequest is the body of POST /v1/solve.
type SolveRequest struct {
	// Model is the JSON model spec (internal/spec schema). Exactly one of
	// Model and Compose must be set.
	Model *spec.Model `json:"model"`
	// Compose lists 2 or more independent component specs to solve as
	// their composition (additive rewards, Kronecker-sum structure
	// process). Products above the materialization threshold solve
	// matrix-free through the Kronecker-sum operator. Randomization only;
	// impulse-reward components are rejected with 400.
	Compose []*spec.Model `json:"compose,omitempty"`
	// T is the accumulation time, Order the highest moment order.
	T     float64 `json:"t"`
	Order int     `json:"order"`
	// Epsilon is the randomization truncation accuracy (default 1e-9).
	Epsilon float64 `json:"epsilon,omitempty"`
	// Method selects the solver: randomization (default), ode, simulation.
	Method string `json:"method,omitempty"`
	// BoundsAt lists reward levels at which to return moment-based CDF
	// bounds alongside the moments.
	BoundsAt []float64 `json:"bounds_at,omitempty"`
	// Sim and ODE carry method-specific parameters.
	Sim *SimParams `json:"sim,omitempty"`
	ODE *ODEParams `json:"ode,omitempty"`
	// TimeoutMS caps this request's solve time in milliseconds; it is
	// clamped to the server's default timeout and excluded from the cache
	// key.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// ResumeToken continues an interrupted solve from its held checkpoint
	// (the resume_token of an earlier 202 partial response). The rest of
	// the request must be identical to the interrupted one. Like the
	// timeout, it is excluded from the cache key: a resumed solve's result
	// is bitwise the uninterrupted result, so it caches under the same key.
	ResumeToken string `json:"resume_token,omitempty"`

	// specHash memoizes the canonical model hash (hex) once cacheKey has
	// computed it, so the prepared-model cache does not re-canonicalize.
	specHash string
	// resume is the decoded checkpoint resolved from ResumeToken by the
	// handler (randomization only); nil for fresh solves.
	resume *core.Checkpoint
	// checkpoint enables mid-sweep snapshot capture on cancellation, so
	// deadline-exceeded solves return a resumable partial status.
	checkpoint bool
}

// newSolverStats copies core solver statistics onto the wire type.
func newSolverStats(st core.Stats) *SolverStats {
	return &SolverStats{
		Q: st.Q, QT: st.QT, D: st.D, Shift: st.Shift,
		G: st.G, ErrorBound: st.ErrorBound,
		MatVecs: st.MatVecs, SweepNS: st.SweepNS,
		FlopsPerIteration: st.FlopsPerIteration,
		MatrixFormat:      st.MatrixFormat,
		TemporalBlock:     st.TemporalBlock,
		SweepKernel:       st.SweepKernel,
	}
}

// SolverStats mirrors core.Stats on the wire (randomization only).
// MatVecs and SweepNS are whole-sweep figures: for batch items solved in
// one shared sweep, every point of the grid reports the same totals.
type SolverStats struct {
	Q                 float64 `json:"q"`
	QT                float64 `json:"qt"`
	D                 float64 `json:"d"`
	Shift             float64 `json:"shift"`
	G                 int     `json:"g"`
	ErrorBound        float64 `json:"error_bound"`
	MatVecs           int64   `json:"matvecs"`
	SweepNS           int64   `json:"sweep_ns"`
	FlopsPerIteration int64   `json:"flops_per_iteration"`
	// MatrixFormat is the storage representation the randomization sweep
	// streamed ("band", "qbd", "csr32", "csr64", or "kron" for the
	// matrix-free Kronecker-sum operator); empty for solves that never
	// ran a sweep.
	MatrixFormat string `json:"matrix_format,omitempty"`
	// TemporalBlock is the wavefront temporal blocking depth the sweep
	// ran with: 1 for an unblocked sweep, the blocked-iteration group
	// depth otherwise. Zero for solves that never ran a sweep.
	TemporalBlock int `json:"temporal_block,omitempty"`
	// SweepKernel is the compute kernel the sweep dispatched ("avx2" or
	// "scalar"); empty for solves that never ran a sweep.
	SweepKernel string `json:"sweep_kernel,omitempty"`
}

// BoundPoint is one moment-based CDF bound evaluation.
type BoundPoint struct {
	X     float64 `json:"x"`
	Lower float64 `json:"lower"`
	Upper float64 `json:"upper"`
}

// SolveResponse is the body of a successful POST /v1/solve.
type SolveResponse struct {
	Method string  `json:"method"`
	T      float64 `json:"t"`
	Order  int     `json:"order"`
	// Moments[j] = E[B(t)^j] under the model's initial distribution.
	Moments []float64 `json:"moments"`
	// Stats is present for the randomization method.
	Stats *SolverStats `json:"stats,omitempty"`
	// StdErr is present for the simulation method.
	StdErr []float64 `json:"std_err,omitempty"`
	// Bounds echoes BoundsAt with CDF bounds, when requested.
	Bounds []BoundPoint `json:"bounds,omitempty"`
	// Cached reports the response was served from the result cache;
	// Deduped that it was shared with a concurrent identical request;
	// PeerFilled that a non-owner replica adopted it from the ring
	// owner's result cache instead of solving.
	Cached     bool `json:"cached"`
	Deduped    bool `json:"deduped,omitempty"`
	PeerFilled bool `json:"peer_filled,omitempty"`
	// Resumed reports the solve continued from a held checkpoint instead
	// of sweeping from iteration 1.
	Resumed bool `json:"resumed,omitempty"`
	// ElapsedMS is the server-side processing time of the request that
	// actually solved (cache hits report their own, much smaller, time).
	ElapsedMS float64 `json:"elapsed_ms"`
}

// errBadRequest marks client errors (HTTP 400).
type errBadRequest struct{ msg string }

func (e *errBadRequest) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return &errBadRequest{msg: fmt.Sprintf(format, args...)}
}

// normalize applies defaults and validates everything that can be checked
// without building the model. It must be called before cacheKey.
func (r *SolveRequest) normalize(maxOrder int) error {
	if len(r.Compose) > 0 {
		if r.Model != nil {
			return badRequestf("model and compose are mutually exclusive")
		}
		if len(r.Compose) < 2 {
			return badRequestf("compose needs at least 2 components")
		}
		if len(r.Compose) > sparse.MaxKronFactors {
			return badRequestf("%d compose components exceed the limit of %d", len(r.Compose), sparse.MaxKronFactors)
		}
		product := 1
		for i, c := range r.Compose {
			if c == nil {
				return badRequestf("compose component %d missing", i)
			}
			if c.States <= 0 {
				return badRequestf("compose component %d has %d states", i, c.States)
			}
			if product > maxComposeStates/c.States {
				return badRequestf("composed state space exceeds the limit of %d states", maxComposeStates)
			}
			product *= c.States
		}
		if r.Method != "" && r.Method != MethodRandomization {
			return badRequestf("compose supports only the randomization method")
		}
	} else if r.Model == nil {
		return badRequestf("missing model")
	}
	if r.T < 0 || math.IsNaN(r.T) || math.IsInf(r.T, 0) {
		return badRequestf("bad t=%g", r.T)
	}
	if r.Order < 0 || r.Order > maxOrder {
		return badRequestf("order %d outside [0, %d]", r.Order, maxOrder)
	}
	if r.Epsilon == 0 {
		r.Epsilon = core.DefaultEpsilon
	}
	if r.Epsilon <= 0 || r.Epsilon >= 1 || math.IsNaN(r.Epsilon) {
		return badRequestf("epsilon %g not in (0,1)", r.Epsilon)
	}
	if r.Method == "" {
		r.Method = MethodRandomization
	}
	switch r.Method {
	case MethodRandomization:
	case MethodODE:
		if r.ODE == nil {
			r.ODE = &ODEParams{}
		}
		if r.ODE.Method == "" {
			r.ODE.Method = "rk4"
		}
		switch r.ODE.Method {
		case "heun", "rk4", "rk45":
		default:
			return badRequestf("unknown ode method %q", r.ODE.Method)
		}
		if r.ODE.Steps < 0 {
			return badRequestf("ode steps %d < 0", r.ODE.Steps)
		}
	case MethodSimulation:
		if r.Sim == nil {
			r.Sim = &SimParams{}
		}
		if r.Sim.Seed == 0 {
			r.Sim.Seed = 1
		}
		if r.Sim.Reps == 0 {
			r.Sim.Reps = defaultSimReps
		}
		if r.Sim.Reps < 2 || r.Sim.Reps > maxSimReps {
			return badRequestf("sim reps %d outside [2, %d]", r.Sim.Reps, maxSimReps)
		}
	default:
		return badRequestf("unknown method %q", r.Method)
	}
	if len(r.BoundsAt) > maxBoundsAt {
		return badRequestf("%d bounds points exceed the limit of %d", len(r.BoundsAt), maxBoundsAt)
	}
	for _, x := range r.BoundsAt {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return badRequestf("bad bounds point %g", x)
		}
	}
	if r.TimeoutMS < 0 {
		return badRequestf("timeout_ms %d < 0", r.TimeoutMS)
	}
	if r.ResumeToken != "" {
		if r.Method != MethodRandomization {
			return badRequestf("resume_token applies only to the randomization method")
		}
		if !validHexKey(r.ResumeToken) {
			return badRequestf("malformed resume_token")
		}
	}
	return nil
}

// cacheKey returns the canonical content hash of (model, solve params).
// Everything that affects the numerical result participates; the timeout
// does not. Requests normalize before hashing, so spelled-out defaults
// and omitted defaults collide onto the same key, as do permutations of
// the spec's transition/impulse lists.
func (r *SolveRequest) cacheKey() (string, error) {
	specHash, err := r.modelHash()
	if err != nil {
		return "", err
	}
	r.specHash = hex.EncodeToString(specHash[:])
	params, err := json.Marshal(struct {
		T        float64    `json:"t"`
		Order    int        `json:"order"`
		Epsilon  float64    `json:"epsilon"`
		Method   string     `json:"method"`
		BoundsAt []float64  `json:"bounds_at,omitempty"`
		Sim      *SimParams `json:"sim,omitempty"`
		ODE      *ODEParams `json:"ode,omitempty"`
	}{r.T, r.Order, r.Epsilon, r.Method, r.BoundsAt, r.Sim, r.ODE})
	if err != nil {
		return "", fmt.Errorf("server: cache key: %w", err)
	}
	h := sha256.New()
	h.Write(specHash[:])
	h.Write(params)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// modelHash returns the canonical content hash of the request's model: the
// spec hash for plain requests, and a domain-separated hash of the ordered
// component hashes for composed requests (composition is ordered but not
// associative bitwise, so the component list is hashed as given).
func (r *SolveRequest) modelHash() ([32]byte, error) {
	if len(r.Compose) == 0 {
		h, err := r.Model.Hash()
		if err != nil {
			return [32]byte{}, badRequestf("unhashable model: %v", err)
		}
		return h, nil
	}
	h := sha256.New()
	h.Write([]byte("somrm/compose/v1\n"))
	for i, c := range r.Compose {
		ch, err := c.Hash()
		if err != nil {
			return [32]byte{}, badRequestf("unhashable compose component %d: %v", i, err)
		}
		h.Write(ch[:])
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out, nil
}

// buildPrepared parses and validates the spec and runs the solver's
// model-only setup; it is the build function fed to the prepared cache.
func buildPrepared(sp *spec.Model) (*core.Prepared, error) {
	model, err := sp.Build()
	if err != nil {
		return nil, badRequestf("bad model: %v", err)
	}
	prep, err := core.Prepare(model)
	if err != nil {
		return nil, badRequestf("bad model: %v", err)
	}
	return prep, nil
}

// buildComposedPrepared builds every component spec, composes them, and
// prepares the joint model. All composition failures — impulse-reward
// components in particular (core.ErrComposeImpulse) — are client errors.
func buildComposedPrepared(comps []*spec.Model) (*core.Prepared, error) {
	models := make([]*core.Model, len(comps))
	for i, sp := range comps {
		m, err := sp.Build()
		if err != nil {
			return nil, badRequestf("bad compose component %d: %v", i, err)
		}
		models[i] = m
	}
	joint, err := core.ComposeAll(models...)
	if err != nil {
		if errors.Is(err, core.ErrBadModel) {
			return nil, badRequestf("bad composition: %v", err)
		}
		return nil, err
	}
	prep, err := core.Prepare(joint)
	if err != nil {
		return nil, badRequestf("bad composition: %v", err)
	}
	return prep, nil
}

// buildFor returns the prepared-cache build function for a request: the
// plain spec build or the composed build.
func (r *SolveRequest) buildFor() func() (*core.Prepared, error) {
	if len(r.Compose) > 0 {
		comps := r.Compose
		return func() (*core.Prepared, error) { return buildComposedPrepared(comps) }
	}
	sp := r.Model
	return func() (*core.Prepared, error) { return buildPrepared(sp) }
}

// preparedFor resolves the prepared model for a request's spec through the
// single-flight LRU, counting hits and misses. sp may be nil (composed
// requests), in which case the model is not offered for drain handoff —
// peers rebuild it from the request on demand.
func (s *Server) preparedFor(specHash string, build func() (*core.Prepared, error), sp *spec.Model) (*core.Prepared, bool, error) {
	prep, hit, err := s.prepared.GetOrBuild(specHash, build)
	if err != nil {
		return nil, hit, err
	}
	if hit {
		s.metrics.PreparedHits.Add(1)
	} else {
		s.metrics.PreparedMisses.Add(1)
	}
	if s.opts.Cluster != nil && sp != nil {
		// Remember the canonical spec so drain handoff can stream this
		// prepared model to a ring successor.
		s.prepared.NoteSpec(specHash, sp)
	}
	return prep, hit, nil
}

// preparedSolve is the default request executor: it resolves the prepared
// model through the cache and solves against it.
func (s *Server) preparedSolve(ctx context.Context, req *SolveRequest) (*SolveResponse, error) {
	specHash := req.specHash
	if specHash == "" {
		h, err := req.modelHash()
		if err != nil {
			return nil, err
		}
		specHash = hex.EncodeToString(h[:])
	}
	prep, _, err := s.preparedFor(specHash, req.buildFor(), req.Model)
	if err != nil {
		return nil, err
	}
	return runSolvePrepared(ctx, req, prep, sweepConfig{
		Workers: s.opts.SweepWorkers, Format: s.opts.MatrixFormat,
		TemporalBlock: s.opts.TemporalBlock, Tile: s.opts.SweepTile,
		NoSIMD: s.opts.NoSIMD,
	})
}

// runSolve executes a normalized request without a prepared-model cache:
// it builds and prepares the model from scratch. Tests substitute it for
// the server's cached executor to control timing and count executions.
func runSolve(ctx context.Context, req *SolveRequest) (*SolveResponse, error) {
	prep, err := req.buildFor()()
	if err != nil {
		return nil, err
	}
	return runSolvePrepared(ctx, req, prep, sweepConfig{})
}

// sweepConfig bundles the server-wide randomization sweep settings
// forwarded to the solver. None of them changes results bitwise, which is
// why they are not part of requests or cache keys.
type sweepConfig struct {
	Workers       int
	Format        string
	TemporalBlock int
	Tile          int
	NoSIMD        bool
}

// runSolvePrepared executes a normalized request against a prepared model,
// dispatching to the selected solver and attaching distribution bounds when
// requested. cfg carries the server's sweep settings into the
// randomization solver.
func runSolvePrepared(ctx context.Context, req *SolveRequest, prep *core.Prepared, cfg sweepConfig) (*SolveResponse, error) {
	model := prep.Model()
	resp := &SolveResponse{Method: req.Method, T: req.T, Order: req.Order}
	switch req.Method {
	case MethodRandomization:
		opts := &core.Options{
			Epsilon: req.Epsilon, SweepWorkers: cfg.Workers, MatrixFormat: cfg.Format,
			TemporalBlock: cfg.TemporalBlock, SweepTile: cfg.Tile, NoSIMD: cfg.NoSIMD,
			Checkpoint: req.checkpoint, Resume: req.resume,
		}
		res, err := prep.AccumulatedRewardContext(ctx, req.T, req.Order, opts)
		if err != nil {
			return nil, err
		}
		resp.Moments = res.Moments
		resp.Stats = newSolverStats(res.Stats)
		resp.Resumed = req.resume != nil
	case MethodODE:
		// The ODE integrator has no internal cancellation hook yet; honor
		// the deadline at the dispatch boundary.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		opts := &odesolver.MomentOptions{Steps: req.ODE.Steps}
		switch req.ODE.Method {
		case "heun":
			opts.Method = odesolver.MethodHeun
		case "rk4":
			opts.Method = odesolver.MethodRK4
		case "rk45":
			opts.Method = odesolver.MethodRK45
		}
		vm, err := odesolver.MomentsByODE(model, req.T, req.Order, opts)
		if err != nil {
			return nil, err
		}
		pi := model.Initial()
		resp.Moments = make([]float64, req.Order+1)
		for j := 0; j <= req.Order; j++ {
			var s float64
			for i, p := range pi {
				s += p * vm[j][i]
			}
			resp.Moments[j] = s
		}
	case MethodSimulation:
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		simulator, err := sim.New(model, req.Sim.Seed)
		if err != nil {
			return nil, err
		}
		est, err := simulator.EstimateMoments(req.T, req.Order, req.Sim.Reps)
		if err != nil {
			return nil, err
		}
		resp.Moments = est.Moments
		resp.StdErr = est.StdErr
	}
	if len(req.BoundsAt) > 0 {
		est, err := momentbounds.New(resp.Moments)
		if err != nil {
			return nil, badRequestf("distribution bounds: %v", err)
		}
		for _, x := range req.BoundsAt {
			b, err := est.CDFBounds(x)
			if err != nil {
				return nil, badRequestf("distribution bounds at %g: %v", x, err)
			}
			resp.Bounds = append(resp.Bounds, BoundPoint{X: x, Lower: b.Lower, Upper: b.Upper})
		}
	}
	return resp, nil
}
