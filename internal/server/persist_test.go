package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// solveN posts n distinct solve requests and returns the responses with
// their serving-path decorations stripped (what the cache stores).
func solveN(t *testing.T, url string, n int) []*SolveResponse {
	t.Helper()
	out := make([]*SolveResponse, n)
	for k := 0; k < n; k++ {
		resp, r, raw := postSolve(t, url, solveBody(t, &SolveRequest{Model: testSpec(k), T: 1.5, Order: 3}))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d: status %d: %s", k, resp.StatusCode, raw)
		}
		out[k] = r
	}
	return out
}

// canonicalBody renders a response the way byte-comparison wants it:
// serving-path fields (cached, elapsed) zeroed, everything numerical kept.
func canonicalBody(t *testing.T, r *SolveResponse) string {
	t.Helper()
	c := *r
	c.Cached = false
	c.Deduped = false
	c.PeerFilled = false
	c.ElapsedMS = 0
	b, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestPersistKillAndWarmRestart is the crash-safety gate: a replica
// persisting its cache is killed without any shutdown (no Close, no
// snapshot compaction — exactly what SIGKILL leaves behind), and a new
// replica over the same directory serves every response byte-identical
// from the restored cache, without re-entering the solver.
func TestPersistKillAndWarmRestart(t *testing.T) {
	dir := t.TempDir()
	const n = 6

	s1, err := NewWithPersistence(Options{Workers: 2, PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())

	// Storm: the n distinct solves land concurrently, mid-flight journal
	// appends interleaving like production traffic.
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			body := solveBody(t, &SolveRequest{Model: testSpec(k), T: 1.5, Order: 3})
			resp, err := http.Post(ts1.URL+"/v1/solve", "application/json", bytes.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}(k)
	}
	wg.Wait()
	baseline := solveN(t, ts1.URL, n) // all cached now; records the canonical bodies

	// kill -9: tear down the listener and abandon the server. No Shutdown,
	// no persister Close — the journal's fsynced tail is all that survives.
	ts1.Close()

	s2, err := NewWithPersistence(Options{Workers: 2, PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown(context.Background())
	if got := s2.metrics.CacheRestored.Load(); got != int64(n) {
		t.Fatalf("cache_restored_total = %d, want %d", got, n)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	restored := solveN(t, ts2.URL, n)
	for k := 0; k < n; k++ {
		if !restored[k].Cached {
			t.Fatalf("request %d not served from restored cache", k)
		}
		if got, want := canonicalBody(t, restored[k]), canonicalBody(t, baseline[k]); got != want {
			t.Fatalf("request %d restored response differs:\n got %s\nwant %s", k, got, want)
		}
	}
	if got := s2.metrics.Solves.Load(); got != 0 {
		t.Fatalf("warm replica re-solved %d times; want 0", got)
	}
}

// TestPersistTornWriteTruncated injects a torn journal write (the lie a
// crash mid-append tells) and asserts the next startup truncates the
// corrupt tail: every entry before the tear restores, the torn one is
// gone, and the truncated journal accepts clean appends again.
func TestPersistTornWriteTruncated(t *testing.T) {
	dir := t.TempDir()
	faults := NewFaultInjector(FaultConfig{})

	s1, err := NewWithPersistence(Options{Workers: 1, PersistDir: dir, DiskFaults: faults})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	solveN(t, ts1.URL, 2) // two clean entries

	faults.SetConfig(FaultConfig{DiskTornRate: 1})
	resp, r, raw := postSolve(t, ts1.URL, solveBody(t, &SolveRequest{Model: testSpec(99), T: 1.5, Order: 3}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("torn-write solve must still succeed: %d: %s", resp.StatusCode, raw)
	}
	if r.Cached {
		t.Fatal("fresh solve reported cached")
	}
	if faults.Counts().DiskTorn != 1 {
		t.Fatalf("torn faults fired = %d, want 1", faults.Counts().DiskTorn)
	}
	ts1.Close() // kill -9: no Close, the torn tail stays on disk

	s2, err := NewWithPersistence(Options{Workers: 1, PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.cache.Len(); got != 2 {
		t.Fatalf("restored %d entries, want the 2 before the tear", got)
	}
	ts2 := httptest.NewServer(s2.Handler())
	solveN(t, ts2.URL, 3) // entries 0,1 cached; 2 re-solves and re-journals cleanly
	ts2.Close()

	s3, err := NewWithPersistence(Options{Workers: 1, PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Shutdown(context.Background())
	if got := s3.cache.Len(); got != 3 {
		t.Fatalf("after truncation + clean append: restored %d entries, want 3", got)
	}
}

// TestPersistDiskErrorFailOpen injects hard write errors: the solve still
// answers 200, persist_errors_total counts the failures, and the failed
// entries are simply absent after restart.
func TestPersistDiskErrorFailOpen(t *testing.T) {
	dir := t.TempDir()
	faults := NewFaultInjector(FaultConfig{DiskErrRate: 1})

	s1, err := NewWithPersistence(Options{Workers: 1, PersistDir: dir, DiskFaults: faults})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	solveN(t, ts1.URL, 2)
	if got := s1.metrics.PersistErrors.Load(); got != 2 {
		t.Fatalf("persist_errors_total = %d, want 2", got)
	}
	if got := faults.Counts().DiskErrs; got != 2 {
		t.Fatalf("disk-error faults fired = %d, want 2", got)
	}
	ts1.Close()

	s2, err := NewWithPersistence(Options{Workers: 1, PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown(context.Background())
	if got := s2.cache.Len(); got != 0 {
		t.Fatalf("failed writes restored %d entries, want 0", got)
	}
}

// TestPersistGarbageTail appends raw garbage to the journal (bit rot, a
// partial page, an editor accident) and asserts startup truncates it away
// while keeping every verifiable entry.
func TestPersistGarbageTail(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewWithPersistence(Options{Workers: 1, PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	solveN(t, ts1.URL, 3)
	ts1.Close()

	journal := filepath.Join(dir, persistJournalName)
	clean, err := os.Stat(journal)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(journal, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("v1 deadbeef {\"key\": corrupted"))
	f.Close()

	s2, err := NewWithPersistence(Options{Workers: 1, PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown(context.Background())
	if got := s2.cache.Len(); got != 3 {
		t.Fatalf("restored %d entries, want 3", got)
	}
	after, err := os.Stat(journal)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != clean.Size() {
		t.Fatalf("garbage tail not truncated: %d bytes, want %d", after.Size(), clean.Size())
	}
}

// TestPersistCleanShutdownCompacts: Shutdown compacts the journal into the
// snapshot; the next start restores from the snapshot with an empty
// journal.
func TestPersistCleanShutdownCompacts(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewWithPersistence(Options{Workers: 1, PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	solveN(t, ts1.URL, 4)
	ts1.Close()
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	snap, err := os.Stat(filepath.Join(dir, persistSnapshotName))
	if err != nil || snap.Size() == 0 {
		t.Fatalf("no snapshot after clean shutdown: %v", err)
	}
	j, err := os.Stat(filepath.Join(dir, persistJournalName))
	if err != nil || j.Size() != 0 {
		t.Fatalf("journal not reset after compaction: size %d, err %v", j.Size(), err)
	}

	s2, err := NewWithPersistence(Options{Workers: 1, PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown(context.Background())
	if got := s2.cache.Len(); got != 4 {
		t.Fatalf("snapshot restored %d entries, want 4", got)
	}
}

// TestPersisterEntryBound pins the snapshot bound: the persister's entry
// set never exceeds persistMaxEntries, oldest dropped first.
func TestPersisterEntryBound(t *testing.T) {
	p := &cachePersister{entries: make(map[string][]byte)}
	for i := 0; i < persistMaxEntries+10; i++ {
		p.adoptEntry(fmt.Sprintf("key-%08d", i), []byte("x"))
	}
	if len(p.entries) != persistMaxEntries || len(p.order) != persistMaxEntries {
		t.Fatalf("entry bound not enforced: %d/%d", len(p.entries), len(p.order))
	}
	if _, ok := p.entries["key-00000009"]; ok {
		t.Fatal("oldest entry not evicted")
	}
	if _, ok := p.entries[fmt.Sprintf("key-%08d", persistMaxEntries+9)]; !ok {
		t.Fatal("newest entry missing")
	}
}
