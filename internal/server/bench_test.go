package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchServer mounts the handler without a TCP listener so the benchmark
// measures the service stack (decode, hash, cache, pool, solve, encode)
// rather than loopback networking.
func benchServer(b *testing.B) (*Server, http.Handler) {
	b.Helper()
	s := New(Options{Workers: 2, CacheSize: 4096})
	b.Cleanup(func() { _ = s.Shutdown(context.Background()) })
	return s, s.Handler()
}

func benchBody(b *testing.B, t float64) []byte {
	b.Helper()
	body, err := json.Marshal(&SolveRequest{Model: testSpec(0), T: t, Order: 3})
	if err != nil {
		b.Fatal(err)
	}
	return body
}

func post(b *testing.B, h http.Handler, body []byte) *httptest.ResponseRecorder {
	b.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/solve", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	return rec
}

// BenchmarkServerSolve records the serving baseline on the two paths every
// later scaling PR cares about: cache hits (pure service overhead) and
// cache misses (service overhead + a real two-state randomization solve).
func BenchmarkServerSolve(b *testing.B) {
	b.Run("cache-hit", func(b *testing.B) {
		s, h := benchServer(b)
		body := benchBody(b, 1)
		post(b, h, body) // prime
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, h, body)
		}
		b.StopTimer()
		if s.metrics.Solves.Load() != 1 {
			b.Fatalf("cache-hit path solved %d times", s.metrics.Solves.Load())
		}
	})
	b.Run("cache-miss", func(b *testing.B) {
		s, h := benchServer(b)
		// Distinct t per iteration defeats the cache while keeping the
		// solve cost constant (same qt regime).
		bodies := make([][]byte, b.N)
		for i := range bodies {
			bodies[i] = benchBody(b, 1+float64(i)*1e-9)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, h, bodies[i])
		}
		b.StopTimer()
		if int(s.metrics.Solves.Load()) != b.N {
			b.Fatalf("cache-miss path solved %d times for %d requests", s.metrics.Solves.Load(), b.N)
		}
	})
}
