package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"somrm/internal/spec"
)

// benchServer mounts the handler without a TCP listener so the benchmark
// measures the service stack (decode, hash, cache, pool, solve, encode)
// rather than loopback networking.
func benchServer(b *testing.B) (*Server, http.Handler) {
	b.Helper()
	s := New(Options{Workers: 2, CacheSize: 4096})
	b.Cleanup(func() { _ = s.Shutdown(context.Background()) })
	return s, s.Handler()
}

func benchBody(b *testing.B, t float64) []byte {
	b.Helper()
	body, err := json.Marshal(&SolveRequest{Model: testSpec(0), T: t, Order: 3})
	if err != nil {
		b.Fatal(err)
	}
	return body
}

func post(b *testing.B, h http.Handler, body []byte) *httptest.ResponseRecorder {
	b.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/solve", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	return rec
}

// BenchmarkServerSolve records the serving baseline on the two paths every
// later scaling PR cares about: cache hits (pure service overhead) and
// cache misses (service overhead + a real two-state randomization solve).
func BenchmarkServerSolve(b *testing.B) {
	b.Run("cache-hit", func(b *testing.B) {
		s, h := benchServer(b)
		body := benchBody(b, 1)
		post(b, h, body) // prime
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, h, body)
		}
		b.StopTimer()
		if s.metrics.Solves.Load() != 1 {
			b.Fatalf("cache-hit path solved %d times", s.metrics.Solves.Load())
		}
	})
	b.Run("cache-miss", func(b *testing.B) {
		s, h := benchServer(b)
		// Distinct t per iteration defeats the cache while keeping the
		// solve cost constant (same qt regime).
		bodies := make([][]byte, b.N)
		for i := range bodies {
			bodies[i] = benchBody(b, 1+float64(i)*1e-9)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, h, bodies[i])
		}
		b.StopTimer()
		if int(s.metrics.Solves.Load()) != b.N {
			b.Fatalf("cache-miss path solved %d times for %d requests", s.metrics.Solves.Load(), b.N)
		}
	})
}

// BenchmarkServerPersist measures what cache persistence costs on each
// serving path, persistence off vs on. Hits never touch the journal (the
// append fires only on a fresh cache insert), so the hit rows should
// match within noise; each miss pays one fsynced journal append on top
// of the solve.
func BenchmarkServerPersist(b *testing.B) {
	server := func(b *testing.B, dir string) (*Server, http.Handler) {
		b.Helper()
		s, err := NewWithPersistence(Options{Workers: 2, CacheSize: 8192, PersistDir: dir})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = s.Shutdown(context.Background()) })
		return s, s.Handler()
	}
	for _, mode := range []string{"off", "on"} {
		dir := func(b *testing.B) string {
			if mode == "on" {
				return b.TempDir()
			}
			return ""
		}
		b.Run("cache-hit-persist-"+mode, func(b *testing.B) {
			s, h := server(b, dir(b))
			body := benchBody(b, 1)
			post(b, h, body) // prime
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				post(b, h, body)
			}
			b.StopTimer()
			if s.metrics.Solves.Load() != 1 {
				b.Fatalf("cache-hit path solved %d times", s.metrics.Solves.Load())
			}
		})
		b.Run("cache-miss-persist-"+mode, func(b *testing.B) {
			_, h := server(b, dir(b))
			bodies := make([][]byte, b.N)
			for i := range bodies {
				bodies[i] = benchBody(b, 1+float64(i)*1e-9)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				post(b, h, bodies[i])
			}
		})
	}
}

// benchBatchSpec is a birth-death model big enough that solver work, not
// HTTP plumbing, dominates the measurement.
func benchBatchSpec(k int) *spec.Model {
	n := 50
	sp := &spec.Model{States: n, Rates: make([]float64, n), Variances: make([]float64, n), Initial: make([]float64, n)}
	for i := 0; i < n; i++ {
		sp.Rates[i] = float64(i) / float64(n)
		sp.Variances[i] = 0.1
		if i+1 < n {
			sp.Transitions = append(sp.Transitions,
				spec.Transition{From: i, To: i + 1, Rate: 1 + float64(k)*1e-9},
				spec.Transition{From: i + 1, To: i, Rate: 2})
		}
	}
	sp.Initial[0] = 1
	return sp
}

// batchGrid is the 16-point grid of the BENCHMARKS.md comparison.
func batchGrid() []float64 {
	grid := make([]float64, 16)
	for i := range grid {
		grid[i] = 0.5 * float64(i+1)
	}
	return grid
}

// BenchmarkBatchSolve compares one POST /v1/solve/batch carrying a
// 16-point time grid against 16 sequential POST /v1/solve calls for the
// same points. The result cache is disabled and the model varies per
// iteration, so every iteration starts cold: the batch pays one prepare
// plus one shared coefficient-vector sweep, the loop pays one prepare
// plus sixteen sweeps.
func BenchmarkBatchSolve(b *testing.B) {
	grid := batchGrid()
	b.Run("batch-16pt", func(b *testing.B) {
		s, h := benchServer(b)
		s.cache = newLRU(-1)
		bodies := make([][]byte, b.N)
		for i := range bodies {
			var err error
			bodies[i], err = json.Marshal(&BatchRequest{Model: benchBatchSpec(i), Items: []BatchItem{{Times: grid, Order: 3}}})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest(http.MethodPost, "/v1/solve/batch", bytes.NewReader(bodies[i]))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
	})
	b.Run("sequential-16pt", func(b *testing.B) {
		_, h := benchServer(b)
		bodies := make([][][]byte, b.N)
		for i := range bodies {
			bodies[i] = make([][]byte, len(grid))
			for k, t := range grid {
				var err error
				bodies[i][k], err = json.Marshal(&SolveRequest{Model: benchBatchSpec(i), T: t, Order: 3})
				if err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := range bodies[i] {
				post(b, h, bodies[i][k])
			}
		}
	})
}
