package server

import (
	"bytes"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// FaultConfig parameterizes the fault-injection middleware. It exists
// for chaos testing the service and its clients and is never enabled by
// default: somrm-serve only installs the middleware when a -fault-*
// flag is set, and then logs a loud warning. All rates are independent
// per-request probabilities in [0, 1].
type FaultConfig struct {
	// FailureRate injects a 503 with an "injected fault" body before the
	// request reaches a handler (exercises client retry and breaker paths).
	FailureRate float64
	// TruncateRate lets the handler run, then aborts the connection after
	// writing only half of the response body (exercises client handling of
	// torn responses).
	TruncateRate float64
	// PanicRate panics inside the handler goroutine before the handler
	// runs. net/http recovers it per connection: the client sees the
	// connection drop, the process survives (exercises exactly that claim).
	PanicRate float64
	// Latency is a fixed delay added before the handler runs (exercises
	// client timeouts and queue buildup).
	Latency time.Duration
	// DiskErrRate fails a cache-persistence write with an injected I/O
	// error (exercises the journal's fail-open path: the solve succeeds,
	// persistence degrades, persist_errors_total counts it).
	DiskErrRate float64
	// DiskTornRate cuts a cache-persistence write partway through — a torn
	// write, as if the process died mid-append — while reporting success to
	// the writer (exercises corrupt-tail truncation on the next startup).
	DiskTornRate float64
	// Seed seeds the injector's private RNG so chaos runs are
	// reproducible (0 selects seed 1).
	Seed int64
}

// FaultCounts reports how many faults of each kind an injector has
// actually fired, so tests can assert the storm they asked for happened.
type FaultCounts struct {
	Failures  int64
	Truncates int64
	Panics    int64
	Passed    int64 // requests forwarded unharmed
	DiskErrs  int64 // persistence writes failed with an injected error
	DiskTorn  int64 // persistence writes cut short (torn write)
}

// FaultInjector injects faults into an http.Handler chain according to
// its current FaultConfig. The config may be swapped at runtime
// (SetConfig) so a chaos test can move through phases: storm, full
// outage, heal.
type FaultInjector struct {
	mu  sync.Mutex
	cfg FaultConfig
	rnd *rand.Rand

	failures  atomic.Int64
	truncates atomic.Int64
	panics    atomic.Int64
	passed    atomic.Int64
	diskErrs  atomic.Int64
	diskTorn  atomic.Int64
}

// NewFaultInjector builds an injector with the given initial config.
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	f := &FaultInjector{}
	f.SetConfig(cfg)
	return f
}

// SetConfig replaces the injector's fault rates. The RNG is reseeded
// only when the seed changes, so phase switches don't replay the
// sequence.
func (f *FaultInjector) SetConfig(cfg FaultConfig) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rnd == nil || cfg.Seed != f.cfg.Seed {
		seed := cfg.Seed
		if seed == 0 {
			seed = 1
		}
		f.rnd = rand.New(rand.NewSource(seed))
	}
	f.cfg = cfg
}

// Counts returns the number of faults fired so far, by kind.
func (f *FaultInjector) Counts() FaultCounts {
	return FaultCounts{
		Failures:  f.failures.Load(),
		Truncates: f.truncates.Load(),
		Panics:    f.panics.Load(),
		Passed:    f.passed.Load(),
		DiskErrs:  f.diskErrs.Load(),
		DiskTorn:  f.diskTorn.Load(),
	}
}

// DiskFault draws one persistence write's fate: fail it outright, tear it
// partway, or let it through. At most one fault fires per write, error
// before torn. Nil injectors (the default) never fault.
func (f *FaultInjector) DiskFault() (fail, torn bool) {
	if f == nil {
		return false, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	switch {
	case f.cfg.DiskErrRate > 0 && f.rnd.Float64() < f.cfg.DiskErrRate:
		f.diskErrs.Add(1)
		return true, false
	case f.cfg.DiskTornRate > 0 && f.rnd.Float64() < f.cfg.DiskTornRate:
		f.diskTorn.Add(1)
		return false, true
	}
	return false, false
}

// roll draws this request's fate under the lock: at most one fault kind
// fires per request, checked in order 503, panic, truncate.
func (f *FaultInjector) roll() (fail, panicNow, truncate bool, latency time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	latency = f.cfg.Latency
	switch {
	case f.cfg.FailureRate > 0 && f.rnd.Float64() < f.cfg.FailureRate:
		fail = true
	case f.cfg.PanicRate > 0 && f.rnd.Float64() < f.cfg.PanicRate:
		panicNow = true
	case f.cfg.TruncateRate > 0 && f.rnd.Float64() < f.cfg.TruncateRate:
		truncate = true
	}
	return fail, panicNow, truncate, latency
}

// Middleware wraps next with fault injection.
func (f *FaultInjector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fail, panicNow, truncate, latency := f.roll()
		if latency > 0 {
			select {
			case <-time.After(latency):
			case <-r.Context().Done():
			}
		}
		switch {
		case fail:
			f.failures.Add(1)
			writeError(w, http.StatusServiceUnavailable, "injected fault: service unavailable")
		case panicNow:
			f.panics.Add(1)
			panic("injected fault: handler panic")
		case truncate:
			f.truncates.Add(1)
			f.truncateResponse(w, r, next)
		default:
			f.passed.Add(1)
			next.ServeHTTP(w, r)
		}
	})
}

// truncateResponse runs next against a buffer, then sends the client
// only half of the body and aborts the connection, simulating a torn
// response from a dying peer.
func (f *FaultInjector) truncateResponse(w http.ResponseWriter, r *http.Request, next http.Handler) {
	rec := &bufferedResponse{header: make(http.Header), code: http.StatusOK}
	next.ServeHTTP(rec, r)
	for k, vs := range rec.header {
		// Drop Content-Length so the runtime doesn't pad or error; the
		// abort below is what ends the response.
		if k == "Content-Length" {
			continue
		}
		w.Header()[k] = vs
	}
	w.WriteHeader(rec.code)
	body := rec.body.Bytes()
	if len(body) > 0 {
		w.Write(body[:len(body)/2])
	}
	if fl, ok := w.(http.Flusher); ok {
		fl.Flush()
	}
	// ErrAbortHandler closes the connection without the stack-trace log
	// a regular handler panic would emit.
	panic(http.ErrAbortHandler)
}

// bufferedResponse captures a handler's response so the middleware can
// replay a mutilated copy of it.
type bufferedResponse struct {
	header http.Header
	code   int
	body   bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header         { return b.header }
func (b *bufferedResponse) WriteHeader(code int)        { b.code = code }
func (b *bufferedResponse) Write(p []byte) (int, error) { return b.body.Write(p) }
