package server

import (
	"context"
	"errors"
	"io"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"somrm/internal/resilience"
	"somrm/internal/testutil"
)

// typedChaosError reports whether err is one of the outcomes the client
// is allowed to surface under faults: a typed API error, a breaker
// fail-fast, an exhausted retry budget, or a transient transport-level
// failure that outlived its retries. Anything else (a decoded-garbage
// success, an untyped error) fails the chaos invariant.
func typedChaosError(err error) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) ||
		errors.Is(err, resilience.ErrBreakerOpen) ||
		errors.Is(err, resilience.ErrBudgetExhausted) ||
		resilience.IsTransient(err)
}

// TestChaosStormAndRecovery drives the real server through the fault
// injector in three phases — a mixed-fault storm, a full outage, a
// heal — and asserts the resilience invariants: every request
// terminates with a correct result or a typed error, the process
// survives every injected panic, the breaker walks a full
// open -> half-open -> close cycle, and no module goroutines leak.
func TestChaosStormAndRecovery(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)

	s := New(Options{Workers: 2, QueueSize: 64})
	inj := NewFaultInjector(FaultConfig{
		FailureRate:  0.20,
		TruncateRate: 0.10,
		PanicRate:    0.05,
		Latency:      200 * time.Microsecond,
		Seed:         42,
	})
	ts := httptest.NewServer(inj.Middleware(s.Handler()))
	// Injected handler panics are recovered by net/http; silence its
	// stack-trace logging so the test output stays readable.
	ts.Config.ErrorLog = log.New(io.Discard, "", 0)
	defer ts.Close()
	defer s.Shutdown(context.Background())

	transport := &http.Transport{}
	defer transport.CloseIdleConnections()
	c := NewClient(ts.URL,
		WithHTTPClient(&http.Client{Transport: transport, Timeout: 10 * time.Second}),
		fastRetry(4),
		WithRetryBudget(100000, 1), // the budget must not mask the storm
		WithBreaker(resilience.BreakerConfig{
			// High trip threshold: the 20% storm must ride through
			// closed; only the full outage below is allowed to open it.
			Window: 32, FailureRatio: 0.9, MinSamples: 16,
			Cooldown: 20 * time.Millisecond, HalfOpenProbes: 2,
		}))

	// Reference results straight from the core solver, one per model.
	const distinct = 6
	const order = 2
	refs := make([][]float64, distinct)
	for k := 0; k < distinct; k++ {
		model, err := testSpec(k).Build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := model.AccumulatedRewardAt([]float64{1}, order, nil)
		if err != nil {
			t.Fatal(err)
		}
		refs[k] = res[0].Moments
	}

	// Phase 1: storm. Concurrent singles and batches against the faulty
	// server; count outcomes, never tolerate an untyped one.
	const goroutines = 12
	const repsEach = 8
	var ok, failed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < repsEach; r++ {
				k := (g + r) % distinct
				if g%2 == 0 {
					resp, err := c.Solve(context.Background(), &SolveRequest{Model: testSpec(k), T: 1, Order: order})
					if err != nil {
						if !typedChaosError(err) {
							t.Errorf("untyped solve error: %v", err)
						}
						failed.Add(1)
						continue
					}
					ok.Add(1)
					if len(resp.Moments) != order+1 {
						t.Errorf("model %d: got %d moments, want %d", k, len(resp.Moments), order+1)
						continue
					}
					for j, m := range resp.Moments {
						if math.IsNaN(m) || math.IsInf(m, 0) {
							t.Errorf("model %d: moment %d is %g", k, j, m)
						}
						if m != refs[k][j] {
							t.Errorf("model %d moment %d: got %g, want %g (corrupted result slipped through)", k, j, m, refs[k][j])
						}
					}
				} else {
					grid := []float64{0.5, 1}
					resp, err := c.SolveBatch(context.Background(), &BatchRequest{
						Model: testSpec(k),
						Items: []BatchItem{{Times: grid, Order: order}},
					})
					if err != nil {
						if !typedChaosError(err) {
							t.Errorf("untyped batch error: %v", err)
						}
						failed.Add(1)
						continue
					}
					ok.Add(1)
					if len(resp.Items) != 1 {
						t.Errorf("batch for model %d: %d item results, want 1", k, len(resp.Items))
						continue
					}
					item := resp.Items[0]
					if item.Status == BatchStatusOK && len(item.Points) != len(grid) {
						t.Errorf("batch for model %d: %d points, want %d", k, len(item.Points), len(grid))
					}
				}
			}
		}(g)
	}
	wg.Wait()

	if ok.Load() == 0 {
		t.Fatal("no request succeeded during the storm; retries are not recovering faults")
	}
	counts := inj.Counts()
	if counts.Failures == 0 || counts.Truncates == 0 || counts.Panics == 0 {
		t.Fatalf("storm fired too few faults to mean anything: %+v", counts)
	}
	t.Logf("storm: %d ok, %d failed after retries; faults %+v", ok.Load(), failed.Load(), counts)

	// The server must have sailed through: no solver panics (injected
	// panics fire in the middleware, before the solver), still healthy.
	if got := s.metrics.Panics.Load(); got != 0 {
		t.Errorf("solver panics_total = %d during a middleware-only storm", got)
	}

	// Phase 2: full outage until the breaker opens and fails fast.
	inj.SetConfig(FaultConfig{FailureRate: 1, Seed: 42})
	sawOpen := false
	for i := 0; i < 50 && !sawOpen; i++ {
		_, err := c.Solve(context.Background(), &SolveRequest{Model: testSpec(i % distinct), T: 2, Order: order})
		if err == nil {
			t.Fatal("solve succeeded during a 100% outage")
		}
		sawOpen = errors.Is(err, resilience.ErrBreakerOpen)
	}
	if !sawOpen {
		t.Fatalf("breaker never opened under 100%% failures; stats %+v", c.BreakerStats())
	}
	atServer := inj.Counts()
	if _, err := c.Solve(context.Background(), &SolveRequest{Model: testSpec(0), T: 2, Order: order}); !errors.Is(err, resilience.ErrBreakerOpen) {
		t.Fatalf("expected breaker fail-fast, got %v", err)
	}
	if inj.Counts() != atServer {
		t.Error("open breaker still let a request through to the server")
	}

	// Phase 3: heal. Faults off, cooldown elapses, probes close the circuit.
	inj.SetConfig(FaultConfig{Seed: 42})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := c.Solve(context.Background(), &SolveRequest{Model: testSpec(1), T: 2, Order: order}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never recovered after the outage; breaker %s stats %+v", c.BreakerState(), c.BreakerStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The breaker needs HalfOpenProbes successes to close; feed it a
	// couple more wins past the first.
	for i := 0; i < 3; i++ {
		if _, err := c.Solve(context.Background(), &SolveRequest{Model: testSpec(1), T: 2, Order: order}); err != nil {
			t.Fatalf("healed service failed again: %v", err)
		}
	}
	st := c.BreakerStats()
	if st.Opens < 1 || st.HalfOpens < 1 || st.Closes < 1 {
		t.Errorf("breaker stats = %+v, want at least one full open -> half-open -> close cycle", st)
	}

	// The service itself never degraded: a clean path (no middleware)
	// still solves and reports healthy.
	clean := httptest.NewServer(s.Handler())
	defer clean.Close()
	resp, _, raw := postSolve(t, clean.URL, solveBody(t, &SolveRequest{Model: testSpec(2), T: 1, Order: order}))
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-chaos clean solve: status %d: %s", resp.StatusCode, raw)
	}
}

// TestChaosServerSideSolverPanics injects panics into the solver itself
// (not the middleware) under concurrent fire and asserts the pool
// recovery holds up: every panic becomes a sanitized 500, the workers
// survive, and the client's retry layer treats them as permanent
// (500 is not retried).
func TestChaosServerSideSolverPanics(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)

	s := New(Options{Workers: 2, QueueSize: 64})
	var panics atomic.Int64
	real := s.solve
	s.solve = func(ctx context.Context, req *SolveRequest) (*SolveResponse, error) {
		// Panic on every third request, spread across workers.
		if panics.Add(1)%3 == 0 {
			panic("chaos: solver blew up")
		}
		return real(ctx, req)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	transport := &http.Transport{}
	defer transport.CloseIdleConnections()
	c := NewClient(ts.URL,
		WithHTTPClient(&http.Client{Transport: transport, Timeout: 10 * time.Second}),
		fastRetry(3), WithoutBreaker())

	var ok, internal atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 6; r++ {
				// Distinct (model, t) pairs defeat the result cache so
				// every request exercises the solve path.
				_, err := c.Solve(context.Background(), &SolveRequest{
					Model: testSpec(g), T: 1 + float64(r)/13, Order: 2,
				})
				if err == nil {
					ok.Add(1)
					continue
				}
				var apiErr *APIError
				if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusInternalServerError {
					internal.Add(1)
					continue
				}
				t.Errorf("unexpected error under solver panics: %v", err)
			}
		}(g)
	}
	wg.Wait()

	if ok.Load() == 0 || internal.Load() == 0 {
		t.Fatalf("want a mix of successes and sanitized 500s, got ok=%d internal=%d", ok.Load(), internal.Load())
	}
	if got := s.metrics.Panics.Load(); got == 0 {
		t.Error("panics_total stayed 0 though the solver panicked")
	}
	// The pool survived: a final clean request succeeds (the stub panics
	// on multiples of three; retry the handful needed to land off-cycle).
	okAfter := false
	for i := 0; i < 4 && !okAfter; i++ {
		_, err := c.Solve(context.Background(), &SolveRequest{Model: testSpec(9), T: 3 + float64(i), Order: 2})
		okAfter = err == nil
	}
	if !okAfter {
		t.Error("server stopped serving after repeated solver panics")
	}
}
