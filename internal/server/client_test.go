package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"somrm/internal/resilience"
)

// fastRetry is an aggressive retry schedule for tests: micro backoffs so
// retried paths stay fast.
func fastRetry(attempts int) ClientOption {
	return WithRetryPolicy(resilience.RetryPolicy{
		MaxAttempts: attempts,
		BaseDelay:   200 * time.Microsecond,
		MaxDelay:    2 * time.Millisecond,
	})
}

// okSolveJSON is a minimal valid SolveResponse body.
func okSolveJSON(t *testing.T) []byte {
	t.Helper()
	body, err := json.Marshal(&SolveResponse{Method: MethodRandomization, Moments: []float64{1, 2, 5}})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestClientRetries503ThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	ok := okSolveJSON(t)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			writeError(w, http.StatusServiceUnavailable, "queue full")
			return
		}
		w.Write(ok)
	}))
	defer ts.Close()

	c := NewClient(ts.URL, fastRetry(4))
	resp, err := c.Solve(context.Background(), &SolveRequest{})
	if err != nil {
		t.Fatalf("Solve after transient 503s: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3 (two retried 503s)", got)
	}
	if len(resp.Moments) != 3 || resp.Moments[2] != 5 {
		t.Errorf("bad decoded response: %+v", resp)
	}
}

func TestClientNeverRetries4xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusBadRequest, "bad t")
	}))
	defer ts.Close()

	c := NewClient(ts.URL, fastRetry(5))
	_, err := c.Solve(context.Background(), &SolveRequest{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("err = %v, want APIError 400", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d requests, want exactly 1 (4xx is permanent)", got)
	}
}

func TestClientRetriesTruncatedResponse(t *testing.T) {
	var calls atomic.Int64
	ok := okSolveJSON(t)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Half a JSON body, then abort the connection mid-response.
			w.Write(ok[:len(ok)/2])
			if f, okf := w.(http.Flusher); okf {
				f.Flush()
			}
			panic(http.ErrAbortHandler)
		}
		w.Write(ok)
	}))
	defer ts.Close()

	c := NewClient(ts.URL, fastRetry(4))
	resp, err := c.Solve(context.Background(), &SolveRequest{})
	if err != nil {
		t.Fatalf("Solve after truncated body: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("server saw %d requests, want 2", got)
	}
	if len(resp.Moments) != 3 {
		t.Errorf("bad decoded response: %+v", resp)
	}
}

func TestClientHealthNotRetried(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusServiceUnavailable, "draining")
	}))
	defer ts.Close()

	c := NewClient(ts.URL, fastRetry(5))
	err := c.Health(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want APIError 503", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("health probe sent %d requests, want exactly 1", got)
	}
}

func TestClientBreakerOpensAndRecovers(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	var calls atomic.Int64
	ok := okSolveJSON(t)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if failing.Load() {
			writeError(w, http.StatusServiceUnavailable, "injected outage")
			return
		}
		w.Write(ok)
	}))
	defer ts.Close()

	c := NewClient(ts.URL,
		fastRetry(2),
		WithRetryBudget(1000, 1), // don't let the budget mask the breaker
		WithBreaker(resilience.BreakerConfig{
			Window: 8, FailureRatio: 0.5, MinSamples: 4,
			Cooldown: 30 * time.Millisecond, HalfOpenProbes: 1,
		}))

	// Outage: calls fail until the breaker opens, then fail fast.
	sawOpen := false
	for i := 0; i < 20 && !sawOpen; i++ {
		_, err := c.Solve(context.Background(), &SolveRequest{})
		if err == nil {
			t.Fatal("solve succeeded during outage")
		}
		if errors.Is(err, resilience.ErrBreakerOpen) {
			sawOpen = true
		}
	}
	if !sawOpen {
		t.Fatalf("breaker never opened; stats %+v", c.BreakerStats())
	}
	atServer := calls.Load()
	if _, err := c.Solve(context.Background(), &SolveRequest{}); !errors.Is(err, resilience.ErrBreakerOpen) {
		t.Fatalf("expected fail-fast while open, got %v", err)
	}
	if calls.Load() != atServer {
		t.Error("open breaker still sent requests to the server")
	}

	// Recovery: service heals, cooldown elapses, a probe closes the circuit.
	failing.Store(false)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := c.Solve(context.Background(), &SolveRequest{}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never recovered; state %s stats %+v", c.BreakerState(), c.BreakerStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := c.BreakerStats()
	if st.Opens < 1 || st.HalfOpens < 1 || st.Closes < 1 {
		t.Errorf("stats = %+v, want a full open -> half-open -> close cycle", st)
	}
}

func TestClientWithoutRetrySingleAttempt(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusServiceUnavailable, "queue full")
	}))
	defer ts.Close()

	c := NewClient(ts.URL, WithoutRetry())
	_, err := c.Solve(context.Background(), &SolveRequest{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want APIError 503", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1", got)
	}
}
