package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"somrm/internal/spec"
)

// testSpec returns a small two-state model whose recovery rate varies
// with k, giving distinct solver inputs per k.
func testSpec(k int) *spec.Model {
	return &spec.Model{
		States: 2,
		Transitions: []spec.Transition{
			{From: 0, To: 1, Rate: 2},
			{From: 1, To: 0, Rate: 3 + float64(k)/7},
		},
		Rates:     []float64{1.5, -0.5},
		Variances: []float64{0.2, 1},
		Initial:   []float64{1, 0},
	}
}

func solveBody(t *testing.T, req *SolveRequest) []byte {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postSolve(t *testing.T, url string, body []byte) (*http.Response, *SolveResponse, string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var out SolveResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("bad response body: %v\n%s", err, buf.String())
		}
	}
	return resp, &out, buf.String()
}

func TestSolveEndToEndAndCache(t *testing.T) {
	s := New(Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	sp := testSpec(0)
	model, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	want, err := model.AccumulatedReward(1.5, 3, nil)
	if err != nil {
		t.Fatal(err)
	}

	body := solveBody(t, &SolveRequest{Model: sp, T: 1.5, Order: 3, BoundsAt: []float64{0, 1}})
	resp, out, raw := postSolve(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if out.Cached {
		t.Error("first request reported cached")
	}
	if len(out.Moments) != 4 {
		t.Fatalf("want 4 moments, got %v", out.Moments)
	}
	for j, m := range want.Moments {
		if math.Abs(out.Moments[j]-m) > 1e-12*(1+math.Abs(m)) {
			t.Errorf("moment %d: %g want %g", j, out.Moments[j], m)
		}
	}
	if out.Stats == nil || out.Stats.G == 0 {
		t.Errorf("missing solver stats: %+v", out.Stats)
	}
	if len(out.Bounds) != 2 || out.Bounds[0].Lower > out.Bounds[0].Upper {
		t.Errorf("bad bounds: %+v", out.Bounds)
	}

	solvesAfterFirst := s.metrics.Solves.Load()
	resp2, out2, raw2 := postSolve(t, ts.URL, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp2.StatusCode, raw2)
	}
	if !out2.Cached {
		t.Error("second identical request not served from cache")
	}
	if got := s.metrics.Solves.Load(); got != solvesAfterFirst {
		t.Errorf("cache hit re-entered the solver: %d -> %d solves", solvesAfterFirst, got)
	}
	if s.metrics.CacheHits.Load() != 1 {
		t.Errorf("cache hits = %d, want 1", s.metrics.CacheHits.Load())
	}
	for j := range out.Moments {
		if out.Moments[j] != out2.Moments[j] {
			t.Errorf("cached moment %d differs", j)
		}
	}
}

// TestConcurrentDedup is the headline concurrency test: 64 simultaneous
// requests over 8 distinct models, all responses correct, with strictly
// fewer solver executions than requests and cache hits bypassing the
// solver entirely.
func TestConcurrentDedup(t *testing.T) {
	const distinct = 8
	const perModel = 8
	const total = distinct * perModel

	s := New(Options{Workers: 4, QueueSize: total})
	gate := make(chan struct{})
	s.solve = func(ctx context.Context, req *SolveRequest) (*SolveResponse, error) {
		<-gate // hold solves until the whole wave is in flight
		return runSolve(ctx, req)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	wantMoments := make([][]float64, distinct)
	bodies := make([][]byte, distinct)
	for k := 0; k < distinct; k++ {
		sp := testSpec(k)
		model, err := sp.Build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := model.AccumulatedReward(2, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantMoments[k] = res.Moments
		bodies[k] = solveBody(t, &SolveRequest{Model: sp, T: 2, Order: 3})
	}

	run := func() [total]*SolveResponse {
		var out [total]*SolveResponse
		var wg sync.WaitGroup
		var failures atomic.Int64
		for i := 0; i < total; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, body, raw := postSolve(t, ts.URL, bodies[i%distinct])
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					t.Errorf("request %d: status %d: %s", i, resp.StatusCode, raw)
					return
				}
				out[i] = body
			}(i)
		}
		// Give the wave time to pile onto the flight group, then release.
		time.Sleep(100 * time.Millisecond)
		close(gate)
		wg.Wait()
		if failures.Load() > 0 {
			t.FailNow()
		}
		return out
	}
	first := run()

	for i, got := range first {
		want := wantMoments[i%distinct]
		for j := range want {
			if math.Abs(got.Moments[j]-want[j]) > 1e-12*(1+math.Abs(want[j])) {
				t.Fatalf("request %d moment %d: %g want %g", i, j, got.Moments[j], want[j])
			}
		}
	}

	solves := s.metrics.Solves.Load()
	if solves >= total {
		t.Errorf("no deduplication: %d solves for %d requests", solves, total)
	}
	if solves < distinct {
		t.Errorf("impossible: %d solves for %d distinct models", solves, distinct)
	}
	dedup := s.metrics.DedupShared.Load()
	if dedup == 0 {
		t.Error("no requests shared an in-flight solve")
	}
	t.Logf("%d requests -> %d solves, %d deduped", total, solves, dedup)

	// Second identical wave: all cache hits, no new solver entries.
	gate = make(chan struct{}) // not used: cache hits never reach solve
	close(gate)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body, raw := postSolve(t, ts.URL, bodies[i%distinct])
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, raw)
				return
			}
			if !body.Cached {
				t.Errorf("request %d missed the cache", i)
			}
		}(i)
	}
	wg.Wait()
	if got := s.metrics.Solves.Load(); got != solves {
		t.Errorf("cache hits re-entered the solver: %d -> %d", solves, got)
	}
	if hits := s.metrics.CacheHits.Load(); hits < total {
		t.Errorf("cache hits = %d, want >= %d", hits, total)
	}
}

// TestGracefulShutdownUnderLoad: in-flight solves complete with 200,
// queued solves and post-shutdown arrivals get a clean 503.
func TestGracefulShutdownUnderLoad(t *testing.T) {
	const workers = 2
	const queued = 4
	s := New(Options{Workers: workers, QueueSize: 16})
	gate := make(chan struct{})
	var started atomic.Int64
	s.solve = func(ctx context.Context, req *SolveRequest) (*SolveResponse, error) {
		started.Add(1)
		<-gate
		return runSolve(ctx, req)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type result struct {
		status int
		cached bool
	}
	results := make([]chan result, workers+queued)
	for i := range results {
		results[i] = make(chan result, 1)
		go func(i int) {
			resp, body, _ := postSolve(t, ts.URL, solveBody(t, &SolveRequest{Model: testSpec(i), T: 1, Order: 2}))
			results[i] <- result{resp.StatusCode, body.Cached}
		}(i)
	}
	// Wait until both workers hold an in-flight solve and the rest are
	// queued behind them.
	deadline := time.Now().Add(5 * time.Second)
	for (started.Load() < workers || s.pool.Depth() < queued) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if started.Load() != workers || s.pool.Depth() != queued {
		t.Fatalf("setup: %d in flight (want %d), %d queued (want %d)",
			started.Load(), workers, s.pool.Depth(), queued)
	}

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// A request arriving after shutdown began is rejected immediately.
	for !s.draining.Load() {
		time.Sleep(time.Millisecond)
	}
	resp, _, _ := postSolve(t, ts.URL, solveBody(t, &SolveRequest{Model: testSpec(99), T: 1, Order: 2}))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown request: status %d, want 503", resp.StatusCode)
	}

	close(gate) // let the in-flight solves finish
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	var ok200, ok503 int
	for i := range results {
		r := <-results[i]
		switch r.status {
		case http.StatusOK:
			ok200++
		case http.StatusServiceUnavailable:
			ok503++
		default:
			t.Errorf("request %d: unexpected status %d", i, r.status)
		}
	}
	if ok200 != workers {
		t.Errorf("%d in-flight requests completed, want %d", ok200, workers)
	}
	if ok503 != queued {
		t.Errorf("%d queued requests got 503, want %d", ok503, queued)
	}
	if got := started.Load(); got != workers {
		t.Errorf("queued work ran after shutdown: %d solves started, want %d", got, workers)
	}
}

func TestQueueFullRejects(t *testing.T) {
	s := New(Options{Workers: 1, QueueSize: 1})
	gate := make(chan struct{})
	var started atomic.Int64
	s.solve = func(ctx context.Context, req *SolveRequest) (*SolveResponse, error) {
		started.Add(1)
		<-gate
		return runSolve(ctx, req)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	codes := make([]chan int, 2)
	for i := range codes {
		codes[i] = make(chan int, 1)
	}
	go func() {
		resp, _, _ := postSolve(t, ts.URL, solveBody(t, &SolveRequest{Model: testSpec(0), T: 1, Order: 2}))
		codes[0] <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for started.Load() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	go func() {
		resp, _, _ := postSolve(t, ts.URL, solveBody(t, &SolveRequest{Model: testSpec(1), T: 1, Order: 2}))
		codes[1] <- resp.StatusCode
	}()
	for s.pool.Depth() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	resp, _, raw := postSolve(t, ts.URL, solveBody(t, &SolveRequest{Model: testSpec(2), T: 1, Order: 2}))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("overflow request: status %d (%s), want 503", resp.StatusCode, raw)
	}
	if !strings.Contains(raw, "queue full") {
		t.Errorf("overflow diagnostic missing: %s", raw)
	}
	if s.metrics.Rejected.Load() == 0 {
		t.Error("rejection not counted")
	}

	close(gate)
	for i := range codes {
		if code := <-codes[i]; code != http.StatusOK {
			t.Errorf("request %d: status %d", i, code)
		}
	}
}

func TestSolveTimeout(t *testing.T) {
	s := New(Options{Workers: 1})
	s.solve = func(ctx context.Context, req *SolveRequest) (*SolveResponse, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	resp, _, raw := postSolve(t, ts.URL, solveBody(t, &SolveRequest{Model: testSpec(0), T: 1, Order: 2, TimeoutMS: 20}))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status %d (%s), want 504", resp.StatusCode, raw)
	}
	if s.metrics.Failures.Load() != 1 {
		t.Errorf("failures = %d, want 1", s.metrics.Failures.Load())
	}
}

// TestSolveTimeoutRealSolver exercises the core cancellation hook through
// the whole stack: a genuinely heavy solve against a 1 ms deadline.
func TestSolveTimeoutRealSolver(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	heavy := &spec.Model{States: 2, Transitions: []spec.Transition{
		{From: 0, To: 1, Rate: 4000},
		{From: 1, To: 0, Rate: 5000},
	}, Rates: []float64{1, 0}, Variances: []float64{0.3, 0.3}, Initial: []float64{1, 0}}
	// qt = 9000*400 = 3.6e6 randomization steps: far more than 1 ms of work.
	resp, _, raw := postSolve(t, ts.URL, solveBody(t, &SolveRequest{Model: heavy, T: 400, Order: 6, TimeoutMS: 1}))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status %d (%s), want 504", resp.StatusCode, raw)
	}
}

func TestSolveMethodsAgree(t *testing.T) {
	s := New(Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	sp := testSpec(3)
	get := func(req *SolveRequest) *SolveResponse {
		t.Helper()
		resp, out, raw := postSolve(t, ts.URL, solveBody(t, req))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, raw)
		}
		return out
	}
	rand := get(&SolveRequest{Model: sp, T: 1, Order: 2})
	ode := get(&SolveRequest{Model: sp, T: 1, Order: 2, Method: MethodODE})
	simr := get(&SolveRequest{Model: sp, T: 1, Order: 2, Method: MethodSimulation, Sim: &SimParams{Seed: 7, Reps: 20000}})

	for j := 0; j <= 2; j++ {
		if math.Abs(rand.Moments[j]-ode.Moments[j]) > 1e-6*(1+math.Abs(rand.Moments[j])) {
			t.Errorf("ode moment %d: %g vs randomization %g", j, ode.Moments[j], rand.Moments[j])
		}
	}
	if len(simr.StdErr) != 3 {
		t.Fatalf("simulation std errors missing: %+v", simr)
	}
	for j := 1; j <= 2; j++ {
		tol := 6*simr.StdErr[j] + 1e-9
		if math.Abs(simr.Moments[j]-rand.Moments[j]) > tol {
			t.Errorf("simulation moment %d: %g vs %g (tol %g)", j, simr.Moments[j], rand.Moments[j], tol)
		}
	}
}

func TestBadRequests(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	cases := map[string]string{
		"malformed json":  `{nope`,
		"missing model":   `{"t": 1, "order": 2}`,
		"negative t":      mustJSON(t, &SolveRequest{Model: testSpec(0), T: -1, Order: 2}),
		"huge order":      mustJSON(t, &SolveRequest{Model: testSpec(0), T: 1, Order: 99}),
		"bad method":      mustJSON(t, &SolveRequest{Model: testSpec(0), T: 1, Order: 2, Method: "magic"}),
		"bad epsilon":     mustJSON(t, &SolveRequest{Model: testSpec(0), T: 1, Order: 2, Epsilon: 2}),
		"bad ode method":  mustJSON(t, &SolveRequest{Model: testSpec(0), T: 1, Order: 2, Method: "ode", ODE: &ODEParams{Method: "euler"}}),
		"bad sim reps":    mustJSON(t, &SolveRequest{Model: testSpec(0), T: 1, Order: 2, Method: "simulation", Sim: &SimParams{Reps: 1}}),
		"invalid spec":    `{"model": {"states": 2, "transitions": [{"from":0,"to":0,"rate":1}], "rates":[1,1], "variances":[0,0], "initial":[1,0]}, "t": 1, "order": 2}`,
		"unbuildable":     `{"model": {"states": 2, "rates":[1], "variances":[0,0], "initial":[1,0]}, "t": 1, "order": 2}`,
		"bad bound point": `{"model": {"states":1, "rates":[1], "variances":[0], "initial":[1]}, "t": 1, "order": 2, "bounds_at": [1e999]}`,
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			resp, _, raw := postSolve(t, ts.URL, []byte(body))
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status %d (%s), want 400", resp.StatusCode, raw)
			}
			if !strings.Contains(raw, "error") {
				t.Errorf("diagnostic missing: %s", raw)
			}
		})
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestHealthzAndMetrics(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}

	// One real solve so the metrics have content.
	r2, _, raw := postSolve(t, ts.URL, solveBody(t, &SolveRequest{Model: testSpec(0), T: 1, Order: 2}))
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", r2.StatusCode, raw)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Requests != 1 || snap.Solves != 1 || snap.CacheMisses != 1 {
		t.Errorf("counters: %+v", snap)
	}
	if snap.Workers != 1 || snap.CacheEntries != 1 {
		t.Errorf("gauges: %+v", snap)
	}
	if snap.SolveLatency.Count != 1 {
		t.Errorf("latency histogram empty: %+v", snap.SolveLatency)
	}
	// The randomization solve must have been counted under its resolved
	// matrix storage format, whichever the detector picked.
	var formatTotal int64
	for _, format := range []string{"band", "qbd", "csr32", "csr64", "kron"} {
		formatTotal += snap.SweepFormats[format]
	}
	if formatTotal != 1 {
		t.Errorf("sweep_formats = %v, want exactly one counted sweep", snap.SweepFormats)
	}
	// ... and under its dispatched compute kernel ("avx2" on capable
	// hosts unless kill-switched, "scalar" otherwise), which the solve
	// response's stats block also reports.
	if total := snap.SweepKernels["avx2"] + snap.SweepKernels["scalar"]; total != 1 {
		t.Errorf("sweep_kernels = %v, want exactly one counted sweep", snap.SweepKernels)
	}
	if !strings.Contains(raw, `"sweep_kernel":"avx2"`) && !strings.Contains(raw, `"sweep_kernel":"scalar"`) {
		t.Errorf("solve stats missing sweep_kernel: %s", raw)
	}
	last := snap.SolveLatency.Buckets[len(snap.SolveLatency.Buckets)-1]
	if !last.Inf || last.Count != 1 {
		t.Errorf("cumulative +Inf bucket: %+v", last)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz: %d, want 503", hresp.StatusCode)
	}
}

func TestCacheKeyNormalization(t *testing.T) {
	// Same model with permuted transitions and spelled-out defaults must
	// collide on one cache entry.
	a := &SolveRequest{Model: testSpec(0), T: 1, Order: 2}
	perm := testSpec(0)
	perm.Transitions[0], perm.Transitions[1] = perm.Transitions[1], perm.Transitions[0]
	b := &SolveRequest{Model: perm, T: 1, Order: 2, Epsilon: 1e-9, Method: MethodRandomization}
	if err := a.normalize(12); err != nil {
		t.Fatal(err)
	}
	if err := b.normalize(12); err != nil {
		t.Fatal(err)
	}
	ka, err := a.cacheKey()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.cacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Error("equivalent requests hash to different keys")
	}
	c := &SolveRequest{Model: testSpec(0), T: 1, Order: 3}
	if err := c.normalize(12); err != nil {
		t.Fatal(err)
	}
	kc, err := c.cacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if kc == ka {
		t.Error("different order hashes to the same key")
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRU(2)
	r := &SolveResponse{}
	c.Put("a", "", r)
	c.Put("b", "", r)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("c", "", r) // evicts b (least recently used after the Get of a)
	if _, ok := c.Get("b"); ok {
		t.Error("b not evicted")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s missing", k)
		}
	}
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
	disabled := newLRU(-1)
	disabled.Put("x", "", r)
	if _, ok := disabled.Get("x"); ok {
		t.Error("disabled cache stored an entry")
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())
	resp, err := http.Get(ts.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/solve: %d, want 405", resp.StatusCode)
	}
}

func TestLargeModelSolve(t *testing.T) {
	if testing.Short() {
		t.Skip("large model")
	}
	// A birth-death chain large enough to exercise the parallel matvec
	// path through the server.
	n := 2000
	sp := &spec.Model{States: n, Rates: make([]float64, n), Variances: make([]float64, n), Initial: make([]float64, n)}
	for i := 0; i < n; i++ {
		sp.Rates[i] = float64(i) / float64(n)
		sp.Variances[i] = 0.1
		if i+1 < n {
			sp.Transitions = append(sp.Transitions,
				spec.Transition{From: i, To: i + 1, Rate: 1.0},
				spec.Transition{From: i + 1, To: i, Rate: 2.0})
		}
	}
	sp.Initial[0] = 1
	s := New(Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())
	resp, out, raw := postSolve(t, ts.URL, solveBody(t, &SolveRequest{Model: sp, T: 5, Order: 2}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if out.Moments[1] <= 0 {
		t.Errorf("mean reward %g, want > 0", out.Moments[1])
	}
	if fmt.Sprintf("%d", out.Stats.G) == "0" {
		t.Error("stats missing")
	}
}
