package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"somrm/internal/core"
	"somrm/internal/spec"
)

func postBatch(t *testing.T, url string, req *BatchRequest) (*http.Response, *BatchResponse, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/solve/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var out BatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("bad response body: %v\n%s", err, buf.String())
		}
	}
	return resp, &out, buf.String()
}

func TestBatchEndToEnd(t *testing.T) {
	s := New(Options{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	sp := testSpec(0)
	model, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	grid := []float64{0.5, 1, 1.5, 2}
	want, err := model.AccumulatedRewardAt(grid, 3, nil)
	if err != nil {
		t.Fatal(err)
	}

	req := &BatchRequest{Model: sp, Items: []BatchItem{
		{Times: grid, Order: 3},
		{Times: []float64{1}, Order: 2, Method: MethodODE},
		{Times: []float64{1}, Order: 2, Method: MethodSimulation, Sim: &SimParams{Seed: 7, Reps: 5000}},
		{Times: []float64{2}, Order: 4, BoundsAt: []float64{0, 2}},
	}}
	resp, out, raw := postBatch(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if len(out.Items) != 4 {
		t.Fatalf("want 4 item results, got %d", len(out.Items))
	}
	for i, item := range out.Items {
		if item.Status != BatchStatusOK {
			t.Fatalf("item %d: status %q (%s)", i, item.Status, item.Error)
		}
	}
	if out.PreparedCached {
		t.Error("first batch reported a prepared-cache hit")
	}

	// Item 0: the shared sweep must match the core solver bitwise.
	if got := out.Items[0].Points; len(got) != len(grid) {
		t.Fatalf("item 0: %d points, want %d", len(got), len(grid))
	}
	for k, pt := range out.Items[0].Points {
		if pt.T != grid[k] {
			t.Errorf("item 0 point %d: t=%g want %g", k, pt.T, grid[k])
		}
		if !reflect.DeepEqual(pt.Moments, want[k].Moments) {
			t.Errorf("item 0 point %d: moments %v want %v", k, pt.Moments, want[k].Moments)
		}
		if pt.Stats == nil || pt.Stats.G == 0 {
			t.Errorf("item 0 point %d: missing stats", k)
		}
	}
	// All points of one randomization grid share a single sweep: the
	// MatVecs total is identical across points (it is the sweep's total).
	if a, b := out.Items[0].Points[0].Stats.MatVecs, out.Items[0].Points[3].Stats.MatVecs; a != b {
		t.Errorf("points report different sweep totals: %d vs %d", a, b)
	}
	// Item 3: bounds attached per point.
	if pts := out.Items[3].Points; len(pts) != 1 || len(pts[0].Bounds) != 2 {
		t.Errorf("item 3: bounds missing: %+v", pts)
	}

	// A second identical batch hits the prepared-model cache.
	resp2, out2, raw2 := postBatch(t, ts.URL, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp2.StatusCode, raw2)
	}
	if !out2.PreparedCached {
		t.Error("second batch missed the prepared-model cache")
	}
	if s.metrics.PreparedHits.Load() == 0 {
		t.Error("prepared-cache hit not counted")
	}

	// Batch metrics recorded.
	snap := s.metrics.Snapshot()
	if snap.BatchRequests != 2 {
		t.Errorf("batch_requests = %d, want 2", snap.BatchRequests)
	}
	if snap.BatchItems.Count != 2 || snap.BatchItems.Sum != 8 {
		t.Errorf("batch_items histogram: %+v", snap.BatchItems)
	}
	// Three randomization items per batch: grids of 4, 1 points (items 0, 3).
	if snap.SweepPoints.Count != 4 || snap.SweepPoints.Sum != 10 {
		t.Errorf("sweep_points histogram: %+v", snap.SweepPoints)
	}
	if snap.Solves != 8 {
		t.Errorf("solves = %d, want 8 (one per item)", snap.Solves)
	}
}

// TestBatchSharesOneSweep proves the tentpole's efficiency claim at the
// solver level: a 16-point grid through the batch endpoint performs one
// coefficient-vector sweep, not sixteen.
func TestBatchSharesOneSweep(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	grid := make([]float64, 16)
	for i := range grid {
		grid[i] = 0.5 * float64(i+1)
	}
	resp, out, raw := postBatch(t, ts.URL, &BatchRequest{Model: testSpec(0), Items: []BatchItem{{Times: grid, Order: 3}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	shared := out.Items[0].Points[0].Stats.MatVecs

	var looped int64
	sp := testSpec(0)
	model, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range grid {
		res, err := model.AccumulatedReward(tt, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		looped += res.Stats.MatVecs
	}
	if shared*2 >= looped {
		t.Errorf("shared sweep did %d matvecs vs %d looped: no sharing", shared, looped)
	}
	t.Logf("matvecs: shared sweep %d, per-point loop %d", shared, looped)
}

// TestBatchPartialResults: one item times out, the others still succeed —
// per-item status, not all-or-nothing.
func TestBatchPartialResults(t *testing.T) {
	s := New(Options{Workers: 2})
	s.solveItem = func(ctx context.Context, prep *core.Prepared, item *BatchItem) ([]BatchPoint, error) {
		if item.Order == 9 { // marker for the slow item
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return s.runBatchItem(ctx, prep, item)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	resp, out, raw := postBatch(t, ts.URL, &BatchRequest{Model: testSpec(0), Items: []BatchItem{
		{Times: []float64{1}, Order: 2},
		{Times: []float64{1}, Order: 9, TimeoutMS: 20},
		{Times: []float64{2}, Order: 2},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if got := out.Items[0].Status; got != BatchStatusOK {
		t.Errorf("item 0: %q (%s)", got, out.Items[0].Error)
	}
	if got := out.Items[1].Status; got != BatchStatusError {
		t.Errorf("timed-out item 1: status %q, want error", got)
	}
	if !strings.Contains(out.Items[1].Error, "deadline") {
		t.Errorf("item 1 diagnostic: %q", out.Items[1].Error)
	}
	if got := out.Items[2].Status; got != BatchStatusOK {
		t.Errorf("item 2: %q (%s)", got, out.Items[2].Error)
	}
	if s.metrics.Failures.Load() != 1 {
		t.Errorf("failures = %d, want 1", s.metrics.Failures.Load())
	}
}

// TestBatchOversizedRejectedUpFront is the regression test for the
// half-enqueued batch: a batch whose item count exceeds the queue capacity
// must be rejected with 503 before any item is enqueued, so no partial
// work runs and the queue is untouched.
func TestBatchOversizedRejectedUpFront(t *testing.T) {
	s := New(Options{Workers: 1, QueueSize: 2})
	var executed atomic.Int64
	s.solveItem = func(ctx context.Context, prep *core.Prepared, item *BatchItem) ([]BatchPoint, error) {
		executed.Add(1)
		return s.runBatchItem(ctx, prep, item)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	items := make([]BatchItem, 3) // > QueueSize
	for i := range items {
		items[i] = BatchItem{Times: []float64{1}, Order: 2}
	}
	resp, _, raw := postBatch(t, ts.URL, &BatchRequest{Model: testSpec(0), Items: items})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", resp.StatusCode, raw)
	}
	if !strings.Contains(raw, "queue") {
		t.Errorf("diagnostic missing: %s", raw)
	}
	if got := executed.Load(); got != 0 {
		t.Errorf("%d items executed before the rejection, want 0", got)
	}
	if got := s.metrics.Solves.Load(); got != 0 {
		t.Errorf("solves = %d, want 0 (nothing enqueued)", got)
	}
	if got := s.pool.Depth(); got != 0 {
		t.Errorf("queue depth = %d after rejection, want 0", got)
	}
	if s.metrics.Rejected.Load() == 0 {
		t.Error("rejection not counted")
	}

	// A batch that fits must still go through on the same server.
	resp2, out2, raw2 := postBatch(t, ts.URL, &BatchRequest{Model: testSpec(0), Items: items[:2]})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("in-capacity batch: status %d: %s", resp2.StatusCode, raw2)
	}
	for i, item := range out2.Items {
		if item.Status != BatchStatusOK {
			t.Errorf("item %d: %q (%s)", i, item.Status, item.Error)
		}
	}
}

// TestBatchItemQueueFull: when the queue fills up mid-batch because of
// competing traffic, affected items fail individually while the rest of the
// batch completes.
func TestBatchItemQueueFull(t *testing.T) {
	s := New(Options{Workers: 1, QueueSize: 4})
	gate := make(chan struct{})
	var started atomic.Int64
	s.solve = func(ctx context.Context, req *SolveRequest) (*SolveResponse, error) {
		started.Add(1)
		<-gate
		return runSolve(ctx, req)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	// Occupy the worker and fill the whole queue with single solves.
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			postSolve(t, ts.URL, solveBody(t, &SolveRequest{Model: testSpec(i), T: 1, Order: 2}))
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for (started.Load() < 1 || s.pool.Depth() < 4) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if started.Load() < 1 || s.pool.Depth() < 4 {
		t.Fatalf("setup: %d started, depth %d", started.Load(), s.pool.Depth())
	}

	// The batch passes the up-front size check (2 <= 4) but every item
	// finds the queue full.
	resp, out, raw := postBatch(t, ts.URL, &BatchRequest{Model: testSpec(9), Items: []BatchItem{
		{Times: []float64{1}, Order: 2},
		{Times: []float64{2}, Order: 2},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	for i, item := range out.Items {
		if item.Status != BatchStatusError || !strings.Contains(item.Error, "queue full") {
			t.Errorf("item %d: status %q error %q, want queue-full error", i, item.Status, item.Error)
		}
	}

	close(gate)
	wg.Wait()
}

func TestBatchBadRequests(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	manyTimes := make([]float64, maxBatchTimes+1)
	cases := map[string]*BatchRequest{
		"missing model": {Items: []BatchItem{{Times: []float64{1}, Order: 2}}},
		"empty batch":   {Model: testSpec(0)},
		"empty grid":    {Model: testSpec(0), Items: []BatchItem{{Order: 2}}},
		"negative t":    {Model: testSpec(0), Items: []BatchItem{{Times: []float64{-1}, Order: 2}}},
		"huge order":    {Model: testSpec(0), Items: []BatchItem{{Times: []float64{1}, Order: 99}}},
		"bad method":    {Model: testSpec(0), Items: []BatchItem{{Times: []float64{1}, Order: 2, Method: "magic"}}},
		"bad epsilon":   {Model: testSpec(0), Items: []BatchItem{{Times: []float64{1}, Order: 2, Epsilon: 2}}},
		"oversize grid": {Model: testSpec(0), Items: []BatchItem{{Times: manyTimes, Order: 2}}},
		"bad model": {Model: &spec.Model{States: 1, Rates: []float64{1}, Variances: []float64{-1}, Initial: []float64{1}},
			Items: []BatchItem{{Times: []float64{1}, Order: 2}}},
	}
	for name, req := range cases {
		t.Run(name, func(t *testing.T) {
			resp, _, raw := postBatch(t, ts.URL, req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status %d (%s), want 400", resp.StatusCode, raw)
			}
		})
	}
}

// TestBatchMatchesLoopedSingleSolves is the quick property: for random
// models and grids, the batch response is bitwise identical to looping
// POST /v1/solve over the grid's points — both go through the same shared
// solver engine, so not even the last ulp may differ.
func TestBatchMatchesLoopedSingleSolves(t *testing.T) {
	s := New(Options{Workers: 4, CacheSize: -1}) // no result cache: every single solve runs
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sp := testSpec(int(seed&7) + 1)
		order := 1 + rng.Intn(4)
		grid := make([]float64, 1+rng.Intn(6))
		for i := range grid {
			grid[i] = rng.Float64() * 4
		}

		resp, out, raw := postBatch(t, ts.URL, &BatchRequest{Model: sp, Items: []BatchItem{{Times: grid, Order: order}}})
		if resp.StatusCode != http.StatusOK {
			t.Logf("batch status %d: %s", resp.StatusCode, raw)
			return false
		}
		if out.Items[0].Status != BatchStatusOK {
			t.Logf("batch item: %s", out.Items[0].Error)
			return false
		}
		for k, tt := range grid {
			sresp, single, sraw := postSolve(t, ts.URL, solveBody(t, &SolveRequest{Model: sp, T: tt, Order: order}))
			if sresp.StatusCode != http.StatusOK {
				t.Logf("single status %d: %s", sresp.StatusCode, sraw)
				return false
			}
			if !reflect.DeepEqual(single.Moments, out.Items[0].Points[k].Moments) {
				t.Logf("seed %d t=%g: batch %v != single %v", seed, tt, out.Items[0].Points[k].Moments, single.Moments)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12}
	if !testing.Short() {
		cfg.MaxCount = 40
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}
