package server

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"somrm/internal/core"
	"somrm/internal/momentbounds"
	"somrm/internal/odesolver"
	"somrm/internal/sim"
	"somrm/internal/spec"
)

// maxBatchTimes bounds the time grid of one batch item.
const maxBatchTimes = 4096

// BatchItem is one solve of a batch: a whole time grid against the shared
// model. Randomization items solve the grid in one shared coefficient-vector
// sweep (core.Model.AccumulatedRewardAt); ode/simulation items solve point
// by point.
type BatchItem struct {
	// Times is the time grid (non-negative; duplicates allowed; solved as
	// given).
	Times []float64 `json:"times"`
	// Order is the highest moment order.
	Order int `json:"order"`
	// Epsilon is the randomization truncation accuracy (default 1e-9).
	Epsilon float64 `json:"epsilon,omitempty"`
	// Method selects the solver: randomization (default), ode, simulation.
	Method string `json:"method,omitempty"`
	// Sim and ODE carry method-specific parameters.
	Sim *SimParams `json:"sim,omitempty"`
	ODE *ODEParams `json:"ode,omitempty"`
	// BoundsAt lists reward levels at which to return moment-based CDF
	// bounds for every time point of the grid.
	BoundsAt []float64 `json:"bounds_at,omitempty"`
	// TimeoutMS caps this item's solve time; it overrides the batch-level
	// timeout and is clamped to the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// BatchRequest is the body of POST /v1/solve/batch: one model, many solves.
type BatchRequest struct {
	// Model is the JSON model spec shared by every item.
	Model *spec.Model `json:"model"`
	// Items are the solves to fan out across the worker pool.
	Items []BatchItem `json:"items"`
	// TimeoutMS is the default per-item timeout (clamped to the server
	// default; items may set their own).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	specHash string
}

// BatchPoint is the solution at one time point of an item's grid.
type BatchPoint struct {
	T float64 `json:"t"`
	// Moments[j] = E[B(t)^j] under the model's initial distribution.
	Moments []float64 `json:"moments"`
	// Stats is present for the randomization method.
	Stats *SolverStats `json:"stats,omitempty"`
	// StdErr is present for the simulation method.
	StdErr []float64 `json:"std_err,omitempty"`
	// Bounds echoes the item's BoundsAt with CDF bounds, when requested.
	Bounds []BoundPoint `json:"bounds,omitempty"`
}

// BatchItemResult reports one item's outcome. Items fail independently:
// a timeout or queue rejection of one grid leaves the others' results
// intact (partial-result responses).
type BatchItemResult struct {
	// Status is "ok" or "error".
	Status string `json:"status"`
	// Error carries the failure diagnostic when Status is "error".
	Error string `json:"error,omitempty"`
	// Points holds one entry per requested time, in request order.
	Points []BatchPoint `json:"points,omitempty"`
	// ElapsedMS is the item's wall time including queueing.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// BatchResponse is the body of a successful POST /v1/solve/batch.
type BatchResponse struct {
	// Items holds one result per request item, in request order.
	Items []BatchItemResult `json:"items"`
	// PreparedCached reports that the model came from the prepared-model
	// cache (parsing, validation, and matrix scaling were skipped).
	PreparedCached bool `json:"prepared_cached"`
	// ElapsedMS is the whole batch's server-side wall time.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// statuses of a BatchItemResult.
const (
	BatchStatusOK    = "ok"
	BatchStatusError = "error"
	// BatchStatusShedMemory marks an item refused by the memory admission
	// gate (the batch-item analogue of a single solve's typed 503): the
	// item's estimated working set did not fit the remaining budget. The
	// rest of the batch is unaffected — sheds are per item, never a
	// whole-batch failure.
	BatchStatusShedMemory = "shed_memory"
)

// normalize applies defaults and validates the batch envelope and every
// item. It must run before hashing or dispatch.
func (r *BatchRequest) normalize(maxOrder int) error {
	if r.Model == nil {
		return badRequestf("missing model")
	}
	if len(r.Items) == 0 {
		return badRequestf("empty batch")
	}
	if r.TimeoutMS < 0 {
		return badRequestf("timeout_ms %d < 0", r.TimeoutMS)
	}
	for i := range r.Items {
		if err := r.Items[i].normalize(maxOrder); err != nil {
			return badRequestf("item %d: %v", i, err)
		}
	}
	return nil
}

func (it *BatchItem) normalize(maxOrder int) error {
	if len(it.Times) == 0 {
		return badRequestf("empty time grid")
	}
	if len(it.Times) > maxBatchTimes {
		return badRequestf("%d time points exceed the limit of %d", len(it.Times), maxBatchTimes)
	}
	for _, t := range it.Times {
		if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
			return badRequestf("bad t=%g", t)
		}
	}
	// Reuse the single-solve validation for the shared parameters.
	probe := &SolveRequest{
		Model: &spec.Model{}, T: 0, Order: it.Order,
		Epsilon: it.Epsilon, Method: it.Method,
		BoundsAt: it.BoundsAt, Sim: it.Sim, ODE: it.ODE,
		TimeoutMS: it.TimeoutMS,
	}
	if err := probe.normalize(maxOrder); err != nil {
		return err
	}
	it.Epsilon = probe.Epsilon
	it.Method = probe.Method
	it.Sim = probe.Sim
	it.ODE = probe.ODE
	return nil
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.metrics.BatchRequests.Add(1)
	if s.draining.Load() {
		s.metrics.Rejected.Add(1)
		writeError(w, http.StatusServiceUnavailable, ErrShuttingDown.Error())
		return
	}

	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if err := req.normalize(s.opts.MaxOrder); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// A batch that cannot fit in the queue even when it is empty would
	// enqueue some items and reject the rest; reject the whole batch with
	// 503 before enqueueing anything instead.
	if len(req.Items) > s.opts.QueueSize {
		s.metrics.Rejected.Add(1)
		writeError(w, http.StatusServiceUnavailable, fmt.Sprintf(
			"%v: batch of %d items exceeds the queue capacity of %d",
			ErrQueueFull, len(req.Items), s.opts.QueueSize))
		return
	}
	h, err := req.Model.Hash()
	if err != nil {
		writeError(w, http.StatusBadRequest, "unhashable model: "+err.Error())
		return
	}
	req.specHash = hex.EncodeToString(h[:])
	s.classifyRoute(req.specHash)

	started := time.Now()
	// Resolve the prepared model once for the whole batch (single-flight
	// against concurrent batches and single solves of the same model).
	prep, hit, err := s.preparedFor(req.specHash, func() (*core.Prepared, error) { return buildPrepared(req.Model) }, req.Model)
	if err != nil {
		s.writeSolveError(w, err)
		return
	}
	s.metrics.BatchItems.Observe(len(req.Items))

	results := make([]BatchItemResult, len(req.Items))
	var wg sync.WaitGroup
	for i := range req.Items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// A panic in the item runner itself (outside the pool, which
			// has its own recovery) must not kill the process: convert it
			// to a sanitized per-item error like any other failure.
			defer func() {
				if v := recover(); v != nil {
					s.metrics.Panics.Add(1)
					s.metrics.Failures.Add(1)
					results[i] = BatchItemResult{
						Status: BatchStatusError,
						Error:  (&PanicError{Value: v}).Error(),
					}
				}
			}()
			results[i] = s.solveBatchItem(r.Context(), prep, &req, i)
		}(i)
	}
	wg.Wait()

	writeJSON(w, http.StatusOK, &BatchResponse{
		Items:          results,
		PreparedCached: hit,
		ElapsedMS:      msSince(started),
	})
}

// solveBatchItem runs one item through the worker pool with its own
// timeout and maps the outcome to a per-item status.
func (s *Server) solveBatchItem(ctx context.Context, prep *core.Prepared, req *BatchRequest, i int) BatchItemResult {
	item := &req.Items[i]
	started := time.Now()

	timeout := s.opts.DefaultTimeout
	ms := req.TimeoutMS
	if item.TimeoutMS > 0 {
		ms = item.TimeoutMS
	}
	if ms > 0 {
		if d := time.Duration(ms) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	itemCtx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	// Memory admission mirrors the single-solve gate, per item: an item
	// whose estimated working set does not fit is shed with a typed
	// per-item status while the rest of the batch proceeds.
	if s.memGate != nil {
		need := estimateItemWorkingSet(req.Model, item, s.opts.SweepWorkers, s.opts.MatrixFormat)
		release, ok := s.memGate.Reserve(need)
		if !ok {
			s.metrics.MemShed.Add(1)
			s.metrics.Rejected.Add(1)
			shed := &MemShedError{Need: need, Budget: s.opts.MemBudget, InFlight: s.memGate.InFlight()}
			return BatchItemResult{
				Status: BatchStatusShedMemory, Error: shed.Error(), ElapsedMS: msSince(started),
			}
		}
		defer release()
	}

	var points []BatchPoint
	var solveErr error
	// Batch items enqueue with the configured reserve: when the queue is
	// nearly saturated they are shed (503 per item) while single solves
	// may still use the remaining headroom.
	poolErr := s.pool.DoReserved(itemCtx, func(ctx context.Context) {
		s.metrics.Solves.Add(1)
		points, solveErr = s.solveItem(ctx, prep, item)
	}, s.opts.BatchQueueReserve)
	err := poolErr
	if err == nil {
		err = solveErr
	}
	if err != nil {
		switch {
		case errors.Is(err, ErrShed):
			s.metrics.BatchShed.Add(1)
			s.metrics.Rejected.Add(1)
		case errors.Is(err, ErrQueueFull):
			s.metrics.ShedQueueFull.Add(1)
			s.metrics.Rejected.Add(1)
		case errors.Is(err, ErrShuttingDown):
			s.metrics.Rejected.Add(1)
		case errors.As(err, new(*QueueDeadlineError)):
			s.metrics.ShedDeadline.Add(1)
			s.metrics.Failures.Add(1)
		default:
			s.metrics.Failures.Add(1)
		}
		return BatchItemResult{
			Status: BatchStatusError, Error: err.Error(), ElapsedMS: msSince(started),
		}
	}
	s.metrics.ObserveLatency(time.Since(started))
	return BatchItemResult{
		Status: BatchStatusOK, Points: points, ElapsedMS: msSince(started),
	}
}

// runBatchItem executes one normalized batch item against the prepared
// model. Randomization solves the whole grid in one shared sweep; ode and
// simulation iterate the grid point by point, checking the deadline between
// points.
func (s *Server) runBatchItem(ctx context.Context, prep *core.Prepared, item *BatchItem) ([]BatchPoint, error) {
	model := prep.Model()
	points := make([]BatchPoint, 0, len(item.Times))
	switch item.Method {
	case MethodRandomization:
		s.metrics.SweepPoints.Observe(len(item.Times))
		results, err := prep.AccumulatedRewardAtContext(ctx, item.Times, item.Order, &core.Options{
			Epsilon: item.Epsilon, SweepWorkers: s.opts.SweepWorkers, MatrixFormat: s.opts.MatrixFormat,
			TemporalBlock: s.opts.TemporalBlock, SweepTile: s.opts.SweepTile, NoSIMD: s.opts.NoSIMD,
		})
		if err != nil {
			return nil, err
		}
		for _, res := range results {
			points = append(points, BatchPoint{T: res.T, Moments: res.Moments, Stats: newSolverStats(res.Stats)})
		}
		// SweepNS is a whole-sweep figure copied into every result; observe
		// it once per item, not once per grid point.
		if len(results) > 0 && results[0].Stats.SweepNS > 0 {
			s.metrics.ObserveSweep(time.Duration(results[0].Stats.SweepNS))
			s.metrics.ObserveSweepFormat(results[0].Stats.MatrixFormat)
			s.metrics.ObserveSweepBlocking(results[0].Stats.TemporalBlock)
			s.metrics.ObserveSweepKernel(results[0].Stats.SweepKernel)
		}
	case MethodODE:
		opts := &odesolver.MomentOptions{Steps: item.ODE.Steps}
		switch item.ODE.Method {
		case "heun":
			opts.Method = odesolver.MethodHeun
		case "rk4":
			opts.Method = odesolver.MethodRK4
		case "rk45":
			opts.Method = odesolver.MethodRK45
		}
		pi := model.Initial()
		for _, t := range item.Times {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			vm, err := odesolver.MomentsByODE(model, t, item.Order, opts)
			if err != nil {
				return nil, err
			}
			moments := make([]float64, item.Order+1)
			for j := 0; j <= item.Order; j++ {
				var sum float64
				for i, p := range pi {
					sum += p * vm[j][i]
				}
				moments[j] = sum
			}
			points = append(points, BatchPoint{T: t, Moments: moments})
		}
	case MethodSimulation:
		for _, t := range item.Times {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			simulator, err := sim.New(model, item.Sim.Seed)
			if err != nil {
				return nil, err
			}
			est, err := simulator.EstimateMoments(t, item.Order, item.Sim.Reps)
			if err != nil {
				return nil, err
			}
			points = append(points, BatchPoint{T: t, Moments: est.Moments, StdErr: est.StdErr})
		}
	}
	if len(item.BoundsAt) > 0 {
		for pi := range points {
			est, err := momentbounds.New(points[pi].Moments)
			if err != nil {
				return nil, badRequestf("distribution bounds at t=%g: %v", points[pi].T, err)
			}
			for _, x := range item.BoundsAt {
				b, err := est.CDFBounds(x)
				if err != nil {
					return nil, badRequestf("distribution bounds at t=%g, x=%g: %v", points[pi].T, x, err)
				}
				points[pi].Bounds = append(points[pi].Bounds, BoundPoint{X: x, Lower: b.Lower, Upper: b.Upper})
			}
		}
	}
	return points, nil
}
