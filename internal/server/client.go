package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Client is a minimal HTTP client for the solver service. The zero value
// is not usable; construct with NewClient.
type Client struct {
	// BaseURL is the service root, e.g. "http://localhost:8080" (no
	// trailing slash required).
	BaseURL string
	// HTTPClient is the transport; defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// NewClient returns a Client for the service at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTPClient: http.DefaultClient}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// APIError is a non-2xx response from the service, decoded from its
// {"error": "..."} body when present.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: HTTP %d: %s", e.StatusCode, e.Message)
}

// do POSTs (or GETs, with nil in) JSON and decodes the response into out.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return fmt.Errorf("client: build request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var apiErr struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		return &APIError{StatusCode: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode response: %w", err)
	}
	return nil
}

// Solve runs one solve via POST /v1/solve.
func (c *Client) Solve(ctx context.Context, req *SolveRequest) (*SolveResponse, error) {
	var resp SolveResponse
	if err := c.do(ctx, http.MethodPost, "/v1/solve", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SolveBatch runs one model against many time grids via
// POST /v1/solve/batch. The returned response may contain per-item errors;
// inspect each BatchItemResult's Status.
func (c *Client) SolveBatch(ctx context.Context, req *BatchRequest) (*BatchResponse, error) {
	var resp BatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/solve/batch", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Metrics fetches the live counters via GET /metrics.
func (c *Client) Metrics(ctx context.Context) (*MetricsSnapshot, error) {
	var snap MetricsSnapshot
	if err := c.do(ctx, http.MethodGet, "/metrics", nil, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// Health probes GET /healthz; it returns nil when the service is live and
// an *APIError (503) while it is draining.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}
