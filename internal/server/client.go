package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"somrm/internal/resilience"
)

// Client is an HTTP client for the solver service with built-in
// resilience: transient failures (503s, connection errors, truncated
// responses) are retried with jittered exponential backoff under a retry
// budget, and a sliding-window circuit breaker sheds calls to a service
// that keeps failing. Retries are safe because every retried request is
// idempotent by construction — solves are content-addressed and
// side-effect free. 4xx responses are never retried.
//
// The zero value performs single attempts with http.DefaultClient;
// construct with NewClient for the resilience defaults.
type Client struct {
	// BaseURL is the service root, e.g. "http://localhost:8080" (no
	// trailing slash required).
	BaseURL string
	// HTTPClient is the transport; defaults to http.DefaultClient.
	HTTPClient *http.Client

	// retryer wraps retryable calls; nil means single-attempt.
	retryer *resilience.Retryer
	// peerSecret, when non-empty, is sent on every request in the
	// X-Somrm-Peer-Secret header to authenticate internal peer calls.
	peerSecret string
}

// ClientOption configures a Client built by NewClient.
type ClientOption func(*Client)

// WithHTTPClient sets the HTTP transport.
func WithHTTPClient(h *http.Client) ClientOption {
	return func(c *Client) { c.HTTPClient = h }
}

// WithRetryPolicy overrides the backoff schedule (attempts, base and max
// delay). Zero fields keep the package defaults.
func WithRetryPolicy(p resilience.RetryPolicy) ClientOption {
	return func(c *Client) {
		if c.retryer == nil {
			c.retryer = &resilience.Retryer{}
		}
		c.retryer.Policy = p
	}
}

// WithRetryBudget overrides the token-bucket retry budget: max tokens and
// the fraction of a token returned per success. Zero values keep the
// defaults.
func WithRetryBudget(max, depositRatio float64) ClientOption {
	return func(c *Client) {
		if c.retryer == nil {
			c.retryer = &resilience.Retryer{}
		}
		c.retryer.Budget = resilience.NewBudget(max, depositRatio)
	}
}

// WithBreaker overrides the circuit-breaker configuration. Zero fields
// keep the defaults.
func WithBreaker(cfg resilience.BreakerConfig) ClientOption {
	return func(c *Client) {
		if c.retryer == nil {
			c.retryer = &resilience.Retryer{}
		}
		c.retryer.Breaker = resilience.NewBreaker(cfg)
	}
}

// WithSharedBreaker installs a caller-owned breaker instance instead of a
// private one. A cluster client passes each peer's breaker from a shared
// resilience.BreakerRegistry so that one replica going dark trips only its
// own circuit. A nil breaker disables circuit breaking, like
// WithoutBreaker.
func WithSharedBreaker(b *resilience.Breaker) ClientOption {
	return func(c *Client) {
		if c.retryer == nil {
			c.retryer = &resilience.Retryer{}
		}
		c.retryer.Breaker = b
	}
}

// WithoutBreaker disables the circuit breaker, keeping retries.
func WithoutBreaker() ClientOption {
	return func(c *Client) {
		if c.retryer != nil {
			c.retryer.Breaker = nil
		}
	}
}

// WithoutRetry disables retries, the budget, and the breaker: every call
// is a single attempt (the pre-resilience behavior).
func WithoutRetry() ClientOption {
	return func(c *Client) { c.retryer = nil }
}

// WithPeerSecret attaches the cluster's shared peer secret to every
// request, authenticating calls to the internal /v1/peer/* endpoints of a
// replica configured with the same ClusterHooks.Secret. The public solve
// endpoints ignore the header.
func WithPeerSecret(secret string) ClientOption {
	return func(c *Client) { c.peerSecret = secret }
}

// NewClient returns a Client for the service at baseURL with the default
// resilience stack: 4 attempts of full-jitter backoff (50ms base, 2s
// cap), a 10-token retry budget refilled at 0.1 per success, and a
// sliding-window breaker (20 outcomes, 50% failure ratio, 1s cooldown).
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{
		BaseURL:    baseURL,
		HTTPClient: http.DefaultClient,
		retryer: &resilience.Retryer{
			Budget:  resilience.NewBudget(0, 0),
			Breaker: resilience.NewBreaker(resilience.BreakerConfig{}),
		},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// BreakerStats returns the client breaker's transition counters (zero
// when the breaker is disabled).
func (c *Client) BreakerStats() resilience.BreakerStats {
	if c.retryer == nil {
		return resilience.BreakerStats{}
	}
	return c.retryer.Breaker.Stats()
}

// BreakerState returns "closed", "open", or "half-open" ("closed" when
// the breaker is disabled).
func (c *Client) BreakerState() string {
	if c.retryer == nil {
		return "closed"
	}
	return c.retryer.Breaker.State()
}

// APIError is a non-2xx response from the service, decoded from its
// {"error": "..."} body when present.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: HTTP %d: %s", e.StatusCode, e.Message)
}

// maxDrainBytes bounds how much of an abandoned response body is read
// before closing, so connection reuse cannot be weaponized into an
// unbounded read.
const maxDrainBytes = 256 << 10

// drainClose reads the remainder of body (up to maxDrainBytes) and closes
// it. Closing without draining forces the transport to discard the
// connection; draining first lets it be reused. Deferring this once right
// after a successful Do covers every return path.
func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, maxDrainBytes))
	_ = body.Close()
}

// do performs one logical API call: POST (or GET, with nil in) JSON and
// decode the response into out. When retryable is true and the client has
// a retryer, transient failures are retried with backoff under the budget
// and breaker.
func (c *Client) do(ctx context.Context, method, path string, in, out any, retryable bool) error {
	var payload []byte
	if in != nil {
		var err error
		payload, err = json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
	}
	if retryable && c.retryer != nil {
		return c.retryer.Do(ctx, func(ctx context.Context) error {
			return c.doOnce(ctx, method, path, payload, out)
		})
	}
	return c.doOnce(ctx, method, path, payload, out)
}

// doOnce performs a single HTTP attempt and classifies its failure:
// connection errors, 503s, and truncated/garbled success bodies are
// marked Transient for the retryer; context expiry and every other status
// (including all 4xx) are permanent.
func (c *Client) doOnce(ctx context.Context, method, path string, payload []byte, out any) error {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return fmt.Errorf("client: build request: %w", err)
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.peerSecret != "" {
		req.Header.Set(peerSecretHeader, c.peerSecret)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		// Dial failures, resets, aborted responses: the request may never
		// have reached a solver, and solves are idempotent — retryable.
		return resilience.Transient(err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var apiErr struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if err := json.NewDecoder(io.LimitReader(resp.Body, maxDrainBytes)).Decode(&apiErr); err == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		e := &APIError{StatusCode: resp.StatusCode, Message: msg}
		if resp.StatusCode == http.StatusServiceUnavailable {
			// Queue full, draining, or injected fault: retry with backoff.
			return resilience.Transient(e)
		}
		return e
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		// A 2xx whose body does not decode was truncated or corrupted in
		// flight; the solve itself succeeded server-side, so repeating it
		// is safe and will likely hit the result cache.
		return resilience.Transient(fmt.Errorf("client: decode response: %w", err))
	}
	return nil
}

// Solve runs one solve via POST /v1/solve.
func (c *Client) Solve(ctx context.Context, req *SolveRequest) (*SolveResponse, error) {
	var resp SolveResponse
	if err := c.do(ctx, http.MethodPost, "/v1/solve", req, &resp, true); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SolveBatch runs one model against many time grids via
// POST /v1/solve/batch. The returned response may contain per-item errors;
// inspect each BatchItemResult's Status.
func (c *Client) SolveBatch(ctx context.Context, req *BatchRequest) (*BatchResponse, error) {
	var resp BatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/solve/batch", req, &resp, true); err != nil {
		return nil, err
	}
	return &resp, nil
}

// PeerResult fetches the owner's cached solve response for a result-cache
// key via the internal GET /v1/peer/result/{key} endpoint. It returns
// (nil, false, nil) when the owner has no cached entry (404) and an error
// only for transport-level or unexpected failures.
func (c *Client) PeerResult(ctx context.Context, key string) (*SolveResponse, bool, error) {
	var resp SolveResponse
	err := c.do(ctx, http.MethodGet, "/v1/peer/result/"+key, nil, &resp, true)
	if err != nil {
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusNotFound {
			return nil, false, nil
		}
		return nil, false, err
	}
	return &resp, true, nil
}

// PushHandoff streams drain-handoff entries to a ring successor via the
// internal POST /v1/peer/handoff endpoint and returns how many the peer
// accepted.
func (c *Client) PushHandoff(ctx context.Context, entries []HandoffEntry) (int, error) {
	var resp struct {
		Accepted int `json:"accepted"`
	}
	req := HandoffRequest{Entries: entries}
	if err := c.do(ctx, http.MethodPost, "/v1/peer/handoff", &req, &resp, true); err != nil {
		return 0, err
	}
	return resp.Accepted, nil
}

// Metrics fetches the live counters via GET /metrics.
func (c *Client) Metrics(ctx context.Context) (*MetricsSnapshot, error) {
	var snap MetricsSnapshot
	if err := c.do(ctx, http.MethodGet, "/metrics", nil, &snap, true); err != nil {
		return nil, err
	}
	return &snap, nil
}

// Health probes GET /healthz; it returns nil when the service is live and
// an *APIError (503) while it is draining. Health is never retried: its
// 503 is the answer, not a fault.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil, false)
}
