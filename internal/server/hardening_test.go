package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"somrm/internal/core"
)

// secretPanicValue stands in for internal state a panic message could
// leak; no HTTP response body may ever contain it.
const secretPanicValue = "secret-internal-detail-xyzzy"

func TestSolvePanicIsolated(t *testing.T) {
	s := New(Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	var panicking atomic.Bool
	panicking.Store(true)
	real := s.solve
	s.solve = func(ctx context.Context, req *SolveRequest) (*SolveResponse, error) {
		if panicking.Load() {
			panic(secretPanicValue)
		}
		return real(ctx, req)
	}

	resp, _, raw := postSolve(t, ts.URL, solveBody(t, &SolveRequest{Model: testSpec(0), T: 1, Order: 2}))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500; body %s", resp.StatusCode, raw)
	}
	if strings.Contains(raw, secretPanicValue) {
		t.Errorf("panic value leaked to the client: %s", raw)
	}
	if !strings.Contains(raw, "internal panic") {
		t.Errorf("expected sanitized panic diagnostic, got %s", raw)
	}
	if got := s.metrics.Panics.Load(); got != 1 {
		t.Errorf("panics_total = %d, want 1", got)
	}

	// The process and the worker survived: the same server keeps serving.
	panicking.Store(false)
	resp2, out, raw2 := postSolve(t, ts.URL, solveBody(t, &SolveRequest{Model: testSpec(1), T: 1, Order: 2}))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-panic solve: status %d: %s", resp2.StatusCode, raw2)
	}
	if len(out.Moments) == 0 {
		t.Error("post-panic solve returned no moments")
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz after panic: %d", hresp.StatusCode)
	}
}

func TestWorkerSurvivesRepeatedPanics(t *testing.T) {
	// A single worker takes every panic; if recovery ever failed the pool
	// would deadlock (no worker left to drain the queue) and later
	// requests would 503 or hang.
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	var panicking atomic.Bool
	panicking.Store(true)
	real := s.solve
	s.solve = func(ctx context.Context, req *SolveRequest) (*SolveResponse, error) {
		if panicking.Load() {
			panic("boom")
		}
		return real(ctx, req)
	}

	const n = 5
	for i := 0; i < n; i++ {
		// Distinct models so no request is served from cache or dedup.
		resp, _, raw := postSolve(t, ts.URL, solveBody(t, &SolveRequest{Model: testSpec(i), T: 1, Order: 2}))
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("request %d: status %d, want 500; body %s", i, resp.StatusCode, raw)
		}
	}
	if got := s.metrics.Panics.Load(); got != n {
		t.Errorf("panics_total = %d, want %d", got, n)
	}

	panicking.Store(false)
	resp, _, raw := postSolve(t, ts.URL, solveBody(t, &SolveRequest{Model: testSpec(n), T: 1, Order: 2}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve after %d panics on the only worker: status %d: %s", n, resp.StatusCode, raw)
	}
}

func TestBatchItemPanicIsolated(t *testing.T) {
	s := New(Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	s.solveItem = func(ctx context.Context, prep *core.Prepared, item *BatchItem) ([]BatchPoint, error) {
		if item.Order == 3 {
			panic(secretPanicValue)
		}
		return []BatchPoint{{T: item.Times[0], Moments: []float64{1, 2}}}, nil
	}

	req := &BatchRequest{Model: testSpec(0), Items: []BatchItem{
		{Times: []float64{1}, Order: 2},
		{Times: []float64{1}, Order: 3}, // panics
		{Times: []float64{2}, Order: 2},
	}}
	resp, out, raw := postBatch(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d, want 200 (items fail independently): %s", resp.StatusCode, raw)
	}
	if strings.Contains(raw, secretPanicValue) {
		t.Errorf("panic value leaked into the batch response: %s", raw)
	}
	for _, i := range []int{0, 2} {
		if out.Items[i].Status != BatchStatusOK {
			t.Errorf("item %d: status %q (%s), want ok", i, out.Items[i].Status, out.Items[i].Error)
		}
	}
	if out.Items[1].Status != BatchStatusError {
		t.Fatalf("item 1: status %q, want error", out.Items[1].Status)
	}
	if !strings.Contains(out.Items[1].Error, "internal panic") {
		t.Errorf("item 1: error %q, want sanitized panic diagnostic", out.Items[1].Error)
	}
	if got := s.metrics.Panics.Load(); got != 1 {
		t.Errorf("panics_total = %d, want 1", got)
	}
}

func TestBatchShedBeforeSingles(t *testing.T) {
	// Queue of 2 with 1 slot reserved: once one task is queued, batch
	// items are shed while single solves still get the last slot.
	s := New(Options{Workers: 1, QueueSize: 2, BatchQueueReserve: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	release := make(chan struct{})
	var started atomic.Int64
	s.solve = func(ctx context.Context, req *SolveRequest) (*SolveResponse, error) {
		started.Add(1)
		<-release
		return &SolveResponse{Method: MethodRandomization, Moments: []float64{1}}, nil
	}
	s.solveItem = func(ctx context.Context, prep *core.Prepared, item *BatchItem) ([]BatchPoint, error) {
		return []BatchPoint{{T: item.Times[0], Moments: []float64{1}}}, nil
	}
	defer close(release)

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(time.Millisecond)
		}
	}

	var wg sync.WaitGroup
	single := func(k int, wantStatus int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _, raw := postSolve(t, ts.URL, solveBody(t, &SolveRequest{Model: testSpec(k), T: 1, Order: 2}))
			if resp.StatusCode != wantStatus {
				t.Errorf("single solve %d: status %d, want %d: %s", k, resp.StatusCode, wantStatus, raw)
			}
		}()
	}

	// Occupy the only worker, then queue one more single solve: the queue
	// now holds 1 of 2 slots, leaving exactly the reserved headroom.
	single(0, http.StatusOK)
	waitFor("worker to pick up the first solve", func() bool { return started.Load() == 1 })
	single(1, http.StatusOK)
	waitFor("second solve to queue", func() bool { return s.pool.Depth() == 1 })

	// A batch item must now be shed...
	resp, out, raw := postBatch(t, ts.URL, &BatchRequest{Model: testSpec(9), Items: []BatchItem{
		{Times: []float64{1}, Order: 2},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, raw)
	}
	if out.Items[0].Status != BatchStatusError || !strings.Contains(out.Items[0].Error, "shed") {
		t.Fatalf("batch item = %+v, want shed error", out.Items[0])
	}
	if got := s.metrics.BatchShed.Load(); got != 1 {
		t.Errorf("batch_shed_total = %d, want 1", got)
	}

	// ...while a single solve still claims the reserved slot.
	single(2, http.StatusOK)
	waitFor("third solve to queue", func() bool { return s.pool.Depth() == 2 })

	release <- struct{}{}
	release <- struct{}{}
	release <- struct{}{}
	wg.Wait()
}
