package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

var (
	// ErrQueueFull is returned by pool.Do when the request queue is at
	// capacity; handlers surface it as 503.
	ErrQueueFull = errors.New("server: solve queue full")
	// ErrShuttingDown is returned for work that had not started when
	// Shutdown began; handlers surface it as 503.
	ErrShuttingDown = errors.New("server: shutting down")
)

// pool is a bounded worker pool: a fixed number of workers drain a
// fixed-capacity queue. It bounds solver concurrency (solves are CPU- and
// memory-heavy) independently of HTTP connection concurrency.
type pool struct {
	queue   chan *poolTask
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
	stopped atomic.Bool
}

type poolTask struct {
	ctx  context.Context
	fn   func(ctx context.Context)
	err  error
	done chan struct{}
}

func newPool(workers, queueSize int) *pool {
	p := &pool{queue: make(chan *poolTask, queueSize)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.wg.Done()
	for t := range p.queue {
		switch {
		case p.stopped.Load():
			// Queued before Shutdown but never started: fail cleanly
			// rather than running work nobody is waiting for.
			t.err = ErrShuttingDown
		case t.ctx.Err() != nil:
			// The caller's deadline expired while the task sat queued.
			t.err = t.ctx.Err()
		default:
			t.fn(t.ctx)
		}
		close(t.done)
	}
}

// Do runs fn on a pool worker and waits for it to finish. It returns
// ErrQueueFull when the queue is at capacity, ErrShuttingDown once
// Shutdown has begun, or the context error if the deadline expired
// before a worker picked the task up. fn itself is responsible for
// honoring ctx once running.
func (p *pool) Do(ctx context.Context, fn func(ctx context.Context)) error {
	t := &poolTask{ctx: ctx, fn: fn, done: make(chan struct{})}
	p.mu.Lock()
	if p.closed || p.stopped.Load() {
		p.mu.Unlock()
		return ErrShuttingDown
	}
	select {
	case p.queue <- t:
		p.mu.Unlock()
	default:
		p.mu.Unlock()
		return ErrQueueFull
	}
	<-t.done
	return t.err
}

// Depth returns the number of queued-but-unstarted tasks.
func (p *pool) Depth() int { return len(p.queue) }

// Shutdown stops accepting work, fails queued-but-unstarted tasks with
// ErrShuttingDown, lets in-flight tasks run to completion, and waits for
// the workers until the context expires.
func (p *pool) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	if !p.closed {
		p.stopped.Store(true)
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
