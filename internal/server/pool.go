package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

var (
	// ErrQueueFull is returned by pool.Do when the request queue is at
	// capacity; handlers surface it as 503.
	ErrQueueFull = errors.New("server: solve queue full")
	// ErrShuttingDown is returned for work that had not started when
	// Shutdown began; handlers surface it as 503.
	ErrShuttingDown = errors.New("server: shutting down")
	// ErrShed is returned by DoReserved when the queue has slots left but
	// not beyond the reserved headroom: low-priority work (batch items) is
	// shed before the queue can starve single solves. It wraps
	// ErrQueueFull, so existing 503 mapping and client retry classification
	// apply unchanged.
	ErrShed = fmt.Errorf("%w (shed: queue headroom reserved for single solves)", ErrQueueFull)
)

// QueueDeadlineError reports that the caller's deadline expired while the
// task was still queued — queue pressure, not solver slowness, even though
// both surface as 504. It unwraps to the context error, so existing
// deadline mapping applies; handlers count it separately
// (shed_deadline_total vs shed_queue_full_total) so operators can tell
// "queue rejected instantly" from "queued until the deadline died".
type QueueDeadlineError struct{ Err error }

func (e *QueueDeadlineError) Error() string {
	return "server: deadline expired while queued: " + e.Err.Error()
}

func (e *QueueDeadlineError) Unwrap() error { return e.Err }

// PanicError reports that a solve panicked and was recovered by its pool
// worker instead of killing the process. Error() is deliberately
// sanitized — it never includes the panic value or any stack contents,
// which could leak internals to HTTP clients; the recovered value is
// retained on the field for logs and tests.
type PanicError struct{ Value any }

func (e *PanicError) Error() string { return "server: internal panic during solve" }

// pool is a bounded worker pool: a fixed number of workers drain a
// fixed-capacity queue. It bounds solver concurrency (solves are CPU- and
// memory-heavy) independently of HTTP connection concurrency.
type pool struct {
	queue   chan *poolTask
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
	stopped atomic.Bool
	// onPanic observes every recovered task panic (metrics/logging hook);
	// may be nil.
	onPanic func(v any)
}

type poolTask struct {
	ctx  context.Context
	fn   func(ctx context.Context)
	err  error
	done chan struct{}
}

func newPool(workers, queueSize int, onPanic func(v any)) *pool {
	p := &pool{queue: make(chan *poolTask, queueSize), onPanic: onPanic}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.wg.Done()
	for t := range p.queue {
		switch {
		case p.stopped.Load():
			// Queued before Shutdown but never started: fail cleanly
			// rather than running work nobody is waiting for.
			t.err = ErrShuttingDown
		case t.ctx.Err() != nil:
			// The caller's deadline expired while the task sat queued.
			t.err = &QueueDeadlineError{Err: t.ctx.Err()}
		default:
			t.err = p.runTask(t)
		}
		close(t.done)
	}
}

// runTask executes one task, converting a panic into a *PanicError
// instead of letting it unwind the worker goroutine (which would kill the
// whole process). The worker itself survives and picks up the next task.
func (p *pool) runTask(t *poolTask) (err error) {
	defer func() {
		if v := recover(); v != nil {
			if p.onPanic != nil {
				p.onPanic(v)
			}
			err = &PanicError{Value: v}
		}
	}()
	t.fn(t.ctx)
	return nil
}

// Do runs fn on a pool worker and waits for it to finish. It returns
// ErrQueueFull when the queue is at capacity, ErrShuttingDown once
// Shutdown has begun, a *PanicError if fn panicked, or the context error
// if the deadline expired before a worker picked the task up. fn itself
// is responsible for honoring ctx once running.
func (p *pool) Do(ctx context.Context, fn func(ctx context.Context)) error {
	return p.DoReserved(ctx, fn, 0)
}

// DoReserved is Do with admission control: the task is refused with
// ErrShed unless, after enqueueing it, at least reserve queue slots would
// remain free. Handlers enqueue batch items with a positive reserve so a
// wide batch saturating the queue sheds its items before it can starve
// interactive single solves (which enqueue with reserve 0).
func (p *pool) DoReserved(ctx context.Context, fn func(ctx context.Context), reserve int) error {
	t := &poolTask{ctx: ctx, fn: fn, done: make(chan struct{})}
	p.mu.Lock()
	if p.closed || p.stopped.Load() {
		p.mu.Unlock()
		return ErrShuttingDown
	}
	// Workers only drain the queue concurrently, so the len read under the
	// enqueue mutex is conservative: at worst the queue is emptier than
	// observed and a shed was slightly early — never an overfill.
	if reserve > 0 && cap(p.queue)-len(p.queue) <= reserve {
		p.mu.Unlock()
		return ErrShed
	}
	select {
	case p.queue <- t:
		p.mu.Unlock()
	default:
		p.mu.Unlock()
		return ErrQueueFull
	}
	<-t.done
	return t.err
}

// Depth returns the number of queued-but-unstarted tasks.
func (p *pool) Depth() int { return len(p.queue) }

// Shutdown stops accepting work, fails queued-but-unstarted tasks with
// ErrShuttingDown, lets in-flight tasks run to completion, and waits for
// the workers until the context expires.
func (p *pool) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	if !p.closed {
		p.stopped.Store(true)
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
