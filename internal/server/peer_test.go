package server

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"somrm/internal/spec"
)

// postHandoff sends one handoff request, returning the HTTP status and the
// number of accepted entries (when the request succeeded).
func postHandoff(t *testing.T, url, secret string, entries []HandoffEntry) (int, int) {
	t.Helper()
	body, err := json.Marshal(HandoffRequest{Entries: entries})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/peer/handoff", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if secret != "" {
		req.Header.Set(peerSecretHeader, secret)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Accepted int `json:"accepted"`
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, out.Accepted
}

func getPeerResult(t *testing.T, url, key, secret string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url+"/v1/peer/result/"+key, nil)
	if err != nil {
		t.Fatal(err)
	}
	if secret != "" {
		req.Header.Set(peerSecretHeader, secret)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// specEntry builds a valid prepared-model handoff entry from a spec.
func specEntry(t *testing.T, sp *spec.Model) HandoffEntry {
	t.Helper()
	canon, err := sp.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	h, err := sp.Hash()
	if err != nil {
		t.Fatal(err)
	}
	key := hex.EncodeToString(h[:])
	return HandoffEntry{Key: key, SpecHash: key, SpecJSON: canon}
}

// TestPeerEndpointsAbsentWithoutCluster pins the single-node security
// surface: a server built without cluster hooks must not expose the
// internal peer endpoints at all — in particular no unauthenticated
// cache-write path via /v1/peer/handoff.
func TestPeerEndpointsAbsentWithoutCluster(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	key := "00112233445566778899aabbccddeeff"
	if got := getPeerResult(t, ts.URL, key, ""); got != http.StatusNotFound {
		t.Errorf("GET /v1/peer/result without cluster: status %d, want 404", got)
	}
	status, _ := postHandoff(t, ts.URL, "", []HandoffEntry{specEntry(t, testSpec(0))})
	if status != http.StatusNotFound {
		t.Errorf("POST /v1/peer/handoff without cluster: status %d, want 404", status)
	}
	if got := s.metrics.HandoffEntries.Load(); got != 0 {
		t.Errorf("handoff counter moved (%d) on a non-cluster server", got)
	}
	if got := s.prepared.Len(); got != 0 {
		t.Errorf("prepared cache has %d entries; nothing should have been installed", got)
	}
}

// TestPeerEndpointsRequireSecret pins the shared-secret gate on both peer
// endpoints when ClusterHooks.Secret is configured.
func TestPeerEndpointsRequireSecret(t *testing.T) {
	const secret = "cluster-test-secret"
	s := New(Options{Workers: 1, Cluster: &ClusterHooks{Secret: secret}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	key := "00112233445566778899aabbccddeeff"
	if got := getPeerResult(t, ts.URL, key, ""); got != http.StatusForbidden {
		t.Errorf("peer result without secret: status %d, want 403", got)
	}
	if got := getPeerResult(t, ts.URL, key, "wrong"); got != http.StatusForbidden {
		t.Errorf("peer result with wrong secret: status %d, want 403", got)
	}
	// The correct secret passes auth; the key simply is not cached.
	if got := getPeerResult(t, ts.URL, key, secret); got != http.StatusNotFound {
		t.Errorf("peer result with secret: status %d, want 404 (not cached)", got)
	}

	entries := []HandoffEntry{specEntry(t, testSpec(0))}
	if status, _ := postHandoff(t, ts.URL, "", entries); status != http.StatusForbidden {
		t.Errorf("handoff without secret: status %d, want 403", status)
	}
	if got := s.prepared.Len(); got != 0 {
		t.Errorf("unauthenticated handoff installed %d prepared entries", got)
	}
	status, accepted := postHandoff(t, ts.URL, secret, entries)
	if status != http.StatusOK || accepted != 1 {
		t.Errorf("authenticated handoff: status %d accepted %d, want 200/1", status, accepted)
	}
}

// TestHandoffSpecRebuildCap pins the CPU bound on handoff processing: one
// request may trigger at most maxHandoffSpecEntries prepared-model
// rebuilds, while result entries (plain cache inserts) are unaffected by
// the budget.
func TestHandoffSpecRebuildCap(t *testing.T) {
	s := New(Options{Workers: 2, Cluster: &ClusterHooks{}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	var entries []HandoffEntry
	for k := 0; k < maxHandoffSpecEntries+3; k++ {
		entries = append(entries, specEntry(t, testSpec(k)))
	}
	// A result entry after the spec budget is exhausted must still land.
	resultKey := "00112233445566778899aabbccddeeff"
	specHash := "ffeeddccbbaa99887766554433221100"
	entries = append(entries, HandoffEntry{
		Key:      resultKey,
		SpecHash: specHash,
		Response: &SolveResponse{Moments: []float64{1, 2}},
	})

	status, accepted := postHandoff(t, ts.URL, "", entries)
	if status != http.StatusOK {
		t.Fatalf("handoff status %d, want 200", status)
	}
	if want := maxHandoffSpecEntries + 1; accepted != want {
		t.Errorf("accepted %d entries, want %d (spec budget %d + 1 result)",
			accepted, want, maxHandoffSpecEntries)
	}
	if got := s.prepared.Len(); got != maxHandoffSpecEntries {
		t.Errorf("prepared cache holds %d entries, want %d", got, maxHandoffSpecEntries)
	}
	if _, ok := s.cache.Get(resultKey); !ok {
		t.Error("result entry past the spec budget was not installed")
	}
	// Every rebuild went through the worker pool as a prepared-cache miss.
	if got := s.metrics.PreparedMisses.Load(); got != maxHandoffSpecEntries {
		t.Errorf("prepared misses = %d, want %d", got, maxHandoffSpecEntries)
	}
}
