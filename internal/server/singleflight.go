package server

import (
	"context"
	"sync"
)

// flightGroup deduplicates concurrent identical work: while a solve for a
// key is in flight, later callers for the same key wait for its result
// instead of solving again (a minimal single-flight, stdlib-only).
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	resp *SolveResponse
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// Do executes fn once per key among concurrent callers. Followers block
// until the leader finishes or their own context expires; shared reports
// whether the result came from another caller's execution. A follower
// that gives up early leaves the leader running (its result still lands
// in the cache for future requests).
func (g *flightGroup) Do(ctx context.Context, key string, fn func() (*SolveResponse, error)) (resp *SolveResponse, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.resp, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.resp, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.resp, false, c.err
}
