package server

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"somrm/internal/core"
	"somrm/internal/spec"
)

// birthDeathSpec returns an n-state birth-death spec with level-indexed
// rewards, for matrix-free composition tests.
func birthDeathSpec(n int) *spec.Model {
	sp := &spec.Model{
		States:    n,
		Rates:     make([]float64, n),
		Variances: make([]float64, n),
		Initial:   make([]float64, n),
	}
	for i := 0; i < n; i++ {
		sp.Rates[i] = 0.01 * float64(i%5)
		sp.Variances[i] = 0.004 * float64(i%3)
		if i < n-1 {
			sp.Transitions = append(sp.Transitions,
				spec.Transition{From: i, To: i + 1, Rate: 1},
				spec.Transition{From: i + 1, To: i, Rate: 1.5})
		}
	}
	sp.Initial[0] = 1
	return sp
}

// TestComposeSolveEndToEnd drives a composed solve through the HTTP API
// and checks the response against the locally composed model bit for bit,
// plus the result-cache behaviour of the composed cache key.
func TestComposeSolveEndToEnd(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	compA, compB := testSpec(0), testSpec(3)
	ma, err := compA.Build()
	if err != nil {
		t.Fatal(err)
	}
	mb, err := compB.Build()
	if err != nil {
		t.Fatal(err)
	}
	joint, err := core.Compose(ma, mb)
	if err != nil {
		t.Fatal(err)
	}
	want, err := joint.AccumulatedReward(1.2, 3, nil)
	if err != nil {
		t.Fatal(err)
	}

	body := solveBody(t, &SolveRequest{Compose: []*spec.Model{compA, compB}, T: 1.2, Order: 3})
	resp, out, raw := postSolve(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compose solve: %d %s", resp.StatusCode, raw)
	}
	if len(out.Moments) != 4 {
		t.Fatalf("moments = %v", out.Moments)
	}
	for j, m := range out.Moments {
		if math.Float64bits(m) != math.Float64bits(want.Moments[j]) {
			t.Errorf("moment %d = %x, local composition %x", j, math.Float64bits(m), math.Float64bits(want.Moments[j]))
		}
	}
	if out.Stats == nil || out.Stats.MatrixFormat == "" {
		t.Fatalf("missing solver stats: %+v", out.Stats)
	}

	// The composed request is cacheable under its component-hash key.
	resp2, out2, raw2 := postSolve(t, ts.URL, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat: %d %s", resp2.StatusCode, raw2)
	}
	if !out2.Cached {
		t.Error("repeat composed request missed the result cache")
	}
}

// TestComposeImpulseRejected is the 400 regression test for the typed
// impulse sentinel: a composition with an impulse-reward component must
// come back as a client error naming the problem, not a 500.
func TestComposeImpulseRejected(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	withImpulse := testSpec(1)
	withImpulse.Impulses = []spec.Impulse{{From: 0, To: 1, Reward: 0.5}}
	body := solveBody(t, &SolveRequest{Compose: []*spec.Model{testSpec(0), withImpulse}, T: 1, Order: 2})
	resp, _, raw := postSolve(t, ts.URL, body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("impulse composition: status %d (want 400): %s", resp.StatusCode, raw)
	}
	if !strings.Contains(raw, "impulse") {
		t.Errorf("error body should name the impulse rejection: %s", raw)
	}
}

func TestComposeRequestValidation(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	cases := []struct {
		name string
		req  *SolveRequest
		want string
	}{
		{"single component", &SolveRequest{Compose: []*spec.Model{testSpec(0)}, T: 1, Order: 1}, "at least 2"},
		{"model and compose", &SolveRequest{Model: testSpec(0), Compose: []*spec.Model{testSpec(0), testSpec(1)}, T: 1, Order: 1}, "mutually exclusive"},
		{"wrong method", &SolveRequest{Compose: []*spec.Model{testSpec(0), testSpec(1)}, T: 1, Order: 1, Method: MethodODE}, "randomization"},
		{"state blowup", &SolveRequest{Compose: []*spec.Model{{States: 3000}, {States: 3000}}, T: 1, Order: 1}, "state space exceeds"},
		{"nil component", &SolveRequest{Compose: []*spec.Model{testSpec(0), nil}, T: 1, Order: 1}, "component 1 missing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, _, raw := postSolve(t, ts.URL, solveBody(t, tc.req))
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d (want 400): %s", resp.StatusCode, raw)
			}
			if !strings.Contains(raw, tc.want) {
				t.Errorf("error %q does not mention %q", raw, tc.want)
			}
		})
	}
}

// TestComposeMatrixFreeEndToEnd solves a composition too large to
// materialize through the API: the response must report the kron format
// and the sweep_formats metric must count it.
func TestComposeMatrixFreeEndToEnd(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	body := solveBody(t, &SolveRequest{
		Compose: []*spec.Model{birthDeathSpec(257), birthDeathSpec(257)},
		T:       0.3, Order: 2,
	})
	resp, out, raw := postSolve(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("matrix-free compose: %d %s", resp.StatusCode, raw)
	}
	if out.Stats == nil || out.Stats.MatrixFormat != "kron" {
		t.Fatalf("stats = %+v, want matrix_format kron", out.Stats)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.SweepFormats["kron"] != 1 {
		t.Errorf("sweep_formats = %v, want one kron sweep", snap.SweepFormats)
	}
}
