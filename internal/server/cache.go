package server

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity least-recently-used cache of solve
// responses keyed by the canonical request hash. A zero or negative
// capacity disables caching entirely.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
	// onPut observes every insert (the persistence journal hook). It runs
	// outside the mutex — the hook fsyncs, and a disk flush must never
	// serialize cache readers.
	onPut func(key, specHash string, resp *SolveResponse)
}

type lruEntry struct {
	key string
	// specHash is the canonical model hash behind the entry; drain handoff
	// routes the entry to the replica that owns this hash on the ring.
	specHash string
	resp     *SolveResponse
}

func newLRU(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached response for key, refreshing its recency. The
// returned response is shared: callers must not mutate it.
func (c *lruCache) Get(key string) (*SolveResponse, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).resp, true
}

// Put stores resp under key, evicting the least recently used entry when
// the cache is full. specHash is the canonical model hash of the request
// that produced resp (may be empty outside cluster mode).
func (c *lruCache) Put(key, specHash string, resp *SolveResponse) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*lruEntry)
		e.resp = resp
		e.specHash = specHash
		c.order.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, specHash: specHash, resp: resp})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
	hook := c.onPut
	c.mu.Unlock()
	if hook != nil {
		hook(key, specHash, resp)
	}
}

// Hottest returns up to n cached responses in most-recently-used order as
// drain-handoff entries. The responses are the shared cached pointers;
// receivers treat them as immutable, like every other cache reader.
func (c *lruCache) Hottest(n int) []HandoffEntry {
	if c.cap <= 0 || n <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	entries := make([]HandoffEntry, 0, min(n, c.order.Len()))
	for el := c.order.Front(); el != nil && len(entries) < n; el = el.Next() {
		e := el.Value.(*lruEntry)
		if e.specHash == "" {
			// Pre-cluster entries (or test seeds) without a model hash
			// cannot be routed on the ring; skip them.
			continue
		}
		entries = append(entries, HandoffEntry{Key: e.key, SpecHash: e.specHash, Response: e.resp})
	}
	return entries
}

// Len returns the current number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
