package server

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity least-recently-used cache of solve
// responses keyed by the canonical request hash. A zero or negative
// capacity disables caching entirely.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key  string
	resp *SolveResponse
}

func newLRU(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached response for key, refreshing its recency. The
// returned response is shared: callers must not mutate it.
func (c *lruCache) Get(key string) (*SolveResponse, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).resp, true
}

// Put stores resp under key, evicting the least recently used entry when
// the cache is full.
func (c *lruCache) Put(key string, resp *SolveResponse) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).resp = resp
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, resp: resp})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// Len returns the current number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
