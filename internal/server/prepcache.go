package server

import (
	"container/list"
	"sync"
	"sync/atomic"

	"somrm/internal/core"
	"somrm/internal/spec"
)

// preparedCache is a fixed-capacity LRU of prepared models keyed by the
// canonical spec hash. It is the layer that lets repeated requests against
// the same model skip parsing, validation, and the solver's matrix scaling.
//
// Concurrent misses on the same key are collapsed onto a single build
// (single-flight): followers wait for the leader's result instead of
// preparing the same model again. Failed builds are not cached, so a later
// request retries. A zero or negative capacity disables caching; every
// caller then builds its own prepared model.
type preparedCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element

	// builds counts actual Prepare executions — the quantity the
	// single-flight guarantee bounds (at most one per distinct key while the
	// key stays resident).
	builds atomic.Int64
}

type prepEntry struct {
	key   string
	ready chan struct{} // closed when prep/err are set
	prep  *core.Prepared
	err   error
	// canon is the canonical spec serialization behind the entry, recorded
	// via NoteSpec so drain handoff can stream the model to a ring
	// successor (which rebuilds it bitwise-identically). Guarded by the
	// cache mutex; nil until a handler notes the spec.
	canon []byte
}

func newPreparedCache(capacity int) *preparedCache {
	return &preparedCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

// GetOrBuild returns the prepared model for key, building it with build at
// most once among concurrent callers. hit reports whether the key was
// already resident (possibly still building; the call then waits for the
// in-flight build instead of duplicating it).
func (c *preparedCache) GetOrBuild(key string, build func() (*core.Prepared, error)) (prep *core.Prepared, hit bool, err error) {
	if c.cap <= 0 {
		c.builds.Add(1)
		prep, err = build()
		return prep, false, err
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		e := el.Value.(*prepEntry)
		c.mu.Unlock()
		<-e.ready
		return e.prep, true, e.err
	}
	e := &prepEntry{key: key, ready: make(chan struct{})}
	c.items[key] = c.order.PushFront(e)
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*prepEntry).key)
	}
	c.mu.Unlock()

	c.builds.Add(1)
	e.prep, e.err = build()
	if e.err != nil {
		// Drop failed builds (only if the slot still holds this entry).
		c.mu.Lock()
		if el, ok := c.items[key]; ok && el.Value.(*prepEntry) == e {
			c.order.Remove(el)
			delete(c.items, key)
		}
		c.mu.Unlock()
	}
	close(e.ready)
	return e.prep, false, e.err
}

// NoteSpec attaches the canonical serialization of the spec behind key to
// its resident entry, so drain handoff can ship the model to a successor.
// It is a no-op when the key is not resident or the spec fails to
// canonicalize (the entry then simply is not handed off).
func (c *preparedCache) NoteSpec(key string, sp *spec.Model) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok || el.Value.(*prepEntry).canon != nil {
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	// Canonicalize outside the lock; it allocates and sorts.
	canon, err := sp.Canonical()
	if err != nil {
		return
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*prepEntry)
		if e.canon == nil {
			e.canon = canon
		}
	}
	c.mu.Unlock()
}

// Hottest returns up to n prepared-model entries in most-recently-used
// order as drain-handoff entries (canonical specs; the receiver rebuilds).
// Entries whose spec was never noted, or whose build failed or is still in
// flight, are skipped.
func (c *preparedCache) Hottest(n int) []HandoffEntry {
	if c.cap <= 0 || n <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	entries := make([]HandoffEntry, 0, min(n, c.order.Len()))
	for el := c.order.Front(); el != nil && len(entries) < n; el = el.Next() {
		e := el.Value.(*prepEntry)
		if e.canon == nil {
			continue
		}
		select {
		case <-e.ready:
			if e.err != nil {
				continue
			}
		default:
			continue // still building
		}
		entries = append(entries, HandoffEntry{Key: e.key, SpecHash: e.key, SpecJSON: e.canon})
	}
	return entries
}

// Len returns the current number of cached entries (including in-flight
// builds).
func (c *preparedCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Builds returns the number of Prepare executions performed through the
// cache.
func (c *preparedCache) Builds() int64 { return c.builds.Load() }
