package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"somrm/internal/core"
)

func TestPreparedCacheSingleFlight(t *testing.T) {
	c := newPreparedCache(4)
	model, err := testSpec(0).Build()
	if err != nil {
		t.Fatal(err)
	}

	// Many concurrent callers of the same key collapse onto one build.
	const callers = 32
	release := make(chan struct{})
	var wg sync.WaitGroup
	preps := make([]*core.Prepared, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			prep, _, err := c.GetOrBuild("k", func() (*core.Prepared, error) {
				<-release // hold the leader's build until all followers arrive
				return core.Prepare(model)
			})
			if err != nil {
				t.Error(err)
			}
			preps[i] = prep
		}(i)
	}
	close(release)
	wg.Wait()
	if got := c.Builds(); got != 1 {
		t.Errorf("builds = %d, want 1 (single flight)", got)
	}
	for i := 1; i < callers; i++ {
		if preps[i] != preps[0] {
			t.Fatalf("caller %d got a different prepared instance", i)
		}
	}
}

func TestPreparedCacheFailedBuildRetries(t *testing.T) {
	c := newPreparedCache(4)
	boom := errors.New("boom")
	if _, _, err := c.GetOrBuild("k", func() (*core.Prepared, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Errorf("failed build cached: len = %d", c.Len())
	}
	model, err := testSpec(0).Build()
	if err != nil {
		t.Fatal(err)
	}
	prep, hit, err := c.GetOrBuild("k", func() (*core.Prepared, error) { return core.Prepare(model) })
	if err != nil || prep == nil {
		t.Fatalf("retry after failed build: %v", err)
	}
	if hit {
		t.Error("retry reported a hit")
	}
	if got := c.Builds(); got != 2 {
		t.Errorf("builds = %d, want 2", got)
	}
}

func TestPreparedCacheEvictionAndDisable(t *testing.T) {
	model, err := testSpec(0).Build()
	if err != nil {
		t.Fatal(err)
	}
	build := func() (*core.Prepared, error) { return core.Prepare(model) }

	c := newPreparedCache(2)
	for _, k := range []string{"a", "b", "c"} { // c evicts a
		if _, _, err := c.GetOrBuild(k, build); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
	if _, hit, _ := c.GetOrBuild("a", build); hit {
		t.Error("evicted key reported a hit")
	}

	d := newPreparedCache(-1)
	for i := 0; i < 3; i++ {
		if _, hit, err := d.GetOrBuild("k", build); err != nil || hit {
			t.Fatalf("disabled cache: hit=%v err=%v", hit, err)
		}
	}
	if got := d.Builds(); got != 3 {
		t.Errorf("disabled cache builds = %d, want 3", got)
	}
	if d.Len() != 0 {
		t.Errorf("disabled cache len = %d", d.Len())
	}
}

// TestPreparedCacheConcurrentHammer is the concurrency satellite: N
// goroutines fire batch and single solves for overlapping model hashes
// under -race, and the builds counter proves no duplicate prepare work
// happened beyond the single-flight guarantee — with a capacity larger
// than the working set, exactly one build per distinct model.
func TestPreparedCacheConcurrentHammer(t *testing.T) {
	const distinct = 6
	const goroutines = 24
	const repsEach = 4

	s := New(Options{Workers: 4, QueueSize: 256, CacheSize: -1, PreparedCacheSize: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	singleBodies := make([][]byte, distinct)
	batchBodies := make([][]byte, distinct)
	for k := 0; k < distinct; k++ {
		var err error
		singleBodies[k], err = json.Marshal(&SolveRequest{Model: testSpec(k), T: 1, Order: 2})
		if err != nil {
			t.Fatal(err)
		}
		batchBodies[k], err = json.Marshal(&BatchRequest{Model: testSpec(k), Items: []BatchItem{
			{Times: []float64{0.5, 1, 1.5}, Order: 2},
			{Times: []float64{2}, Order: 3},
		}})
		if err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < repsEach; r++ {
				k := (g + r) % distinct
				var url string
				var body []byte
				if g%2 == 0 {
					url, body = ts.URL+"/v1/solve", singleBodies[k]
				} else {
					url, body = ts.URL+"/v1/solve/batch", batchBodies[k]
				}
				resp, err := http.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("goroutine %d rep %d: status %d", g, r, resp.StatusCode)
				}
			}
		}(g)
	}
	wg.Wait()

	// The whole hammer prepared each distinct model exactly once: every
	// other request either hit the cache or joined an in-flight build.
	if got := s.prepared.Builds(); got != distinct {
		t.Errorf("prepare executions = %d, want exactly %d (one per distinct model)", got, distinct)
	}
	if hits := s.metrics.PreparedHits.Load(); hits == 0 {
		t.Error("no prepared-cache hits under overlapping load")
	}
	if misses := s.metrics.PreparedMisses.Load(); misses != distinct {
		t.Errorf("prepared misses = %d, want %d", misses, distinct)
	}
}
