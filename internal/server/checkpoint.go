package server

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"sync"
	"time"
)

// Checkpoint-store defaults and limits.
const (
	defaultCheckpointTTL = 2 * time.Minute
	defaultCheckpointCap = 64
	// maxHandoffCheckpointEntries bounds how many in-flight checkpoints a
	// draining replica streams to ring successors: each carries a full
	// sweep state, so they are by far the heaviest handoff entries.
	maxHandoffCheckpointEntries = 16
)

// errResumeTokenGone marks resume attempts against a token this replica
// does not hold (expired, evicted, or never issued here); handlers surface
// it as 410 Gone so clients know to re-POST without the token.
var errResumeTokenGone = errors.New("server: unknown or expired resume token")

// PartialResponse is the typed body of a 202 partial status: the solve hit
// its deadline mid-sweep, but the iteration state was checkpointed and a
// re-POST of the same request with ResumeToken continues where it stopped
// instead of restarting. The final, resumed response is bitwise identical
// to an uninterrupted solve.
type PartialResponse struct {
	// Status is always "partial".
	Status string `json:"status"`
	// ResumeToken names the held checkpoint; send it back as the
	// resume_token field of an otherwise identical request.
	ResumeToken string `json:"resume_token"`
	// Completed and GMax report sweep progress (iterations done / total).
	Completed int `json:"completed_iterations"`
	GMax      int `json:"g_max"`
	// Progress is Completed/GMax.
	Progress float64 `json:"progress"`
	// Error is the deadline error that interrupted the solve.
	Error string `json:"error"`
}

// checkpointEntry is one held sweep snapshot.
type checkpointEntry struct {
	token           string
	key             string // result-cache key of the interrupted request
	specHash        string // canonical model hash (routes handoff on the ring)
	blob            []byte // core.Checkpoint.Encode output (self-verifying)
	completed, gMax int
	expires         time.Time
}

// checkpointStore holds interrupted-sweep snapshots under a TTL and a
// bounded capacity. Tokens are stable per request key: a solve that is
// interrupted again after a partial resume reuses the token the client
// already holds, with the fresher state behind it.
type checkpointStore struct {
	mu      sync.Mutex
	cap     int
	ttl     time.Duration
	now     func() time.Time // injectable clock for tests
	byToken map[string]*checkpointEntry
	byKey   map[string]string // request key -> token
	order   []string          // token insertion order, oldest first
}

func newCheckpointStore(capacity int, ttl time.Duration) *checkpointStore {
	if capacity <= 0 {
		capacity = defaultCheckpointCap
	}
	if ttl <= 0 {
		ttl = defaultCheckpointTTL
	}
	return &checkpointStore{
		cap:     capacity,
		ttl:     ttl,
		now:     time.Now,
		byToken: make(map[string]*checkpointEntry),
		byKey:   make(map[string]string),
	}
}

// newResumeToken returns a fresh 128-bit random token in lowercase hex
// (the same alphabet as cache keys, so peer-endpoint validation reuses
// validHexKey).
func newResumeToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable for token issuance; fall
		// back to refusing checkpoints rather than predictable tokens.
		panic("server: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// removeLocked drops one entry from every index. Caller holds mu.
func (cs *checkpointStore) removeLocked(e *checkpointEntry) {
	delete(cs.byToken, e.token)
	if cs.byKey[e.key] == e.token {
		delete(cs.byKey, e.key)
	}
}

// purgeLocked drops expired entries and compacts the order slice. Caller
// holds mu.
func (cs *checkpointStore) purgeLocked() {
	now := cs.now()
	kept := cs.order[:0]
	for _, tok := range cs.order {
		e, ok := cs.byToken[tok]
		if !ok {
			continue
		}
		if now.After(e.expires) {
			cs.removeLocked(e)
			continue
		}
		kept = append(kept, tok)
	}
	cs.order = kept
}

// Put stores (or refreshes) the checkpoint for a request key and returns
// its resume token.
func (cs *checkpointStore) Put(key, specHash string, blob []byte, completed, gMax int) string {
	return cs.adopt("", key, specHash, blob, completed, gMax)
}

// adopt is Put with a caller-chosen token (drain handoff preserves the
// token the client already holds); an empty token issues a fresh one. If
// the key is already tracked, its existing token is kept and the entry
// refreshed — unless the held state is further along than the offered one,
// which is kept instead.
func (cs *checkpointStore) adopt(token, key, specHash string, blob []byte, completed, gMax int) string {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.purgeLocked()
	if tok, ok := cs.byKey[key]; ok {
		e := cs.byToken[tok]
		if completed > e.completed {
			e.blob = blob
			e.completed = completed
			e.gMax = gMax
		}
		e.expires = cs.now().Add(cs.ttl)
		return e.token
	}
	if token == "" {
		token = newResumeToken()
	} else if _, clash := cs.byToken[token]; clash {
		return token // already adopted (duplicate handoff push)
	}
	for len(cs.order) >= cs.cap {
		oldest, ok := cs.byToken[cs.order[0]]
		cs.order = cs.order[1:]
		if ok {
			cs.removeLocked(oldest)
		}
	}
	e := &checkpointEntry{
		token: token, key: key, specHash: specHash, blob: blob,
		completed: completed, gMax: gMax,
		expires: cs.now().Add(cs.ttl),
	}
	cs.byToken[token] = e
	cs.byKey[key] = token
	cs.order = append(cs.order, token)
	return token
}

// Get returns the live entry for a token.
func (cs *checkpointStore) Get(token string) (*checkpointEntry, bool) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	e, ok := cs.byToken[token]
	if !ok {
		return nil, false
	}
	if cs.now().After(e.expires) {
		cs.removeLocked(e)
		return nil, false
	}
	return e, true
}

// Remove drops a token (after a successful resume).
func (cs *checkpointStore) Remove(token string) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if e, ok := cs.byToken[token]; ok {
		cs.removeLocked(e)
	}
}

// Len reports the live entry count (for the /metrics gauge).
func (cs *checkpointStore) Len() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.purgeLocked()
	return len(cs.byToken)
}

// export snapshots up to n held checkpoints as drain-handoff entries, so
// in-flight work — not just finished results — migrates to ring
// successors.
func (cs *checkpointStore) export(n int) []HandoffEntry {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.purgeLocked()
	entries := make([]HandoffEntry, 0, min(n, len(cs.byToken)))
	// Newest first: the most recently interrupted solves are the likeliest
	// to see their resume re-POST.
	for i := len(cs.order) - 1; i >= 0 && len(entries) < n; i-- {
		e, ok := cs.byToken[cs.order[i]]
		if !ok {
			continue
		}
		entries = append(entries, HandoffEntry{
			Key: e.key, SpecHash: e.specHash,
			Token: e.token, Checkpoint: e.blob,
		})
	}
	return entries
}
