package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"somrm/internal/testutil"
)

// TestResultCacheEvictionHammer drives far more distinct models than the
// result cache can hold through concurrent requests, so entries are
// evicted and re-inserted continuously while other goroutines read them.
// It mirrors TestPreparedCacheConcurrentHammer for the result LRU and
// asserts the invariants that matter under churn: every response carries
// the moments of the model it asked for (an eviction race returning a
// stale or cross-wired entry would surface here), the entry count never
// exceeds capacity, and the hit/miss counters stay consistent with the
// request count.
func TestResultCacheEvictionHammer(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)

	const (
		cacheCap   = 4
		distinct   = 12 // 3x the capacity: constant eviction pressure
		goroutines = 24
		repsEach   = 6
		order      = 2
	)

	s := New(Options{Workers: 4, QueueSize: 256, CacheSize: cacheCap})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	bodies := make([][]byte, distinct)
	refs := make([][]float64, distinct)
	for k := 0; k < distinct; k++ {
		bodies[k] = solveBody(t, &SolveRequest{Model: testSpec(k), T: 1, Order: order})
		model, err := testSpec(k).Build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := model.AccumulatedRewardAt([]float64{1}, order, nil)
		if err != nil {
			t.Fatal(err)
		}
		refs[k] = res[0].Moments
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < repsEach; r++ {
				// Stride by goroutine so reads, inserts, and evictions of
				// different keys interleave instead of marching in phase.
				k := (g*5 + r) % distinct
				resp, out, raw := postSolve(t, ts.URL, bodies[k])
				if resp.StatusCode != http.StatusOK {
					t.Errorf("goroutine %d rep %d: status %d: %s", g, r, resp.StatusCode, raw)
					continue
				}
				if !reflect.DeepEqual(out.Moments, refs[k]) {
					t.Errorf("model %d: moments %v, want %v (cache served the wrong entry)",
						k, out.Moments, refs[k])
				}
			}
		}(g)
	}
	wg.Wait()

	if got := s.cache.Len(); got > cacheCap {
		t.Errorf("cache holds %d entries, capacity is %d", got, cacheCap)
	}
	hits, misses := s.metrics.CacheHits.Load(), s.metrics.CacheMisses.Load()
	requests := s.metrics.Requests.Load()
	if requests != goroutines*repsEach {
		t.Errorf("requests = %d, want %d", requests, goroutines*repsEach)
	}
	// Every accepted request is exactly one cache lookup: a hit or a miss
	// (single-flight followers count as misses).
	if hits+misses != requests {
		t.Errorf("cache hits (%d) + misses (%d) = %d, want the request count %d",
			hits, misses, hits+misses, requests)
	}
	// With 3x capacity churn there must be misses beyond the first fill.
	if misses < distinct {
		t.Errorf("misses = %d, want at least one per distinct model (%d)", misses, distinct)
	}
	// Whether any hits land *during* the churn is a scheduling accident
	// (the faster the solves, the more the goroutines march in phase and
	// evict each other's entries), so prove the cache still serves hits
	// the deterministic way: a sequential repeat after the storm must be
	// answered from cache.
	if _, out, _ := postSolve(t, ts.URL, bodies[0]); out.Cached {
		t.Log("first post-churn request already cached")
	}
	resp, out, raw := postSolve(t, ts.URL, bodies[0])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-churn repeat: status %d: %s", resp.StatusCode, raw)
	}
	if !out.Cached {
		t.Error("sequential repeat after the churn was not served from cache")
	}
	if got := s.metrics.CacheHits.Load(); got <= hits {
		t.Errorf("cache hits did not advance on a sequential repeat (%d -> %d)", hits, got)
	}
}
