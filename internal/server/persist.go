package server

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Persistence layout and limits. The warm cache is two files in the
// configured directory: a snapshot (the full entry set, rewritten
// atomically on compaction and clean shutdown) and an append-only journal
// of inserts since the snapshot. Every line is independently verifiable:
//
//	v1 <sha256-hex-of-payload> <compact-json-payload>\n
//
// so a torn tail — the process was killed mid-append — is detected and
// truncated on the next startup instead of poisoning the cache.
const (
	persistJournalName  = "cache.journal"
	persistSnapshotName = "cache.snapshot"
	persistLinePrefix   = "v1"
	// persistCompactLines is the journal length that triggers compaction
	// into the snapshot, bounding replay time after a crash.
	persistCompactLines = 1024
	// persistMaxEntries bounds the persister's entry set (and thus the
	// snapshot): oldest entries are dropped first, mirroring LRU eviction.
	persistMaxEntries = 4096
	// persistMaxLineBytes bounds one journal line on load; longer lines are
	// treated as corruption.
	persistMaxLineBytes = 16 << 20
)

// persistEntry is the JSON payload of one persisted cache insert.
type persistEntry struct {
	Key      string         `json:"key"`
	SpecHash string         `json:"spec_hash"`
	Response *SolveResponse `json:"response"`
}

// restoredEntry is one verified entry replayed at startup, in
// least-recently-written-first order.
type restoredEntry struct {
	Key      string
	SpecHash string
	Response *SolveResponse
}

// cachePersister journals result-cache inserts to disk so a killed replica
// restarts warm. It is fail-open by design: a write error downgrades
// persistence (counted in persist_errors_total), never the solve that
// produced the entry.
type cachePersister struct {
	mu      sync.Mutex
	dir     string
	journal *os.File
	lines   int // journal lines since the last compaction
	// entries/order mirror what the snapshot would contain, newest last.
	entries map[string][]byte // key -> canonical payload JSON
	order   []string
	faults  *FaultInjector
	metrics *Metrics
	closed  bool
}

// openCachePersister opens (creating if needed) the persistence directory,
// replays the snapshot and journal, truncates any corrupt journal tail,
// and returns the persister plus every verified entry in
// oldest-write-first order (so replaying them through Put leaves the most
// recent writes most recently used).
func openCachePersister(dir string, faults *FaultInjector, m *Metrics) (*cachePersister, []restoredEntry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("server: cache persistence: %w", err)
	}
	p := &cachePersister{
		dir:     dir,
		entries: make(map[string][]byte),
		faults:  faults,
		metrics: m,
	}
	// Snapshot first (the compacted base), then the journal (inserts since).
	// A corrupt snapshot line stops the snapshot replay but is not fatal;
	// the snapshot is rewritten whole on the next compaction.
	p.loadFile(filepath.Join(dir, persistSnapshotName), false)
	p.loadFile(filepath.Join(dir, persistJournalName), true)

	f, err := os.OpenFile(filepath.Join(dir, persistJournalName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("server: cache persistence: %w", err)
	}
	p.journal = f

	restored := make([]restoredEntry, 0, len(p.order))
	for _, key := range p.order {
		var e persistEntry
		if err := json.Unmarshal(p.entries[key], &e); err != nil {
			continue // cannot happen: payloads were verified on load
		}
		restored = append(restored, restoredEntry{Key: e.Key, SpecHash: e.SpecHash, Response: e.Response})
	}
	return p, restored, nil
}

// loadFile replays one persistence file into the entry set, stopping at
// the first line that fails verification. For the journal (truncate=true)
// the file is cut at the corrupt line's offset, so the torn tail of a
// crashed append is removed rather than re-detected forever.
func (p *cachePersister) loadFile(path string, truncate bool) {
	f, err := os.Open(path)
	if err != nil {
		return // absent file: cold start
	}
	defer f.Close()
	var offset int64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), persistMaxLineBytes)
	for sc.Scan() {
		line := sc.Bytes()
		e, payload, ok := decodePersistLine(line)
		if !ok {
			break
		}
		p.adoptEntry(e.Key, payload)
		if truncate {
			p.lines++
		}
		offset += int64(len(line)) + 1 // the scanner strips the newline
	}
	if truncate {
		if fi, err := f.Stat(); err == nil && fi.Size() != offset {
			// Corrupt or torn tail: cut the journal back to the last line
			// that verified.
			_ = os.Truncate(path, offset)
		}
	}
}

// decodePersistLine verifies and decodes one "v1 <digest> <payload>" line.
func decodePersistLine(line []byte) (persistEntry, []byte, bool) {
	var e persistEntry
	fields := bytes.SplitN(line, []byte(" "), 3)
	if len(fields) != 3 || string(fields[0]) != persistLinePrefix {
		return e, nil, false
	}
	digest, payload := fields[1], fields[2]
	sum := sha256.Sum256(payload)
	if string(digest) != hex.EncodeToString(sum[:]) {
		return e, nil, false
	}
	if err := json.Unmarshal(payload, &e); err != nil {
		return e, nil, false
	}
	// The key is the content hash of (model, params) and the spec hash the
	// model's: both must still look like our hashes, or the entry would
	// inject junk keys into the cache.
	if !validHexKey(e.Key) || !validHexKey(e.SpecHash) || e.Response == nil {
		return e, nil, false
	}
	return e, append([]byte(nil), payload...), true
}

// adoptEntry records one verified payload, newest last, bounded by
// persistMaxEntries.
func (p *cachePersister) adoptEntry(key string, payload []byte) {
	if _, ok := p.entries[key]; ok {
		p.entries[key] = payload
		// Move the key to the back (most recent) of the order.
		for i, k := range p.order {
			if k == key {
				p.order = append(append(p.order[:i:i], p.order[i+1:]...), key)
				break
			}
		}
		return
	}
	p.entries[key] = payload
	p.order = append(p.order, key)
	for len(p.order) > persistMaxEntries {
		delete(p.entries, p.order[0])
		p.order = p.order[1:]
	}
}

// encodePersistLine renders one entry as its self-verifying journal line.
func encodePersistLine(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	line := make([]byte, 0, len(persistLinePrefix)+1+hex.EncodedLen(len(sum))+1+len(payload)+1)
	line = append(line, persistLinePrefix...)
	line = append(line, ' ')
	line = append(line, hex.EncodeToString(sum[:])...)
	line = append(line, ' ')
	line = append(line, payload...)
	line = append(line, '\n')
	return line
}

// Append journals one cache insert (the lruCache onPut hook). It runs
// outside the cache mutex; the fsync makes the entry crash-durable before
// Append returns. Failures are counted and swallowed — persistence must
// never fail the solve that produced the entry.
func (p *cachePersister) Append(key, specHash string, resp *SolveResponse) {
	// Strip serving-path decorations: a restored entry must read as a plain
	// cached result, like a peer-filled adoption does.
	clean := *resp
	clean.Cached = false
	clean.Deduped = false
	clean.PeerFilled = false
	payload, err := json.Marshal(&persistEntry{Key: key, SpecHash: specHash, Response: &clean})
	if err != nil {
		p.noteError()
		return
	}
	line := encodePersistLine(payload)

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.journal == nil {
		return
	}
	fail, torn := p.faults.DiskFault()
	switch {
	case fail:
		p.noteError()
		return
	case torn:
		// A torn write reaches the disk truncated — as if the process died
		// mid-append — but reports success to the caller, exactly the lie a
		// crash tells. Startup truncates it away.
		_, _ = p.journal.Write(line[:len(line)/2])
		_ = p.journal.Sync()
		p.adoptEntry(key, payload)
		return
	}
	if _, err := p.journal.Write(line); err != nil {
		p.noteError()
		return
	}
	if err := p.journal.Sync(); err != nil {
		p.noteError()
		return
	}
	if p.metrics != nil {
		p.metrics.PersistWrites.Add(1)
	}
	p.adoptEntry(key, payload)
	p.lines++
	if p.lines >= persistCompactLines {
		_ = p.compactLocked()
	}
}

func (p *cachePersister) noteError() {
	if p.metrics != nil {
		p.metrics.PersistErrors.Add(1)
	}
}

// compactLocked rewrites the snapshot atomically (write temp, fsync,
// rename, fsync directory) from the in-memory entry set and resets the
// journal. Caller holds mu.
func (p *cachePersister) compactLocked() error {
	tmp := filepath.Join(p.dir, persistSnapshotName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		p.noteError()
		return err
	}
	w := bufio.NewWriter(f)
	for _, key := range p.order {
		if _, err := w.Write(encodePersistLine(p.entries[key])); err != nil {
			f.Close()
			os.Remove(tmp)
			p.noteError()
			return err
		}
	}
	if err := w.Flush(); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		p.noteError()
		return err
	}
	if err := os.Rename(tmp, filepath.Join(p.dir, persistSnapshotName)); err != nil {
		os.Remove(tmp)
		p.noteError()
		return err
	}
	syncDir(p.dir)
	// The snapshot now holds everything; restart the journal.
	if err := p.journal.Truncate(0); err != nil {
		p.noteError()
		return err
	}
	if _, err := p.journal.Seek(0, 0); err != nil {
		p.noteError()
		return err
	}
	p.lines = 0
	return nil
}

// syncDir fsyncs a directory so a just-renamed file survives power loss.
// Best effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// Close compacts the entry set into the snapshot and closes the journal.
// Called from Server.Shutdown after the pool has drained.
func (p *cachePersister) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	err := p.compactLocked()
	if cerr := p.journal.Close(); err == nil {
		err = cerr
	}
	p.journal = nil
	if err != nil {
		return fmt.Errorf("server: cache persistence close: %w", err)
	}
	return nil
}
