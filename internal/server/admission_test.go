package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"somrm/internal/spec"
)

func TestMemGateReserve(t *testing.T) {
	g := newMemGate(1000)
	rel1, ok := g.Reserve(600)
	if !ok || g.InFlight() != 600 {
		t.Fatalf("first reserve: ok=%v inflight=%d", ok, g.InFlight())
	}
	if _, ok := g.Reserve(600); ok {
		t.Fatal("over-budget reserve admitted")
	}
	rel2, ok := g.Reserve(400)
	if !ok {
		t.Fatal("exact-fit reserve refused")
	}
	rel1()
	rel1() // release is idempotent
	if g.InFlight() != 400 {
		t.Fatalf("inflight after release = %d, want 400", g.InFlight())
	}
	rel2()
	if g.InFlight() != 0 {
		t.Fatalf("inflight after all releases = %d, want 0", g.InFlight())
	}
	// A single request larger than the whole budget is always shed.
	if _, ok := g.Reserve(1001); ok {
		t.Fatal("larger-than-budget reserve admitted")
	}
}

func TestEstimateWorkingSetShape(t *testing.T) {
	small := &SolveRequest{Model: testSpec(0), T: 1, Order: 2, Method: MethodRandomization}
	big := &SolveRequest{Model: largeBandSpec(5000, 2), T: 1, Order: 2, Method: MethodRandomization}
	es, eb := estimateWorkingSet(small, 0, ""), estimateWorkingSet(big, 0, "")
	if es <= 0 || eb <= 0 {
		t.Fatalf("estimates must be positive: %d, %d", es, eb)
	}
	if eb < 100*es {
		t.Fatalf("2500x states should dominate the estimate: small=%d big=%d", es, eb)
	}
	// csr64 stores wider indices than csr32.
	if estimateWorkingSet(big, 0, "csr64") <= estimateWorkingSet(big, 0, "csr") {
		t.Fatal("csr64 estimate should exceed csr32")
	}
	// A matrix-free composed product above the materialization threshold
	// must not be charged for a materialized matrix.
	comps := make([]*spec.Model, 0, 18)
	for i := 0; i < 18; i++ {
		comps = append(comps, testSpec(i))
	}
	// 2^18 = 262144 states > ComposeMaterializeThreshold (65536): but 18
	// factors exceeds MaxKronFactors, so build a product from wider factors.
	wide := []*spec.Model{largeBandSpec(100, 3), largeBandSpec(100, 3), largeBandSpec(100, 3)}
	free := &SolveRequest{Compose: wide, T: 1, Order: 1, Method: MethodRandomization}
	matFree := estimateWorkingSet(free, 0, "")
	n := int64(100 * 100 * 100)
	if matFree < n*8 {
		t.Fatalf("matrix-free estimate %d should still charge the product vectors (~%d)", matFree, n*8)
	}
	if matFree > n*8*64 {
		t.Fatalf("matrix-free estimate %d charges far more than vectors; materialized matrix leaked in", matFree)
	}
}

// largeBandSpec builds a birth-death-style chain of n states with the
// given half-bandwidth.
func largeBandSpec(n, band int) *spec.Model {
	m := &spec.Model{States: n}
	m.Rates = make([]float64, n)
	m.Variances = make([]float64, n)
	m.Initial = make([]float64, n)
	m.Initial[0] = 1
	for i := 0; i < n; i++ {
		m.Rates[i] = float64(i%3) - 0.5
		m.Variances[i] = 0.1
		for b := 1; b <= band; b++ {
			if i+b < n {
				m.Transitions = append(m.Transitions, spec.Transition{From: i, To: i + b, Rate: 1})
			}
			if i-b >= 0 {
				m.Transitions = append(m.Transitions, spec.Transition{From: i, To: i - b, Rate: 0.5})
			}
		}
	}
	return m
}

// TestMemBudgetShedsSolve: a budget below the request's estimated working
// set sheds the solve with a typed 503 and mem_shed_total, and a budget
// above it admits the same request.
func TestMemBudgetShedsSolve(t *testing.T) {
	tiny := New(Options{Workers: 1, MemBudget: 64})
	defer tiny.Shutdown(context.Background())
	ts := httptest.NewServer(tiny.Handler())
	defer ts.Close()

	body := solveBody(t, &SolveRequest{Model: testSpec(0), T: 1.5, Order: 3})
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := readAll(resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "memory budget") {
		t.Fatalf("shed body not typed: %s", raw)
	}
	if got := tiny.metrics.MemShed.Load(); got != 1 {
		t.Fatalf("mem_shed_total = %d, want 1", got)
	}
	if got := tiny.metrics.Solves.Load(); got != 0 {
		t.Fatalf("shed request reached the solver: %d solves", got)
	}
	if got := tiny.memGate.InFlight(); got != 0 {
		t.Fatalf("shed request left %d bytes reserved", got)
	}

	roomy := New(Options{Workers: 1, MemBudget: 1 << 20})
	defer roomy.Shutdown(context.Background())
	ts2 := httptest.NewServer(roomy.Handler())
	defer ts2.Close()
	resp2, out, raw2 := postSolve(t, ts2.URL, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("admitted solve failed: %d: %s", resp2.StatusCode, raw2)
	}
	if len(out.Moments) != 4 {
		t.Fatalf("bad moments: %v", out.Moments)
	}
	if got := roomy.memGate.InFlight(); got != 0 {
		t.Fatalf("release leaked %d bytes in flight", got)
	}

	// The /metrics gauges expose the gate.
	mresp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := readAll(mresp)
	var snap MetricsSnapshot
	if err := json.Unmarshal(mraw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.MemBudgetBytes != 1<<20 {
		t.Fatalf("mem_budget_bytes = %d, want %d", snap.MemBudgetBytes, 1<<20)
	}
}

// TestBatchMemShedPerItem is the batch-admission gate: a budget that fits
// small items but not a huge one sheds exactly the huge item with the
// typed shed_memory status while the rest of the batch succeeds — never a
// whole-batch failure — and the counters stay consistent.
func TestBatchMemShedPerItem(t *testing.T) {
	small := &BatchItem{Times: []float64{0.5, 1.0}, Order: 2}
	huge := &BatchItem{Times: make([]float64, 4096), Order: 2}
	for i := range huge.Times {
		huge.Times[i] = float64(i) / 100
	}
	// Pick a budget between the two items' estimates so admission is
	// deterministic whatever order the items land in.
	sp := testSpec(0)
	smallNeed := estimateItemWorkingSet(sp, small, 0, "")
	hugeNeed := estimateItemWorkingSet(sp, huge, 0, "")
	if smallNeed*2 >= hugeNeed {
		t.Fatalf("fixture broken: small=%d huge=%d", smallNeed, hugeNeed)
	}
	s := New(Options{Workers: 2, QueueSize: 16, MemBudget: smallNeed*2 + 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := &BatchRequest{Model: sp, Items: []BatchItem{*small, *huge, *small}}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/solve/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := readAll(resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d (mem shed must never fail the batch): %s", resp.StatusCode, raw)
	}
	var out BatchResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 3 {
		t.Fatalf("want 3 item results, got %d", len(out.Items))
	}
	for _, i := range []int{0, 2} {
		if out.Items[i].Status != BatchStatusOK {
			t.Errorf("small item %d: status %q (%s)", i, out.Items[i].Status, out.Items[i].Error)
		}
	}
	if out.Items[1].Status != BatchStatusShedMemory {
		t.Fatalf("huge item: status %q, want %q (%s)", out.Items[1].Status, BatchStatusShedMemory, out.Items[1].Error)
	}
	if !strings.Contains(out.Items[1].Error, "memory budget") {
		t.Fatalf("shed item error not typed: %q", out.Items[1].Error)
	}
	if got := s.metrics.MemShed.Load(); got != 1 {
		t.Fatalf("mem_shed_total = %d, want 1", got)
	}
	if got := s.memGate.InFlight(); got != 0 {
		t.Fatalf("batch left %d bytes reserved", got)
	}
}
