// Package experiments regenerates every table and figure of the paper's
// evaluation (section 7). Each experiment is a pure function returning
// structured data; cmd/somrm-experiments renders them as tables/CSV and the
// repository benchmarks time them. The per-experiment mapping is documented
// in DESIGN.md.
package experiments

import (
	"errors"
	"fmt"

	"somrm/internal/core"
	"somrm/internal/models"
)

// ErrBadArgument is returned for invalid experiment parameters.
var ErrBadArgument = errors.New("experiments: invalid argument")

// PaperVariances are the three variance parameters of Table 1.
var PaperVariances = []float64{0, 1, 10}

// DefaultTimes is the time grid used for the Figure 3/4 series.
func DefaultTimes() []float64 {
	out := make([]float64, 20)
	for i := range out {
		out[i] = 0.05 * float64(i+1)
	}
	return out
}

// smallModel builds the Table 1 model for one variance value.
func smallModel(sigma2 float64) (*core.Model, error) {
	m, err := models.OnOff(models.PaperSmall(sigma2))
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return m, nil
}

// MomentSeries is one figure series: the j-th raw moment of the
// accumulated reward over a time grid, for one variance parameter.
type MomentSeries struct {
	Sigma2 float64
	Times  []float64
	// Values[k][j] = E[B(t_k)^j], j = 0..Order.
	Values [][]float64
	Order  int
}

// Fig3Data holds the Figure 3 content: the mean accumulated reward from
// the all-OFF initial state for each variance, plus the steady-state line
// rate (the mean is variance-independent; the figure verifies that).
type Fig3Data struct {
	Series []MomentSeries // order 1
	// SteadyStateRate is pi_ss . r; the steady-state mean is rate * t.
	SteadyStateRate float64
}

// Fig3 computes the Figure 3 series.
func Fig3(times []float64, eps float64) (*Fig3Data, error) {
	if len(times) == 0 {
		return nil, fmt.Errorf("%w: empty time grid", ErrBadArgument)
	}
	out := &Fig3Data{}
	for _, s2 := range PaperVariances {
		m, err := smallModel(s2)
		if err != nil {
			return nil, err
		}
		series, err := momentSeries(m, s2, times, 1, eps)
		if err != nil {
			return nil, err
		}
		out.Series = append(out.Series, *series)
	}
	m, err := smallModel(0)
	if err != nil {
		return nil, err
	}
	rate, err := m.SteadyStateMeanRate()
	if err != nil {
		return nil, err
	}
	out.SteadyStateRate = rate
	return out, nil
}

// Fig4Data holds the Figure 4 content: 2nd and 3rd raw moments over time
// for the three variance parameters.
type Fig4Data struct {
	Series []MomentSeries // order 3
}

// Fig4 computes the Figure 4 series.
func Fig4(times []float64, eps float64) (*Fig4Data, error) {
	if len(times) == 0 {
		return nil, fmt.Errorf("%w: empty time grid", ErrBadArgument)
	}
	out := &Fig4Data{}
	for _, s2 := range PaperVariances {
		m, err := smallModel(s2)
		if err != nil {
			return nil, err
		}
		series, err := momentSeries(m, s2, times, 3, eps)
		if err != nil {
			return nil, err
		}
		out.Series = append(out.Series, *series)
	}
	return out, nil
}

func momentSeries(m *core.Model, sigma2 float64, times []float64, order int, eps float64) (*MomentSeries, error) {
	opts := &core.Options{Epsilon: eps}
	if eps == 0 {
		opts = nil
	}
	s := &MomentSeries{
		Sigma2: sigma2,
		Times:  append([]float64(nil), times...),
		Order:  order,
		Values: make([][]float64, len(times)),
	}
	// One shared randomization sweep serves the whole series (the U^(n)(k)
	// vectors are time independent).
	results, err := m.AccumulatedRewardAt(times, order, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: series: %w", err)
	}
	for k, res := range results {
		s.Values[k] = res.Moments
	}
	return s, nil
}
