package experiments

import (
	"fmt"
	"time"

	"somrm/internal/core"
	"somrm/internal/models"
)

// LargePoint is one time point of Figure 8 / Table 2.
type LargePoint struct {
	T float64
	// Moments[j] = E[B(t)^j], j = 0..3.
	Moments []float64
	// Stats reports G, q, qt and the flop count per iteration the paper
	// quotes for the large model.
	Stats   core.Stats
	Elapsed time.Duration
}

// LargeData holds the Figure 8 / Table 2 reproduction.
type LargeData struct {
	// N is the source count used (200,000 for the full paper run).
	N      int
	Points []LargePoint
}

// FigLarge evaluates the first three moments of the large ON-OFF model at
// the paper's five time points (0.01..0.05) with eps = 1e-9. scale divides
// the source count: scale=1 is the full N=200,000 paper model (minutes of
// CPU); the harness default is scale=100 (N=2,000), which preserves the
// structure (tridiagonal Q', 3 nonzeros per row) at laptop cost.
func FigLarge(scale int, eps float64) (*LargeData, error) {
	if scale < 1 {
		return nil, fmt.Errorf("%w: scale %d", ErrBadArgument, scale)
	}
	p := models.PaperLarge()
	p.N /= scale
	p.C /= float64(scale)
	if p.N < 2 {
		return nil, fmt.Errorf("%w: scale %d leaves %d sources", ErrBadArgument, scale, p.N)
	}
	m, err := models.OnOff(p)
	if err != nil {
		return nil, err
	}
	if eps == 0 {
		eps = 1e-9
	}
	out := &LargeData{N: p.N}
	for _, t := range []float64{0.01, 0.02, 0.03, 0.04, 0.05} {
		start := time.Now()
		res, err := m.AccumulatedReward(t, 3, &core.Options{Epsilon: eps})
		if err != nil {
			return nil, fmt.Errorf("experiments: large model t=%g: %w", t, err)
		}
		out.Points = append(out.Points, LargePoint{
			T:       t,
			Moments: res.Moments,
			Stats:   res.Stats,
			Elapsed: time.Since(start),
		})
	}
	return out, nil
}
