package experiments

import (
	"fmt"
	"math"

	"somrm/internal/core"
	"somrm/internal/laplace"
	"somrm/internal/momentbounds"
)

// BoundsPoint is one x-position of the Figure 5-7 staircase curves.
type BoundsPoint struct {
	X            float64
	Lower, Upper float64
	// ExactCDF is the Gil-Pelaez transform-inversion value of the same
	// CDF, available for small models as an independent check that the
	// bounds bracket the true distribution (NaN when not computed).
	ExactCDF float64
}

// BoundsData holds one of Figures 5-7: moment-based bounds for the
// distribution of the accumulated reward at t = 0.5.
type BoundsData struct {
	Sigma2 float64
	T      float64
	// MomentsRequested is the number of moments asked for (the paper uses
	// 23); MomentsUsable is the depth the float64 Hankel conditioning
	// admitted (2 * nodes).
	MomentsRequested, MomentsUsable int
	Points                          []BoundsPoint
	// Moments are the computed raw moments fed to the bound machinery.
	Moments []float64
}

// FigBounds computes the Figure 5/6/7 data for one variance parameter.
// The paper evaluates 23 moments at t = 0.5 and plots CDF bounds.
func FigBounds(sigma2, t float64, numMoments, points int, eps float64) (*BoundsData, error) {
	if numMoments < 2 {
		return nil, fmt.Errorf("%w: need at least 2 moments, got %d", ErrBadArgument, numMoments)
	}
	if points < 2 {
		return nil, fmt.Errorf("%w: need at least 2 plot points, got %d", ErrBadArgument, points)
	}
	m, err := smallModel(sigma2)
	if err != nil {
		return nil, err
	}
	opts := &core.Options{Epsilon: eps}
	if eps == 0 {
		opts = nil
	}
	res, err := m.AccumulatedReward(t, numMoments, opts)
	if err != nil {
		return nil, err
	}
	est, err := momentbounds.New(res.Moments)
	if err != nil {
		return nil, fmt.Errorf("experiments: bounds: %w", err)
	}

	out := &BoundsData{
		Sigma2:           sigma2,
		T:                t,
		MomentsRequested: numMoments,
		MomentsUsable:    2 * est.MaxNodes(),
		Moments:          res.Moments,
	}
	mean := est.Mean()
	sd := est.StdDev()
	lo := mean - 5*sd
	hi := mean + 5*sd
	xs := make([]float64, points)
	for k := 0; k < points; k++ {
		xs[k] = lo + (hi-lo)*float64(k)/float64(points-1)
	}

	// Exact CDF overlay by batched Gil-Pelaez inversion (small models
	// only): the characteristic function is evaluated once per frequency
	// for the whole x grid.
	exact := make([]float64, points)
	for k := range exact {
		exact[k] = math.NaN()
	}
	if m.N() <= 64 {
		tr, err := laplace.NewTransformer(m)
		if err != nil {
			return nil, fmt.Errorf("experiments: bounds: %w", err)
		}
		cdfs, err := tr.CDFBatch(t, xs, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: exact CDF: %w", err)
		}
		pi := m.Initial()
		for k := range xs {
			var agg float64
			for i, p := range pi {
				agg += p * cdfs[k][i]
			}
			exact[k] = agg
		}
	}

	for k, x := range xs {
		b, err := est.CDFBounds(x)
		if err != nil {
			return nil, fmt.Errorf("experiments: bounds at x=%g: %w", x, err)
		}
		out.Points = append(out.Points, BoundsPoint{X: x, Lower: b.Lower, Upper: b.Upper, ExactCDF: exact[k]})
	}
	return out, nil
}
