package experiments

import (
	"fmt"

	"somrm/internal/core"
	"somrm/internal/ctmc"
	"somrm/internal/sim"
)

// Fig1Model builds the small demonstration model behind Figure 1: a
// four-state chain where state 2 (index 1) carries the paper's highlighted
// parameters r = 3, sigma^2 = 2, so large-variance excursions are visible
// on a sampled path.
func Fig1Model() (*core.Model, error) {
	rates := [][]float64{
		{0, 2, 0, 1},
		{1, 0, 2, 0},
		{0, 1, 0, 2},
		{2, 0, 1, 0},
	}
	gen, err := ctmc.NewGeneratorFromRates(4, func(i, j int) float64 { return rates[i][j] })
	if err != nil {
		return nil, fmt.Errorf("experiments: fig1 model: %w", err)
	}
	m, err := core.New(gen,
		[]float64{1, 3, 0.5, -0.5},
		[]float64{0.2, 2, 0.5, 0.1},
		[]float64{1, 0, 0, 0})
	if err != nil {
		return nil, fmt.Errorf("experiments: fig1 model: %w", err)
	}
	return m, nil
}

// Fig1 samples one joint (state, reward) trajectory on a fine grid, the
// content of Figure 1.
func Fig1(horizon, dt float64, seed int64) (*sim.Trajectory, error) {
	m, err := Fig1Model()
	if err != nil {
		return nil, err
	}
	s, err := sim.New(m, seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	tr, err := s.SampleTrajectory(horizon, dt)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return tr, nil
}
