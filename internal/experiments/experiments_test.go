package experiments

import (
	"errors"
	"math"
	"testing"
)

func TestFig3MeanIndependentOfVariance(t *testing.T) {
	times := []float64{0.1, 0.5, 1}
	data, err := Fig3(times, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Series) != 3 {
		t.Fatalf("series = %d", len(data.Series))
	}
	for k := range times {
		m0 := data.Series[0].Values[k][1]
		for s := 1; s < 3; s++ {
			if math.Abs(data.Series[s].Values[k][1]-m0) > 1e-7*(1+math.Abs(m0)) {
				t.Errorf("t=%g: mean differs across variances", times[k])
			}
		}
	}
	// Steady-state rate = 32*4/7.
	if math.Abs(data.SteadyStateRate-32.0*4/7) > 1e-9 {
		t.Errorf("steady rate = %g", data.SteadyStateRate)
	}
	// Transient mean from all-OFF exceeds the steady-state line.
	for k, tt := range times {
		if data.Series[0].Values[k][1] <= data.SteadyStateRate*tt {
			t.Errorf("t=%g: transient mean below steady-state line", tt)
		}
	}
	if _, err := Fig3(nil, 1e-9); !errors.Is(err, ErrBadArgument) {
		t.Errorf("empty times: %v", err)
	}
}

func TestFig4MomentsIncreaseWithVariance(t *testing.T) {
	times := []float64{0.25, 0.5}
	data, err := Fig4(times, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	for k := range times {
		for _, j := range []int{2, 3} {
			v0 := data.Series[0].Values[k][j]
			v1 := data.Series[1].Values[k][j]
			v10 := data.Series[2].Values[k][j]
			if !(v0 < v1 && v1 < v10) {
				t.Errorf("t=%g moment %d: %g, %g, %g not increasing", times[k], j, v0, v1, v10)
			}
		}
	}
	if _, err := Fig4(nil, 0); !errors.Is(err, ErrBadArgument) {
		t.Errorf("empty times: %v", err)
	}
}

func TestFigBounds(t *testing.T) {
	data, err := FigBounds(1, 0.5, 12, 9, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if data.MomentsUsable < 8 {
		t.Errorf("usable depth = %d", data.MomentsUsable)
	}
	if len(data.Points) != 9 {
		t.Fatalf("points = %d", len(data.Points))
	}
	prevL, prevU := -1.0, -1.0
	for _, p := range data.Points {
		if p.Lower < 0 || p.Upper > 1 || p.Lower > p.Upper {
			t.Errorf("malformed bounds at x=%g: [%g, %g]", p.X, p.Lower, p.Upper)
		}
		// The staircase curves are monotone in x.
		if p.Lower < prevL-1e-9 || p.Upper < prevU-1e-9 {
			t.Errorf("bounds not monotone at x=%g", p.X)
		}
		prevL, prevU = p.Lower, p.Upper
		// The Gil-Pelaez exact CDF must lie inside the bounds (allowing
		// its own quadrature error).
		if !math.IsNaN(p.ExactCDF) {
			if p.ExactCDF < p.Lower-2e-3 || p.ExactCDF > p.Upper+2e-3 {
				t.Errorf("exact CDF %.5f outside bounds [%.5f, %.5f] at x=%g",
					p.ExactCDF, p.Lower, p.Upper, p.X)
			}
		}
	}
	if _, err := FigBounds(1, 0.5, 1, 9, 0); !errors.Is(err, ErrBadArgument) {
		t.Errorf("too few moments: %v", err)
	}
	if _, err := FigBounds(1, 0.5, 12, 1, 0); !errors.Is(err, ErrBadArgument) {
		t.Errorf("too few points: %v", err)
	}
}

func TestFigLargeScaled(t *testing.T) {
	data, err := FigLarge(1000, 1e-9) // N = 200 sources
	if err != nil {
		t.Fatal(err)
	}
	if data.N != 200 {
		t.Fatalf("N = %d", data.N)
	}
	if len(data.Points) != 5 {
		t.Fatalf("points = %d", len(data.Points))
	}
	prevMean := 0.0
	for _, p := range data.Points {
		if p.Stats.G <= 0 {
			t.Errorf("t=%g: G = %d", p.T, p.Stats.G)
		}
		if p.Moments[1] <= prevMean {
			t.Errorf("mean not increasing at t=%g", p.T)
		}
		prevMean = p.Moments[1]
		// q = N*q_rate: max exit rate of the ON-OFF chain = N*alpha = 800.
		if p.Stats.Q != 800 {
			t.Errorf("q = %g, want 800", p.Stats.Q)
		}
	}
	if _, err := FigLarge(0, 0); !errors.Is(err, ErrBadArgument) {
		t.Errorf("scale 0: %v", err)
	}
	if _, err := FigLarge(300_000, 0); !errors.Is(err, ErrBadArgument) {
		t.Errorf("over-scale: %v", err)
	}
}

func TestCrossCheckAgreement(t *testing.T) {
	data, err := CrossCheck(1, 0.3, 2, 20_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if data.MaxRelDiffODE > 1e-8 {
		t.Errorf("randomization vs ODE rel diff = %g", data.MaxRelDiffODE)
	}
	if !data.SimWithinCI {
		t.Error("simulation outside 95% CI (rerun with another seed if flaky)")
	}
	if _, err := CrossCheck(1, 0.3, 0, 100, 1); !errors.Is(err, ErrBadArgument) {
		t.Errorf("order 0: %v", err)
	}
	if _, err := CrossCheck(1, 0.3, 2, 1, 1); !errors.Is(err, ErrBadArgument) {
		t.Errorf("reps 1: %v", err)
	}
}

func TestErrorBoundAblation(t *testing.T) {
	points, err := ErrorBoundAblation(10, 0.3, 2, []float64{1e-4, 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.ActualError > p.Epsilon {
			t.Errorf("eps=%g: actual error %g exceeds epsilon", p.Epsilon, p.ActualError)
		}
		if p.Bound > p.Epsilon {
			t.Errorf("eps=%g: bound at G %g exceeds epsilon", p.Epsilon, p.Bound)
		}
	}
	if points[1].G <= points[0].G {
		t.Error("tighter epsilon should need larger G")
	}
}

func TestFig1Trajectory(t *testing.T) {
	tr, err := Fig1(1.0, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Times) < 90 {
		t.Errorf("grid points = %d", len(tr.Times))
	}
	m, err := Fig1Model()
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 4 {
		t.Errorf("fig1 model states = %d", m.N())
	}
}
