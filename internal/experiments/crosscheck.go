package experiments

import (
	"fmt"
	"math"
	"time"

	"somrm/internal/core"
	"somrm/internal/odesolver"
	"somrm/internal/sim"
)

// CrossCheckData reproduces the paper's validation claim that the
// randomization method, an ODE solver on eq. (6) and a simulation tool
// "gave exactly the same results, however the randomization was far the
// fastest".
type CrossCheckData struct {
	Sigma2 float64
	T      float64
	Order  int

	Randomization []float64
	ODE           []float64
	Simulation    []float64
	SimHalfWidth  []float64 // 95% CI half-widths

	RandomizationTime, ODETime, SimulationTime time.Duration

	// MaxRelDiffODE is the largest relative difference between the
	// randomization and ODE moments; SimWithinCI reports whether every
	// simulated moment lies within 3 standard errors of the randomization
	// value (a 95% interval per moment would flag ~5% of healthy runs).
	MaxRelDiffODE float64
	SimWithinCI   bool
	SimReps       int
}

// CrossCheck runs all three solution methods on the Table 1 model.
func CrossCheck(sigma2, t float64, order, simReps int, seed int64) (*CrossCheckData, error) {
	if order < 1 {
		return nil, fmt.Errorf("%w: order %d", ErrBadArgument, order)
	}
	if simReps < 2 {
		return nil, fmt.Errorf("%w: simReps %d", ErrBadArgument, simReps)
	}
	m, err := smallModel(sigma2)
	if err != nil {
		return nil, err
	}
	out := &CrossCheckData{Sigma2: sigma2, T: t, Order: order, SimReps: simReps}

	start := time.Now()
	res, err := m.AccumulatedReward(t, order, nil)
	if err != nil {
		return nil, err
	}
	out.RandomizationTime = time.Since(start)
	out.Randomization = res.Moments

	start = time.Now()
	vm, err := odesolver.MomentsByODE(m, t, order, &odesolver.MomentOptions{Method: odesolver.MethodRK4})
	if err != nil {
		return nil, err
	}
	out.ODETime = time.Since(start)
	out.ODE = aggregate(vm, m.Initial())

	start = time.Now()
	s, err := sim.New(m, seed)
	if err != nil {
		return nil, err
	}
	est, err := s.EstimateMoments(t, order, simReps)
	if err != nil {
		return nil, err
	}
	out.SimulationTime = time.Since(start)
	out.Simulation = est.Moments
	out.SimHalfWidth = make([]float64, order+1)
	out.SimWithinCI = true
	for j := 0; j <= order; j++ {
		hw, err := est.HalfWidth95(j)
		if err != nil {
			return nil, err
		}
		out.SimHalfWidth[j] = hw
		if math.Abs(est.Moments[j]-res.Moments[j]) > hw/1.96*3+1e-12 {
			out.SimWithinCI = false
		}
	}
	for j := 1; j <= order; j++ {
		denom := math.Abs(res.Moments[j])
		if denom == 0 {
			denom = 1
		}
		if d := math.Abs(res.Moments[j]-out.ODE[j]) / denom; d > out.MaxRelDiffODE {
			out.MaxRelDiffODE = d
		}
	}
	return out, nil
}

func aggregate(vm [][]float64, pi []float64) []float64 {
	out := make([]float64, len(vm))
	for j := range vm {
		var s float64
		for i, p := range pi {
			s += p * vm[j][i]
		}
		out[j] = s
	}
	return out
}

// ErrorBoundPoint is one epsilon of the error-bound tightness ablation.
type ErrorBoundPoint struct {
	Epsilon     float64
	G           int
	Bound       float64
	ActualError float64 // max absolute deviation from a high-accuracy reference
}

// ErrorBoundAblation quantifies how tight the eq. (11) truncation bound is:
// for each requested epsilon it solves the Table 1 model and compares
// against an eps=1e-14 reference.
func ErrorBoundAblation(sigma2, t float64, order int, epsilons []float64) ([]ErrorBoundPoint, error) {
	m, err := smallModel(sigma2)
	if err != nil {
		return nil, err
	}
	ref, err := m.AccumulatedReward(t, order, &core.Options{Epsilon: 1e-14})
	if err != nil {
		return nil, err
	}
	out := make([]ErrorBoundPoint, 0, len(epsilons))
	for _, eps := range epsilons {
		res, err := m.AccumulatedReward(t, order, &core.Options{Epsilon: eps})
		if err != nil {
			return nil, err
		}
		var worst float64
		for j := 0; j <= order; j++ {
			if d := math.Abs(res.Moments[j] - ref.Moments[j]); d > worst {
				worst = d
			}
		}
		out = append(out, ErrorBoundPoint{
			Epsilon:     eps,
			G:           res.Stats.G,
			Bound:       res.Stats.ErrorBound,
			ActualError: worst,
		})
	}
	return out, nil
}
