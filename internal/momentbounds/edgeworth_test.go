package momentbounds

import (
	"errors"
	"math"
	"testing"

	"somrm/internal/brownian"
)

func TestEdgeworthExactForNormal(t *testing.T) {
	mu, s2 := 1.5, 4.0
	raw := normalMoments(t, mu, s2, 7)
	e, err := NewEdgeworth(raw, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-3, 0, 1.5, 4, 7} {
		wantD := brownian.NormalPDF(x, mu, s2)
		if got := e.Density(x); math.Abs(got-wantD) > 1e-10 {
			t.Errorf("density(%g) = %.12g, want %.12g", x, got, wantD)
		}
		wantC := brownian.NormalCDF(x, mu, s2)
		if got := e.CDF(x); math.Abs(got-wantC) > 1e-10 {
			t.Errorf("cdf(%g) = %.12g, want %.12g", x, got, wantC)
		}
	}
}

func TestEdgeworthCapturesSkewness(t *testing.T) {
	// Exponential(1): raw moments j!. The order-3 series must shift
	// probability toward the right tail relative to the normal fit.
	raw := []float64{1, 1, 2, 6}
	e, err := NewEdgeworth(raw, 3)
	if err != nil {
		t.Fatal(err)
	}
	// True CDF at the mean: 1 - e^{-1} ~ 0.632; normal fit says 0.5.
	got := e.CDF(1)
	if got <= 0.52 {
		t.Errorf("skew-corrected CDF at mean = %g, want > 0.52 (normal fit 0.5, truth 0.632)", got)
	}
	// Density integrates to ~1 on a wide grid.
	var mass float64
	for x := -4.0; x < 10; x += 0.01 {
		mass += e.Density(x) * 0.01
	}
	if math.Abs(mass-1) > 0.05 {
		t.Errorf("density mass = %g", mass)
	}
}

func TestEdgeworthAgainstTrueCDFOnMixture(t *testing.T) {
	// A mildly skewed two-point-drift mixture: compare the order-4 series
	// against the exact CDF within a coarse tolerance (the series is an
	// approximation, not a bound).
	raw := normalMixtureMoments(0.7, 0, 1, 0.3, 2, 1.5, 7)
	e, err := NewEdgeworth(raw, 4)
	if err != nil {
		t.Fatal(err)
	}
	cdf := func(x float64) float64 {
		return 0.7*brownian.NormalCDF(x, 0, 1) + 0.3*brownian.NormalCDF(x, 2, 1.5)
	}
	for _, x := range []float64{-1, 0, 0.6, 1.5, 3} {
		if got := e.CDF(x); math.Abs(got-cdf(x)) > 0.03 {
			t.Errorf("cdf(%g) = %.4f, exact %.4f", x, got, cdf(x))
		}
	}
}

// normalMixtureMoments returns raw moments of w1 N(mu1, s1) + w2 N(mu2, s2).
func normalMixtureMoments(w1, mu1, s1, w2, mu2, s2 float64, count int) []float64 {
	raw := make([]float64, count)
	for j := range raw {
		m1, _ := brownian.NormalRawMoment(j, mu1, s1)
		m2, _ := brownian.NormalRawMoment(j, mu2, s2)
		raw[j] = w1*m1 + w2*m2
	}
	return raw
}

func TestEdgeworthErrors(t *testing.T) {
	raw := normalMoments(t, 0, 1, 7)
	if _, err := NewEdgeworth(raw, 7); !errors.Is(err, ErrBadMoments) {
		t.Errorf("order 7: %v", err)
	}
	if _, err := NewEdgeworth(raw[:3], 4); !errors.Is(err, ErrBadMoments) {
		t.Errorf("too few moments: %v", err)
	}
	if _, err := NewEdgeworth([]float64{2, 0, 1, 0}, 3); !errors.Is(err, ErrBadMoments) {
		t.Errorf("m0 != 1: %v", err)
	}
	if _, err := NewEdgeworth([]float64{1, 2, 4, 8}, 3); !errors.Is(err, ErrDegenerate) {
		t.Errorf("zero variance: %v", err)
	}
	// Low orders clamp to 2 (pure normal fit).
	e, err := NewEdgeworth(raw[:4], 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.CDF(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("normal-fit CDF(mean) = %g", got)
	}
}

func TestHermitePolynomials(t *testing.T) {
	// He_3(x) = x^3 - 3x; He_4 = x^4 - 6x^2 + 3.
	for _, z := range []float64{-2, 0.5, 3} {
		if got := hermiteAt(3, z); math.Abs(got-(z*z*z-3*z)) > 1e-12 {
			t.Errorf("He_3(%g) = %g", z, got)
		}
		if got := hermiteAt(4, z); math.Abs(got-(z*z*z*z-6*z*z+3)) > 1e-12 {
			t.Errorf("He_4(%g) = %g", z, got)
		}
	}
	if hermiteAt(0, 2) != 1 || hermiteAt(1, 2) != 2 {
		t.Error("He_0/He_1 wrong")
	}
}
