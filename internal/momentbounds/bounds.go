package momentbounds

import (
	"fmt"
	"math"
)

// Bounds is a sharp lower/upper pair for the CDF value F(c).
type Bounds struct {
	Lower, Upper float64
}

// Width returns Upper - Lower.
func (b Bounds) Width() float64 { return b.Upper - b.Lower }

// CDFBounds returns sharp moment bounds on F(c) = P(X <= c) using the
// canonical representation anchored at c with MaxNodes() internal nodes
// (the tightest available from the supplied moments).
func (e *Estimator) CDFBounds(c float64) (Bounds, error) {
	return e.CDFBoundsWithNodes(c, e.maxNodes)
}

// CDFBoundsWithNodes returns the Chebyshev-Markov bounds computed from the
// canonical representation with the given number of internal nodes
// (1..MaxNodes). Fewer nodes use fewer moments and give looser bounds,
// which is how the moment-count sensitivity in EXPERIMENTS.md is produced.
func (e *Estimator) CDFBoundsWithNodes(c float64, nodes int) (Bounds, error) {
	if math.IsNaN(c) {
		return Bounds{}, fmt.Errorf("%w: point is NaN", ErrBadMoments)
	}
	if math.IsInf(c, -1) {
		return Bounds{Lower: 0, Upper: 0}, nil
	}
	if math.IsInf(c, 1) {
		return Bounds{Lower: 1, Upper: 1}, nil
	}
	zc := (c - e.mean) / e.sd

	q, err := e.radauAvoidingSingularity(nodes, zc)
	if err != nil {
		return Bounds{}, err
	}

	// Identify the anchored atom (the node closest to c) and sum masses.
	zcBack := e.mean + e.sd*zc
	anchor := 0
	best := math.Inf(1)
	for i, x := range q.Nodes {
		if d := math.Abs(x - zcBack); d < best {
			best = d
			anchor = i
		}
	}
	var lower float64
	for i, x := range q.Nodes {
		if i == anchor {
			continue
		}
		if x < zcBack {
			lower += q.Weights[i]
		}
	}
	upper := lower + q.Weights[anchor]
	return clampBounds(lower, upper), nil
}

// radauAvoidingSingularity computes the Radau rule at zc, nudging the
// anchor by a few ulps when zc coincides with a Gauss node (which makes the
// shifted tridiagonal solve singular).
func (e *Estimator) radauAvoidingSingularity(nodes int, zc float64) (*Quadrature, error) {
	var lastErr error
	nudge := 0.0
	for attempt := 0; attempt < 4; attempt++ {
		q, err := e.radauQuadrature(nodes, zc+nudge)
		if err == nil {
			return q, nil
		}
		lastErr = err
		if nudge == 0 {
			nudge = 1e-9 * math.Max(1, math.Abs(zc))
		} else {
			nudge *= 100
		}
	}
	return nil, lastErr
}

// TailBounds returns sharp bounds on P(X > c) = 1 - F(c).
func (e *Estimator) TailBounds(c float64) (Bounds, error) {
	b, err := e.CDFBounds(c)
	if err != nil {
		return Bounds{}, err
	}
	return clampBounds(1-b.Upper, 1-b.Lower), nil
}

func clampBounds(lower, upper float64) Bounds {
	if lower < 0 {
		lower = 0
	}
	if upper > 1 {
		upper = 1
	}
	if upper < lower {
		upper = lower
	}
	return Bounds{Lower: lower, Upper: upper}
}
