package momentbounds

import (
	"fmt"
	"math"
)

// EdgeworthEstimate is a smooth density/CDF approximation built from the
// first moments (Gram-Charlier A series). It complements the hard
// Chebyshev-Markov bounds of the Estimator: the bounds are guaranteed but
// wide, the series is pointwise approximate but smooth — the paper's
// section 7 notes that the distribution may also be "approximate[d] ...
// based on its moments".
type EdgeworthEstimate struct {
	mean, sd float64
	// coef[j] is the Gram-Charlier coefficient of the degree-j Hermite
	// term; coef[0] = 1, coef[1] = coef[2] = 0.
	coef []float64
}

// NewEdgeworth builds a Gram-Charlier A estimate from raw moments
// (raw[0] = 1), using terms up to the given order (3..6; higher-order
// terms use moments up to the same order). The distribution must have
// positive variance.
func NewEdgeworth(raw []float64, order int) (*EdgeworthEstimate, error) {
	if order < 2 {
		order = 2
	}
	if order > 6 {
		return nil, fmt.Errorf("%w: Gram-Charlier order %d > 6 is not supported", ErrBadMoments, order)
	}
	if len(raw) < order+1 {
		return nil, fmt.Errorf("%w: need %d moments for order %d, got %d", ErrBadMoments, order+1, order, len(raw))
	}
	if math.Abs(raw[0]-1) > 1e-9 {
		return nil, fmt.Errorf("%w: m0=%g, want 1", ErrBadMoments, raw[0])
	}
	mean := raw[1]
	variance := raw[2] - mean*mean
	if variance <= 0 {
		return nil, fmt.Errorf("%w: variance %g", ErrDegenerate, variance)
	}
	sd := math.Sqrt(variance)
	std, err := standardize(raw[:order+1], mean, sd)
	if err != nil {
		return nil, err
	}

	// Gram-Charlier coefficients c_j = E[He_j(Z)]/j! of the standardized
	// variable Z, with He_j the probabilists' Hermite polynomials.
	coef := make([]float64, order+1)
	coef[0] = 1
	fact := 1.0
	for j := 1; j <= order; j++ {
		fact *= float64(j)
		coef[j] = hermiteExpectation(j, std) / fact
	}
	// By construction c_1 = c_2 = 0 for standardized moments; snap exact.
	if order >= 1 {
		coef[1] = 0
	}
	if order >= 2 {
		coef[2] = 0
	}
	return &EdgeworthEstimate{mean: mean, sd: sd, coef: coef}, nil
}

// hermiteExpectation computes E[He_j(Z)] from the standardized raw moments
// using the explicit Hermite coefficient recursion.
func hermiteExpectation(j int, std []float64) float64 {
	// He_j(x) = sum_k h_k x^k with the recursion He_{j+1} = x He_j - j He_{j-1}.
	prev := []float64{1}   // He_0
	cur := []float64{0, 1} // He_1
	if j == 0 {
		return 1
	}
	for d := 1; d < j; d++ {
		next := make([]float64, d+2)
		for k, c := range cur {
			next[k+1] += c // x * He_d
		}
		for k, c := range prev {
			next[k] -= float64(d) * c // - d He_{d-1}
		}
		prev, cur = cur, next
	}
	var s float64
	for k, c := range cur {
		s += c * std[k]
	}
	return s
}

// Density evaluates the Gram-Charlier density estimate at x. It can be
// slightly negative in the tails (a known artifact of the series); values
// are clipped at zero.
func (e *EdgeworthEstimate) Density(x float64) float64 {
	z := (x - e.mean) / e.sd
	phi := math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
	s := e.seriesAt(z)
	d := phi * s / e.sd
	if d < 0 {
		return 0
	}
	return d
}

// CDF evaluates the Gram-Charlier CDF estimate at x, clipped to [0, 1].
// It uses the identity integral phi(z) He_j(z) dz = -phi(z) He_{j-1}(z).
func (e *EdgeworthEstimate) CDF(x float64) float64 {
	z := (x - e.mean) / e.sd
	phi := math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
	out := 0.5 * math.Erfc(-z/math.Sqrt2)
	for j := 3; j < len(e.coef); j++ {
		if e.coef[j] == 0 {
			continue
		}
		out -= e.coef[j] * phi * hermiteAt(j-1, z)
	}
	if out < 0 {
		return 0
	}
	if out > 1 {
		return 1
	}
	return out
}

func (e *EdgeworthEstimate) seriesAt(z float64) float64 {
	s := 1.0
	for j := 3; j < len(e.coef); j++ {
		if e.coef[j] != 0 {
			s += e.coef[j] * hermiteAt(j, z)
		}
	}
	return s
}

// hermiteAt evaluates the probabilists' Hermite polynomial He_j at z.
func hermiteAt(j int, z float64) float64 {
	switch j {
	case 0:
		return 1
	case 1:
		return z
	}
	prev, cur := 1.0, z
	for d := 1; d < j; d++ {
		prev, cur = cur, z*cur-float64(d)*prev
	}
	return cur
}
