// Package momentbounds bounds the distribution of a random variable from
// its raw moments, reproducing the moment-based distribution estimation the
// paper cites as reference [12] (Rácz, Tari, Telek) and uses for
// Figures 5-7: sharp Chebyshev-Markov bounds
//
//	sum_{x_i < c} w_i  <=  F(c)  <=  sum_{x_i <= c} w_i
//
// computed from the canonical (principal) representation of the moment
// sequence anchored at the point c. The machinery is classical orthogonal
// polynomial theory: a Jacobi matrix recovered from the Hankel moment
// matrix by Cholesky factorization (Golub-Welsch), Gauss quadrature from
// its eigendecomposition, and a Gauss-Radau modification to prescribe the
// node at c.
//
// Hankel matrices of high-order raw moments are notoriously
// ill-conditioned; the estimator first standardizes the variable to zero
// mean and unit variance (which the bounds are equivariant under) and
// automatically reduces the representation size until the Cholesky
// factorization succeeds, exposing the usable depth via MaxNodes.
package momentbounds

import (
	"errors"
	"fmt"
	"math"

	"somrm/internal/linalg"
)

var (
	// ErrBadMoments is returned when the input is not a plausible moment
	// sequence of a probability distribution.
	ErrBadMoments = errors.New("momentbounds: invalid moment sequence")
	// ErrDegenerate is returned when the distribution is (numerically) a
	// point mass, for which the bounds are a step function.
	ErrDegenerate = errors.New("momentbounds: degenerate (zero variance) distribution")
)

// Estimator computes distribution bounds from a raw moment sequence.
type Estimator struct {
	mean, sd float64
	// std[j] = E[((X-mean)/sd)^j], j = 0..len-1.
	std []float64
	// Jacobi recurrence of the standardized measure: alpha[k] diagonal
	// terms and b[k] (k >= 1) off-diagonal terms, with b[0] unused.
	alpha []float64
	b     []float64
	// maxNodes is the largest usable Gauss quadrature size.
	maxNodes int
}

// New builds an estimator from raw moments raw[j] = E[X^j], with
// raw[0] = 1. At least moments up to order 2 are required; more moments
// tighten the bounds (the paper uses 23).
func New(raw []float64) (*Estimator, error) {
	if len(raw) < 3 {
		return nil, fmt.Errorf("%w: need at least m0..m2, got %d values", ErrBadMoments, len(raw))
	}
	if math.Abs(raw[0]-1) > 1e-9 {
		return nil, fmt.Errorf("%w: m0=%g, want 1", ErrBadMoments, raw[0])
	}
	for j, m := range raw {
		if math.IsNaN(m) || math.IsInf(m, 0) {
			return nil, fmt.Errorf("%w: m%d=%g", ErrBadMoments, j, m)
		}
	}
	mean := raw[1]
	variance := raw[2] - mean*mean
	if variance < 0 {
		if variance < -1e-9*math.Abs(raw[2]) {
			return nil, fmt.Errorf("%w: negative variance %g", ErrBadMoments, variance)
		}
		variance = 0
	}
	if variance == 0 {
		return nil, fmt.Errorf("%w: mean %g", ErrDegenerate, mean)
	}
	sd := math.Sqrt(variance)

	std, err := standardize(raw, mean, sd)
	if err != nil {
		return nil, err
	}
	e := &Estimator{mean: mean, sd: sd, std: std}
	if err := e.buildJacobi(); err != nil {
		return nil, err
	}
	return e, nil
}

// standardize converts raw moments of X into raw moments of
// Z = (X - mean)/sd by the binomial shift theorem.
func standardize(raw []float64, mean, sd float64) ([]float64, error) {
	n := len(raw) - 1
	out := make([]float64, n+1)
	binom := make([]float64, n+1)
	for j := 0; j <= n; j++ {
		binom[j] = 1
		for l := j - 1; l > 0; l-- {
			binom[l] += binom[l-1]
		}
		var s float64
		for l := 0; l <= j; l++ {
			s += binom[l] * raw[l] * math.Pow(-mean, float64(j-l))
		}
		out[j] = s / math.Pow(sd, float64(j))
		if math.IsNaN(out[j]) || math.IsInf(out[j], 0) {
			return nil, fmt.Errorf("%w: standardized m%d overflowed", ErrBadMoments, j)
		}
	}
	// By construction out[0] = 1, out[1] ~ 0, out[2] ~ 1; snap the first
	// three to their exact values to avoid rounding residue.
	out[0], out[1], out[2] = 1, 0, 1
	return out, nil
}

// buildJacobi recovers the three-term recurrence of the orthonormal
// polynomials of the standardized measure from the Cholesky factor of its
// Hankel moment matrix, shrinking the matrix until the factorization
// succeeds (numerical positive definiteness is exactly the usable depth of
// the moment information).
func (e *Estimator) buildJacobi() error {
	// Largest k with all needed moments available: Hankel of size
	// (k+1)x(k+1) uses moments up to 2k.
	maxK := (len(e.std) - 1) / 2
	for k := maxK; k >= 1; k-- {
		h := linalg.NewDense(k+1, k+1)
		for i := 0; i <= k; i++ {
			for j := 0; j <= k; j++ {
				h.Set(i, j, e.std[i+j])
			}
		}
		l, err := linalg.Cholesky(h)
		if err != nil {
			continue // not numerically PD at this depth; shrink
		}
		// R = L^T (upper). alpha_j = r_{j,j+1}/r_{j,j} - r_{j-1,j}/r_{j-1,j-1};
		// b_j = r_{j,j}/r_{j-1,j-1}.
		r := func(i, j int) float64 { return l.At(j, i) }
		e.alpha = make([]float64, k)
		e.b = make([]float64, k+1) // b[1..k]
		for j := 0; j < k; j++ {
			a := r(j, j+1) / r(j, j)
			if j > 0 {
				a -= r(j-1, j) / r(j-1, j-1)
			}
			e.alpha[j] = a
		}
		for j := 1; j <= k; j++ {
			e.b[j] = r(j, j) / r(j-1, j-1)
		}
		e.maxNodes = k
		return nil
	}
	return fmt.Errorf("%w: Hankel matrix not positive definite at any depth", ErrBadMoments)
}

// MaxNodes returns the largest usable Gauss quadrature size (the number of
// support points of the canonical representations). It is limited by both
// the number of supplied moments and their numerical conditioning.
func (e *Estimator) MaxNodes() int { return e.maxNodes }

// Mean returns E[X] from the input moments.
func (e *Estimator) Mean() float64 { return e.mean }

// StdDev returns the standard deviation from the input moments.
func (e *Estimator) StdDev() float64 { return e.sd }
