package momentbounds

import (
	"fmt"
	"math"

	"somrm/internal/linalg"
)

// Quadrature is a discrete distribution (nodes and probability masses) that
// matches the input moment sequence — a canonical representation of the
// moment problem.
type Quadrature struct {
	// Nodes are support points in ascending order, Weights the matching
	// probability masses (summing to 1).
	Nodes, Weights []float64
}

// GaussQuadrature returns the n-point Gauss quadrature of the moment
// sequence: the unique discrete distribution with n atoms matching moments
// m_0..m_{2n-1} (the "lower principal representation"). n must be between
// 1 and MaxNodes().
func (e *Estimator) GaussQuadrature(n int) (*Quadrature, error) {
	if n < 1 || n > e.maxNodes {
		return nil, fmt.Errorf("%w: %d nodes, usable range 1..%d", ErrBadMoments, n, e.maxNodes)
	}
	diag := append([]float64(nil), e.alpha[:n]...)
	off := append([]float64(nil), e.b[1:n]...)
	return e.quadFromJacobi(diag, off)
}

// RadauQuadrature returns the canonical representation with one atom
// prescribed at the standardized point zc and n free atoms: the Gauss-Radau
// rule. It needs n <= MaxNodes().
func (e *Estimator) radauQuadrature(n int, zc float64) (*Quadrature, error) {
	if n < 1 || n > e.maxNodes {
		return nil, fmt.Errorf("%w: %d internal nodes, usable range 1..%d", ErrBadMoments, n, e.maxNodes)
	}
	// Solve (J_n - zc I) y = e_n (last unit vector); the modified last
	// diagonal entry is alpha*_n = zc + b_n^2 * y_{n-1}.
	y, err := solveTridiagShifted(e.alpha[:n], e.b[1:n], zc)
	if err != nil {
		return nil, err
	}
	bn := e.b[n]
	alphaStar := zc + bn*bn*y[n-1]

	diag := make([]float64, n+1)
	copy(diag, e.alpha[:n])
	diag[n] = alphaStar
	off := make([]float64, n)
	copy(off, e.b[1:n])
	off[n-1] = bn
	return e.quadFromJacobi(diag, off)
}

// quadFromJacobi eigen-decomposes the Jacobi matrix and maps nodes back to
// the original variable scale.
func (e *Estimator) quadFromJacobi(diag, off []float64) (*Quadrature, error) {
	eig, first, err := linalg.SymTridiagEigen(diag, off)
	if err != nil {
		return nil, fmt.Errorf("momentbounds: %w", err)
	}
	q := &Quadrature{
		Nodes:   make([]float64, len(eig)),
		Weights: make([]float64, len(eig)),
	}
	var total float64
	for i, z := range eig {
		q.Nodes[i] = e.mean + e.sd*z
		w := first[i] * first[i]
		q.Weights[i] = w
		total += w
	}
	// The first-component squares of a symmetric tridiagonal eigenbasis sum
	// to 1; renormalize to absorb rounding.
	if total <= 0 {
		return nil, fmt.Errorf("%w: vanishing quadrature weights", ErrBadMoments)
	}
	for i := range q.Weights {
		q.Weights[i] /= total
	}
	return q, nil
}

// Moment returns the j-th raw moment of the quadrature (for verification).
func (q *Quadrature) Moment(j int) float64 {
	var s float64
	for i, x := range q.Nodes {
		s += q.Weights[i] * math.Pow(x, float64(j))
	}
	return s
}

// solveTridiagShifted solves (T - c I) y = e_last for the symmetric
// tridiagonal matrix T with the given diagonal and off-diagonal, using
// dense LU with partial pivoting for robustness when c is close to an
// eigenvalue (the caller nudges c in that case).
func solveTridiagShifted(diag, off []float64, c float64) ([]float64, error) {
	n := len(diag)
	a := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, diag[i]-c)
		if i+1 < n {
			a.Set(i, i+1, off[i])
			a.Set(i+1, i, off[i])
		}
	}
	rhs := linalg.NewVector(n)
	rhs[n-1] = 1
	y, err := linalg.SolveLinear(a, rhs)
	if err != nil {
		return nil, fmt.Errorf("momentbounds: radau shift: %w", err)
	}
	return y, nil
}
