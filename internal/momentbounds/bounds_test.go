package momentbounds

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"somrm/internal/brownian"
)

func normalMoments(t *testing.T, mu, s2 float64, count int) []float64 {
	t.Helper()
	raw := make([]float64, count)
	for j := range raw {
		var err error
		raw[j], err = brownian.NormalRawMoment(j, mu, s2)
		if err != nil {
			t.Fatal(err)
		}
	}
	return raw
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); !errors.Is(err, ErrBadMoments) {
		t.Errorf("nil: %v", err)
	}
	if _, err := New([]float64{1, 0}); !errors.Is(err, ErrBadMoments) {
		t.Errorf("too short: %v", err)
	}
	if _, err := New([]float64{2, 0, 1}); !errors.Is(err, ErrBadMoments) {
		t.Errorf("m0 != 1: %v", err)
	}
	if _, err := New([]float64{1, 0, math.NaN()}); !errors.Is(err, ErrBadMoments) {
		t.Errorf("NaN moment: %v", err)
	}
	if _, err := New([]float64{1, 2, 1}); !errors.Is(err, ErrBadMoments) {
		t.Errorf("negative variance: %v", err)
	}
	if _, err := New([]float64{1, 3, 9}); !errors.Is(err, ErrDegenerate) {
		t.Errorf("degenerate: %v", err)
	}
}

func TestEstimatorBasics(t *testing.T) {
	est, err := New(normalMoments(t, 1, 4, 10))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mean()-1) > 1e-12 {
		t.Errorf("Mean = %g", est.Mean())
	}
	if math.Abs(est.StdDev()-2) > 1e-12 {
		t.Errorf("StdDev = %g", est.StdDev())
	}
	if est.MaxNodes() < 3 {
		t.Errorf("MaxNodes = %d, want >= 3 for 9 moments", est.MaxNodes())
	}
}

func TestGaussQuadratureReproducesMoments(t *testing.T) {
	raw := normalMoments(t, -2, 3, 14)
	est, err := New(raw)
	if err != nil {
		t.Fatal(err)
	}
	n := est.MaxNodes()
	q, err := est.GaussQuadrature(n)
	if err != nil {
		t.Fatal(err)
	}
	// n-node Gauss quadrature matches moments 0..2n-1.
	for j := 0; j < 2*n && j < len(raw); j++ {
		got := q.Moment(j)
		scale := 1 + math.Abs(raw[j])
		if math.Abs(got-raw[j]) > 1e-7*scale {
			t.Errorf("moment %d: quad %.12g vs exact %.12g", j, got, raw[j])
		}
	}
	// Weights positive, sum to 1, nodes sorted.
	var sum float64
	for i, w := range q.Weights {
		if w <= 0 {
			t.Errorf("weight %d = %g", i, w)
		}
		sum += w
		if i > 0 && q.Nodes[i] <= q.Nodes[i-1] {
			t.Errorf("nodes not sorted at %d", i)
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("weights sum to %.14g", sum)
	}
}

func TestGaussQuadratureRangeErrors(t *testing.T) {
	est, err := New(normalMoments(t, 0, 1, 10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.GaussQuadrature(0); !errors.Is(err, ErrBadMoments) {
		t.Errorf("0 nodes: %v", err)
	}
	if _, err := est.GaussQuadrature(est.MaxNodes() + 1); !errors.Is(err, ErrBadMoments) {
		t.Errorf("too many nodes: %v", err)
	}
}

func TestCDFBoundsBracketNormal(t *testing.T) {
	mu, s2 := 1.0, 4.0
	est, err := New(normalMoments(t, mu, s2, 18))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{-5, -2, 0, 0.5, 1, 2, 3.7, 6} {
		b, err := est.CDFBounds(c)
		if err != nil {
			t.Fatalf("c=%g: %v", c, err)
		}
		truth := brownian.NormalCDF(c, mu, s2)
		if b.Lower > truth+1e-9 || truth > b.Upper+1e-9 {
			t.Errorf("c=%g: [%g, %g] does not bracket %g", c, b.Lower, b.Upper, truth)
		}
		if b.Lower < 0 || b.Upper > 1 || b.Lower > b.Upper {
			t.Errorf("c=%g: malformed bounds [%g, %g]", c, b.Lower, b.Upper)
		}
	}
}

func TestCDFBoundsBracketExponentialMixture(t *testing.T) {
	// Moments of 0.5*Exp(1) + 0.5*Exp(1/3): E[X^j] = 0.5 j! (1 + 3^j).
	raw := make([]float64, 12)
	fact := 1.0
	for j := range raw {
		if j > 0 {
			fact *= float64(j)
		}
		raw[j] = 0.5 * fact * (1 + math.Pow(3, float64(j)))
	}
	est, err := New(raw)
	if err != nil {
		t.Fatal(err)
	}
	cdf := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		return 0.5*(1-math.Exp(-x)) + 0.5*(1-math.Exp(-x/3))
	}
	for _, c := range []float64{0.2, 1, 2, 5, 10} {
		b, err := est.CDFBounds(c)
		if err != nil {
			t.Fatalf("c=%g: %v", c, err)
		}
		truth := cdf(c)
		if b.Lower > truth+1e-9 || truth > b.Upper+1e-9 {
			t.Errorf("c=%g: [%g, %g] does not bracket %g", c, b.Lower, b.Upper, truth)
		}
	}
}

func TestCDFBoundsMonotoneInNodes(t *testing.T) {
	est, err := New(normalMoments(t, 0, 1, 18))
	if err != nil {
		t.Fatal(err)
	}
	prevWidth := math.Inf(1)
	for nodes := 2; nodes <= est.MaxNodes(); nodes += 2 {
		b, err := est.CDFBoundsWithNodes(0.5, nodes)
		if err != nil {
			t.Fatal(err)
		}
		w := b.Width()
		if w > prevWidth+1e-9 {
			t.Errorf("bounds widened with more nodes: %g -> %g at %d", prevWidth, w, nodes)
		}
		prevWidth = w
	}
}

func TestCDFBoundsSpecialPoints(t *testing.T) {
	est, err := New(normalMoments(t, 0, 1, 10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.CDFBounds(math.NaN()); !errors.Is(err, ErrBadMoments) {
		t.Errorf("NaN point: %v", err)
	}
	b, err := est.CDFBounds(math.Inf(-1))
	if err != nil || b.Upper != 0 {
		t.Errorf("-Inf: %v %v", b, err)
	}
	b, err = est.CDFBounds(math.Inf(1))
	if err != nil || b.Lower != 1 {
		t.Errorf("+Inf: %v %v", b, err)
	}
}

func TestCDFBoundsAtGaussNode(t *testing.T) {
	// Anchoring exactly at an existing Gauss node makes the Radau shift
	// singular; the nudge logic must recover.
	est, err := New(normalMoments(t, 0, 1, 12))
	if err != nil {
		t.Fatal(err)
	}
	q, err := est.GaussQuadrature(est.MaxNodes())
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range q.Nodes {
		b, err := est.CDFBounds(node)
		if err != nil {
			t.Fatalf("anchor at node %g: %v", node, err)
		}
		truth := brownian.NormalCDF(node, 0, 1)
		if b.Lower > truth+1e-6 || truth > b.Upper+1e-6 {
			t.Errorf("node %g: [%g, %g] vs %g", node, b.Lower, b.Upper, truth)
		}
	}
}

func TestTailBounds(t *testing.T) {
	est, err := New(normalMoments(t, 0, 1, 14))
	if err != nil {
		t.Fatal(err)
	}
	cdf, err := est.CDFBounds(1)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := est.TailBounds(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tail.Lower-(1-cdf.Upper)) > 1e-14 || math.Abs(tail.Upper-(1-cdf.Lower)) > 1e-14 {
		t.Errorf("tail bounds inconsistent: %v vs cdf %v", tail, cdf)
	}
}

// Property: bounds bracket the empirical CDF of randomly generated
// discrete distributions (whose moments we can compute exactly).
func TestBoundsBracketDiscreteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 3 + rng.Intn(4)
		xs := make([]float64, k)
		ws := make([]float64, k)
		var tot float64
		for i := range xs {
			xs[i] = rng.NormFloat64() * 5
			ws[i] = 0.1 + rng.Float64()
			tot += ws[i]
		}
		for i := range ws {
			ws[i] /= tot
		}
		raw := make([]float64, 2*k+2)
		for j := range raw {
			var s float64
			for i := range xs {
				s += ws[i] * math.Pow(xs[i], float64(j))
			}
			raw[j] = s
		}
		est, err := New(raw)
		if err != nil {
			// Nearly-coincident atoms can make the Hankel matrix
			// numerically singular at full depth; skip those draws.
			return errors.Is(err, ErrBadMoments) || errors.Is(err, ErrDegenerate)
		}
		cdf := func(x float64) float64 {
			var s float64
			for i := range xs {
				if xs[i] <= x {
					s += ws[i]
				}
			}
			return s
		}
		for trial := 0; trial < 5; trial++ {
			c := rng.NormFloat64() * 6
			b, err := est.CDFBounds(c)
			if err != nil {
				continue // nudge may fail on pathological anchors
			}
			// Bounds are sharp for F(c^-) and F(c); allow the half-open
			// convention slack at atoms.
			if b.Lower > cdf(c)+1e-6 {
				return false
			}
			if cdfMinus(xs, ws, c) > b.Upper+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func cdfMinus(xs, ws []float64, c float64) float64 {
	var s float64
	for i := range xs {
		if xs[i] < c {
			s += ws[i]
		}
	}
	return s
}

func TestBoundsWidthShrinksWithMoreMoments(t *testing.T) {
	widths := make([]float64, 0, 3)
	for _, count := range []int{6, 10, 16} {
		est, err := New(normalMoments(t, 0, 1, count))
		if err != nil {
			t.Fatal(err)
		}
		b, err := est.CDFBounds(0.7)
		if err != nil {
			t.Fatal(err)
		}
		widths = append(widths, b.Width())
	}
	if !(widths[0] > widths[1] && widths[1] > widths[2]) {
		t.Errorf("widths not shrinking: %v", widths)
	}
}
