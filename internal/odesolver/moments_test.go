package odesolver

import (
	"errors"
	"math"
	"testing"

	"somrm/internal/brownian"
	"somrm/internal/core"
	"somrm/internal/ctmc"
	"somrm/internal/sparse"
)

func buildModel(t *testing.T, a, b float64, r, s []float64) *core.Model {
	t.Helper()
	gen, err := ctmc.NewGeneratorFromDense(2, []float64{-a, a, b, -b})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(gen, r, s, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMomentsByODEMatchesNormalClosedForm(t *testing.T) {
	// Equal parameters in both states: B(t) ~ Normal(rt, s2 t).
	m := buildModel(t, 3, 3, []float64{1.5, 1.5}, []float64{2, 2})
	const tt = 0.7
	for _, method := range []Method{MethodHeun, MethodRK4, MethodRK45} {
		vm, err := MomentsByODE(m, tt, 4, &MomentOptions{Method: method})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		for j := 0; j <= 4; j++ {
			want, _ := brownian.NormalRawMoment(j, 1.5*tt, 2*tt)
			got := vm[j][0]
			tol := 1e-6 * (1 + math.Abs(want))
			if method != MethodHeun {
				tol = 1e-8 * (1 + math.Abs(want))
			}
			if math.Abs(got-want) > tol {
				t.Errorf("%v j=%d: got %.12g, want %.12g", method, j, got, want)
			}
		}
	}
}

func TestMomentsByODEMatchesRandomization(t *testing.T) {
	// Asymmetric second-order model with negative drift.
	m := buildModel(t, 2, 5, []float64{-1, 3}, []float64{0.5, 2})
	const tt = 1.2
	res, err := m.AccumulatedReward(tt, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := MomentsByODE(m, tt, 4, &MomentOptions{Method: MethodRK4})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j <= 4; j++ {
		for i := 0; i < 2; i++ {
			want := res.VectorMoments[j][i]
			got := vm[j][i]
			if math.Abs(got-want) > 1e-8*(1+math.Abs(want)) {
				t.Errorf("j=%d state=%d: ODE %.12g vs randomization %.12g", j, i, got, want)
			}
		}
	}
}

func TestMomentsByODEWithImpulses(t *testing.T) {
	gen, err := ctmc.NewGeneratorFromDense(2, []float64{-2, 2, 3, -3})
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.New(gen, []float64{1, 0.5}, []float64{0.2, 0.4}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	b := sparse.NewBuilder(2, 2)
	if err := b.Add(0, 1, 0.7); err != nil {
		t.Fatal(err)
	}
	m, err := base.WithImpulses(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	const tt = 1.0
	res, err := m.AccumulatedReward(tt, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := MomentsByODE(m, tt, 3, &MomentOptions{Method: MethodRK4})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j <= 3; j++ {
		want := res.Moments[j]
		got := vm[j][0]
		if math.Abs(got-want) > 1e-7*(1+math.Abs(want)) {
			t.Errorf("impulse j=%d: ODE %.12g vs randomization %.12g", j, got, want)
		}
	}
}

func TestMomentsByODEZeroTime(t *testing.T) {
	m := buildModel(t, 1, 1, []float64{1, 2}, []float64{0, 0})
	vm, err := MomentsByODE(m, 0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if vm[0][0] != 1 || vm[1][0] != 0 || vm[2][0] != 0 {
		t.Errorf("t=0: %v", vm)
	}
}

func TestMomentsByODEErrors(t *testing.T) {
	m := buildModel(t, 1, 1, []float64{1, 2}, []float64{0, 0})
	if _, err := MomentsByODE(nil, 1, 2, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("nil model: %v", err)
	}
	if _, err := MomentsByODE(m, -1, 2, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("negative t: %v", err)
	}
	if _, err := MomentsByODE(m, math.NaN(), 2, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("NaN t: %v", err)
	}
	if _, err := MomentsByODE(m, 1, -2, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("negative order: %v", err)
	}
	if _, err := MomentsByODE(m, 1, 2, &MomentOptions{Method: Method(42)}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("unknown method: %v", err)
	}
}

func TestMomentsByODEExplicitSteps(t *testing.T) {
	m := buildModel(t, 3, 3, []float64{1, 1}, []float64{1, 1})
	vm, err := MomentsByODE(m, 0.5, 1, &MomentOptions{Method: MethodHeun, Steps: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vm[1][0]-0.5) > 1e-7 {
		t.Errorf("mean = %.10g, want 0.5", vm[1][0])
	}
}
