// Package odesolver provides the ordinary differential equation integrators
// used as the paper's comparison baseline: the moments of the accumulated
// reward satisfy the linear ODE system of Theorem 2 (eq. 6), which the
// authors cross-checked with a trapezoid-rule solver. The package offers
// fixed-step Heun (explicit trapezoid) and classical RK4 integrators plus
// an adaptive Dormand–Prince RK45, and a driver that assembles eq. (6)
// for a second-order Markov reward model.
package odesolver

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadArgument is returned for invalid integrator arguments.
var ErrBadArgument = errors.New("odesolver: invalid argument")

// ErrStepLimit is returned when the adaptive integrator exceeds its step
// budget.
var ErrStepLimit = errors.New("odesolver: step limit exceeded")

// DerivFunc evaluates dy = f(t, y). Implementations must treat y as
// read-only and fully overwrite dy.
type DerivFunc func(t float64, y, dy []float64)

// Heun integrates y' = f(t, y) from t0 to t1 with the explicit trapezoid
// (Heun) method over the given number of uniform steps. This is the
// "numerical ODE solver working based on eq. 6 using trapezoid rule" the
// paper compares against.
func Heun(f DerivFunc, y0 []float64, t0, t1 float64, steps int) ([]float64, error) {
	if err := checkFixedStep(f, y0, t0, t1, steps); err != nil {
		return nil, err
	}
	n := len(y0)
	y := append([]float64(nil), y0...)
	k1 := make([]float64, n)
	k2 := make([]float64, n)
	pred := make([]float64, n)
	h := (t1 - t0) / float64(steps)
	for s := 0; s < steps; s++ {
		t := t0 + float64(s)*h
		f(t, y, k1)
		for i := 0; i < n; i++ {
			pred[i] = y[i] + h*k1[i]
		}
		f(t+h, pred, k2)
		for i := 0; i < n; i++ {
			y[i] += h / 2 * (k1[i] + k2[i])
		}
	}
	return y, nil
}

// RK4 integrates with the classical fourth-order Runge–Kutta method over
// uniform steps.
func RK4(f DerivFunc, y0 []float64, t0, t1 float64, steps int) ([]float64, error) {
	if err := checkFixedStep(f, y0, t0, t1, steps); err != nil {
		return nil, err
	}
	n := len(y0)
	y := append([]float64(nil), y0...)
	k1 := make([]float64, n)
	k2 := make([]float64, n)
	k3 := make([]float64, n)
	k4 := make([]float64, n)
	tmp := make([]float64, n)
	h := (t1 - t0) / float64(steps)
	for s := 0; s < steps; s++ {
		t := t0 + float64(s)*h
		f(t, y, k1)
		for i := range tmp {
			tmp[i] = y[i] + h/2*k1[i]
		}
		f(t+h/2, tmp, k2)
		for i := range tmp {
			tmp[i] = y[i] + h/2*k2[i]
		}
		f(t+h/2, tmp, k3)
		for i := range tmp {
			tmp[i] = y[i] + h*k3[i]
		}
		f(t+h, tmp, k4)
		for i := range y {
			y[i] += h / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
		}
	}
	return y, nil
}

func checkFixedStep(f DerivFunc, y0 []float64, t0, t1 float64, steps int) error {
	if f == nil {
		return fmt.Errorf("%w: nil derivative", ErrBadArgument)
	}
	if steps < 1 {
		return fmt.Errorf("%w: steps=%d", ErrBadArgument, steps)
	}
	if t1 < t0 {
		return fmt.Errorf("%w: t1=%g < t0=%g", ErrBadArgument, t1, t0)
	}
	if len(y0) == 0 {
		return fmt.Errorf("%w: empty state", ErrBadArgument)
	}
	return nil
}

// RK45Options configures the adaptive Dormand–Prince integrator.
type RK45Options struct {
	// RelTol and AbsTol control the per-step error test. Defaults: 1e-8
	// and 1e-10.
	RelTol, AbsTol float64
	// InitialStep is the first attempted step (default (t1-t0)/100).
	InitialStep float64
	// MaxSteps bounds the number of accepted+rejected steps (default 1e6).
	MaxSteps int
}

// RK45Stats reports adaptive-integration work.
type RK45Stats struct {
	Accepted, Rejected int
}

// Dormand–Prince RK45 coefficients.
var (
	dpC = [7]float64{0, 1.0 / 5, 3.0 / 10, 4.0 / 5, 8.0 / 9, 1, 1}
	dpA = [7][6]float64{
		{},
		{1.0 / 5},
		{3.0 / 40, 9.0 / 40},
		{44.0 / 45, -56.0 / 15, 32.0 / 9},
		{19372.0 / 6561, -25360.0 / 2187, 64448.0 / 6561, -212.0 / 729},
		{9017.0 / 3168, -355.0 / 33, 46732.0 / 5247, 49.0 / 176, -5103.0 / 18656},
		{35.0 / 384, 0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84},
	}
	dpB5 = [7]float64{35.0 / 384, 0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84, 0}
	dpB4 = [7]float64{5179.0 / 57600, 0, 7571.0 / 16695, 393.0 / 640, -92097.0 / 339200, 187.0 / 2100, 1.0 / 40}
)

// RK45 integrates with the adaptive Dormand–Prince 5(4) method.
func RK45(f DerivFunc, y0 []float64, t0, t1 float64, opts *RK45Options) ([]float64, RK45Stats, error) {
	var stats RK45Stats
	if err := checkFixedStep(f, y0, t0, t1, 1); err != nil {
		return nil, stats, err
	}
	cfg := RK45Options{RelTol: 1e-8, AbsTol: 1e-10, MaxSteps: 1_000_000}
	if opts != nil {
		if opts.RelTol > 0 {
			cfg.RelTol = opts.RelTol
		}
		if opts.AbsTol > 0 {
			cfg.AbsTol = opts.AbsTol
		}
		if opts.InitialStep > 0 {
			cfg.InitialStep = opts.InitialStep
		}
		if opts.MaxSteps > 0 {
			cfg.MaxSteps = opts.MaxSteps
		}
	}
	if t1 == t0 {
		return append([]float64(nil), y0...), stats, nil
	}
	h := cfg.InitialStep
	if h == 0 {
		h = (t1 - t0) / 100
	}

	n := len(y0)
	y := append([]float64(nil), y0...)
	k := make([][]float64, 7)
	for i := range k {
		k[i] = make([]float64, n)
	}
	tmp := make([]float64, n)
	y5 := make([]float64, n)
	t := t0

	for t < t1 {
		if stats.Accepted+stats.Rejected >= cfg.MaxSteps {
			return nil, stats, fmt.Errorf("%w: %d steps at t=%g", ErrStepLimit, cfg.MaxSteps, t)
		}
		if t+h > t1 {
			h = t1 - t
		}
		// Stages.
		f(t, y, k[0])
		for s := 1; s < 7; s++ {
			for i := 0; i < n; i++ {
				acc := y[i]
				for j := 0; j < s; j++ {
					if a := dpA[s][j]; a != 0 {
						acc += h * a * k[j][i]
					}
				}
				tmp[i] = acc
			}
			f(t+dpC[s]*h, tmp, k[s])
		}
		// 5th order solution and error estimate.
		var errNorm float64
		for i := 0; i < n; i++ {
			var s5, s4 float64
			for s := 0; s < 7; s++ {
				s5 += dpB5[s] * k[s][i]
				s4 += dpB4[s] * k[s][i]
			}
			y5[i] = y[i] + h*s5
			sc := cfg.AbsTol + cfg.RelTol*math.Max(math.Abs(y[i]), math.Abs(y5[i]))
			e := h * (s5 - s4) / sc
			errNorm += e * e
		}
		errNorm = math.Sqrt(errNorm / float64(n))

		if errNorm <= 1 {
			t += h
			copy(y, y5)
			stats.Accepted++
		} else {
			stats.Rejected++
		}
		// Step-size controller.
		fac := 0.9 * math.Pow(1/math.Max(errNorm, 1e-10), 0.2)
		fac = math.Min(5, math.Max(0.2, fac))
		h *= fac
		if h <= 0 || math.IsNaN(h) {
			return nil, stats, fmt.Errorf("%w: step collapsed at t=%g", ErrStepLimit, t)
		}
	}
	return y, stats, nil
}
