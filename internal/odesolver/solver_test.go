package odesolver

import (
	"errors"
	"math"
	"testing"
)

// Exponential decay y' = -y, y(0) = 1: y(t) = e^{-t}.
func decay(_ float64, y, dy []float64) { dy[0] = -y[0] }

// Harmonic oscillator y” = -y as a 2-dim system.
func oscillator(_ float64, y, dy []float64) {
	dy[0] = y[1]
	dy[1] = -y[0]
}

func TestHeunDecay(t *testing.T) {
	y, err := Heun(decay, []float64{1}, 0, 1, 2000)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-1)
	if math.Abs(y[0]-want) > 1e-6 {
		t.Errorf("Heun e^-1 = %.10g, want %.10g", y[0], want)
	}
}

func TestHeunSecondOrderConvergence(t *testing.T) {
	errAt := func(steps int) float64 {
		y, err := Heun(decay, []float64{1}, 0, 1, steps)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(y[0] - math.Exp(-1))
	}
	e1 := errAt(100)
	e2 := errAt(200)
	ratio := e1 / e2
	// Second order: halving the step divides the error by ~4.
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("Heun convergence ratio = %.2f, want ~4", ratio)
	}
}

func TestRK4FourthOrderConvergence(t *testing.T) {
	errAt := func(steps int) float64 {
		y, err := RK4(decay, []float64{1}, 0, 2, steps)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(y[0] - math.Exp(-2))
	}
	e1 := errAt(10)
	e2 := errAt(20)
	ratio := e1 / e2
	if ratio < 12 || ratio > 20 {
		t.Errorf("RK4 convergence ratio = %.2f, want ~16", ratio)
	}
}

func TestRK4Oscillator(t *testing.T) {
	y, err := RK4(oscillator, []float64{1, 0}, 0, 2*math.Pi, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-1) > 1e-9 || math.Abs(y[1]) > 1e-9 {
		t.Errorf("full period: y = %v, want [1 0]", y)
	}
}

func TestFixedStepErrors(t *testing.T) {
	if _, err := Heun(nil, []float64{1}, 0, 1, 10); !errors.Is(err, ErrBadArgument) {
		t.Errorf("nil f: %v", err)
	}
	if _, err := Heun(decay, []float64{1}, 0, 1, 0); !errors.Is(err, ErrBadArgument) {
		t.Errorf("zero steps: %v", err)
	}
	if _, err := RK4(decay, []float64{1}, 1, 0, 10); !errors.Is(err, ErrBadArgument) {
		t.Errorf("t1 < t0: %v", err)
	}
	if _, err := RK4(decay, nil, 0, 1, 10); !errors.Is(err, ErrBadArgument) {
		t.Errorf("empty state: %v", err)
	}
}

func TestRK45Decay(t *testing.T) {
	y, stats, err := RK45(decay, []float64{1}, 0, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-5)
	if math.Abs(y[0]-want) > 1e-7*(1+want) {
		t.Errorf("RK45 e^-5 = %.12g, want %.12g", y[0], want)
	}
	if stats.Accepted == 0 {
		t.Error("no accepted steps recorded")
	}
}

func TestRK45Oscillator(t *testing.T) {
	y, _, err := RK45(oscillator, []float64{1, 0}, 0, 2*math.Pi, &RK45Options{RelTol: 1e-10, AbsTol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-1) > 1e-8 || math.Abs(y[1]) > 1e-8 {
		t.Errorf("RK45 full period: %v", y)
	}
}

func TestRK45StepLimit(t *testing.T) {
	_, _, err := RK45(decay, []float64{1}, 0, 1, &RK45Options{MaxSteps: 2, RelTol: 1e-14, AbsTol: 1e-16})
	if !errors.Is(err, ErrStepLimit) {
		t.Errorf("step limit: %v", err)
	}
}

func TestRK45ZeroInterval(t *testing.T) {
	y, _, err := RK45(decay, []float64{3}, 2, 2, nil)
	if err != nil || y[0] != 3 {
		t.Errorf("zero interval: y=%v err=%v", y, err)
	}
}

func TestMethodString(t *testing.T) {
	if MethodHeun.String() != "heun" || MethodRK4.String() != "rk4" || MethodRK45.String() != "rk45" {
		t.Error("method names wrong")
	}
	if Method(99).String() == "" {
		t.Error("unknown method should still render")
	}
}
