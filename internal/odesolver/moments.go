package odesolver

import (
	"fmt"
	"math"

	"somrm/internal/core"
	"somrm/internal/sparse"
)

// Method selects the integrator for MomentsByODE.
type Method int

// Supported integration methods.
const (
	MethodHeun Method = iota + 1 // explicit trapezoid, the paper's baseline
	MethodRK4
	MethodRK45
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodHeun:
		return "heun"
	case MethodRK4:
		return "rk4"
	case MethodRK45:
		return "rk45"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// MomentOptions configures MomentsByODE.
type MomentOptions struct {
	// Method selects the integrator (default MethodRK4).
	Method Method
	// Steps is the fixed-step count for Heun/RK4. Zero picks
	// max(1000, ceil(20*q*t)) to stay within the explicit stability region
	// of the uniformization rate q.
	Steps int
	// RK45 passes through to the adaptive integrator.
	RK45 *RK45Options
}

// MomentsByODE integrates eq. (6) of the paper,
//
//	d/dt V^(n) = Q V^(n) + n R V^(n-1) + 1/2 n(n-1) S V^(n-2)
//
// (plus the binomial impulse terms when the model has impulse rewards),
// and returns the raw moment vectors V^(0..order)(t). It exists as an
// independently-coded baseline for the randomization solver; the paper
// reports that the two agree while randomization is far faster.
func MomentsByODE(m *core.Model, t float64, order int, opts *MomentOptions) ([][]float64, error) {
	if m == nil {
		return nil, fmt.Errorf("%w: nil model", ErrBadArgument)
	}
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return nil, fmt.Errorf("%w: time %g", ErrBadArgument, t)
	}
	if order < 0 {
		return nil, fmt.Errorf("%w: order %d", ErrBadArgument, order)
	}
	cfg := MomentOptions{Method: MethodRK4}
	if opts != nil {
		if opts.Method != 0 {
			cfg.Method = opts.Method
		}
		cfg.Steps = opts.Steps
		cfg.RK45 = opts.RK45
	}

	n := m.N()
	q := m.Generator().Matrix()
	rates := m.Rates()
	vars := m.Variances()
	var impPow []*sparse.CSR // impPow[mm-1] entries q_ij * y_ij^mm
	if m.HasImpulses() {
		var err error
		impPow, err = impulsePowers(m, order)
		if err != nil {
			return nil, err
		}
	}

	// State layout: y[j*n : (j+1)*n] = V^(j).
	deriv := func(_ float64, y, dy []float64) {
		for j := 0; j <= order; j++ {
			vj := y[j*n : (j+1)*n]
			dj := dy[j*n : (j+1)*n]
			// Q V^(j); error impossible: sizes are fixed by construction.
			_ = q.MatVec(vj, dj)
			if j >= 1 {
				prev := y[(j-1)*n : j*n]
				fj := float64(j)
				for i := 0; i < n; i++ {
					dj[i] += fj * rates[i] * prev[i]
				}
			}
			if j >= 2 {
				prev2 := y[(j-2)*n : (j-1)*n]
				c := 0.5 * float64(j) * float64(j-1)
				for i := 0; i < n; i++ {
					dj[i] += c * vars[i] * prev2[i]
				}
			}
			for mm := 1; mm <= j && impPow != nil; mm++ {
				_ = impPow[mm-1].MatVecAdd(binom(j, mm), y[(j-mm)*n:(j-mm+1)*n], dj)
			}
		}
	}

	y0 := make([]float64, (order+1)*n)
	for i := 0; i < n; i++ {
		y0[i] = 1 // V^(0)(0) = h
	}
	if t == 0 {
		return unpack(y0, n, order), nil
	}

	var y []float64
	var err error
	switch cfg.Method {
	case MethodHeun, MethodRK4:
		steps := cfg.Steps
		if steps == 0 {
			steps = int(math.Ceil(20 * m.Generator().MaxExitRate() * t))
			if steps < 1000 {
				steps = 1000
			}
		}
		if cfg.Method == MethodHeun {
			y, err = Heun(deriv, y0, 0, t, steps)
		} else {
			y, err = RK4(deriv, y0, 0, t, steps)
		}
	case MethodRK45:
		y, _, err = RK45(deriv, y0, 0, t, cfg.RK45)
	default:
		return nil, fmt.Errorf("%w: unknown method %v", ErrBadArgument, cfg.Method)
	}
	if err != nil {
		return nil, err
	}
	return unpack(y, n, order), nil
}

func unpack(y []float64, n, order int) [][]float64 {
	out := make([][]float64, order+1)
	for j := 0; j <= order; j++ {
		out[j] = append([]float64(nil), y[j*n:(j+1)*n]...)
	}
	return out
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c
}

func impulsePowers(m *core.Model, order int) ([]*sparse.CSR, error) {
	n := m.N()
	imp := m.Impulses()
	gen := m.Generator()
	out := make([]*sparse.CSR, order)
	for mm := 1; mm <= order; mm++ {
		b := sparse.NewBuilder(n, n)
		var addErr error
		for i := 0; i < n; i++ {
			imp.Range(i, func(j int, y float64) {
				if addErr != nil || y == 0 {
					return
				}
				rate := gen.At(i, j)
				if rate == 0 {
					return
				}
				addErr = b.Add(i, j, rate*math.Pow(y, float64(mm)))
			})
		}
		if addErr != nil {
			return nil, fmt.Errorf("odesolver: impulse powers: %w", addErr)
		}
		out[mm-1] = b.Build()
	}
	return out, nil
}
