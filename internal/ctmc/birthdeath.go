package ctmc

import (
	"fmt"
	"math"

	"somrm/internal/sparse"
)

// NewBirthDeath builds the generator of a birth-death chain on states
// 0..n-1 with birth rates up[i] (i -> i+1, length n-1) and death rates
// down[i] (i+1 -> i, length n-1). The paper's ON-OFF multiplexer background
// process is of this form.
func NewBirthDeath(up, down []float64) (*Generator, error) {
	if len(up) != len(down) {
		return nil, fmt.Errorf("%w: %d birth rates vs %d death rates", ErrNotGenerator, len(up), len(down))
	}
	n := len(up) + 1
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		var exit float64
		if i < n-1 {
			v := up[i]
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: birth rate up[%d]=%g", ErrNotGenerator, i, v)
			}
			if v > 0 {
				if err := b.Add(i, i+1, v); err != nil {
					return nil, fmt.Errorf("ctmc: %w", err)
				}
				exit += v
			}
		}
		if i > 0 {
			v := down[i-1]
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: death rate down[%d]=%g", ErrNotGenerator, i-1, v)
			}
			if v > 0 {
				if err := b.Add(i, i-1, v); err != nil {
					return nil, fmt.Errorf("ctmc: %w", err)
				}
				exit += v
			}
		}
		if exit > 0 {
			if err := b.Add(i, i, -exit); err != nil {
				return nil, fmt.Errorf("ctmc: %w", err)
			}
		}
	}
	return NewGenerator(b.Build())
}

// BirthDeathStationary computes the stationary distribution of an
// irreducible birth-death chain in O(n) using the detailed-balance product
// form pi[i+1] = pi[i] * up[i] / down[i]. It normalizes with a running
// rescale so very long chains (the paper's large example has 200,001
// states) do not overflow.
func BirthDeathStationary(up, down []float64) ([]float64, error) {
	if len(up) != len(down) {
		return nil, fmt.Errorf("%w: %d birth rates vs %d death rates", ErrNotGenerator, len(up), len(down))
	}
	n := len(up) + 1
	pi := make([]float64, n)
	pi[0] = 1
	for i := 0; i < n-1; i++ {
		if up[i] <= 0 || down[i] <= 0 {
			return nil, fmt.Errorf("%w: zero rate between states %d and %d", ErrReducible, i, i+1)
		}
		pi[i+1] = pi[i] * up[i] / down[i]
		if pi[i+1] > 1e250 {
			// Rescale everything so far to avoid overflow.
			for j := 0; j <= i+1; j++ {
				pi[j] *= 1e-250
			}
		}
	}
	var total float64
	for _, p := range pi {
		total += p
	}
	if total <= 0 || math.IsInf(total, 0) || math.IsNaN(total) {
		return nil, fmt.Errorf("%w: normalization failed (total %g)", ErrReducible, total)
	}
	for i := range pi {
		pi[i] /= total
	}
	return pi, nil
}
