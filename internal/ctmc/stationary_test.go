package ctmc

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestStationaryTwoState(t *testing.T) {
	g := twoState(t, 2, 3) // pi = (3, 2)/5
	pi, err := g.StationaryDistribution()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-0.6) > 1e-14 || math.Abs(pi[1]-0.4) > 1e-14 {
		t.Errorf("pi = %v, want [0.6 0.4]", pi)
	}
}

func TestStationarySingleState(t *testing.T) {
	g, err := NewGeneratorFromDense(1, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	pi, err := g.StationaryDistribution()
	if err != nil {
		t.Fatal(err)
	}
	if pi[0] != 1 {
		t.Errorf("pi = %v", pi)
	}
}

func TestStationaryReducible(t *testing.T) {
	// Absorbing state 1: state 1 has no exits, so eliminating it fails.
	g, err := NewGeneratorFromDense(2, []float64{-1, 1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.StationaryDistribution(); !errors.Is(err, ErrReducible) {
		t.Errorf("reducible: err = %v", err)
	}
}

// Property: pi Q = 0 for random irreducible chains (GTH residual check).
func TestStationaryResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 3 + int(seed%5+5)%5
		g, err := NewGeneratorFromRates(n, func(i, j int) float64 {
			// Dense positive rates => irreducible.
			return 0.1 + float64((i*7+j*13+int(seed%17)+17)%10)
		})
		if err != nil {
			return false
		}
		pi, err := g.StationaryDistribution()
		if err != nil {
			return false
		}
		var sum float64
		for _, p := range pi {
			if p < 0 {
				return false
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-12 {
			return false
		}
		// Residual pi Q = 0.
		res := make([]float64, n)
		if err := g.Matrix().VecMat(pi, res); err != nil {
			return false
		}
		for _, r := range res {
			if math.Abs(r) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStationaryMatchesBirthDeathProductForm(t *testing.T) {
	up := []float64{3, 2, 1}
	down := []float64{1, 2, 3}
	g, err := NewBirthDeath(up, down)
	if err != nil {
		t.Fatal(err)
	}
	gth, err := g.StationaryDistribution()
	if err != nil {
		t.Fatal(err)
	}
	prod, err := BirthDeathStationary(up, down)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gth {
		if math.Abs(gth[i]-prod[i]) > 1e-12 {
			t.Errorf("state %d: GTH %.14g vs product form %.14g", i, gth[i], prod[i])
		}
	}
}

func TestMeanRewardRate(t *testing.T) {
	got, err := MeanRewardRate([]float64{0.25, 0.75}, []float64{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("MeanRewardRate = %g, want 7", got)
	}
	if _, err := MeanRewardRate([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrBadDistribution) {
		t.Errorf("size mismatch: %v", err)
	}
}
