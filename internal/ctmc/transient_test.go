package ctmc

import (
	"math"
	"testing"
	"testing/quick"
)

// Two-state closed form: p0(t) = pi_ss0 + (p0(0) - pi_ss0) e^{-(a+b)t}.
func TestTransientTwoStateClosedForm(t *testing.T) {
	a, b := 2.0, 3.0
	g := twoState(t, a, b)
	for _, tt := range []float64{0, 0.1, 0.5, 2, 10} {
		p, err := g.TransientDistribution([]float64{1, 0}, tt, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		ss0 := b / (a + b)
		want0 := ss0 + (1-ss0)*math.Exp(-(a+b)*tt)
		if math.Abs(p[0]-want0) > 1e-10 {
			t.Errorf("t=%g: p0 = %.12g, want %.12g", tt, p[0], want0)
		}
		if math.Abs(p[0]+p[1]-1) > 1e-10 {
			t.Errorf("t=%g: mass = %.12g", tt, p[0]+p[1])
		}
	}
}

func TestTransientMatchesMatrixExponential(t *testing.T) {
	g, err := NewGeneratorFromRates(4, func(i, j int) float64 {
		return float64((i+j)%3) * 0.7
	})
	if err != nil {
		t.Fatal(err)
	}
	pi := []float64{0.4, 0.3, 0.2, 0.1}
	for _, tt := range []float64{0.2, 1.5} {
		p, err := g.TransientDistribution(pi, tt, 1e-13)
		if err != nil {
			t.Fatal(err)
		}
		e, err := g.MatrixExponential(tt)
		if err != nil {
			t.Fatal(err)
		}
		want, err := e.VecMat(pi)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(p[i]-want[i]) > 1e-10 {
				t.Errorf("t=%g state %d: uniformization %.12g vs expm %.12g", tt, i, p[i], want[i])
			}
		}
	}
}

func TestTransientErrors(t *testing.T) {
	g := twoState(t, 1, 1)
	if _, err := g.TransientDistribution([]float64{1, 0}, -1, 1e-9); err == nil {
		t.Error("negative time accepted")
	}
	if _, err := g.TransientDistribution([]float64{1, 0}, 1, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := g.TransientDistribution([]float64{1}, 1, 1e-9); err == nil {
		t.Error("bad distribution accepted")
	}
}

func TestTransientConvergesToStationary(t *testing.T) {
	g := twoState(t, 2, 3)
	p, err := g.TransientDistribution([]float64{1, 0}, 50, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := g.StationaryDistribution()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ss {
		if math.Abs(p[i]-ss[i]) > 1e-9 {
			t.Errorf("state %d: transient(50) %.10g vs stationary %.10g", i, p[i], ss[i])
		}
	}
}

// Property: the transient distribution is a probability vector at all times.
func TestTransientIsDistributionProperty(t *testing.T) {
	g, err := NewGeneratorFromRates(3, func(i, j int) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	f := func(tRaw uint16) bool {
		tt := float64(tRaw%1000) / 100
		p, err := g.TransientDistribution([]float64{0, 1, 0}, tt, 1e-10)
		if err != nil {
			return false
		}
		var sum float64
		for _, x := range p {
			if x < -1e-12 || x > 1+1e-12 {
				return false
			}
			sum += x
		}
		return math.Abs(sum-1) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTransientAt(t *testing.T) {
	g := twoState(t, 1, 2)
	out, err := g.TransientAt([]float64{1, 0}, []float64{0.1, 0.5, 1}, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
	// Must match individual solves.
	single, err := g.TransientDistribution([]float64{1, 0}, 0.5, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[1][0]-single[0]) > 1e-14 {
		t.Error("TransientAt disagrees with TransientDistribution")
	}
	if _, err := g.TransientAt([]float64{1, 0}, []float64{1, 0.5}, 1e-10); err == nil {
		t.Error("decreasing times accepted")
	}
}

func TestTransientZeroTimeAndFrozenChain(t *testing.T) {
	g := twoState(t, 1, 1)
	p, err := g.TransientDistribution([]float64{0.3, 0.7}, 0, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 0.3 || p[1] != 0.7 {
		t.Errorf("t=0: %v", p)
	}
	// All-zero generator (frozen chain).
	frozen, err := NewGeneratorFromDense(2, make([]float64, 4))
	if err != nil {
		t.Fatal(err)
	}
	p, err = frozen.TransientDistribution([]float64{0.3, 0.7}, 5, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 0.3 || p[1] != 0.7 {
		t.Errorf("frozen: %v", p)
	}
}
