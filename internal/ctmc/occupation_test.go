package ctmc_test

// External test package so the occupation-time algorithm can be validated
// against the Monte Carlo simulator (sim imports core imports ctmc; an
// in-package test would create an import cycle).

import (
	"math"
	"math/rand"
	"testing"

	"somrm/internal/core"
	"somrm/internal/ctmc"
	"somrm/internal/laplace"
)

func twoStateGen(t *testing.T, a, b float64) *ctmc.Generator {
	t.Helper()
	g, err := ctmc.NewGeneratorFromDense(2, []float64{-a, a, b, -b})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// Empirical occupation-time CDF by direct trajectory simulation.
func simulateOccupationCDF(g *ctmc.Generator, pi []float64, tagged []bool, t, x float64, reps int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	n := g.N()
	count := 0
	for r := 0; r < reps; r++ {
		// Sample initial state.
		u := rng.Float64()
		state := n - 1
		acc := 0.0
		for i := 0; i < n; i++ {
			acc += pi[i]
			if u <= acc {
				state = i
				break
			}
		}
		now, occ := 0.0, 0.0
		for now < t {
			exit := -g.At(state, state)
			var sojourn float64
			if exit <= 0 {
				sojourn = t - now
			} else {
				sojourn = rng.ExpFloat64() / exit
			}
			seg := math.Min(sojourn, t-now)
			if tagged[state] {
				occ += seg
			}
			now += seg
			if now >= t {
				break
			}
			// Next state proportional to rates.
			u := rng.Float64() * exit
			next := state
			var cum float64
			for j := 0; j < n; j++ {
				if j == state {
					continue
				}
				cum += g.At(state, j)
				if u <= cum {
					next = j
					break
				}
			}
			state = next
		}
		if occ <= x {
			count++
		}
	}
	return float64(count) / float64(reps)
}

func TestOccupationTimeCDFAgainstSimulation(t *testing.T) {
	g := twoStateGen(t, 2, 3)
	pi := []float64{1, 0}
	tagged := []bool{true, false}
	const tt = 1.0
	const reps = 60_000
	for _, x := range []float64{0.2, 0.5, 0.8} {
		got, err := g.OccupationTimeCDF(pi, tagged, tt, x, 1e-10)
		if err != nil {
			t.Fatal(err)
		}
		emp := simulateOccupationCDF(g, pi, tagged, tt, x, reps, 7)
		se := math.Sqrt(emp*(1-emp)/reps) + 1e-4
		if math.Abs(got-emp) > 4*se {
			t.Errorf("x=%g: analytic %.4f vs empirical %.4f (+/- %.4f)", x, got, emp, 4*se)
		}
	}
}

// O(t) equals the accumulated reward of the first-order model with
// rewards (1, 0); the Gil-Pelaez CDF of that model is an independent
// oracle.
func TestOccupationTimeCDFAgainstGilPelaez(t *testing.T) {
	g := twoStateGen(t, 2, 3)
	pi := []float64{0.5, 0.5}
	tagged := []bool{true, false}
	m, err := core.New(g, []float64{1, 0}, []float64{0, 0}, pi)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := laplace.NewTransformer(m)
	if err != nil {
		t.Fatal(err)
	}
	const tt = 1.5
	for _, x := range []float64{0.3, 0.75, 1.2} {
		got, err := g.OccupationTimeCDF(pi, tagged, tt, x, 1e-11)
		if err != nil {
			t.Fatal(err)
		}
		cdf, err := tr.CDF(tt, x, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.5*cdf[0] + 0.5*cdf[1]
		// Gil-Pelaez carries its own quadrature error near atoms; 1e-3 is
		// its realistic accuracy here.
		if math.Abs(got-want) > 2e-3 {
			t.Errorf("x=%g: occupation %.5f vs Gil-Pelaez %.5f", x, got, want)
		}
	}
}

func TestOccupationTimeCDFMoments(t *testing.T) {
	// E[O(t)] from the CDF by numerical integration of (1 - F) matches the
	// first-order mean reward with rewards (1, 0).
	g := twoStateGen(t, 2, 3)
	pi := []float64{1, 0}
	tagged := []bool{true, false}
	m, err := core.New(g, []float64{1, 0}, []float64{0, 0}, pi)
	if err != nil {
		t.Fatal(err)
	}
	const tt = 1.0
	res, err := m.AccumulatedReward(tt, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 400
	var mean float64
	for k := 0; k < steps; k++ {
		x := tt * (float64(k) + 0.5) / steps
		cdf, err := g.OccupationTimeCDF(pi, tagged, tt, x, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		mean += (1 - cdf) * tt / steps
	}
	if math.Abs(mean-res.Moments[1]) > 2e-3 {
		t.Errorf("integrated mean %.5f vs MRM mean %.5f", mean, res.Moments[1])
	}
}

func TestOccupationTimeCDFEdges(t *testing.T) {
	g := twoStateGen(t, 1, 1)
	pi := []float64{1, 0}
	tagged := []bool{true, false}
	// x >= t.
	if got, err := g.OccupationTimeCDF(pi, tagged, 1, 1, 1e-9); err != nil || got != 1 {
		t.Errorf("x=t: %g %v", got, err)
	}
	// x < 0.
	if got, err := g.OccupationTimeCDF(pi, tagged, 1, -0.1, 1e-9); err != nil || got != 0 {
		t.Errorf("x<0: %g %v", got, err)
	}
	// Bad arguments.
	if _, err := g.OccupationTimeCDF(pi, []bool{true}, 1, 0.5, 1e-9); err == nil {
		t.Error("short tags accepted")
	}
	if _, err := g.OccupationTimeCDF(pi, tagged, -1, 0.5, 1e-9); err == nil {
		t.Error("negative t accepted")
	}
	if _, err := g.OccupationTimeCDF(pi, tagged, 1, 0.5, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := g.OccupationTimeCDF([]float64{0.5, 0.6}, tagged, 1, 0.5, 1e-9); err == nil {
		t.Error("bad distribution accepted")
	}
}

func TestOccupationTimeCDFFrozenChain(t *testing.T) {
	frozen, err := ctmc.NewGeneratorFromDense(2, make([]float64, 4))
	if err != nil {
		t.Fatal(err)
	}
	pi := []float64{0.3, 0.7}
	tagged := []bool{true, false}
	// O(t) = t with prob 0.3 (tagged start), 0 with prob 0.7.
	got, err := frozen.OccupationTimeCDF(pi, tagged, 2, 1, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.7) > 1e-12 {
		t.Errorf("frozen CDF = %g, want 0.7", got)
	}
}

func TestOccupationTimeCDFMonotone(t *testing.T) {
	g := twoStateGen(t, 3, 1)
	pi := []float64{0, 1}
	tagged := []bool{false, true}
	prev := -1.0
	for _, x := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		got, err := g.OccupationTimeCDF(pi, tagged, 1, x, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		if got < prev-1e-12 {
			t.Errorf("CDF decreasing at x=%g", x)
		}
		if got < 0 || got > 1 {
			t.Errorf("CDF out of range at x=%g: %g", x, got)
		}
		prev = got
	}
}

func TestIntervalAvailability(t *testing.T) {
	g := twoStateGen(t, 0.2, 2) // mostly up (state 0 tagged): A = 2/2.2
	pi := []float64{1, 0}
	up := []bool{true, false}
	av, err := g.IntervalAvailability(pi, up, 5, 0.8, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if av < 0.5 || av > 1 {
		t.Errorf("availability = %g, expected high", av)
	}
	// Levels outside (0, 1].
	if got, err := g.IntervalAvailability(pi, up, 5, 0, 1e-10); err != nil || got != 1 {
		t.Errorf("level 0: %g %v", got, err)
	}
	if got, err := g.IntervalAvailability(pi, up, 5, 1.2, 1e-10); err != nil || got != 0 {
		t.Errorf("level > 1: %g %v", got, err)
	}
	// Consistency with the CDF.
	cdf, err := g.OccupationTimeCDF(pi, up, 5, 0.8*5, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(av-(1-cdf)) > 1e-12 {
		t.Errorf("availability %g inconsistent with CDF %g", av, cdf)
	}
}
