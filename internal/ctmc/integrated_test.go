package ctmc

import (
	"math"
	"testing"
)

func TestIntegratedTransientMassEqualsT(t *testing.T) {
	g := twoState(t, 2, 3)
	for _, tt := range []float64{0.1, 1, 5} {
		l, err := g.IntegratedTransient([]float64{1, 0}, tt, 1e-10)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, v := range l {
			total += v
		}
		if math.Abs(total-tt) > 1e-8*tt {
			t.Errorf("t=%g: total occupancy %.12g", tt, total)
		}
	}
}

func TestIntegratedTransientTwoStateClosedForm(t *testing.T) {
	a, b := 2.0, 3.0
	g := twoState(t, a, b)
	lam := a + b
	for _, tt := range []float64{0.2, 1, 3} {
		l, err := g.IntegratedTransient([]float64{1, 0}, tt, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		ss0 := b / lam
		want0 := ss0*tt + a/lam*(1-math.Exp(-lam*tt))/lam
		if math.Abs(l[0]-want0) > 1e-9*(1+want0) {
			t.Errorf("t=%g: L0 = %.12g, want %.12g", tt, l[0], want0)
		}
	}
}

func TestIntegratedTransientEdges(t *testing.T) {
	g := twoState(t, 1, 1)
	l, err := g.IntegratedTransient([]float64{0.5, 0.5}, 0, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if l[0] != 0 || l[1] != 0 {
		t.Errorf("t=0: %v", l)
	}
	// Frozen chain: occupancy = pi * t.
	frozen, err := NewGeneratorFromDense(2, make([]float64, 4))
	if err != nil {
		t.Fatal(err)
	}
	l, err = frozen.IntegratedTransient([]float64{0.3, 0.7}, 2, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l[0]-0.6) > 1e-12 || math.Abs(l[1]-1.4) > 1e-12 {
		t.Errorf("frozen: %v", l)
	}
	// Errors.
	if _, err := g.IntegratedTransient([]float64{1, 0}, -1, 1e-9); err == nil {
		t.Error("negative t accepted")
	}
	if _, err := g.IntegratedTransient([]float64{1, 0}, 1, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := g.IntegratedTransient([]float64{1}, 1, 1e-9); err == nil {
		t.Error("bad pi accepted")
	}
}

func TestIntegratedTransientConvergesToStationaryShare(t *testing.T) {
	g := twoState(t, 2, 3)
	const tt = 200.0
	l, err := g.IntegratedTransient([]float64{1, 0}, tt, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := g.StationaryDistribution()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ss {
		if math.Abs(l[i]/tt-ss[i]) > 0.01 {
			t.Errorf("long-run share state %d: %g vs stationary %g", i, l[i]/tt, ss[i])
		}
	}
}
