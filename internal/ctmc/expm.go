package ctmc

import (
	"fmt"
	"math"

	"somrm/internal/linalg"
)

// MatrixExponential computes exp(Q*t) densely by scaling and squaring with
// a Taylor series evaluated to machine precision. It is O(n^3 log(qt)) and
// exists as an independent oracle for the uniformization code paths in
// tests; production solvers use uniformization.
func (g *Generator) MatrixExponential(t float64) (*linalg.Dense, error) {
	if t < 0 {
		return nil, fmt.Errorf("ctmc: negative time %g", t)
	}
	n := g.N()
	a := linalg.NewDense(n, n)
	dense := g.m.Dense()
	for i := range dense {
		a.Data[i] = dense[i] * t
	}
	return expm(a)
}

// expm computes exp(a) by scaling and squaring: a is scaled by 2^-s so the
// infinity norm is at most 1/2, the Taylor series is summed until terms
// vanish, and the result is squared s times.
func expm(a *linalg.Dense) (*linalg.Dense, error) {
	n := a.Rows
	norm := infNorm(a)
	s := 0
	if norm > 0.5 {
		s = int(math.Ceil(math.Log2(norm / 0.5)))
	}
	scaled := a.Clone().Scale(math.Pow(2, -float64(s)))

	sum := linalg.Identity(n)
	term := linalg.Identity(n)
	for k := 1; k <= 64; k++ {
		next, err := term.Mul(scaled)
		if err != nil {
			return nil, fmt.Errorf("ctmc: expm term: %w", err)
		}
		term = next.Scale(1 / float64(k))
		added, err := sum.Add(term)
		if err != nil {
			return nil, fmt.Errorf("ctmc: expm sum: %w", err)
		}
		sum = added
		if infNorm(term) < 1e-18*infNorm(sum) {
			break
		}
	}
	for i := 0; i < s; i++ {
		sq, err := sum.Mul(sum)
		if err != nil {
			return nil, fmt.Errorf("ctmc: expm squaring: %w", err)
		}
		sum = sq
	}
	return sum, nil
}

func infNorm(m *linalg.Dense) float64 {
	var mx float64
	for i := 0; i < m.Rows; i++ {
		var rs float64
		for j := 0; j < m.Cols; j++ {
			rs += math.Abs(m.At(i, j))
		}
		if rs > mx {
			mx = rs
		}
	}
	return mx
}
