package ctmc

import (
	"errors"
	"fmt"
)

// ErrReducible is returned when the stationary solver detects a reducible
// chain (GTH meets a zero pivot).
var ErrReducible = errors.New("ctmc: chain appears reducible")

// StationaryDistribution computes the stationary distribution of an
// irreducible CTMC with the Grassmann–Taksar–Heyman (GTH) algorithm, which
// involves no subtractions of like-signed quantities and is therefore
// backward stable. It densifies the generator, so it is intended for
// moderate state counts (the paper's small example has 33 states).
func (g *Generator) StationaryDistribution() ([]float64, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("%w: empty chain", ErrNotGenerator)
	}
	if n == 1 {
		return []float64{1}, nil
	}

	// Work on a dense copy of the off-diagonal rates.
	a := g.m.Dense()
	for i := 0; i < n; i++ {
		a[i*n+i] = 0
	}

	// GTH elimination from the last state down to state 1 (Stewart,
	// "Introduction to the Numerical Solution of Markov Chains"). All
	// operations are additions/multiplications of non-negative numbers.
	for k := n - 1; k >= 1; k-- {
		var s float64
		for j := 0; j < k; j++ {
			s += a[k*n+j]
		}
		if s <= 0 {
			return nil, fmt.Errorf("%w: no transitions from state %d into the remaining block", ErrReducible, k)
		}
		for i := 0; i < k; i++ {
			a[i*n+k] /= s
		}
		for i := 0; i < k; i++ {
			aik := a[i*n+k]
			if aik == 0 {
				continue
			}
			for j := 0; j < k; j++ {
				if i == j {
					continue
				}
				a[i*n+j] += aik * a[k*n+j]
			}
		}
	}

	// Back substitution: pi[0] = 1, pi[k] = sum_{i<k} pi[i] * a[i][k].
	pi := make([]float64, n)
	pi[0] = 1
	for k := 1; k < n; k++ {
		var s float64
		for i := 0; i < k; i++ {
			s += pi[i] * a[i*n+k]
		}
		pi[k] = s
	}

	var total float64
	for _, p := range pi {
		total += p
	}
	if total <= 0 {
		return nil, fmt.Errorf("%w: non-positive normalization", ErrReducible)
	}
	for i := range pi {
		pi[i] /= total
	}
	return pi, nil
}

// MeanRewardRate returns pi · r for a distribution pi and per-state values
// r. It is the instantaneous expected reward rate under pi, used for the
// steady-state mean line in Figure 3 of the paper.
func MeanRewardRate(pi, r []float64) (float64, error) {
	if len(pi) != len(r) {
		return 0, fmt.Errorf("%w: pi has %d entries, rates %d", ErrBadDistribution, len(pi), len(r))
	}
	var s float64
	for i := range pi {
		s += pi[i] * r[i]
	}
	return s, nil
}
