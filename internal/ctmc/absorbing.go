package ctmc

import (
	"errors"
	"fmt"

	"somrm/internal/linalg"
)

// ErrNoAbsorbing is returned when an absorbing-chain analysis is asked of a
// chain without absorbing states.
var ErrNoAbsorbing = errors.New("ctmc: chain has no absorbing states")

// AbsorbingStates returns the indices of states with zero exit rate.
func (g *Generator) AbsorbingStates() []int {
	var out []int
	for i := 0; i < g.N(); i++ {
		if g.At(i, i) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// MeanTimeToAbsorption returns, per state, the expected time until the
// chain enters any absorbing state (0 for absorbing states themselves,
// +Inf is impossible for chains where absorption is certain; for chains
// with transient recurrent classes the linear solve fails and an error is
// returned). It solves -Q_TT tau = 1 on the transient block.
//
// Together with a reward structure this is the classical mean-time-to-
// failure performability measure: tag the failed states as absorbing and
// MTTF is the mean time to absorption from the initial state.
func (g *Generator) MeanTimeToAbsorption() ([]float64, error) {
	n := g.N()
	abs := g.AbsorbingStates()
	if len(abs) == 0 {
		return nil, ErrNoAbsorbing
	}
	isAbs := make([]bool, n)
	for _, i := range abs {
		isAbs[i] = true
	}
	// Transient index mapping.
	var trans []int
	for i := 0; i < n; i++ {
		if !isAbs[i] {
			trans = append(trans, i)
		}
	}
	out := make([]float64, n)
	if len(trans) == 0 {
		return out, nil
	}
	m := len(trans)
	a := linalg.NewDense(m, m)
	for ti, i := range trans {
		for tj, j := range trans {
			a.Set(ti, tj, -g.At(i, j))
		}
	}
	rhs := linalg.Ones(m)
	tau, err := linalg.SolveLinear(a, rhs)
	if err != nil {
		return nil, fmt.Errorf("ctmc: mean time to absorption: %w", err)
	}
	for ti, i := range trans {
		if tau[ti] < 0 {
			return nil, fmt.Errorf("ctmc: mean time to absorption: negative solution at state %d (absorption not certain?)", i)
		}
		out[i] = tau[ti]
	}
	return out, nil
}

// Reliability returns P(chain has not been absorbed by time t | Z(0) ~ pi):
// the surviving probability mass on transient states. For a repairable
// system with failure states made absorbing this is the classical
// reliability function R(t).
func (g *Generator) Reliability(pi []float64, t, eps float64) (float64, error) {
	abs := g.AbsorbingStates()
	if len(abs) == 0 {
		return 0, ErrNoAbsorbing
	}
	p, err := g.TransientDistribution(pi, t, eps)
	if err != nil {
		return 0, err
	}
	isAbs := make([]bool, g.N())
	for _, i := range abs {
		isAbs[i] = true
	}
	var surv float64
	for i, mass := range p {
		if !isAbs[i] {
			surv += mass
		}
	}
	if surv < 0 {
		surv = 0
	}
	if surv > 1 {
		surv = 1
	}
	return surv, nil
}

// AbsorptionProbabilities returns h[i][k] = probability that, starting in
// state i, the chain is eventually absorbed in the k-th absorbing state
// (ordered as returned by AbsorbingStates). Rows of transient states solve
// -Q_TT H = Q_TA.
func (g *Generator) AbsorptionProbabilities() ([][]float64, []int, error) {
	n := g.N()
	abs := g.AbsorbingStates()
	if len(abs) == 0 {
		return nil, nil, ErrNoAbsorbing
	}
	isAbs := make([]bool, n)
	absIdx := make(map[int]int, len(abs))
	for k, i := range abs {
		isAbs[i] = true
		absIdx[i] = k
	}
	var trans []int
	for i := 0; i < n; i++ {
		if !isAbs[i] {
			trans = append(trans, i)
		}
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, len(abs))
	}
	for k, i := range abs {
		out[i][k] = 1
	}
	if len(trans) == 0 {
		return out, abs, nil
	}
	m := len(trans)
	a := linalg.NewDense(m, m)
	for ti, i := range trans {
		for tj, j := range trans {
			a.Set(ti, tj, -g.At(i, j))
		}
	}
	lu, err := linalg.FactorLU(a)
	if err != nil {
		return nil, nil, fmt.Errorf("ctmc: absorption probabilities: %w", err)
	}
	for k, target := range abs {
		rhs := linalg.NewVector(m)
		for ti, i := range trans {
			rhs[ti] = g.At(i, target)
		}
		col, err := lu.Solve(rhs)
		if err != nil {
			return nil, nil, fmt.Errorf("ctmc: absorption probabilities: %w", err)
		}
		for ti, i := range trans {
			out[i][k] = col[ti]
		}
	}
	return out, abs, nil
}
