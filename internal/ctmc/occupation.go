package ctmc

import (
	"fmt"

	"somrm/internal/poisson"
	"somrm/internal/specfn"
)

// maxOccupationG caps the uniformization depth of the occupation-time
// algorithm, whose cost is quadratic in the Poisson truncation point.
const maxOccupationG = 20_000

// OccupationTimeCDF computes P(O(t) <= x), where O(t) is the total time
// the chain spends in the tagged subset during (0, t), by randomization:
// conditioned on k uniformized jumps, the k+1 sojourn fractions are
// exchangeable uniform spacings, so given that j of the k+1 visited states
// are tagged the occupation fraction is Beta(j, k+1-j). The visit-count
// distribution is computed exactly on the uniformized chain, making this
// an exact algorithm (up to the eps Poisson truncation) for the classical
// interval-availability measure — and, via B(t) = r_lo*t + (r_hi-r_lo)*O(t),
// for the reward distribution of any first-order model with two distinct
// reward rates.
//
// The cost is O(G^2) vector-matrix products (G = Poisson truncation
// point), so it is intended for moderate q*t.
func (g *Generator) OccupationTimeCDF(pi []float64, tagged []bool, t, x, eps float64) (float64, error) {
	if err := g.ValidateDistribution(pi); err != nil {
		return 0, err
	}
	n := g.N()
	if len(tagged) != n {
		return 0, fmt.Errorf("%w: %d tags for %d states", ErrBadDistribution, len(tagged), n)
	}
	if t < 0 {
		return 0, fmt.Errorf("ctmc: negative time %g", t)
	}
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("ctmc: eps must be in (0,1), got %g", eps)
	}
	switch {
	case x < 0:
		return 0, nil
	case x >= t:
		return 1, nil
	case t == 0:
		return 1, nil // O(0) = 0 <= x for x >= 0
	}

	q := g.MaxExitRate()
	if q == 0 {
		// Frozen chain: O(t) = t for tagged starts, 0 otherwise.
		var p float64
		for i, tag := range tagged {
			if !tag {
				p += pi[i]
			}
		}
		return p, nil
	}

	p, err := g.Uniformized(q)
	if err != nil {
		return 0, err
	}
	w, err := poisson.Window(q*t, eps)
	if err != nil {
		return 0, fmt.Errorf("ctmc: %w", err)
	}
	kMax := w.Left + len(w.Prob) - 1
	if kMax > maxOccupationG {
		return 0, fmt.Errorf("ctmc: occupation-time depth %d exceeds limit %d (q*t too large)", kMax, maxOccupationG)
	}

	frac := x / t

	// f[j][s] = P(X_k = s, j of X_0..X_k tagged). Initialize at k = 0.
	f := make([][]float64, kMax+2)
	next := make([][]float64, kMax+2)
	for j := range f {
		f[j] = make([]float64, n)
		next[j] = make([]float64, n)
	}
	for s := 0; s < n; s++ {
		j := 0
		if tagged[s] {
			j = 1
		}
		f[j][s] += pi[s]
	}

	var cdf float64
	addLevel := func(k int) error {
		// Weight of k jumps times the conditional Beta probability.
		wk := 0.0
		if k >= w.Left && k-w.Left < len(w.Prob) {
			wk = w.Prob[k-w.Left]
		}
		if wk == 0 {
			return nil
		}
		for j := 0; j <= k+1; j++ {
			var pj float64
			for s := 0; s < n; s++ {
				pj += f[j][s]
			}
			if pj == 0 {
				continue
			}
			beta, err := specfn.BetaCDFSpacings(j, k+1, frac)
			if err != nil {
				return fmt.Errorf("ctmc: %w", err)
			}
			cdf += wk * pj * beta
		}
		return nil
	}

	if err := addLevel(0); err != nil {
		return 0, err
	}
	scratch := make([]float64, n)
	for k := 1; k <= kMax; k++ {
		// Advance one uniformized step: f'_{j}(s') =
		// [f_{j - tag(s')} P'](s').
		for j := 0; j <= k+1; j++ {
			for s := range next[j] {
				next[j][s] = 0
			}
		}
		for j := 0; j <= k; j++ {
			if err := p.VecMat(f[j], scratch); err != nil {
				return 0, fmt.Errorf("ctmc: %w", err)
			}
			for s := 0; s < n; s++ {
				jj := j
				if tagged[s] {
					jj = j + 1
				}
				next[jj][s] += scratch[s]
			}
		}
		f, next = next, f
		if err := addLevel(k); err != nil {
			return 0, err
		}
	}
	// Truncation drops at most eps probability mass.
	if cdf < 0 {
		cdf = 0
	}
	if cdf > 1 {
		cdf = 1
	}
	return cdf, nil
}

// IntervalAvailability computes P(O(t)/t >= level): the probability that
// the chain spends at least the given fraction of (0, t) in the tagged
// (operational) subset — the classical interval availability measure.
func (g *Generator) IntervalAvailability(pi []float64, operational []bool, t, level, eps float64) (float64, error) {
	if level <= 0 {
		return 1, nil
	}
	if level > 1 {
		return 0, nil
	}
	cdf, err := g.OccupationTimeCDF(pi, operational, t, level*t, eps)
	if err != nil {
		return 0, err
	}
	// P(O/t >= level) = 1 - P(O < level*t); O has a continuous part plus
	// atoms only at 0 and t, so using the closed CDF here is exact up to
	// the atom at exactly level*t in degenerate cases.
	return 1 - cdf, nil
}
