package ctmc

import (
	"errors"
	"math"
	"testing"

	"somrm/internal/sparse"
)

// twoState returns the generator of the 2-state chain with rates a (0->1)
// and b (1->0).
func twoState(t *testing.T, a, b float64) *Generator {
	t.Helper()
	g, err := NewGeneratorFromDense(2, []float64{-a, a, b, -b})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGeneratorValid(t *testing.T) {
	g := twoState(t, 2, 3)
	if g.N() != 2 {
		t.Fatalf("N = %d", g.N())
	}
	if g.MaxExitRate() != 3 {
		t.Errorf("MaxExitRate = %g, want 3", g.MaxExitRate())
	}
	if g.At(0, 1) != 2 || g.At(1, 1) != -3 {
		t.Errorf("entries wrong: %g %g", g.At(0, 1), g.At(1, 1))
	}
}

func TestNewGeneratorRejectsBadMatrices(t *testing.T) {
	cases := []struct {
		name string
		n    int
		data []float64
	}{
		{"negative off-diagonal", 2, []float64{-1, 1, -2, 2}},
		{"positive diagonal", 2, []float64{1, -1, 1, -1}},
		{"row sum nonzero", 2, []float64{-1, 2, 1, -1}},
		{"NaN rate", 2, []float64{-1, 1, math.NaN(), 0}},
		{"Inf rate", 2, []float64{math.Inf(-1), math.Inf(1), 1, -1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewGeneratorFromDense(c.n, c.data); !errors.Is(err, ErrNotGenerator) {
				t.Errorf("err = %v, want ErrNotGenerator", err)
			}
		})
	}
}

func TestNewGeneratorNonSquare(t *testing.T) {
	m, err := sparse.NewCSRFromDense(2, 3, make([]float64, 6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewGenerator(m); !errors.Is(err, ErrNotGenerator) {
		t.Errorf("non-square: %v", err)
	}
}

func TestNewGeneratorFromRates(t *testing.T) {
	g, err := NewGeneratorFromRates(3, func(i, j int) float64 {
		if j == (i+1)%3 {
			return float64(i + 1)
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.At(0, 1) != 1 || g.At(1, 2) != 2 || g.At(2, 0) != 3 {
		t.Error("rates misplaced")
	}
	if g.At(2, 2) != -3 {
		t.Errorf("diagonal = %g, want -3", g.At(2, 2))
	}
	if _, err := NewGeneratorFromRates(2, func(i, j int) float64 { return -1 }); !errors.Is(err, ErrNotGenerator) {
		t.Errorf("negative rate fn: %v", err)
	}
}

func TestUniformized(t *testing.T) {
	g := twoState(t, 2, 4)
	p, err := g.Uniformized(4)
	if err != nil {
		t.Fatal(err)
	}
	// P' = Q/4 + I = [[0.5, 0.5], [1, 0]].
	if p.At(0, 0) != 0.5 || p.At(0, 1) != 0.5 || p.At(1, 0) != 1 {
		t.Errorf("P' = %v", p.Dense())
	}
	if got := p.At(1, 1); got != 0 {
		t.Errorf("P'(1,1) = %g, want 0", got)
	}
	if !p.IsSubstochastic(1e-12) {
		t.Error("uniformized matrix not substochastic")
	}
	if _, err := g.Uniformized(3.9); err == nil {
		t.Error("rate below max exit accepted")
	}
	if _, err := g.Uniformized(0); err == nil {
		t.Error("zero rate accepted")
	}
	// Larger rate is allowed and keeps stochasticity.
	p8, err := g.Uniformized(8)
	if err != nil {
		t.Fatal(err)
	}
	sums := p8.RowSums()
	for i, s := range sums {
		if math.Abs(s-1) > 1e-12 {
			t.Errorf("row %d sums to %g", i, s)
		}
	}
}

func TestValidateDistribution(t *testing.T) {
	g := twoState(t, 1, 1)
	if err := g.ValidateDistribution([]float64{0.25, 0.75}); err != nil {
		t.Errorf("valid distribution rejected: %v", err)
	}
	bad := [][]float64{
		{1},
		{0.5, 0.6},
		{-0.1, 1.1},
		{math.NaN(), 1},
	}
	for _, pi := range bad {
		if err := g.ValidateDistribution(pi); !errors.Is(err, ErrBadDistribution) {
			t.Errorf("distribution %v accepted", pi)
		}
	}
}

func TestUnitDistribution(t *testing.T) {
	pi, err := UnitDistribution(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pi[0] != 0 || pi[1] != 1 || pi[2] != 0 {
		t.Errorf("pi = %v", pi)
	}
	if _, err := UnitDistribution(3, 3); !errors.Is(err, ErrBadDistribution) {
		t.Errorf("out of range: %v", err)
	}
	if _, err := UnitDistribution(3, -1); !errors.Is(err, ErrBadDistribution) {
		t.Errorf("negative index: %v", err)
	}
}
