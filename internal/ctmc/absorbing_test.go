package ctmc

import (
	"errors"
	"math"
	"testing"
)

// erlangChain builds 0 -> 1 -> ... -> n (absorbing) with rate mu each.
func erlangChain(t *testing.T, n int, mu float64) *Generator {
	t.Helper()
	g, err := NewGeneratorFromRates(n+1, func(i, j int) float64 {
		if j == i+1 && i < n {
			return mu
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAbsorbingStates(t *testing.T) {
	g := erlangChain(t, 3, 2)
	abs := g.AbsorbingStates()
	if len(abs) != 1 || abs[0] != 3 {
		t.Errorf("absorbing = %v", abs)
	}
	irr := twoState(t, 1, 1)
	if len(irr.AbsorbingStates()) != 0 {
		t.Error("irreducible chain has absorbing states")
	}
}

func TestMeanTimeToAbsorptionErlang(t *testing.T) {
	const mu = 2.0
	g := erlangChain(t, 4, mu)
	tau, err := g.MeanTimeToAbsorption()
	if err != nil {
		t.Fatal(err)
	}
	// From state i, absorption needs 4-i Exp(mu) stages.
	for i := 0; i <= 4; i++ {
		want := float64(4-i) / mu
		if math.Abs(tau[i]-want) > 1e-12 {
			t.Errorf("tau[%d] = %.14g, want %.14g", i, tau[i], want)
		}
	}
}

func TestMeanTimeToAbsorptionWithLoops(t *testing.T) {
	// 0 <-> 1 -> 2 (absorbing): tau solves a genuine linear system.
	g, err := NewGeneratorFromRates(3, func(i, j int) float64 {
		switch {
		case i == 0 && j == 1:
			return 1
		case i == 1 && j == 0:
			return 3
		case i == 1 && j == 2:
			return 2
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	tau, err := g.MeanTimeToAbsorption()
	if err != nil {
		t.Fatal(err)
	}
	// tau0 = 1 + tau1; tau1 = 1/5 + (3/5) tau0 => tau0 = 3, tau1 = 2.
	if math.Abs(tau[0]-3) > 1e-12 || math.Abs(tau[1]-2) > 1e-12 || tau[2] != 0 {
		t.Errorf("tau = %v, want [3 2 0]", tau)
	}
}

func TestMeanTimeToAbsorptionNoAbsorbing(t *testing.T) {
	g := twoState(t, 1, 1)
	if _, err := g.MeanTimeToAbsorption(); !errors.Is(err, ErrNoAbsorbing) {
		t.Errorf("err = %v", err)
	}
}

func TestReliabilityExponential(t *testing.T) {
	// Single transient state with rate lambda to absorption: R(t) = e^{-lambda t}.
	const lambda = 1.7
	g, err := NewGeneratorFromDense(2, []float64{-lambda, lambda, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.1, 1, 3} {
		r, err := g.Reliability([]float64{1, 0}, tt, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Exp(-lambda * tt)
		if math.Abs(r-want) > 1e-10 {
			t.Errorf("R(%g) = %.12g, want %.12g", tt, r, want)
		}
	}
	if _, err := twoState(t, 1, 1).Reliability([]float64{1, 0}, 1, 1e-9); !errors.Is(err, ErrNoAbsorbing) {
		t.Errorf("irreducible reliability: %v", err)
	}
}

func TestReliabilityMatchesMTTA(t *testing.T) {
	// integral_0^inf R(t) dt = E[T] when absorption is certain.
	g := erlangChain(t, 3, 2)
	tau, err := g.MeanTimeToAbsorption()
	if err != nil {
		t.Fatal(err)
	}
	pi := []float64{1, 0, 0, 0}
	const dt = 0.01
	var integral float64
	for x := dt / 2; x < 12; x += dt {
		r, err := g.Reliability(pi, x, 1e-10)
		if err != nil {
			t.Fatal(err)
		}
		integral += r * dt
	}
	if math.Abs(integral-tau[0]) > 0.01 {
		t.Errorf("integral R = %.4f, MTTA = %.4f", integral, tau[0])
	}
}

func TestAbsorptionProbabilities(t *testing.T) {
	// 0 -> 1 (rate a) and 0 -> 2 (rate b), both absorbing: probabilities
	// a/(a+b) and b/(a+b).
	a, b := 2.0, 3.0
	g, err := NewGeneratorFromRates(3, func(i, j int) float64 {
		if i == 0 && j == 1 {
			return a
		}
		if i == 0 && j == 2 {
			return b
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	h, abs, err := g.AbsorptionProbabilities()
	if err != nil {
		t.Fatal(err)
	}
	if len(abs) != 2 || abs[0] != 1 || abs[1] != 2 {
		t.Fatalf("absorbing = %v", abs)
	}
	if math.Abs(h[0][0]-a/(a+b)) > 1e-12 || math.Abs(h[0][1]-b/(a+b)) > 1e-12 {
		t.Errorf("h[0] = %v", h[0])
	}
	// Absorbing states are certain to stay.
	if h[1][0] != 1 || h[2][1] != 1 {
		t.Errorf("absorbing rows: %v %v", h[1], h[2])
	}
	// Rows sum to 1.
	for i, row := range h {
		var s float64
		for _, v := range row {
			s += v
		}
		if math.Abs(s-1) > 1e-12 {
			t.Errorf("row %d sums to %g", i, s)
		}
	}
	if _, _, err := twoState(t, 1, 1).AbsorptionProbabilities(); !errors.Is(err, ErrNoAbsorbing) {
		t.Errorf("irreducible: %v", err)
	}
}
