package ctmc

import (
	"errors"
	"math"
	"testing"
)

func TestNewBirthDeathStructure(t *testing.T) {
	g, err := NewBirthDeath([]float64{2, 3}, []float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 {
		t.Fatalf("N = %d", g.N())
	}
	if g.At(0, 1) != 2 || g.At(1, 2) != 3 || g.At(1, 0) != 1 || g.At(2, 1) != 4 {
		t.Error("rates misplaced")
	}
	if g.At(0, 2) != 0 || g.At(2, 0) != 0 {
		t.Error("non-neighbor transitions present")
	}
	if g.At(1, 1) != -4 {
		t.Errorf("diagonal(1) = %g, want -4", g.At(1, 1))
	}
}

func TestNewBirthDeathErrors(t *testing.T) {
	if _, err := NewBirthDeath([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrNotGenerator) {
		t.Errorf("length mismatch: %v", err)
	}
	if _, err := NewBirthDeath([]float64{-1}, []float64{1}); !errors.Is(err, ErrNotGenerator) {
		t.Errorf("negative birth: %v", err)
	}
	if _, err := NewBirthDeath([]float64{1}, []float64{math.NaN()}); !errors.Is(err, ErrNotGenerator) {
		t.Errorf("NaN death: %v", err)
	}
}

func TestBirthDeathStationaryMM1Like(t *testing.T) {
	// Constant rates lambda=1, mu=2 on 4 states: pi_i ~ (1/2)^i.
	up := []float64{1, 1, 1}
	down := []float64{2, 2, 2}
	pi, err := BirthDeathStationary(up, down)
	if err != nil {
		t.Fatal(err)
	}
	norm := 1 + 0.5 + 0.25 + 0.125
	for i, want := range []float64{1, 0.5, 0.25, 0.125} {
		if math.Abs(pi[i]-want/norm) > 1e-14 {
			t.Errorf("pi[%d] = %.15g, want %.15g", i, pi[i], want/norm)
		}
	}
}

func TestBirthDeathStationaryErrors(t *testing.T) {
	if _, err := BirthDeathStationary([]float64{0}, []float64{1}); !errors.Is(err, ErrReducible) {
		t.Errorf("zero birth rate: %v", err)
	}
	if _, err := BirthDeathStationary([]float64{1, 2}, []float64{1}); !errors.Is(err, ErrNotGenerator) {
		t.Errorf("length mismatch: %v", err)
	}
}

func TestBirthDeathStationaryLargeNoOverflow(t *testing.T) {
	// Strongly increasing ratios would overflow without rescaling.
	n := 2000
	up := make([]float64, n)
	down := make([]float64, n)
	for i := range up {
		up[i] = 10
		down[i] = 1
	}
	pi, err := BirthDeathStationary(up, down)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range pi {
		if math.IsNaN(p) || p < 0 {
			t.Fatal("invalid stationary entry")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("mass = %.12g", sum)
	}
	// Mass should concentrate at the top of the chain.
	if pi[n] < 0.89 {
		t.Errorf("pi[top] = %g, want ~0.9", pi[n])
	}
}

// The ON-OFF background chain: binomial stationary distribution.
func TestBirthDeathStationaryBinomial(t *testing.T) {
	nSrc := 10
	alpha, beta := 4.0, 3.0
	up := make([]float64, nSrc)
	down := make([]float64, nSrc)
	for i := 0; i < nSrc; i++ {
		up[i] = float64(nSrc-i) * beta
		down[i] = float64(i+1) * alpha
	}
	pi, err := BirthDeathStationary(up, down)
	if err != nil {
		t.Fatal(err)
	}
	p := beta / (alpha + beta)
	for i := 0; i <= nSrc; i++ {
		want := binomPMF(nSrc, i, p)
		if math.Abs(pi[i]-want) > 1e-12 {
			t.Errorf("pi[%d] = %.14g, want binomial %.14g", i, pi[i], want)
		}
	}
}

func binomPMF(n, k int, p float64) float64 {
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c * math.Pow(p, float64(k)) * math.Pow(1-p, float64(n-k))
}

func TestMatrixExponentialIdentityAtZero(t *testing.T) {
	g := twoState(t, 1, 2)
	e, err := g.MatrixExponential(0)
	if err != nil {
		t.Fatal(err)
	}
	if e.At(0, 0) != 1 || e.At(0, 1) != 0 {
		t.Errorf("expm(0) = %v", e.Data)
	}
	if _, err := g.MatrixExponential(-1); err == nil {
		t.Error("negative time accepted")
	}
}

func TestMatrixExponentialRowsSumToOne(t *testing.T) {
	g, err := NewGeneratorFromRates(5, func(i, j int) float64 {
		return float64((i+2*j)%4) * 1.3
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := g.MatrixExponential(0.7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.N(); i++ {
		var s float64
		for j := 0; j < g.N(); j++ {
			v := e.At(i, j)
			if v < -1e-12 {
				t.Errorf("negative probability e[%d][%d] = %g", i, j, v)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-12 {
			t.Errorf("row %d sums to %.15g", i, s)
		}
	}
}
