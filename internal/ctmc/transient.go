package ctmc

import (
	"fmt"

	"somrm/internal/poisson"
)

// TransientDistribution computes p(t) = pi * exp(Qt) by uniformization
// (Jensen's method): p(t) = sum_k Poisson(qt; k) * pi * P'^k with
// P' = Q/q + I. The truncation drops at most eps probability mass.
func (g *Generator) TransientDistribution(pi []float64, t, eps float64) ([]float64, error) {
	if err := g.ValidateDistribution(pi); err != nil {
		return nil, err
	}
	if t < 0 {
		return nil, fmt.Errorf("ctmc: negative time %g", t)
	}
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("ctmc: eps must be in (0,1), got %g", eps)
	}
	n := g.N()
	out := make([]float64, n)
	if t == 0 || g.q == 0 {
		copy(out, pi)
		return out, nil
	}
	q := g.q
	p, err := g.Uniformized(q)
	if err != nil {
		return nil, err
	}
	w, err := poisson.Window(q*t, eps)
	if err != nil {
		return nil, fmt.Errorf("ctmc: %w", err)
	}

	cur := append([]float64(nil), pi...)
	next := make([]float64, n)
	for k := 0; k < w.Left; k++ {
		if err := p.VecMat(cur, next); err != nil {
			return nil, fmt.Errorf("ctmc: %w", err)
		}
		cur, next = next, cur
	}
	for idx, weight := range w.Prob {
		if idx > 0 {
			if err := p.VecMat(cur, next); err != nil {
				return nil, fmt.Errorf("ctmc: %w", err)
			}
			cur, next = next, cur
		}
		if weight == 0 {
			continue
		}
		for i := 0; i < n; i++ {
			out[i] += weight * cur[i]
		}
	}
	return out, nil
}

// IntegratedTransient computes L(t) = integral_0^t p(u) du, the expected
// total time spent in each state during (0, t), by the uniformization
// identity
//
//	integral_0^t e^{Qu} du = (1/q) sum_k P(Poisson(qt) > k) P'^k.
//
// L(t).r is the mean accumulated reward of a first-order model — used as
// an independent oracle in the tests — and L(t) itself is the expected
// occupancy vector (e.g. expected downtime).
func (g *Generator) IntegratedTransient(pi []float64, t, eps float64) ([]float64, error) {
	if err := g.ValidateDistribution(pi); err != nil {
		return nil, err
	}
	if t < 0 {
		return nil, fmt.Errorf("ctmc: negative time %g", t)
	}
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("ctmc: eps must be in (0,1), got %g", eps)
	}
	n := g.N()
	out := make([]float64, n)
	if t == 0 {
		return out, nil
	}
	q := g.q
	if q == 0 {
		for i := range out {
			out[i] = pi[i] * t
		}
		return out, nil
	}
	p, err := g.Uniformized(q)
	if err != nil {
		return nil, err
	}
	// Truncate when the remaining tail contributes less than eps*t mass:
	// sum_{k>K} P(X > k)/q = (qt - E[min(X, K+1)])/q <= eps*t.
	lambda := q * t
	cur := append([]float64(nil), pi...)
	next := make([]float64, n)
	tail := 1 - poisson.PMF(0, lambda) // P(X > 0)
	var weightSum float64
	for k := 0; ; k++ {
		w := tail / q
		for i := 0; i < n; i++ {
			out[i] += w * cur[i]
		}
		weightSum += tail / q
		// Remaining mass: t - weightSum accumulated so far bounds the rest.
		if t-weightSum < eps*t || tail == 0 {
			break
		}
		tail -= poisson.PMF(k+1, lambda)
		if tail < 0 {
			tail = 0
		}
		if err := p.VecMat(cur, next); err != nil {
			return nil, fmt.Errorf("ctmc: %w", err)
		}
		cur, next = next, cur
	}
	return out, nil
}

// TransientAt computes the transient distribution at several time points in
// one call. Times must be non-decreasing and non-negative; each point is
// solved independently from the initial distribution (uniformization has no
// restart penalty worth exploiting at this scale).
func (g *Generator) TransientAt(pi []float64, times []float64, eps float64) ([][]float64, error) {
	out := make([][]float64, len(times))
	prev := 0.0
	for i, t := range times {
		if t < prev {
			return nil, fmt.Errorf("ctmc: times must be non-decreasing (t[%d]=%g after %g)", i, t, prev)
		}
		prev = t
		p, err := g.TransientDistribution(pi, t, eps)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}
