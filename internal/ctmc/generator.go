// Package ctmc implements the continuous-time Markov chain substrate of the
// reward models: generator matrices, uniformized transient analysis,
// stationary distributions (GTH), a dense matrix exponential used as a test
// oracle, and birth-death chain builders for the paper's ON-OFF example.
package ctmc

import (
	"errors"
	"fmt"
	"math"

	"somrm/internal/sparse"
)

// Default numerical tolerances for generator validation.
const (
	// RowSumTol is the largest acceptable |row sum| of a generator.
	RowSumTol = 1e-9
)

var (
	// ErrNotGenerator is returned when a matrix fails generator validation.
	ErrNotGenerator = errors.New("ctmc: not a valid generator matrix")
	// ErrBadDistribution is returned for invalid probability vectors.
	ErrBadDistribution = errors.New("ctmc: not a valid probability distribution")
)

// Generator is a validated CTMC generator (infinitesimal) matrix Q:
// non-negative off-diagonal rates, diagonal q_ii = -sum of the row's
// off-diagonal rates.
type Generator struct {
	m *sparse.CSR
	q float64 // max_i |q_ii|, the uniformization rate
}

// NewGenerator validates and wraps a CSR matrix as a generator.
func NewGenerator(m *sparse.CSR) (*Generator, error) {
	if m.Rows() != m.Cols() {
		return nil, fmt.Errorf("%w: shape %dx%d", ErrNotGenerator, m.Rows(), m.Cols())
	}
	n := m.Rows()
	var q float64
	for i := 0; i < n; i++ {
		var rowSum float64
		bad := false
		badJ := -1
		badV := 0.0
		m.Range(i, func(j int, v float64) {
			rowSum += v
			if math.IsNaN(v) || math.IsInf(v, 0) {
				bad, badJ, badV = true, j, v
			}
			if i != j && v < 0 {
				bad, badJ, badV = true, j, v
			}
			if i == j && v > 0 {
				bad, badJ, badV = true, j, v
			}
		})
		if bad {
			return nil, fmt.Errorf("%w: invalid rate q[%d][%d]=%g", ErrNotGenerator, i, badJ, badV)
		}
		// Row sums must vanish up to rounding, scaled by the row magnitude.
		scale := math.Abs(m.At(i, i))
		if scale < 1 {
			scale = 1
		}
		if math.Abs(rowSum) > RowSumTol*scale {
			return nil, fmt.Errorf("%w: row %d sums to %g", ErrNotGenerator, i, rowSum)
		}
		if d := -m.At(i, i); d > q {
			q = d
		}
	}
	return &Generator{m: m, q: q}, nil
}

// NewGeneratorFromDense validates a row-major dense rate matrix.
func NewGeneratorFromDense(n int, data []float64) (*Generator, error) {
	m, err := sparse.NewCSRFromDense(n, n, data)
	if err != nil {
		return nil, fmt.Errorf("ctmc: %w", err)
	}
	return NewGenerator(m)
}

// NewGeneratorFromRates builds a generator from off-diagonal rates only:
// rates[i][j] is the transition rate i -> j (i != j); diagonals are derived.
// Entries on the diagonal of rates are ignored.
func NewGeneratorFromRates(n int, rate func(i, j int) float64) (*Generator, error) {
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		var exit float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := rate(i, j)
			if v == 0 {
				continue
			}
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: rate(%d,%d)=%g", ErrNotGenerator, i, j, v)
			}
			if err := b.Add(i, j, v); err != nil {
				return nil, fmt.Errorf("ctmc: %w", err)
			}
			exit += v
		}
		if exit != 0 {
			if err := b.Add(i, i, -exit); err != nil {
				return nil, fmt.Errorf("ctmc: %w", err)
			}
		}
	}
	return NewGenerator(b.Build())
}

// N returns the number of states.
func (g *Generator) N() int { return g.m.Rows() }

// Matrix returns the underlying CSR generator matrix (shared; treat as
// read-only).
func (g *Generator) Matrix() *sparse.CSR { return g.m }

// MaxExitRate returns q = max_i |q_ii|, the uniformization rate.
func (g *Generator) MaxExitRate() float64 { return g.q }

// At returns the rate q_ij.
func (g *Generator) At(i, j int) float64 { return g.m.At(i, j) }

// Uniformized returns the DTMC matrix Q' = Q/q + I for the given
// uniformization rate q >= MaxExitRate (q = 0 is rejected). The result is
// stochastic up to rounding.
func (g *Generator) Uniformized(q float64) (*sparse.CSR, error) {
	if q <= 0 {
		return nil, fmt.Errorf("ctmc: uniformization rate must be positive, got %g", q)
	}
	if q < g.q*(1-1e-12) {
		return nil, fmt.Errorf("ctmc: uniformization rate %g below max exit rate %g", q, g.q)
	}
	scaled := g.m.Scaled(1 / q)
	ones := make([]float64, g.N())
	for i := range ones {
		ones[i] = 1
	}
	p, err := scaled.AddDiagonal(ones)
	if err != nil {
		return nil, fmt.Errorf("ctmc: %w", err)
	}
	return p, nil
}

// ValidateDistribution checks that pi is a probability vector over the
// chain's state space.
func (g *Generator) ValidateDistribution(pi []float64) error {
	if len(pi) != g.N() {
		return fmt.Errorf("%w: length %d, want %d", ErrBadDistribution, len(pi), g.N())
	}
	var sum float64
	for i, p := range pi {
		if p < 0 || math.IsNaN(p) || p > 1+1e-12 {
			return fmt.Errorf("%w: pi[%d]=%g", ErrBadDistribution, i, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("%w: sums to %g", ErrBadDistribution, sum)
	}
	return nil
}

// UnitDistribution returns the distribution concentrated on state i.
func UnitDistribution(n, i int) ([]float64, error) {
	if i < 0 || i >= n {
		return nil, fmt.Errorf("%w: state %d of %d", ErrBadDistribution, i, n)
	}
	pi := make([]float64, n)
	pi[i] = 1
	return pi, nil
}
