package sim

import (
	"errors"
	"math"
	"testing"

	"somrm/internal/core"
	"somrm/internal/ctmc"
	"somrm/internal/sparse"
)

func buildModel(t *testing.T, a, b float64, r, s []float64, pi []float64) *core.Model {
	t.Helper()
	gen, err := ctmc.NewGeneratorFromDense(2, []float64{-a, a, b, -b})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(gen, r, s, pi)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newImpulseBuilder(t *testing.T, n, from, to int, y float64) *sparse.CSR {
	t.Helper()
	b := sparse.NewBuilder(n, n)
	if err := b.Add(from, to, y); err != nil {
		t.Fatal(err)
	}
	return b.Build()
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, 1); !errors.Is(err, ErrBadArgument) {
		t.Errorf("nil model: %v", err)
	}
}

func TestSampleRewardErrors(t *testing.T) {
	m := buildModel(t, 1, 1, []float64{1, 1}, []float64{0, 0}, []float64{1, 0})
	s, err := New(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SampleReward(-1); !errors.Is(err, ErrBadArgument) {
		t.Errorf("negative t: %v", err)
	}
	if _, err := s.SampleReward(math.NaN()); !errors.Is(err, ErrBadArgument) {
		t.Errorf("NaN t: %v", err)
	}
}

func TestSampleRewardDeterministic(t *testing.T) {
	// Zero variance and equal drifts: B(t) = r*t exactly regardless of the
	// trajectory.
	m := buildModel(t, 2, 3, []float64{2, 2}, []float64{0, 0}, []float64{1, 0})
	s, err := New(m, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		b, err := s.SampleReward(1.5)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(b-3) > 1e-12 {
			t.Fatalf("deterministic reward = %.15g, want 3", b)
		}
	}
}

func TestSampleRewardZeroHorizon(t *testing.T) {
	m := buildModel(t, 1, 1, []float64{5, 5}, []float64{1, 1}, []float64{1, 0})
	s, err := New(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.SampleReward(0)
	if err != nil || b != 0 {
		t.Errorf("t=0: b=%g err=%v", b, err)
	}
}

func TestEstimateMatchesRandomization(t *testing.T) {
	m := buildModel(t, 2, 5, []float64{-1, 3}, []float64{0.5, 2}, []float64{0.7, 0.3})
	const tt = 0.8
	res, err := m.AccumulatedReward(tt, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	est, err := s.EstimateMoments(tt, 3, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j <= 3; j++ {
		hw, err := est.HalfWidth95(j)
		if err != nil {
			t.Fatal(err)
		}
		// Allow 3.5 sigma (99.95%) to keep the test stable.
		slack := hw / 1.96 * 3.5
		if math.Abs(est.Moments[j]-res.Moments[j]) > slack {
			t.Errorf("j=%d: sim %.6g vs analytic %.6g (+/- %.3g)", j, est.Moments[j], res.Moments[j], slack)
		}
	}
}

func TestEstimateWithImpulses(t *testing.T) {
	m := buildModel(t, 2, 3, []float64{0, 0}, []float64{0, 0}, []float64{1, 0})
	b := sparse.NewBuilder(2, 2)
	if err := b.Add(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	mi, err := m.WithImpulses(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	const tt = 2.0
	res, err := mi.AccumulatedReward(tt, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(mi, 3)
	if err != nil {
		t.Fatal(err)
	}
	est, err := s.EstimateMoments(tt, 1, 80_000)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := est.HalfWidth95(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Moments[1]-res.Moments[1]) > hw/1.96*3.5 {
		t.Errorf("impulse mean: sim %.5g vs analytic %.5g", est.Moments[1], res.Moments[1])
	}
}

func TestEstimateErrors(t *testing.T) {
	m := buildModel(t, 1, 1, []float64{1, 1}, []float64{0, 0}, []float64{1, 0})
	s, err := New(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.EstimateMoments(1, -1, 100); !errors.Is(err, ErrBadArgument) {
		t.Errorf("negative order: %v", err)
	}
	if _, err := s.EstimateMoments(1, 2, 1); !errors.Is(err, ErrBadArgument) {
		t.Errorf("reps=1: %v", err)
	}
	est, err := s.EstimateMoments(1, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.HalfWidth95(3); !errors.Is(err, ErrBadArgument) {
		t.Errorf("out-of-range moment: %v", err)
	}
	if _, err := est.HalfWidth95(-1); !errors.Is(err, ErrBadArgument) {
		t.Errorf("negative moment: %v", err)
	}
}

func TestAbsorbingChain(t *testing.T) {
	// State 1 is absorbing with zero reward; state 0 accumulates drift 2.
	gen, err := ctmc.NewGeneratorFromDense(2, []float64{-1, 1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(gen, []float64{2, 0}, []float64{0, 0}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(m, 11)
	if err != nil {
		t.Fatal(err)
	}
	// E[B(t)] = 2 * E[min(T, t)] with T ~ Exp(1):
	// E[min(T,t)] = 1 - e^{-t}.
	const tt = 3.0
	est, err := s.EstimateMoments(tt, 1, 120_000)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * (1 - math.Exp(-tt))
	hw, err := est.HalfWidth95(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Moments[1]-want) > hw/1.96*3.5 {
		t.Errorf("absorbing mean = %.5g, want %.5g", est.Moments[1], want)
	}
	// And the analytic solver agrees.
	res, err := m.AccumulatedReward(tt, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Moments[1]-want) > 1e-9 {
		t.Errorf("randomization absorbing mean = %.10g, want %.10g", res.Moments[1], want)
	}
}

func TestReproducibleSeeding(t *testing.T) {
	m := buildModel(t, 2, 3, []float64{1, -1}, []float64{1, 2}, []float64{1, 0})
	s1, err := New(m, 99)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(m, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b1, err1 := s1.SampleReward(1)
		b2, err2 := s2.SampleReward(1)
		if err1 != nil || err2 != nil || b1 != b2 {
			t.Fatalf("same seed diverged at %d: %g vs %g", i, b1, b2)
		}
	}
}
