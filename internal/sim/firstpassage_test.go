package sim

import (
	"errors"
	"math"
	"testing"

	"somrm/internal/brownian"
	"somrm/internal/core"
	"somrm/internal/ctmc"
)

func singleStateModel(t *testing.T, r, s2 float64) *core.Model {
	t.Helper()
	gen, err := ctmc.NewGeneratorFromDense(1, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(gen, []float64{r}, []float64{s2}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFirstPassageDeterministicRamp(t *testing.T) {
	m := singleStateModel(t, 2, 0)
	s, err := New(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := s.FirstPassageTime(3, 10, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !fp.Hit || math.Abs(fp.Time-1.5) > 1e-9 {
		t.Errorf("ramp passage = %+v, want hit at 1.5", fp)
	}
	// Level above reach within horizon.
	fp, err = s.FirstPassageTime(100, 10, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Hit {
		t.Error("unreachable level reported hit")
	}
	// Level already met at time 0.
	fp, err = s.FirstPassageTime(-1, 10, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !fp.Hit || fp.Time != 0 {
		t.Errorf("level below start: %+v", fp)
	}
}

// For pure Brownian motion with drift mu > 0 and variance s2 the passage
// probability to level c within time t is the inverse-Gaussian CDF:
// P(T <= t) = Phi((mu t - c)/sqrt(s2 t)) + e^{2 mu c/s2} Phi((-c - mu t)/sqrt(s2 t)).
func inverseGaussianCDF(c, mu, s2, t float64) float64 {
	sd := math.Sqrt(s2 * t)
	return brownian.NormalCDF((mu*t-c)/sd, 0, 1) +
		math.Exp(2*mu*c/s2)*brownian.NormalCDF((-c-mu*t)/sd, 0, 1)
}

func TestFirstPassageBrownianClosedForm(t *testing.T) {
	const (
		mu, s2, level, horizon = 1.0, 1.0, 1.5, 2.0
		reps                   = 60_000
	)
	m := singleStateModel(t, mu, s2)
	s, err := New(m, 9)
	if err != nil {
		t.Fatal(err)
	}
	est, err := s.EstimateFirstPassage(level, horizon, 1e-4, reps)
	if err != nil {
		t.Fatal(err)
	}
	want := inverseGaussianCDF(level, mu, s2, horizon)
	if math.Abs(est.HitProbability-want) > 4*est.HitStdErr+1e-3 {
		t.Errorf("hit prob = %.4f +/- %.4f, closed form %.4f", est.HitProbability, est.HitStdErr, want)
	}
}

func TestFirstPassageModulatedLowerBound(t *testing.T) {
	// P(T(x) <= t) >= P(B(t) >= x): validate the completion-time
	// inequality against the moment-based bound from the core package.
	gen, err := ctmc.NewGeneratorFromDense(2, []float64{-2, 2, 3, -3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(gen, []float64{2, 0.5}, []float64{0.5, 1.5}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(m, 21)
	if err != nil {
		t.Fatal(err)
	}
	const (
		level, horizon = 1.8, 1.5
	)
	est, err := s.EstimateFirstPassage(level, horizon, 1e-4, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := m.CompletionProbability(level, horizon, 14, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cb.Exact {
		t.Error("second-order model must not claim exact completion duality")
	}
	if est.HitProbability+4*est.HitStdErr < cb.Lower {
		t.Errorf("simulated P(T<=t) = %.4f below moment lower bound %.4f", est.HitProbability, cb.Lower)
	}
	// Mean passage time is within the horizon and positive.
	if est.Hits > 1 && !(est.MeanTime > 0 && est.MeanTime < horizon) {
		t.Errorf("mean passage time = %g", est.MeanTime)
	}
}

func TestFirstPassageErrors(t *testing.T) {
	m := singleStateModel(t, 1, 1)
	s, err := New(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.FirstPassageTime(1, 0, 1e-4); !errors.Is(err, ErrBadArgument) {
		t.Errorf("zero horizon: %v", err)
	}
	if _, err := s.FirstPassageTime(1, 1, 0); !errors.Is(err, ErrBadArgument) {
		t.Errorf("zero tol: %v", err)
	}
	if _, err := s.FirstPassageTime(math.NaN(), 1, 1e-4); !errors.Is(err, ErrBadArgument) {
		t.Errorf("NaN level: %v", err)
	}
	if _, err := s.EstimateFirstPassage(1, 1, 1e-4, 1); !errors.Is(err, ErrBadArgument) {
		t.Errorf("reps=1: %v", err)
	}
}

func TestFirstPassageWithImpulses(t *testing.T) {
	// Unit impulse on 0->1 with no continuous reward: passage to level 0.5
	// happens exactly at the first 0->1 jump.
	gen, err := ctmc.NewGeneratorFromDense(2, []float64{-2, 2, 3, -3})
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.New(gen, []float64{0, 0}, []float64{0, 0}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	b := newImpulseBuilder(t, 2, 0, 1, 1.0)
	m, err := base.WithImpulses(b)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	est, err := s.EstimateFirstPassage(0.5, 3, 1e-4, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	// First 0->1 jump is Exp(2): P(T <= 3) = 1 - e^{-6}; E[T | T<=3] ~ 1/2.
	want := 1 - math.Exp(-6)
	if math.Abs(est.HitProbability-want) > 4*est.HitStdErr+1e-3 {
		t.Errorf("hit prob = %.4f, want %.4f", est.HitProbability, want)
	}
	wantMean := (0.5 - math.Exp(-6)*(3+0.5)) / want // E[min jump | <= 3]
	if math.Abs(est.MeanTime-wantMean) > 4*est.TimeStdErr+1e-2 {
		t.Errorf("mean time = %.4f, want %.4f", est.MeanTime, wantMean)
	}
}
