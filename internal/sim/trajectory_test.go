package sim

import (
	"errors"
	"math"
	"testing"
)

func TestSampleTrajectoryShape(t *testing.T) {
	m := buildModel(t, 2, 3, []float64{1, -1}, []float64{0.5, 1}, []float64{1, 0})
	s, err := New(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.SampleTrajectory(1.0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Times[0] != 0 || tr.Reward[0] != 0 {
		t.Error("trajectory must start at (0, 0)")
	}
	if len(tr.Times) != len(tr.Reward) || len(tr.Times) != len(tr.States) {
		t.Fatal("parallel arrays of different length")
	}
	// Grid spacing respected and times increasing up to the horizon.
	for i := 1; i < len(tr.Times); i++ {
		if tr.Times[i] <= tr.Times[i-1] {
			t.Fatalf("times not increasing at %d", i)
		}
	}
	last := tr.Times[len(tr.Times)-1]
	if math.Abs(last-1.0) > 0.011 {
		t.Errorf("last grid time %g, want ~1.0", last)
	}
	// States are valid indices.
	for _, st := range tr.States {
		if st < 0 || st >= 2 {
			t.Fatalf("invalid state %d", st)
		}
	}
	// Jumps are within the horizon and ordered.
	for i, j := range tr.Jumps {
		if j <= 0 || j > 1.0 {
			t.Errorf("jump %d at %g outside (0, 1]", i, j)
		}
		if i > 0 && j <= tr.Jumps[i-1] {
			t.Errorf("jumps not ordered at %d", i)
		}
	}
}

func TestSampleTrajectoryDeterministicDrift(t *testing.T) {
	// One effective state (both states identical, zero variance): the
	// reward path is exactly r*t at grid points.
	m := buildModel(t, 1, 1, []float64{2, 2}, []float64{0, 0}, []float64{1, 0})
	s, err := New(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.SampleTrajectory(0.5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Times {
		want := 2 * tr.Times[i]
		if math.Abs(tr.Reward[i]-want) > 1e-12 {
			t.Errorf("reward at t=%g is %g, want %g", tr.Times[i], tr.Reward[i], want)
		}
	}
}

func TestSampleTrajectoryErrors(t *testing.T) {
	m := buildModel(t, 1, 1, []float64{1, 1}, []float64{0, 0}, []float64{1, 0})
	s, err := New(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SampleTrajectory(0, 0.01); !errors.Is(err, ErrBadArgument) {
		t.Errorf("t=0: %v", err)
	}
	if _, err := s.SampleTrajectory(1, 0); !errors.Is(err, ErrBadArgument) {
		t.Errorf("dt=0: %v", err)
	}
	if _, err := s.SampleTrajectory(1, 2); !errors.Is(err, ErrBadArgument) {
		t.Errorf("dt > t: %v", err)
	}
}

func TestSampleTrajectoryStatesMatchJumps(t *testing.T) {
	m := buildModel(t, 5, 5, []float64{1, -1}, []float64{0, 0}, []float64{1, 0})
	s, err := New(m, 12)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.SampleTrajectory(2, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	// The number of observed state changes on the grid cannot exceed the
	// number of jumps.
	changes := 0
	for i := 1; i < len(tr.States); i++ {
		if tr.States[i] != tr.States[i-1] {
			changes++
		}
	}
	if changes > len(tr.Jumps) {
		t.Errorf("%d grid state changes but only %d jumps", changes, len(tr.Jumps))
	}
	if len(tr.Jumps) == 0 {
		t.Error("rate-5 chain over 2 time units should jump at least once")
	}
}
