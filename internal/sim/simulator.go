// Package sim implements a Monte Carlo simulator for second-order Markov
// reward models. It is the third solution method the paper validates
// against ("a second-order reward model simulation tool"): state sojourns
// are sampled exactly from the exponential holding times and the reward
// increment of each sojourn segment is drawn exactly from its normal
// distribution, so the estimator has no discretization bias — only
// statistical error, which the moment estimator reports.
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"somrm/internal/core"
)

// ErrBadArgument is returned for invalid simulation parameters.
var ErrBadArgument = errors.New("sim: invalid argument")

// Simulator draws trajectories of a second-order Markov reward model.
type Simulator struct {
	model *core.Model
	rng   *rand.Rand

	// Cached per-state transition data.
	exitRate []float64
	nextIdx  [][]int
	nextCum  [][]float64 // cumulative probabilities for next-state sampling
	initCum  []float64
}

// New builds a simulator with a deterministic seed (reproducible runs).
func New(m *core.Model, seed int64) (*Simulator, error) {
	if m == nil {
		return nil, fmt.Errorf("%w: nil model", ErrBadArgument)
	}
	n := m.N()
	s := &Simulator{
		model:    m,
		rng:      rand.New(rand.NewSource(seed)),
		exitRate: make([]float64, n),
		nextIdx:  make([][]int, n),
		nextCum:  make([][]float64, n),
	}
	gen := m.Generator()
	for i := 0; i < n; i++ {
		var idx []int
		var rates []float64
		var exit float64
		gen.Matrix().Range(i, func(j int, v float64) {
			if j == i || v <= 0 {
				return
			}
			idx = append(idx, j)
			rates = append(rates, v)
			exit += v
		})
		s.exitRate[i] = exit
		s.nextIdx[i] = idx
		cum := make([]float64, len(rates))
		var acc float64
		for k, r := range rates {
			acc += r / exit
			cum[k] = acc
		}
		if len(cum) > 0 {
			cum[len(cum)-1] = 1
		}
		s.nextCum[i] = cum
	}
	s.initCum = make([]float64, n)
	var acc float64
	for i, p := range m.Initial() {
		acc += p
		s.initCum[i] = acc
	}
	s.initCum[n-1] = 1
	return s, nil
}

func (s *Simulator) sampleInitial() int {
	u := s.rng.Float64()
	for i, c := range s.initCum {
		if u <= c {
			return i
		}
	}
	return len(s.initCum) - 1
}

func (s *Simulator) sampleNext(i int) int {
	u := s.rng.Float64()
	cum := s.nextCum[i]
	for k, c := range cum {
		if u <= c {
			return s.nextIdx[i][k]
		}
	}
	return s.nextIdx[i][len(cum)-1]
}

// SampleReward draws one exact realization of B(t).
func (s *Simulator) SampleReward(t float64) (float64, error) {
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return 0, fmt.Errorf("%w: time %g", ErrBadArgument, t)
	}
	rates := s.model.Rates()
	vars := s.model.Variances()
	imp := s.model.Impulses()

	state := s.sampleInitial()
	var reward float64
	remaining := t
	for remaining > 0 {
		exit := s.exitRate[state]
		var sojourn float64
		if exit == 0 {
			sojourn = remaining // absorbing: stays until the horizon
		} else {
			sojourn = s.rng.ExpFloat64() / exit
		}
		seg := math.Min(sojourn, remaining)
		if seg > 0 {
			mean := rates[state] * seg
			sd := math.Sqrt(vars[state] * seg)
			reward += mean + sd*s.rng.NormFloat64()
		}
		remaining -= seg
		if sojourn >= seg && remaining <= 0 {
			break
		}
		next := s.sampleNext(state)
		if imp != nil {
			reward += imp.At(state, next)
		}
		state = next
	}
	return reward, nil
}

// Estimate holds Monte Carlo moment estimates with standard errors.
type Estimate struct {
	// Moments[j] estimates E[B(t)^j] for j = 0..Order.
	Moments []float64
	// StdErr[j] is the standard error of Moments[j].
	StdErr []float64
	// Order is the highest estimated moment, Reps the replication count.
	Order, Reps int
}

// HalfWidth95 returns the ~95% confidence half-width of moment j.
func (e *Estimate) HalfWidth95(j int) (float64, error) {
	if j < 0 || j > e.Order {
		return 0, fmt.Errorf("%w: moment %d of %d", ErrBadArgument, j, e.Order)
	}
	return 1.96 * e.StdErr[j], nil
}

// EstimateMoments estimates raw moments of B(t) up to the given order from
// independent replications.
func (s *Simulator) EstimateMoments(t float64, order, reps int) (*Estimate, error) {
	if order < 0 {
		return nil, fmt.Errorf("%w: order %d", ErrBadArgument, order)
	}
	if reps < 2 {
		return nil, fmt.Errorf("%w: need at least 2 replications, got %d", ErrBadArgument, reps)
	}
	sums := make([]float64, order+1)
	sumsSq := make([]float64, order+1)
	for r := 0; r < reps; r++ {
		b, err := s.SampleReward(t)
		if err != nil {
			return nil, err
		}
		pow := 1.0
		for j := 0; j <= order; j++ {
			sums[j] += pow
			sumsSq[j] += pow * pow
			pow *= b
		}
	}
	est := &Estimate{
		Moments: make([]float64, order+1),
		StdErr:  make([]float64, order+1),
		Order:   order,
		Reps:    reps,
	}
	nf := float64(reps)
	for j := 0; j <= order; j++ {
		mean := sums[j] / nf
		est.Moments[j] = mean
		variance := (sumsSq[j]/nf - mean*mean) * nf / (nf - 1)
		if variance < 0 {
			variance = 0
		}
		est.StdErr[j] = math.Sqrt(variance / nf)
	}
	return est, nil
}
