package sim

import (
	"fmt"
	"math"
)

// FirstPassage is the outcome of one first-passage replication: whether
// the accumulated reward reached the level within the horizon, and when.
type FirstPassage struct {
	Hit  bool
	Time float64 // valid when Hit
}

// FirstPassageTime simulates T(level) = inf{t : B(t) >= level} for one
// replication, truncated at the horizon.
//
// Unlike first-order models, a second-order reward path is not monotone,
// so the completion time is a genuine first-passage problem. Within each
// exponential sojourn the endpoint increment is sampled exactly, and a
// crossing *inside* the segment is detected with the exact Brownian-bridge
// crossing probability
//
//	P(max_{u<=D} W(u) >= c | W(0)=w0, W(D)=w1, w0,w1 < c)
//	  = exp(-2 (c-w0)(c-w1) / (sigma^2 D)).
//
// The crossing instant is then located by recursive bridge bisection down
// to timeTol. The hit/no-hit decision is exact; the located instant is
// approximate (each bisection level samples an unconditioned bridge
// midpoint and re-tests crossing), which the test suite validates against
// the inverse-Gaussian closed form.
func (s *Simulator) FirstPassageTime(level, horizon, timeTol float64) (*FirstPassage, error) {
	if horizon <= 0 || math.IsNaN(horizon) || math.IsInf(horizon, 0) {
		return nil, fmt.Errorf("%w: horizon %g", ErrBadArgument, horizon)
	}
	if timeTol <= 0 {
		return nil, fmt.Errorf("%w: time tolerance %g", ErrBadArgument, timeTol)
	}
	if math.IsNaN(level) {
		return nil, fmt.Errorf("%w: level is NaN", ErrBadArgument)
	}
	rates := s.model.Rates()
	vars := s.model.Variances()
	imp := s.model.Impulses()

	state := s.sampleInitial()
	now := 0.0
	reward := 0.0
	if reward >= level {
		return &FirstPassage{Hit: true, Time: 0}, nil
	}

	for now < horizon {
		exit := s.exitRate[state]
		var sojourn float64
		if exit == 0 {
			sojourn = horizon - now
		} else {
			sojourn = s.rng.ExpFloat64() / exit
		}
		seg := math.Min(sojourn, horizon-now)
		if seg > 0 {
			hit, tHit, endReward := s.segmentPassage(reward, level, rates[state], vars[state], seg, timeTol)
			if hit {
				return &FirstPassage{Hit: true, Time: now + tHit}, nil
			}
			reward = endReward
			now += seg
		}
		if sojourn >= seg && now >= horizon {
			break
		}
		next := s.sampleNext(state)
		if imp != nil {
			reward += imp.At(state, next)
			if reward >= level {
				return &FirstPassage{Hit: true, Time: now}, nil
			}
		}
		state = next
	}
	return &FirstPassage{}, nil
}

// segmentPassage simulates one Brownian segment of length seg starting at
// w0 (< level): it reports whether the path crosses level within the
// segment, the crossing time offset, and the endpoint value when it does
// not cross.
func (s *Simulator) segmentPassage(w0, level, drift, variance, seg, timeTol float64) (hit bool, tHit, end float64) {
	if variance == 0 {
		// Deterministic ramp.
		end = w0 + drift*seg
		if end >= level && drift > 0 {
			return true, (level - w0) / drift, level
		}
		if w0 >= level { // defensive; caller guarantees w0 < level
			return true, 0, w0
		}
		return false, 0, end
	}
	end = w0 + drift*seg + math.Sqrt(variance*seg)*s.rng.NormFloat64()
	switch {
	case end >= level:
		hit = true
	default:
		// Both endpoints below the level: bridge crossing probability.
		p := math.Exp(-2 * (level - w0) * (level - end) / (variance * seg))
		hit = s.rng.Float64() < p
	}
	if !hit {
		return false, 0, end
	}
	// Locate the crossing by bridge bisection.
	t0, w0b := 0.0, w0
	t1, w1b := seg, end
	for t1-t0 > timeTol {
		tm := (t0 + t1) / 2
		// Bridge midpoint of the segment (w0b at t0, w1b at t1).
		mean := (w0b + w1b) / 2
		sd := math.Sqrt(variance * (t1 - t0) / 4)
		wm := mean + sd*s.rng.NormFloat64()
		// Does the first half contain a crossing?
		var firstHalf bool
		switch {
		case wm >= level:
			firstHalf = true
		default:
			p := math.Exp(-2 * (level - w0b) * (level - wm) / (variance * (tm - t0)))
			firstHalf = s.rng.Float64() < p
		}
		if firstHalf {
			t1, w1b = tm, wm
		} else {
			t0, w0b = tm, wm
		}
	}
	return true, (t0 + t1) / 2, level
}

// PassageEstimate aggregates first-passage replications.
type PassageEstimate struct {
	// HitProbability estimates P(T(level) <= horizon), with standard
	// error HitStdErr.
	HitProbability, HitStdErr float64
	// MeanTime estimates E[T | T <= horizon] with standard error
	// TimeStdErr; NaN when no replication hit.
	MeanTime, TimeStdErr float64
	Reps, Hits           int
}

// EstimateFirstPassage runs independent first-passage replications.
func (s *Simulator) EstimateFirstPassage(level, horizon, timeTol float64, reps int) (*PassageEstimate, error) {
	if reps < 2 {
		return nil, fmt.Errorf("%w: need at least 2 replications, got %d", ErrBadArgument, reps)
	}
	var hits int
	var tSum, tSumSq float64
	for i := 0; i < reps; i++ {
		fp, err := s.FirstPassageTime(level, horizon, timeTol)
		if err != nil {
			return nil, err
		}
		if fp.Hit {
			hits++
			tSum += fp.Time
			tSumSq += fp.Time * fp.Time
		}
	}
	out := &PassageEstimate{Reps: reps, Hits: hits}
	p := float64(hits) / float64(reps)
	out.HitProbability = p
	out.HitStdErr = math.Sqrt(p * (1 - p) / float64(reps))
	if hits > 1 {
		mean := tSum / float64(hits)
		out.MeanTime = mean
		v := (tSumSq/float64(hits) - mean*mean) * float64(hits) / float64(hits-1)
		if v < 0 {
			v = 0
		}
		out.TimeStdErr = math.Sqrt(v / float64(hits))
	} else {
		out.MeanTime = math.NaN()
		out.TimeStdErr = math.NaN()
	}
	return out, nil
}
