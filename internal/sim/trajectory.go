package sim

import (
	"fmt"
	"math"
)

// Trajectory is a jointly sampled structure-state path and reward path on a
// uniform observation grid, the data behind Figure 1 of the paper.
type Trajectory struct {
	// Times[i] is the i-th grid time; Reward[i] the accumulated reward at
	// that time; States[i] the structure state during [Times[i], Times[i+1]).
	Times  []float64
	Reward []float64
	States []int
	// Jumps lists the exact transition instants of the structure process.
	Jumps []float64
}

// SampleTrajectory draws one realization on a grid with the given spacing.
// Within a sojourn the reward path is refined with exact Brownian
// increments at every grid point, so the plotted path has the correct joint
// law at the grid resolution.
func (s *Simulator) SampleTrajectory(t, dt float64) (*Trajectory, error) {
	if t <= 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return nil, fmt.Errorf("%w: horizon %g", ErrBadArgument, t)
	}
	if dt <= 0 || dt > t {
		return nil, fmt.Errorf("%w: grid spacing %g for horizon %g", ErrBadArgument, dt, t)
	}
	rates := s.model.Rates()
	vars := s.model.Variances()
	imp := s.model.Impulses()

	steps := int(math.Ceil(t / dt))
	tr := &Trajectory{
		Times:  make([]float64, 0, steps+1),
		Reward: make([]float64, 0, steps+1),
		States: make([]int, 0, steps+1),
	}

	state := s.sampleInitial()
	now := 0.0
	var reward float64
	tr.Times = append(tr.Times, 0)
	tr.Reward = append(tr.Reward, 0)
	tr.States = append(tr.States, state)

	nextJump := math.Inf(1)
	if exit := s.exitRate[state]; exit > 0 {
		nextJump = s.rng.ExpFloat64() / exit
	}
	nextGrid := dt

	for now < t {
		switch {
		case nextJump <= nextGrid && nextJump <= t:
			// Advance to the jump.
			seg := nextJump - now
			reward += s.segmentIncrement(rates[state], vars[state], seg)
			now = nextJump
			next := s.sampleNext(state)
			if imp != nil {
				reward += imp.At(state, next)
			}
			state = next
			tr.Jumps = append(tr.Jumps, now)
			if exit := s.exitRate[state]; exit > 0 {
				nextJump = now + s.rng.ExpFloat64()/exit
			} else {
				nextJump = math.Inf(1)
			}
		default:
			// Advance to the next grid point (or the horizon).
			target := math.Min(nextGrid, t)
			seg := target - now
			reward += s.segmentIncrement(rates[state], vars[state], seg)
			now = target
			tr.Times = append(tr.Times, now)
			tr.Reward = append(tr.Reward, reward)
			tr.States = append(tr.States, state)
			nextGrid += dt
		}
	}
	return tr, nil
}

func (s *Simulator) segmentIncrement(rate, variance, seg float64) float64 {
	if seg <= 0 {
		return 0
	}
	return rate*seg + math.Sqrt(variance*seg)*s.rng.NormFloat64()
}
