package report

import (
	"errors"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("Title", "a", "b")
	if err := tab.AddRow("x", "1"); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddFloatRow("y", 2.5); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Title", "a", "b", "x", "1", "y", "2.5", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableCellCountMismatch(t *testing.T) {
	tab := NewTable("", "a", "b")
	if err := tab.AddRow("only-one"); !errors.Is(err, ErrBadTable) {
		t.Errorf("err = %v", err)
	}
	if err := tab.AddFloatRow("l", 1, 2, 3); !errors.Is(err, ErrBadTable) {
		t.Errorf("float row: %v", err)
	}
}

func TestTableNoTitle(t *testing.T) {
	tab := NewTable("", "col")
	_ = tab.AddRow("v")
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(sb.String(), "\n") {
		t.Error("empty title should not emit a blank line")
	}
}

func TestFormatFloat(t *testing.T) {
	if got := FormatFloat(0.5); got != "0.5" {
		t.Errorf("FormatFloat(0.5) = %q", got)
	}
	if got := FormatFloat(1234567.0); !strings.Contains(got, "e+06") {
		t.Errorf("FormatFloat(1234567) = %q", got)
	}
}

func TestCSV(t *testing.T) {
	var sb strings.Builder
	c, err := NewCSV(&sb, "t", "v")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Row(1, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := c.Row(1); !errors.Is(err, ErrBadTable) {
		t.Errorf("short row: %v", err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "t,v\n") {
		t.Errorf("header missing: %q", out)
	}
	if !strings.Contains(out, "1,2.5") {
		t.Errorf("row missing: %q", out)
	}
	if _, err := NewCSV(&sb); !errors.Is(err, ErrBadTable) {
		t.Errorf("no columns: %v", err)
	}
}
