// Package report renders the experiment harness output: fixed-width ASCII
// tables for terminal reading and CSV series for plotting, matching the
// rows and series of the paper's tables and figures.
package report

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ErrBadTable is returned for inconsistent table construction.
var ErrBadTable = errors.New("report: inconsistent table")

// Table is a simple fixed-width text table.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row of pre-formatted cells.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.headers) {
		return fmt.Errorf("%w: %d cells for %d columns", ErrBadTable, len(cells), len(t.headers))
	}
	t.rows = append(t.rows, cells)
	return nil
}

// AddFloatRow appends a row with a string label followed by float cells.
func (t *Table) AddFloatRow(label string, values ...float64) error {
	cells := make([]string, 0, len(values)+1)
	cells = append(cells, label)
	for _, v := range values {
		cells = append(cells, FormatFloat(v))
	}
	return t.AddRow(cells...)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

// FormatFloat renders a float compactly (up to 6 significant digits).
func FormatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// CSV streams comma-separated series, one row per call.
type CSV struct {
	w    io.Writer
	cols int
}

// NewCSV writes a header row and returns the writer.
func NewCSV(w io.Writer, headers ...string) (*CSV, error) {
	if len(headers) == 0 {
		return nil, fmt.Errorf("%w: no columns", ErrBadTable)
	}
	if _, err := fmt.Fprintln(w, strings.Join(headers, ",")); err != nil {
		return nil, err
	}
	return &CSV{w: w, cols: len(headers)}, nil
}

// Row writes one row of float values.
func (c *CSV) Row(values ...float64) error {
	if len(values) != c.cols {
		return fmt.Errorf("%w: %d values for %d columns", ErrBadTable, len(values), c.cols)
	}
	cells := make([]string, len(values))
	for i, v := range values {
		cells[i] = strconv.FormatFloat(v, 'g', 17, 64)
	}
	_, err := fmt.Fprintln(c.w, strings.Join(cells, ","))
	return err
}
