package spec

import "testing"

// FuzzParseBuild ensures arbitrary JSON never panics the parser or the
// model builder: every input either round-trips into a valid model or
// returns an error.
func FuzzParseBuild(f *testing.F) {
	f.Add([]byte(valid))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"states": -1}`))
	f.Add([]byte(`{"states": 1, "rates": [1e308], "variances": [0], "initial": [1]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Parse(data)
		if err != nil {
			return
		}
		model, err := m.Build()
		if err != nil {
			return
		}
		// A successfully built model must be internally consistent.
		if model.N() != m.States {
			t.Fatalf("built model has %d states, spec says %d", model.N(), m.States)
		}
		if _, err := FromModel(model); err != nil {
			t.Fatalf("round-trip of valid model failed: %v", err)
		}
	})
}
