package spec

import "testing"

// FuzzParseBuild ensures arbitrary JSON never panics the parser or the
// model builder: every input either round-trips into a valid model or
// returns an error.
func FuzzParseBuild(f *testing.F) {
	f.Add([]byte(valid))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"states": -1}`))
	f.Add([]byte(`{"states": 1, "rates": [1e308], "variances": [0], "initial": [1]}`))
	// Impulse-bearing seeds: a valid impulse, an impulse on an absent
	// transition, a diagonal impulse, and an out-of-range endpoint.
	f.Add([]byte(`{"states": 2, "transitions": [{"from":0,"to":1,"rate":2},{"from":1,"to":0,"rate":3}], "rates": [1,0], "variances": [0.1,0.2], "initial": [1,0], "impulses": [{"from":0,"to":1,"reward":0.5}]}`))
	f.Add([]byte(`{"states": 2, "transitions": [{"from":0,"to":1,"rate":2},{"from":1,"to":0,"rate":3}], "rates": [1,0], "variances": [0,0], "initial": [0,1], "impulses": [{"from":1,"to":0,"reward":1e-300},{"from":0,"to":1,"reward":7}]}`))
	f.Add([]byte(`{"states": 3, "transitions": [{"from":0,"to":1,"rate":1}], "rates": [1,1,1], "variances": [0,0,0], "initial": [1,0,0], "impulses": [{"from":1,"to":2,"reward":0.25}]}`))
	f.Add([]byte(`{"states": 2, "transitions": [{"from":0,"to":1,"rate":1},{"from":1,"to":0,"rate":1}], "rates": [0,0], "variances": [0,0], "initial": [1,0], "impulses": [{"from":0,"to":0,"reward":1}]}`))
	f.Add([]byte(`{"states": 1, "rates": [0], "variances": [0], "initial": [1], "impulses": [{"from":0,"to":9,"reward":2}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Parse(data)
		if err != nil {
			return
		}
		model, err := m.Build()
		if err != nil {
			return
		}
		// A successfully built model must be internally consistent.
		if model.N() != m.States {
			t.Fatalf("built model has %d states, spec says %d", model.N(), m.States)
		}
		if _, err := FromModel(model); err != nil {
			t.Fatalf("round-trip of valid model failed: %v", err)
		}
	})
}
