package spec

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// randomSpec draws an arbitrary (not necessarily buildable) spec with
// adversarial float values: negative drifts, denormals, and values whose
// decimal representation needs all 17 significant digits.
func randomSpec(rng *rand.Rand) *Model {
	n := 1 + rng.Intn(6)
	m := &Model{
		States:    n,
		Rates:     make([]float64, n),
		Variances: make([]float64, n),
		Initial:   make([]float64, n),
	}
	roughFloat := func() float64 {
		switch rng.Intn(5) {
		case 0:
			return 0
		case 1:
			return float64(rng.Intn(10))
		case 2:
			return rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20))
		case 3:
			return rng.Float64() / 3 // not representable in few digits
		default:
			return -rng.ExpFloat64()
		}
	}
	for i := 0; i < n; i++ {
		m.Rates[i] = roughFloat()
		m.Variances[i] = math.Abs(roughFloat())
		m.Initial[i] = rng.Float64()
	}
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			if from == to || rng.Intn(2) == 0 {
				continue
			}
			m.Transitions = append(m.Transitions, Transition{From: from, To: to, Rate: rng.ExpFloat64()})
			if rng.Intn(3) == 0 {
				m.Impulses = append(m.Impulses, Impulse{From: from, To: to, Reward: rng.Float64()})
			}
		}
	}
	return m
}

// TestWriteParseRoundTrip is the property test: Write followed by Parse
// must reproduce the spec exactly — every transition, rate, variance,
// initial probability, and impulse, bit for bit.
func TestWriteParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	for iter := 0; iter < 500; iter++ {
		orig := randomSpec(rng)
		var buf bytes.Buffer
		if err := orig.Write(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := Parse(buf.Bytes())
		if err != nil {
			t.Fatalf("iter %d: parse of written spec failed: %v\n%s", iter, err, buf.String())
		}
		if !reflect.DeepEqual(orig, back) {
			t.Fatalf("iter %d: round trip mismatch:\norig: %#v\nback: %#v", iter, orig, back)
		}
	}
}

// TestFromModelRoundTrip checks the deeper property on buildable models:
// spec → Build → FromModel → Write → Parse → Build must agree with the
// original model on every component, including impulses and variances.
func TestFromModelRoundTrip(t *testing.T) {
	src := &Model{
		States: 3,
		Transitions: []Transition{
			{From: 0, To: 1, Rate: 2.25},
			{From: 1, To: 0, Rate: 1.0 / 3.0},
			{From: 1, To: 2, Rate: 0.7},
			{From: 2, To: 0, Rate: 5},
		},
		Rates:     []float64{1.5, -0.5, math.Pi},
		Variances: []float64{0.2, 1.0 / 7.0, 0},
		Initial:   []float64{0.25, 0.25, 0.5},
		Impulses: []Impulse{
			{From: 0, To: 1, Reward: 0.125},
			{From: 2, To: 0, Reward: 1.0 / 9.0},
		},
	}
	model, err := src.Build()
	if err != nil {
		t.Fatal(err)
	}
	round, err := FromModel(model)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := round.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	model2, err := back.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(model.Rates(), model2.Rates()) {
		t.Errorf("rates differ: %v vs %v", model.Rates(), model2.Rates())
	}
	if !reflect.DeepEqual(model.Variances(), model2.Variances()) {
		t.Errorf("variances differ: %v vs %v", model.Variances(), model2.Variances())
	}
	if !reflect.DeepEqual(model.Initial(), model2.Initial()) {
		t.Errorf("initial differs: %v vs %v", model.Initial(), model2.Initial())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if a, b := model.Generator().At(i, j), model2.Generator().At(i, j); a != b {
				t.Errorf("generator[%d][%d]: %g vs %g", i, j, a, b)
			}
			var a, b float64
			if imp := model.Impulses(); imp != nil {
				a = imp.At(i, j)
			}
			if imp := model2.Impulses(); imp != nil {
				b = imp.At(i, j)
			}
			if a != b {
				t.Errorf("impulse[%d][%d]: %g vs %g", i, j, a, b)
			}
		}
	}
}

// TestCanonicalOrderInvariance: permuting transitions/impulses must not
// change the canonical bytes or the hash, while changing any value must.
func TestCanonicalOrderInvariance(t *testing.T) {
	a := &Model{
		States: 2,
		Transitions: []Transition{
			{From: 0, To: 1, Rate: 2},
			{From: 1, To: 0, Rate: 3},
		},
		Rates:     []float64{1.5, -0.5},
		Variances: []float64{0.2, 1},
		Initial:   []float64{1, 0},
		Impulses: []Impulse{
			{From: 0, To: 1, Reward: 0.1},
			{From: 1, To: 0, Reward: 0.2},
		},
	}
	b := &Model{
		States: 2,
		Transitions: []Transition{
			{From: 1, To: 0, Rate: 3},
			{From: 0, To: 1, Rate: 2},
		},
		Rates:     []float64{1.5, -0.5},
		Variances: []float64{0.2, 1},
		Initial:   []float64{1, 0},
		Impulses: []Impulse{
			{From: 1, To: 0, Reward: 0.2},
			{From: 0, To: 1, Reward: 0.1},
		},
	}
	ca, err := a.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Errorf("canonical bytes differ under permutation:\n%s\n%s", ca, cb)
	}
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Error("hash differs under permutation")
	}
	// Canonical must not mutate the receiver's entry order.
	if a.Transitions[0].From != 0 || b.Transitions[0].From != 1 {
		t.Error("Canonical mutated receiver ordering")
	}
	b.Rates[0] = 1.5000000000000002
	hc, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hc == ha {
		t.Error("hash insensitive to a 1-ulp rate change")
	}
}
