package spec

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// finiteSpec returns a valid two-state spec that each case below corrupts.
func finiteSpec() Model {
	return Model{
		States: 2,
		Transitions: []Transition{
			{From: 0, To: 1, Rate: 2},
			{From: 1, To: 0, Rate: 3},
		},
		Rates:     []float64{1.5, -0.5},
		Variances: []float64{0.2, 1},
		Initial:   []float64{1, 0},
		Impulses:  []Impulse{{From: 0, To: 1, Reward: 0.1}},
	}
}

func TestValidateRejectsNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name    string
		corrupt func(*Model)
		path    string // expected substring of the error: the field path
	}{
		{"NaN transition rate", func(m *Model) { m.Transitions[1].Rate = nan }, "transitions[1].rate"},
		{"+Inf transition rate", func(m *Model) { m.Transitions[0].Rate = inf }, "transitions[0].rate"},
		{"NaN drift", func(m *Model) { m.Rates[0] = nan }, "rates[0]"},
		{"-Inf drift", func(m *Model) { m.Rates[1] = -inf }, "rates[1]"},
		{"NaN variance", func(m *Model) { m.Variances[1] = nan }, "variances[1]"},
		{"+Inf variance", func(m *Model) { m.Variances[0] = inf }, "variances[0]"},
		{"NaN initial", func(m *Model) { m.Initial[0] = nan }, "initial[0]"},
		{"Inf initial", func(m *Model) { m.Initial[1] = inf }, "initial[1]"},
		{"NaN impulse", func(m *Model) { m.Impulses[0].Reward = nan }, "impulses[0].reward"},
		{"-Inf impulse", func(m *Model) { m.Impulses[0].Reward = -inf }, "impulses[0].reward"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := finiteSpec()
			tc.corrupt(&m)
			err := m.Validate()
			if !errors.Is(err, ErrBadSpec) {
				t.Fatalf("Validate() = %v, want ErrBadSpec", err)
			}
			if !strings.Contains(err.Error(), tc.path) {
				t.Errorf("error %q does not name field path %q", err, tc.path)
			}
			// Build must reject the same spec: Validate is its chokepoint.
			if _, err := m.Build(); !errors.Is(err, ErrBadSpec) {
				t.Errorf("Build() = %v, want ErrBadSpec", err)
			}
		})
	}
}

func TestValidateAcceptsFiniteSpec(t *testing.T) {
	m := finiteSpec()
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
	if _, err := m.Build(); err != nil {
		t.Fatalf("Build() = %v, want nil", err)
	}
}
