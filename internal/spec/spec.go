// Package spec defines the JSON interchange format for second-order Markov
// reward models, shared by the command-line tools and usable as a library
// serialization surface. A spec is self-describing and validated on load:
//
//	{
//	  "states": 2,
//	  "transitions": [{"from": 0, "to": 1, "rate": 2.0},
//	                  {"from": 1, "to": 0, "rate": 3.0}],
//	  "rates":     [1.5, -0.5],
//	  "variances": [0.2, 1.0],
//	  "initial":   [1, 0],
//	  "impulses":  [{"from": 0, "to": 1, "reward": 0.1}]
//	}
package spec

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"somrm/internal/core"
	"somrm/internal/ctmc"
	"somrm/internal/sparse"
)

// ErrBadSpec is returned when a spec fails structural validation.
var ErrBadSpec = errors.New("spec: invalid model specification")

// Transition is one off-diagonal generator entry.
type Transition struct {
	From int     `json:"from"`
	To   int     `json:"to"`
	Rate float64 `json:"rate"`
}

// Impulse is one impulse-reward entry attached to a transition.
type Impulse struct {
	From   int     `json:"from"`
	To     int     `json:"to"`
	Reward float64 `json:"reward"`
}

// Model is the JSON representation of a second-order Markov reward model.
type Model struct {
	States      int          `json:"states"`
	Transitions []Transition `json:"transitions"`
	Rates       []float64    `json:"rates"`
	Variances   []float64    `json:"variances"`
	Initial     []float64    `json:"initial"`
	Impulses    []Impulse    `json:"impulses,omitempty"`
}

// Parse decodes a JSON spec and rejects non-finite numeric fields.
func Parse(data []byte) (*Model, error) {
	var m Model
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Validate rejects NaN and ±Inf anywhere in the spec's numeric fields with
// an error naming the offending field path (e.g. "transitions[2].rate").
// Specs arriving as JSON cannot encode NaN/Inf literals, but specs built
// programmatically (including every request the solver service receives as
// a Go value) can; this is the single chokepoint that keeps non-finite
// values out of the solvers. Structural validation (index ranges, lengths,
// distribution sums) stays in Build.
func (m *Model) Validate() error {
	check := func(path string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: %s=%g is not finite", ErrBadSpec, path, v)
		}
		return nil
	}
	for i, tr := range m.Transitions {
		if err := check(fmt.Sprintf("transitions[%d].rate", i), tr.Rate); err != nil {
			return err
		}
	}
	for i, r := range m.Rates {
		if err := check(fmt.Sprintf("rates[%d]", i), r); err != nil {
			return err
		}
	}
	for i, v := range m.Variances {
		if err := check(fmt.Sprintf("variances[%d]", i), v); err != nil {
			return err
		}
	}
	for i, p := range m.Initial {
		if err := check(fmt.Sprintf("initial[%d]", i), p); err != nil {
			return err
		}
	}
	for i, im := range m.Impulses {
		if err := check(fmt.Sprintf("impulses[%d].reward", i), im.Reward); err != nil {
			return err
		}
	}
	return nil
}

// Read decodes a JSON spec from a reader.
func Read(r io.Reader) (*Model, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("spec: read: %w", err)
	}
	return Parse(data)
}

// Encode renders the spec as indented JSON.
func (m *Model) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("spec: encode: %w", err)
	}
	return out, nil
}

// Write encodes the spec as indented JSON to w. Write followed by Parse
// reproduces the spec exactly: float64 values survive because Go's JSON
// encoder emits the shortest representation that round-trips.
func (m *Model) Write(w io.Writer) error {
	out, err := m.Encode()
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if _, err := w.Write(out); err != nil {
		return fmt.Errorf("spec: write: %w", err)
	}
	return nil
}

// Canonical returns a deterministic compact serialization of the spec:
// transitions and impulses are sorted by (from, to) and the JSON is
// emitted without whitespace, so two specs describing the same model in a
// different entry order serialize identically. It is the basis for
// content-addressed caching of solve results.
func (m *Model) Canonical() ([]byte, error) {
	c := Model{
		States:    m.States,
		Rates:     m.Rates,
		Variances: m.Variances,
		Initial:   m.Initial,
	}
	if len(m.Transitions) > 0 {
		c.Transitions = append([]Transition(nil), m.Transitions...)
		sort.Slice(c.Transitions, func(i, j int) bool {
			a, b := c.Transitions[i], c.Transitions[j]
			if a.From != b.From {
				return a.From < b.From
			}
			return a.To < b.To
		})
	}
	if len(m.Impulses) > 0 {
		c.Impulses = append([]Impulse(nil), m.Impulses...)
		sort.Slice(c.Impulses, func(i, j int) bool {
			a, b := c.Impulses[i], c.Impulses[j]
			if a.From != b.From {
				return a.From < b.From
			}
			return a.To < b.To
		})
	}
	out, err := json.Marshal(&c)
	if err != nil {
		return nil, fmt.Errorf("spec: canonical: %w", err)
	}
	return out, nil
}

// Hash returns the SHA-256 digest of the canonical serialization. Two
// specs with the same hash describe the same model (up to entry order).
func (m *Model) Hash() ([32]byte, error) {
	c, err := m.Canonical()
	if err != nil {
		return [32]byte{}, err
	}
	return sha256.Sum256(c), nil
}

// Build validates the spec and constructs the reward model.
func (m *Model) Build() (*core.Model, error) {
	if m.States < 1 {
		return nil, fmt.Errorf("%w: states=%d", ErrBadSpec, m.States)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	b := sparse.NewBuilder(m.States, m.States)
	exits := make([]float64, m.States)
	for _, tr := range m.Transitions {
		if tr.From == tr.To {
			return nil, fmt.Errorf("%w: self-transition on state %d", ErrBadSpec, tr.From)
		}
		if err := b.Add(tr.From, tr.To, tr.Rate); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
		exits[tr.From] += tr.Rate
	}
	for i, e := range exits {
		if e != 0 {
			if err := b.Add(i, i, -e); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
			}
		}
	}
	gen, err := ctmc.NewGenerator(b.Build())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	model, err := core.New(gen, m.Rates, m.Variances, m.Initial)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if len(m.Impulses) > 0 {
		ib := sparse.NewBuilder(m.States, m.States)
		for _, im := range m.Impulses {
			if err := ib.Add(im.From, im.To, im.Reward); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
			}
		}
		model, err = model.WithImpulses(ib.Build())
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
	}
	return model, nil
}

// FromModel converts a built model back to its JSON representation (the
// inverse of Build, modulo ordering of entries).
func FromModel(m *core.Model) (*Model, error) {
	if m == nil {
		return nil, fmt.Errorf("%w: nil model", ErrBadSpec)
	}
	n := m.N()
	out := &Model{
		States:    n,
		Rates:     m.Rates(),
		Variances: m.Variances(),
		Initial:   m.Initial(),
	}
	gen := m.Generator().Matrix()
	for i := 0; i < n; i++ {
		gen.Range(i, func(j int, v float64) {
			if i != j && v > 0 {
				out.Transitions = append(out.Transitions, Transition{From: i, To: j, Rate: v})
			}
		})
	}
	if imp := m.Impulses(); imp != nil {
		for i := 0; i < n; i++ {
			imp.Range(i, func(j int, y float64) {
				if y > 0 {
					out.Impulses = append(out.Impulses, Impulse{From: i, To: j, Reward: y})
				}
			})
		}
	}
	return out, nil
}
