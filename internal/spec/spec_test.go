package spec

import (
	"errors"
	"math"
	"strings"
	"testing"

	"somrm/internal/core"
	"somrm/internal/ctmc"
)

const valid = `{
  "states": 2,
  "transitions": [{"from":0,"to":1,"rate":2},{"from":1,"to":0,"rate":3}],
  "rates": [1.5, -0.5],
  "variances": [0.2, 1.0],
  "initial": [1, 0],
  "impulses": [{"from":0,"to":1,"reward":0.25}]
}`

func TestParseAndBuild(t *testing.T) {
	m, err := Parse([]byte(valid))
	if err != nil {
		t.Fatal(err)
	}
	model, err := m.Build()
	if err != nil {
		t.Fatal(err)
	}
	if model.N() != 2 {
		t.Fatalf("states = %d", model.N())
	}
	if !model.HasImpulses() {
		t.Error("impulses dropped")
	}
	if got := model.Generator().At(0, 1); got != 2 {
		t.Errorf("rate(0,1) = %g", got)
	}
	if got := model.Generator().At(1, 1); got != -3 {
		t.Errorf("diag(1) = %g", got)
	}
}

func TestReadFromReader(t *testing.T) {
	m, err := Read(strings.NewReader(valid))
	if err != nil {
		t.Fatal(err)
	}
	if m.States != 2 {
		t.Errorf("states = %d", m.States)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("{nope")); !errors.Is(err, ErrBadSpec) {
		t.Errorf("garbage: %v", err)
	}
}

func TestBuildValidation(t *testing.T) {
	cases := map[string]Model{
		"no states":  {States: 0},
		"self loop":  {States: 1, Transitions: []Transition{{0, 0, 1}}, Rates: []float64{1}, Variances: []float64{0}, Initial: []float64{1}},
		"bad index":  {States: 2, Transitions: []Transition{{0, 7, 1}}, Rates: []float64{1, 1}, Variances: []float64{0, 0}, Initial: []float64{1, 0}},
		"neg rate":   {States: 2, Transitions: []Transition{{0, 1, -1}}, Rates: []float64{1, 1}, Variances: []float64{0, 0}, Initial: []float64{1, 0}},
		"bad pi":     {States: 2, Transitions: []Transition{{0, 1, 1}, {1, 0, 1}}, Rates: []float64{1, 1}, Variances: []float64{0, 0}, Initial: []float64{0.9, 0.9}},
		"bad var":    {States: 2, Transitions: []Transition{{0, 1, 1}, {1, 0, 1}}, Rates: []float64{1, 1}, Variances: []float64{-1, 0}, Initial: []float64{1, 0}},
		"bad imp":    {States: 2, Transitions: []Transition{{0, 1, 1}, {1, 0, 1}}, Rates: []float64{1, 1}, Variances: []float64{0, 0}, Initial: []float64{1, 0}, Impulses: []Impulse{{1, 0, -2}}},
		"imp no arc": {States: 2, Transitions: []Transition{{0, 1, 1}, {1, 0, 1}}, Rates: []float64{1, 1}, Variances: []float64{0, 0}, Initial: []float64{1, 0}, Impulses: []Impulse{{0, 0, 1}}},
	}
	for name, m := range cases {
		m := m
		t.Run(name, func(t *testing.T) {
			if _, err := m.Build(); !errors.Is(err, ErrBadSpec) {
				t.Errorf("err = %v, want ErrBadSpec", err)
			}
		})
	}
}

func TestRoundTrip(t *testing.T) {
	parsed, err := Parse([]byte(valid))
	if err != nil {
		t.Fatal(err)
	}
	model, err := parsed.Build()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromModel(model)
	if err != nil {
		t.Fatal(err)
	}
	encoded, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	reparsed, err := Parse(encoded)
	if err != nil {
		t.Fatal(err)
	}
	model2, err := reparsed.Build()
	if err != nil {
		t.Fatal(err)
	}
	// The two models must produce identical moments.
	r1, err := model.AccumulatedReward(0.7, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := model2.AccumulatedReward(0.7, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j <= 3; j++ {
		if math.Abs(r1.Moments[j]-r2.Moments[j]) > 1e-14*(1+math.Abs(r1.Moments[j])) {
			t.Errorf("round-trip moment %d changed: %g vs %g", j, r1.Moments[j], r2.Moments[j])
		}
	}
}

func TestFromModelNil(t *testing.T) {
	if _, err := FromModel(nil); !errors.Is(err, ErrBadSpec) {
		t.Errorf("nil model: %v", err)
	}
}

func TestFromModelWithoutImpulses(t *testing.T) {
	gen, err := ctmc.NewGeneratorFromDense(2, []float64{-1, 1, 2, -2})
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.New(gen, []float64{1, 2}, []float64{0, 0}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	s, err := FromModel(model)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Impulses) != 0 {
		t.Errorf("spurious impulses: %v", s.Impulses)
	}
	if len(s.Transitions) != 2 {
		t.Errorf("transitions = %v", s.Transitions)
	}
}
