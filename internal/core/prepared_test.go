package core

import (
	"context"
	"errors"
	"sync"
	"testing"
)

func TestPreparedMatchesModelBitwise(t *testing.T) {
	m := mustModel(t, cyclic2(t, 2, 5), []float64{-1, 3}, []float64{0.5, 2}, []float64{0.6, 0.4})
	p, err := Prepare(m)
	if err != nil {
		t.Fatal(err)
	}
	times := []float64{0, 0.1, 0.5, 1.2}
	want, err := m.AccumulatedRewardAt(times, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.AccumulatedRewardAt(times, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for idx := range times {
		for j := 0; j <= 4; j++ {
			if got[idx].Moments[j] != want[idx].Moments[j] {
				t.Errorf("t=%g j=%d: prepared %.17g vs model %.17g", times[idx], j, got[idx].Moments[j], want[idx].Moments[j])
			}
		}
	}
	single, err := p.AccumulatedReward(1.2, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := m.AccumulatedReward(1.2, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := range ref.Moments {
		if single.Moments[j] != ref.Moments[j] {
			t.Errorf("single j=%d: prepared %.17g vs model %.17g", j, single.Moments[j], ref.Moments[j])
		}
	}
}

func TestPreparedImpulsesAndOrderGrowth(t *testing.T) {
	base := mustModel(t, cyclic2(t, 2, 3), []float64{1, 0.5}, []float64{0.2, 0.4}, []float64{1, 0})
	m, err := base.WithImpulses(impulseMatrix(t, 2, [3]float64{0, 1, 0.7}))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Prepare(m)
	if err != nil {
		t.Fatal(err)
	}
	// Low order first, then a higher order forcing the impulse-matrix cache
	// to grow, then the low order again reusing the grown cache.
	for _, order := range []int{2, 4, 2} {
		got, err := p.AccumulatedReward(0.9, order, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := m.AccumulatedReward(0.9, order, nil)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want.Moments {
			if got.Moments[j] != want.Moments[j] {
				t.Errorf("order %d j=%d: prepared %.17g vs model %.17g", order, j, got.Moments[j], want.Moments[j])
			}
		}
	}
}

func TestPreparedFrozenChain(t *testing.T) {
	gen, err := reducibleFrozen(t)
	if err != nil {
		t.Fatal(err)
	}
	m := mustModel(t, gen, []float64{2, 1}, []float64{1, 0}, []float64{0.5, 0.5})
	p, err := Prepare(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.AccumulatedReward(1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.AccumulatedReward(1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want.Moments {
		if got.Moments[j] != want.Moments[j] {
			t.Errorf("frozen j=%d: %g vs %g", j, got.Moments[j], want.Moments[j])
		}
	}
}

func TestPreparedCustomRateFallsBack(t *testing.T) {
	m := mustModel(t, cyclic2(t, 2, 5), []float64{1, 2}, []float64{0.5, 0.5}, []float64{1, 0})
	p, err := Prepare(m)
	if err != nil {
		t.Fatal(err)
	}
	opts := &Options{UniformizationRate: 50}
	got, err := p.AccumulatedReward(1, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.AccumulatedReward(1, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Q != 50 || got.Stats.Q != want.Stats.Q {
		t.Errorf("custom rate not honored: prepared q=%g, model q=%g", got.Stats.Q, want.Stats.Q)
	}
	for j := range want.Moments {
		if got.Moments[j] != want.Moments[j] {
			t.Errorf("custom-rate j=%d mismatch", j)
		}
	}
}

func TestPreparedValidation(t *testing.T) {
	if _, err := Prepare(nil); !errors.Is(err, ErrBadModel) {
		t.Errorf("nil model: %v", err)
	}
	m := mustModel(t, cyclic2(t, 1, 1), []float64{1, 1}, []float64{1, 1}, []float64{1, 0})
	p, err := Prepare(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AccumulatedRewardAt(nil, 2, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("empty times: %v", err)
	}
	if _, err := p.AccumulatedReward(-1, 2, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("negative time: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.AccumulatedRewardContext(ctx, 1, 2, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled ctx: %v", err)
	}
}

func TestPreparedConcurrentUse(t *testing.T) {
	base := mustModel(t, cyclic2(t, 2, 3), []float64{1, -0.5}, []float64{0.2, 0.4}, []float64{1, 0})
	m, err := base.WithImpulses(impulseMatrix(t, 2, [3]float64{0, 1, 0.3}))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Prepare(m)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.AccumulatedReward(0.7, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(order int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				got, err := p.AccumulatedReward(0.7, order, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if order == 3 && got.Moments[3] != want.Moments[3] {
					t.Errorf("concurrent solve diverged: %g vs %g", got.Moments[3], want.Moments[3])
				}
			}
		}(1 + g%4)
	}
	wg.Wait()
}
