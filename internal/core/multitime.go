package core

import (
	"fmt"
	"math"

	"somrm/internal/poisson"
	"somrm/internal/sparse"
)

// AccumulatedRewardAt computes the moments of B(t) for several time points
// in a single randomization sweep. The coefficient vectors U^(n)(k) of
// Theorem 3 do not depend on t — only the Poisson weights do — so one pass
// over k = 1..G(max t) serves every time point, amortizing the dominant
// matrix-vector work across the whole series (the Figure 3/4 curves of the
// paper are 20-point series over the same model).
//
// Times must be non-negative; they are solved as given (duplicates
// allowed). The error bound of eq. (11) is enforced at every time point:
// G is the maximum of the per-time truncation points, and each time point
// uses its own Poisson weights.
func (m *Model) AccumulatedRewardAt(times []float64, order int, opts *Options) ([]*Result, error) {
	cfg := opts.withDefaults()
	if len(times) == 0 {
		return nil, fmt.Errorf("%w: empty time list", ErrBadArgument)
	}
	if order < 0 {
		return nil, fmt.Errorf("%w: moment order %d", ErrBadArgument, order)
	}
	if cfg.Epsilon <= 0 || cfg.Epsilon >= 1 {
		return nil, fmt.Errorf("%w: epsilon %g not in (0,1)", ErrBadArgument, cfg.Epsilon)
	}
	for _, t := range times {
		if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
			return nil, fmt.Errorf("%w: time %g", ErrBadArgument, t)
		}
	}

	// Fall back to the single-point solver for the degenerate paths
	// (frozen chain, zero horizon): they are cheap and keep this function
	// focused on the shared-sweep case.
	q := m.gen.MaxExitRate()
	if cfg.UniformizationRate != 0 {
		if cfg.UniformizationRate < q {
			return nil, fmt.Errorf("%w: uniformization rate %g below max exit rate %g", ErrBadArgument, cfg.UniformizationRate, q)
		}
		q = cfg.UniformizationRate
	}
	maxT := 0.0
	for _, t := range times {
		if t > maxT {
			maxT = t
		}
	}
	if q == 0 || maxT == 0 {
		return m.solvePointwise(times, order, opts)
	}

	// Shift and scaling exactly as in AccumulatedReward.
	shift := 0.0
	for _, r := range m.rates {
		if r < shift {
			shift = r
		}
	}
	n := m.N()
	shifted := make([]float64, n)
	sigma := make([]float64, n)
	d := 0.0
	for i := range m.rates {
		shifted[i] = m.rates[i] - shift
		sigma[i] = math.Sqrt(m.vars[i])
		if v := shifted[i] / q; v > d {
			d = v
		}
		if v := sigma[i] / q; v > d {
			d = v
		}
	}
	if m.impulses != nil && m.maxImp > d {
		d = m.maxImp
	}
	if d == 0 {
		return m.solvePointwise(times, order, opts)
	}

	qPrime, err := m.gen.Uniformized(q)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	rPrime := make([]float64, n)
	sPrime := make([]float64, n)
	for i := 0; i < n; i++ {
		rPrime[i] = shifted[i] / (q * d)
		sPrime[i] = m.vars[i] / (q * d * d)
	}
	var impPrime []*sparse.CSR
	if m.impulses != nil && order >= 1 {
		impPrime, err = m.impulseMatrices(q, d, order)
		if err != nil {
			return nil, err
		}
	}

	// Per-time truncation points and weights.
	type timePlan struct {
		t      float64
		g      int
		bound  float64
		weight []float64 // weight[k] = Poisson pmf at k
	}
	plans := make([]timePlan, len(times))
	gMax := 0
	for idx, t := range times {
		if t == 0 {
			plans[idx] = timePlan{t: 0}
			continue
		}
		g, bound, err := truncationPoint(order, d, q*t, cfg.Epsilon, impPrime != nil, cfg.MaxG)
		if err != nil {
			return nil, err
		}
		w := make([]float64, g+1)
		for k := 0; k <= g; k++ {
			w[k] = math.Exp(poisson.LogPMF(k, q*t))
		}
		plans[idx] = timePlan{t: t, g: g, bound: bound, weight: w}
		if g > gMax {
			gMax = g
		}
	}

	// Shared sweep.
	cur := make([][]float64, order+1)
	next := make([][]float64, order+1)
	accs := make([][][]float64, len(times)) // accs[idx][j][state]
	for j := 0; j <= order; j++ {
		cur[j] = make([]float64, n)
		next[j] = make([]float64, n)
	}
	for idx := range accs {
		accs[idx] = make([][]float64, order+1)
		for j := 0; j <= order; j++ {
			accs[idx][j] = make([]float64, n)
		}
	}
	for i := 0; i < n; i++ {
		cur[0][i] = 1
	}
	// k = 0 contributions.
	for idx, plan := range plans {
		if plan.t == 0 {
			continue
		}
		if w0 := plan.weight[0]; w0 > 0 {
			for i := 0; i < n; i++ {
				accs[idx][0][i] = w0
			}
		}
	}
	var matVecs int64
	for k := 1; k <= gMax; k++ {
		for j := order; j >= 0; j-- {
			if err := qPrime.MatVecAuto(cur[j], next[j]); err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			matVecs++
			if j >= 1 {
				for i := 0; i < n; i++ {
					next[j][i] += rPrime[i] * cur[j-1][i]
				}
			}
			if j >= 2 {
				for i := 0; i < n; i++ {
					next[j][i] += 0.5 * sPrime[i] * cur[j-2][i]
				}
			}
			if impPrime != nil {
				invFact := 1.0
				for mm := 1; mm <= j; mm++ {
					invFact /= float64(mm)
					if err := impPrime[mm-1].MatVecAdd(invFact, cur[j-mm], next[j]); err != nil {
						return nil, fmt.Errorf("core: %w", err)
					}
					matVecs++
				}
			}
		}
		cur, next = next, cur
		for idx, plan := range plans {
			if plan.t == 0 || k > plan.g {
				continue
			}
			w := plan.weight[k]
			if w == 0 {
				continue
			}
			for j := 0; j <= order; j++ {
				cj := cur[j]
				aj := accs[idx][j]
				for i := 0; i < n; i++ {
					aj[i] += w * cj[i]
				}
			}
		}
	}

	// Scale, unshift, aggregate per time point.
	results := make([]*Result, len(times))
	for idx, plan := range plans {
		res := &Result{T: plan.t, Order: order}
		if plan.t == 0 {
			res.VectorMoments = trivialMoments(n, order)
			res.finish(m.initial)
			results[idx] = res
			continue
		}
		vm := make([][]float64, order+1)
		scale := 1.0
		for j := 0; j <= order; j++ {
			if j > 0 {
				scale *= float64(j) * d
			}
			vm[j] = make([]float64, n)
			for i := 0; i < n; i++ {
				vm[j][i] = scale * accs[idx][j][i]
				if math.IsInf(vm[j][i], 0) || math.IsNaN(vm[j][i]) {
					return nil, fmt.Errorf("%w: t=%g moment order %d", ErrOverflow, plan.t, j)
				}
			}
		}
		res.VectorMoments = unshift(vm, shift, plan.t, order)
		res.Stats = Stats{
			Q: q, QT: q * plan.t, D: d, Shift: shift,
			G: plan.g, ErrorBound: plan.bound,
			MatVecs:           matVecs,
			FlopsPerIteration: int64(qPrime.NNZ()+2*n) * int64(order+1),
		}
		res.finish(m.initial)
		results[idx] = res
	}
	return results, nil
}

func (m *Model) solvePointwise(times []float64, order int, opts *Options) ([]*Result, error) {
	out := make([]*Result, len(times))
	for i, t := range times {
		res, err := m.AccumulatedReward(t, order, opts)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}
