package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"somrm/internal/poisson"
	"somrm/internal/sparse"
)

// AccumulatedRewardAt computes the moments of B(t) for several time points
// in a single randomization sweep. The coefficient vectors U^(n)(k) of
// Theorem 3 do not depend on t — only the Poisson weights do — so one pass
// over k = 1..G(max t) serves every time point, amortizing the dominant
// matrix-vector work across the whole series (the Figure 3/4 curves of the
// paper are 20-point series over the same model).
//
// Times must be non-negative; they are solved as given (duplicates
// allowed). The error bound of eq. (11) is enforced at every time point:
// G is the maximum of the per-time truncation points, and each time point
// uses its own Poisson weights.
//
// This is the solver engine: AccumulatedReward(t, ...) is exactly
// AccumulatedRewardAt([t], ...)[0], so batch results are bitwise identical
// to per-point solves.
func (m *Model) AccumulatedRewardAt(times []float64, order int, opts *Options) ([]*Result, error) {
	return m.AccumulatedRewardAtContext(context.Background(), times, order, opts)
}

// AccumulatedRewardAtContext is AccumulatedRewardAt with cooperative
// cancellation: the context is polled every few randomization iterations of
// the shared sweep, and the context's error is returned as soon as it is
// observed.
func (m *Model) AccumulatedRewardAtContext(ctx context.Context, times []float64, order int, opts *Options) ([]*Result, error) {
	cfg := opts.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := validateSolveArgs(times, order, cfg); err != nil {
		return nil, err
	}

	q := m.maxExitRate()
	if cfg.UniformizationRate != 0 {
		if cfg.UniformizationRate < q {
			return nil, fmt.Errorf("%w: uniformization rate %g below max exit rate %g", ErrBadArgument, cfg.UniformizationRate, q)
		}
		q = cfg.UniformizationRate
	}
	if q == 0 {
		return m.frozenResults(times, order)
	}
	u, err := m.uniformize(q)
	if err != nil {
		return nil, err
	}
	var imp []*sparse.CSR
	if m.impulses != nil && order >= 1 && u.d > 0 {
		imp, err = m.impulseMatrices(q, u.d, order)
		if err != nil {
			return nil, err
		}
	}
	return m.solveAt(ctx, times, order, cfg, u, imp, nil)
}

// validateSolveArgs checks the user-facing solver arguments shared by every
// randomization entry point.
func validateSolveArgs(times []float64, order int, cfg Options) error {
	if len(times) == 0 {
		return fmt.Errorf("%w: empty time list", ErrBadArgument)
	}
	for _, t := range times {
		if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
			return fmt.Errorf("%w: time %g", ErrBadArgument, t)
		}
	}
	if order < 0 {
		return fmt.Errorf("%w: moment order %d", ErrBadArgument, order)
	}
	if cfg.Epsilon <= 0 || cfg.Epsilon >= 1 {
		return fmt.Errorf("%w: epsilon %g not in (0,1)", ErrBadArgument, cfg.Epsilon)
	}
	if cfg.MaxG < 1 {
		return fmt.Errorf("%w: MaxG %d", ErrBadArgument, cfg.MaxG)
	}
	if _, err := sparse.ParseMatrixFormat(cfg.MatrixFormat); err != nil {
		return fmt.Errorf("%w: %v", ErrBadArgument, err)
	}
	return nil
}

// frozenResults handles the no-transition chain (q == 0): per state the
// accumulated reward is exactly Normal(r_i t, sigma_i^2 t) at every time.
func (m *Model) frozenResults(times []float64, order int) ([]*Result, error) {
	results := make([]*Result, len(times))
	for idx, t := range times {
		res := &Result{T: t, Order: order}
		if t == 0 {
			res.VectorMoments = trivialMoments(m.N(), order)
		} else {
			vm, err := frozenMoments(m, t, order)
			if err != nil {
				return nil, err
			}
			res.VectorMoments = vm
		}
		res.finish(m.initial)
		results[idx] = res
	}
	return results, nil
}

// solveAt runs the shared randomization sweep over a prepared
// uniformization. It is the single implementation behind AccumulatedReward,
// AccumulatedRewardAt and Prepared: callers have validated the arguments
// and handled the q == 0 (frozen chain) case.
func (m *Model) solveAt(ctx context.Context, times []float64, order int, cfg Options, u *uniformization, imp []*sparse.CSR, ws *solveWorkspace) ([]*Result, error) {
	n := m.N()
	q, d, shift := u.q, u.d, u.shift

	if d == 0 {
		// All shifted drifts, variances and impulses are zero: B̌ == 0.
		results := make([]*Result, len(times))
		for idx, t := range times {
			res := &Result{T: t, Order: order}
			if t == 0 {
				res.VectorMoments = trivialMoments(n, order)
			} else {
				res.VectorMoments = unshift(trivialMoments(n, order), shift, t, order)
				res.Stats = Stats{Q: q, QT: q * t, Shift: shift}
			}
			res.finish(m.initial)
			results[idx] = res
		}
		return results, nil
	}

	// Per-time truncation points and Poisson weights. Each plan's
	// accumulation is clipped to the effective window of its weights —
	// the first/last k whose pmf is non-zero in float64 — so large-qt
	// grids skip the underflowed head of the distribution entirely
	// instead of testing ~0.9·qt zero weights per iteration.
	type timePlan struct {
		t     float64
		g     int
		bound float64
	}
	plans := make([]timePlan, len(times))
	sweepPlans := make([]sparse.SweepPlan, len(times))
	gMax := 0
	activePlans := 0
	for idx, t := range times {
		if t == 0 {
			plans[idx] = timePlan{t: 0}
			sweepPlans[idx] = sparse.SweepPlan{First: 0, Last: -1}
			continue
		}
		g, bound, err := truncationPoint(order, d, q*t, cfg.Epsilon, imp != nil, cfg.MaxG)
		if err != nil {
			return nil, err
		}
		w, first, last := poisson.PMFWindow(q*t, g)
		plans[idx] = timePlan{t: t, g: g, bound: bound}
		sweepPlans[idx] = sparse.SweepPlan{First: first, Last: last, Weight: w}
		activePlans++
		if g > gMax {
			gMax = g
		}
	}

	// The k = 1..G recursion runs on the sweep engine: the fused
	// persistent-worker kernel when the model is large enough to amortize
	// the iteration barrier (or the caller forced it), the serial
	// reference kernel otherwise. Both produce bitwise identical moments,
	// as does every matrix storage format; the reference path streams the
	// generic CSR, so it forces csr64 and skips the derived conversions.
	//
	// Matrix-free models (u.qPrime == nil) always stream the Kronecker-sum
	// operator; materialized composed models stream it when the caller
	// forces the "kron" format (impulse-free solves only — impulse
	// matrices stay on the explicit path). The operator honors the same
	// bitwise contract as every explicit format.
	workers := sparse.PlanWorkers(cfg.SweepWorkers, n)
	teamSize := workers
	if teamSize < 1 {
		teamSize = 1
	}
	format, err := sparse.ParseMatrixFormat(cfg.MatrixFormat)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadArgument, err)
	}
	useKron := u.kron != nil && (u.qPrime == nil || (format == sparse.FormatKron && len(imp) == 0))
	var sweep *sparse.Sweep
	if useKron {
		sweep, err = sparse.NewSweepOperator(u.kron, u.rPrime, u.sHalf, order, teamSize)
	} else {
		if workers == 0 {
			format = sparse.FormatCSR64
		}
		sweep, err = sparse.NewSweepWithFormat(u.qPrime, u.rPrime, u.sHalf, imp, order, teamSize, format)
	}
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	sweep.SetSweepTile(cfg.SweepTile)
	sweep.SetTemporalBlock(cfg.TemporalBlock)
	sweep.SetNoSIMD(cfg.NoSIMD)

	// Per-solve scratch comes from one arena (pooled by Prepared): the
	// sweep state vectors, the per-time accumulators, the interleaved
	// kernel buffers, and — when a shift is active, so unshift rebuilds
	// the output vectors anyway — the intermediate scaled moments. Only
	// buffers that never escape into Results are carved here; everything
	// needing zeros is cleared explicitly (the arena arrives dirty).
	vecWords := 2 * (order + 1) * n
	accWords := activePlans * (order + 1) * n
	vmWords := 0
	if shift != 0 {
		vmWords = (order + 1) * n
	}
	if ws == nil {
		ws = &solveWorkspace{}
	}
	arena := ws.ensure(vecWords + accWords + vmWords + sweep.Scratch4Words())
	carve := func(k int) []float64 {
		s := arena[:k:k]
		arena = arena[k:]
		return s
	}
	cur := make([][]float64, order+1)
	next := make([][]float64, order+1)
	for j := 0; j <= order; j++ {
		cur[j] = carve(n)
		clear(cur[j])
		next[j] = carve(n) // fully overwritten by the first iteration
	}
	for idx := range sweepPlans {
		if plans[idx].t == 0 {
			continue
		}
		acc := make([][]float64, order+1)
		for j := 0; j <= order; j++ {
			acc[j] = carve(n)
			clear(acc[j])
		}
		sweepPlans[idx].Acc = acc
	}
	var vmBuf []float64
	if vmWords > 0 {
		vmBuf = carve(vmWords)
	}
	sweep.SetScratch4(carve(sweep.Scratch4Words()))

	// First iteration of the sweep: 1 for a fresh solve, Completed+1 when
	// resuming a checkpoint. A resume restores the captured state and
	// accumulators verbatim (the k = 0 contributions are already inside
	// them), so the remaining iterations perform the exact floating-point
	// work of the uninterrupted run.
	first := 1
	if cp := cfg.Resume; cp != nil {
		if err := cp.matches(order, n, gMax, q, d, shift, cfg.Epsilon, times); err != nil {
			return nil, err
		}
		for j := 0; j <= order; j++ {
			copy(cur[j], cp.State[j])
		}
		for idx := range sweepPlans {
			if plans[idx].t == 0 {
				continue
			}
			if idx >= len(cp.Acc) || cp.Acc[idx] == nil || len(cp.Acc[idx]) != order+1 {
				return nil, fmt.Errorf("%w: missing accumulator for time point %d", ErrCheckpoint, idx)
			}
			for j := 0; j <= order; j++ {
				if len(cp.Acc[idx][j]) != n {
					return nil, fmt.Errorf("%w: accumulator %d/%d has %d entries for %d states", ErrCheckpoint, idx, j, len(cp.Acc[idx][j]), n)
				}
				copy(sweepPlans[idx].Acc[j], cp.Acc[idx][j])
			}
		}
		first = cp.Completed + 1
	} else {
		for i := 0; i < n; i++ {
			cur[0][i] = 1
		}
		// k = 0 contributions: U^(0)(0) = 1, higher orders 0.
		for idx := range sweepPlans {
			p := &sweepPlans[idx]
			if plans[idx].t == 0 || p.First > 0 {
				continue
			}
			if w0 := p.Weight[0]; w0 > 0 {
				for i := 0; i < n; i++ {
					p.Acc[0][i] = w0
				}
			}
		}
	}

	stride := cfg.CancelStride
	if stride <= 0 {
		stride = cancelCheckStride
	}
	var captured *Checkpoint
	if cfg.Checkpoint {
		sweep.SetInterruptHook(func(completed int, export func([][]float64)) {
			cp := &Checkpoint{
				Order: order, N: n, Completed: completed, GMax: gMax,
				Q: q, D: d, Shift: shift, Epsilon: cfg.Epsilon,
				Times:  append([]float64(nil), times...),
				Format: string(sweep.Format()), Workers: teamSize,
			}
			cp.State = make([][]float64, order+1)
			for j := range cp.State {
				cp.State[j] = make([]float64, n)
			}
			export(cp.State)
			cp.Acc = make([][][]float64, len(times))
			for idx := range sweepPlans {
				if plans[idx].t == 0 {
					continue
				}
				acc := make([][]float64, order+1)
				for j := range acc {
					acc[j] = append([]float64(nil), sweepPlans[idx].Acc[j]...)
				}
				cp.Acc[idx] = acc
			}
			captured = cp
		})
	}
	sweepStart := time.Now()
	var matVecs int64
	if workers == 0 {
		matVecs, err = sweep.RunReferenceFrom(ctx, first, gMax, cur, next, sweepPlans, stride)
	} else {
		matVecs, err = sweep.RunFrom(ctx, first, gMax, cur, next, sweepPlans, stride)
	}
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			if captured != nil {
				return nil, &Interrupted{Checkpoint: captured, Err: cerr}
			}
			return nil, cerr
		}
		return nil, fmt.Errorf("core: %w", err)
	}
	if ran := gMax - first + 1; first > 1 && ran > 0 {
		// Stats report whole-sweep work: credit the iterations the
		// interrupted run already performed (the per-iteration product
		// count divides the resumed total exactly).
		matVecs = matVecs / int64(ran) * int64(gMax)
	}
	sweepNS := time.Since(sweepStart).Nanoseconds()

	// Scale, unshift, aggregate per time point.
	results := make([]*Result, len(times))
	for idx, plan := range plans {
		res := &Result{T: plan.t, Order: order}
		if plan.t == 0 {
			res.VectorMoments = trivialMoments(n, order)
			res.finish(m.initial)
			results[idx] = res
			continue
		}
		vm := make([][]float64, order+1)
		scale := 1.0
		for j := 0; j <= order; j++ {
			if j > 0 {
				scale *= float64(j) * d
			}
			if math.IsInf(scale, 0) {
				return nil, fmt.Errorf("%w: scale j!*d^j at order %d", ErrOverflow, j)
			}
			if vmBuf != nil {
				// A non-zero shift means unshift builds fresh output
				// vectors, so the scaled moments are scratch the arena can
				// hold (reused across time points). With shift == 0 they
				// escape into the Result and must be freshly allocated.
				vm[j] = vmBuf[j*n : (j+1)*n : (j+1)*n]
			} else {
				vm[j] = make([]float64, n)
			}
			acc := sweepPlans[idx].Acc[j]
			for i := 0; i < n; i++ {
				vm[j][i] = scale * acc[i]
				if math.IsInf(vm[j][i], 0) || math.IsNaN(vm[j][i]) {
					return nil, fmt.Errorf("%w: t=%g moment order %d", ErrOverflow, plan.t, j)
				}
			}
		}
		res.VectorMoments = unshift(vm, shift, plan.t, order)
		res.Stats = Stats{
			Q: q, QT: q * plan.t, D: d, Shift: shift,
			G: plan.g, ErrorBound: plan.bound,
			MatVecs:           matVecs,
			SweepNS:           sweepNS,
			FlopsPerIteration: (u.nnz + int64(2*n)) * int64(order+1),
			MatrixFormat:      string(sweep.Format()),
			TemporalBlock:     sweep.TemporalBlock(),
			SweepKernel:       sweep.Kernel(),
		}
		res.finish(m.initial)
		results[idx] = res
	}
	return results, nil
}
