package core

import (
	"context"
	"fmt"
	"math"

	"somrm/internal/brownian"
	"somrm/internal/poisson"
	"somrm/internal/sparse"
)

// DefaultEpsilon is the default truncation accuracy of the randomization
// solver (the paper's large experiment uses 1e-9).
const DefaultEpsilon = 1e-9

// defaultMaxG caps the number of randomization iterations as a safety net;
// the paper's largest experiment needs G = 41,588.
const defaultMaxG = 10_000_000

// Options configures the randomization solver.
type Options struct {
	// Epsilon is the truncation error bound (eq. 11). Defaults to
	// DefaultEpsilon when zero.
	Epsilon float64
	// UniformizationRate overrides q (must be >= max_i |q_ii|). Zero means
	// automatic (q = max exit rate).
	UniformizationRate float64
	// MaxG caps the iteration count. Zero means the package default.
	MaxG int
	// SweepWorkers controls the parallelism of the randomization sweep
	// (the k = 1..G recursion behind every solve):
	//
	//   - 0 (the default) selects automatically: the serial reference
	//     sweep for small models, the fused persistent worker team with
	//     GOMAXPROCS workers once the state count can amortize the
	//     per-iteration barrier (16,384 states and up);
	//   - > 0 forces the fused kernel with exactly that many workers at
	//     any size (tests and benchmarks use this);
	//   - < 0 forces the serial reference sweep at any size.
	//
	// Every setting produces bitwise identical moments; the knob trades
	// only wall time and goroutines.
	SweepWorkers int
	// MatrixFormat selects the storage representation the fused sweep
	// kernels stream for the uniformized generator: "auto" (the default;
	// band for narrow-band matrices like the paper's birth-death models,
	// then QBD for block-tridiagonal structure, compact-index CSR
	// otherwise — and always the matrix-free Kronecker-sum operator for
	// matrix-free composed models), "csr" (force compact-index CSR),
	// "band" (force the band representation where eligible), "qbd" (force
	// the block-tridiagonal representation where eligible), "kron" (use
	// the Kronecker-sum operator when the model carries one — composed
	// models of any size — resolving like auto otherwise), or "csr64"
	// (the generic CSR baseline). Every format produces bitwise identical
	// moments; the knob trades only memory traffic. The serial reference
	// sweep (SweepWorkers < 0 or small models) always streams the generic
	// CSR, except on matrix-free models where it streams the operator.
	// Stats.MatrixFormat reports the resolved choice.
	MatrixFormat string
	// TemporalBlock controls wavefront temporal blocking of the fused
	// sweep: how many consecutive sweep iterations run over each
	// cache-resident row block before the next block is touched, cutting
	// the sweep's DRAM traffic by roughly that factor on banded/QBD
	// models.
	//
	//   - 0 (the default) tunes the depth automatically from the matrix
	//     bandwidth and the state footprint (small models stay unblocked —
	//     they are already cache-resident);
	//   - 1 or negative disables blocking;
	//   - >= 2 forces that depth wherever blocking is structurally
	//     possible (bounded-bandwidth explicit matrices with the
	//     interleaved order-3 kernel; matrix-free Kronecker operators and
	//     impulse models never block).
	//
	// Every setting produces bitwise identical moments. With Checkpoint,
	// snapshots land only at blocked-iteration group boundaries; resume
	// tokens remain interchangeable between blocked and unblocked solves.
	// Stats.TemporalBlock reports the depth the solve actually used.
	TemporalBlock int
	// SweepTile overrides the fused kernels' spatial row-tile width (and
	// with it the temporally blocked driver's block width), so spatial and
	// temporal tile shapes are tunable together. Zero or negative keeps
	// the built-in default (1024 rows). Bitwise neutral.
	SweepTile int
	// NoSIMD disables the runtime-dispatched AVX2 sweep kernels, forcing
	// the pure-Go scalar loops even on hardware that supports them; the
	// SOMRM_NOSIMD environment variable (any value but "" or "0") does
	// the same process-wide. The vector kernels replay the scalar loops'
	// exact floating-point operation sequence, so every setting is
	// bitwise identical — the switch exists for A/B measurement and for
	// exercising both paths in tests on one host, not for correctness.
	// Stats.SweepKernel reports the kernel actually dispatched.
	NoSIMD bool
	// Checkpoint enables cooperative sweep snapshots: when the context is
	// cancelled mid-sweep the solver captures the iteration state at the
	// barrier where the cancellation is observed and returns it inside an
	// *Interrupted error instead of the bare context error. Off by
	// default — capture copies the full state and accumulator set.
	Checkpoint bool
	// Resume, when non-nil, continues the interrupted sweep the checkpoint
	// was captured from instead of starting at iteration 1. The request
	// must describe the same solve (times, order, epsilon, model): the
	// checkpoint's recorded parameters are validated bitwise against the
	// recomputed ones and a mismatch fails with ErrCheckpoint. A resumed
	// solve is bitwise identical to the uninterrupted one.
	Resume *Checkpoint
	// CancelStride overrides how many sweep iterations run between context
	// polls (and therefore how fine-grained checkpoint capture is). Zero
	// means the package default (32); tests use 1 to interrupt at every
	// iteration barrier.
	CancelStride int
}

func (o *Options) withDefaults() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.Epsilon == 0 {
		out.Epsilon = DefaultEpsilon
	}
	if out.MaxG == 0 {
		out.MaxG = defaultMaxG
	}
	return out
}

// Stats reports the work done by one randomization solve, mirroring the
// quantities the paper reports for its large example (q, qt, G, the
// per-iteration cost).
type Stats struct {
	// Q is the uniformization rate, QT the Poisson parameter q*t.
	Q, QT float64
	// D is the scaling constant d = max_i {r_i, sigma_i}/q (after the
	// negative-rate shift, and including impulse magnitudes).
	D float64
	// Shift is the applied drift shift (min_i r_i when negative, else 0).
	Shift float64
	// G is the truncation point of the Poisson sum.
	G int
	// ErrorBound is the value of the provable truncation bound at G. It can
	// underflow to zero when the bound is far below Epsilon.
	ErrorBound float64
	// MatVecs counts the sparse matrix-vector products performed by the
	// solve's randomization sweep. A multi-time solve shares one sweep
	// across every time point, so this is the whole-sweep total copied
	// into each Result of the batch: summing it over a time grid's
	// Results overcounts the work by the grid length.
	MatVecs int64
	// SweepNS is the wall-clock time of the randomization sweep in
	// nanoseconds — the k = 1..G recursion only, excluding model setup,
	// the truncation-point search and the final scaling/unshift. Like
	// MatVecs it is a whole-sweep figure copied into every Result of a
	// multi-time solve. Serving metrics use it to report solver time
	// separately from queue and serialization time.
	SweepNS int64
	// FlopsPerIteration estimates floating-point multiplications per
	// iteration step, ((m+2) per moment order) * |S|, as in section 7.
	FlopsPerIteration int64
	// MatrixFormat is the storage representation the sweep streamed for
	// the uniformized generator: "band", "qbd", "csr32", "csr64", or
	// "kron" for the matrix-free Kronecker-sum operator (the serial
	// reference sweep reports "csr64", or "kron" on matrix-free models).
	// Empty for solves that never ran a sweep (t = 0, frozen chains,
	// d = 0).
	MatrixFormat string
	// TemporalBlock is the wavefront temporal blocking depth the sweep
	// resolved (see Options.TemporalBlock): 1 for an unblocked sweep, the
	// group depth otherwise. Zero for solves that never ran a sweep.
	TemporalBlock int
	// SweepKernel is the compute kernel the sweep dispatched: "avx2"
	// when the AVX2 assembly kernels served the bulk rows, "scalar" for
	// the pure-Go loops (no hardware support, Options.NoSIMD or
	// SOMRM_NOSIMD, the serial reference sweep, or a run shape without a
	// vector kernel). Empty for solves that never ran a sweep.
	SweepKernel string
}

// Result holds the accumulated-reward moments at one time point.
type Result struct {
	// T is the accumulation time, Order the highest computed moment.
	T     float64
	Order int
	// VectorMoments[j][i] = E[B(t)^j | Z(0)=i] for j = 0..Order.
	VectorMoments [][]float64
	// Moments[j] = E[B(t)^j] under the model's initial distribution.
	Moments []float64
	// Stats describes the solver work.
	Stats Stats
}

// cancelCheckStride is how many randomization iterations run between
// context polls in AccumulatedRewardContext. Polling has a small fixed cost
// (a mutex acquisition for cancelable contexts), so amortize it over a
// batch of iterations; 32 keeps the cancellation latency far below any
// observable request deadline even for tiny models.
const cancelCheckStride = 32

// AccumulatedReward computes the raw moments of the accumulated reward
// B(t) up to the given order with the randomization method of Theorems 3-4.
// Negative drifts are handled with the paper's shift transformation
// (B(t) = B̌(t) + ř·t with ř = min_i r_i), which keeps every matrix in the
// recursion substochastic and every vector non-negative.
func (m *Model) AccumulatedReward(t float64, order int, opts *Options) (*Result, error) {
	return m.AccumulatedRewardContext(context.Background(), t, order, opts)
}

// AccumulatedRewardContext is AccumulatedReward with cooperative
// cancellation: the context is polled every few randomization iterations,
// and the context's error is returned as soon as it is observed. This is
// the hook long-running server solves use to honor per-request deadlines.
//
// It is a single-time-point view of the shared-sweep engine behind
// AccumulatedRewardAt, so solving a time grid in one call and solving its
// points one by one produce bitwise identical moments.
func (m *Model) AccumulatedRewardContext(ctx context.Context, t float64, order int, opts *Options) (*Result, error) {
	results, err := m.AccumulatedRewardAtContext(ctx, []float64{t}, order, opts)
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// uniformization holds the time- and order-independent precomputation of
// the randomization solver: the drift shift, the scaling constant d, and
// the scaled matrices Q' (uniformized generator), R', S' of Theorem 3.
// Building one costs a pass over the model plus a copy of the generator;
// reusing it across solves (see Prepared) skips exactly that work.
type uniformization struct {
	q, d, shift float64
	qPrime      *sparse.CSR     // explicit uniformized generator; nil when matrix-free
	kron        *sparse.KronSum // matrix-free uniformized operator; set for kron-capable models
	nnz         int64           // effective entry count of the streamed operator
	rPrime      []float64
	sPrime      []float64
	// sHalf[i] = 0.5 * sPrime[i], the coefficient the recursion actually
	// applies to cur[j-2]; precomputed so the sweep kernels need one load
	// per entry instead of a multiply.
	sHalf []float64
}

// uniformize computes the shift transformation and the substochastic
// matrices of Theorem 3 for uniformization rate q > 0. When d == 0 (the
// shifted process is identically zero) the matrices are left nil.
func (m *Model) uniformize(q float64) (*uniformization, error) {
	n := m.N()
	shift := 0.0
	for _, r := range m.rates {
		if r < shift {
			shift = r
		}
	}
	shifted := make([]float64, n)
	d := 0.0
	for i := range m.rates {
		shifted[i] = m.rates[i] - shift
		if v := shifted[i] / q; v > d {
			d = v
		}
		if v := math.Sqrt(m.vars[i]) / q; v > d {
			d = v
		}
	}
	if m.impulses != nil && m.maxImp > d {
		d = m.maxImp
	}
	u := &uniformization{q: q, d: d, shift: shift}
	if d == 0 {
		return u, nil
	}
	if m.gen != nil {
		qPrime, err := m.gen.Uniformized(q)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		u.qPrime = qPrime
		u.nnz = int64(qPrime.NNZ())
	}
	if m.kron != nil {
		// The matrix-free uniformized operator over the same q. For
		// materialized composed models both representations exist and the
		// format knob picks; matrix-free models have only this one.
		kron, err := sparse.NewKronSum(m.kron.factors, m.kron.fold, q)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		u.kron = kron
		if m.gen == nil {
			u.nnz = kron.OpNNZ()
		}
	}
	u.rPrime = make([]float64, n)
	u.sPrime = make([]float64, n)
	u.sHalf = make([]float64, n)
	for i := 0; i < n; i++ {
		u.rPrime[i] = shifted[i] / (q * d)
		u.sPrime[i] = m.vars[i] / (q * d * d)
		u.sHalf[i] = 0.5 * u.sPrime[i]
	}
	return u, nil
}

// impulseMatrices builds Q'^(m) = Q∘Y^m / (q d^m) for m = 1..order, where
// (Q∘Y^m)_{ij} = q_ij * y_ij^m on off-diagonal transitions.
func (m *Model) impulseMatrices(q, d float64, order int) ([]*sparse.CSR, error) {
	n := m.N()
	out := make([]*sparse.CSR, order)
	for mm := 1; mm <= order; mm++ {
		b := sparse.NewBuilder(n, n)
		var addErr error
		for i := 0; i < n; i++ {
			m.impulses.Range(i, func(j int, y float64) {
				if addErr != nil || y == 0 {
					return
				}
				rate := m.gen.At(i, j)
				if rate == 0 {
					return
				}
				v := rate / q * math.Pow(y/d, float64(mm))
				addErr = b.Add(i, j, v)
			})
		}
		if addErr != nil {
			return nil, fmt.Errorf("core: impulse matrix: %w", addErr)
		}
		out[mm-1] = b.Build()
	}
	return out, nil
}

// truncationPoint finds the smallest G meeting the Theorem 4 error bound,
// entirely in log space so (qt)^n n! cannot overflow, maximized over every
// requested moment order j <= order so all returned moments honor eps.
//
// Note on eq. (11): the paper states the tail sum starting at G+n+1, but
// the index substitution k' = k-n in its own proof (Appendix A) yields a
// tail starting at G-n+1, i.e.
//
//	xi(G) <= 2 d^n n! (qt)^n P(X > G-n) < eps.
//
// The difference is immaterial for the paper's large example (qt = 40,000,
// n = 3) but matters for small qt with high orders; we implement the
// provably correct form (empirically validated in the test suite).
//
// With impulses the coefficient bound weakens to U^(n)(k) <= (2k)^n/n!
// (the recursion's generating polynomial e^x + x + x^2/2 <= e^{2x}), giving
//
//	(4d)^n (qt)^n P(X > G-n) < eps for G >= 2n.
func truncationPoint(order int, d, qt, eps float64, impulses bool, maxG int) (int, float64, error) {
	logEps := math.Log(eps)
	logBoundAt := func(g, j int) float64 {
		var logFactor float64
		if impulses {
			logFactor = float64(j) * (math.Log(4*d) + math.Log(qt))
		} else {
			lg, _ := math.Lgamma(float64(j) + 1)
			logFactor = math.Ln2 + float64(j)*math.Log(d) + lg + float64(j)*math.Log(qt)
		}
		return logFactor + poisson.LogTailProb(g-j, qt)
	}
	// Each logBound evaluation costs order+1 Lgamma-based pmf tails, and
	// the exponential bracket revisits its probes during the binary search
	// (and the final bound is re-evaluated at the found G), so memoize
	// per-g results for the duration of the search.
	memo := make(map[int]float64)
	logBound := func(g int) float64 {
		if v, ok := memo[g]; ok {
			return v
		}
		worst := math.Inf(-1)
		for j := 0; j <= order; j++ {
			if b := logBoundAt(g, j); b > worst {
				worst = b
			}
		}
		memo[g] = worst
		return worst
	}

	minG := 0
	if impulses {
		minG = 2 * order
	}
	if logBound(minG) < logEps {
		return minG, math.Exp(logBound(minG)), nil
	}
	// Exponential search for an upper bracket, then binary search.
	hi := minG + 1
	step := 1 + int(math.Sqrt(qt))
	for logBound(hi) >= logEps {
		hi += step
		step *= 2
		if hi > maxG {
			return 0, 0, fmt.Errorf("%w: truncation point exceeds MaxG=%d (qt=%g, order=%d)", ErrBadArgument, maxG, qt, order)
		}
	}
	lo := minG
	for lo < hi {
		mid := (lo + hi) / 2
		if logBound(mid) < logEps {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi, math.Exp(logBound(hi)), nil
}

// trivialMoments returns the moment vectors of B == 0: V^0 = 1, rest 0.
func trivialMoments(n, order int) [][]float64 {
	vm := make([][]float64, order+1)
	for j := range vm {
		vm[j] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		vm[0][i] = 1
	}
	return vm
}

// frozenMoments handles the no-transition chain: per state the accumulated
// reward is exactly Normal(r_i t, sigma_i^2 t).
func frozenMoments(m *Model, t float64, order int) ([][]float64, error) {
	n := m.N()
	vm := make([][]float64, order+1)
	for j := range vm {
		vm[j] = make([]float64, n)
		for i := 0; i < n; i++ {
			v, err := brownian.NormalRawMoment(j, m.rates[i]*t, m.vars[i]*t)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			vm[j][i] = v
		}
	}
	return vm, nil
}

// unshift converts moments of the shifted process B̌ to moments of
// B = B̌ + shift*t via the binomial theorem. A zero shift is a no-op.
func unshift(vm [][]float64, shift, t float64, order int) [][]float64 {
	if shift == 0 {
		return vm
	}
	n := len(vm[0])
	c := shift * t
	pow := powTable(c, order)
	out := make([][]float64, order+1)
	// Binomial coefficients row by row.
	binom := make([]float64, order+1)
	for j := 0; j <= order; j++ {
		// binom holds C(j, l) for l = 0..j built incrementally.
		binom[j] = 1
		for l := j - 1; l > 0; l-- {
			binom[l] += binom[l-1]
		}
		out[j] = make([]float64, n)
		for l := 0; l <= j; l++ {
			coef := binom[l] * pow[j-l]
			if coef == 0 {
				continue
			}
			src := vm[l]
			dst := out[j]
			for i := 0; i < n; i++ {
				dst[i] += coef * src[i]
			}
		}
	}
	return out
}

// powTable returns p[m] = math.Pow(c, float64(m)) for m = 0..n, bit for
// bit, replacing the O(n²) Pow calls the unshift double loop used to
// make. It maintains the powers incrementally with the square-and-multiply
// ladder math.Pow itself uses for integer exponents, sharing the c^(2^i)
// squares across entries; for normal (non-over/underflowing)
// intermediates that ladder performs the identical float64 operation
// sequence as Pow, so the results match exactly. When |c|^n could leave
// the comfortably-normal range — where Pow's frexp exponent tracking
// would round differently than raw multiplication — every entry falls
// back to math.Pow itself.
func powTable(c float64, n int) []float64 {
	p := make([]float64, n+1)
	p[0] = 1
	if n == 0 {
		return p
	}
	// |log2(c^n)| < 1000 keeps every square and partial product strictly
	// inside the normal range (the extremes are bounded by |c|^n and 1).
	// c = 0 and non-finite c fail the test and take the fallback.
	if e := math.Log2(math.Abs(c)); !(math.Abs(e)*float64(n) < 1000) {
		for m := 1; m <= n; m++ {
			p[m] = math.Pow(c, float64(m))
		}
		return p
	}
	squares := make([]float64, 0, 8) // squares[i] = c^(2^i)
	for m := 1; m <= n; m++ {
		a := 1.0
		for yi, bit := m, 0; yi != 0; yi, bit = yi>>1, bit+1 {
			if bit == len(squares) {
				if bit == 0 {
					squares = append(squares, c)
				} else {
					squares = append(squares, squares[bit-1]*squares[bit-1])
				}
			}
			if yi&1 == 1 {
				a *= squares[bit]
			}
		}
		p[m] = a
	}
	return p
}

// finish computes the pi-weighted scalar moments from the vector moments.
func (r *Result) finish(pi []float64) {
	r.Moments = make([]float64, r.Order+1)
	for j := 0; j <= r.Order; j++ {
		var s float64
		for i, p := range pi {
			s += p * r.VectorMoments[j][i]
		}
		r.Moments[j] = s
	}
}
