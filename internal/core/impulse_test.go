package core

import (
	"math"
	"testing"
)

// Expected number of 0->1 transitions in (0,t) for the 2-state chain
// starting in 0: integral of p0(u)*a du.
func expectedUpJumps(a, b, t float64) float64 {
	lam := a + b
	ss0 := b / lam
	intP0 := ss0*t + a/lam*(1-math.Exp(-lam*t))/lam
	return a * intP0
}

func TestImpulseMeanClosedForm(t *testing.T) {
	a, b, y := 2.0, 3.0, 0.7
	gen := cyclic2(t, a, b)
	base := mustModel(t, gen, []float64{1, 0.5}, []float64{0.2, 0.4}, []float64{1, 0})
	withImp, err := base.WithImpulses(impulseMatrix(t, 2, [3]float64{0, 1, y}))
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.2, 1, 3} {
		r0, err := base.AccumulatedReward(tt, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := withImp.AccumulatedReward(tt, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := r0.Moments[1] + y*expectedUpJumps(a, b, tt)
		if math.Abs(r1.Moments[1]-want) > 1e-7*(1+math.Abs(want)) {
			t.Errorf("t=%g: impulse mean %.12g, want %.12g", tt, r1.Moments[1], want)
		}
	}
}

// Pure impulse counting: zero drift/variance, unit impulse on 0->1. The
// first moment is then the expected number of up-jumps, an independent
// closed form.
func TestPureImpulseCounting(t *testing.T) {
	a, b := 1.5, 2.5
	gen := cyclic2(t, a, b)
	base := mustModel(t, gen, []float64{0, 0}, []float64{0, 0}, []float64{1, 0})
	m, err := base.WithImpulses(impulseMatrix(t, 2, [3]float64{0, 1, 1}))
	if err != nil {
		t.Fatal(err)
	}
	const tt = 2.0
	res, err := m.AccumulatedReward(tt, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := expectedUpJumps(a, b, tt)
	if math.Abs(res.Moments[1]-want) > 1e-7*(1+want) {
		t.Errorf("jump count mean = %.10g, want %.10g", res.Moments[1], want)
	}
	// Second moment of a counting variable: m2 >= m1 and m2 >= m1^2.
	if res.Moments[2] < res.Moments[1] || res.Moments[2] < res.Moments[1]*res.Moments[1] {
		t.Errorf("impulse m2 = %g inconsistent with m1 = %g", res.Moments[2], res.Moments[1])
	}
}

func TestImpulseWithNegativeDriftShift(t *testing.T) {
	// Impulses must compose with the drift-shift transformation.
	a, b, y := 2.0, 1.0, 0.4
	gen := cyclic2(t, a, b)
	neg := mustModel(t, gen, []float64{-3, 1}, []float64{0.5, 0.1}, []float64{1, 0})
	negImp, err := neg.WithImpulses(impulseMatrix(t, 2, [3]float64{0, 1, y}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := negImp.AccumulatedReward(1.5, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Shift != -3 {
		t.Errorf("Shift = %g, want -3", res.Stats.Shift)
	}
	// Mean = continuous part + y * E[up jumps].
	base, err := neg.AccumulatedReward(1.5, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := base.Moments[1] + y*expectedUpJumps(a, b, 1.5)
	if math.Abs(res.Moments[1]-want) > 1e-7*(1+math.Abs(want)) {
		t.Errorf("mean = %.10g, want %.10g", res.Moments[1], want)
	}
}

func TestImpulseZeroMatrixNoEffect(t *testing.T) {
	gen := cyclic2(t, 1, 1)
	base := mustModel(t, gen, []float64{1, 2}, []float64{0.5, 0.5}, []float64{1, 0})
	withZero, err := base.WithImpulses(impulseMatrix(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	r0, err := base.AccumulatedReward(1, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := withZero.AccumulatedReward(1, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j <= 3; j++ {
		if math.Abs(r0.Moments[j]-r1.Moments[j]) > 1e-9*(1+math.Abs(r0.Moments[j])) {
			t.Errorf("j=%d: zero impulse changed moment %g -> %g", j, r0.Moments[j], r1.Moments[j])
		}
	}
}
