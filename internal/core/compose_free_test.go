package core

import (
	"errors"
	"math"
	"testing"

	"somrm/internal/ctmc"
	"somrm/internal/sparse"
)

// birthDeathModel builds an n-state birth-death reward model with unit
// up/down rates, drift proportional to the level, and a small per-level
// variance — a cheap factor for composition tests.
func birthDeathModel(t *testing.T, n int) *Model {
	t.Helper()
	up := make([]float64, n-1)
	down := make([]float64, n-1)
	for i := range up {
		up[i] = 1
		down[i] = 1
	}
	gen, err := ctmc.NewBirthDeath(up, down)
	if err != nil {
		t.Fatal(err)
	}
	rates := make([]float64, n)
	vars := make([]float64, n)
	for i := 0; i < n; i++ {
		rates[i] = 0.05 * float64(i)
		vars[i] = 0.01 * float64(i)
	}
	pi, err := ctmc.UnitDistribution(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	return mustModel(t, gen, rates, vars, pi)
}

// convolveMoments returns the binomial convolution of two raw moment
// sequences — the exact oracle for the moments of a sum of independent
// rewards.
func convolveMoments(a, b []float64) []float64 {
	order := len(a) - 1
	out := make([]float64, order+1)
	for n := 0; n <= order; n++ {
		for k := 0; k <= n; k++ {
			out[n] += binomCoef(n, k) * a[k] * b[n-k]
		}
	}
	return out
}

func TestComposeImpulseSentinel(t *testing.T) {
	m := mustModel(t, cyclic2(t, 1, 1), []float64{1, 2}, []float64{0, 0}, []float64{1, 0})
	mi, err := m.WithImpulses(impulseMatrix(t, 2, [3]float64{0, 1, 1}))
	if err != nil {
		t.Fatal(err)
	}
	for name, pair := range map[string][2]*Model{
		"left": {mi, m}, "right": {m, mi},
	} {
		_, err := Compose(pair[0], pair[1])
		if !errors.Is(err, ErrComposeImpulse) {
			t.Errorf("%s impulse component: err = %v, want ErrComposeImpulse", name, err)
		}
		if !errors.Is(err, ErrBadModel) {
			t.Errorf("%s impulse component: err = %v, want ErrBadModel wrapper", name, err)
		}
	}
}

// TestComposeMatrixFreeLarge is the acceptance gate for the matrix-free
// path: a composed model of 10^6 product states solves through the
// Kronecker-sum operator without materializing the product generator, the
// operator's memory stays O(sum of factor sizes), and the moments match
// the binomial-convolution oracle of the component solves.
func TestComposeMatrixFreeLarge(t *testing.T) {
	const nf = 100
	a := birthDeathModel(t, nf)
	b := birthDeathModel(t, nf)
	c := birthDeathModel(t, nf)
	joint, err := ComposeAll(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := joint.N(), nf*nf*nf; got != want {
		t.Fatalf("joint.N() = %d, want %d", got, want)
	}
	if !joint.IsMatrixFree() {
		t.Fatal("composed model above the threshold should be matrix-free")
	}
	if joint.Generator() != nil {
		t.Fatal("matrix-free model must not carry an explicit generator")
	}

	// The operator the solver will stream: its footprint is bounded by the
	// factor sizes, six orders of magnitude below the materialized product
	// (~10^6 rows x ~7 entries x 16 bytes ~ 100 MB).
	u, err := joint.uniformize(joint.maxExitRate())
	if err != nil {
		t.Fatal(err)
	}
	if u.kron == nil {
		t.Fatal("uniformization of a matrix-free model must build the Kronecker operator")
	}
	var factorBytes int64
	for _, f := range joint.kron.factors {
		factorBytes += int64(f.NNZ()+f.Rows()) * 16
	}
	if mem := u.kron.MemoryBytes(); mem > 8*factorBytes {
		t.Fatalf("KronSum memory %d bytes exceeds O(sum of factors) bound %d", mem, 8*factorBytes)
	}
	if mem := u.kron.MemoryBytes(); mem > 1<<20 {
		t.Fatalf("KronSum memory %d bytes for three 100-state factors; expected well under 1 MiB", mem)
	}

	const tt, order = 0.2, 2
	rj, err := joint.AccumulatedReward(tt, order, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rj.Stats.MatrixFormat != string(sparse.FormatKron) {
		t.Errorf("Stats.MatrixFormat = %q, want %q", rj.Stats.MatrixFormat, sparse.FormatKron)
	}

	ra, err := a.AccumulatedReward(tt, order, nil)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.AccumulatedReward(tt, order, nil)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := c.AccumulatedReward(tt, order, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := convolveMoments(convolveMoments(ra.Moments, rb.Moments), rc.Moments)
	for n := 0; n <= order; n++ {
		if math.Abs(rj.Moments[n]-want[n]) > 1e-8*(1+math.Abs(want[n])) {
			t.Errorf("matrix-free m%d = %.12g, convolution oracle %.12g", n, rj.Moments[n], want[n])
		}
	}

	// The prepared path reuses the operator and must agree bitwise.
	prep, err := Prepare(joint)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := prep.AccumulatedReward(tt, order, nil)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n <= order; n++ {
		if math.Float64bits(rp.Moments[n]) != math.Float64bits(rj.Moments[n]) {
			t.Errorf("prepared m%d = %x, model path %x", n, math.Float64bits(rp.Moments[n]), math.Float64bits(rj.Moments[n]))
		}
	}
}

// TestComposeKronFormatBitwise is the composed-model half of the bitwise
// gate: a materialized composed model solved through the forced "kron"
// format — at every worker count, including the serial reference — must
// reproduce the default materialized solve bit for bit.
func TestComposeKronFormatBitwise(t *testing.T) {
	a := mustModel(t, cyclic2(t, 2, 3), []float64{1, -0.5}, []float64{0.4, 1}, []float64{1, 0})
	gb, err := ctmc.NewGeneratorFromDense(3, []float64{
		-3, 2, 1,
		0.5, -0.5, 0,
		4, 0, -4,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := mustModel(t, gb, []float64{2, 0, 1}, []float64{0, 0.6, 0.2}, []float64{0.25, 0.5, 0.25})
	joint, err := Compose(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if joint.IsMatrixFree() {
		t.Fatal("a 6-state composition should materialize")
	}

	times := []float64{0.3, 0.7}
	const order = 3
	ref, err := joint.AccumulatedRewardAt(times, order, &Options{SweepWorkers: -1})
	if err != nil {
		t.Fatal(err)
	}
	if ref[0].Stats.MatrixFormat != string(sparse.FormatCSR64) {
		t.Fatalf("reference format = %q, want csr64", ref[0].Stats.MatrixFormat)
	}

	for _, workers := range []int{-1, 1, 2, 5} {
		got, err := joint.AccumulatedRewardAt(times, order, &Options{
			SweepWorkers: workers, MatrixFormat: string(sparse.FormatKron),
		})
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		for idx := range times {
			if got[idx].Stats.MatrixFormat != string(sparse.FormatKron) {
				t.Fatalf("workers %d: format = %q, want kron", workers, got[idx].Stats.MatrixFormat)
			}
			for n := 0; n <= order; n++ {
				if math.Float64bits(got[idx].Moments[n]) != math.Float64bits(ref[idx].Moments[n]) {
					t.Errorf("workers %d t=%g: m%d = %x, reference %x",
						workers, times[idx], n, math.Float64bits(got[idx].Moments[n]), math.Float64bits(ref[idx].Moments[n]))
				}
				for i := 0; i < joint.N(); i++ {
					g := got[idx].VectorMoments[n][i]
					w := ref[idx].VectorMoments[n][i]
					if math.Float64bits(g) != math.Float64bits(w) {
						t.Fatalf("workers %d t=%g: V%d[%d] = %x, reference %x",
							workers, times[idx], n, i, math.Float64bits(g), math.Float64bits(w))
					}
				}
			}
		}
	}
}

// TestComposeAllAssociativity pins the spec-level associativity of
// composition: (A∘B)∘C and A∘(B∘C) share the same state space, the same
// factor list, and the same generator sparsity structure with exactly
// equal off-diagonal rates. They are deliberately NOT bitwise identical:
// the diagonal entries, drifts and variances are floating-point sums
// folded in the shape of the composition tree ((qa+qb)+qc versus
// qa+(qb+qc)), which differ in the last ulp for generic rates. The fold
// programs record exactly that shape — each variant stays bitwise
// faithful to its own materialization, which TestComposeKronFormatBitwise
// checks through the forced kron format.
func TestComposeAllAssociativity(t *testing.T) {
	a := mustModel(t, cyclic2(t, 0.3, 1.7), []float64{0.1, 1.3}, []float64{0.2, 0}, []float64{1, 0})
	b := mustModel(t, cyclic2(t, 2.1, 0.9), []float64{0.7, 0.05}, []float64{0, 0.4}, []float64{0.5, 0.5})
	c := mustModel(t, cyclic2(t, 1.1, 1.9), []float64{0.23, 0.91}, []float64{0.11, 0.02}, []float64{0.25, 0.75})

	ab, err := Compose(a, b)
	if err != nil {
		t.Fatal(err)
	}
	left, err := Compose(ab, c)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := Compose(b, c)
	if err != nil {
		t.Fatal(err)
	}
	right, err := Compose(a, bc)
	if err != nil {
		t.Fatal(err)
	}

	if left.N() != right.N() {
		t.Fatalf("N: %d != %d", left.N(), right.N())
	}
	n := left.N()

	// Both parenthesizations decompose into the same ordered factor list;
	// only the fold program (the tree shape) differs.
	if len(left.kron.factors) != 3 || len(right.kron.factors) != 3 {
		t.Fatalf("factor counts %d/%d, want 3", len(left.kron.factors), len(right.kron.factors))
	}
	for i := range left.kron.factors {
		if left.kron.factors[i] != right.kron.factors[i] {
			t.Errorf("factor %d differs between parenthesizations", i)
		}
	}
	wantLeft := []byte{sparse.KronFoldPush, sparse.KronFoldPush, sparse.KronFoldAdd, sparse.KronFoldPush, sparse.KronFoldAdd}
	wantRight := []byte{sparse.KronFoldPush, sparse.KronFoldPush, sparse.KronFoldPush, sparse.KronFoldAdd, sparse.KronFoldAdd}
	if string(left.kron.fold) != string(wantLeft) {
		t.Errorf("left fold = %v, want %v", left.kron.fold, wantLeft)
	}
	if string(right.kron.fold) != string(wantRight) {
		t.Errorf("right fold = %v, want %v", right.kron.fold, wantRight)
	}

	lg, rg := left.Generator().Matrix(), right.Generator().Matrix()
	if lg.NNZ() != rg.NNZ() {
		t.Fatalf("nnz: %d != %d", lg.NNZ(), rg.NNZ())
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			lv, rv := lg.At(i, j), rg.At(i, j)
			if i != j {
				// Off-diagonal product rates are single component rates —
				// no summation, so associativity is exact.
				if math.Float64bits(lv) != math.Float64bits(rv) {
					t.Fatalf("offdiag (%d,%d): %x != %x", i, j, math.Float64bits(lv), math.Float64bits(rv))
				}
				continue
			}
			if (lv == 0) != (rv == 0) {
				t.Fatalf("diag %d: structure differs (%g vs %g)", i, lv, rv)
			}
			if math.Abs(lv-rv) > 4e-16*math.Abs(lv) {
				t.Fatalf("diag %d: %g vs %g beyond ulp slack", i, lv, rv)
			}
		}
	}
	for i := 0; i < n; i++ {
		if math.Abs(left.rates[i]-right.rates[i]) > 4e-16*(1+math.Abs(left.rates[i])) {
			t.Fatalf("rates[%d]: %g vs %g", i, left.rates[i], right.rates[i])
		}
		if math.Abs(left.vars[i]-right.vars[i]) > 4e-16*(1+math.Abs(left.vars[i])) {
			t.Fatalf("vars[%d]: %g vs %g", i, left.vars[i], right.vars[i])
		}
	}

	// Both trees solve to the same distribution up to roundoff.
	rl, err := left.AccumulatedReward(0.5, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := right.AccumulatedReward(0.5, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j <= 3; j++ {
		if math.Abs(rl.Moments[j]-rr.Moments[j]) > 1e-12*(1+math.Abs(rl.Moments[j])) {
			t.Errorf("m%d: %.17g vs %.17g", j, rl.Moments[j], rr.Moments[j])
		}
	}
}

// TestMatrixFreeGuards pins which operations a matrix-free composed model
// supports: transient solves work, everything needing the explicit
// generator fails loudly instead of panicking.
func TestMatrixFreeGuards(t *testing.T) {
	// 257 x 257 = 66049 > 2^16: the smallest two-factor matrix-free model.
	a := birthDeathModel(t, 257)
	b := birthDeathModel(t, 257)
	joint, err := Compose(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !joint.IsMatrixFree() {
		t.Fatalf("%d-state composition should be matrix-free", joint.N())
	}

	if _, err := joint.WithImpulses(impulseMatrix(t, joint.N(), [3]float64{0, 1, 1})); !errors.Is(err, ErrBadModel) {
		t.Errorf("WithImpulses: %v, want ErrBadModel", err)
	}
	if _, err := joint.LongRun(); !errors.Is(err, ErrBadArgument) {
		t.Errorf("LongRun: %v, want ErrBadArgument", err)
	}
	if _, err := joint.SteadyStateMeanRate(); !errors.Is(err, ErrBadArgument) {
		t.Errorf("SteadyStateMeanRate: %v, want ErrBadArgument", err)
	}
	if _, err := joint.JointMoments(0.1, 1, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("JointMoments: %v, want ErrBadArgument", err)
	}

	// WithInitial re-validates through the generator-free path.
	pi := make([]float64, joint.N())
	pi[1] = 1
	swapped, err := joint.WithInitial(pi)
	if err != nil {
		t.Fatalf("WithInitial: %v", err)
	}
	if !swapped.IsMatrixFree() {
		t.Error("WithInitial must preserve matrix-freeness")
	}
	bad := make([]float64, joint.N())
	bad[0] = 2
	if _, err := joint.WithInitial(bad); !errors.Is(err, ErrBadModel) {
		t.Errorf("WithInitial(bad): %v, want ErrBadModel", err)
	}
}
