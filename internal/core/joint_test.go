package core

import (
	"errors"
	"math"
	"testing"
)

func TestJointMomentsMarginalsAndTransient(t *testing.T) {
	m := mustModel(t, cyclic2(t, 2, 5), []float64{-1, 3}, []float64{0.5, 2}, []float64{1, 0})
	const tt = 0.8
	const order = 3
	joint, err := m.JointMoments(tt, order, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Order 0 equals the transient probability matrix.
	for i := 0; i < 2; i++ {
		row, err := m.Generator().TransientDistribution(unitRow(2, i), tt, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 2; k++ {
			got, err := joint.At(0, i, k)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-row[k]) > 1e-9 {
				t.Errorf("P(Z=%d|Z0=%d): joint %.12g vs transient %.12g", k, i, got, row[k])
			}
		}
	}
	// Marginals equal the vector solver.
	res, err := m.AccumulatedReward(tt, order, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j <= order; j++ {
		marg, err := joint.Marginal(j)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			want := res.VectorMoments[j][i]
			if math.Abs(marg[i]-want) > 1e-9*(1+math.Abs(want)) {
				t.Errorf("marginal j=%d i=%d: %.12g vs %.12g", j, i, marg[i], want)
			}
		}
	}
}

func TestJointConditionalMeanAgainstSimulation(t *testing.T) {
	// Conditional mean E[B | Z(t)=k] differs by final state when the
	// reward rates differ; validate against the law of total expectation
	// (already covered by marginals) and basic ordering: paths ending in
	// the high-reward state have spent more recent time there.
	m := mustModel(t, cyclic2(t, 1, 1), []float64{5, 0}, []float64{0.1, 0.1}, []float64{0.5, 0.5})
	joint, err := m.JointMoments(0.6, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	c00, err := joint.ConditionalMean(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	c01, err := joint.ConditionalMean(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c00 <= c01 {
		t.Errorf("ending in the high-reward state must raise the conditional mean: %g vs %g", c00, c01)
	}
}

func TestJointMomentsNormalModel(t *testing.T) {
	// Identical rates: B independent of the path, so
	// M^(j)[i][k] = E[B^j] * P(Z(t)=k | Z(0)=i).
	m := normalModel(t, 1.5, 2.0)
	const tt = 0.7
	joint, err := m.JointMoments(tt, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.AccumulatedReward(tt, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j <= 4; j++ {
		for i := 0; i < 2; i++ {
			for k := 0; k < 2; k++ {
				p, err := joint.At(0, i, k)
				if err != nil {
					t.Fatal(err)
				}
				got, err := joint.At(j, i, k)
				if err != nil {
					t.Fatal(err)
				}
				want := res.Moments[j] * p
				if math.Abs(got-want) > 1e-8*(1+math.Abs(want)) {
					t.Errorf("j=%d i=%d k=%d: %.12g vs %.12g", j, i, k, got, want)
				}
			}
		}
	}
}

func TestJointMomentsWithImpulsesAndShift(t *testing.T) {
	base := mustModel(t, cyclic2(t, 2, 3), []float64{-1, 0.5}, []float64{0.2, 0.4}, []float64{1, 0})
	m, err := base.WithImpulses(impulseMatrix(t, 2, [3]float64{0, 1, 0.7}))
	if err != nil {
		t.Fatal(err)
	}
	const tt = 0.9
	joint, err := m.JointMoments(tt, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.AccumulatedReward(tt, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j <= 2; j++ {
		marg, err := joint.Marginal(j)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(marg[0]-res.VectorMoments[j][0]) > 1e-8*(1+math.Abs(res.VectorMoments[j][0])) {
			t.Errorf("impulse marginal j=%d: %.12g vs %.12g", j, marg[0], res.VectorMoments[j][0])
		}
	}
}

func TestJointMomentsEdges(t *testing.T) {
	m := normalModel(t, 1, 1)
	// t = 0: identity transient, zero moments.
	joint, err := m.JointMoments(0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := joint.At(0, 0, 0); v != 1 {
		t.Errorf("t=0 P(0->0) = %g", v)
	}
	if v, _ := joint.At(0, 0, 1); v != 0 {
		t.Errorf("t=0 P(0->1) = %g", v)
	}
	if v, _ := joint.At(1, 0, 0); v != 0 {
		t.Errorf("t=0 first moment = %g", v)
	}
	// Zero-reward model with transitions (d == 0 path).
	zero := mustModel(t, cyclic2(t, 2, 5), []float64{0, 0}, []float64{0, 0}, []float64{1, 0})
	jz, err := zero.JointMoments(1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	marg, err := jz.Marginal(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(marg[0]-1) > 1e-9 {
		t.Errorf("d=0 path mass = %g", marg[0])
	}
	// Errors.
	if _, err := m.JointMoments(-1, 2, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("negative t: %v", err)
	}
	if _, err := m.JointMoments(1, -1, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("negative order: %v", err)
	}
	if _, err := joint.At(9, 0, 0); !errors.Is(err, ErrBadArgument) {
		t.Errorf("bad index: %v", err)
	}
	if _, err := joint.Marginal(9); !errors.Is(err, ErrBadArgument) {
		t.Errorf("bad marginal: %v", err)
	}
	if _, err := joint.ConditionalMean(0, 1); !errors.Is(err, ErrBadArgument) {
		t.Errorf("zero-probability conditioning: %v", err)
	}
}
