package core

import (
	"fmt"
	"math"
)

// Mean returns E[B(t)] under the initial distribution. The result must hold
// at least the first moment.
func (r *Result) Mean() (float64, error) {
	if r.Order < 1 {
		return 0, fmt.Errorf("%w: result holds moments up to order %d", ErrBadArgument, r.Order)
	}
	return r.Moments[1], nil
}

// Variance returns Var[B(t)] = E[B^2] - E[B]^2.
func (r *Result) Variance() (float64, error) {
	if r.Order < 2 {
		return 0, fmt.Errorf("%w: result holds moments up to order %d", ErrBadArgument, r.Order)
	}
	v := r.Moments[2] - r.Moments[1]*r.Moments[1]
	if v < 0 && v > -1e-9*math.Abs(r.Moments[2]) {
		v = 0 // clamp tiny negative rounding
	}
	return v, nil
}

// StdDev returns the standard deviation of B(t).
func (r *Result) StdDev() (float64, error) {
	v, err := r.Variance()
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Skewness returns the standardized third central moment of B(t).
func (r *Result) Skewness() (float64, error) {
	cm, err := r.CentralMoments()
	if err != nil {
		return 0, err
	}
	if len(cm) < 4 {
		return 0, fmt.Errorf("%w: skewness needs order >= 3", ErrBadArgument)
	}
	// Treat numerically-zero variance (rounding residue of a deterministic
	// reward) as zero: skewness is undefined there.
	if cm[2] <= 1e-12*(1+math.Abs(r.Moments[2])) {
		return 0, fmt.Errorf("%w: zero variance", ErrBadArgument)
	}
	sd := math.Sqrt(cm[2])
	return cm[3] / (sd * sd * sd), nil
}

// CentralMoments converts the raw moments to central moments
// mu_j = E[(B - E[B])^j] with the binomial identity
// mu_j = sum_l C(j,l) m_l (-m_1)^{j-l}. Index 0 is 1 and index 1 is 0.
func (r *Result) CentralMoments() ([]float64, error) {
	return RawToCentral(r.Moments)
}

// RawToCentral converts raw moments (starting at order 0) to central
// moments of the same length.
func RawToCentral(raw []float64) ([]float64, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("%w: empty moment sequence", ErrBadArgument)
	}
	if math.Abs(raw[0]-1) > 1e-6 {
		return nil, fmt.Errorf("%w: raw[0]=%g, want 1", ErrBadArgument, raw[0])
	}
	n := len(raw) - 1
	out := make([]float64, n+1)
	out[0] = 1
	if n == 0 {
		return out, nil
	}
	mean := raw[1]
	binom := make([]float64, n+1)
	for j := 1; j <= n; j++ {
		binom[j] = 1
		for l := j - 1; l > 0; l-- {
			binom[l] += binom[l-1]
		}
		binom[0] = 1
		var s float64
		for l := 0; l <= j; l++ {
			s += binom[l] * raw[l] * math.Pow(-mean, float64(j-l))
		}
		out[j] = s
	}
	out[1] = 0 // exactly zero by construction; avoid rounding residue
	return out, nil
}

// RawToCumulants converts raw moments to cumulants kappa_1..kappa_n using
// the recursive identity m_n = sum_{k=1}^{n} C(n-1,k-1) kappa_k m_{n-k}.
// The returned slice has cumulants at indices 1..n (index 0 unused).
func RawToCumulants(raw []float64) ([]float64, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("%w: empty moment sequence", ErrBadArgument)
	}
	n := len(raw) - 1
	kappa := make([]float64, n+1)
	for j := 1; j <= n; j++ {
		s := raw[j]
		for k := 1; k < j; k++ {
			s -= binomCoef(j-1, k-1) * kappa[k] * raw[j-k]
		}
		kappa[j] = s
	}
	return kappa, nil
}

func binomCoef(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c
}

// TimeAveraged returns the raw moments of the time-averaged reward
// B(t)/t, i.e. Moments[j] / t^j — the per-unit-time performability measure
// (e.g. average available capacity) derived from the same solve. It
// errors at t = 0, where the time average is undefined.
func (r *Result) TimeAveraged() ([]float64, error) {
	if r.T == 0 {
		return nil, fmt.Errorf("%w: time average undefined at t=0", ErrBadArgument)
	}
	out := make([]float64, len(r.Moments))
	scale := 1.0
	for j, m := range r.Moments {
		out[j] = m / scale
		scale *= r.T
	}
	return out, nil
}

// MeanVector computes just the first-moment vector E[B(t) | Z(0)=i] using a
// full solve at order 1; a convenience for plotting Figure 3.
func (m *Model) MeanVector(t float64, opts *Options) ([]float64, error) {
	res, err := m.AccumulatedReward(t, 1, opts)
	if err != nil {
		return nil, err
	}
	return res.VectorMoments[1], nil
}

// SteadyStateMeanRate returns pi_ss · r, the long-run reward accumulation
// rate from the stationary distribution of the structure process. Figure 3
// plots t * SteadyStateMeanRate as the "starting from steady state" line.
func (m *Model) SteadyStateMeanRate() (float64, error) {
	if m.gen == nil {
		return 0, fmt.Errorf("%w: steady-state rate requires an explicit generator (matrix-free composed model)", ErrBadArgument)
	}
	pi, err := m.gen.StationaryDistribution()
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	var s float64
	for i, p := range pi {
		s += p * m.rates[i]
	}
	return s, nil
}
