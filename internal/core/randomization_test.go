package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"somrm/internal/brownian"
	"somrm/internal/ctmc"
)

const maxOrderTested = 6

// normalModel builds a 2-state chain where both states carry the same
// (r, sigma2): the accumulated reward is then exactly Normal(rt, sigma2*t)
// while still exercising the full randomization path.
func normalModel(t *testing.T, r, s2 float64) *Model {
	t.Helper()
	return mustModel(t, cyclic2(t, 3, 3), []float64{r, r}, []float64{s2, s2}, []float64{1, 0})
}

func TestRandomizationMatchesNormalClosedForm(t *testing.T) {
	cases := []struct{ r, s2, tt float64 }{
		{1.5, 2.0, 0.7},
		{0, 1, 1},
		{-2, 0.5, 0.4}, // negative drift exercises the shift transform
		{3, 0, 1.2},    // first-order
	}
	for _, c := range cases {
		m := normalModel(t, c.r, c.s2)
		res, err := m.AccumulatedReward(c.tt, maxOrderTested, nil)
		if err != nil {
			t.Fatalf("r=%g s2=%g: %v", c.r, c.s2, err)
		}
		for j := 0; j <= maxOrderTested; j++ {
			want, err := brownian.NormalRawMoment(j, c.r*c.tt, c.s2*c.tt)
			if err != nil {
				t.Fatal(err)
			}
			tol := 1e-10 * (1 + math.Abs(want))
			if math.Abs(res.Moments[j]-want) > tol {
				t.Errorf("r=%g s2=%g j=%d: got %.15g, want %.15g", c.r, c.s2, j, res.Moments[j], want)
			}
		}
	}
}

func TestSingleStateClosedFormPath(t *testing.T) {
	// One state, no transitions: exercises the frozen (q=0) path.
	gen, err := ctmc.NewGeneratorFromDense(1, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	m := mustModel(t, gen, []float64{2}, []float64{3}, []float64{1})
	res, err := m.AccumulatedReward(0.5, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.G != 0 {
		t.Errorf("frozen path should not iterate, G = %d", res.Stats.G)
	}
	for j := 0; j <= 4; j++ {
		want, _ := brownian.NormalRawMoment(j, 1, 1.5)
		if math.Abs(res.Moments[j]-want) > 1e-12*(1+math.Abs(want)) {
			t.Errorf("j=%d: %g vs %g", j, res.Moments[j], want)
		}
	}
}

func TestZeroTime(t *testing.T) {
	m := normalModel(t, 1, 1)
	res, err := m.AccumulatedReward(0, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Moments[0] != 1 {
		t.Errorf("m0 = %g", res.Moments[0])
	}
	for j := 1; j <= 3; j++ {
		if res.Moments[j] != 0 {
			t.Errorf("m%d = %g, want 0", j, res.Moments[j])
		}
	}
}

func TestZeroRewardModel(t *testing.T) {
	// Transitions exist but all drifts/variances are zero: B == 0 (d == 0 path).
	m := mustModel(t, cyclic2(t, 2, 5), []float64{0, 0}, []float64{0, 0}, []float64{1, 0})
	res, err := m.AccumulatedReward(1, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Moments[0] != 1 || res.Moments[1] != 0 || res.Moments[2] != 0 {
		t.Errorf("moments = %v", res.Moments)
	}
}

// First-order mean has the closed form E[B(t)] = integral of p(u).r du; for
// a 2-state chain the transient is exponential and the integral is
// analytic.
func TestFirstOrderMeanClosedForm(t *testing.T) {
	a, b := 2.0, 3.0
	r0, r1 := 5.0, 1.0
	m := mustModel(t, cyclic2(t, a, b), []float64{r0, r1}, []float64{0, 0}, []float64{1, 0})
	for _, tt := range []float64{0.1, 0.5, 2} {
		res, err := m.AccumulatedReward(tt, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		// p0(u) = b/(a+b) + a/(a+b) e^{-(a+b)u}; mean = int (p0 r0 + p1 r1).
		lam := a + b
		ss0 := b / lam
		intP0 := ss0*tt + a/lam*(1-math.Exp(-lam*tt))/lam
		want := r0*intP0 + r1*(tt-intP0)
		if math.Abs(res.Moments[1]-want) > 1e-10*(1+math.Abs(want)) {
			t.Errorf("t=%g: mean %.14g, want %.14g", tt, res.Moments[1], want)
		}
	}
}

// The first-order mean equals L(t).r where L is the integrated transient
// occupancy — a fully independent code path inside internal/ctmc.
func TestMeanMatchesIntegratedTransient(t *testing.T) {
	gen, err := ctmc.NewGeneratorFromRates(4, func(i, j int) float64 {
		return float64((i*3+j)%5) * 0.6
	})
	if err != nil {
		t.Fatal(err)
	}
	rates := []float64{4, -1, 2.5, 0}
	pi := []float64{0.4, 0.1, 0.2, 0.3}
	m := mustModel(t, gen, rates, []float64{1, 2, 3, 4}, pi)
	for _, tt := range []float64{0.3, 1.7} {
		res, err := m.AccumulatedReward(tt, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		occ, err := gen.IntegratedTransient(pi, tt, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		var want float64
		for i, r := range rates {
			want += occ[i] * r
		}
		if math.Abs(res.Moments[1]-want) > 1e-8*(1+math.Abs(want)) {
			t.Errorf("t=%g: mean %.12g vs occupancy oracle %.12g", tt, res.Moments[1], want)
		}
	}
}

func TestComposeAssociativeProperty(t *testing.T) {
	a := mustModel(t, cyclic2(t, 2, 3), []float64{1, -0.5}, []float64{0.4, 1}, []float64{1, 0})
	b := mustModel(t, cyclic2(t, 0.7, 1.1), []float64{2, 0}, []float64{0, 0.6}, []float64{0.25, 0.75})
	c := mustModel(t, cyclic2(t, 1.3, 0.4), []float64{0.5, 3}, []float64{0.2, 0.1}, []float64{0.5, 0.5})
	left, err := Compose(a, b)
	if err != nil {
		t.Fatal(err)
	}
	left, err = Compose(left, c)
	if err != nil {
		t.Fatal(err)
	}
	right, err := Compose(b, c)
	if err != nil {
		t.Fatal(err)
	}
	right, err = Compose(a, right)
	if err != nil {
		t.Fatal(err)
	}
	const tt = 0.6
	rl, err := left.AccumulatedReward(tt, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := right.AccumulatedReward(tt, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j <= 4; j++ {
		if math.Abs(rl.Moments[j]-rr.Moments[j]) > 1e-9*(1+math.Abs(rl.Moments[j])) {
			t.Errorf("associativity broken at moment %d: %.12g vs %.12g", j, rl.Moments[j], rr.Moments[j])
		}
	}
}

func TestMeanIndependentOfVariance(t *testing.T) {
	// The paper's Figure 3 claim: E[B(t)] does not depend on S.
	base := mustModel(t, cyclic2(t, 2, 1), []float64{3, -1}, []float64{0, 0}, []float64{0.5, 0.5})
	noisy := mustModel(t, cyclic2(t, 2, 1), []float64{3, -1}, []float64{5, 9}, []float64{0.5, 0.5})
	for _, tt := range []float64{0.3, 1, 4} {
		r1, err := base.AccumulatedReward(tt, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := noisy.AccumulatedReward(tt, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r1.Moments[1]-r2.Moments[1]) > 1e-9*(1+math.Abs(r1.Moments[1])) {
			t.Errorf("t=%g: mean differs with variance: %g vs %g", tt, r1.Moments[1], r2.Moments[1])
		}
	}
}

func TestSecondMomentIncreasesWithVariance(t *testing.T) {
	prev := -1.0
	for _, s2 := range []float64{0, 1, 10} {
		m := mustModel(t, cyclic2(t, 2, 1), []float64{3, 1}, []float64{s2, s2}, []float64{1, 0})
		res, err := m.AccumulatedReward(0.8, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Moments[2] <= prev {
			t.Errorf("m2 not increasing in sigma2: %g after %g", res.Moments[2], prev)
		}
		prev = res.Moments[2]
	}
}

// Property: Jensen's inequality V2 >= V1^2 per initial state on random
// models (equivalently non-negative variance).
func TestJensenProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := newTestRand(seed)
		n := 2 + rng.Intn(4)
		gen, err := ctmc.NewGeneratorFromRates(n, func(i, j int) float64 {
			return rng.Float64() * 3
		})
		if err != nil {
			return false
		}
		r := make([]float64, n)
		s := make([]float64, n)
		for i := range r {
			r[i] = rng.NormFloat64() * 3
			s[i] = rng.Float64() * 4
		}
		pi, err := ctmc.UnitDistribution(n, 0)
		if err != nil {
			return false
		}
		m, err := New(gen, r, s, pi)
		if err != nil {
			return false
		}
		res, err := m.AccumulatedReward(0.6, 2, nil)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			v1 := res.VectorMoments[1][i]
			v2 := res.VectorMoments[2][i]
			if v2 < v1*v1-1e-9*(1+v1*v1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: shifting all drifts by a constant c shifts B(t) by c*t
// deterministically, so central moments are invariant and the mean moves
// by exactly c*t.
func TestDriftShiftEquivariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := newTestRand(seed)
		c := rng.NormFloat64() * 5
		gen, err := ctmc.NewGeneratorFromRates(3, func(i, j int) float64 { return 1 + rng.Float64() })
		if err != nil {
			return false
		}
		r := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		rs := []float64{r[0] + c, r[1] + c, r[2] + c}
		s := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		pi := []float64{1, 0, 0}
		m1, err := New(gen, r, s, pi)
		if err != nil {
			return false
		}
		m2, err := New(gen, rs, s, pi)
		if err != nil {
			return false
		}
		const tt = 0.5
		res1, err := m1.AccumulatedReward(tt, 4, nil)
		if err != nil {
			return false
		}
		res2, err := m2.AccumulatedReward(tt, 4, nil)
		if err != nil {
			return false
		}
		if math.Abs(res2.Moments[1]-(res1.Moments[1]+c*tt)) > 1e-8*(1+math.Abs(res2.Moments[1])) {
			return false
		}
		cm1, err := res1.CentralMoments()
		if err != nil {
			return false
		}
		cm2, err := res2.CentralMoments()
		if err != nil {
			return false
		}
		for j := 2; j <= 4; j++ {
			scale := 1 + math.Abs(cm1[j])
			if math.Abs(cm1[j]-cm2[j]) > 1e-6*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestErrorBoundHonored(t *testing.T) {
	m := mustModel(t, cyclic2(t, 4, 3), []float64{2, 0.5}, []float64{1, 2}, []float64{1, 0})
	ref, err := m.AccumulatedReward(0.9, 4, &Options{Epsilon: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{1e-4, 1e-7, 1e-10} {
		res, err := m.AccumulatedReward(0.9, 4, &Options{Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j <= 4; j++ {
			// The theorem bounds the shifted-process truncation error by eps.
			if diff := math.Abs(res.Moments[j] - ref.Moments[j]); diff > eps*1.01 {
				t.Errorf("eps=%g j=%d: |diff| = %g exceeds eps", eps, j, diff)
			}
		}
		if res.Stats.ErrorBound > eps {
			t.Errorf("eps=%g: reported bound %g exceeds eps", eps, res.Stats.ErrorBound)
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	m := mustModel(t, cyclic2(t, 4, 3), []float64{2, -0.5}, []float64{1, 2}, []float64{1, 0})
	res, err := m.AccumulatedReward(0.9, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Q != 4 {
		t.Errorf("Q = %g, want 4", st.Q)
	}
	if math.Abs(st.QT-3.6) > 1e-12 {
		t.Errorf("QT = %g, want 3.6", st.QT)
	}
	if st.Shift != -0.5 {
		t.Errorf("Shift = %g, want -0.5", st.Shift)
	}
	if st.G <= 0 || st.MatVecs <= 0 || st.FlopsPerIteration <= 0 {
		t.Errorf("work stats not populated: %+v", st)
	}
	if st.D <= 0 {
		t.Errorf("D = %g", st.D)
	}
}

func TestHigherUniformizationRateSameResult(t *testing.T) {
	m := mustModel(t, cyclic2(t, 4, 3), []float64{2, 0.5}, []float64{1, 2}, []float64{1, 0})
	res1, err := m.AccumulatedReward(0.5, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := m.AccumulatedReward(0.5, 3, &Options{UniformizationRate: 10})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j <= 3; j++ {
		if math.Abs(res1.Moments[j]-res2.Moments[j]) > 1e-8*(1+math.Abs(res1.Moments[j])) {
			t.Errorf("j=%d: q=4 gives %.12g, q=10 gives %.12g", j, res1.Moments[j], res2.Moments[j])
		}
	}
	if res2.Stats.G <= res1.Stats.G {
		t.Error("higher uniformization rate should need more iterations")
	}
}

func TestArgumentErrors(t *testing.T) {
	m := normalModel(t, 1, 1)
	if _, err := m.AccumulatedReward(-1, 2, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("negative t: %v", err)
	}
	if _, err := m.AccumulatedReward(math.NaN(), 2, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("NaN t: %v", err)
	}
	if _, err := m.AccumulatedReward(math.Inf(1), 2, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("Inf t: %v", err)
	}
	if _, err := m.AccumulatedReward(1, -1, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("negative order: %v", err)
	}
	if _, err := m.AccumulatedReward(1, 2, &Options{Epsilon: 2}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("eps > 1: %v", err)
	}
	if _, err := m.AccumulatedReward(1, 2, &Options{Epsilon: -1}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("eps < 0: %v", err)
	}
	if _, err := m.AccumulatedReward(1, 2, &Options{MaxG: -5}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("negative MaxG: %v", err)
	}
	if _, err := m.AccumulatedReward(1, 2, &Options{UniformizationRate: 0.1}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("low uniformization rate: %v", err)
	}
	if _, err := m.AccumulatedReward(1000, 2, &Options{MaxG: 3}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("MaxG exhausted: %v", err)
	}
}

func TestOrderZero(t *testing.T) {
	m := normalModel(t, 1, 1)
	res, err := m.AccumulatedReward(0.5, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Moments[0]-1) > 1e-9 {
		t.Errorf("m0 = %.12g", res.Moments[0])
	}
}

func TestVectorMomentsPerState(t *testing.T) {
	// Asymmetric model: starting state matters for the mean.
	m := mustModel(t, cyclic2(t, 0.5, 0.5), []float64{10, 0}, []float64{0, 0}, []float64{1, 0})
	res, err := m.AccumulatedReward(0.3, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.VectorMoments[1][0] <= res.VectorMoments[1][1] {
		t.Errorf("starting in the high-reward state must yield a larger mean: %v", res.VectorMoments[1])
	}
	// Aggregation consistency: Moments = pi . VectorMoments.
	if math.Abs(res.Moments[1]-res.VectorMoments[1][0]) > 1e-15 {
		t.Error("aggregated mean must equal state-0 mean for pi = e_0")
	}
}
