package core

import (
	"math"
	"testing"

	"somrm/internal/sparse"
)

// TestSolveSweepKernelStats pins the solver-level SIMD plumbing: the
// default solve reports the hardware kernel in Stats.SweepKernel,
// Options.NoSIMD forces the scalar loops (and the stats say so), and the
// two solves agree bit for bit — the dispatch is an optimization, never
// an approximation.
func TestSolveSweepKernelStats(t *testing.T) {
	m := birthDeathModel(t, 96)

	def, err := m.AccumulatedReward(1.5, 3, &Options{SweepWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := sparse.KernelScalar
	if sparse.SIMDAvailable() {
		want = sparse.KernelAVX2
	}
	if def.Stats.SweepKernel != want {
		t.Fatalf("Stats.SweepKernel = %q, want %q (SIMDAvailable=%v)",
			def.Stats.SweepKernel, want, sparse.SIMDAvailable())
	}

	off, err := m.AccumulatedReward(1.5, 3, &Options{SweepWorkers: 1, NoSIMD: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.Stats.SweepKernel != sparse.KernelScalar {
		t.Fatalf("Stats.SweepKernel = %q with NoSIMD, want %q",
			off.Stats.SweepKernel, sparse.KernelScalar)
	}
	for j := range def.Moments {
		if math.Float64bits(def.Moments[j]) != math.Float64bits(off.Moments[j]) {
			t.Fatalf("moment %d: SIMD %x != scalar %x — kill-switch changed the result",
				j, math.Float64bits(def.Moments[j]), math.Float64bits(off.Moments[j]))
		}
	}

	// The process-wide kill-switch reaches solves that never saw an
	// Options.NoSIMD, via the sweep's construction-time env read.
	t.Setenv("SOMRM_NOSIMD", "1")
	env, err := m.AccumulatedReward(1.5, 3, &Options{SweepWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if env.Stats.SweepKernel != sparse.KernelScalar {
		t.Fatalf("Stats.SweepKernel = %q with SOMRM_NOSIMD=1, want %q",
			env.Stats.SweepKernel, sparse.KernelScalar)
	}
	for j := range def.Moments {
		if math.Float64bits(def.Moments[j]) != math.Float64bits(env.Moments[j]) {
			t.Fatalf("moment %d: env kill-switch changed the result", j)
		}
	}
}
