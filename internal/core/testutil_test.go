package core

import (
	"math/rand"
	"testing"

	"somrm/internal/ctmc"
)

// newTestRand returns a deterministic RNG for property tests seeded by the
// quick-check input.
func newTestRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// reducible2 builds a 2-state generator with an absorbing state.
func reducible2(t *testing.T) (*ctmc.Generator, error) {
	t.Helper()
	return ctmc.NewGeneratorFromDense(2, []float64{-1, 1, 0, 0})
}

// reducibleFrozen builds a 2-state generator with no transitions at all.
func reducibleFrozen(t *testing.T) (*ctmc.Generator, error) {
	t.Helper()
	return ctmc.NewGeneratorFromDense(2, make([]float64, 4))
}
