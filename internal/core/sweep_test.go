package core

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"somrm/internal/ctmc"
	"somrm/internal/poisson"
	"somrm/internal/sparse"
)

// largeTridiagModel builds the paper's large-example shape: a tridiagonal
// birth-death chain with constant rates (so the uniformization rate, and
// with it qt and G, stay independent of n), drifts of mixed sign (the
// shift transformation is active) and positive variances.
func largeTridiagModel(tb testing.TB, n int) *Model {
	tb.Helper()
	up := make([]float64, n-1)
	down := make([]float64, n-1)
	for i := range up {
		up[i] = 3
		down[i] = 4
	}
	gen, err := ctmc.NewBirthDeath(up, down)
	if err != nil {
		tb.Fatal(err)
	}
	rates := make([]float64, n)
	vars := make([]float64, n)
	for i := range rates {
		rates[i] = float64(i%7) - 3 // mixed sign: exercises unshift
		vars[i] = 0.5 + float64(i%3)
	}
	pi := make([]float64, n)
	pi[n/2] = 1
	m, err := New(gen, rates, vars, pi)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// TestSweepFusedMatchesReferenceLarge runs the paper-scale shape
// (N = 100,001 tridiagonal states, order 3) through the fused
// persistent-worker kernel — the model is far above the parallel
// threshold, so the automatic policy picks it — and demands bitwise
// agreement with the forced serial reference sweep, across a multi-point
// time grid including t = 0.
func TestSweepFusedMatchesReferenceLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large model")
	}
	m := largeTridiagModel(t, 100_001)
	times := []float64{0, 0.5, 2}
	const order = 3

	ref, err := m.AccumulatedRewardAt(times, order, &Options{SweepWorkers: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := ref[1].Stats.MatrixFormat; got != string(sparse.FormatCSR64) {
		t.Fatalf("reference sweep reported format %q, want csr64", got)
	}
	cases := []struct {
		workers    int
		format     string
		wantFormat string // resolved Stats.MatrixFormat; "" = don't check
	}{
		{0, "", "band"}, // tridiagonal: auto resolves to the band kernel
		{1, "", "band"},
		{3, "", "band"},
		{1, "band", "band"},
		{1, "csr", "csr32"},
		{3, "csr", "csr32"},
		{1, "csr64", "csr64"},
	}
	for _, c := range cases {
		got, err := m.AccumulatedRewardAt(times, order, &Options{SweepWorkers: c.workers, MatrixFormat: c.format})
		if err != nil {
			t.Fatalf("workers %d format %q: %v", c.workers, c.format, err)
		}
		if c.wantFormat != "" && got[1].Stats.MatrixFormat != c.wantFormat {
			t.Fatalf("workers %d format %q: Stats.MatrixFormat = %q, want %q",
				c.workers, c.format, got[1].Stats.MatrixFormat, c.wantFormat)
		}
		for idx := range times {
			if got[idx].Stats.MatVecs != ref[idx].Stats.MatVecs {
				t.Fatalf("workers %d format %q t=%g: matvecs %d != %d", c.workers, c.format, times[idx], got[idx].Stats.MatVecs, ref[idx].Stats.MatVecs)
			}
			for j := 0; j <= order; j++ {
				if math.Float64bits(got[idx].Moments[j]) != math.Float64bits(ref[idx].Moments[j]) {
					t.Fatalf("workers %d format %q t=%g: moment %d = %x, reference %x",
						c.workers, c.format, times[idx], j, math.Float64bits(got[idx].Moments[j]), math.Float64bits(ref[idx].Moments[j]))
				}
				for i := 0; i < m.N(); i += 997 { // sampled: full vectors are 4×100k
					if math.Float64bits(got[idx].VectorMoments[j][i]) != math.Float64bits(ref[idx].VectorMoments[j][i]) {
						t.Fatalf("workers %d format %q t=%g: vm[%d][%d] differs", c.workers, c.format, times[idx], j, i)
					}
				}
			}
		}
	}
}

// TestPreparedPoolBitwise proves the pooled workspace cannot leak state
// between solves: repeated solves through one Prepared — different time
// grids and formats interleaved, so arenas are reused at different
// carvings — must stay bitwise identical to the fresh-model path.
func TestPreparedPoolBitwise(t *testing.T) {
	m := largeTridiagModel(t, 4_000)
	prep, err := Prepare(m)
	if err != nil {
		t.Fatal(err)
	}
	const order = 3
	grids := [][]float64{{0.7}, {0, 0.5, 2}, {3, 0.1}}
	formats := []string{"auto", "band", "csr", "csr64"}
	for rep := 0; rep < 3; rep++ {
		for gi, times := range grids {
			format := formats[(rep+gi)%len(formats)]
			opts := &Options{SweepWorkers: 2, MatrixFormat: format}
			want, err := m.AccumulatedRewardAt(times, order, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := prep.AccumulatedRewardAt(times, order, opts)
			if err != nil {
				t.Fatal(err)
			}
			for idx := range times {
				for j := 0; j <= order; j++ {
					for i := 0; i < m.N(); i++ {
						if math.Float64bits(got[idx].VectorMoments[j][i]) != math.Float64bits(want[idx].VectorMoments[j][i]) {
							t.Fatalf("rep %d grid %d format %s: vm[%d][%d] differs from fresh solve", rep, gi, format, j, i)
						}
					}
				}
			}
		}
	}
}

// TestSweepCancellationHammer races the persistent worker team against
// concurrent cancellation: many solves above the parallel threshold,
// each cancelled at a random point mid-sweep. Run under -race in CI it
// checks the team's barrier discipline; every call must either finish
// with valid moments or return the context's error, and no goroutines
// may linger.
func TestSweepCancellationHammer(t *testing.T) {
	m := largeTridiagModel(t, 20_000)
	// Half the goroutines solve through a shared Prepared: under -race this
	// additionally checks the pooled workspaces and the shared derived
	// matrix representations (band, compact indexes) for races.
	prep, err := Prepare(m)
	if err != nil {
		t.Fatal(err)
	}
	formats := []string{"auto", "band", "csr", "csr64"}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for rep := 0; rep < 4; rep++ {
				opts := &Options{SweepWorkers: 2, MatrixFormat: formats[rng.Intn(len(formats))]}
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(rng.Intn(3000))*time.Microsecond)
				var res []*Result
				var err error
				if g%2 == 0 {
					res, err = prep.AccumulatedRewardAtContext(ctx, []float64{40}, 3, opts)
				} else {
					res, err = m.AccumulatedRewardAtContext(ctx, []float64{40}, 3, opts)
				}
				cancel()
				if err != nil {
					if ctx.Err() == nil {
						t.Errorf("goroutine %d: non-cancellation error: %v", g, err)
					}
					continue
				}
				for j, v := range res[0].Moments {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Errorf("goroutine %d: bad moment %d: %g", g, j, v)
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSweepStats pins the documented Stats semantics: MatVecs and SweepNS
// are whole-sweep figures copied into every Result of a multi-time solve,
// MatVecs matches the recursion's product count, and the sweep consumed
// measurable wall time.
func TestSweepStats(t *testing.T) {
	m := largeTridiagModel(t, 512)
	times := []float64{0.5, 1, 4}
	const order = 3
	res, err := m.AccumulatedRewardAt(times, order, nil)
	if err != nil {
		t.Fatal(err)
	}
	gMax := 0
	for _, r := range res {
		if r.Stats.G > gMax {
			gMax = r.Stats.G
		}
	}
	want := int64(gMax) * int64(order+1) // no impulses in this model
	for idx, r := range res {
		if r.Stats.MatVecs != want {
			t.Errorf("t=%g: MatVecs = %d, want whole-sweep %d", times[idx], r.Stats.MatVecs, want)
		}
		if r.Stats.MatVecs != res[0].Stats.MatVecs || r.Stats.SweepNS != res[0].Stats.SweepNS {
			t.Errorf("t=%g: per-result sweep stats differ within one solve", times[idx])
		}
		if r.Stats.SweepNS <= 0 {
			t.Errorf("t=%g: SweepNS = %d, want > 0", times[idx], r.Stats.SweepNS)
		}
	}

	// Impulse models count the triangular impulse products too.
	mi := impulseTestModel(t)
	ri, err := mi.AccumulatedReward(1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := ri.Stats.G
	wantImp := int64(g) * int64(3+2*3/2)
	if ri.Stats.MatVecs != wantImp {
		t.Errorf("impulse model: MatVecs = %d, want %d", ri.Stats.MatVecs, wantImp)
	}
}

// impulseTestModel is a small two-state chain with impulse rewards on
// both transitions.
func impulseTestModel(tb testing.TB) *Model {
	tb.Helper()
	gen, err := ctmc.NewGeneratorFromRates(2, func(i, j int) float64 {
		if i == 0 && j == 1 {
			return 2
		}
		return 3
	})
	if err != nil {
		tb.Fatal(err)
	}
	m, err := New(gen, []float64{1, -0.5}, []float64{0.2, 0.1}, []float64{1, 0})
	if err != nil {
		tb.Fatal(err)
	}
	ib := sparse.NewBuilder(2, 2)
	if err := ib.Add(0, 1, 0.4); err != nil {
		tb.Fatal(err)
	}
	if err := ib.Add(1, 0, 0.7); err != nil {
		tb.Fatal(err)
	}
	mi, err := m.WithImpulses(ib.Build())
	if err != nil {
		tb.Fatal(err)
	}
	return mi
}

// TestPowTable pins the power table against math.Pow bit for bit over
// moderate, extreme, and special-case bases — the contract that keeps
// unshift's results identical to the old per-entry Pow formula.
func TestPowTable(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	bases := []float64{
		0, math.Copysign(0, -1), 1, -1, 2, -2, 0.5, -0.5,
		1e-80, -1e-80, 1e80, -1e80, 1e300, 1e-300, // fallback territory
		math.Pi, -math.E, 1e-8, 123456.789,
	}
	for i := 0; i < 500; i++ {
		bases = append(bases, (rng.Float64()*2-1)*math.Pow(10, float64(rng.Intn(13)-6)))
	}
	for _, c := range bases {
		for _, n := range []int{0, 1, 2, 3, 5, 8, 12} {
			p := powTable(c, n)
			for m := 0; m <= n; m++ {
				want := math.Pow(c, float64(m))
				if math.Float64bits(p[m]) != math.Float64bits(want) {
					t.Fatalf("powTable(%g, %d)[%d] = %x, math.Pow = %x",
						c, n, m, math.Float64bits(p[m]), math.Float64bits(want))
				}
			}
		}
	}
}

// unshiftOldFormula is the pre-power-table implementation of unshift,
// kept verbatim as the oracle for the bitwise pin below.
func unshiftOldFormula(vm [][]float64, shift, t float64, order int) [][]float64 {
	if shift == 0 {
		return vm
	}
	n := len(vm[0])
	c := shift * t
	out := make([][]float64, order+1)
	binom := make([]float64, order+1)
	for j := 0; j <= order; j++ {
		binom[j] = 1
		for l := j - 1; l > 0; l-- {
			binom[l] += binom[l-1]
		}
		out[j] = make([]float64, n)
		for l := 0; l <= j; l++ {
			coef := binom[l] * math.Pow(c, float64(j-l))
			if coef == 0 {
				continue
			}
			src := vm[l]
			dst := out[j]
			for i := 0; i < n; i++ {
				dst[i] += coef * src[i]
			}
		}
	}
	return out
}

// TestUnshiftMatchesOldFormula demands bitwise identity between the
// table-driven unshift and the old per-entry math.Pow formula, across
// random moments and shift magnitudes from subnormal-producing to
// overflowing.
func TestUnshiftMatchesOldFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	shifts := []float64{0, -0.5, -3, -1e-90, -1e90, -1e-300}
	for i := 0; i < 40; i++ {
		shifts = append(shifts, -rng.Float64()*math.Pow(10, float64(rng.Intn(9)-4)))
	}
	for _, shift := range shifts {
		for _, order := range []int{0, 1, 3, 6} {
			n := 1 + rng.Intn(8)
			vm := make([][]float64, order+1)
			for j := range vm {
				vm[j] = make([]float64, n)
				for i := range vm[j] {
					vm[j][i] = rng.NormFloat64() * 10
				}
			}
			tt := 0.1 + rng.Float64()*5
			got := unshift(vm, shift, tt, order)
			want := unshiftOldFormula(vm, shift, tt, order)
			for j := range want {
				for i := range want[j] {
					if math.Float64bits(got[j][i]) != math.Float64bits(want[j][i]) {
						t.Fatalf("shift=%g t=%g order=%d: out[%d][%d] = %x, old formula %x",
							shift, tt, order, j, i, math.Float64bits(got[j][i]), math.Float64bits(want[j][i]))
					}
				}
			}
		}
	}
}

// truncationPointNoMemo is the pre-memoization search, kept verbatim: the
// oracle proving the memoized version returns an unchanged G across the
// representative parameter grid.
func truncationPointNoMemo(order int, d, qt, eps float64, impulses bool, maxG int) (int, float64, error) {
	logEps := math.Log(eps)
	logBoundAt := func(g, j int) float64 {
		var logFactor float64
		if impulses {
			logFactor = float64(j) * (math.Log(4*d) + math.Log(qt))
		} else {
			lg, _ := math.Lgamma(float64(j) + 1)
			logFactor = math.Ln2 + float64(j)*math.Log(d) + lg + float64(j)*math.Log(qt)
		}
		return logFactor + poisson.LogTailProb(g-j, qt)
	}
	logBound := func(g int) float64 {
		worst := math.Inf(-1)
		for j := 0; j <= order; j++ {
			if b := logBoundAt(g, j); b > worst {
				worst = b
			}
		}
		return worst
	}
	minG := 0
	if impulses {
		minG = 2 * order
	}
	if logBound(minG) < logEps {
		return minG, math.Exp(logBound(minG)), nil
	}
	hi := minG + 1
	step := 1 + int(math.Sqrt(qt))
	for logBound(hi) >= logEps {
		hi += step
		step *= 2
		if hi > maxG {
			return 0, 0, ErrBadArgument
		}
	}
	lo := minG
	for lo < hi {
		mid := (lo + hi) / 2
		if logBound(mid) < logEps {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi, math.Exp(logBound(hi)), nil
}

// TestTruncationPointMemoUnchanged checks G (and the reported bound) over
// a representative (qt, order, eps, impulses) grid, including the paper's
// qt = 40,000 large example.
func TestTruncationPointMemoUnchanged(t *testing.T) {
	for _, qt := range []float64{0.01, 0.5, 5, 50, 500, 5000, 40_000} {
		for order := 0; order <= 5; order++ {
			for _, eps := range []float64{1e-6, 1e-9, 1e-12} {
				for _, impulses := range []bool{false, true} {
					for _, d := range []float64{0.25, 1.5} {
						g, bound, err := truncationPoint(order, d, qt, eps, impulses, defaultMaxG)
						if err != nil {
							t.Fatalf("qt=%g order=%d eps=%g imp=%v: %v", qt, order, eps, impulses, err)
						}
						gRef, boundRef, err := truncationPointNoMemo(order, d, qt, eps, impulses, defaultMaxG)
						if err != nil {
							t.Fatalf("reference qt=%g order=%d eps=%g imp=%v: %v", qt, order, eps, impulses, err)
						}
						if g != gRef || math.Float64bits(bound) != math.Float64bits(boundRef) {
							t.Errorf("qt=%g order=%d eps=%g imp=%v d=%g: (G=%d, bound=%g) != unmemoized (G=%d, bound=%g)",
								qt, order, eps, impulses, d, g, bound, gRef, boundRef)
						}
					}
				}
			}
		}
	}
}
