package core

import (
	"fmt"
	"math"

	"somrm/internal/momentbounds"
)

// CompletionBound bounds the completion-time distribution
// P(T(x) <= t), where T(x) = inf{u : B(u) >= x} is the first time the
// accumulated reward reaches the work requirement x.
type CompletionBound struct {
	// Lower and Upper bound P(T(x) <= t). For second-order models only the
	// Lower bound is sharp from this construction (see Exact); Upper is
	// then reported as 1.
	Lower, Upper float64
	// Exact reports whether {T(x) <= t} = {B(t) >= x} holds, i.e. the
	// reward path is monotone non-decreasing (first-order model with
	// non-negative drifts and impulses). In that case both bounds are the
	// sharp moment bounds of the event probability.
	Exact bool
}

// CompletionProbability bounds P(T(x) <= t) using numMoments moments of
// B(t) and the Chebyshev-Markov inequality machinery:
//
//	P(T(x) <= t) >= P(B(t) >= x)
//
// always (if the reward reached x it may have dropped back, but it did hit
// it), with equality when the reward path is monotone. This is the
// second-order analogue of the classical completion-time duality of
// first-order preemptive-resume reward models; the non-monotonicity of
// Brownian accumulation (section 3 of the paper) is exactly what breaks
// the equality.
func (m *Model) CompletionProbability(x, t float64, numMoments int, opts *Options) (CompletionBound, error) {
	if numMoments < 2 {
		return CompletionBound{}, fmt.Errorf("%w: need at least 2 moments, got %d", ErrBadArgument, numMoments)
	}
	if math.IsNaN(x) {
		return CompletionBound{}, fmt.Errorf("%w: level is NaN", ErrBadArgument)
	}
	res, err := m.AccumulatedReward(t, numMoments, opts)
	if err != nil {
		return CompletionBound{}, err
	}
	est, err := momentbounds.New(res.Moments)
	if err != nil {
		return CompletionBound{}, fmt.Errorf("core: completion bounds: %w", err)
	}
	tail, err := est.TailBounds(x)
	if err != nil {
		return CompletionBound{}, fmt.Errorf("core: completion bounds: %w", err)
	}

	out := CompletionBound{Lower: tail.Lower, Upper: 1, Exact: m.isMonotone()}
	if out.Exact {
		out.Upper = tail.Upper
	}
	return out, nil
}

// isMonotone reports whether every reward path is non-decreasing: zero
// variances, non-negative drifts (impulses are non-negative by
// construction).
func (m *Model) isMonotone() bool {
	for i := range m.vars {
		if m.vars[i] != 0 || m.rates[i] < 0 {
			return false
		}
	}
	return true
}
