package core

import (
	"errors"
	"math"
	"testing"
)

// Two-state closed form: the integrated (first-order) reward has
// asymptotic variance rate 2 a b (r0-r1)^2 / (a+b)^3.
func TestLongRunTwoStateClosedForm(t *testing.T) {
	a, b := 2.0, 3.0
	r0, r1 := 5.0, 1.0
	s0, s1 := 0.7, 1.3
	m := mustModel(t, cyclic2(t, a, b), []float64{r0, r1}, []float64{s0, s1}, []float64{1, 0})
	asym, err := m.LongRun()
	if err != nil {
		t.Fatal(err)
	}
	pi0 := b / (a + b)
	pi1 := a / (a + b)
	wantMean := pi0*r0 + pi1*r1
	if math.Abs(asym.MeanRate-wantMean) > 1e-12 {
		t.Errorf("MeanRate = %.14g, want %.14g", asym.MeanRate, wantMean)
	}
	wantVar := pi0*s0 + pi1*s1 + 2*a*b*(r0-r1)*(r0-r1)/math.Pow(a+b, 3)
	if math.Abs(asym.VarianceRate-wantVar) > 1e-10*(1+wantVar) {
		t.Errorf("VarianceRate = %.12g, want %.12g", asym.VarianceRate, wantVar)
	}
	if math.Abs(asym.Stationary[0]-pi0) > 1e-12 {
		t.Errorf("Stationary = %v", asym.Stationary)
	}
}

// Var[B(t)]/t must converge to the asymptotic variance rate.
func TestLongRunMatchesTransientLimit(t *testing.T) {
	m := mustModel(t, cyclic2(t, 1.5, 0.8), []float64{4, -2}, []float64{1, 2.5}, []float64{1, 0})
	asym, err := m.LongRun()
	if err != nil {
		t.Fatal(err)
	}
	const tt = 400.0
	res, err := m.AccumulatedReward(tt, 2, &Options{Epsilon: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.Variance()
	if err != nil {
		t.Fatal(err)
	}
	rate := v / tt
	// The transient correction is O(1/t); at t=400 expect <1% deviation.
	if math.Abs(rate-asym.VarianceRate)/asym.VarianceRate > 0.01 {
		t.Errorf("Var/t at t=%g is %.6g, asymptotic %.6g", tt, rate, asym.VarianceRate)
	}
	// The transient mean carries a constant offset (p(0)-pi)Dr, so compare
	// the *increment* of the mean over a late interval against the rate.
	res2, err := m.AccumulatedReward(tt/2, 1, &Options{Epsilon: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	mean, err := res.Mean()
	if err != nil {
		t.Fatal(err)
	}
	mean2, err := res2.Mean()
	if err != nil {
		t.Fatal(err)
	}
	incRate := (mean - mean2) / (tt / 2)
	if math.Abs(incRate-asym.MeanRate)/math.Abs(asym.MeanRate) > 1e-6 {
		t.Errorf("late mean increment rate %.8g vs asymptotic %.8g", incRate, asym.MeanRate)
	}
}

func TestLongRunConstantRatesPureNoise(t *testing.T) {
	// Equal drifts: the structure term vanishes, VarianceRate = pi.S.h.
	m := mustModel(t, cyclic2(t, 2, 3), []float64{7, 7}, []float64{0.5, 2}, []float64{1, 0})
	asym, err := m.LongRun()
	if err != nil {
		t.Fatal(err)
	}
	want := (3*0.5 + 2*2.0) / 5
	if math.Abs(asym.VarianceRate-want) > 1e-12 {
		t.Errorf("VarianceRate = %.14g, want %.14g", asym.VarianceRate, want)
	}
	if math.Abs(asym.MeanRate-7) > 1e-12 {
		t.Errorf("MeanRate = %g", asym.MeanRate)
	}
}

func TestLongRunErrors(t *testing.T) {
	m := mustModel(t, cyclic2(t, 1, 2), []float64{1, 2}, []float64{0, 0}, []float64{1, 0})
	mi, err := m.WithImpulses(impulseMatrix(t, 2, [3]float64{0, 1, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mi.LongRun(); !errors.Is(err, ErrBadArgument) {
		t.Errorf("impulses: %v", err)
	}
	// Reducible chain.
	gen, err := reducible2(t)
	if err != nil {
		t.Fatal(err)
	}
	red := mustModel(t, gen, []float64{1, 2}, []float64{0, 0}, []float64{1, 0})
	if _, err := red.LongRun(); err == nil {
		t.Error("reducible chain accepted")
	}
}
