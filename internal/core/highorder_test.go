package core

import (
	"math"
	"testing"

	"somrm/internal/brownian"
	"somrm/internal/momentbounds"
)

// The figures 5-7 pipeline needs 23 accurate moments. Verify the solver's
// numerical stability at that depth against the normal closed form (the
// paper's stability argument: only non-negative substochastic products,
// no cancellation).
func TestHighOrderMomentsStable(t *testing.T) {
	const order = 23
	m := normalModel(t, 1.5, 2.0)
	const tt = 0.7
	res, err := m.AccumulatedReward(tt, order, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j <= order; j++ {
		want, err := brownian.NormalRawMoment(j, 1.5*tt, 2.0*tt)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(res.Moments[j]-want) / (1 + math.Abs(want))
		if rel > 1e-8 {
			t.Errorf("order %d: rel error %g (got %.12g, want %.12g)", j, rel, res.Moments[j], want)
		}
	}
	// The 23 moments are a usable input to the bound machinery.
	est, err := momentbounds.New(res.Moments)
	if err != nil {
		t.Fatal(err)
	}
	if est.MaxNodes() < 8 {
		t.Errorf("usable depth %d from 23 accurate moments", est.MaxNodes())
	}
}

// Negative-drift high-order: the unshift binomial must not destroy
// accuracy (it mixes signs, the one place cancellation can re-enter).
func TestHighOrderMomentsWithShift(t *testing.T) {
	const order = 15
	m := normalModel(t, -2.0, 1.0)
	const tt = 0.5
	res, err := m.AccumulatedReward(tt, order, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j <= order; j++ {
		want, err := brownian.NormalRawMoment(j, -2.0*tt, 1.0*tt)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(res.Moments[j]-want) / (1 + math.Abs(want))
		if rel > 1e-7 {
			t.Errorf("order %d: rel error %g", j, rel)
		}
	}
}
