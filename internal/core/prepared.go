package core

import (
	"context"
	"fmt"
	"sync"

	"somrm/internal/sparse"
)

// Prepared bundles a Model with the reusable precomputation of the
// randomization solver: the drift shift, the scaling constant d, and the
// uniformized matrices Q', R', S' of Theorem 3. Solving through a Prepared
// skips that setup, which is what lets a server amortize model preparation
// across repeated solve and batch requests against the same model.
//
// Impulse matrices additionally depend on the moment order; they are built
// lazily for the highest order seen so far and cached. A Prepared is safe
// for concurrent use.
type Prepared struct {
	m *Model
	u *uniformization // nil when the chain has no transitions (q == 0)

	mu  sync.Mutex
	imp []*sparse.CSR // impulse matrices for orders 1..len(imp), grown on demand

	// ws pools the per-solve scratch arenas (sweep state vectors,
	// accumulators, interleaved kernel buffers — tens of MB at the paper's
	// sizes), so repeated server solves against the same model stop
	// allocating them. Only non-escaping scratch lives in the arena; see
	// solveAt.
	ws sync.Pool
}

// solveWorkspace is one solve's scratch arena. A workspace is used by at
// most one solve at a time; Prepared hands them out from a sync.Pool.
type solveWorkspace struct {
	buf []float64
}

// ensure returns an arena of exactly the given word count, growing the
// backing buffer when needed. Contents are unspecified — callers clear
// what must start at zero.
func (w *solveWorkspace) ensure(words int) []float64 {
	if cap(w.buf) < words {
		w.buf = make([]float64, words)
	}
	return w.buf[:words]
}

func (p *Prepared) getWorkspace() *solveWorkspace {
	if v := p.ws.Get(); v != nil {
		return v.(*solveWorkspace)
	}
	return &solveWorkspace{}
}

func (p *Prepared) putWorkspace(w *solveWorkspace) { p.ws.Put(w) }

// Prepare validates nothing new — the model is already validated — but
// performs the solver's model-only setup once so subsequent solves skip it.
func Prepare(m *Model) (*Prepared, error) {
	if m == nil {
		return nil, fmt.Errorf("%w: nil model", ErrBadModel)
	}
	q := m.maxExitRate()
	if q == 0 {
		return &Prepared{m: m}, nil
	}
	u, err := m.uniformize(q)
	if err != nil {
		return nil, err
	}
	return &Prepared{m: m, u: u}, nil
}

// Model returns the underlying model (shared; treat as read-only).
func (p *Prepared) Model() *Model { return p.m }

// impulseMatrices returns the cached scaled impulse matrices for orders
// 1..order, building and growing the cache under the lock when a higher
// order is requested than any seen before.
func (p *Prepared) impulseMatrices(order int) ([]*sparse.CSR, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.imp) < order {
		imp, err := p.m.impulseMatrices(p.u.q, p.u.d, order)
		if err != nil {
			return nil, err
		}
		p.imp = imp
	}
	return p.imp[:order], nil
}

// AccumulatedRewardAt is Model.AccumulatedRewardAt against the prepared
// matrices.
func (p *Prepared) AccumulatedRewardAt(times []float64, order int, opts *Options) ([]*Result, error) {
	return p.AccumulatedRewardAtContext(context.Background(), times, order, opts)
}

// AccumulatedRewardAtContext is Model.AccumulatedRewardAtContext against
// the prepared matrices: identical results, minus the per-call setup. A
// custom Options.UniformizationRate different from the prepared rate falls
// back to the model path (the prepared matrices assume the automatic rate).
func (p *Prepared) AccumulatedRewardAtContext(ctx context.Context, times []float64, order int, opts *Options) ([]*Result, error) {
	cfg := opts.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cfg.UniformizationRate != 0 && (p.u == nil || cfg.UniformizationRate != p.u.q) {
		return p.m.AccumulatedRewardAtContext(ctx, times, order, opts)
	}
	if err := validateSolveArgs(times, order, cfg); err != nil {
		return nil, err
	}
	if p.u == nil {
		return p.m.frozenResults(times, order)
	}
	var imp []*sparse.CSR
	if p.m.impulses != nil && order >= 1 && p.u.d > 0 {
		var err error
		imp, err = p.impulseMatrices(order)
		if err != nil {
			return nil, err
		}
	}
	ws := p.getWorkspace()
	defer p.putWorkspace(ws)
	return p.m.solveAt(ctx, times, order, cfg, p.u, imp, ws)
}

// AccumulatedReward is Model.AccumulatedReward against the prepared
// matrices.
func (p *Prepared) AccumulatedReward(t float64, order int, opts *Options) (*Result, error) {
	return p.AccumulatedRewardContext(context.Background(), t, order, opts)
}

// AccumulatedRewardContext is Model.AccumulatedRewardContext against the
// prepared matrices; results are bitwise identical to the unprepared path.
func (p *Prepared) AccumulatedRewardContext(ctx context.Context, t float64, order int, opts *Options) (*Result, error) {
	results, err := p.AccumulatedRewardAtContext(ctx, []float64{t}, order, opts)
	if err != nil {
		return nil, err
	}
	return results[0], nil
}
