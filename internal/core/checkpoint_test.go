package core

import (
	"context"
	"errors"
	"math"
	"testing"
)

// pollCountdownCtx reports cancellation after Err has been polled a fixed
// number of times, so tests can interrupt a solve at an exact iteration
// barrier. The solver polls once on entry and then once per CancelStride
// iterations.
type pollCountdownCtx struct {
	context.Context
	polls int
}

func (c *pollCountdownCtx) Err() error {
	if c.polls <= 0 {
		return context.DeadlineExceeded
	}
	c.polls--
	return nil
}

// interruptSolve runs a checkpoint-enabled solve that is cancelled after
// the given number of context polls and returns the captured checkpoint.
func interruptSolve(t *testing.T, m *Model, times []float64, order, polls int, opts Options) *Checkpoint {
	t.Helper()
	opts.Checkpoint = true
	opts.CancelStride = 1
	ctx := &pollCountdownCtx{Context: context.Background(), polls: polls}
	_, err := m.AccumulatedRewardAtContext(ctx, times, order, &opts)
	var ir *Interrupted
	if !errors.As(err, &ir) {
		t.Fatalf("polls=%d: want *Interrupted, got %v", polls, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Interrupted must unwrap to the context error, got %v", err)
	}
	return ir.Checkpoint
}

func sameResults(t *testing.T, label string, got, want []*Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for idx := range want {
		for j := range want[idx].VectorMoments {
			for i := range want[idx].VectorMoments[j] {
				g := want[idx].VectorMoments[j][i]
				w := got[idx].VectorMoments[j][i]
				if math.Float64bits(g) != math.Float64bits(w) {
					t.Fatalf("%s: result %d vm[%d][%d] = %x, want %x",
						label, idx, j, i, math.Float64bits(w), math.Float64bits(g))
				}
			}
		}
		for j := range want[idx].Moments {
			if math.Float64bits(got[idx].Moments[j]) != math.Float64bits(want[idx].Moments[j]) {
				t.Fatalf("%s: result %d moment %d mismatch", label, idx, j)
			}
		}
	}
}

// TestSolveResumeBitwise is the solver-level resume gate: a solve
// interrupted at the first, a middle, and the last iteration barrier and
// resumed from its (serialized and re-decoded) checkpoint must produce
// moments bitwise identical to the uninterrupted solve — across the
// reference kernel and fused worker teams.
func TestSolveResumeBitwise(t *testing.T) {
	m := heavyModel(t)
	times := []float64{0, 0.05, 0.12}
	const order = 3
	for _, workers := range []int{-1, 1, 3} {
		opts := Options{SweepWorkers: workers}
		full, err := m.AccumulatedRewardAt(times, order, &opts)
		if err != nil {
			t.Fatal(err)
		}
		g := full[len(full)-1].Stats.G
		if g < 3 {
			t.Fatalf("fixture too small: G = %d", g)
		}
		// polls=1 interrupts before iteration 1 (completed=0); polls=g
		// interrupts before the final iteration (completed=g-1).
		for _, polls := range []int{1, g/2 + 1, g} {
			cp := interruptSolve(t, m, times, order, polls, opts)
			if cp.Completed != polls-1 {
				t.Fatalf("workers=%d polls=%d: completed=%d", workers, polls, cp.Completed)
			}
			if cp.GMax != g {
				t.Fatalf("workers=%d: checkpoint GMax=%d, want %d", workers, cp.GMax, g)
			}
			decoded, err := DecodeCheckpoint(cp.Encode())
			if err != nil {
				t.Fatalf("round trip: %v", err)
			}
			ropts := Options{SweepWorkers: workers, Resume: decoded}
			resumed, err := m.AccumulatedRewardAt(times, order, &ropts)
			if err != nil {
				t.Fatalf("resume workers=%d polls=%d: %v", workers, polls, err)
			}
			sameResults(t, "resume", resumed, full)
			if resumed[1].Stats.MatVecs != full[1].Stats.MatVecs {
				t.Fatalf("resumed MatVecs %d, want %d", resumed[1].Stats.MatVecs, full[1].Stats.MatVecs)
			}
		}
	}
}

// TestCheckpointCodec pins the snapshot serialization: decode inverts
// encode exactly, and corruption anywhere — header, state bits, digest,
// truncation — is rejected with ErrCheckpoint.
func TestCheckpointCodec(t *testing.T) {
	m := heavyModel(t)
	cp := interruptSolve(t, m, []float64{0.08}, 2, 5, Options{})
	blob := cp.Encode()
	got, err := DecodeCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Order != cp.Order || got.N != cp.N || got.Completed != cp.Completed ||
		got.GMax != cp.GMax || got.Workers != cp.Workers || got.Format != cp.Format {
		t.Fatalf("decoded header %+v != %+v", got, cp)
	}
	same := func(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }
	if !same(got.Q, cp.Q) || !same(got.D, cp.D) || !same(got.Shift, cp.Shift) || !same(got.Epsilon, cp.Epsilon) {
		t.Fatal("decoded uniformization params differ")
	}
	for j := range cp.State {
		for i := range cp.State[j] {
			if !same(got.State[j][i], cp.State[j][i]) {
				t.Fatalf("state[%d][%d] differs", j, i)
			}
		}
	}
	for idx := range cp.Acc {
		if (got.Acc[idx] == nil) != (cp.Acc[idx] == nil) {
			t.Fatalf("acc presence %d differs", idx)
		}
		for j := range cp.Acc[idx] {
			for i := range cp.Acc[idx][j] {
				if !same(got.Acc[idx][j][i], cp.Acc[idx][j][i]) {
					t.Fatalf("acc[%d][%d][%d] differs", idx, j, i)
				}
			}
		}
	}

	for name, mutate := range map[string]func([]byte) []byte{
		"flip magic":    func(b []byte) []byte { b[0] ^= 0xff; return b },
		"flip header":   func(b []byte) []byte { b[10] ^= 0x01; return b },
		"flip state":    func(b []byte) []byte { b[len(b)-40] ^= 0x01; return b },
		"flip digest":   func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b },
		"truncate tail": func(b []byte) []byte { return b[:len(b)-7] },
		"truncate deep": func(b []byte) []byte { return b[:20] },
		"empty":         func(b []byte) []byte { return nil },
	} {
		bad := mutate(append([]byte(nil), blob...))
		if _, err := DecodeCheckpoint(bad); !errors.Is(err, ErrCheckpoint) {
			t.Errorf("%s: want ErrCheckpoint, got %v", name, err)
		}
	}
}

// TestCheckpointResumeMismatch pins the resume validation: a checkpoint
// presented against a request with different parameters — or against a
// different model — is rejected with ErrCheckpoint, never silently solved.
func TestCheckpointResumeMismatch(t *testing.T) {
	m := heavyModel(t)
	times := []float64{0.08}
	cp := interruptSolve(t, m, times, 2, 5, Options{})

	cases := []struct {
		name  string
		times []float64
		order int
		opts  Options
	}{
		{"different time", []float64{0.09}, 2, Options{Resume: cp}},
		{"different order", times, 3, Options{Resume: cp}},
		{"different epsilon", times, 2, Options{Epsilon: 1e-6, Resume: cp}},
	}
	for _, c := range cases {
		if _, err := m.AccumulatedRewardAt(c.times, c.order, &c.opts); !errors.Is(err, ErrCheckpoint) {
			t.Errorf("%s: want ErrCheckpoint, got %v", c.name, err)
		}
	}

	other := onOffSource(t, 1, 2, 1.5, 0.5)
	if _, err := other.AccumulatedRewardAt(times, 2, &Options{Resume: cp}); !errors.Is(err, ErrCheckpoint) {
		t.Errorf("different model: want ErrCheckpoint, got %v", err)
	}

	// Tampered Completed beyond the sweep must be rejected too.
	bad := *cp
	bad.Completed = bad.GMax
	if _, err := m.AccumulatedRewardAt(times, 2, &Options{Resume: &bad}); !errors.Is(err, ErrCheckpoint) {
		t.Errorf("completed=GMax: want ErrCheckpoint, got %v", err)
	}
}
