package core

import (
	"errors"
	"math"
	"testing"

	"somrm/internal/ctmc"
)

// onOffSource builds a single ON-OFF source: OFF (state 0, no reward),
// ON (state 1, drift r, variance s2).
func onOffSource(t *testing.T, alpha, beta, r, s2 float64) *Model {
	t.Helper()
	gen, err := ctmc.NewGeneratorFromDense(2, []float64{-beta, beta, alpha, -alpha})
	if err != nil {
		t.Fatal(err)
	}
	return mustModel(t, gen, []float64{0, r}, []float64{0, s2}, []float64{1, 0})
}

func TestComposeMomentsAreBinomialConvolution(t *testing.T) {
	a := mustModel(t, cyclic2(t, 2, 3), []float64{1, -0.5}, []float64{0.4, 1}, []float64{1, 0})
	b := mustModel(t, cyclic2(t, 0.7, 1.1), []float64{2, 0}, []float64{0, 0.6}, []float64{0.25, 0.75})
	joint, err := Compose(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if joint.N() != 4 {
		t.Fatalf("joint states = %d", joint.N())
	}
	const tt = 0.8
	const order = 5
	ra, err := a.AccumulatedReward(tt, order, nil)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.AccumulatedReward(tt, order, nil)
	if err != nil {
		t.Fatal(err)
	}
	rj, err := joint.AccumulatedReward(tt, order, nil)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n <= order; n++ {
		var want float64
		for k := 0; k <= n; k++ {
			want += binomCoef(n, k) * ra.Moments[k] * rb.Moments[n-k]
		}
		got := rj.Moments[n]
		if math.Abs(got-want) > 1e-8*(1+math.Abs(want)) {
			t.Errorf("joint m%d = %.12g, convolution oracle %.12g", n, got, want)
		}
	}
}

// The ON-OFF multiplexer of the paper equals the composition of N
// independent single-source models plus the constant capacity drift C.
func TestComposeReproducesOnOffModel(t *testing.T) {
	const (
		alpha, beta = 4.0, 3.0
		r, s2       = 1.0, 2.0
		nSrc        = 3
		capacity    = 10.0
		tt          = 0.4
	)
	// Composition of 3 sources, counting transmitted data.
	src := onOffSource(t, alpha, beta, r, s2)
	joint, err := ComposeAll(src, src, src)
	if err != nil {
		t.Fatal(err)
	}
	rj, err := joint.AccumulatedReward(tt, 3, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Paper-style aggregated model: state = number of ON sources, reward
	// = C - (transmitted data rate); so B_onoff = C*t - B_joint.
	up := make([]float64, nSrc)
	down := make([]float64, nSrc)
	for i := 0; i < nSrc; i++ {
		up[i] = float64(nSrc-i) * beta
		down[i] = float64(i+1) * alpha
	}
	gen, err := ctmc.NewBirthDeath(up, down)
	if err != nil {
		t.Fatal(err)
	}
	rates := make([]float64, nSrc+1)
	vars := make([]float64, nSrc+1)
	for i := 0; i <= nSrc; i++ {
		rates[i] = capacity - float64(i)*r
		vars[i] = float64(i) * s2
	}
	pi, err := ctmc.UnitDistribution(nSrc+1, 0)
	if err != nil {
		t.Fatal(err)
	}
	agg := mustModel(t, gen, rates, vars, pi)
	ragg, err := agg.AccumulatedReward(tt, 3, nil)
	if err != nil {
		t.Fatal(err)
	}

	// E[(C t - B_joint)^n] via binomial expansion must match the
	// aggregated model's moments.
	ct := capacity * tt
	for n := 0; n <= 3; n++ {
		var want float64
		for k := 0; k <= n; k++ {
			sign := 1.0
			if k%2 == 1 {
				sign = -1
			}
			want += sign * binomCoef(n, k) * math.Pow(ct, float64(n-k)) * rj.Moments[k]
		}
		if math.Abs(ragg.Moments[n]-want) > 1e-7*(1+math.Abs(want)) {
			t.Errorf("aggregated m%d = %.12g, composed oracle %.12g", n, ragg.Moments[n], want)
		}
	}
}

func TestComposeErrors(t *testing.T) {
	m := mustModel(t, cyclic2(t, 1, 1), []float64{1, 2}, []float64{0, 0}, []float64{1, 0})
	if _, err := Compose(nil, m); !errors.Is(err, ErrBadModel) {
		t.Errorf("nil a: %v", err)
	}
	if _, err := Compose(m, nil); !errors.Is(err, ErrBadModel) {
		t.Errorf("nil b: %v", err)
	}
	mi, err := m.WithImpulses(impulseMatrix(t, 2, [3]float64{0, 1, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compose(mi, m); !errors.Is(err, ErrBadModel) {
		t.Errorf("impulse component: %v", err)
	}
	if _, err := ComposeAll(); !errors.Is(err, ErrBadModel) {
		t.Errorf("empty compose: %v", err)
	}
	if _, err := ComposeAll(nil); !errors.Is(err, ErrBadModel) {
		t.Errorf("nil single: %v", err)
	}
}

func TestComposeGeneratorStructure(t *testing.T) {
	a := mustModel(t, cyclic2(t, 2, 3), []float64{1, 2}, []float64{0, 0}, []float64{1, 0})
	b := mustModel(t, cyclic2(t, 5, 7), []float64{10, 20}, []float64{0, 0}, []float64{0, 1})
	joint, err := Compose(a, b)
	if err != nil {
		t.Fatal(err)
	}
	gen := joint.Generator()
	// (0,0) -> (1,0) at rate 2 (A moves) and (0,0) -> (0,1) at rate 5.
	if got := gen.At(0, 2); got != 2 {
		t.Errorf("A-move rate = %g, want 2", got)
	}
	if got := gen.At(0, 1); got != 5 {
		t.Errorf("B-move rate = %g, want 5", got)
	}
	// No simultaneous move (0,0) -> (1,1).
	if got := gen.At(0, 3); got != 0 {
		t.Errorf("simultaneous move rate = %g", got)
	}
	// Joint drift/variance are sums; initial is the product.
	if joint.Rates()[3] != 22 {
		t.Errorf("joint rate = %g, want 22", joint.Rates()[3])
	}
	if joint.Initial()[1] != 1 {
		t.Errorf("joint initial = %v", joint.Initial())
	}
}
