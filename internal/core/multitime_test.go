package core

import (
	"errors"
	"math"
	"testing"
)

func TestAccumulatedRewardAtMatchesPointwise(t *testing.T) {
	m := mustModel(t, cyclic2(t, 2, 5), []float64{-1, 3}, []float64{0.5, 2}, []float64{0.6, 0.4})
	times := []float64{0, 0.1, 0.5, 0.5, 1.2} // includes t=0 and a duplicate
	batch, err := m.AccumulatedRewardAt(times, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(times) {
		t.Fatalf("results = %d", len(batch))
	}
	for idx, tt := range times {
		single, err := m.AccumulatedReward(tt, 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j <= 4; j++ {
			got := batch[idx].Moments[j]
			want := single.Moments[j]
			if math.Abs(got-want) > 1e-11*(1+math.Abs(want)) {
				t.Errorf("t=%g j=%d: batch %.14g vs single %.14g", tt, j, got, want)
			}
		}
		if batch[idx].T != tt {
			t.Errorf("result %d has T=%g, want %g", idx, batch[idx].T, tt)
		}
	}
}

func TestAccumulatedRewardAtSharedWorkIsCheaper(t *testing.T) {
	m := mustModel(t, cyclic2(t, 4, 3), []float64{2, 0.5}, []float64{1, 2}, []float64{1, 0})
	times := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	batch, err := m.AccumulatedRewardAt(times, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The shared sweep does (max G) iterations total; pointwise would do
	// sum of per-time G. All results report the same shared MatVecs count.
	shared := batch[0].Stats.MatVecs
	var pointwise int64
	for _, tt := range times {
		res, err := m.AccumulatedReward(tt, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		pointwise += res.Stats.MatVecs
	}
	if shared >= pointwise {
		t.Errorf("shared sweep used %d matvecs, pointwise %d", shared, pointwise)
	}
	// Per-time G values match the single-point solver's.
	for idx, tt := range times {
		single, err := m.AccumulatedReward(tt, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		if batch[idx].Stats.G != single.Stats.G {
			t.Errorf("t=%g: batch G=%d vs single G=%d", tt, batch[idx].Stats.G, single.Stats.G)
		}
	}
}

func TestAccumulatedRewardAtWithImpulses(t *testing.T) {
	base := mustModel(t, cyclic2(t, 2, 3), []float64{1, 0.5}, []float64{0.2, 0.4}, []float64{1, 0})
	m, err := base.WithImpulses(impulseMatrix(t, 2, [3]float64{0, 1, 0.7}))
	if err != nil {
		t.Fatal(err)
	}
	times := []float64{0.3, 0.9}
	batch, err := m.AccumulatedRewardAt(times, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for idx, tt := range times {
		single, err := m.AccumulatedReward(tt, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j <= 3; j++ {
			if math.Abs(batch[idx].Moments[j]-single.Moments[j]) > 1e-10*(1+math.Abs(single.Moments[j])) {
				t.Errorf("impulse t=%g j=%d mismatch", tt, j)
			}
		}
	}
}

func TestAccumulatedRewardAtFrozenChain(t *testing.T) {
	gen, err := reducibleFrozen(t)
	if err != nil {
		t.Fatal(err)
	}
	m := mustModel(t, gen, []float64{2, 1}, []float64{1, 0}, []float64{0.5, 0.5})
	batch, err := m.AccumulatedRewardAt([]float64{0.5, 1}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	single, err := m.AccumulatedReward(1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(batch[1].Moments[2]-single.Moments[2]) > 1e-14 {
		t.Error("frozen-chain fallback mismatch")
	}
}

func TestAccumulatedRewardAtErrors(t *testing.T) {
	m := mustModel(t, cyclic2(t, 1, 1), []float64{1, 1}, []float64{1, 1}, []float64{1, 0})
	if _, err := m.AccumulatedRewardAt(nil, 2, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("empty times: %v", err)
	}
	if _, err := m.AccumulatedRewardAt([]float64{-1}, 2, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("negative time: %v", err)
	}
	if _, err := m.AccumulatedRewardAt([]float64{math.NaN()}, 2, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("NaN time: %v", err)
	}
	if _, err := m.AccumulatedRewardAt([]float64{1}, -1, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("negative order: %v", err)
	}
	if _, err := m.AccumulatedRewardAt([]float64{1}, 2, &Options{Epsilon: 7}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("bad epsilon: %v", err)
	}
	if _, err := m.AccumulatedRewardAt([]float64{1}, 2, &Options{UniformizationRate: 0.5}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("low rate: %v", err)
	}
}
