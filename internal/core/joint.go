package core

import (
	"fmt"
	"math"

	"somrm/internal/poisson"
)

// JointResult holds the joint reward-state moments
//
//	M^(j)[i][k] = E[ B(t)^j * 1{Z(t)=k} | Z(0)=i ],
//
// the matrix generalization of the moment vectors: summing over the final
// state k recovers V^(j), and order 0 is exactly the transient probability
// matrix. Joint moments support conditioning on the final state (e.g.
// "expected work done, given the system ended operational") and
// compositional/hierarchical analyses.
type JointResult struct {
	T     float64
	Order int
	// Moments[j] is the n x n matrix M^(j) in row-major state order
	// (row = initial state, column = final state).
	Moments [][]float64
	Stats   Stats
}

// At returns M^(j)[i][k].
func (r *JointResult) At(j, i, k int) (float64, error) {
	n := r.states()
	if j < 0 || j > r.Order || i < 0 || i >= n || k < 0 || k >= n {
		return 0, fmt.Errorf("%w: joint moment (%d,%d,%d)", ErrBadArgument, j, i, k)
	}
	return r.Moments[j][i*n+k], nil
}

// Marginal returns the per-initial-state moment vector V^(j) by summing
// over the final state.
func (r *JointResult) Marginal(j int) ([]float64, error) {
	if j < 0 || j > r.Order {
		return nil, fmt.Errorf("%w: order %d of %d", ErrBadArgument, j, r.Order)
	}
	n := r.states()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for k := 0; k < n; k++ {
			s += r.Moments[j][i*n+k]
		}
		out[i] = s
	}
	return out, nil
}

// ConditionalMean returns E[B(t) | Z(0)=i, Z(t)=k] =
// M^(1)[i][k] / M^(0)[i][k]. It errors when the conditioning event has
// (numerically) zero probability.
func (r *JointResult) ConditionalMean(i, k int) (float64, error) {
	if r.Order < 1 {
		return 0, fmt.Errorf("%w: joint result holds order %d", ErrBadArgument, r.Order)
	}
	p, err := r.At(0, i, k)
	if err != nil {
		return 0, err
	}
	if p <= 0 {
		return 0, fmt.Errorf("%w: P(Z(t)=%d | Z(0)=%d) = %g", ErrBadArgument, k, i, p)
	}
	m1, err := r.At(1, i, k)
	if err != nil {
		return 0, err
	}
	return m1 / p, nil
}

func (r *JointResult) states() int {
	if len(r.Moments) == 0 {
		return 0
	}
	return int(math.Sqrt(float64(len(r.Moments[0]))))
}

// JointMoments computes the joint reward-state moments up to the given
// order with the same randomization recursion as AccumulatedReward, run on
// matrix coefficients: U^(j)(0) = I (for j = 0) and
//
//	U^(j)(k+1) = Q' U^(j)(k) + R' U^(j-1)(k) + 1/2 S' U^(j-2)(k).
//
// Cost and memory are n times the vector solver; intended for small to
// medium models. Impulse models are supported with the same extended
// recursion as the vector solver.
func (m *Model) JointMoments(t float64, order int, opts *Options) (*JointResult, error) {
	cfg := opts.withDefaults()
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return nil, fmt.Errorf("%w: time %g", ErrBadArgument, t)
	}
	if order < 0 {
		return nil, fmt.Errorf("%w: moment order %d", ErrBadArgument, order)
	}
	if cfg.Epsilon <= 0 || cfg.Epsilon >= 1 {
		return nil, fmt.Errorf("%w: epsilon %g not in (0,1)", ErrBadArgument, cfg.Epsilon)
	}

	n := m.N()
	res := &JointResult{T: t, Order: order}

	if m.gen == nil {
		return nil, fmt.Errorf("%w: joint moments require an explicit generator (matrix-free composed model)", ErrBadArgument)
	}
	q := m.gen.MaxExitRate()
	if cfg.UniformizationRate != 0 {
		if cfg.UniformizationRate < q {
			return nil, fmt.Errorf("%w: uniformization rate %g below max exit rate %g", ErrBadArgument, cfg.UniformizationRate, q)
		}
		q = cfg.UniformizationRate
	}
	if t == 0 || q == 0 {
		// Frozen or zero-horizon: Z(t) = Z(0) and B is per-state normal
		// (zero at t=0).
		vm, err := frozenMoments(m, t, order)
		if err != nil {
			return nil, err
		}
		res.Moments = make([][]float64, order+1)
		for j := 0; j <= order; j++ {
			mat := make([]float64, n*n)
			for i := 0; i < n; i++ {
				mat[i*n+i] = vm[j][i]
			}
			res.Moments[j] = mat
		}
		return res, nil
	}

	shift := 0.0
	for _, r := range m.rates {
		if r < shift {
			shift = r
		}
	}
	shifted := make([]float64, n)
	d := 0.0
	for i := range m.rates {
		shifted[i] = m.rates[i] - shift
		if v := shifted[i] / q; v > d {
			d = v
		}
		if v := math.Sqrt(m.vars[i]) / q; v > d {
			d = v
		}
	}
	if m.impulses != nil && m.maxImp > d {
		d = m.maxImp
	}
	if d == 0 {
		// B == shift * t deterministically; the state still moves.
		probs := make([]float64, n*n)
		for i := 0; i < n; i++ {
			row, err := m.gen.TransientDistribution(unitRow(n, i), t, cfg.Epsilon)
			if err != nil {
				return nil, err
			}
			copy(probs[i*n:(i+1)*n], row)
		}
		res.Moments = make([][]float64, order+1)
		for j := 0; j <= order; j++ {
			mat := make([]float64, n*n)
			c := math.Pow(shift*t, float64(j))
			for idx, v := range probs {
				mat[idx] = c * v
			}
			res.Moments[j] = mat
		}
		return res, nil
	}

	qPrime, err := m.gen.Uniformized(q)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	rPrime := make([]float64, n)
	sPrime := make([]float64, n)
	for i := 0; i < n; i++ {
		rPrime[i] = shifted[i] / (q * d)
		sPrime[i] = m.vars[i] / (q * d * d)
	}
	var impPrime []*imSlice
	if m.impulses != nil && order >= 1 {
		mats, err := m.impulseMatrices(q, d, order)
		if err != nil {
			return nil, err
		}
		impPrime = make([]*imSlice, len(mats))
		for i := range mats {
			impPrime[i] = &imSlice{mat: mats[i]}
		}
	}

	g, bound, err := truncationPoint(order, d, q*t, cfg.Epsilon, impPrime != nil, cfg.MaxG)
	if err != nil {
		return nil, err
	}
	stats := Stats{Q: q, QT: q * t, D: d, Shift: shift, G: g, ErrorBound: bound}

	// Matrix coefficients, row-major n x n, one per order.
	cur := make([][]float64, order+1)
	next := make([][]float64, order+1)
	acc := make([][]float64, order+1)
	for j := 0; j <= order; j++ {
		cur[j] = make([]float64, n*n)
		next[j] = make([]float64, n*n)
		acc[j] = make([]float64, n*n)
	}
	for i := 0; i < n; i++ {
		cur[0][i*n+i] = 1
	}
	weights := make([]float64, g+1)
	for k := 0; k <= g; k++ {
		weights[k] = math.Exp(poisson.LogPMF(k, q*t))
	}
	if w0 := weights[0]; w0 > 0 {
		for i := 0; i < n; i++ {
			acc[0][i*n+i] = w0
		}
	}

	// One uniformized step applied to every column at once: row i of the
	// new U is Q' applied to row-space... note U evolves by LEFT
	// multiplication (U_new = Q' U + diag terms), which in row-major terms
	// mixes rows of U: (Q'U)[i][.] = sum_l Q'[i][l] U[l][.].
	rowScratch := make([]float64, n*n)
	for k := 1; k <= g; k++ {
		for j := order; j >= 0; j-- {
			// Q' U: for each row i accumulate Q'[i][l] * U[l][:].
			for idx := range rowScratch {
				rowScratch[idx] = 0
			}
			for i := 0; i < n; i++ {
				dst := rowScratch[i*n : (i+1)*n]
				qPrime.Range(i, func(l int, v float64) {
					src := cur[j][l*n : (l+1)*n]
					for c := 0; c < n; c++ {
						dst[c] += v * src[c]
					}
				})
			}
			stats.MatVecs += int64(n)
			if j >= 1 {
				for i := 0; i < n; i++ {
					ri := rPrime[i]
					if ri == 0 {
						continue
					}
					src := cur[j-1][i*n : (i+1)*n]
					dst := rowScratch[i*n : (i+1)*n]
					for c := 0; c < n; c++ {
						dst[c] += ri * src[c]
					}
				}
			}
			if j >= 2 {
				for i := 0; i < n; i++ {
					si := 0.5 * sPrime[i]
					if si == 0 {
						continue
					}
					src := cur[j-2][i*n : (i+1)*n]
					dst := rowScratch[i*n : (i+1)*n]
					for c := 0; c < n; c++ {
						dst[c] += si * src[c]
					}
				}
			}
			if impPrime != nil {
				invFact := 1.0
				for mm := 1; mm <= j; mm++ {
					invFact /= float64(mm)
					for i := 0; i < n; i++ {
						dst := rowScratch[i*n : (i+1)*n]
						impPrime[mm-1].mat.Range(i, func(l int, v float64) {
							src := cur[j-mm][l*n : (l+1)*n]
							for c := 0; c < n; c++ {
								dst[c] += invFact * v * src[c]
							}
						})
					}
				}
			}
			copy(next[j], rowScratch)
		}
		cur, next = next, cur
		if w := weights[k]; w > 0 {
			for j := 0; j <= order; j++ {
				cj := cur[j]
				aj := acc[j]
				for idx := range aj {
					aj[idx] += w * cj[idx]
				}
			}
		}
	}

	// Scale and unshift (matrix version of the binomial identity).
	scaled := make([][]float64, order+1)
	scale := 1.0
	for j := 0; j <= order; j++ {
		if j > 0 {
			scale *= float64(j) * d
		}
		mat := make([]float64, n*n)
		for idx, v := range acc[j] {
			mat[idx] = scale * v
			if math.IsInf(mat[idx], 0) || math.IsNaN(mat[idx]) {
				return nil, fmt.Errorf("%w: joint moment order %d", ErrOverflow, j)
			}
		}
		scaled[j] = mat
	}
	res.Moments = unshiftMatrices(scaled, shift, t, order)
	res.Stats = stats
	return res, nil
}

// imSlice adapts an impulse CSR matrix for the joint recursion.
type imSlice struct {
	mat interface {
		Range(i int, fn func(j int, v float64))
	}
}

func unitRow(n, i int) []float64 {
	out := make([]float64, n)
	out[i] = 1
	return out
}

// unshiftMatrices applies M^(j) = sum_l C(j,l) (shift t)^{j-l} M̌^(l).
func unshiftMatrices(mm [][]float64, shift, t float64, order int) [][]float64 {
	if shift == 0 {
		return mm
	}
	size := len(mm[0])
	c := shift * t
	out := make([][]float64, order+1)
	binom := make([]float64, order+1)
	for j := 0; j <= order; j++ {
		binom[j] = 1
		for l := j - 1; l > 0; l-- {
			binom[l] += binom[l-1]
		}
		out[j] = make([]float64, size)
		for l := 0; l <= j; l++ {
			coef := binom[l] * math.Pow(c, float64(j-l))
			if coef == 0 {
				continue
			}
			src := mm[l]
			dst := out[j]
			for idx := range dst {
				dst[idx] += coef * src[idx]
			}
		}
	}
	return out
}
