package core

import (
	"errors"
	"math"
	"testing"

	"somrm/internal/brownian"
)

func TestRawToCentralNormal(t *testing.T) {
	mu, s2 := 2.0, 3.0
	raw := make([]float64, 5)
	for j := range raw {
		raw[j], _ = brownian.NormalRawMoment(j, mu, s2)
	}
	cm, err := RawToCentral(raw)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0, s2, 0, 3 * s2 * s2}
	for j := range want {
		if math.Abs(cm[j]-want[j]) > 1e-10*(1+math.Abs(want[j])) {
			t.Errorf("mu_%d = %.12g, want %g", j, cm[j], want[j])
		}
	}
}

func TestRawToCentralErrors(t *testing.T) {
	if _, err := RawToCentral(nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("empty: %v", err)
	}
	if _, err := RawToCentral([]float64{2, 0}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("m0 != 1: %v", err)
	}
	cm, err := RawToCentral([]float64{1})
	if err != nil || len(cm) != 1 || cm[0] != 1 {
		t.Errorf("m0-only: %v %v", cm, err)
	}
}

func TestRawToCumulantsNormal(t *testing.T) {
	mu, s2 := -1.5, 2.0
	raw := make([]float64, 7)
	for j := range raw {
		raw[j], _ = brownian.NormalRawMoment(j, mu, s2)
	}
	kappa, err := RawToCumulants(raw)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(kappa[1]-mu) > 1e-12 {
		t.Errorf("kappa1 = %g, want %g", kappa[1], mu)
	}
	if math.Abs(kappa[2]-s2) > 1e-10 {
		t.Errorf("kappa2 = %g, want %g", kappa[2], s2)
	}
	for j := 3; j <= 6; j++ {
		if math.Abs(kappa[j]) > 1e-7 {
			t.Errorf("normal kappa%d = %g, want 0", j, kappa[j])
		}
	}
}

func TestRawToCumulantsPoisson(t *testing.T) {
	// Poisson(lambda): all cumulants equal lambda. Raw moments via the
	// recursion m_{n+1} = lambda * sum C(n,k) m_k.
	lambda := 1.7
	raw := []float64{1}
	for n := 0; n < 5; n++ {
		var s float64
		for k := 0; k <= n; k++ {
			s += binomCoef(n, k) * raw[k]
		}
		raw = append(raw, lambda*s)
	}
	kappa, err := RawToCumulants(raw)
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j <= 5; j++ {
		if math.Abs(kappa[j]-lambda) > 1e-9 {
			t.Errorf("poisson kappa%d = %.12g, want %g", j, kappa[j], lambda)
		}
	}
}

func TestRawToCumulantsEmpty(t *testing.T) {
	if _, err := RawToCumulants(nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("empty: %v", err)
	}
}

func TestResultDerivedStats(t *testing.T) {
	m := mustModel(t, cyclic2(t, 3, 3), []float64{2, 2}, []float64{1.5, 1.5}, []float64{1, 0})
	const tt = 0.8
	res, err := m.AccumulatedReward(tt, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	mean, err := res.Mean()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-2*tt) > 1e-10 {
		t.Errorf("Mean = %g, want %g", mean, 2*tt)
	}
	v, err := res.Variance()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1.5*tt) > 1e-9 {
		t.Errorf("Variance = %g, want %g", v, 1.5*tt)
	}
	sd, err := res.StdDev()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sd-math.Sqrt(1.5*tt)) > 1e-9 {
		t.Errorf("StdDev = %g", sd)
	}
	skew, err := res.Skewness()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(skew) > 1e-7 {
		t.Errorf("Skewness of a normal reward = %g, want ~0", skew)
	}
}

func TestDerivedStatsOrderErrors(t *testing.T) {
	m := mustModel(t, cyclic2(t, 3, 3), []float64{2, 2}, []float64{1, 1}, []float64{1, 0})
	res, err := m.AccumulatedReward(0.5, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Mean(); !errors.Is(err, ErrBadArgument) {
		t.Errorf("Mean at order 0: %v", err)
	}
	if _, err := res.Variance(); !errors.Is(err, ErrBadArgument) {
		t.Errorf("Variance at order 0: %v", err)
	}
	res1, err := m.AccumulatedReward(0.5, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res1.Skewness(); !errors.Is(err, ErrBadArgument) {
		t.Errorf("Skewness at order 2: %v", err)
	}
}

func TestSkewnessZeroVarianceError(t *testing.T) {
	// Deterministic reward: zero variance => skewness undefined.
	m := mustModel(t, cyclic2(t, 1, 1), []float64{2, 2}, []float64{0, 0}, []float64{1, 0})
	res, err := m.AccumulatedReward(1, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Skewness(); !errors.Is(err, ErrBadArgument) {
		t.Errorf("zero variance skewness: %v", err)
	}
}

func TestTimeAveraged(t *testing.T) {
	m := mustModel(t, cyclic2(t, 3, 3), []float64{2, 2}, []float64{1, 1}, []float64{1, 0})
	const tt = 4.0
	res, err := m.AccumulatedReward(tt, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	avg, err := res.TimeAveraged()
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j <= 3; j++ {
		want := res.Moments[j] / math.Pow(tt, float64(j))
		if math.Abs(avg[j]-want) > 1e-14*(1+math.Abs(want)) {
			t.Errorf("avg[%d] = %g, want %g", j, avg[j], want)
		}
	}
	// Time-averaged mean tends to the steady rate (here exactly 2).
	if math.Abs(avg[1]-2) > 1e-9 {
		t.Errorf("time-averaged mean = %g, want 2", avg[1])
	}
	// Undefined at t = 0.
	res0, err := m.AccumulatedReward(0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res0.TimeAveraged(); !errors.Is(err, ErrBadArgument) {
		t.Errorf("t=0 time average: %v", err)
	}
}

func TestMeanVector(t *testing.T) {
	m := mustModel(t, cyclic2(t, 0.5, 0.5), []float64{10, 0}, []float64{0, 0}, []float64{1, 0})
	mv, err := m.MeanVector(0.3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(mv) != 2 || mv[0] <= mv[1] {
		t.Errorf("MeanVector = %v", mv)
	}
}

func TestSteadyStateMeanRate(t *testing.T) {
	// pi_ss = (b, a)/(a+b) for the 2-state chain.
	a, b := 2.0, 3.0
	m := mustModel(t, cyclic2(t, a, b), []float64{4, -1}, []float64{0, 0}, []float64{1, 0})
	got, err := m.SteadyStateMeanRate()
	if err != nil {
		t.Fatal(err)
	}
	want := (b*4 + a*(-1)) / (a + b)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("SteadyStateMeanRate = %.14g, want %.14g", got, want)
	}
}

func TestBinomCoef(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{{5, 0, 1}, {5, 2, 10}, {5, 5, 1}, {10, 3, 120}, {3, 4, 0}, {3, -1, 0}}
	for _, c := range cases {
		if got := binomCoef(c.n, c.k); got != c.want {
			t.Errorf("C(%d,%d) = %g, want %g", c.n, c.k, got, c.want)
		}
	}
}
