package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"somrm/internal/ctmc"
)

// heavyModel builds a model whose solve needs many randomization
// iterations (large qt), so cancellation has a window to land in.
func heavyModel(t *testing.T) *Model {
	t.Helper()
	n := 64
	gen, err := ctmc.NewGeneratorFromRates(n, func(i, j int) float64 {
		switch {
		case j == i+1:
			return 50
		case j == i-1:
			return 80
		default:
			return 0
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	rates := make([]float64, n)
	vars := make([]float64, n)
	initial := make([]float64, n)
	for i := range rates {
		rates[i] = float64(i) / float64(n)
		vars[i] = 0.5
	}
	initial[0] = 1
	model, err := New(gen, rates, vars, initial)
	if err != nil {
		t.Fatal(err)
	}
	return model
}

func TestAccumulatedRewardContextCanceledBeforeStart(t *testing.T) {
	m := onOffSource(t, 1, 2, 1.5, 0.5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.AccumulatedRewardContext(ctx, 1, 2, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestAccumulatedRewardContextDeadline(t *testing.T) {
	m := heavyModel(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	// qt = 130*500 = 65,000, so tens of thousands of iterations: the
	// microsecond deadline must be observed mid-loop.
	_, err := m.AccumulatedRewardContext(ctx, 500, 4, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

func TestAccumulatedRewardContextNilAndBackground(t *testing.T) {
	m := onOffSource(t, 1, 2, 1.5, 0.5)
	want, err := m.AccumulatedReward(2, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, ctx := range []context.Context{nil, context.Background()} {
		got, err := m.AccumulatedRewardContext(ctx, 2, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want.Moments {
			if got.Moments[j] != want.Moments[j] {
				t.Fatalf("ctx solve moment %d = %g, want %g", j, got.Moments[j], want.Moments[j])
			}
		}
	}
}
