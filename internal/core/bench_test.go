package core

import (
	"testing"

	"somrm/internal/ctmc"
)

func benchModel(b *testing.B, n int, shiftNegative bool) *Model {
	b.Helper()
	up := make([]float64, n-1)
	down := make([]float64, n-1)
	for i := range up {
		up[i] = float64(n-1-i) * 3
		down[i] = float64(i+1) * 4
	}
	gen, err := ctmc.NewBirthDeath(up, down)
	if err != nil {
		b.Fatal(err)
	}
	rates := make([]float64, n)
	vars := make([]float64, n)
	for i := range rates {
		rates[i] = float64(n-1) - float64(i)
		if shiftNegative {
			rates[i] -= float64(n) // every drift negative: shift path active
		}
		vars[i] = float64(i)
	}
	pi := make([]float64, n)
	pi[0] = 1
	m, err := New(gen, rates, vars, pi)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// Ablation (DESIGN.md): cost of the negative-drift shift transformation.
// The shift adds only the binomial unshift at the end, so the two runs
// should be nearly identical per op.
func BenchmarkSolveNoShift(b *testing.B) {
	m := benchModel(b, 64, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.AccumulatedReward(0.5, 3, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveWithShift(b *testing.B) {
	m := benchModel(b, 64, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.AccumulatedReward(0.5, 3, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTruncationPoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := truncationPoint(3, 0.25, 40_000, 1e-9, false, 10_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComposePair(b *testing.B) {
	m := benchModel(b, 16, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compose(m, m); err != nil {
			b.Fatal(err)
		}
	}
}
