package core

import (
	"fmt"
	"runtime"
	"testing"

	"somrm/internal/ctmc"
)

func benchModel(b *testing.B, n int, shiftNegative bool) *Model {
	b.Helper()
	up := make([]float64, n-1)
	down := make([]float64, n-1)
	for i := range up {
		up[i] = float64(n-1-i) * 3
		down[i] = float64(i+1) * 4
	}
	gen, err := ctmc.NewBirthDeath(up, down)
	if err != nil {
		b.Fatal(err)
	}
	rates := make([]float64, n)
	vars := make([]float64, n)
	for i := range rates {
		rates[i] = float64(n-1) - float64(i)
		if shiftNegative {
			rates[i] -= float64(n) // every drift negative: shift path active
		}
		vars[i] = float64(i)
	}
	pi := make([]float64, n)
	pi[0] = 1
	m, err := New(gen, rates, vars, pi)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// Ablation (DESIGN.md): cost of the negative-drift shift transformation.
// The shift adds only the binomial unshift at the end, so the two runs
// should be nearly identical per op.
func BenchmarkSolveNoShift(b *testing.B) {
	m := benchModel(b, 64, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.AccumulatedReward(0.5, 3, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveWithShift(b *testing.B) {
	m := benchModel(b, 64, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.AccumulatedReward(0.5, 3, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTruncationPoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := truncationPoint(3, 0.25, 40_000, 1e-9, false, 10_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComposePair(b *testing.B) {
	m := benchModel(b, 16, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compose(m, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweep measures the k = 1..G randomization sweep on the paper's
// large-example shape: a tridiagonal birth-death chain at moment order 3.
// N = 100,001 is the CI smoke size, N = 200,001 the paper's large
// example; constant rates keep qt (and with it G) independent of N.
// Sub-benchmarks select the kernel via Options.SweepWorkers and the
// storage engine via Options.MatrixFormat: "reference" is the serial
// pre-fusion loop on the original 64-bit-index CSR, "fused-single" the
// fused kernel on one worker at the same storage (isolates the fusion
// win), "fused-compact" swaps in uint32 column indices, "fused-band"
// the band/DIA kernel (the chain is tridiagonal, so the sweep loads no
// indices at all), "fused-qbd" the block-tridiagonal window kernel (the
// chain detects QBD block size 1), and "fused-auto" the production
// policy (structure detection picks the band kernel here, workers by
// GOMAXPROCS). The -blocked variants rerun a kernel with wavefront
// temporal blocking forced to depth 16 (Options.TemporalBlock), and the
// workers-W[-blocked] variants sweep fused-team sizes at the production
// storage policy. The trailing kron-KxM sub-benchmarks sweep matrix-free
// composed models through the streaming Kronecker-sum operator. Each
// model is prepared once so an op measures the sweep, not the per-solve
// uniformization and CSR assembly it shares across kernels.
func BenchmarkSweep(b *testing.B) {
	const (
		order = 3
		tt    = 8.0 // q = 7 -> qt = 56
	)
	for _, n := range []int{100_001, 200_001} {
		m := largeTridiagModel(b, n)
		prep, err := Prepare(m)
		if err != nil {
			b.Fatal(err)
		}
		for _, bc := range []struct {
			name    string
			workers int
			format  string
			tblock  int
			nosimd  bool
		}{
			{"reference", -1, "", 0, false},
			{"fused-single", 1, "csr64", 1, false},
			{"fused-compact", 1, "csr", 1, false},
			{"fused-band", 1, "band", 1, false},
			{"fused-qbd", 1, "qbd", 1, false},
			{"fused-auto", 0, "auto", 0, false},
			// Wavefront temporal blocking (Options.TemporalBlock) at the
			// forced depth of 16 (the auto-tuned default) against the
			// unblocked kernels above: same arithmetic bitwise, ~T fewer
			// DRAM sweeps over the state arrays once the state outgrows
			// cache.
			{"fused-compact-blocked", 1, "csr", 16, false},
			{"fused-band-blocked", 1, "band", 16, false},
			{"fused-qbd-blocked", 1, "qbd", 16, false},
			// Options.NoSIMD ablation: the same kernels with the AVX2
			// bodies switched off, isolating the vectorization win per
			// storage engine (bitwise identical results either way).
			{"fused-compact-nosimd", 1, "csr", 1, true},
			{"fused-band-nosimd", 1, "band", 1, true},
			{"fused-qbd-nosimd", 1, "qbd", 1, true},
		} {
			b.Run(fmt.Sprintf("N%d/%s", n, bc.name), func(b *testing.B) {
				opts := &Options{SweepWorkers: bc.workers, MatrixFormat: bc.format, TemporalBlock: bc.tblock, NoSIMD: bc.nosimd}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := prep.AccumulatedReward(tt, order, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		// Worker-count scaling of the fused kernel at the production
		// storage policy, unblocked and temporally blocked: one
		// BENCH_sweep.json entry per (worker count, blocking) pair, so
		// scaling regressions (a kernel that stops speeding up past two
		// workers, say) are diffable across revisions like the kernel
		// variants above. The counts are fixed rather than derived from
		// the machine so reports from different hosts stay comparable;
		// counts the host cannot actually run in parallel are skipped
		// explicitly instead of silently measuring oversubscription.
		for _, w := range []int{1, 2, 4, 8, 16} {
			for _, tb := range []int{1, 16} {
				name := fmt.Sprintf("N%d/workers-%d", n, w)
				if tb > 1 {
					name += "-blocked"
				}
				b.Run(name, func(b *testing.B) {
					if max := runtime.GOMAXPROCS(0); w > max {
						b.Skipf("worker count %d exceeds GOMAXPROCS=%d; skipping rather than measuring oversubscription", w, max)
					}
					opts := &Options{SweepWorkers: w, MatrixFormat: "auto", TemporalBlock: tb}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := prep.AccumulatedReward(tt, order, opts); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}

	// Matrix-free composed shapes: kron-KxM composes K constant-rate
	// tridiagonal factors of M states each. Both shapes reach 10^6 product
	// states — past ComposeMaterializeThreshold — so the sweep streams the
	// Kronecker-sum operator and the product CSR is never built (it would
	// hold ~5M nonzeros here, and OOMs outright at modestly larger shapes;
	// the O(sum of factor sizes) memory ceiling is asserted in
	// TestComposeMatrixFreeLarge, not here). t is shorter than the
	// materialized runs above because the composed uniformization rate is
	// the sum of the factor rates: q = 7K, so kronT keeps G comparable.
	const kronT = 0.5
	for _, shape := range []struct{ k, m int }{{2, 1000}, {3, 100}} {
		factors := make([]*Model, shape.k)
		for i := range factors {
			factors[i] = largeTridiagModel(b, shape.m)
		}
		joint, err := ComposeAll(factors...)
		if err != nil {
			b.Fatal(err)
		}
		if !joint.IsMatrixFree() {
			b.Fatalf("kron-%dx%d: composed model unexpectedly materialized", shape.k, shape.m)
		}
		prep, err := Prepare(joint)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("kron-%dx%d", shape.k, shape.m), func(b *testing.B) {
			opts := &Options{SweepWorkers: 1, MatrixFormat: "kron"}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := prep.AccumulatedReward(kronT, order, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
