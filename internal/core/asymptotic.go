package core

import (
	"fmt"

	"somrm/internal/linalg"
)

// Asymptotics holds the long-run (central-limit) parameters of the
// accumulated reward: B(t) ~ Normal(MeanRate*t, VarianceRate*t) as
// t -> infinity for an irreducible structure process. MeanRate is pi.r;
// VarianceRate combines the structure-process variability (through the
// deviation matrix) with the average second-order noise pi.S.h:
//
//	VarianceRate = pi S h + 2 (pi o r) D r,
//
// where D = (Pi - Q)^{-1} - Pi is the deviation matrix of the CTMC and
// (pi o r) is the elementwise product. Impulse rewards add
// 2 (pi o r) D (sum_j q_.j y_.j) + sum_ij pi_i q_ij y_ij (y_ij + 2 r-free
// terms); impulse models are currently rejected to keep the formula exact.
type Asymptotics struct {
	// MeanRate is the long-run reward accumulation rate pi.r.
	MeanRate float64
	// VarianceRate is the long-run variance growth rate of B(t).
	VarianceRate float64
	// Stationary is the stationary distribution of the structure process.
	Stationary []float64
}

// LongRun computes the CLT parameters of the accumulated reward. It
// requires an irreducible structure process and no impulse rewards, and
// densifies the generator (intended for moderate state counts).
func (m *Model) LongRun() (*Asymptotics, error) {
	if m.HasImpulses() {
		return nil, fmt.Errorf("%w: long-run asymptotics do not support impulse rewards", ErrBadArgument)
	}
	if m.gen == nil {
		return nil, fmt.Errorf("%w: long-run asymptotics require an explicit generator (matrix-free composed model)", ErrBadArgument)
	}
	pi, err := m.gen.StationaryDistribution()
	if err != nil {
		return nil, fmt.Errorf("core: long run: %w", err)
	}
	n := m.N()

	var meanRate, noiseRate float64
	for i := 0; i < n; i++ {
		meanRate += pi[i] * m.rates[i]
		noiseRate += pi[i] * m.vars[i]
	}

	// Deviation matrix D = (Pi - Q)^{-1} - Pi, with Pi = h pi^T.
	q := m.gen.Matrix().Dense()
	a := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, pi[j]-q[i*n+j])
		}
	}
	lu, err := linalg.FactorLU(a)
	if err != nil {
		return nil, fmt.Errorf("core: long run: deviation matrix: %w", err)
	}
	// D r = (Pi - Q)^{-1} r - Pi r = x - (pi.r) h, since Pi r = (pi.r) h.
	r := linalg.Vector(m.rates)
	x, err := lu.Solve(r)
	if err != nil {
		return nil, fmt.Errorf("core: long run: %w", err)
	}
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = x[i] - meanRate
	}
	// structRate = 2 sum_i pi_i (r_i - pi.r) (D r)_i, the integrated
	// autocovariance of the centered reward rate.
	var structRate float64
	for i := 0; i < n; i++ {
		structRate += pi[i] * (m.rates[i] - meanRate) * w[i]
	}
	structRate *= 2

	if structRate < 0 && structRate > -1e-12*(1+meanRate*meanRate) {
		structRate = 0
	}
	return &Asymptotics{
		MeanRate:     meanRate,
		VarianceRate: noiseRate + structRate,
		Stationary:   pi,
	}, nil
}
