// Package core implements the paper's primary contribution: the analysis of
// second-order Markov reward models (SOMRMs), where a CTMC Z(t) modulates a
// Brownian reward accumulation B(t) with state-dependent drift r_i and
// variance sigma_i^2.
//
// The central algorithm is the randomization (uniformization) based moment
// solver of Theorems 3 and 4: with q = max_i |q_ii| and
// d = max_i {r_i, sigma_i}/q, the substochastic matrices
//
//	Q' = Q/q + I,  R' = R/(qd),  S' = S/(qd^2)
//
// drive the recursion
//
//	U^(n)(k+1) = R' U^(n-1)(k) + 1/2 S' U^(n-2)(k) + Q' U^(n)(k)
//
// and the n-th raw moment vector is the Poisson-weighted sum
//
//	V^(n)(t) = n! d^n sum_k e^{-qt} (qt)^k / k! * U^(n)(k),
//
// truncated at G chosen from the provable error bound of eq. (11).
package core

import (
	"errors"
	"fmt"
	"math"

	"somrm/internal/ctmc"
	"somrm/internal/sparse"
)

var (
	// ErrBadModel is returned when model components are inconsistent.
	ErrBadModel = errors.New("core: invalid second-order reward model")
	// ErrBadArgument is returned for invalid solver arguments.
	ErrBadArgument = errors.New("core: invalid argument")
	// ErrOverflow is returned when the moment computation exceeds the range
	// of float64 (extremely high orders combined with large qt).
	ErrOverflow = errors.New("core: moment computation overflowed float64")
)

// Model is a second-order Markov reward model (Q, R, S, pi): a CTMC
// generator, per-state reward drifts, per-state reward variances, and an
// initial distribution.
//
// Large composed models are matrix-free: gen is nil and the generator
// exists only as its Kronecker-sum factors in kron (see Compose and
// IsMatrixFree). Every solver path that needs the explicit matrix either
// streams the factors or rejects the model with a typed error.
type Model struct {
	gen      *ctmc.Generator
	kron     *kronSpec // Kronecker-sum decomposition of composed models
	rates    []float64 // r_i, may be negative
	vars     []float64 // sigma_i^2 >= 0
	initial  []float64
	impulses *sparse.CSR // optional impulse rewards y_ij >= 0 on transitions
	maxImp   float64
}

// New validates and builds a model. rates may be negative (the solver
// applies the paper's shift transformation); variances must be
// non-negative; initial must be a probability distribution over the states
// of gen. All slices are copied.
func New(gen *ctmc.Generator, rates, variances, initial []float64) (*Model, error) {
	if gen == nil {
		return nil, fmt.Errorf("%w: nil generator", ErrBadModel)
	}
	n := gen.N()
	if len(rates) != n {
		return nil, fmt.Errorf("%w: %d rates for %d states", ErrBadModel, len(rates), n)
	}
	if len(variances) != n {
		return nil, fmt.Errorf("%w: %d variances for %d states", ErrBadModel, len(variances), n)
	}
	for i, r := range rates {
		if math.IsNaN(r) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("%w: rate r[%d]=%g", ErrBadModel, i, r)
		}
	}
	for i, s := range variances {
		if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("%w: variance sigma2[%d]=%g", ErrBadModel, i, s)
		}
	}
	if err := gen.ValidateDistribution(initial); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadModel, err)
	}
	return &Model{
		gen:     gen,
		rates:   append([]float64(nil), rates...),
		vars:    append([]float64(nil), variances...),
		initial: append([]float64(nil), initial...),
	}, nil
}

// NewFirstOrder builds an ordinary (first-order) Markov reward model, i.e. a
// second-order model with all variances zero. First-order MRMs are the
// classical special case the paper generalizes, and they share the solver.
func NewFirstOrder(gen *ctmc.Generator, rates, initial []float64) (*Model, error) {
	if gen == nil {
		return nil, fmt.Errorf("%w: nil generator", ErrBadModel)
	}
	return New(gen, rates, make([]float64, gen.N()), initial)
}

// WithImpulses returns a copy of the model extended with impulse rewards:
// imp.At(i, j) is added to the accumulated reward instantaneously on each
// i -> j transition. Impulses must be non-negative, zero on the diagonal,
// and only present where the generator has a transition. This is the
// extension the paper's introduction says the solution method allows.
func (m *Model) WithImpulses(imp *sparse.CSR) (*Model, error) {
	if m.gen == nil {
		return nil, fmt.Errorf("%w: impulse rewards require an explicit generator (matrix-free composed model)", ErrBadModel)
	}
	n := m.N()
	if imp.Rows() != n || imp.Cols() != n {
		return nil, fmt.Errorf("%w: impulse matrix %dx%d for %d states", ErrBadModel, imp.Rows(), imp.Cols(), n)
	}
	var maxImp float64
	var vErr error
	for i := 0; i < n && vErr == nil; i++ {
		imp.Range(i, func(j int, y float64) {
			if vErr != nil {
				return
			}
			switch {
			case i == j:
				vErr = fmt.Errorf("%w: impulse on diagonal state %d", ErrBadModel, i)
			case y < 0 || math.IsNaN(y) || math.IsInf(y, 0):
				vErr = fmt.Errorf("%w: impulse y[%d][%d]=%g", ErrBadModel, i, j, y)
			case m.gen.At(i, j) == 0:
				vErr = fmt.Errorf("%w: impulse y[%d][%d] on absent transition", ErrBadModel, i, j)
			}
			if y > maxImp {
				maxImp = y
			}
		})
	}
	if vErr != nil {
		return nil, vErr
	}
	out := *m
	out.impulses = imp
	out.maxImp = maxImp
	return &out, nil
}

// N returns the number of structure states.
func (m *Model) N() int {
	if m.gen != nil {
		return m.gen.N()
	}
	return m.kron.n
}

// Generator returns the structure-state generator, or nil for a
// matrix-free composed model (see IsMatrixFree).
func (m *Model) Generator() *ctmc.Generator { return m.gen }

// IsMatrixFree reports whether the model's generator exists only as a
// Kronecker-sum decomposition (a composition beyond
// ComposeMaterializeThreshold states): Generator returns nil, and the
// randomization solver streams the sparse.KronSum operator instead of an
// explicit matrix.
func (m *Model) IsMatrixFree() bool { return m.gen == nil }

// maxExitRate returns q = max_i |q_ii| for explicit and matrix-free
// generators alike; the matrix-free value is the pairwise tree fold of
// the factor maxima, bitwise equal to what the materialized generator
// would report (the per-row exit rate fl(e_a + e_b) is monotone in both
// arguments, so its maximum sits at the component argmaxes).
func (m *Model) maxExitRate() float64 {
	if m.gen != nil {
		return m.gen.MaxExitRate()
	}
	return m.kron.q
}

// Rates returns a copy of the drift vector r.
func (m *Model) Rates() []float64 { return append([]float64(nil), m.rates...) }

// Variances returns a copy of the variance vector sigma^2.
func (m *Model) Variances() []float64 { return append([]float64(nil), m.vars...) }

// Initial returns a copy of the initial probability vector pi.
func (m *Model) Initial() []float64 { return append([]float64(nil), m.initial...) }

// HasImpulses reports whether the model carries impulse rewards.
func (m *Model) HasImpulses() bool { return m.impulses != nil }

// Impulses returns the impulse reward matrix (nil when absent; shared,
// treat as read-only).
func (m *Model) Impulses() *sparse.CSR { return m.impulses }

// IsFirstOrder reports whether every state variance is zero (ordinary MRM).
func (m *Model) IsFirstOrder() bool {
	for _, s := range m.vars {
		if s != 0 {
			return false
		}
	}
	return true
}

// WithInitial returns a copy of the model with a different initial
// distribution (the per-state moment vectors do not depend on it, but the
// aggregated moments do).
func (m *Model) WithInitial(initial []float64) (*Model, error) {
	if m.gen != nil {
		if err := m.gen.ValidateDistribution(initial); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadModel, err)
		}
	} else if err := validateDistribution(initial, m.N()); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadModel, err)
	}
	out := *m
	out.initial = append([]float64(nil), initial...)
	return &out, nil
}
