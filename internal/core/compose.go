package core

import (
	"errors"
	"fmt"
	"math"

	"somrm/internal/ctmc"
	"somrm/internal/sparse"
)

// ErrComposeImpulse is returned (wrapped in ErrBadModel) when Compose is
// given an impulse-reward component: a joint transition never fires both
// components at once, but the bookkeeping of per-component impulses on
// the product chain is not implemented. It is a distinct sentinel so
// callers (the server, the facade) can classify the rejection as a bad
// request rather than an internal failure.
var ErrComposeImpulse = errors.New("core: composition of impulse-reward models is not supported")

// ComposeMaterializeThreshold is the product state count above which
// Compose stops materializing the joint generator as an explicit CSR and
// returns a matrix-free model instead: the composed generator lives only
// as its Kronecker-sum factors (O(Σ factor sizes) memory), and the
// randomization solver streams it through the sparse.KronSum operator.
// At or below the threshold the explicit CSR is built as before (and the
// factor metadata is kept alongside, so the kron format remains
// available and further compositions stay exact).
const ComposeMaterializeThreshold = 1 << 16

// kronSpec records a composed model's generator as a Kronecker sum: the
// raw factor generator matrices, the tree-folded maximum exit rate, and
// the postfix fold program (see sparse.NewKronSum) capturing the
// parenthesization of the composition tree — the shape in which the
// materialized builder would have float-summed the duplicate diagonal
// contributions, which the matrix-free operator must reproduce bit for
// bit.
type kronSpec struct {
	n       int
	q       float64
	factors []*sparse.CSR
	fold    []byte
}

// kronParts returns a model's Kronecker decomposition: its own factors
// when it is (or records being) a composition, else the model itself as
// a single leaf factor.
func (m *Model) kronParts() (factors []*sparse.CSR, fold []byte, q float64) {
	if m.kron != nil {
		return m.kron.factors, m.kron.fold, m.kron.q
	}
	return []*sparse.CSR{m.gen.Matrix()}, []byte{sparse.KronFoldPush}, m.gen.MaxExitRate()
}

// Compose builds the joint model of two *independent* second-order Markov
// reward models whose rewards accumulate additively: the structure process
// is the product chain (generator = Kronecker sum Q1 (+) Q2), the drift
// and variance of a joint state are the sums of the component drifts and
// variances (independent Brownian motions add their first two cumulants),
// and the initial distribution is the product distribution.
//
// The accumulated reward of the composed model is B1(t) + B2(t) with
// independent components, so its moments are the binomial convolution of
// the component moments — which the test suite uses as an exact oracle.
// The paper's ON-OFF multiplexer is a composition of N independent
// single-source models (modulo the shared capacity offset).
//
// Products up to ComposeMaterializeThreshold states build the explicit
// joint CSR; larger products return a matrix-free model whose generator
// exists only as its Kronecker-sum factors (see Model.IsMatrixFree).
// Both carry the factor metadata, and the solver's results are bitwise
// identical either way.
//
// Impulse-reward models are rejected with ErrComposeImpulse (wrapped in
// ErrBadModel).
func Compose(a, b *Model) (*Model, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("%w: nil component model", ErrBadModel)
	}
	if a.HasImpulses() || b.HasImpulses() {
		return nil, fmt.Errorf("%w: %w", ErrBadModel, ErrComposeImpulse)
	}
	na, nb := a.N(), b.N()
	if nb != 0 && na > math.MaxInt/nb {
		return nil, fmt.Errorf("%w: composed state space %d x %d overflows", ErrBadModel, na, nb)
	}
	n := na * nb
	idx := func(i, j int) int { return i*nb + j }

	// The Kronecker metadata of the product: factor matrices concatenate,
	// fold programs concatenate with a final add (the postfix encoding of
	// this Compose node), and the maximum exit rate folds pairwise — the
	// product chain's per-row exit rate is fl(e_a + e_b), which is
	// monotone in both arguments, so its maximum sits at the component
	// argmaxes.
	fa, folda, qa := a.kronParts()
	fb, foldb, qb := b.kronParts()
	ks := &kronSpec{
		n:       n,
		q:       qa + qb,
		factors: append(append(make([]*sparse.CSR, 0, len(fa)+len(fb)), fa...), fb...),
		fold:    append(append(append(make([]byte, 0, len(folda)+len(foldb)+1), folda...), foldb...), sparse.KronFoldAdd),
	}

	rates := make([]float64, n)
	vars := make([]float64, n)
	initial := make([]float64, n)
	for i := 0; i < na; i++ {
		for j := 0; j < nb; j++ {
			k := idx(i, j)
			rates[k] = a.rates[i] + b.rates[j]
			vars[k] = a.vars[i] + b.vars[j]
			initial[k] = a.initial[i] * b.initial[j]
		}
	}

	if n <= ComposeMaterializeThreshold {
		// Small product: materialize the joint CSR exactly as before.
		// Components this small always carry explicit generators (a
		// matrix-free component is itself above the threshold).
		builder := sparse.NewBuilder(n, n)
		qma := a.gen.Matrix()
		qmb := b.gen.Matrix()
		var addErr error
		add := func(r, c int, v float64) {
			if addErr == nil && v != 0 {
				addErr = builder.Add(r, c, v)
			}
		}
		for i := 0; i < na; i++ {
			for j := 0; j < nb; j++ {
				row := idx(i, j)
				// Component A moves: (i,j) -> (k,j) at rate qa[i][k].
				qma.Range(i, func(k int, v float64) {
					add(row, idx(k, j), v)
				})
				// Component B moves: (i,j) -> (i,l) at rate qb[j][l]. The two
				// diagonal contributions sum to the joint exit rate.
				qmb.Range(j, func(l int, v float64) {
					add(row, idx(i, l), v)
				})
			}
		}
		if addErr != nil {
			return nil, fmt.Errorf("core: compose: %w", addErr)
		}
		gen, err := ctmc.NewGenerator(builder.Build())
		if err != nil {
			return nil, fmt.Errorf("core: compose: %w", err)
		}
		out, err := New(gen, rates, vars, initial)
		if err != nil {
			return nil, err
		}
		if len(ks.factors) <= sparse.MaxKronFactors {
			out.kron = ks
		}
		return out, nil
	}

	// Large product: matrix-free model. The generator exists only as the
	// Kronecker factors; validate what New would have validated, without
	// ever touching O(n·nnz-per-row) storage.
	if len(ks.factors) > sparse.MaxKronFactors {
		return nil, fmt.Errorf("%w: composed model has %d factors (limit %d)", ErrBadModel, len(ks.factors), sparse.MaxKronFactors)
	}
	for i, r := range rates {
		if math.IsNaN(r) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("%w: composed rate r[%d]=%g", ErrBadModel, i, r)
		}
	}
	for i, s := range vars {
		if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("%w: composed variance sigma2[%d]=%g", ErrBadModel, i, s)
		}
	}
	if err := validateDistribution(initial, n); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadModel, err)
	}
	return &Model{
		kron:    ks,
		rates:   rates,
		vars:    vars,
		initial: initial,
	}, nil
}

// validateDistribution checks that pi is a probability vector of length
// n, mirroring ctmc.Generator.ValidateDistribution for models without an
// explicit generator.
func validateDistribution(pi []float64, n int) error {
	if len(pi) != n {
		return fmt.Errorf("distribution length %d, want %d", len(pi), n)
	}
	var sum float64
	for i, p := range pi {
		if p < 0 || math.IsNaN(p) || p > 1+1e-12 {
			return fmt.Errorf("pi[%d]=%g", i, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("distribution sums to %g", sum)
	}
	return nil
}

// ComposeAll folds Compose over a list of independent models (at least
// one), left to right. State counts multiply; products beyond
// ComposeMaterializeThreshold states come back matrix-free.
func ComposeAll(models ...*Model) (*Model, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("%w: no models to compose", ErrBadModel)
	}
	out := models[0]
	if out == nil {
		return nil, fmt.Errorf("%w: nil component model", ErrBadModel)
	}
	for _, m := range models[1:] {
		var err error
		out, err = Compose(out, m)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
