package core

import (
	"fmt"

	"somrm/internal/ctmc"
	"somrm/internal/sparse"
)

// Compose builds the joint model of two *independent* second-order Markov
// reward models whose rewards accumulate additively: the structure process
// is the product chain (generator = Kronecker sum Q1 (+) Q2), the drift
// and variance of a joint state are the sums of the component drifts and
// variances (independent Brownian motions add their first two cumulants),
// and the initial distribution is the product distribution.
//
// The accumulated reward of the composed model is B1(t) + B2(t) with
// independent components, so its moments are the binomial convolution of
// the component moments — which the test suite uses as an exact oracle.
// The paper's ON-OFF multiplexer is a composition of N independent
// single-source models (modulo the shared capacity offset).
//
// Impulse-reward models are rejected: a joint transition never fires both
// components at once, but the bookkeeping of per-component impulses on the
// product chain is not implemented.
func Compose(a, b *Model) (*Model, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("%w: nil component model", ErrBadModel)
	}
	if a.HasImpulses() || b.HasImpulses() {
		return nil, fmt.Errorf("%w: composition of impulse-reward models is not supported", ErrBadModel)
	}
	na, nb := a.N(), b.N()
	n := na * nb
	idx := func(i, j int) int { return i*nb + j }

	builder := sparse.NewBuilder(n, n)
	qa := a.gen.Matrix()
	qb := b.gen.Matrix()
	var addErr error
	add := func(r, c int, v float64) {
		if addErr == nil && v != 0 {
			addErr = builder.Add(r, c, v)
		}
	}
	for i := 0; i < na; i++ {
		for j := 0; j < nb; j++ {
			row := idx(i, j)
			// Component A moves: (i,j) -> (k,j) at rate qa[i][k].
			qa.Range(i, func(k int, v float64) {
				add(row, idx(k, j), v)
			})
			// Component B moves: (i,j) -> (i,l) at rate qb[j][l]. The two
			// diagonal contributions sum to the joint exit rate.
			qb.Range(j, func(l int, v float64) {
				add(row, idx(i, l), v)
			})
		}
	}
	if addErr != nil {
		return nil, fmt.Errorf("core: compose: %w", addErr)
	}
	gen, err := ctmc.NewGenerator(builder.Build())
	if err != nil {
		return nil, fmt.Errorf("core: compose: %w", err)
	}

	rates := make([]float64, n)
	vars := make([]float64, n)
	initial := make([]float64, n)
	for i := 0; i < na; i++ {
		for j := 0; j < nb; j++ {
			k := idx(i, j)
			rates[k] = a.rates[i] + b.rates[j]
			vars[k] = a.vars[i] + b.vars[j]
			initial[k] = a.initial[i] * b.initial[j]
		}
	}
	return New(gen, rates, vars, initial)
}

// ComposeAll folds Compose over a list of independent models (at least
// one). State counts multiply, so this is intended for small components.
func ComposeAll(models ...*Model) (*Model, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("%w: no models to compose", ErrBadModel)
	}
	out := models[0]
	if out == nil {
		return nil, fmt.Errorf("%w: nil component model", ErrBadModel)
	}
	for _, m := range models[1:] {
		var err error
		out, err = Compose(out, m)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
