package core

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrCheckpoint classifies every checkpoint failure: corrupt or truncated
// snapshots, version mismatches, and resume attempts against a request
// whose solver parameters do not match the captured state.
var ErrCheckpoint = errors.New("core: invalid checkpoint")

// checkpointMagic versions the binary snapshot layout. Bump the trailing
// digit on any incompatible change; decode rejects unknown versions.
const checkpointMagic = "SOMRMCK1"

// Checkpoint is a versioned snapshot of an interrupted randomization
// sweep: the moment-state vectors U^(j)(Completed), the per-time-point
// Poisson accumulations applied so far, and the solver parameters that
// identify the run. A solve resumed from a checkpoint (Options.Resume)
// replays iterations Completed+1..GMax and is bitwise identical to the
// uninterrupted solve — the per-iteration floating-point work depends
// only on the incoming state and that iteration's Poisson weights, for
// every storage format and worker count.
type Checkpoint struct {
	// Order and N are the moment order and state count of the run.
	Order, N int
	// Completed is the number of fully applied iterations: State holds
	// U^(j)(Completed) and Acc carries every accumulation of iterations
	// k <= Completed. GMax is the run's truncation point.
	Completed, GMax int
	// Q, D, Shift, Epsilon pin the uniformization of the captured run;
	// resume validates them bitwise against the recomputed values.
	Q, D, Shift, Epsilon float64
	// Times is the solve's time grid (determines the Poisson plans).
	Times []float64
	// Format and Workers record the storage format and team size of the
	// interrupted run. Informational: the bitwise contract holds across
	// formats and worker counts, so resume does not require them to match.
	Format  string
	Workers int
	// State[j][i] = U^(j)(Completed) for state i.
	State [][]float64
	// Acc[idx][j][i] is time point idx's accumulator; nil for t == 0
	// entries (which never accumulate).
	Acc [][][]float64
}

// Progress returns the fraction of sweep iterations already applied.
func (c *Checkpoint) Progress() float64 {
	if c.GMax <= 0 {
		return 0
	}
	return float64(c.Completed) / float64(c.GMax)
}

// Encode serializes the checkpoint into a self-verifying binary blob:
// a magic/version header, the solver parameters, the raw float64 state
// (exact bit patterns, no text round-trip), and a SHA-256 trailer over
// everything preceding it.
func (c *Checkpoint) Encode() []byte {
	perVec := 8 * c.N
	size := len(checkpointMagic) + 6*4 + 4*8 + 8*len(c.Times) +
		(c.Order+1)*perVec + len(c.Times) // presence bytes
	for _, acc := range c.Acc {
		if acc != nil {
			size += (c.Order + 1) * perVec
		}
	}
	size += sha256.Size
	buf := make([]byte, 0, size)
	buf = append(buf, checkpointMagic...)
	for _, v := range []int{c.Order, c.N, c.Completed, c.GMax, len(c.Times), c.Workers} {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	for _, v := range []float64{c.Q, c.D, c.Shift, c.Epsilon} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for _, t := range c.Times {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(t))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Format)))
	buf = append(buf, c.Format...)
	for j := 0; j <= c.Order; j++ {
		for _, v := range c.State[j] {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	for idx := range c.Times {
		var acc [][]float64
		if idx < len(c.Acc) {
			acc = c.Acc[idx]
		}
		if acc == nil {
			buf = append(buf, 0)
			continue
		}
		buf = append(buf, 1)
		for j := 0; j <= c.Order; j++ {
			for _, v := range acc[j] {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
			}
		}
	}
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...)
}

// DecodeCheckpoint parses and verifies a blob produced by Encode. Any
// truncation, bit flip, or version mismatch yields an error wrapping
// ErrCheckpoint.
func DecodeCheckpoint(blob []byte) (*Checkpoint, error) {
	if len(blob) < len(checkpointMagic)+sha256.Size {
		return nil, fmt.Errorf("%w: %d-byte blob too short", ErrCheckpoint, len(blob))
	}
	if string(blob[:len(checkpointMagic)]) != checkpointMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCheckpoint, blob[:len(checkpointMagic)])
	}
	body, trailer := blob[:len(blob)-sha256.Size], blob[len(blob)-sha256.Size:]
	if sum := sha256.Sum256(body); string(sum[:]) != string(trailer) {
		return nil, fmt.Errorf("%w: digest mismatch", ErrCheckpoint)
	}
	p := body[len(checkpointMagic):]
	need := func(k int) ([]byte, error) {
		if len(p) < k {
			return nil, fmt.Errorf("%w: truncated body", ErrCheckpoint)
		}
		out := p[:k]
		p = p[k:]
		return out, nil
	}
	readU32 := func() (int, error) {
		b, err := need(4)
		if err != nil {
			return 0, err
		}
		return int(binary.LittleEndian.Uint32(b)), nil
	}
	readF64 := func() (float64, error) {
		b, err := need(8)
		if err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
	}
	c := &Checkpoint{}
	ints := []*int{&c.Order, &c.N, &c.Completed, &c.GMax}
	var nTimes int
	ints = append(ints, &nTimes, &c.Workers)
	for _, dst := range ints {
		v, err := readU32()
		if err != nil {
			return nil, err
		}
		*dst = v
	}
	const maxDim = 1 << 28 // refuse absurd allocations from corrupt headers
	if c.Order < 0 || c.Order > 64 || c.N <= 0 || c.N > maxDim || nTimes < 0 || nTimes > maxDim ||
		c.Completed < 0 || c.GMax < 0 {
		return nil, fmt.Errorf("%w: implausible header (order=%d n=%d times=%d)", ErrCheckpoint, c.Order, c.N, nTimes)
	}
	for _, dst := range []*float64{&c.Q, &c.D, &c.Shift, &c.Epsilon} {
		v, err := readF64()
		if err != nil {
			return nil, err
		}
		*dst = v
	}
	c.Times = make([]float64, nTimes)
	for i := range c.Times {
		v, err := readF64()
		if err != nil {
			return nil, err
		}
		c.Times[i] = v
	}
	fl, err := readU32()
	if err != nil {
		return nil, err
	}
	if fl < 0 || fl > 64 {
		return nil, fmt.Errorf("%w: format length %d", ErrCheckpoint, fl)
	}
	fb, err := need(fl)
	if err != nil {
		return nil, err
	}
	c.Format = string(fb)
	readVecs := func() ([][]float64, error) {
		vs := make([][]float64, c.Order+1)
		for j := range vs {
			vs[j] = make([]float64, c.N)
			for i := range vs[j] {
				v, err := readF64()
				if err != nil {
					return nil, err
				}
				vs[j][i] = v
			}
		}
		return vs, nil
	}
	if c.State, err = readVecs(); err != nil {
		return nil, err
	}
	c.Acc = make([][][]float64, nTimes)
	for idx := range c.Acc {
		pb, err := need(1)
		if err != nil {
			return nil, err
		}
		if pb[0] == 0 {
			continue
		}
		if c.Acc[idx], err = readVecs(); err != nil {
			return nil, err
		}
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCheckpoint, len(p))
	}
	return c, nil
}

// matches validates the checkpoint against the solver parameters of the
// request attempting to resume it. Every float comparison is bitwise: a
// resume is only meaningful when it replays the exact run that was
// interrupted.
func (c *Checkpoint) matches(order, n, gMax int, q, d, shift, epsilon float64, times []float64) error {
	fail := func(what string) error {
		return fmt.Errorf("%w: %s does not match the interrupted solve", ErrCheckpoint, what)
	}
	if c.Order != order {
		return fail("moment order")
	}
	if c.N != n {
		return fail("state count")
	}
	if c.GMax != gMax {
		return fail("truncation point")
	}
	if c.Completed < 0 || c.Completed >= gMax {
		return fmt.Errorf("%w: completed %d outside sweep 1..%d", ErrCheckpoint, c.Completed, gMax)
	}
	same := func(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }
	if !same(c.Q, q) || !same(c.D, d) || !same(c.Shift, shift) {
		return fail("uniformization")
	}
	if !same(c.Epsilon, epsilon) {
		return fail("epsilon")
	}
	if len(c.Times) != len(times) {
		return fail("time grid")
	}
	for i := range times {
		if !same(c.Times[i], times[i]) {
			return fail("time grid")
		}
	}
	if len(c.State) != order+1 {
		return fail("state vectors")
	}
	for j := range c.State {
		if len(c.State[j]) != n {
			return fail("state vectors")
		}
	}
	return nil
}

// Interrupted is returned by the solver when a context cancellation cut a
// checkpoint-enabled sweep short: it carries the captured snapshot and
// unwraps to the context's error, so callers mapping context.DeadlineExceeded
// keep working while checkpoint-aware callers can offer a resume.
type Interrupted struct {
	// Checkpoint is the snapshot captured at the interruption barrier.
	Checkpoint *Checkpoint
	// Err is the context error that stopped the sweep.
	Err error
}

func (e *Interrupted) Error() string {
	return fmt.Sprintf("core: solve interrupted after %d/%d iterations: %v",
		e.Checkpoint.Completed, e.Checkpoint.GMax, e.Err)
}

func (e *Interrupted) Unwrap() error { return e.Err }
