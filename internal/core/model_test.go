package core

import (
	"errors"
	"math"
	"testing"

	"somrm/internal/ctmc"
	"somrm/internal/sparse"
)

// cyclic2 returns a 2-state generator with rates a (0->1) and b (1->0).
func cyclic2(t *testing.T, a, b float64) *ctmc.Generator {
	t.Helper()
	g, err := ctmc.NewGeneratorFromDense(2, []float64{-a, a, b, -b})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustModel(t *testing.T, gen *ctmc.Generator, r, s, pi []float64) *Model {
	t.Helper()
	m, err := New(gen, r, s, pi)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	gen := cyclic2(t, 1, 1)
	valid := func() ([]float64, []float64, []float64) {
		return []float64{1, 2}, []float64{0, 1}, []float64{1, 0}
	}

	r, s, pi := valid()
	if _, err := New(nil, r, s, pi); !errors.Is(err, ErrBadModel) {
		t.Errorf("nil generator: %v", err)
	}
	if _, err := New(gen, []float64{1}, s, pi); !errors.Is(err, ErrBadModel) {
		t.Errorf("short rates: %v", err)
	}
	if _, err := New(gen, r, []float64{1}, pi); !errors.Is(err, ErrBadModel) {
		t.Errorf("short variances: %v", err)
	}
	if _, err := New(gen, []float64{math.NaN(), 0}, s, pi); !errors.Is(err, ErrBadModel) {
		t.Errorf("NaN rate: %v", err)
	}
	if _, err := New(gen, []float64{math.Inf(1), 0}, s, pi); !errors.Is(err, ErrBadModel) {
		t.Errorf("Inf rate: %v", err)
	}
	if _, err := New(gen, r, []float64{-1, 0}, pi); !errors.Is(err, ErrBadModel) {
		t.Errorf("negative variance: %v", err)
	}
	if _, err := New(gen, r, s, []float64{0.5, 0.6}); !errors.Is(err, ErrBadModel) {
		t.Errorf("bad initial: %v", err)
	}
	if m, err := New(gen, r, s, pi); err != nil || m.N() != 2 {
		t.Errorf("valid model rejected: %v", err)
	}
}

func TestModelAccessorsCopy(t *testing.T) {
	gen := cyclic2(t, 1, 1)
	r := []float64{1, 2}
	m := mustModel(t, gen, r, []float64{0.5, 0.5}, []float64{1, 0})
	r[0] = 99
	if m.Rates()[0] != 1 {
		t.Error("New shares caller slice")
	}
	got := m.Rates()
	got[1] = 77
	if m.Rates()[1] != 2 {
		t.Error("Rates returns shared storage")
	}
	v := m.Variances()
	v[0] = 9
	if m.Variances()[0] != 0.5 {
		t.Error("Variances returns shared storage")
	}
	pi := m.Initial()
	pi[0] = 0
	if m.Initial()[0] != 1 {
		t.Error("Initial returns shared storage")
	}
}

func TestIsFirstOrder(t *testing.T) {
	gen := cyclic2(t, 1, 1)
	first := mustModel(t, gen, []float64{1, 2}, []float64{0, 0}, []float64{1, 0})
	if !first.IsFirstOrder() {
		t.Error("zero-variance model not first order")
	}
	second := mustModel(t, gen, []float64{1, 2}, []float64{0, 0.1}, []float64{1, 0})
	if second.IsFirstOrder() {
		t.Error("second-order model reported first order")
	}
	fo, err := NewFirstOrder(gen, []float64{1, 2}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !fo.IsFirstOrder() {
		t.Error("NewFirstOrder not first order")
	}
	if _, err := NewFirstOrder(nil, nil, nil); !errors.Is(err, ErrBadModel) {
		t.Errorf("NewFirstOrder nil gen: %v", err)
	}
}

func TestWithInitial(t *testing.T) {
	gen := cyclic2(t, 1, 1)
	m := mustModel(t, gen, []float64{1, 2}, []float64{0, 0}, []float64{1, 0})
	m2, err := m.WithInitial([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if m.Initial()[0] != 1 {
		t.Error("WithInitial mutated the receiver")
	}
	if m2.Initial()[0] != 0.5 {
		t.Error("WithInitial did not apply")
	}
	if _, err := m.WithInitial([]float64{2, -1}); !errors.Is(err, ErrBadModel) {
		t.Errorf("bad initial: %v", err)
	}
}

func impulseMatrix(t *testing.T, n int, entries ...[3]float64) *sparse.CSR {
	t.Helper()
	b := sparse.NewBuilder(n, n)
	for _, e := range entries {
		if err := b.Add(int(e[0]), int(e[1]), e[2]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestWithImpulsesValidation(t *testing.T) {
	gen := cyclic2(t, 1, 2)
	m := mustModel(t, gen, []float64{1, 2}, []float64{0.1, 0.2}, []float64{1, 0})

	if _, err := m.WithImpulses(impulseMatrix(t, 2, [3]float64{0, 0, 1})); !errors.Is(err, ErrBadModel) {
		t.Errorf("diagonal impulse: %v", err)
	}
	if _, err := m.WithImpulses(impulseMatrix(t, 2, [3]float64{0, 1, -1})); !errors.Is(err, ErrBadModel) {
		t.Errorf("negative impulse: %v", err)
	}
	if _, err := m.WithImpulses(impulseMatrix(t, 3, [3]float64{0, 1, 1})); !errors.Is(err, ErrBadModel) {
		t.Errorf("wrong shape: %v", err)
	}

	// Impulse on a transition that does not exist in Q.
	gen3, err := ctmc.NewGeneratorFromRates(3, func(i, j int) float64 {
		if j == (i+1)%3 {
			return 1
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	m3 := mustModel(t, gen3, []float64{1, 1, 1}, []float64{0, 0, 0}, []float64{1, 0, 0})
	if _, err := m3.WithImpulses(impulseMatrix(t, 3, [3]float64{0, 2, 1})); !errors.Is(err, ErrBadModel) {
		t.Errorf("impulse on absent transition: %v", err)
	}

	// Valid impulse does not mutate the original.
	mi, err := m.WithImpulses(impulseMatrix(t, 2, [3]float64{0, 1, 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	if m.HasImpulses() {
		t.Error("WithImpulses mutated receiver")
	}
	if !mi.HasImpulses() || mi.Impulses() == nil {
		t.Error("impulses not attached")
	}
}
