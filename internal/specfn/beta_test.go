package specfn

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestBetaIncKnownValues(t *testing.T) {
	cases := []struct{ a, b, x, want float64 }{
		{1, 1, 0.3, 0.3},       // uniform
		{2, 1, 0.5, 0.25},      // x^2
		{1, 2, 0.5, 0.75},      // 1-(1-x)^2
		{2, 2, 0.5, 0.5},       // symmetric
		{5, 3, 0.7, 0.6470695}, // = P(Bin(7, 0.7) >= 5), the binomial identity
		{0.5, 0.5, 0.5, 0.5},   // arcsine, symmetric
		{10, 10, 0.5, 0.5},
	}
	for _, c := range cases {
		got, err := BetaInc(c.a, c.b, c.x)
		if err != nil {
			t.Fatalf("BetaInc(%g,%g,%g): %v", c.a, c.b, c.x, err)
		}
		if math.Abs(got-c.want) > 1e-10 {
			t.Errorf("BetaInc(%g,%g,%g) = %.12g, want %.12g", c.a, c.b, c.x, got, c.want)
		}
	}
}

func TestBetaIncEdges(t *testing.T) {
	if got, err := BetaInc(2, 3, 0); err != nil || got != 0 {
		t.Errorf("x=0: %g %v", got, err)
	}
	if got, err := BetaInc(2, 3, 1); err != nil || got != 1 {
		t.Errorf("x=1: %g %v", got, err)
	}
	if _, err := BetaInc(0, 1, 0.5); !errors.Is(err, ErrBadParameter) {
		t.Errorf("a=0: %v", err)
	}
	if _, err := BetaInc(1, -1, 0.5); !errors.Is(err, ErrBadParameter) {
		t.Errorf("b<0: %v", err)
	}
	if _, err := BetaInc(1, 1, 1.5); !errors.Is(err, ErrBadParameter) {
		t.Errorf("x>1: %v", err)
	}
	if _, err := BetaInc(math.NaN(), 1, 0.5); !errors.Is(err, ErrBadParameter) {
		t.Errorf("NaN: %v", err)
	}
}

// Property: symmetry I_x(a,b) = 1 - I_{1-x}(b,a).
func TestBetaIncSymmetryProperty(t *testing.T) {
	f := func(aRaw, bRaw, xRaw uint16) bool {
		a := 0.5 + float64(aRaw%200)/10
		b := 0.5 + float64(bRaw%200)/10
		x := float64(xRaw%1000) / 1000
		i1, err1 := BetaInc(a, b, x)
		i2, err2 := BetaInc(b, a, 1-x)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(i1-(1-i2)) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: monotone non-decreasing in x.
func TestBetaIncMonotoneProperty(t *testing.T) {
	f := func(aRaw, bRaw, xRaw uint16) bool {
		a := 0.5 + float64(aRaw%100)/7
		b := 0.5 + float64(bRaw%100)/7
		x := float64(xRaw%999) / 1000
		i1, err1 := BetaInc(a, b, x)
		i2, err2 := BetaInc(a, b, x+1e-3)
		if err1 != nil || err2 != nil {
			return false
		}
		return i2 >= i1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLogBeta(t *testing.T) {
	// B(2,3) = 1/12.
	if got := LogBeta(2, 3); math.Abs(got-math.Log(1.0/12)) > 1e-14 {
		t.Errorf("LogBeta(2,3) = %g", got)
	}
	// B(0.5,0.5) = pi.
	if got := LogBeta(0.5, 0.5); math.Abs(got-math.Log(math.Pi)) > 1e-14 {
		t.Errorf("LogBeta(.5,.5) = %g", got)
	}
}

func TestBetaCDFSpacings(t *testing.T) {
	// j of k spacings: degenerate conventions.
	if got, err := BetaCDFSpacings(0, 5, 0.3); err != nil || got != 1 {
		t.Errorf("j=0: %g %v", got, err)
	}
	if got, err := BetaCDFSpacings(5, 5, 0.99); err != nil || got != 0 {
		t.Errorf("j=k: %g %v", got, err)
	}
	if got, err := BetaCDFSpacings(5, 5, 1); err != nil || got != 1 {
		t.Errorf("x=1: %g %v", got, err)
	}
	if got, err := BetaCDFSpacings(2, 4, -0.1); err != nil || got != 0 {
		t.Errorf("x<0: %g %v", got, err)
	}
	// Interior: Beta(1, k-1): P(S <= x) = 1-(1-x)^{k-1}.
	got, err := BetaCDFSpacings(1, 4, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Pow(0.75, 3)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Beta(1,3) cdf = %.14g, want %.14g", got, want)
	}
	if _, err := BetaCDFSpacings(3, 2, 0.5); !errors.Is(err, ErrBadParameter) {
		t.Errorf("j>k: %v", err)
	}
	if _, err := BetaCDFSpacings(-1, 2, 0.5); !errors.Is(err, ErrBadParameter) {
		t.Errorf("j<0: %v", err)
	}
}
