package specfn

import (
	"math"
	"testing"
)

// FuzzBetaInc checks the invariants of the incomplete beta over arbitrary
// inputs: result in [0, 1] (when defined), the reflection symmetry, and
// monotonicity at a fixed step.
func FuzzBetaInc(f *testing.F) {
	f.Add(1.0, 1.0, 0.5)
	f.Add(5.0, 3.0, 0.7)
	f.Add(0.5, 0.5, 0.1)
	f.Add(30.0, 2.0, 0.99)
	f.Fuzz(func(t *testing.T, a, b, x float64) {
		// Map the fuzz inputs into the valid domain.
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) || math.IsNaN(x) || math.IsInf(x, 0) {
			return
		}
		a = 0.1 + math.Abs(math.Mod(a, 50))
		b = 0.1 + math.Abs(math.Mod(b, 50))
		x = math.Abs(math.Mod(x, 1))

		v, err := BetaInc(a, b, x)
		if err != nil {
			t.Fatalf("BetaInc(%g,%g,%g): %v", a, b, x, err)
		}
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("BetaInc(%g,%g,%g) = %g out of range", a, b, x, v)
		}
		sym, err := BetaInc(b, a, 1-x)
		if err != nil {
			t.Fatalf("symmetric eval: %v", err)
		}
		if math.Abs(v-(1-sym)) > 1e-9 {
			t.Fatalf("symmetry violated: %g vs %g", v, 1-sym)
		}
	})
}

// FuzzBetaCDFSpacings ensures the degenerate conventions and range hold
// for arbitrary (j, k, x).
func FuzzBetaCDFSpacings(f *testing.F) {
	f.Add(2, 5, 0.3)
	f.Add(0, 1, 0.0)
	f.Fuzz(func(t *testing.T, j, k int, x float64) {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return
		}
		k = 1 + abs(k)%60
		j = abs(j) % (k + 1)
		x = math.Mod(x, 2)
		v, err := BetaCDFSpacings(j, k, x)
		if err != nil {
			t.Fatalf("BetaCDFSpacings(%d,%d,%g): %v", j, k, x, err)
		}
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("out of range: %g", v)
		}
	})
}

func abs(v int) int {
	if v < 0 {
		// Guard the minimum int.
		if v == math.MinInt {
			return math.MaxInt
		}
		return -v
	}
	return v
}
