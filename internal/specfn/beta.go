// Package specfn provides the special functions needed by the occupation
// time analysis: the (regularized) incomplete beta function, evaluated by
// the standard continued-fraction expansion (Lentz's method).
package specfn

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadParameter is returned for out-of-domain arguments.
var ErrBadParameter = errors.New("specfn: invalid parameter")

// LogBeta returns ln B(a, b) = lnGamma(a) + lnGamma(b) - lnGamma(a+b).
func LogBeta(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// BetaInc returns the regularized incomplete beta function I_x(a, b) =
// P(X <= x) for X ~ Beta(a, b), for a, b > 0 and x in [0, 1].
func BetaInc(a, b, x float64) (float64, error) {
	switch {
	case math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(x):
		return 0, fmt.Errorf("%w: NaN argument", ErrBadParameter)
	case a <= 0 || b <= 0:
		return 0, fmt.Errorf("%w: a=%g b=%g", ErrBadParameter, a, b)
	case x < 0 || x > 1:
		return 0, fmt.Errorf("%w: x=%g outside [0,1]", ErrBadParameter, x)
	case x == 0:
		return 0, nil
	case x == 1:
		return 1, nil
	}
	// Front factor x^a (1-x)^b / (a B(a,b)).
	logFront := a*math.Log(x) + b*math.Log1p(-x) - LogBeta(a, b)
	// Use the continued fraction for the region of fast convergence and
	// the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) otherwise.
	if x < (a+1)/(a+b+2) {
		cf, err := betaCF(a, b, x)
		if err != nil {
			return 0, err
		}
		return math.Exp(logFront) * cf / a, nil
	}
	cf, err := betaCF(b, a, 1-x)
	if err != nil {
		return 0, err
	}
	logFrontSym := b*math.Log1p(-x) + a*math.Log(x) - LogBeta(a, b)
	return 1 - math.Exp(logFrontSym)*cf/b, nil
}

// betaCF evaluates the continued fraction of the incomplete beta function
// with the modified Lentz algorithm.
func betaCF(a, b, x float64) (float64, error) {
	const (
		maxIter = 500
		eps     = 1e-15
		tiny    = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		// Even step.
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			return h, nil
		}
	}
	return 0, fmt.Errorf("%w: incomplete beta continued fraction did not converge (a=%g b=%g x=%g)", ErrBadParameter, a, b, x)
}

// BetaCDFSpacings returns P(S <= x) where S is the sum of j out of k
// exchangeable uniform spacings on [0, 1], i.e. S ~ Beta(j, k-j) for
// 0 < j < k, with the degenerate conventions S = 0 for j = 0 and S = 1
// for j = k. This is the conditional law of the fraction of time spent in
// a tagged subset given the uniformized jump structure.
func BetaCDFSpacings(j, k int, x float64) (float64, error) {
	switch {
	case k < 1 || j < 0 || j > k:
		return 0, fmt.Errorf("%w: spacings j=%d k=%d", ErrBadParameter, j, k)
	case x < 0:
		return 0, nil
	case x >= 1:
		return 1, nil
	case j == 0:
		return 1, nil // S = 0 <= x for any x >= 0
	case j == k:
		return 0, nil // S = 1 > x for x < 1
	}
	return BetaInc(float64(j), float64(k-j), x)
}
