package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func mustFromRows(t *testing.T, rows [][]float64) *Dense {
	t.Helper()
	m, err := FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFromRowsRagged(t *testing.T) {
	_, err := FromRows([][]float64{{1, 2}, {3}})
	if !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("ragged rows: err = %v, want ErrDimensionMismatch", err)
	}
}

func TestIdentityMatVec(t *testing.T) {
	id := Identity(3)
	x := Vector{1, 2, 3}
	y, err := id.MatVec(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if y[i] != x[i] {
			t.Errorf("I*x [%d] = %g, want %g", i, y[i], x[i])
		}
	}
}

func TestMatVecKnown(t *testing.T) {
	m := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	y, err := m.MatVec(Vector{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 17 || y[1] != 39 {
		t.Errorf("MatVec = %v, want [17 39]", y)
	}
	if _, err := m.MatVec(Vector{1}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("MatVec size mismatch: err = %v", err)
	}
}

func TestVecMatKnown(t *testing.T) {
	m := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	y, err := m.VecMat(Vector{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 23 || y[1] != 34 {
		t.Errorf("VecMat = %v, want [23 34]", y)
	}
}

func TestMulAssociatesWithMatVec(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewDense(4, 3)
	b := NewDense(3, 5)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	x := NewVector(5)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ab, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	lhs, err := ab.MatVec(x)
	if err != nil {
		t.Fatal(err)
	}
	bx, err := b.MatVec(x)
	if err != nil {
		t.Fatal(err)
	}
	rhs, err := a.MatVec(bx)
	if err != nil {
		t.Fatal(err)
	}
	for i := range lhs {
		if math.Abs(lhs[i]-rhs[i]) > 1e-12 {
			t.Errorf("(AB)x vs A(Bx) at %d: %g vs %g", i, lhs[i], rhs[i])
		}
	}
}

func TestTranspose(t *testing.T) {
	m := mustFromRows(t, [][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.Transpose()
	if mt.Rows != 3 || mt.Cols != 2 {
		t.Fatalf("transpose shape %dx%d, want 3x2", mt.Rows, mt.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Errorf("transpose (%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestAddScaleMaxAbsDiff(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	b := mustFromRows(t, [][]float64{{4, 3}, {2, 1}})
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range sum.Data {
		if v != 5 {
			t.Fatalf("Add = %v, want all 5", sum.Data)
		}
	}
	d, err := a.MaxAbsDiff(b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 3 {
		t.Errorf("MaxAbsDiff = %g, want 3", d)
	}
	a.Scale(2)
	if a.At(1, 1) != 8 {
		t.Errorf("Scale: At(1,1) = %g, want 8", a.At(1, 1))
	}
}

func TestRowView(t *testing.T) {
	m := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	r := m.Row(1)
	r[0] = 99
	if m.At(1, 0) != 99 {
		t.Error("Row should be a shared view")
	}
}
