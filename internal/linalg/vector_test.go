package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOnes(t *testing.T) {
	v := Ones(4)
	if len(v) != 4 {
		t.Fatalf("len = %d, want 4", len(v))
	}
	for i, x := range v {
		if x != 1 {
			t.Errorf("v[%d] = %g, want 1", i, x)
		}
	}
}

func TestVectorCloneIndependent(t *testing.T) {
	v := Vector{1, 2, 3}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Errorf("clone aliases original: v[0] = %g", v[0])
	}
}

func TestVectorScaleAndScaled(t *testing.T) {
	v := Vector{1, -2, 4}
	got := v.Scaled(0.5)
	want := Vector{0.5, -1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Scaled[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	v.Scale(2)
	want = Vector{2, -4, 8}
	for i := range want {
		if v[i] != want[i] {
			t.Errorf("Scale[%d] = %g, want %g", i, v[i], want[i])
		}
	}
}

func TestAddScaled(t *testing.T) {
	v := Vector{1, 2}
	if err := v.AddScaled(3, Vector{10, 20}); err != nil {
		t.Fatal(err)
	}
	if v[0] != 31 || v[1] != 62 {
		t.Errorf("AddScaled = %v, want [31 62]", v)
	}
	if err := v.AddScaled(1, Vector{1}); err == nil {
		t.Error("AddScaled with mismatched length: want error")
	}
}

func TestDot(t *testing.T) {
	got, err := Dot(Vector{1, 2, 3}, Vector{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
	if _, err := Dot(Vector{1}, Vector{1, 2}); err == nil {
		t.Error("Dot with mismatched length: want error")
	}
}

func TestDotCompensated(t *testing.T) {
	// A sum that plain accumulation gets wrong: many tiny values plus a
	// large one that cancels.
	n := 1 << 20
	v := make(Vector, n+2)
	w := make(Vector, n+2)
	for i := 0; i < n; i++ {
		v[i] = 1e-8
		w[i] = 1
	}
	v[n], w[n] = 1e8, 1
	v[n+1], w[n+1] = -1e8, 1
	got, err := Dot(v, w)
	if err != nil {
		t.Fatal(err)
	}
	want := 1e-8 * float64(n)
	if math.Abs(got-want) > 1e-12*want {
		t.Errorf("compensated Dot = %.15g, want %.15g", got, want)
	}
}

func TestNorms(t *testing.T) {
	v := Vector{3, -4}
	if got := v.Norm2(); math.Abs(got-5) > 1e-15 {
		t.Errorf("Norm2 = %g, want 5", got)
	}
	if got := v.MaxAbs(); got != 4 {
		t.Errorf("MaxAbs = %g, want 4", got)
	}
	var empty Vector
	if got := empty.Norm2(); got != 0 {
		t.Errorf("empty Norm2 = %g, want 0", got)
	}
}

func TestNorm2Overflow(t *testing.T) {
	v := Vector{1e200, 1e200}
	got := v.Norm2()
	want := 1e200 * math.Sqrt2
	if math.IsInf(got, 0) || math.Abs(got-want) > 1e-10*want {
		t.Errorf("Norm2 overflow guard: got %g, want %g", got, want)
	}
}

func TestMinMax(t *testing.T) {
	v := Vector{2, -7, 5}
	if got := v.Min(); got != -7 {
		t.Errorf("Min = %g, want -7", got)
	}
	if got := v.Max(); got != 5 {
		t.Errorf("Max = %g, want 5", got)
	}
}

func TestIsFiniteNonNegative(t *testing.T) {
	if !(Vector{0, 1}).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if (Vector{math.NaN()}).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if (Vector{math.Inf(1)}).IsFinite() {
		t.Error("Inf vector reported finite")
	}
	if !(Vector{0, 2}).NonNegative() {
		t.Error("non-negative vector reported negative")
	}
	if (Vector{-1e-300}).NonNegative() {
		t.Error("negative vector reported non-negative")
	}
}

func TestSumMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		v := Vector(xs)
		for i := range v {
			if math.IsNaN(v[i]) || math.IsInf(v[i], 0) {
				v[i] = 0
			}
			// Keep magnitudes sane so naive summation is a valid oracle.
			v[i] = math.Mod(v[i], 1e6)
		}
		var naive float64
		for _, x := range v {
			naive += x
		}
		got := v.Sum()
		scale := math.Max(1, math.Abs(naive))
		return math.Abs(got-naive) <= 1e-9*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDotLinearityProperty(t *testing.T) {
	f := func(a float64, xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		a = math.Mod(a, 100)
		v := make(Vector, len(xs))
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			v[i] = math.Mod(x, 1e3)
		}
		w := Ones(len(v))
		d1, err1 := Dot(v.Scaled(a), w)
		d2, err2 := Dot(v, w)
		if err1 != nil || err2 != nil {
			return false
		}
		scale := math.Max(1, math.Abs(a*d2))
		return math.Abs(d1-a*d2) <= 1e-9*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
