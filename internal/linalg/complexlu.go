package linalg

import (
	"fmt"
	"math/cmplx"
)

// CDense is a row-major dense complex matrix. It backs the Laplace-domain
// solves of eq. (5) in the paper, where the resolvent
// [sI − Q + vR − ½v²S] is complex for complex s, v.
type CDense struct {
	Rows, Cols int
	Data       []complex128
}

// NewCDense returns a zero complex matrix with the given shape.
func NewCDense(rows, cols int) *CDense {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &CDense{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// At returns element (i, j).
func (m *CDense) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *CDense) Set(i, j int, x complex128) { m.Data[i*m.Cols+j] = x }

// Clone returns a deep copy of m.
func (m *CDense) Clone() *CDense {
	out := NewCDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Mul returns m * b.
func (m *CDense) Mul(b *CDense) (*CDense, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("%w: complex mul %dx%d by %dx%d", ErrDimensionMismatch, m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewCDense(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.Data[i*m.Cols+k]
			if a == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out, nil
}

// Scale multiplies every element by a in place and returns m.
func (m *CDense) Scale(a complex128) *CDense {
	for i := range m.Data {
		m.Data[i] *= a
	}
	return m
}

// CIdentity returns the n x n complex identity matrix.
func CIdentity(n int) *CDense {
	m := NewCDense(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// MatVec computes y = m * x for a complex vector.
func (m *CDense) MatVec(x []complex128) ([]complex128, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("%w: complex matvec %dx%d by %d", ErrDimensionMismatch, m.Rows, m.Cols, len(x))
	}
	y := make([]complex128, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var sum complex128
		for j, a := range row {
			sum += a * x[j]
		}
		y[i] = sum
	}
	return y, nil
}

// MaxAbs returns the largest element modulus.
func (m *CDense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := cmplx.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// CLU holds a complex LU factorization with partial pivoting.
type CLU struct {
	lu  *CDense
	piv []int
}

// FactorCLU computes the LU factorization of the square complex matrix a
// with partial pivoting (by modulus). The input is not modified.
func FactorCLU(a *CDense) (*CLU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: complex LU of %dx%d", ErrDimensionMismatch, a.Rows, a.Cols)
	}
	n := a.Rows
	f := &CLU{lu: a.Clone(), piv: make([]int, n)}
	lu := f.lu.Data
	for i := range f.piv {
		f.piv[i] = i
	}
	for k := 0; k < n; k++ {
		p := k
		maxv := cmplx.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := cmplx.Abs(lu[i*n+k]); v > maxv {
				maxv = v
				p = i
			}
		}
		if maxv == 0 {
			return nil, fmt.Errorf("%w: zero pivot at column %d", ErrSingular, k)
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu[k*n+j], lu[p*n+j] = lu[p*n+j], lu[k*n+j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
		}
		pivot := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu[i*n+k] / pivot
			lu[i*n+k] = m
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu[i*n+j] -= m * lu[k*n+j]
			}
		}
	}
	return f, nil
}

// Solve solves A x = b for a complex right-hand side.
func (f *CLU) Solve(b []complex128) ([]complex128, error) {
	n := f.lu.Rows
	if len(b) != n {
		return nil, fmt.Errorf("%w: complex solve with rhs of %d, want %d", ErrDimensionMismatch, len(b), n)
	}
	lu := f.lu.Data
	x := make([]complex128, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	for i := 1; i < n; i++ {
		var s complex128
		for j := 0; j < i; j++ {
			s += lu[i*n+j] * x[j]
		}
		x[i] -= s
	}
	for i := n - 1; i >= 0; i-- {
		var s complex128
		for j := i + 1; j < n; j++ {
			s += lu[i*n+j] * x[j]
		}
		x[i] = (x[i] - s) / lu[i*n+i]
	}
	return x, nil
}

// SolveComplexLinear factors a and solves a x = b in one call.
func SolveComplexLinear(a *CDense, b []complex128) ([]complex128, error) {
	f, err := FactorCLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}
