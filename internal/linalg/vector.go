// Package linalg provides the dense linear-algebra kernels used by the
// second-order Markov reward model solvers: vectors, dense matrices, LU
// factorizations (real and complex), Cholesky, and a symmetric tridiagonal
// eigensolver used for moment-based quadrature.
//
// The package is deliberately small and dependency-free; it implements only
// what the reward-model analysis needs, with a bias toward numerical
// robustness (partial pivoting, compensated summation) over raw speed.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned when operand sizes are incompatible.
var ErrDimensionMismatch = errors.New("linalg: dimension mismatch")

// Vector is a dense column vector of float64 values.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector {
	return make(Vector, n)
}

// Ones returns a vector of length n with every element set to one.
// It corresponds to the column vector h in the paper.
func Ones(n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Fill sets every element of v to x.
func (v Vector) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// Zero sets every element of v to zero.
func (v Vector) Zero() { v.Fill(0) }

// Scale multiplies every element of v by a in place.
func (v Vector) Scale(a float64) {
	for i := range v {
		v[i] *= a
	}
}

// Scaled returns a new vector equal to a*v.
func (v Vector) Scaled(a float64) Vector {
	out := make(Vector, len(v))
	for i, x := range v {
		out[i] = a * x
	}
	return out
}

// AddScaled sets v = v + a*w in place (BLAS axpy).
func (v Vector) AddScaled(a float64, w Vector) error {
	if len(v) != len(w) {
		return fmt.Errorf("%w: axpy %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	for i := range v {
		v[i] += a * w[i]
	}
	return nil
}

// Dot returns the inner product of v and w using compensated (Neumaier)
// summation so long Poisson-weighted accumulations stay accurate even when
// large terms cancel.
func Dot(v, w Vector) (float64, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("%w: dot %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	var sum, comp float64
	for i := range v {
		x := v[i] * w[i]
		t := sum + x
		if math.Abs(sum) >= math.Abs(x) {
			comp += (sum - t) + x
		} else {
			comp += (x - t) + sum
		}
		sum = t
	}
	return sum + comp, nil
}

// Sum returns the compensated (Neumaier) sum of the elements of v.
func (v Vector) Sum() float64 {
	var sum, comp float64
	for _, x := range v {
		t := sum + x
		if math.Abs(sum) >= math.Abs(x) {
			comp += (sum - t) + x
		} else {
			comp += (x - t) + sum
		}
		sum = t
	}
	return sum + comp
}

// MaxAbs returns the infinity norm of v. It returns 0 for an empty vector.
func (v Vector) MaxAbs() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Norm2 returns the Euclidean norm of v, guarding against overflow.
func (v Vector) Norm2() float64 {
	scale := v.MaxAbs()
	if scale == 0 {
		return 0
	}
	var ss float64
	for _, x := range v {
		r := x / scale
		ss += r * r
	}
	return scale * math.Sqrt(ss)
}

// Min returns the smallest element of v. It panics on an empty vector.
func (v Vector) Min() float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of v. It panics on an empty vector.
func (v Vector) Max() float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// IsFinite reports whether every element of v is finite (no NaN or Inf).
func (v Vector) IsFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// NonNegative reports whether every element of v is >= 0.
func (v Vector) NonNegative() bool {
	for _, x := range v {
		if x < 0 {
			return false
		}
	}
	return true
}
