package linalg

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row major
}

// NewDense returns a zero matrix with the given shape.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// FromRows builds a dense matrix from row slices. All rows must have equal
// length.
func FromRows(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 {
		return NewDense(0, 0), nil
	}
	cols := len(rows[0])
	m := NewDense(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: row %d has %d cols, want %d", ErrDimensionMismatch, i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, x float64) { m.Data[i*m.Cols+j] = x }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Row returns a view of row i (shared storage).
func (m *Dense) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// MatVec computes y = m * x.
func (m *Dense) MatVec(x Vector) (Vector, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("%w: matvec %dx%d by %d", ErrDimensionMismatch, m.Rows, m.Cols, len(x))
	}
	y := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var sum, comp float64
		for j, a := range row {
			p := a*x[j] - comp
			t := sum + p
			comp = (t - sum) - p
			sum = t
		}
		y[i] = sum
	}
	return y, nil
}

// VecMat computes y = xᵀ * m (a row vector result).
func (m *Dense) VecMat(x Vector) (Vector, error) {
	if len(x) != m.Rows {
		return nil, fmt.Errorf("%w: vecmat %d by %dx%d", ErrDimensionMismatch, len(x), m.Rows, m.Cols)
	}
	y := NewVector(m.Cols)
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, a := range row {
			y[j] += xi * a
		}
	}
	return y, nil
}

// Mul returns m * b.
func (m *Dense) Mul(b *Dense) (*Dense, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("%w: mul %dx%d by %dx%d", ErrDimensionMismatch, m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewDense(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.Data[i*m.Cols+k]
			if a == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out, nil
}

// Add returns m + b.
func (m *Dense) Add(b *Dense) (*Dense, error) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return nil, fmt.Errorf("%w: add %dx%d + %dx%d", ErrDimensionMismatch, m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := m.Clone()
	for i, x := range b.Data {
		out.Data[i] += x
	}
	return out, nil
}

// Scale multiplies every element by a in place and returns m.
func (m *Dense) Scale(a float64) *Dense {
	for i := range m.Data {
		m.Data[i] *= a
	}
	return m
}

// Transpose returns mᵀ.
func (m *Dense) Transpose() *Dense {
	out := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// MaxAbsDiff returns the largest absolute element-wise difference between m
// and b, or an error on shape mismatch.
func (m *Dense) MaxAbsDiff(b *Dense) (float64, error) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return 0, fmt.Errorf("%w: diff %dx%d vs %dx%d", ErrDimensionMismatch, m.Rows, m.Cols, b.Rows, b.Cols)
	}
	var d float64
	for i := range m.Data {
		if a := math.Abs(m.Data[i] - b.Data[i]); a > d {
			d = a
		}
	}
	return d, nil
}
