package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization meets an (numerically)
// singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular")

// LU holds an LU factorization with partial pivoting: P*A = L*U.
type LU struct {
	lu   *Dense
	piv  []int
	sign float64 // determinant sign from row swaps
}

// FactorLU computes the LU factorization of the square matrix a with partial
// pivoting. The input is not modified.
func FactorLU(a *Dense) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: LU of %dx%d", ErrDimensionMismatch, a.Rows, a.Cols)
	}
	n := a.Rows
	f := &LU{lu: a.Clone(), piv: make([]int, n), sign: 1}
	lu := f.lu.Data
	for i := range f.piv {
		f.piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Find pivot.
		p := k
		maxv := math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu[i*n+k]); v > maxv {
				maxv = v
				p = i
			}
		}
		if maxv == 0 {
			return nil, fmt.Errorf("%w: zero pivot at column %d", ErrSingular, k)
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu[k*n+j], lu[p*n+j] = lu[p*n+j], lu[k*n+j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		pivot := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu[i*n+k] / pivot
			lu[i*n+k] = m
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu[i*n+j] -= m * lu[k*n+j]
			}
		}
	}
	return f, nil
}

// Solve solves A x = b for x using the factorization.
func (f *LU) Solve(b Vector) (Vector, error) {
	n := f.lu.Rows
	if len(b) != n {
		return nil, fmt.Errorf("%w: solve with rhs of %d, want %d", ErrDimensionMismatch, len(b), n)
	}
	lu := f.lu.Data
	x := NewVector(n)
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		var s float64
		for j := 0; j < i; j++ {
			s += lu[i*n+j] * x[j]
		}
		x[i] -= s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += lu[i*n+j] * x[j]
		}
		x[i] = (x[i] - s) / lu[i*n+i]
	}
	return x, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	n := f.lu.Rows
	d := f.sign
	for i := 0; i < n; i++ {
		d *= f.lu.Data[i*n+i]
	}
	return d
}

// SolveLinear is a convenience wrapper that factors a and solves a x = b.
func SolveLinear(a *Dense, b Vector) (Vector, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Inverse returns the inverse of the factored matrix.
func (f *LU) Inverse() (*Dense, error) {
	n := f.lu.Rows
	inv := NewDense(n, n)
	e := NewVector(n)
	for j := 0; j < n; j++ {
		e.Zero()
		e[j] = 1
		col, err := f.Solve(e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Data[i*n+j] = col[i]
		}
	}
	return inv, nil
}
