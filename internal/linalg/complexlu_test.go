package linalg

import (
	"errors"
	"math/cmplx"
	"math/rand"
	"testing"
)

func randomCDense(rng *rand.Rand, n int) *CDense {
	a := NewCDense(n, n)
	for i := range a.Data {
		a.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	for i := 0; i < n; i++ {
		a.Data[i*n+i] += complex(float64(n)+2, 0)
	}
	return a
}

func TestComplexSolveResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 5, 12} {
		a := randomCDense(rng, n)
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		x, err := SolveComplexLinear(a, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		ax, err := a.MatVec(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range b {
			if cmplx.Abs(ax[i]-b[i]) > 1e-10 {
				t.Errorf("n=%d residual[%d] = %g", n, i, cmplx.Abs(ax[i]-b[i]))
			}
		}
	}
}

func TestComplexSingular(t *testing.T) {
	a := NewCDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := FactorCLU(a); !errors.Is(err, ErrSingular) {
		t.Errorf("singular: err = %v, want ErrSingular", err)
	}
}

func TestComplexMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomCDense(rng, 4)
	id := CIdentity(4)
	p, err := a.Mul(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Data {
		if cmplx.Abs(p.Data[i]-a.Data[i]) > 1e-15 {
			t.Fatalf("A*I != A at %d", i)
		}
	}
}

func TestComplexDimensionErrors(t *testing.T) {
	if _, err := FactorCLU(NewCDense(2, 3)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("non-square: %v", err)
	}
	f, err := FactorCLU(CIdentity(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve(make([]complex128, 3)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("rhs mismatch: %v", err)
	}
	a := NewCDense(2, 3)
	if _, err := a.Mul(NewCDense(2, 2)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("mul mismatch: %v", err)
	}
	if _, err := a.MatVec(make([]complex128, 2)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("matvec mismatch: %v", err)
	}
}

func TestCDenseScaleMaxAbs(t *testing.T) {
	a := NewCDense(1, 2)
	a.Set(0, 0, complex(3, 4))
	a.Set(0, 1, complex(0, -1))
	if got := a.MaxAbs(); got != 5 {
		t.Errorf("MaxAbs = %g, want 5", got)
	}
	a.Scale(2)
	if a.At(0, 0) != complex(6, 8) {
		t.Errorf("Scale: got %v", a.At(0, 0))
	}
}
