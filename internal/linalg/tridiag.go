package linalg

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoConvergence is returned when an iterative eigensolver fails to
// converge within its iteration budget.
var ErrNoConvergence = errors.New("linalg: eigensolver did not converge")

// SymTridiagEigen computes the eigenvalues of the symmetric tridiagonal
// matrix with diagonal diag (length n) and off-diagonal offdiag (length
// n-1), together with the first component of each normalized eigenvector.
//
// This is the QL algorithm with implicit shifts, specialised to propagate
// only the first row of the eigenvector matrix: exactly what Golub–Welsch
// quadrature needs, since the quadrature weight of node i is
// m0 * (first eigenvector component)². Results are sorted by ascending
// eigenvalue.
func SymTridiagEigen(diag, offdiag []float64) (eig []float64, first []float64, err error) {
	n := len(diag)
	if len(offdiag) != n-1 && !(n == 0 && len(offdiag) == 0) {
		return nil, nil, fmt.Errorf("%w: tridiag diag %d, offdiag %d", ErrDimensionMismatch, n, len(offdiag))
	}
	if n == 0 {
		return nil, nil, nil
	}

	d := append([]float64(nil), diag...)
	e := make([]float64, n)
	copy(e, offdiag) // e[0..n-2] used, e[n-1] = 0
	z := make([]float64, n)
	z[0] = 1 // first row of the identity: tracks first eigenvector components

	const maxIter = 50
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			// Find a small off-diagonal element to split at.
			var m int
			for m = l; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= math.SmallestNonzeroFloat64 || math.Abs(e[m])+dd == dd {
					break
				}
			}
			if m == l {
				break
			}
			if iter == maxIter {
				return nil, nil, fmt.Errorf("%w: QL at row %d", ErrNoConvergence, l)
			}
			// Form implicit shift.
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				// Rotate the tracked eigenvector row.
				f = z[i+1]
				z[i+1] = s*z[i] + c*f
				z[i] = c*z[i] - s*f
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}

	// Sort by ascending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return d[idx[a]] < d[idx[b]] })
	eig = make([]float64, n)
	first = make([]float64, n)
	for k, i := range idx {
		eig[k] = d[i]
		first[k] = z[i]
	}
	return eig, first, nil
}

// Cholesky computes the lower-triangular Cholesky factor L of the symmetric
// positive-definite matrix a, with a·= L·Lᵀ. It returns ErrSingular
// (wrapped) if a is not numerically positive definite — which doubles as the
// positive-definiteness test for Hankel moment matrices.
func Cholesky(a *Dense) (*Dense, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: cholesky of %dx%d", ErrDimensionMismatch, a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		var sum float64
		for k := 0; k < j; k++ {
			v := l.Data[j*n+k]
			sum += v * v
		}
		diag := a.Data[j*n+j] - sum
		if diag <= 0 {
			return nil, fmt.Errorf("%w: not positive definite at row %d (pivot %g)", ErrSingular, j, diag)
		}
		dj := math.Sqrt(diag)
		l.Data[j*n+j] = dj
		for i := j + 1; i < n; i++ {
			var s float64
			for k := 0; k < j; k++ {
				s += l.Data[i*n+k] * l.Data[j*n+k]
			}
			l.Data[i*n+j] = (a.Data[i*n+j] - s) / dj
		}
	}
	return l, nil
}
