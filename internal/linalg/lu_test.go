package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUSolveKnown(t *testing.T) {
	a := mustFromRows(t, [][]float64{
		{2, 1, 1},
		{4, -6, 0},
		{-2, 7, 2},
	})
	// x = [1, 2, 3] => b = A x.
	want := Vector{1, 2, 3}
	b, err := a.MatVec(want)
	if err != nil {
		t.Fatal(err)
	}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d] = %.15g, want %g", i, x[i], want[i])
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {2, 4}})
	_, err := FactorLU(a)
	if !errors.Is(err, ErrSingular) {
		t.Errorf("singular matrix: err = %v, want ErrSingular", err)
	}
}

func TestLUNonSquare(t *testing.T) {
	_, err := FactorLU(NewDense(2, 3))
	if !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("non-square: err = %v, want ErrDimensionMismatch", err)
	}
}

func TestLUDeterminant(t *testing.T) {
	a := mustFromRows(t, [][]float64{{4, 3}, {6, 3}})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Det(); math.Abs(got-(-6)) > 1e-12 {
		t.Errorf("Det = %g, want -6", got)
	}
}

func TestLUInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 6
	a := NewDense(n, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		a.Data[i*n+i] += 5 // diagonally dominant => well conditioned
	}
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := f.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	prod, err := a.Mul(inv)
	if err != nil {
		t.Fatal(err)
	}
	d, err := prod.MaxAbsDiff(Identity(n))
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-10 {
		t.Errorf("A*A^-1 deviates from I by %g", d)
	}
}

// Property: random diagonally-dominant systems solve to residual ~0.
func TestLUSolveResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := NewDense(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := 0; i < n; i++ {
			a.Data[i*n+i] += float64(n) + 1
		}
		b := NewVector(n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		ax, err := a.MatVec(x)
		if err != nil {
			return false
		}
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLUSolveRHSSizeMismatch(t *testing.T) {
	f, err := FactorLU(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve(Vector{1, 2}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("rhs mismatch: err = %v", err)
	}
}
