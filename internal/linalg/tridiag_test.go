package linalg

import (
	"errors"
	"math"
	"sort"
	"testing"
)

func TestSymTridiagEigenDiagonal(t *testing.T) {
	// A diagonal matrix: eigenvalues are the diagonal, sorted.
	eig, first, err := SymTridiagEigen([]float64{3, 1, 2}, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(eig[i]-want[i]) > 1e-14 {
			t.Errorf("eig[%d] = %g, want %g", i, eig[i], want[i])
		}
	}
	// Eigenvectors are unit vectors: first components are (0, 0, 1) in
	// sorted order (eigenvalue 3 belongs to e_0).
	gotSq := 0.0
	for _, f := range first {
		gotSq += f * f
	}
	if math.Abs(gotSq-1) > 1e-12 {
		t.Errorf("sum of squared first components = %g, want 1", gotSq)
	}
	if math.Abs(first[2]*first[2]-1) > 1e-12 {
		t.Errorf("first component of e-vec for eigenvalue 3 should be +-1, got %g", first[2])
	}
}

func TestSymTridiagEigenKnown2x2(t *testing.T) {
	// [[2, 1], [1, 2]] has eigenvalues 1 and 3, eigenvectors
	// (1,-1)/sqrt2 and (1,1)/sqrt2.
	eig, first, err := SymTridiagEigen([]float64{2, 2}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eig[0]-1) > 1e-14 || math.Abs(eig[1]-3) > 1e-14 {
		t.Fatalf("eig = %v, want [1 3]", eig)
	}
	for i, f := range first {
		if math.Abs(f*f-0.5) > 1e-12 {
			t.Errorf("first[%d]^2 = %g, want 0.5", i, f*f)
		}
	}
}

// Jacobi matrix of probabilists' Hermite polynomials: diag 0, offdiag
// sqrt(k). Its eigenvalues are Gauss-Hermite nodes, symmetric about 0, and
// the first-component squares are the quadrature weights (summing to 1).
func TestSymTridiagEigenHermite(t *testing.T) {
	n := 7
	diag := make([]float64, n)
	off := make([]float64, n-1)
	for k := 1; k < n; k++ {
		off[k-1] = math.Sqrt(float64(k))
	}
	eig, first, err := SymTridiagEigen(diag, off)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.Float64sAreSorted(eig) {
		t.Error("eigenvalues not sorted")
	}
	var wsum, mean, second float64
	for i := range eig {
		w := first[i] * first[i]
		wsum += w
		mean += w * eig[i]
		second += w * eig[i] * eig[i]
	}
	if math.Abs(wsum-1) > 1e-12 {
		t.Errorf("weights sum to %g, want 1", wsum)
	}
	if math.Abs(mean) > 1e-12 {
		t.Errorf("first moment = %g, want 0", mean)
	}
	if math.Abs(second-1) > 1e-10 {
		t.Errorf("second moment = %g, want 1", second)
	}
	// Symmetry of nodes.
	for i := range eig {
		if math.Abs(eig[i]+eig[n-1-i]) > 1e-10 {
			t.Errorf("nodes not symmetric: %g vs %g", eig[i], eig[n-1-i])
		}
	}
}

func TestSymTridiagEigenSizeMismatch(t *testing.T) {
	_, _, err := SymTridiagEigen([]float64{1, 2}, []float64{1, 2})
	if !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("err = %v, want ErrDimensionMismatch", err)
	}
}

func TestSymTridiagEigenEmptyAndSingle(t *testing.T) {
	eig, first, err := SymTridiagEigen(nil, nil)
	if err != nil || len(eig) != 0 || len(first) != 0 {
		t.Errorf("empty: %v %v %v", eig, first, err)
	}
	eig, first, err = SymTridiagEigen([]float64{5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if eig[0] != 5 || math.Abs(first[0]*first[0]-1) > 1e-15 {
		t.Errorf("single: eig=%v first=%v", eig, first)
	}
}

func TestCholeskyKnown(t *testing.T) {
	// A = L L^T with L = [[2,0],[1,3]] => A = [[4,2],[2,10]].
	a := mustFromRows(t, [][]float64{{4, 2}, {2, 10}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.At(0, 0)-2) > 1e-14 || math.Abs(l.At(1, 0)-1) > 1e-14 || math.Abs(l.At(1, 1)-3) > 1e-14 {
		t.Errorf("L = %v", l.Data)
	}
	if l.At(0, 1) != 0 {
		t.Error("upper part of L must be zero")
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {2, 1}})
	if _, err := Cholesky(a); !errors.Is(err, ErrSingular) {
		t.Errorf("indefinite: err = %v, want ErrSingular", err)
	}
}

func TestCholeskyNonSquare(t *testing.T) {
	if _, err := Cholesky(NewDense(2, 3)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("err = %v, want ErrDimensionMismatch", err)
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	// Hankel moment matrix of the standard normal (moments 1,0,1,0,3):
	// positive definite.
	a := mustFromRows(t, [][]float64{
		{1, 0, 1},
		{0, 1, 0},
		{1, 0, 3},
	})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	back, err := l.Mul(l.Transpose())
	if err != nil {
		t.Fatal(err)
	}
	d, err := back.MaxAbsDiff(a)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-13 {
		t.Errorf("L L^T deviates from A by %g", d)
	}
}
