package difftest

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"somrm/internal/core"
	"somrm/internal/spec"
)

// corpusSize seeds always run; longCorpusSize more are added outside
// -short. The seeds are fixed (0..N) so failures reproduce exactly.
const (
	corpusSize     = 50
	longCorpusSize = 200
)

// TestDiffSeedCorpus is the differential harness: every seed generates a
// random model and cross-checks randomization vs the RK4 ODE baseline
// (vs the closed form too, when one exists).
func TestDiffSeedCorpus(t *testing.T) {
	n := corpusSize
	if !testing.Short() {
		n = longCorpusSize
	}
	for seed := 0; seed < n; seed++ {
		seed := seed
		if err := CheckSeed(int64(seed)); err != nil {
			t.Error(err)
		}
	}
}

// TestDiffSingleStateClosedForm pins the solvers to the exact normal
// moments E[B(t)^n] for B(t) ~ Normal(r t, sigma^2 t) on single-state
// models, the one case with a textbook answer.
func TestDiffSingleStateClosedForm(t *testing.T) {
	cases := []struct {
		name     string
		r, sigma float64
	}{
		{"drift only", 1.5, 0},
		{"negative drift", -2, 0.5},
		{"diffusion only", 0, 1},
		{"both", 0.7, 1.3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := &spec.Model{States: 1, Rates: []float64{tc.r}, Variances: []float64{tc.sigma * tc.sigma}, Initial: []float64{1}}
			if err := CheckModel(sp, []float64{0.3, 1, 2.5}, 5); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestDiffFrozenChain: a model with no transitions is a mixture of
// independent normals; the solver's degenerate path must agree with the
// ODE baseline there too.
func TestDiffFrozenChain(t *testing.T) {
	sp := &spec.Model{
		States:    3,
		Rates:     []float64{1, -0.5, 2},
		Variances: []float64{0.2, 0, 1},
		Initial:   []float64{0.25, 0.5, 0.25},
	}
	if err := CheckModel(sp, []float64{0.5, 1.5}, 4); err != nil {
		t.Error(err)
	}
}

// TestDiffPermutationInvariance: AccumulatedRewardAt must return bitwise
// identical results regardless of the order the time grid is presented
// in — the shared sweep may not couple the points.
func TestDiffPermutationInvariance(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sp := Generate(rng)
		model, err := sp.Build()
		if err != nil {
			t.Logf("seed %d: build: %v", seed, err)
			return false
		}
		order := 1 + rng.Intn(3)
		times := make([]float64, 2+rng.Intn(5))
		for i := range times {
			times[i] = rng.Float64() * 3
		}
		base, err := model.AccumulatedRewardAt(times, order, nil)
		if err != nil {
			t.Logf("seed %d: solve: %v", seed, err)
			return false
		}

		perm := rng.Perm(len(times))
		shuffled := make([]float64, len(times))
		for i, p := range perm {
			shuffled[i] = times[p]
		}
		permuted, err := model.AccumulatedRewardAt(shuffled, order, nil)
		if err != nil {
			t.Logf("seed %d: permuted solve: %v", seed, err)
			return false
		}
		for i, p := range perm {
			if !reflect.DeepEqual(permuted[i].Moments, base[p].Moments) {
				t.Logf("seed %d: t=%g differs under permutation: %v vs %v",
					seed, shuffled[i], permuted[i].Moments, base[p].Moments)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15}
	if !testing.Short() {
		cfg.MaxCount = 60
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

// TestDiffGeneratorProducesValidModels: every corpus seed must build; a
// generator that silently emits invalid specs would shrink the harness's
// coverage to nothing.
func TestDiffGeneratorProducesValidModels(t *testing.T) {
	var states, impulses, zeroVar int
	for seed := 0; seed < 500; seed++ {
		sp := Generate(rand.New(rand.NewSource(int64(seed))))
		if _, err := sp.Build(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		states += sp.States
		if len(sp.Impulses) > 0 {
			impulses++
		}
		for _, v := range sp.Variances {
			if v == 0 {
				zeroVar++
			}
		}
	}
	// The generator must actually exercise the advertised variety.
	if impulses < 100 {
		t.Errorf("only %d/500 models carry impulses", impulses)
	}
	if zeroVar == 0 {
		t.Error("no zero-variance states generated")
	}
	t.Logf("500 models: %.1f avg states, %d with impulses, %d zero-variance states",
		float64(states)/500, impulses, zeroVar)
}

// TestDiffSweepKernelBitwise is the fused-kernel gate: across the fixed
// seed corpus, the fused persistent-worker sweep (forced on, single- and
// multi-worker, at every matrix storage format, temporal blocking depth,
// and SIMD dispatch) must reproduce the serial reference sweep bit for
// bit — moments and per-state vectors alike. The fused kernel, the
// band/compact storage engine, the wavefront temporal blocking, and the
// AVX2 kernels are optimizations, never approximations.
func TestDiffSweepKernelBitwise(t *testing.T) {
	for seed := 0; seed < corpusSize; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		sp := Generate(rng)
		model, err := sp.Build()
		if err != nil {
			t.Fatalf("seed %d: build: %v", seed, err)
		}
		order := 1 + rng.Intn(4)
		times := []float64{0, 0.3, 1.7, 4.2}
		ref, err := model.AccumulatedRewardAt(times, order, &core.Options{SweepWorkers: -1})
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		// The "band" request covers the band kernels on every corpus model
		// that is band-eligible under the forced policy (the generator's
		// small models qualify via the small-matrix escape hatch) and the
		// compact fallback on the rest; "csr" pins the compact kernels,
		// "auto" whatever the detector picks, "csr64" the original layout.
		// "qbd" forces the block-tridiagonal window where a valid block
		// exists (small corpus models always have the degenerate one) and
		// "kron" resolves like auto on explicit non-composed generators —
		// both must stay inside the bitwise contract.
		//
		// The temporal-block loop forces wavefront blocking depths over a
		// tiny tile so the blocked driver engages on these small models
		// (it still resolves off where the shape is ineligible — impulses,
		// orders other than 3, unbounded reach — which keeps those shapes
		// covered as unblocked runs of the same configurations). Depth 8
		// with the corpus G makes ragged final groups routine.
		// The SIMD dimension covers both kernel dispatches on capable
		// hosts: NoSIMD=true pins the pure-Go loops, NoSIMD=false lets
		// the AVX2 kernels serve the formats that have one (band, csr,
		// qbd, and whatever auto resolves). csr64 and kron have no
		// vector kernel, so their forced-scalar arm would re-run the
		// identical code path and is skipped. On hosts without AVX2 (or
		// under SOMRM_NOSIMD=1, as one CI arm runs) the two arms
		// coincide on scalar — the gate still checks every format,
		// worker count and blocking depth against the reference.
		for _, format := range []string{"auto", "csr", "band", "csr64", "qbd", "kron"} {
			for _, nosimd := range []bool{false, true} {
				if nosimd && (format == "csr64" || format == "kron") {
					continue
				}
				for _, workers := range []int{1, 2, 5} {
					for _, tblock := range []int{1, 2, 4, 8} {
						opts := &core.Options{SweepWorkers: workers, MatrixFormat: format, TemporalBlock: tblock, SweepTile: 8, NoSIMD: nosimd}
						fused, err := model.AccumulatedRewardAt(times, order, opts)
						if err != nil {
							t.Fatalf("seed %d format %s nosimd %v workers %d tblock %d: fused: %v", seed, format, nosimd, workers, tblock, err)
						}
						for k := range times {
							for j := 0; j <= order; j++ {
								if math.Float64bits(fused[k].Moments[j]) != math.Float64bits(ref[k].Moments[j]) {
									t.Fatalf("seed %d format %s nosimd %v workers %d tblock %d t=%g: moment %d = %x, reference %x",
										seed, format, nosimd, workers, tblock, times[k], j,
										math.Float64bits(fused[k].Moments[j]), math.Float64bits(ref[k].Moments[j]))
								}
								for i := range fused[k].VectorMoments[j] {
									if math.Float64bits(fused[k].VectorMoments[j][i]) != math.Float64bits(ref[k].VectorMoments[j][i]) {
										t.Fatalf("seed %d format %s nosimd %v workers %d tblock %d t=%g: vm[%d][%d] differs bitwise",
											seed, format, nosimd, workers, tblock, times[k], j, i)
									}
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestDiffComposedCorpus is the composition half of the differential
// harness: every seed draws 2–4 independent components, composes them,
// and checks the joint moments against the exact binomial-convolution
// oracle of the per-component solves.
func TestDiffComposedCorpus(t *testing.T) {
	n := corpusSize / 2
	if !testing.Short() {
		n = corpusSize
	}
	for seed := 0; seed < n; seed++ {
		if err := CheckComposedSeed(int64(seed)); err != nil {
			t.Error(err)
		}
	}
}

// TestDiffComposedSweepBitwise extends the fused-kernel gate to composed
// models and the operator formats: for seeded compositions, every matrix
// format — including the forced block-tridiagonal window and the
// matrix-free Kronecker-sum operator — at every worker count must
// reproduce the serial reference solve bit for bit.
func TestDiffComposedSweepBitwise(t *testing.T) {
	seeds := 8
	if !testing.Short() {
		seeds = 16
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		comps := GenerateComposed(rng)
		models := make([]*core.Model, len(comps))
		for i, sp := range comps {
			m, err := sp.Build()
			if err != nil {
				t.Fatalf("seed %d component %d: %v", seed, i, err)
			}
			models[i] = m
		}
		joint, err := core.ComposeAll(models...)
		if err != nil {
			t.Fatalf("seed %d: compose: %v", seed, err)
		}
		order := 1 + rng.Intn(3)
		times := []float64{0, 0.3, 1.1}
		ref, err := joint.AccumulatedRewardAt(times, order, &core.Options{SweepWorkers: -1})
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		for _, format := range []string{"auto", "csr", "band", "csr64", "qbd", "kron"} {
			for _, workers := range []int{1, 2, 5} {
				got, err := joint.AccumulatedRewardAt(times, order, &core.Options{SweepWorkers: workers, MatrixFormat: format})
				if err != nil {
					t.Fatalf("seed %d format %s workers %d: %v", seed, format, workers, err)
				}
				if format == "kron" && got[1].Stats.MatrixFormat != "kron" {
					t.Fatalf("seed %d: forced kron on a composed model resolved to %q", seed, got[1].Stats.MatrixFormat)
				}
				for k := range times {
					for j := 0; j <= order; j++ {
						if math.Float64bits(got[k].Moments[j]) != math.Float64bits(ref[k].Moments[j]) {
							t.Fatalf("seed %d format %s workers %d t=%g: moment %d = %x, reference %x",
								seed, format, workers, times[k], j,
								math.Float64bits(got[k].Moments[j]), math.Float64bits(ref[k].Moments[j]))
						}
						for i := range got[k].VectorMoments[j] {
							if math.Float64bits(got[k].VectorMoments[j][i]) != math.Float64bits(ref[k].VectorMoments[j][i]) {
								t.Fatalf("seed %d format %s workers %d t=%g: vm[%d][%d] differs bitwise",
									seed, format, workers, times[k], j, i)
							}
						}
					}
				}
			}
		}
	}
}

// TestDiffComposedMatrixFree pins the matrix-free path inside the
// differential harness: a composition too large to materialize must agree
// with the convolution oracle of its component solves, and its bitwise
// behaviour across worker counts must match its own serial reference.
func TestDiffComposedMatrixFree(t *testing.T) {
	mk := func(n int) *spec.Model {
		sp := &spec.Model{
			States:    n,
			Rates:     make([]float64, n),
			Variances: make([]float64, n),
			Initial:   make([]float64, n),
		}
		for i := 0; i < n; i++ {
			sp.Rates[i] = 0.01 * float64(i%7)
			sp.Variances[i] = 0.005 * float64(i%3)
			if i < n-1 {
				sp.Transitions = append(sp.Transitions, spec.Transition{From: i, To: i + 1, Rate: 1})
				sp.Transitions = append(sp.Transitions, spec.Transition{From: i + 1, To: i, Rate: 1.5})
			}
		}
		sp.Initial[0] = 1
		return sp
	}
	a, err := mk(257).Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk(257).Build()
	if err != nil {
		t.Fatal(err)
	}
	joint, err := core.Compose(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !joint.IsMatrixFree() {
		t.Fatalf("%d states should be above the materialization threshold", joint.N())
	}
	const tt, order = 0.4, 2
	ref, err := joint.AccumulatedReward(tt, order, &core.Options{SweepWorkers: -1})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Stats.MatrixFormat != "kron" {
		t.Fatalf("matrix-free reference format = %q, want kron", ref.Stats.MatrixFormat)
	}
	ra, err := a.AccumulatedReward(tt, order, nil)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.AccumulatedReward(tt, order, nil)
	if err != nil {
		t.Fatal(err)
	}
	oracle := convolve(ra.Moments, rb.Moments)
	for j := 0; j <= order; j++ {
		if err := agree(ref.Moments[j], oracle[j], composeRelTol); err != nil {
			t.Errorf("moment %d: %v", j, err)
		}
	}
	for _, workers := range []int{1, 3} {
		got, err := joint.AccumulatedReward(tt, order, &core.Options{SweepWorkers: workers})
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		for j := 0; j <= order; j++ {
			if math.Float64bits(got.Moments[j]) != math.Float64bits(ref.Moments[j]) {
				t.Fatalf("workers %d: moment %d = %x, reference %x",
					workers, j, math.Float64bits(got.Moments[j]), math.Float64bits(ref.Moments[j]))
			}
		}
	}
}

// TestDiffCheckpointResumeBitwise is the durability half of the bitwise
// harness: across seeded corpus models, every storage format × worker
// count (including the serial reference) must survive an interrupt at a
// spread of iteration barriers — checkpoint serialized, re-decoded,
// resumed — with moments bitwise identical to the uninterrupted solve.
func TestDiffCheckpointResumeBitwise(t *testing.T) {
	seeds := 4
	if !testing.Short() {
		seeds = 8
	}
	times := []float64{0, 0.4, 1.3}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		sp := Generate(rng)
		order := 1 + rng.Intn(4)
		for _, format := range []string{"auto", "csr", "band", "csr64", "qbd"} {
			for _, workers := range []int{-1, 1, 3} {
				opts := core.Options{SweepWorkers: workers, MatrixFormat: format}
				if workers < 0 && format != "auto" {
					continue // the reference sweep ignores the format knob
				}
				if err := CheckResume(sp, times, order, opts); err != nil {
					t.Fatalf("seed %d format %s workers %d: %v", seed, format, workers, err)
				}
			}
		}
	}
}

// TestDiffCheckpointResumeBlocked extends the resume gate to wavefront
// temporal blocking: blocked solves must survive interrupts at their
// group-boundary barriers, and checkpoint tokens must be interchangeable
// across blocking modes — a token captured by an unblocked solve resumes
// under a blocked one and vice versa, bitwise identical either way,
// because blocking is absent from the checkpoint contract entirely.
func TestDiffCheckpointResumeBlocked(t *testing.T) {
	seeds := 3
	if !testing.Short() {
		seeds = 6
	}
	times := []float64{0, 0.4, 1.3}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		sp := Generate(rng)
		order := 1 + rng.Intn(4)
		model, err := sp.Build()
		if err != nil {
			t.Fatalf("seed %d: build: %v", seed, err)
		}
		for _, format := range []string{"auto", "band"} {
			for _, workers := range []int{1, 3} {
				plain := core.Options{SweepWorkers: workers, MatrixFormat: format}
				blocked := plain
				blocked.TemporalBlock = 4
				blocked.SweepTile = 8
				if err := CheckResumeAcross(model, times, order, blocked, blocked); err != nil {
					t.Fatalf("seed %d format %s workers %d blocked/blocked: %v", seed, format, workers, err)
				}
				if err := CheckResumeAcross(model, times, order, blocked, plain); err != nil {
					t.Fatalf("seed %d format %s workers %d blocked capture/unblocked resume: %v", seed, format, workers, err)
				}
				if err := CheckResumeAcross(model, times, order, plain, blocked); err != nil {
					t.Fatalf("seed %d format %s workers %d unblocked capture/blocked resume: %v", seed, format, workers, err)
				}
			}
		}
	}
}

// TestDiffComposedCheckpointResume extends the resume gate to composed
// models, covering the matrix-free Kronecker-sum operator path.
func TestDiffComposedCheckpointResume(t *testing.T) {
	times := []float64{0, 0.3, 1.1}
	for seed := 0; seed < 3; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		comps := GenerateComposed(rng)
		models := make([]*core.Model, len(comps))
		for i, sp := range comps {
			m, err := sp.Build()
			if err != nil {
				t.Fatalf("seed %d component %d: %v", seed, i, err)
			}
			models[i] = m
		}
		joint, err := core.ComposeAll(models...)
		if err != nil {
			t.Fatalf("seed %d: compose: %v", seed, err)
		}
		order := 1 + rng.Intn(3)
		for _, format := range []string{"auto", "kron"} {
			for _, workers := range []int{-1, 2} {
				if workers < 0 && format != "auto" {
					continue
				}
				opts := core.Options{SweepWorkers: workers, MatrixFormat: format}
				if err := CheckResumeModel(joint, times, order, opts); err != nil {
					t.Fatalf("seed %d format %s workers %d: %v", seed, format, workers, err)
				}
			}
		}
	}
}
