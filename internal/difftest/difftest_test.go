package difftest

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"somrm/internal/core"
	"somrm/internal/spec"
)

// corpusSize seeds always run; longCorpusSize more are added outside
// -short. The seeds are fixed (0..N) so failures reproduce exactly.
const (
	corpusSize     = 50
	longCorpusSize = 200
)

// TestDiffSeedCorpus is the differential harness: every seed generates a
// random model and cross-checks randomization vs the RK4 ODE baseline
// (vs the closed form too, when one exists).
func TestDiffSeedCorpus(t *testing.T) {
	n := corpusSize
	if !testing.Short() {
		n = longCorpusSize
	}
	for seed := 0; seed < n; seed++ {
		seed := seed
		if err := CheckSeed(int64(seed)); err != nil {
			t.Error(err)
		}
	}
}

// TestDiffSingleStateClosedForm pins the solvers to the exact normal
// moments E[B(t)^n] for B(t) ~ Normal(r t, sigma^2 t) on single-state
// models, the one case with a textbook answer.
func TestDiffSingleStateClosedForm(t *testing.T) {
	cases := []struct {
		name     string
		r, sigma float64
	}{
		{"drift only", 1.5, 0},
		{"negative drift", -2, 0.5},
		{"diffusion only", 0, 1},
		{"both", 0.7, 1.3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := &spec.Model{States: 1, Rates: []float64{tc.r}, Variances: []float64{tc.sigma * tc.sigma}, Initial: []float64{1}}
			if err := CheckModel(sp, []float64{0.3, 1, 2.5}, 5); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestDiffFrozenChain: a model with no transitions is a mixture of
// independent normals; the solver's degenerate path must agree with the
// ODE baseline there too.
func TestDiffFrozenChain(t *testing.T) {
	sp := &spec.Model{
		States:    3,
		Rates:     []float64{1, -0.5, 2},
		Variances: []float64{0.2, 0, 1},
		Initial:   []float64{0.25, 0.5, 0.25},
	}
	if err := CheckModel(sp, []float64{0.5, 1.5}, 4); err != nil {
		t.Error(err)
	}
}

// TestDiffPermutationInvariance: AccumulatedRewardAt must return bitwise
// identical results regardless of the order the time grid is presented
// in — the shared sweep may not couple the points.
func TestDiffPermutationInvariance(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sp := Generate(rng)
		model, err := sp.Build()
		if err != nil {
			t.Logf("seed %d: build: %v", seed, err)
			return false
		}
		order := 1 + rng.Intn(3)
		times := make([]float64, 2+rng.Intn(5))
		for i := range times {
			times[i] = rng.Float64() * 3
		}
		base, err := model.AccumulatedRewardAt(times, order, nil)
		if err != nil {
			t.Logf("seed %d: solve: %v", seed, err)
			return false
		}

		perm := rng.Perm(len(times))
		shuffled := make([]float64, len(times))
		for i, p := range perm {
			shuffled[i] = times[p]
		}
		permuted, err := model.AccumulatedRewardAt(shuffled, order, nil)
		if err != nil {
			t.Logf("seed %d: permuted solve: %v", seed, err)
			return false
		}
		for i, p := range perm {
			if !reflect.DeepEqual(permuted[i].Moments, base[p].Moments) {
				t.Logf("seed %d: t=%g differs under permutation: %v vs %v",
					seed, shuffled[i], permuted[i].Moments, base[p].Moments)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15}
	if !testing.Short() {
		cfg.MaxCount = 60
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

// TestDiffGeneratorProducesValidModels: every corpus seed must build; a
// generator that silently emits invalid specs would shrink the harness's
// coverage to nothing.
func TestDiffGeneratorProducesValidModels(t *testing.T) {
	var states, impulses, zeroVar int
	for seed := 0; seed < 500; seed++ {
		sp := Generate(rand.New(rand.NewSource(int64(seed))))
		if _, err := sp.Build(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		states += sp.States
		if len(sp.Impulses) > 0 {
			impulses++
		}
		for _, v := range sp.Variances {
			if v == 0 {
				zeroVar++
			}
		}
	}
	// The generator must actually exercise the advertised variety.
	if impulses < 100 {
		t.Errorf("only %d/500 models carry impulses", impulses)
	}
	if zeroVar == 0 {
		t.Error("no zero-variance states generated")
	}
	t.Logf("500 models: %.1f avg states, %d with impulses, %d zero-variance states",
		float64(states)/500, impulses, zeroVar)
}

// TestDiffSweepKernelBitwise is the fused-kernel gate: across the fixed
// seed corpus, the fused persistent-worker sweep (forced on, single- and
// multi-worker, at every matrix storage format) must reproduce the serial
// reference sweep bit for bit — moments and per-state vectors alike. The
// fused kernel and the band/compact storage engine are optimizations,
// never approximations.
func TestDiffSweepKernelBitwise(t *testing.T) {
	for seed := 0; seed < corpusSize; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		sp := Generate(rng)
		model, err := sp.Build()
		if err != nil {
			t.Fatalf("seed %d: build: %v", seed, err)
		}
		order := 1 + rng.Intn(4)
		times := []float64{0, 0.3, 1.7, 4.2}
		ref, err := model.AccumulatedRewardAt(times, order, &core.Options{SweepWorkers: -1})
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		// The "band" request covers the band kernels on every corpus model
		// that is band-eligible under the forced policy (the generator's
		// small models qualify via the small-matrix escape hatch) and the
		// compact fallback on the rest; "csr" pins the compact kernels,
		// "auto" whatever the detector picks, "csr64" the original layout.
		for _, format := range []string{"auto", "csr", "band", "csr64"} {
			for _, workers := range []int{1, 2, 5} {
				fused, err := model.AccumulatedRewardAt(times, order, &core.Options{SweepWorkers: workers, MatrixFormat: format})
				if err != nil {
					t.Fatalf("seed %d format %s workers %d: fused: %v", seed, format, workers, err)
				}
				for k := range times {
					for j := 0; j <= order; j++ {
						if math.Float64bits(fused[k].Moments[j]) != math.Float64bits(ref[k].Moments[j]) {
							t.Fatalf("seed %d format %s workers %d t=%g: moment %d = %x, reference %x",
								seed, format, workers, times[k], j,
								math.Float64bits(fused[k].Moments[j]), math.Float64bits(ref[k].Moments[j]))
						}
						for i := range fused[k].VectorMoments[j] {
							if math.Float64bits(fused[k].VectorMoments[j][i]) != math.Float64bits(ref[k].VectorMoments[j][i]) {
								t.Fatalf("seed %d format %s workers %d t=%g: vm[%d][%d] differs bitwise",
									seed, format, workers, times[k], j, i)
							}
						}
					}
				}
			}
		}
	}
}
