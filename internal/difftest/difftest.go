// Package difftest cross-checks the solver stack against itself: it
// generates random second-order Markov reward models from fixed seeds and
// asserts that the randomization solver (the paper's algorithm), the ODE
// integrator baseline, and — where a closed form exists — the normal-moment
// recurrence all agree. A bug in any one solver's constants breaks the
// agreement; a bug shared by all three would have to be introduced three
// times independently.
package difftest

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"somrm/internal/brownian"
	"somrm/internal/core"
	"somrm/internal/odesolver"
	"somrm/internal/spec"
)

// Generate returns a random valid model spec drawn from rng: 2–40 states
// on a ring (for irreducibility) with extra random transitions, drift
// rates of mixed sign in [-3, 3], variances that are exactly zero with
// probability ~0.3 (exercising the first-order/degenerate paths) and
// positive otherwise, optional impulse rewards on existing transitions,
// and an initial distribution that is a unit vector half the time and a
// normalized random vector otherwise.
func Generate(rng *rand.Rand) *spec.Model {
	n := 2 + rng.Intn(39)
	sp := &spec.Model{
		States:    n,
		Rates:     make([]float64, n),
		Variances: make([]float64, n),
		Initial:   make([]float64, n),
	}
	for i := 0; i < n; i++ {
		sp.Rates[i] = (rng.Float64()*2 - 1) * 3
		if rng.Float64() >= 0.3 {
			sp.Variances[i] = 0.05 + rng.Float64()*1.5
		}
	}

	// Ring backbone keeps every state reachable; extras densify.
	for i := 0; i < n; i++ {
		sp.Transitions = append(sp.Transitions, spec.Transition{
			From: i, To: (i + 1) % n, Rate: 0.2 + rng.Float64()*2.8,
		})
	}
	for e := rng.Intn(2 * n); e > 0; e-- {
		from, to := rng.Intn(n), rng.Intn(n)
		if from == to {
			continue
		}
		sp.Transitions = append(sp.Transitions, spec.Transition{
			From: from, To: to, Rate: 0.1 + rng.Float64()*2,
		})
	}

	if rng.Float64() < 0.4 {
		imp := 1 + rng.Intn(3)
		if imp > len(sp.Transitions) {
			imp = len(sp.Transitions) // 2-state models can have just 2 transitions
		}
		for _, k := range rng.Perm(len(sp.Transitions))[:imp] {
			tr := sp.Transitions[k]
			sp.Impulses = append(sp.Impulses, spec.Impulse{
				From: tr.From, To: tr.To, Reward: rng.Float64(),
			})
		}
	}

	if rng.Float64() < 0.5 {
		sp.Initial[rng.Intn(n)] = 1
	} else {
		var sum float64
		for i := range sp.Initial {
			sp.Initial[i] = 0.1 + rng.Float64()
			sum += sp.Initial[i]
		}
		imax := 0
		for i := range sp.Initial {
			sp.Initial[i] /= sum
			if sp.Initial[i] > sp.Initial[imax] {
				imax = i
			}
		}
		// Absorb rounding so the distribution sums to 1 exactly.
		var rest float64
		for i, p := range sp.Initial {
			if i != imax {
				rest += p
			}
		}
		sp.Initial[imax] = 1 - rest
	}
	return sp
}

// GenerateComponent returns a random impulse-free component spec for
// composition tests: 2–10 states on a ring with extra random transitions,
// mixed-sign drifts and optional zero variances, like Generate but sized
// so that products of a few components stay solvable.
func GenerateComponent(rng *rand.Rand) *spec.Model {
	n := 2 + rng.Intn(9)
	sp := &spec.Model{
		States:    n,
		Rates:     make([]float64, n),
		Variances: make([]float64, n),
		Initial:   make([]float64, n),
	}
	for i := 0; i < n; i++ {
		sp.Rates[i] = (rng.Float64()*2 - 1) * 2
		if rng.Float64() >= 0.3 {
			sp.Variances[i] = 0.05 + rng.Float64()
		}
	}
	for i := 0; i < n; i++ {
		sp.Transitions = append(sp.Transitions, spec.Transition{
			From: i, To: (i + 1) % n, Rate: 0.2 + rng.Float64()*1.8,
		})
	}
	for e := rng.Intn(n); e > 0; e-- {
		from, to := rng.Intn(n), rng.Intn(n)
		if from == to {
			continue
		}
		sp.Transitions = append(sp.Transitions, spec.Transition{
			From: from, To: to, Rate: 0.1 + rng.Float64(),
		})
	}
	sp.Initial[rng.Intn(n)] = 1
	return sp
}

// GenerateComposed returns 2–4 independent component specs whose product
// state space is capped at a few thousand states, the seeded corpus for
// the composition difftests.
func GenerateComposed(rng *rand.Rand) []*spec.Model {
	comps := make([]*spec.Model, 2+rng.Intn(3))
	product := 1
	for i := range comps {
		comps[i] = GenerateComponent(rng)
		product *= comps[i].States
	}
	// Cap the product so the corpus stays fast: shrink the largest
	// component (deterministically) until the joint model is small.
	for product > 2000 {
		imax := 0
		for i, c := range comps {
			if c.States > comps[imax].States {
				imax = i
			}
		}
		product /= comps[imax].States
		comps[imax] = &spec.Model{
			States:      2,
			Rates:       comps[imax].Rates[:2],
			Variances:   comps[imax].Variances[:2],
			Initial:     []float64{1, 0},
			Transitions: []spec.Transition{{From: 0, To: 1, Rate: 1}, {From: 1, To: 0, Rate: 1.5}},
		}
		product *= 2
	}
	return comps
}

// CheckComposed builds the components, composes them, and checks the
// joint moments against the exact oracle: the accumulated reward of a
// composition is the sum of independent component rewards, so its raw
// moments are the binomial convolution of the component moments.
func CheckComposed(comps []*spec.Model, times []float64, order int) error {
	models := make([]*core.Model, len(comps))
	for i, sp := range comps {
		m, err := sp.Build()
		if err != nil {
			return fmt.Errorf("component %d build: %w", i, err)
		}
		models[i] = m
	}
	joint, err := core.ComposeAll(models...)
	if err != nil {
		return fmt.Errorf("compose: %w", err)
	}
	jointRes, err := joint.AccumulatedRewardAt(times, order, nil)
	if err != nil {
		return fmt.Errorf("joint solve: %w", err)
	}
	compRes := make([][]*core.Result, len(models))
	for i, m := range models {
		compRes[i], err = m.AccumulatedRewardAt(times, order, nil)
		if err != nil {
			return fmt.Errorf("component %d solve: %w", i, err)
		}
	}
	for k, t := range times {
		oracle := compRes[0][k].Moments
		for i := 1; i < len(models); i++ {
			oracle = convolve(oracle, compRes[i][k].Moments)
		}
		for j := 0; j <= order; j++ {
			if err := agree(jointRes[k].Moments[j], oracle[j], composeRelTol); err != nil {
				return fmt.Errorf("t=%g moment %d: joint vs convolution oracle: %w", t, j, err)
			}
		}
	}
	return nil
}

// convolve returns the binomial convolution c_n = sum_k C(n,k) a_k b_{n-k},
// the raw moments of a sum of independent variables.
func convolve(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for n := range out {
		binom := 1.0
		for k := 0; k <= n; k++ {
			out[n] += binom * a[k] * b[n-k]
			binom = binom * float64(n-k) / float64(k+1)
		}
	}
	return out
}

// CheckComposedSeed generates the composed corpus entry for seed and
// cross-checks it on a small time grid drawn from the same seed.
func CheckComposedSeed(seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	comps := GenerateComposed(rng)
	order := 1 + rng.Intn(3)
	times := make([]float64, 1+rng.Intn(2))
	for i := range times {
		times[i] = 0.1 + rng.Float64()
	}
	if err := CheckComposed(comps, times, order); err != nil {
		return fmt.Errorf("composed seed %d (%d components, order %d): %w", seed, len(comps), order, err)
	}
	return nil
}

// Tolerances for cross-solver agreement. The ODE baseline integrates with
// RK4 at its automatic step count, so its error dominates; the closed-form
// comparison is tighter. The composition oracle convolves solver outputs,
// so it inherits their truncation error a few times over.
const (
	odeRelTol     = 1e-6
	closedRelTol  = 1e-10
	composeRelTol = 1e-8
)

// CheckModel solves sp at every time in times up to moment order with the
// randomization solver and the RK4 ODE baseline and returns an error on
// the first disagreement. For single-state models it additionally checks
// both against the exact normal-moment recurrence.
func CheckModel(sp *spec.Model, times []float64, order int) error {
	model, err := sp.Build()
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	randRes, err := model.AccumulatedRewardAt(times, order, nil)
	if err != nil {
		return fmt.Errorf("randomization: %w", err)
	}
	pi := model.Initial()
	for k, t := range times {
		vm, err := odesolver.MomentsByODE(model, t, order, nil)
		if err != nil {
			return fmt.Errorf("ode at t=%g: %w", t, err)
		}
		for j := 0; j <= order; j++ {
			var odeM float64
			for i, p := range pi {
				odeM += p * vm[j][i]
			}
			if err := agree(randRes[k].Moments[j], odeM, odeRelTol); err != nil {
				return fmt.Errorf("t=%g moment %d: randomization vs ode: %w", t, j, err)
			}
		}
		if sp.States == 1 {
			for j := 0; j <= order; j++ {
				exact, err := brownian.NormalRawMoment(j, sp.Rates[0]*t, sp.Variances[0]*t)
				if err != nil {
					return fmt.Errorf("closed form: %w", err)
				}
				if err := agree(randRes[k].Moments[j], exact, closedRelTol); err != nil {
					return fmt.Errorf("t=%g moment %d: randomization vs closed form: %w", t, j, err)
				}
			}
		}
	}
	return nil
}

// pollCountdown is a context that reports cancellation after its Err
// method has been polled a fixed number of times. With CancelStride 1 the
// solver polls once on entry and then at every iteration barrier, so a
// budget of p interrupts the sweep exactly before iteration p.
type pollCountdown struct {
	context.Context
	polls int
}

func (c *pollCountdown) Err() error {
	if c.polls <= 0 {
		return context.DeadlineExceeded
	}
	c.polls--
	return nil
}

// resumeBarriers picks the interrupt points for CheckResumeModel: every
// iteration barrier when the sweep is short, otherwise an even spread that
// always includes the first and last.
func resumeBarriers(g int) []int {
	if g <= 24 {
		out := make([]int, g)
		for i := range out {
			out[i] = i + 1
		}
		return out
	}
	out := []int{1}
	for i := 1; i <= 10; i++ {
		out = append(out, i*g/11)
	}
	return append(out, g)
}

// CheckResumeModel is the checkpoint/resume bitwise gate for one solver
// configuration: it solves the model uninterrupted, then interrupts the
// same solve at a spread of iteration barriers, serializes and re-decodes
// each captured checkpoint, resumes it, and fails on the first resumed
// moment (scalar or per-state) that is not bitwise identical to the
// uninterrupted run.
func CheckResumeModel(model *core.Model, times []float64, order int, opts core.Options) error {
	return CheckResumeAcross(model, times, order, opts, opts)
}

// CheckResumeAcross is CheckResumeModel with distinct capture and resume
// configurations: checkpoints are captured under captureOpts and resumed
// under resumeOpts. Checkpoint tokens are interchangeable across solver
// settings — a temporally blocked solve must resume a checkpoint from an
// unblocked one (and vice versa) to the bitwise-identical result, since
// blocking only moves the cancellation barriers to blocked-iteration
// group boundaries.
func CheckResumeAcross(model *core.Model, times []float64, order int, captureOpts, resumeOpts core.Options) error {
	full, err := model.AccumulatedRewardAt(times, order, &resumeOpts)
	if err != nil {
		return fmt.Errorf("uninterrupted solve: %w", err)
	}
	g := 0
	for _, r := range full {
		if r.Stats.G > g {
			g = r.Stats.G
		}
	}
	if g < 1 {
		return nil // frozen or degenerate chain: no sweep to interrupt
	}
	// Under temporal blocking the sweep only polls at blocked-iteration
	// group boundaries, so the interruptible barriers are the group
	// starts: learn the resolved depth of the capture configuration from
	// its own stats (1 when blocking stays off).
	probe, err := model.AccumulatedRewardAt(times, order, &captureOpts)
	if err != nil {
		return fmt.Errorf("capture-config solve: %w", err)
	}
	depth := 1
	for _, r := range probe {
		if r.Stats.G == g && r.Stats.TemporalBlock > depth {
			depth = r.Stats.TemporalBlock
		}
	}
	for _, polls := range resumeBarriers((g + depth - 1) / depth) {
		iopts := captureOpts
		iopts.Checkpoint = true
		iopts.CancelStride = 1
		ctx := &pollCountdown{Context: context.Background(), polls: polls}
		_, err := model.AccumulatedRewardAtContext(ctx, times, order, &iopts)
		var ir *core.Interrupted
		if !errors.As(err, &ir) {
			return fmt.Errorf("interrupt before barrier %d: want *core.Interrupted, got %w", polls, err)
		}
		if want := (polls - 1) * depth; ir.Checkpoint.Completed != want {
			return fmt.Errorf("interrupt before barrier %d (depth %d): checkpoint completed %d, want %d",
				polls, depth, ir.Checkpoint.Completed, want)
		}
		cp, err := core.DecodeCheckpoint(ir.Checkpoint.Encode())
		if err != nil {
			return fmt.Errorf("checkpoint round trip at %d/%d: %w", ir.Checkpoint.Completed, g, err)
		}
		ropts := resumeOpts
		ropts.Resume = cp
		resumed, err := model.AccumulatedRewardAt(times, order, &ropts)
		if err != nil {
			return fmt.Errorf("resume from %d/%d: %w", cp.Completed, g, err)
		}
		for k := range full {
			for j := 0; j <= order; j++ {
				if math.Float64bits(resumed[k].Moments[j]) != math.Float64bits(full[k].Moments[j]) {
					return fmt.Errorf("resume from %d/%d: t=%g moment %d = %x, uninterrupted %x",
						cp.Completed, g, times[k], j,
						math.Float64bits(resumed[k].Moments[j]), math.Float64bits(full[k].Moments[j]))
				}
				for i := range full[k].VectorMoments[j] {
					if math.Float64bits(resumed[k].VectorMoments[j][i]) != math.Float64bits(full[k].VectorMoments[j][i]) {
						return fmt.Errorf("resume from %d/%d: t=%g vm[%d][%d] differs bitwise",
							cp.Completed, g, times[k], j, i)
					}
				}
			}
		}
	}
	return nil
}

// CheckResume builds sp and runs CheckResumeModel on it.
func CheckResume(sp *spec.Model, times []float64, order int, opts core.Options) error {
	model, err := sp.Build()
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	return CheckResumeModel(model, times, order, opts)
}

// agree reports whether a and b match within rel (relative to their
// magnitude, with an absolute floor of the same size for values near zero).
func agree(a, b, rel float64) error {
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return fmt.Errorf("%g vs %g", a, b)
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	if math.Abs(a-b) > rel*scale {
		return fmt.Errorf("%g vs %g (diff %g, tol %g)", a, b, math.Abs(a-b), rel*scale)
	}
	return nil
}

// CheckSeed generates the model for seed and cross-checks it on a small
// random time grid and moment order drawn from the same seed.
func CheckSeed(seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	sp := Generate(rng)
	order := 1 + rng.Intn(4)
	times := make([]float64, 1+rng.Intn(3))
	for i := range times {
		times[i] = 0.1 + rng.Float64()*1.9
	}
	if err := CheckModel(sp, times, order); err != nil {
		return fmt.Errorf("seed %d (%d states, order %d): %w", seed, sp.States, order, err)
	}
	return nil
}
