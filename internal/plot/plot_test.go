package plot

import (
	"encoding/xml"
	"errors"
	"math"
	"strings"
	"testing"
)

func simpleChart() *Chart {
	return &Chart{
		Title:  "Test & Chart",
		XLabel: "t",
		YLabel: "value",
		Series: []Series{
			{Name: "a", X: []float64{0, 1, 2}, Y: []float64{0, 1, 4}},
			{Name: "b", X: []float64{0, 1, 2}, Y: []float64{4, 1, 0}, Style: StyleStep},
		},
	}
}

func TestRenderSVGWellFormed(t *testing.T) {
	var sb strings.Builder
	if err := simpleChart().RenderSVG(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Must be well-formed XML.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("not well-formed XML: %v", err)
		}
	}
	for _, want := range []string{"<svg", "</svg>", "Test &amp; Chart", "<path", "stroke="} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Two series -> two path elements.
	if got := strings.Count(out, "<path"); got != 2 {
		t.Errorf("paths = %d, want 2", got)
	}
	// Step series uses H/V commands.
	if !strings.Contains(out, " H") || !strings.Contains(out, " V") {
		t.Error("step series not rendered as staircase")
	}
}

func TestRenderSVGErrors(t *testing.T) {
	var sb strings.Builder
	c := &Chart{}
	if err := c.RenderSVG(&sb); !errors.Is(err, ErrBadChart) {
		t.Errorf("no series: %v", err)
	}
	c = &Chart{Series: []Series{{X: []float64{1}, Y: []float64{1, 2}}}}
	if err := c.RenderSVG(&sb); !errors.Is(err, ErrBadChart) {
		t.Errorf("length mismatch: %v", err)
	}
	c = &Chart{Series: []Series{{X: nil, Y: nil}}}
	if err := c.RenderSVG(&sb); !errors.Is(err, ErrBadChart) {
		t.Errorf("empty series: %v", err)
	}
	c = &Chart{Series: []Series{{X: []float64{math.NaN()}, Y: []float64{1}}}}
	if err := c.RenderSVG(&sb); !errors.Is(err, ErrBadChart) {
		t.Errorf("NaN point: %v", err)
	}
	c = simpleChart()
	c.Width, c.Height = 50, 50
	if err := c.RenderSVG(&sb); !errors.Is(err, ErrBadChart) {
		t.Errorf("tiny canvas: %v", err)
	}
}

func TestRenderSVGDegenerateRanges(t *testing.T) {
	var sb strings.Builder
	c := &Chart{Series: []Series{{X: []float64{1, 1}, Y: []float64{2, 2}}}}
	if err := c.RenderSVG(&sb); err != nil {
		t.Fatalf("constant series: %v", err)
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := NiceTicks(0, 1, 7)
	if len(ticks) < 4 || len(ticks) > 12 {
		t.Errorf("ticks = %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatalf("ticks not increasing: %v", ticks)
		}
	}
	if ticks[0] < 0 || ticks[len(ticks)-1] > 1+1e-9 {
		t.Errorf("ticks outside range: %v", ticks)
	}
	// Zero snapping.
	ticks = NiceTicks(-1, 1, 5)
	foundZero := false
	for _, v := range ticks {
		if v == 0 {
			foundZero = true
		}
	}
	if !foundZero {
		t.Errorf("no exact zero in %v", ticks)
	}
	// Degenerate inputs.
	if NiceTicks(1, 1, 5) != nil {
		t.Error("degenerate range should yield nil")
	}
	if NiceTicks(0, 1, 1) != nil {
		t.Error("n<2 should yield nil")
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		0.5:     "0.5",
		2:       "2",
		1e6:     "1.0e+06",
		0.00001: "1.0e-05",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%g) = %q, want %q", v, got, want)
		}
	}
}
