// Package plot renders simple line/step charts as standalone SVG files,
// used by cmd/somrm-experiments to emit the paper's figures directly
// (mean/moment curves, bound staircases, sampled trajectories). It is a
// minimal, dependency-free renderer: linear axes, nice-number ticks, a
// color cycle and a legend.
package plot

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// ErrBadChart is returned for charts that cannot be rendered.
var ErrBadChart = errors.New("plot: invalid chart")

// Style selects how a series is drawn.
type Style int

// Series styles.
const (
	// StyleLine connects points directly.
	StyleLine Style = iota + 1
	// StyleStep draws a right-continuous staircase (bounds, state paths).
	StyleStep
)

// Series is one named curve.
type Series struct {
	Name  string
	X, Y  []float64
	Style Style
}

// Chart is a 2D chart with linear axes.
type Chart struct {
	Title          string
	XLabel, YLabel string
	Series         []Series
	// Width and Height are the SVG dimensions in pixels (defaults 720x440).
	Width, Height int
}

var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// RenderSVG writes the chart as a standalone SVG document.
func (c *Chart) RenderSVG(w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("%w: no series", ErrBadChart)
	}
	width, height := c.Width, c.Height
	if width == 0 {
		width = 720
	}
	if height == 0 {
		height = 440
	}
	const (
		marginL = 70
		marginR = 20
		marginT = 40
		marginB = 50
	)
	plotW := width - marginL - marginR
	plotH := height - marginT - marginB
	if plotW < 50 || plotH < 50 {
		return fmt.Errorf("%w: %dx%d too small", ErrBadChart, width, height)
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for si, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("%w: series %d has %d x vs %d y", ErrBadChart, si, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return fmt.Errorf("%w: series %d empty", ErrBadChart, si)
		}
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				return fmt.Errorf("%w: series %d has non-finite point %d", ErrBadChart, si, i)
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// Pad the y-range slightly.
	pad := 0.05 * (ymax - ymin)
	ymin -= pad
	ymax += pad

	sx := func(x float64) float64 { return marginL + (x-xmin)/(xmax-xmin)*float64(plotW) }
	sy := func(y float64) float64 { return float64(marginT+plotH) - (y-ymin)/(ymax-ymin)*float64(plotH) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="15" text-anchor="middle">%s</text>`+"\n",
			width/2, escape(c.Title))
	}

	// Axes frame.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#333" stroke-width="1"/>`+"\n",
		marginL, marginT, plotW, plotH)

	// Ticks and grid.
	for _, tx := range NiceTicks(xmin, xmax, 7) {
		px := sx(tx)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#ddd"/>`+"\n", px, marginT, px, marginT+plotH)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			px, marginT+plotH+16, formatTick(tx))
	}
	for _, ty := range NiceTicks(ymin, ymax, 6) {
		py := sy(ty)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n", marginL, py, marginL+plotW, py)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-6, py+4, formatTick(ty))
	}
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
			marginL+plotW/2, height-12, escape(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="16" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
			marginT+plotH/2, marginT+plotH/2, escape(c.YLabel))
	}

	// Series.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts strings.Builder
		for i := range s.X {
			px, py := sx(s.X[i]), sy(s.Y[i])
			if i == 0 {
				fmt.Fprintf(&pts, "M%.2f %.2f", px, py)
				continue
			}
			if s.Style == StyleStep {
				fmt.Fprintf(&pts, " H%.2f V%.2f", px, py)
			} else {
				fmt.Fprintf(&pts, " L%.2f %.2f", px, py)
			}
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.6"/>`+"\n", pts.String(), color)
	}

	// Legend.
	ly := marginT + 12
	for si, s := range c.Series {
		if s.Name == "" {
			continue
		}
		color := palette[si%len(palette)]
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			marginL+10, ly, marginL+34, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			marginL+40, ly+4, escape(s.Name))
		ly += 16
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// NiceTicks returns up to about n "nice" tick positions covering
// [lo, hi] (multiples of 1, 2, or 5 times a power of ten).
func NiceTicks(lo, hi float64, n int) []float64 {
	if n < 2 || !(hi > lo) {
		return nil
	}
	span := hi - lo
	raw := span / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch {
	case raw/mag < 1.5:
		step = mag
	case raw/mag < 3.5:
		step = 2 * mag
	case raw/mag < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	first := math.Ceil(lo/step) * step
	var out []float64
	for v := first; v <= hi+step*1e-9; v += step {
		// Snap tiny rounding residue to zero.
		if math.Abs(v) < step*1e-9 {
			v = 0
		}
		out = append(out, v)
	}
	return out
}

func formatTick(v float64) string {
	a := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case a >= 1e5 || a < 1e-3:
		return fmt.Sprintf("%.1e", v)
	default:
		s := fmt.Sprintf("%.4f", v)
		s = strings.TrimRight(s, "0")
		s = strings.TrimRight(s, ".")
		return s
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
