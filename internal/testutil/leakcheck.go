// Package testutil holds small helpers shared by tests across the
// module. It is imported only from _test files.
package testutil

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
	"time"
)

// CheckGoroutineLeaks registers a cleanup that fails the test if
// goroutines executing this module's code are still alive once the
// test's own shutdown cleanups have run. Call it FIRST in the test, so
// its cleanup runs LAST (cleanups run in reverse registration order),
// after servers have been shut down and clients closed.
//
// The check is scoped to goroutines with a somrm frame on their stack:
// runtime, testing, and net/http housekeeping goroutines (idle
// keep-alive connections, timer goroutines) are outside this module's
// control and are ignored.
func CheckGoroutineLeaks(t testing.TB) {
	t.Helper()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var leaked []string
		for {
			leaked = moduleGoroutines()
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("%d goroutine(s) still running somrm code after cleanup:\n\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	})
}

// moduleGoroutines returns the stacks of all goroutines with a somrm
// frame, excluding the goroutine running this check itself (its stack
// contains the testutil frame).
func moduleGoroutines() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var out []string
	for _, g := range bytes.Split(buf[:n], []byte("\n\n")) {
		if bytes.Contains(g, []byte("somrm/internal")) &&
			!bytes.Contains(g, []byte("somrm/internal/testutil")) {
			out = append(out, string(g))
		}
	}
	return out
}
