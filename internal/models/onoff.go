// Package models provides ready-made second-order Markov reward models:
// the paper's ON-OFF multiplexer example (section 7) and performability
// models used by the example programs and tests.
package models

import (
	"errors"
	"fmt"

	"somrm/internal/core"
	"somrm/internal/ctmc"
)

// ErrBadParameter is returned for invalid model parameters.
var ErrBadParameter = errors.New("models: invalid parameter")

// OnOffParams parameterizes the paper's tentative telecommunication system:
// a channel of capacity C serving N ON-OFF class-1 sources with exponential
// ON (rate Alpha) and OFF (rate Beta) periods; an ON source transmits at
// rate R with variance Sigma2; the reward is the channel capacity left for
// class-2 traffic.
type OnOffParams struct {
	// C is the channel capacity.
	C float64
	// N is the number of ON-OFF sources.
	N int
	// Alpha is the rate parameter of the exponential ON period (ON -> OFF).
	Alpha float64
	// Beta is the rate parameter of the exponential OFF period (OFF -> ON).
	Beta float64
	// R is the per-source transmission rate while ON.
	R float64
	// Sigma2 is the per-source transmission variance while ON; zero yields
	// a first-order model.
	Sigma2 float64
}

// PaperSmall returns the Table 1 parameter set with the given variance
// (the paper evaluates sigma2 in {0, 1, 10}).
func PaperSmall(sigma2 float64) OnOffParams {
	return OnOffParams{C: 32, N: 32, Alpha: 4, Beta: 3, R: 1, Sigma2: sigma2}
}

// PaperLarge returns the Table 2 parameter set (N = 200,000 sources,
// sigma2 = 10).
func PaperLarge() OnOffParams {
	return OnOffParams{C: 200_000, N: 200_000, Alpha: 4, Beta: 3, R: 1, Sigma2: 10}
}

// Validate checks the parameter set.
func (p OnOffParams) Validate() error {
	switch {
	case p.N < 1:
		return fmt.Errorf("%w: N=%d", ErrBadParameter, p.N)
	case p.Alpha <= 0:
		return fmt.Errorf("%w: alpha=%g", ErrBadParameter, p.Alpha)
	case p.Beta <= 0:
		return fmt.Errorf("%w: beta=%g", ErrBadParameter, p.Beta)
	case p.Sigma2 < 0:
		return fmt.Errorf("%w: sigma2=%g", ErrBadParameter, p.Sigma2)
	}
	return nil
}

// OnOff builds the second-order reward model of section 7: the background
// CTMC is a birth-death chain whose state i counts the sources in the ON
// phase (i -> i+1 at rate (N-i)*beta, i -> i-1 at rate i*alpha), the drift
// in state i is r_i = C - i*R and the variance is sigma_i^2 = i*Sigma2.
// All sources start OFF, so the initial distribution is concentrated on
// state 0.
func OnOff(p OnOffParams) (*core.Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.N + 1
	up := make([]float64, p.N)
	down := make([]float64, p.N)
	for i := 0; i < p.N; i++ {
		up[i] = float64(p.N-i) * p.Beta // one more source turns ON
		down[i] = float64(i+1) * p.Alpha
	}
	gen, err := ctmc.NewBirthDeath(up, down)
	if err != nil {
		return nil, fmt.Errorf("models: %w", err)
	}
	rates := make([]float64, n)
	vars := make([]float64, n)
	for i := 0; i < n; i++ {
		rates[i] = p.C - float64(i)*p.R
		vars[i] = float64(i) * p.Sigma2
	}
	initial, err := ctmc.UnitDistribution(n, 0)
	if err != nil {
		return nil, fmt.Errorf("models: %w", err)
	}
	m, err := core.New(gen, rates, vars, initial)
	if err != nil {
		return nil, fmt.Errorf("models: %w", err)
	}
	return m, nil
}

// OnOffStationary returns the stationary distribution of the background
// chain in O(N) via the birth-death product form; each source is ON with
// probability beta/(alpha+beta) independently, so this is Binomial(N, p).
func OnOffStationary(p OnOffParams) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	up := make([]float64, p.N)
	down := make([]float64, p.N)
	for i := 0; i < p.N; i++ {
		up[i] = float64(p.N-i) * p.Beta
		down[i] = float64(i+1) * p.Alpha
	}
	pi, err := ctmc.BirthDeathStationary(up, down)
	if err != nil {
		return nil, fmt.Errorf("models: %w", err)
	}
	return pi, nil
}
