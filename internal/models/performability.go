package models

import (
	"fmt"

	"somrm/internal/core"
	"somrm/internal/ctmc"
	"somrm/internal/sparse"
)

// MultiprocessorParams parameterizes a classic performability model: a
// system of P processors that fail (rate Lambda each) and are repaired by a
// single repair facility (rate Mu). With i processors up the system
// delivers computational work at rate i*Work; a noisy workload adds a
// per-processor variance Sigma2. The accumulated reward is the total work
// done in (0, t) — a canonical MRM performability measure, here enriched
// with second-order noise.
type MultiprocessorParams struct {
	// P is the number of processors.
	P int
	// Lambda is the per-processor failure rate, Mu the repair rate.
	Lambda, Mu float64
	// Work is the processing rate contributed by one up processor.
	Work float64
	// Sigma2 is the per-processor throughput variance.
	Sigma2 float64
	// RepairCost, when positive, is charged as an impulse reward on every
	// repair completion (exercises the impulse extension).
	RepairCost float64
}

// Multiprocessor builds the repairable multiprocessor model. State i counts
// the processors currently up (0..P); the system starts with all P up.
func Multiprocessor(p MultiprocessorParams) (*core.Model, error) {
	switch {
	case p.P < 1:
		return nil, fmt.Errorf("%w: P=%d", ErrBadParameter, p.P)
	case p.Lambda <= 0 || p.Mu <= 0:
		return nil, fmt.Errorf("%w: lambda=%g mu=%g", ErrBadParameter, p.Lambda, p.Mu)
	case p.Sigma2 < 0:
		return nil, fmt.Errorf("%w: sigma2=%g", ErrBadParameter, p.Sigma2)
	case p.RepairCost < 0:
		return nil, fmt.Errorf("%w: repair cost %g", ErrBadParameter, p.RepairCost)
	}
	n := p.P + 1
	// State i = number of processors up. up: repair i -> i+1 (single
	// repairman); down: failure i -> i-1 with rate i*lambda.
	up := make([]float64, p.P)
	down := make([]float64, p.P)
	for i := 0; i < p.P; i++ {
		up[i] = p.Mu
		down[i] = float64(i+1) * p.Lambda
	}
	gen, err := ctmc.NewBirthDeath(up, down)
	if err != nil {
		return nil, fmt.Errorf("models: %w", err)
	}
	rates := make([]float64, n)
	vars := make([]float64, n)
	for i := 0; i < n; i++ {
		rates[i] = float64(i) * p.Work
		vars[i] = float64(i) * p.Sigma2
	}
	initial, err := ctmc.UnitDistribution(n, p.P)
	if err != nil {
		return nil, fmt.Errorf("models: %w", err)
	}
	m, err := core.New(gen, rates, vars, initial)
	if err != nil {
		return nil, fmt.Errorf("models: %w", err)
	}
	if p.RepairCost > 0 {
		b := sparse.NewBuilder(n, n)
		for i := 0; i < p.P; i++ {
			if err := b.Add(i, i+1, p.RepairCost); err != nil {
				return nil, fmt.Errorf("models: %w", err)
			}
		}
		m, err = m.WithImpulses(b.Build())
		if err != nil {
			return nil, fmt.Errorf("models: %w", err)
		}
	}
	return m, nil
}

// QueueDrainParams parameterizes a fluid-style buffer drain model with a
// net (possibly negative) drift per state, exercising the solver's shift
// transformation: a server alternates between a fast and a degraded mode,
// while work arrives at a constant rate. The reward is the net amount of
// work drained in (0, t); in the degraded mode the net drift is negative.
type QueueDrainParams struct {
	// ArrivalRate is the constant input rate of work.
	ArrivalRate float64
	// FastRate and SlowRate are the service rates of the two modes.
	FastRate, SlowRate float64
	// FailRate is the fast -> slow rate, FixRate the slow -> fast rate.
	FailRate, FixRate float64
	// Sigma2Fast and Sigma2Slow are the service variance parameters.
	Sigma2Fast, Sigma2Slow float64
}

// QueueDrain builds the two-mode drain model; state 0 is the fast mode
// (start state), state 1 the degraded mode.
func QueueDrain(p QueueDrainParams) (*core.Model, error) {
	switch {
	case p.FailRate <= 0 || p.FixRate <= 0:
		return nil, fmt.Errorf("%w: fail=%g fix=%g", ErrBadParameter, p.FailRate, p.FixRate)
	case p.Sigma2Fast < 0 || p.Sigma2Slow < 0:
		return nil, fmt.Errorf("%w: sigma2 fast=%g slow=%g", ErrBadParameter, p.Sigma2Fast, p.Sigma2Slow)
	}
	gen, err := ctmc.NewGeneratorFromRates(2, func(i, j int) float64 {
		if i == 0 && j == 1 {
			return p.FailRate
		}
		if i == 1 && j == 0 {
			return p.FixRate
		}
		return 0
	})
	if err != nil {
		return nil, fmt.Errorf("models: %w", err)
	}
	rates := []float64{p.FastRate - p.ArrivalRate, p.SlowRate - p.ArrivalRate}
	vars := []float64{p.Sigma2Fast, p.Sigma2Slow}
	m, err := core.New(gen, rates, vars, []float64{1, 0})
	if err != nil {
		return nil, fmt.Errorf("models: %w", err)
	}
	return m, nil
}
