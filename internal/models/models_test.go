package models

import (
	"errors"
	"math"
	"testing"

	"somrm/internal/core"
)

func TestPaperParameterSets(t *testing.T) {
	small := PaperSmall(1)
	if small.C != 32 || small.N != 32 || small.Alpha != 4 || small.Beta != 3 || small.R != 1 || small.Sigma2 != 1 {
		t.Errorf("PaperSmall = %+v", small)
	}
	large := PaperLarge()
	if large.N != 200_000 || large.C != 200_000 || large.Sigma2 != 10 {
		t.Errorf("PaperLarge = %+v", large)
	}
}

func TestOnOffStructure(t *testing.T) {
	m, err := OnOff(OnOffParams{C: 10, N: 4, Alpha: 4, Beta: 3, R: 1, Sigma2: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 5 {
		t.Fatalf("states = %d, want 5", m.N())
	}
	gen := m.Generator()
	// State i -> i+1 at (N-i)*beta; i -> i-1 at i*alpha.
	if got := gen.At(0, 1); got != 12 {
		t.Errorf("q(0,1) = %g, want 12", got)
	}
	if got := gen.At(2, 3); got != 6 {
		t.Errorf("q(2,3) = %g, want 6", got)
	}
	if got := gen.At(3, 2); got != 12 {
		t.Errorf("q(3,2) = %g, want 12", got)
	}
	rates := m.Rates()
	vars := m.Variances()
	for i := 0; i <= 4; i++ {
		if rates[i] != 10-float64(i) {
			t.Errorf("r[%d] = %g", i, rates[i])
		}
		if vars[i] != 2*float64(i) {
			t.Errorf("s2[%d] = %g", i, vars[i])
		}
	}
	pi := m.Initial()
	if pi[0] != 1 {
		t.Errorf("initial = %v, want all-OFF", pi)
	}
	// The paper's q for the small model: max exit rate is max(N*beta, N*alpha)
	// over interior states; for N=4, alpha=4, beta=3 the max is 16 (state 4).
	if got := gen.MaxExitRate(); got != 16 {
		t.Errorf("q = %g, want 16", got)
	}
}

func TestOnOffValidation(t *testing.T) {
	bad := []OnOffParams{
		{C: 1, N: 0, Alpha: 1, Beta: 1},
		{C: 1, N: 1, Alpha: 0, Beta: 1},
		{C: 1, N: 1, Alpha: 1, Beta: -1},
		{C: 1, N: 1, Alpha: 1, Beta: 1, Sigma2: -2},
	}
	for i, p := range bad {
		if _, err := OnOff(p); !errors.Is(err, ErrBadParameter) {
			t.Errorf("case %d accepted: %v", i, err)
		}
	}
}

func TestOnOffStationaryBinomial(t *testing.T) {
	p := OnOffParams{C: 8, N: 8, Alpha: 4, Beta: 3, R: 1}
	pi, err := OnOffStationary(p)
	if err != nil {
		t.Fatal(err)
	}
	on := p.Beta / (p.Alpha + p.Beta)
	for i := 0; i <= p.N; i++ {
		want := binomPMF(p.N, i, on)
		if math.Abs(pi[i]-want) > 1e-12 {
			t.Errorf("pi[%d] = %.14g, want %.14g", i, pi[i], want)
		}
	}
	if _, err := OnOffStationary(OnOffParams{N: 0, Alpha: 1, Beta: 1}); !errors.Is(err, ErrBadParameter) {
		t.Errorf("bad params: %v", err)
	}
}

func binomPMF(n, k int, p float64) float64 {
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c * math.Pow(p, float64(k)) * math.Pow(1-p, float64(n-k))
}

// The paper's steady-state rate: C - N*r*beta/(alpha+beta) = 32*4/7.
func TestOnOffSteadyStateRate(t *testing.T) {
	m, err := OnOff(PaperSmall(1))
	if err != nil {
		t.Fatal(err)
	}
	rate, err := m.SteadyStateMeanRate()
	if err != nil {
		t.Fatal(err)
	}
	want := 32.0 * 4 / 7
	if math.Abs(rate-want) > 1e-9 {
		t.Errorf("steady rate = %.10g, want %.10g", rate, want)
	}
}

func TestMultiprocessor(t *testing.T) {
	m, err := Multiprocessor(MultiprocessorParams{P: 3, Lambda: 0.2, Mu: 1, Work: 2, Sigma2: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 4 {
		t.Fatalf("states = %d", m.N())
	}
	// Starts with all processors up.
	if m.Initial()[3] != 1 {
		t.Errorf("initial = %v", m.Initial())
	}
	// Failures: 3 -> 2 at 3*lambda.
	if got := m.Generator().At(3, 2); math.Abs(got-0.6) > 1e-15 {
		t.Errorf("q(3,2) = %g", got)
	}
	// Single repairman: 0 -> 1 at mu.
	if got := m.Generator().At(0, 1); got != 1 {
		t.Errorf("q(0,1) = %g", got)
	}
	if m.HasImpulses() {
		t.Error("no repair cost requested")
	}
	mi, err := Multiprocessor(MultiprocessorParams{P: 3, Lambda: 0.2, Mu: 1, Work: 2, Sigma2: 0.5, RepairCost: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !mi.HasImpulses() {
		t.Error("repair cost not attached")
	}
}

func TestMultiprocessorValidation(t *testing.T) {
	bad := []MultiprocessorParams{
		{P: 0, Lambda: 1, Mu: 1},
		{P: 1, Lambda: 0, Mu: 1},
		{P: 1, Lambda: 1, Mu: -1},
		{P: 1, Lambda: 1, Mu: 1, Sigma2: -1},
		{P: 1, Lambda: 1, Mu: 1, RepairCost: -1},
	}
	for i, p := range bad {
		if _, err := Multiprocessor(p); !errors.Is(err, ErrBadParameter) {
			t.Errorf("case %d accepted: %v", i, err)
		}
	}
}

func TestQueueDrain(t *testing.T) {
	m, err := QueueDrain(QueueDrainParams{
		ArrivalRate: 2, FastRate: 3, SlowRate: 0.5,
		FailRate: 1, FixRate: 2, Sigma2Fast: 0.1, Sigma2Slow: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := m.Rates()
	if r[0] != 1 || r[1] != -1.5 {
		t.Errorf("net drifts = %v", r)
	}
	// Negative drift must be handled by the solver.
	res, err := m.AccumulatedReward(1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Shift != -1.5 {
		t.Errorf("shift = %g", res.Stats.Shift)
	}
}

func TestQueueDrainValidation(t *testing.T) {
	if _, err := QueueDrain(QueueDrainParams{FailRate: 0, FixRate: 1}); !errors.Is(err, ErrBadParameter) {
		t.Errorf("zero fail rate: %v", err)
	}
	if _, err := QueueDrain(QueueDrainParams{FailRate: 1, FixRate: 1, Sigma2Fast: -1}); !errors.Is(err, ErrBadParameter) {
		t.Errorf("negative variance: %v", err)
	}
}

// The mean of the ON-OFF model at small t is close to C*t (all sources
// start OFF, full capacity available).
func TestOnOffShortTimeMean(t *testing.T) {
	m, err := OnOff(PaperSmall(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.AccumulatedReward(0.001, 1, &core.Options{Epsilon: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Moments[1]-0.032) > 0.002 {
		t.Errorf("short-time mean = %g, want ~0.032", res.Moments[1])
	}
}
