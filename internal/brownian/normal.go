// Package brownian provides the Brownian-motion building blocks of
// second-order reward models: the normal distribution (pdf, cdf, quantile,
// raw moments) and sample-path generation with state-dependent drift and
// variance.
package brownian

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadParameter is returned for invalid distribution parameters.
var ErrBadParameter = errors.New("brownian: invalid parameter")

// NormalPDF returns the density of Normal(mu, sigma2) at x. A zero variance
// yields a degenerate distribution: +Inf at x == mu and 0 elsewhere.
func NormalPDF(x, mu, sigma2 float64) float64 {
	if sigma2 < 0 {
		return math.NaN()
	}
	if sigma2 == 0 {
		if x == mu {
			return math.Inf(1)
		}
		return 0
	}
	d := x - mu
	return math.Exp(-d*d/(2*sigma2)) / math.Sqrt(2*math.Pi*sigma2)
}

// NormalCDF returns P(X <= x) for X ~ Normal(mu, sigma2).
func NormalCDF(x, mu, sigma2 float64) float64 {
	if sigma2 < 0 {
		return math.NaN()
	}
	if sigma2 == 0 {
		if x >= mu {
			return 1
		}
		return 0
	}
	return 0.5 * math.Erfc(-(x-mu)/math.Sqrt(2*sigma2))
}

// NormalQuantile returns the p-quantile of Normal(mu, sigma2) using the
// Acklam rational approximation refined by one Halley step, accurate to
// about 1e-15 over (0, 1).
func NormalQuantile(p, mu, sigma2 float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("%w: quantile probability %g", ErrBadParameter, p)
	}
	if sigma2 < 0 {
		return 0, fmt.Errorf("%w: variance %g", ErrBadParameter, sigma2)
	}
	z := acklam(p)
	// One Halley refinement step.
	e := 0.5*math.Erfc(-z/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(z*z/2)
	z -= u / (1 + z*u/2)
	return mu + z*math.Sqrt(sigma2), nil
}

func acklam(p float64) float64 {
	var (
		a = [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
		b = [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
		c = [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
		d = [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	)
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// NormalRawMoment returns E[X^n] for X ~ Normal(mu, sigma2), computed with
// the recurrence m_n = mu*m_{n-1} + (n-1)*sigma2*m_{n-2}. It is the closed
// form against which the single-state reward solver is verified.
func NormalRawMoment(n int, mu, sigma2 float64) (float64, error) {
	if n < 0 {
		return 0, fmt.Errorf("%w: moment order %d", ErrBadParameter, n)
	}
	if sigma2 < 0 {
		return 0, fmt.Errorf("%w: variance %g", ErrBadParameter, sigma2)
	}
	prev2, prev1 := 1.0, mu // m_0, m_1
	if n == 0 {
		return prev2, nil
	}
	if n == 1 {
		return prev1, nil
	}
	for k := 2; k <= n; k++ {
		cur := mu*prev1 + float64(k-1)*sigma2*prev2
		prev2, prev1 = prev1, cur
	}
	return prev1, nil
}
