package brownian

import (
	"fmt"
	"math"
	"math/rand"
)

// Increment draws B(t+dt) - B(t) for a Brownian motion with the given drift
// and variance parameter over an interval of length dt, i.e. a
// Normal(drift*dt, variance*dt) variate.
func Increment(rng *rand.Rand, drift, variance, dt float64) (float64, error) {
	if dt < 0 {
		return 0, fmt.Errorf("%w: negative interval %g", ErrBadParameter, dt)
	}
	if variance < 0 {
		return 0, fmt.Errorf("%w: negative variance %g", ErrBadParameter, variance)
	}
	if dt == 0 {
		return 0, nil
	}
	return drift*dt + rng.NormFloat64()*math.Sqrt(variance*dt), nil
}

// Path holds a sampled Brownian path on a uniform grid.
type Path struct {
	// Dt is the grid spacing; Values[i] is the path value at time i*Dt,
	// with Values[0] = 0.
	Dt     float64
	Values []float64
}

// SamplePath samples a Brownian path with constant drift and variance on a
// uniform grid with `steps` increments of length dt.
func SamplePath(rng *rand.Rand, drift, variance, dt float64, steps int) (*Path, error) {
	if steps < 0 {
		return nil, fmt.Errorf("%w: negative step count %d", ErrBadParameter, steps)
	}
	p := &Path{Dt: dt, Values: make([]float64, steps+1)}
	for i := 1; i <= steps; i++ {
		inc, err := Increment(rng, drift, variance, dt)
		if err != nil {
			return nil, err
		}
		p.Values[i] = p.Values[i-1] + inc
	}
	return p, nil
}

// Bridge fills the value at the midpoint of an interval conditioned on the
// endpoints (a Brownian bridge step), used for path refinement in the
// trajectory renderer of Figure 1.
func Bridge(rng *rand.Rand, left, right, variance, dt float64) (float64, error) {
	if variance < 0 {
		return 0, fmt.Errorf("%w: negative variance %g", ErrBadParameter, variance)
	}
	if dt < 0 {
		return 0, fmt.Errorf("%w: negative interval %g", ErrBadParameter, dt)
	}
	mean := (left + right) / 2
	return mean + rng.NormFloat64()*math.Sqrt(variance*dt/4), nil
}
