package brownian

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestIncrementMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const (
		drift, variance, dt = 2.0, 3.0, 0.25
		n                   = 200_000
	)
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		inc, err := Increment(rng, drift, variance, dt)
		if err != nil {
			t.Fatal(err)
		}
		sum += inc
		sumSq += inc * inc
	}
	mean := sum / n
	wantMean := drift * dt
	if math.Abs(mean-wantMean) > 5*math.Sqrt(variance*dt/n) {
		t.Errorf("mean = %g, want %g", mean, wantMean)
	}
	v := sumSq/n - mean*mean
	wantVar := variance * dt
	if math.Abs(v-wantVar)/wantVar > 0.02 {
		t.Errorf("variance = %g, want %g", v, wantVar)
	}
}

func TestIncrementEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inc, err := Increment(rng, 5, 1, 0)
	if err != nil || inc != 0 {
		t.Errorf("dt=0: inc=%g err=%v", inc, err)
	}
	// Zero variance is deterministic drift.
	inc, err = Increment(rng, 5, 0, 2)
	if err != nil || inc != 10 {
		t.Errorf("sigma2=0: inc=%g err=%v", inc, err)
	}
	if _, err := Increment(rng, 1, -1, 1); !errors.Is(err, ErrBadParameter) {
		t.Error("negative variance accepted")
	}
	if _, err := Increment(rng, 1, 1, -1); !errors.Is(err, ErrBadParameter) {
		t.Error("negative dt accepted")
	}
}

func TestSamplePathShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p, err := SamplePath(rng, 1, 0.5, 0.01, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Values) != 101 {
		t.Fatalf("len = %d, want 101", len(p.Values))
	}
	if p.Values[0] != 0 {
		t.Errorf("path must start at 0, got %g", p.Values[0])
	}
	if _, err := SamplePath(rng, 1, 1, 0.01, -1); !errors.Is(err, ErrBadParameter) {
		t.Error("negative steps accepted")
	}
}

func TestSamplePathDeterministicDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p, err := SamplePath(rng, 2, 0, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range p.Values {
		want := 2 * 0.5 * float64(i)
		if math.Abs(v-want) > 1e-12 {
			t.Errorf("value[%d] = %g, want %g", i, v, want)
		}
	}
}

func TestBridgeMidpointStats(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const (
		left, right, variance, dt = 1.0, 3.0, 2.0, 0.5
		n                         = 100_000
	)
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		m, err := Bridge(rng, left, right, variance, dt)
		if err != nil {
			t.Fatal(err)
		}
		sum += m
		sumSq += m * m
	}
	mean := sum / n
	if math.Abs(mean-2) > 0.02 {
		t.Errorf("bridge mean = %g, want 2", mean)
	}
	v := sumSq/n - mean*mean
	wantVar := variance * dt / 4
	if math.Abs(v-wantVar)/wantVar > 0.05 {
		t.Errorf("bridge variance = %g, want %g", v, wantVar)
	}
}

func TestBridgeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := Bridge(rng, 0, 1, -1, 1); !errors.Is(err, ErrBadParameter) {
		t.Error("negative variance accepted")
	}
	if _, err := Bridge(rng, 0, 1, 1, -1); !errors.Is(err, ErrBadParameter) {
		t.Error("negative dt accepted")
	}
}
