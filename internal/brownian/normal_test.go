package brownian

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNormalPDFStandard(t *testing.T) {
	want := 1 / math.Sqrt(2*math.Pi)
	if got := NormalPDF(0, 0, 1); math.Abs(got-want) > 1e-15 {
		t.Errorf("pdf(0) = %.16g, want %.16g", got, want)
	}
	// Symmetry.
	if NormalPDF(1.3, 0, 1) != NormalPDF(-1.3, 0, 1) {
		t.Error("pdf not symmetric")
	}
}

func TestNormalPDFDegenerate(t *testing.T) {
	if got := NormalPDF(2, 2, 0); !math.IsInf(got, 1) {
		t.Errorf("pdf at atom = %g", got)
	}
	if got := NormalPDF(1, 2, 0); got != 0 {
		t.Errorf("pdf off atom = %g", got)
	}
	if got := NormalPDF(0, 0, -1); !math.IsNaN(got) {
		t.Errorf("pdf with negative variance = %g, want NaN", got)
	}
}

func TestNormalCDFKnown(t *testing.T) {
	cases := []struct{ x, mu, s2, want float64 }{
		{0, 0, 1, 0.5},
		{1.959963984540054, 0, 1, 0.975},
		{-1.959963984540054, 0, 1, 0.025},
		{3, 1, 4, 0.8413447460685429}, // z = 1
	}
	for _, c := range cases {
		if got := NormalCDF(c.x, c.mu, c.s2); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("cdf(%g; %g, %g) = %.12g, want %.12g", c.x, c.mu, c.s2, got, c.want)
		}
	}
}

func TestNormalCDFDegenerate(t *testing.T) {
	if got := NormalCDF(2, 2, 0); got != 1 {
		t.Errorf("cdf at atom = %g", got)
	}
	if got := NormalCDF(1.9, 2, 0); got != 0 {
		t.Errorf("cdf below atom = %g", got)
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-10, 1e-4, 0.025, 0.31, 0.5, 0.77, 0.975, 1 - 1e-4, 1 - 1e-12} {
		z, err := NormalQuantile(p, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		back := NormalCDF(z, 0, 1)
		if math.Abs(back-p) > 1e-12*math.Max(p, 1e-3) && math.Abs(back-p) > 1e-14 {
			t.Errorf("p=%g: quantile %.15g maps back to %.15g", p, z, back)
		}
	}
}

func TestNormalQuantileScaling(t *testing.T) {
	z, err := NormalQuantile(0.975, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 + 1.959963984540054*2
	if math.Abs(z-want) > 1e-9 {
		t.Errorf("quantile = %.12g, want %.12g", z, want)
	}
}

func TestNormalQuantileErrors(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		if _, err := NormalQuantile(p, 0, 1); !errors.Is(err, ErrBadParameter) {
			t.Errorf("p=%g accepted", p)
		}
	}
	if _, err := NormalQuantile(0.5, 0, -1); !errors.Is(err, ErrBadParameter) {
		t.Error("negative variance accepted")
	}
}

func TestNormalRawMomentKnown(t *testing.T) {
	// Standard normal: 1, 0, 1, 0, 3, 0, 15.
	want := []float64{1, 0, 1, 0, 3, 0, 15}
	for n, w := range want {
		got, err := NormalRawMoment(n, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Errorf("m%d = %g, want %g", n, got, w)
		}
	}
	// Degenerate: moments of the constant mu.
	for n := 0; n <= 5; n++ {
		got, err := NormalRawMoment(n, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-math.Pow(2, float64(n))) > 1e-12 {
			t.Errorf("degenerate m%d = %g", n, got)
		}
	}
}

func TestNormalRawMomentErrors(t *testing.T) {
	if _, err := NormalRawMoment(-1, 0, 1); !errors.Is(err, ErrBadParameter) {
		t.Error("negative order accepted")
	}
	if _, err := NormalRawMoment(2, 0, -1); !errors.Is(err, ErrBadParameter) {
		t.Error("negative variance accepted")
	}
}

// Property: m2 - m1^2 = variance for any (mu, sigma2).
func TestNormalMomentVarianceProperty(t *testing.T) {
	f := func(muRaw, s2Raw float64) bool {
		mu := math.Mod(muRaw, 100)
		s2 := math.Abs(math.Mod(s2Raw, 100))
		if math.IsNaN(mu) || math.IsNaN(s2) {
			return true
		}
		m1, err1 := NormalRawMoment(1, mu, s2)
		m2, err2 := NormalRawMoment(2, mu, s2)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs((m2-m1*m1)-s2) <= 1e-9*(1+s2+mu*mu)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
