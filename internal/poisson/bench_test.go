package poisson

import (
	"math"
	"testing"
)

// Ablation (DESIGN.md): log-space weight evaluation vs the recursive
// product with running normalization. The log-space route costs one
// Lgamma+Exp per weight but never under/overflows; the recursion is
// cheaper per term but needs a carefully chosen starting point.

func BenchmarkWeightsLogSpace(b *testing.B) {
	const lambda = 40_000.0
	lo, hi := 39_000, 41_000
	for i := 0; i < b.N; i++ {
		var sum float64
		for k := lo; k <= hi; k++ {
			sum += math.Exp(LogPMF(k, lambda))
		}
		if sum <= 0 {
			b.Fatal("vanished")
		}
	}
}

func BenchmarkWeightsRecursive(b *testing.B) {
	const lambda = 40_000.0
	lo, hi := 39_000, 41_000
	for i := 0; i < b.N; i++ {
		// Start from the mode in linear space and recur outward.
		w := math.Exp(LogPMF(lo, lambda))
		sum := w
		for k := lo + 1; k <= hi; k++ {
			w *= lambda / float64(k)
			sum += w
		}
		if sum <= 0 {
			b.Fatal("vanished")
		}
	}
}

func BenchmarkWindowLargeLambda(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Window(40_000, 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTailProb(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = TailProb(41_000, 40_000)
	}
}
