package poisson

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestPMFKnown(t *testing.T) {
	cases := []struct {
		k      int
		lambda float64
		want   float64
	}{
		{0, 1, math.Exp(-1)},
		{1, 1, math.Exp(-1)},
		{2, 1, math.Exp(-1) / 2},
		{0, 0, 1},
		{3, 0, 0},
		{5, 2.5, math.Exp(-2.5) * math.Pow(2.5, 5) / 120},
	}
	for _, c := range cases {
		got := PMF(c.k, c.lambda)
		if math.Abs(got-c.want) > 1e-15*(1+c.want) {
			t.Errorf("PMF(%d, %g) = %.16g, want %.16g", c.k, c.lambda, got, c.want)
		}
	}
}

func TestPMFNegativeK(t *testing.T) {
	if got := PMF(-1, 2); got != 0 {
		t.Errorf("PMF(-1, 2) = %g, want 0", got)
	}
	if got := LogPMF(-1, 2); !math.IsInf(got, -1) {
		t.Errorf("LogPMF(-1, 2) = %g, want -Inf", got)
	}
}

func TestLogPMFHugeLambdaNoUnderflow(t *testing.T) {
	// The paper's large example: qt = 40,000. Near the mode the pmf is
	// ~1/sqrt(2 pi qt) and must come out finite and positive.
	lambda := 40000.0
	got := PMF(40000, lambda)
	want := 1 / math.Sqrt(2*math.Pi*lambda)
	if got <= 0 || math.Abs(got-want)/want > 0.01 {
		t.Errorf("PMF at mode = %g, want ~%g", got, want)
	}
	// k = 0 underflows to zero gracefully (not NaN).
	if got := PMF(0, lambda); got != 0 {
		t.Errorf("PMF(0, 40000) = %g, want underflow to 0", got)
	}
}

func TestPMFSumsToOne(t *testing.T) {
	for _, lambda := range []float64{0.1, 1, 10, 300} {
		var sum float64
		limit := int(lambda + 60*math.Sqrt(lambda+1))
		for k := 0; k <= limit; k++ {
			sum += PMF(k, lambda)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("lambda=%g: pmf sums to %.15g", lambda, sum)
		}
	}
}

func TestTailProbComplementsCDF(t *testing.T) {
	for _, lambda := range []float64{0.5, 3, 42, 1000} {
		for _, g := range []int{0, 1, int(lambda), int(2 * lambda)} {
			tail := TailProb(g, lambda)
			cdf := CDF(g, lambda)
			if math.Abs(tail+cdf-1) > 1e-12 {
				t.Errorf("lambda=%g g=%d: tail+cdf = %.15g", lambda, g, tail+cdf)
			}
		}
	}
}

func TestTailProbEdge(t *testing.T) {
	if got := TailProb(-1, 3); got != 1 {
		t.Errorf("TailProb(-1) = %g, want 1", got)
	}
	if got := TailProb(5, 0); got != 0 {
		t.Errorf("TailProb with lambda=0 = %g, want 0", got)
	}
	if got := CDF(-1, 3); got != 0 {
		t.Errorf("CDF(-1) = %g, want 0", got)
	}
}

func TestTailProbMonotoneProperty(t *testing.T) {
	f := func(l uint8, g uint8) bool {
		lambda := float64(l%100) + 0.5
		gi := int(g % 120)
		return TailProb(gi+1, lambda) <= TailProb(gi, lambda)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogTailProbMatchesDirect(t *testing.T) {
	for _, lambda := range []float64{1, 17, 250} {
		for _, g := range []int{0, 5, int(lambda) + 3, int(lambda) + 30} {
			direct := TailProb(g, lambda)
			if direct == 0 {
				continue
			}
			got := LogTailProb(g, lambda)
			if math.Abs(got-math.Log(direct)) > 1e-9 {
				t.Errorf("lambda=%g g=%d: LogTailProb = %g, want %g", lambda, g, got, math.Log(direct))
			}
		}
	}
}

func TestLogTailProbUnderflowRegime(t *testing.T) {
	// Far tail of Poisson(10): at g = 400 the tail is ~1e-600, far below
	// float64 range; the log version must return a finite negative value
	// that upper-bounds the true tail.
	got := LogTailProb(400, 10)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("LogTailProb = %v", got)
	}
	if got > -600 {
		t.Errorf("LogTailProb(400, 10) = %g, expected < -600 (true tail ~ 1e-646)", got)
	}
	// Must be an upper bound on the leading term.
	if lead := LogPMF(401, 10); got < lead {
		t.Errorf("LogTailProb %g below leading term %g", got, lead)
	}
}

func TestLogTailProbEdge(t *testing.T) {
	if got := LogTailProb(-1, 5); got != 0 {
		t.Errorf("LogTailProb(-1) = %g, want 0 (= ln 1)", got)
	}
	if got := LogTailProb(3, 0); !math.IsInf(got, -1) {
		t.Errorf("LogTailProb lambda=0 = %g, want -Inf", got)
	}
}

func TestWindowCoversMass(t *testing.T) {
	for _, lambda := range []float64{0.3, 2, 50, 5000} {
		w, err := Window(lambda, 1e-10)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, p := range w.Prob {
			sum += p
		}
		if sum < 1-1e-9 {
			t.Errorf("lambda=%g: window keeps %.12g mass", lambda, sum)
		}
		if w.MassDropped > 1e-9 {
			t.Errorf("lambda=%g: dropped %g", lambda, w.MassDropped)
		}
		// Window entries must match the pmf.
		for i, p := range w.Prob {
			if math.Abs(p-PMF(w.Left+i, lambda)) > 1e-15 {
				t.Errorf("lambda=%g: window[%d] mismatch", lambda, i)
				break
			}
		}
	}
}

func TestWindowLambdaZero(t *testing.T) {
	w, err := Window(0, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if w.Left != 0 || len(w.Prob) != 1 || w.Prob[0] != 1 {
		t.Errorf("Window(0) = %+v", w)
	}
}

func TestWindowBadArgs(t *testing.T) {
	if _, err := Window(-1, 1e-9); !errors.Is(err, ErrBadRate) {
		t.Errorf("negative lambda: %v", err)
	}
	if _, err := Window(math.NaN(), 1e-9); !errors.Is(err, ErrBadRate) {
		t.Errorf("NaN lambda: %v", err)
	}
	if _, err := Window(1, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := Window(1, 1); err == nil {
		t.Error("eps=1 accepted")
	}
}

func TestWindowLeftTruncationLargeLambda(t *testing.T) {
	w, err := Window(10000, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if w.Left == 0 {
		t.Error("large lambda should left-truncate the window")
	}
	if w.Left > 10000 {
		t.Errorf("left edge %d beyond the mode", w.Left)
	}
}

func TestPMFWindow(t *testing.T) {
	for _, lambda := range []float64{0.3, 7, 56, 1000} {
		g := int(lambda) + 60
		prob, first, last := PMFWindow(lambda, g)
		if len(prob) != g+1 {
			t.Fatalf("lambda=%g: len %d, want %d", lambda, len(prob), g+1)
		}
		for k := 0; k <= g; k++ {
			want := PMF(k, lambda)
			if math.Float64bits(prob[k]) != math.Float64bits(want) {
				t.Fatalf("lambda=%g k=%d: %g != PMF %g", lambda, k, prob[k], want)
			}
			if (prob[k] > 0) != (k >= first && k <= last) {
				t.Fatalf("lambda=%g k=%d: p=%g outside window [%d,%d]", lambda, k, prob[k], first, last)
			}
		}
	}
}

func TestPMFWindowLargeLambdaClipsHead(t *testing.T) {
	// At lambda = 40,000 (the paper's large example) the pmf head
	// underflows to exactly zero in float64; the window must skip it.
	prob, first, last := PMFWindow(40000, 41000)
	if first < 30000 {
		t.Errorf("first = %d, expected the underflowed head clipped", first)
	}
	if last != 41000 {
		t.Errorf("last = %d, want 41000 (pmf still positive at g)", last)
	}
	if prob[first-1] != 0 || prob[first] == 0 {
		t.Errorf("window edge wrong: p[%d]=%g p[%d]=%g", first-1, prob[first-1], first, prob[first])
	}
}

func TestPMFWindowAllZero(t *testing.T) {
	// g = 0 at enormous lambda: every entry underflows, last < first
	// marks the window empty.
	_, first, last := PMFWindow(1e6, 3)
	if last >= first {
		t.Errorf("expected empty window, got [%d,%d]", first, last)
	}
}
