// Package poisson computes Poisson probabilities and tail sums in a
// numerically stable way. Randomization (uniformization) methods weight
// matrix-vector iterates by Poisson(qt) probabilities; the paper's large
// example uses qt = 40,000, where the naive recursion starting from
// e^{-qt} underflows immediately. All probabilities here are computed in
// log space via the log-gamma function.
package poisson

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadRate is returned for negative or non-finite rates.
var ErrBadRate = errors.New("poisson: rate must be finite and non-negative")

// LogPMF returns ln P(X = k) for X ~ Poisson(lambda). LogPMF(0, 0) = 0.
// It returns -Inf for k < 0.
func LogPMF(k int, lambda float64) float64 {
	if k < 0 {
		return math.Inf(-1)
	}
	if lambda == 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	lg, _ := math.Lgamma(float64(k) + 1)
	return -lambda + float64(k)*math.Log(lambda) - lg
}

// PMF returns P(X = k) for X ~ Poisson(lambda), evaluated via log space so
// it degrades gracefully (to 0) instead of producing NaN for extreme inputs.
func PMF(k int, lambda float64) float64 {
	return math.Exp(LogPMF(k, lambda))
}

// CDF returns P(X <= k).
func CDF(k int, lambda float64) float64 {
	if k < 0 {
		return 0
	}
	return 1 - TailProb(k, lambda)
}

// TailProb returns P(X > g) for X ~ Poisson(lambda).
//
// For g below the mean it accumulates the head probabilities and
// complements; for g at or above the mean it sums the rapidly decreasing
// tail directly. Both paths use compensated summation.
func TailProb(g int, lambda float64) float64 {
	if g < 0 {
		return 1
	}
	if lambda == 0 {
		return 0
	}
	if float64(g) < lambda {
		// Head sum: p_0 + ... + p_g, then complement.
		var sum, comp float64
		for k := 0; k <= g; k++ {
			p := PMF(k, lambda)
			y := p - comp
			t := sum + y
			comp = (t - sum) - y
			sum = t
		}
		if sum >= 1 {
			return 0
		}
		return 1 - sum
	}
	// Tail sum starting at g+1. Terms decay at least geometrically with
	// ratio lambda/(g+2) < 1.
	p := PMF(g+1, lambda)
	var sum, comp float64
	k := g + 1
	for p > 0 {
		y := p - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
		if p < sum*1e-18 {
			break
		}
		k++
		p *= lambda / float64(k)
	}
	return sum
}

// LogTailProb returns ln P(X > g). For tails that underflow float64 it
// falls back to a log-sum-exp over the leading terms plus a geometric
// remainder bound, so the randomization error-bound search (eq. 11 of the
// paper) can run entirely in log space.
func LogTailProb(g int, lambda float64) float64 {
	if g < 0 {
		return 0
	}
	if lambda == 0 {
		return math.Inf(-1)
	}
	if p := TailProb(g, lambda); p > 0 {
		return math.Log(p)
	}
	// Underflowed: work in log space. ln(sum_{k>g} p_k) with
	// p_{k+1}/p_k = lambda/(k+1) and ratio < 1 once k >= lambda.
	lead := LogPMF(g+1, lambda)
	ratio := lambda / float64(g+2)
	if ratio >= 1 {
		// Should not happen for underflowing tails, but stay safe.
		return lead
	}
	// sum <= p_{g+1} / (1 - ratio); also sum >= p_{g+1}. Use the
	// geometric upper bound, which is what the error bound needs
	// (a conservative G).
	return lead - math.Log1p(-ratio)
}

// PMFWindow returns prob[k] = PMF(k, lambda) for k = 0..g together with
// the first and last indices whose probability is non-zero in float64 —
// the effective support of the truncated distribution after underflow.
// For large lambda the head of the distribution underflows to exactly
// zero (lambda = 40,000 zeroes every k below roughly 36,000), so a
// consumer weighting a k-indexed recursion can skip those iterations'
// accumulation entirely. This is the same head/tail clipping Window
// performs by probability mass, restated for a caller-chosen truncation
// point g: here nothing representable is dropped, the window is exactly
// where the pmf is non-zero. If every entry is zero, first = 0 and
// last = -1.
func PMFWindow(lambda float64, g int) (prob []float64, first, last int) {
	prob = make([]float64, g+1)
	last = -1
	for k := 0; k <= g; k++ {
		p := PMF(k, lambda)
		prob[k] = p
		if p > 0 {
			if last < 0 {
				first = k
			}
			last = k
		}
	}
	return prob, first, last
}

// Weights holds a truncated window of Poisson probabilities.
type Weights struct {
	// Left is the first index of the window; Prob[i] = P(X = Left+i).
	Left int
	Prob []float64
	// MassDropped is the probability mass outside the window.
	MassDropped float64
}

// Window computes a probability window covering all k with cumulative mass
// at least 1-eps: the left truncation drops at most eps/2 head mass and the
// right truncation at most eps/2 tail mass. It is the weight source for the
// uniformized transient solution of the CTMC.
func Window(lambda, eps float64) (*Weights, error) {
	if math.IsNaN(lambda) || math.IsInf(lambda, 0) || lambda < 0 {
		return nil, fmt.Errorf("%w: lambda=%v", ErrBadRate, lambda)
	}
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("poisson: eps must be in (0,1), got %g", eps)
	}
	if lambda == 0 {
		return &Weights{Left: 0, Prob: []float64{1}}, nil
	}

	mode := int(lambda)
	// Right edge: smallest g >= mode with P(X > g) <= eps/2.
	right := mode
	step := 1 + int(math.Sqrt(lambda))
	for TailProb(right, lambda) > eps/2 {
		right += step
	}
	// Left edge: largest l with P(X < l) <= eps/2, found by scanning down
	// from the mode. For small lambda the left edge is 0.
	left := 0
	if lambda > 25 {
		lo := mode - int(10*math.Sqrt(lambda)+10)
		if lo < 0 {
			lo = 0
		}
		var head, comp float64
		for k := lo; k < mode; k++ {
			p := PMF(k, lambda)
			y := p - comp
			t := head + y
			comp = (t - head) - y
			head = t
			if head > eps/2 {
				left = k // keep from k on: P(X < k) <= eps/2 held before adding p_k
				break
			}
		}
		if left == 0 && lo > 0 {
			left = lo
		}
	}

	w := &Weights{Left: left, Prob: make([]float64, right-left+1)}
	var kept, comp float64
	for k := left; k <= right; k++ {
		p := PMF(k, lambda)
		w.Prob[k-left] = p
		y := p - comp
		t := kept + y
		comp = (t - kept) - y
		kept = t
	}
	w.MassDropped = 1 - kept
	if w.MassDropped < 0 {
		w.MassDropped = 0
	}
	return w, nil
}
