package resilience

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrBudgetExhausted is returned by Retryer.Do when a retry was warranted
// but the retry budget had run dry; the underlying error is wrapped
// alongside it.
var ErrBudgetExhausted = errors.New("resilience: retry budget exhausted")

// transientError marks an error as retryable.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err to mark it retryable for Retryer.Do. Wrapping nil
// returns nil. errors.Is / errors.As see through the wrapper.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err (or anything it wraps) was marked with
// Transient.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// Retryer composes a backoff policy, an optional retry budget, and an
// optional circuit breaker around an idempotent operation. Only use it
// for operations that are safe to repeat; the solver service's solves are
// idempotent by construction (content-addressed, side-effect free).
type Retryer struct {
	Policy  RetryPolicy
	Budget  *Budget  // nil: unlimited retries within Policy.MaxAttempts
	Breaker *Breaker // nil: no circuit breaking

	// sleep overrides the backoff wait (tests). The default honors ctx.
	sleep func(ctx context.Context, d time.Duration) error
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do runs op, retrying errors marked Transient with jittered exponential
// backoff until the policy's attempt limit, the retry budget, the circuit
// breaker, or the context stops it. Errors not marked Transient are
// returned immediately. The breaker observes every attempt's outcome
// (transient failures count against it; permanent errors count as
// successes — the service answered).
func (r *Retryer) Do(ctx context.Context, op func(ctx context.Context) error) error {
	policy := r.Policy.withDefaults()
	sleep := r.sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	var err error
	for attempt := 0; ; attempt++ {
		if brkErr := r.Breaker.Allow(); brkErr != nil {
			if err != nil {
				// Mid-loop trip: surface what we were retrying too.
				return fmt.Errorf("%w (last error: %w)", brkErr, err)
			}
			return brkErr
		}
		err = op(ctx)
		r.Breaker.Record(err == nil || !IsTransient(err))
		if err == nil {
			r.Budget.Deposit()
			return nil
		}
		if !IsTransient(err) {
			return err
		}
		if attempt+1 >= policy.MaxAttempts {
			return err
		}
		if ctx.Err() != nil {
			return err
		}
		if !r.Budget.Withdraw() {
			return fmt.Errorf("%w: %w", ErrBudgetExhausted, err)
		}
		if slErr := sleep(ctx, policy.Delay(attempt)); slErr != nil {
			return err
		}
	}
}
