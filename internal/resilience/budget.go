package resilience

import "sync"

// Budget is a token-bucket retry budget in the style of gRPC's retry
// throttling: every successful call deposits DepositRatio tokens (capped
// at Max), every retry withdraws one, and a retry is forbidden when less
// than one token remains. Under a sustained outage the bucket drains and
// the client stops amplifying load with retries, while occasional
// transient failures always have budget.
//
// A nil *Budget is valid and never throttles.
type Budget struct {
	// Max is the bucket capacity in tokens (default 10).
	Max float64
	// DepositRatio is the fraction of a token returned per success
	// (default 0.1: one retry earned per ten successes).
	DepositRatio float64

	mu     sync.Mutex
	tokens float64
	inited bool
}

// NewBudget returns a budget with the given capacity and per-success
// deposit ratio; zero values select the defaults. The bucket starts full.
func NewBudget(max, depositRatio float64) *Budget {
	return &Budget{Max: max, DepositRatio: depositRatio}
}

// init applies defaults and fills the bucket on first use.
func (b *Budget) init() {
	if b.inited {
		return
	}
	if b.Max <= 0 {
		b.Max = 10
	}
	if b.DepositRatio <= 0 {
		b.DepositRatio = 0.1
	}
	b.tokens = b.Max
	b.inited = true
}

// Withdraw consumes one token for a retry. It reports false, leaving the
// bucket untouched, when less than one token remains.
func (b *Budget) Withdraw() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.init()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Deposit returns DepositRatio tokens to the bucket after a success.
func (b *Budget) Deposit() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.init()
	b.tokens += b.DepositRatio
	if b.tokens > b.Max {
		b.tokens = b.Max
	}
}

// Tokens returns the current token count (for tests and metrics).
func (b *Budget) Tokens() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.init()
	return b.tokens
}
