package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestDelayFullJitterBounds(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	for attempt := 0; attempt < 64; attempt++ {
		ceil := 100 * time.Millisecond << uint(min(attempt, 10))
		if ceil > time.Second || ceil <= 0 {
			ceil = time.Second
		}
		for i := 0; i < 50; i++ {
			d := p.Delay(attempt)
			if d < 0 || d >= ceil {
				t.Fatalf("attempt %d: delay %v outside [0, %v)", attempt, d, ceil)
			}
		}
	}
}

func TestDelayDeterministicWithInjectedRand(t *testing.T) {
	p := RetryPolicy{BaseDelay: 80 * time.Millisecond, MaxDelay: time.Second, rnd: func() float64 { return 0.5 }}
	want := []time.Duration{40, 80, 160, 320, 500, 500, 500}
	for attempt, w := range want {
		if got := p.Delay(attempt); got != w*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", attempt, got, w*time.Millisecond)
		}
	}
}

func TestBudgetAccounting(t *testing.T) {
	b := NewBudget(2, 0.5)
	if !b.Withdraw() || !b.Withdraw() {
		t.Fatal("full bucket refused withdrawals")
	}
	if b.Withdraw() {
		t.Fatal("empty bucket allowed a withdrawal")
	}
	b.Deposit() // 0.5: still below one token
	if b.Withdraw() {
		t.Fatal("withdrawal below one token")
	}
	b.Deposit() // 1.0
	if !b.Withdraw() {
		t.Fatal("bucket refused after refill")
	}
	for i := 0; i < 100; i++ {
		b.Deposit()
	}
	if got := b.Tokens(); got != 2 {
		t.Fatalf("tokens = %v, want capped at 2", got)
	}
	var nilBudget *Budget
	if !nilBudget.Withdraw() {
		t.Fatal("nil budget must never throttle")
	}
	nilBudget.Deposit() // must not panic
}

// testClock is a manually advanced clock for breaker cooldown tests.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *testClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func newTestBreaker(cfg BreakerConfig) (*Breaker, *testClock) {
	clk := &testClock{t: time.Unix(0, 0)}
	cfg.now = clk.now
	return NewBreaker(cfg), clk
}

func TestBreakerFullCycle(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{
		Window: 10, FailureRatio: 0.5, MinSamples: 4,
		Cooldown: time.Second, HalfOpenProbes: 2,
	})

	// Healthy traffic keeps it closed.
	for i := 0; i < 20; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker rejected: %v", err)
		}
		b.Record(true)
	}
	// Failures trip it at the ratio.
	for i := 0; i < 10; i++ {
		if b.Allow() != nil {
			break
		}
		b.Record(false)
	}
	if got := b.State(); got != "open" {
		t.Fatalf("state = %q, want open", got)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker allowed a call: %v", err)
	}

	// Cooldown elapses: half-open admits exactly HalfOpenProbes probes.
	clk.advance(time.Second + time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open refused first probe: %v", err)
	}
	if got := b.State(); got != "half-open" {
		t.Fatalf("state = %q, want half-open", got)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open refused second probe: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("half-open admitted a third concurrent probe: %v", err)
	}
	b.Record(true)
	b.Record(true)
	if got := b.State(); got != "closed" {
		t.Fatalf("state after probe successes = %q, want closed", got)
	}

	st := b.Stats()
	if st.Opens != 1 || st.HalfOpens != 1 || st.Closes != 1 {
		t.Errorf("stats = %+v, want exactly one open/half-open/close", st)
	}
	if st.Rejected == 0 {
		t.Error("no rejections counted while open")
	}
}

func TestBreakerReopensOnProbeFailure(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{
		Window: 4, FailureRatio: 0.5, MinSamples: 2, Cooldown: time.Second,
	})
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal(err)
		}
		b.Record(false)
	}
	if b.State() != "open" {
		t.Fatalf("state = %q, want open", b.State())
	}
	clk.advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	b.Record(false)
	if b.State() != "open" {
		t.Fatalf("state after failed probe = %q, want open", b.State())
	}
	if st := b.Stats(); st.Opens != 2 {
		t.Errorf("opens = %d, want 2", st.Opens)
	}
}

func TestBreakerMinSamplesGuard(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{Window: 10, FailureRatio: 0.5, MinSamples: 5})
	// Four straight failures: below MinSamples, must stay closed.
	for i := 0; i < 4; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("tripped before MinSamples: %v", err)
		}
		b.Record(false)
	}
	if b.State() != "closed" {
		t.Fatalf("state = %q, want closed below MinSamples", b.State())
	}
}

func TestNilBreakerIsNoop(t *testing.T) {
	var b *Breaker
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(false)
	if b.State() != "closed" {
		t.Fatal("nil breaker not closed")
	}
}

// instantRetryer returns a Retryer whose backoff sleeps are recorded, not
// slept.
func instantRetryer(policy RetryPolicy, budget *Budget, breaker *Breaker) (*Retryer, *[]time.Duration) {
	var slept []time.Duration
	r := &Retryer{Policy: policy, Budget: budget, Breaker: breaker,
		sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return ctx.Err()
		}}
	return r, &slept
}

func TestRetryerRetriesTransientUntilSuccess(t *testing.T) {
	r, slept := instantRetryer(RetryPolicy{MaxAttempts: 5}, nil, nil)
	calls := 0
	err := r.Do(context.Background(), func(ctx context.Context) error {
		calls++
		if calls < 3 {
			return Transient(errors.New("boom"))
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want success on third call", err, calls)
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(*slept))
	}
}

func TestRetryerStopsAtMaxAttempts(t *testing.T) {
	r, _ := instantRetryer(RetryPolicy{MaxAttempts: 3}, nil, nil)
	calls := 0
	boom := errors.New("boom")
	err := r.Do(context.Background(), func(ctx context.Context) error {
		calls++
		return Transient(boom)
	})
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the wrapped boom", err)
	}
}

func TestRetryerPermanentErrorNotRetried(t *testing.T) {
	r, _ := instantRetryer(RetryPolicy{MaxAttempts: 5}, nil, nil)
	calls := 0
	perm := errors.New("bad request")
	err := r.Do(context.Background(), func(ctx context.Context) error {
		calls++
		return perm
	})
	if calls != 1 || !errors.Is(err, perm) {
		t.Fatalf("calls=%d err=%v, want single attempt returning the error", calls, err)
	}
}

func TestRetryerBudgetExhaustion(t *testing.T) {
	budget := NewBudget(1, 0.1)
	r, _ := instantRetryer(RetryPolicy{MaxAttempts: 10}, budget, nil)
	calls := 0
	boom := errors.New("boom")
	err := r.Do(context.Background(), func(ctx context.Context) error {
		calls++
		return Transient(boom)
	})
	// One token: first retry allowed, second refused.
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
	if !errors.Is(err, ErrBudgetExhausted) || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want ErrBudgetExhausted wrapping boom", err)
	}
}

func TestRetryerBreakerShortCircuits(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{Window: 4, FailureRatio: 0.5, MinSamples: 2, Cooldown: time.Hour})
	r, _ := instantRetryer(RetryPolicy{MaxAttempts: 10}, nil, b)
	calls := 0
	err := r.Do(context.Background(), func(ctx context.Context) error {
		calls++
		return Transient(errors.New("boom"))
	})
	// Two recorded failures trip the breaker; the third attempt is refused.
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 before the breaker opened", calls)
	}
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
}

func TestRetryerContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := &Retryer{Policy: RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond}}
	calls := 0
	boom := errors.New("boom")
	err := r.Do(ctx, func(ctx context.Context) error {
		calls++
		cancel()
		return Transient(boom)
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (context canceled between attempts)", calls)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want last operation error", err)
	}
}

func TestTransientClassification(t *testing.T) {
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) != nil")
	}
	base := errors.New("x")
	wrapped := fmt.Errorf("context: %w", Transient(base))
	if !IsTransient(wrapped) {
		t.Fatal("transient mark lost through wrapping")
	}
	if !errors.Is(wrapped, base) {
		t.Fatal("errors.Is lost the base error")
	}
	if IsTransient(base) {
		t.Fatal("unmarked error reported transient")
	}
}
