// Package resilience provides the client-side fault-tolerance primitives of
// the solver service: exponential backoff with full jitter, a token-bucket
// retry budget, a sliding-window circuit breaker, and a Retryer that
// composes the three around an idempotent operation.
//
// The package is transport-agnostic: it never imports net/http. Callers
// classify their own errors by wrapping retryable ones with Transient; the
// Retryer treats everything else as permanent and returns it immediately.
package resilience

import (
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy is an exponential backoff schedule with full jitter
// (delay_k uniform in [0, min(MaxDelay, BaseDelay*2^k))), the AWS
// architecture-blog variant that decorrelates retry storms better than
// equal or proportional jitter. The zero value selects the defaults.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (default 4; 1 disables retries).
	MaxAttempts int
	// BaseDelay is the pre-jitter delay of the first retry (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the pre-jitter delay growth (default 2s).
	MaxDelay time.Duration

	// rnd overrides the jitter source (tests); nil uses a shared
	// rand.Rand seeded from the global source.
	rnd func() float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// jitterSource is the default shared jitter RNG. math/rand's global
// functions are already mutex-protected; a dedicated locked source keeps
// the policy independent of global reseeding.
var jitterSource = struct {
	mu sync.Mutex
	r  *rand.Rand
}{r: rand.New(rand.NewSource(rand.Int63()))}

func defaultJitter() float64 {
	jitterSource.mu.Lock()
	defer jitterSource.mu.Unlock()
	return jitterSource.r.Float64()
}

// Delay returns the jittered backoff delay after the given zero-based
// failed attempt: uniform in [0, min(MaxDelay, BaseDelay*2^attempt)).
func (p RetryPolicy) Delay(attempt int) time.Duration {
	p = p.withDefaults()
	// Double up to the ceiling instead of shifting, so large attempt
	// counts cannot overflow the duration.
	ceil := p.BaseDelay
	for i := 0; i < attempt && ceil < p.MaxDelay; i++ {
		ceil *= 2
	}
	if ceil > p.MaxDelay || ceil <= 0 {
		ceil = p.MaxDelay
	}
	rnd := p.rnd
	if rnd == nil {
		rnd = defaultJitter
	}
	return time.Duration(rnd() * float64(ceil))
}
