package resilience

import (
	"testing"
	"time"
)

func TestBreakerRegistryPerName(t *testing.T) {
	reg := NewBreakerRegistry(BreakerConfig{
		Window: 4, FailureRatio: 0.5, MinSamples: 2, Cooldown: time.Hour,
	})
	a := reg.For("peer-a")
	if reg.For("peer-a") != a {
		t.Fatal("For returned a different breaker for the same name")
	}
	b := reg.For("peer-b")
	if a == b {
		t.Fatal("distinct names share a breaker")
	}

	// Trip only peer-a; peer-b must stay closed.
	for i := 0; i < 3; i++ {
		if err := a.Allow(); err != nil {
			break
		}
		a.Record(false)
	}
	if a.State() != "open" {
		t.Fatalf("peer-a breaker state = %q, want open", a.State())
	}
	if b.State() != "closed" {
		t.Fatalf("peer-b breaker state = %q, want closed", b.State())
	}

	states := reg.States()
	if states["peer-a"] != "open" || states["peer-b"] != "closed" {
		t.Errorf("States() = %v, want peer-a open / peer-b closed", states)
	}
	if got := reg.Names(); len(got) != 2 || got[0] != "peer-a" || got[1] != "peer-b" {
		t.Errorf("Names() = %v, want [peer-a peer-b]", got)
	}
	if st := reg.Stats()["peer-a"]; st.Opens != 1 {
		t.Errorf("peer-a opens = %d, want 1", st.Opens)
	}
}

func TestBreakerRegistryConcurrentFor(t *testing.T) {
	reg := NewBreakerRegistry(BreakerConfig{})
	const goroutines = 16
	got := make(chan *Breaker, goroutines)
	for i := 0; i < goroutines; i++ {
		go func() { got <- reg.For("shared") }()
	}
	first := <-got
	for i := 1; i < goroutines; i++ {
		if b := <-got; b != first {
			t.Fatal("concurrent For returned distinct breakers for one name")
		}
	}
}
