package resilience

import (
	"sort"
	"sync"
)

// BreakerRegistry hands out one circuit breaker per named endpoint, all
// sharing a configuration. A cluster client keeps one registry across its
// peers so that a replica going dark trips only its own breaker: calls to
// the dead peer fail fast while the ring routes around it, and the healthy
// peers' windows stay untouched.
//
// The zero value is not usable; construct with NewBreakerRegistry.
type BreakerRegistry struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	breakers map[string]*Breaker
}

// NewBreakerRegistry returns a registry whose breakers are created on
// first use with cfg (zero fields select the breaker defaults).
func NewBreakerRegistry(cfg BreakerConfig) *BreakerRegistry {
	return &BreakerRegistry{cfg: cfg, breakers: make(map[string]*Breaker)}
}

// For returns the breaker for name, creating it on first use. The same
// *Breaker is returned for every subsequent call with the same name.
func (r *BreakerRegistry) For(name string) *Breaker {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.breakers[name]
	if !ok {
		b = NewBreaker(r.cfg)
		r.breakers[name] = b
	}
	return b
}

// Names returns the registered endpoint names in sorted order.
func (r *BreakerRegistry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.breakers))
	for name := range r.breakers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// States returns each registered breaker's state ("closed", "open",
// "half-open") keyed by name — the per-peer gauge surfaced at /metrics.
func (r *BreakerRegistry) States() map[string]string {
	r.mu.Lock()
	snapshot := make(map[string]*Breaker, len(r.breakers))
	for name, b := range r.breakers {
		snapshot[name] = b
	}
	r.mu.Unlock()
	states := make(map[string]string, len(snapshot))
	for name, b := range snapshot {
		states[name] = b.State()
	}
	return states
}

// Stats returns each registered breaker's transition counters keyed by
// name.
func (r *BreakerRegistry) Stats() map[string]BreakerStats {
	r.mu.Lock()
	snapshot := make(map[string]*Breaker, len(r.breakers))
	for name, b := range r.breakers {
		snapshot[name] = b
	}
	r.mu.Unlock()
	stats := make(map[string]BreakerStats, len(snapshot))
	for name, b := range snapshot {
		stats[name] = b.Stats()
	}
	return stats
}
