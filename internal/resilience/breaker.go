package resilience

import (
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen is returned by Breaker.Allow (and by Retryer.Do) while
// the circuit is open: the recent failure rate tripped the breaker and the
// cooldown has not yet elapsed.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// BreakerConfig configures a sliding-window circuit breaker. The zero
// value selects the defaults.
type BreakerConfig struct {
	// Window is the number of most recent outcomes considered (default 20).
	Window int
	// FailureRatio opens the circuit when failures/window-size reaches it
	// with at least MinSamples outcomes recorded (default 0.5).
	FailureRatio float64
	// MinSamples is the minimum number of recorded outcomes before the
	// ratio can trip the breaker (default 5), so a single failure on a
	// cold window does not open the circuit.
	MinSamples int
	// Cooldown is how long the circuit stays open before probing
	// (default 1s).
	Cooldown time.Duration
	// HalfOpenProbes is both the number of concurrent trial requests
	// admitted in the half-open state and the number of consecutive probe
	// successes required to close the circuit (default 1).
	HalfOpenProbes int

	// now overrides the clock (tests).
	now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 20
	}
	if c.FailureRatio <= 0 {
		c.FailureRatio = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// breaker states.
const (
	stateClosed = iota
	stateOpen
	stateHalfOpen
)

// BreakerStats counts state transitions and rejections; the chaos suite
// asserts at least one full open -> half-open -> close cycle from these.
type BreakerStats struct {
	// Opens counts closed/half-open -> open transitions.
	Opens int64 `json:"opens"`
	// HalfOpens counts open -> half-open transitions.
	HalfOpens int64 `json:"half_opens"`
	// Closes counts half-open -> closed transitions.
	Closes int64 `json:"closes"`
	// Rejected counts calls refused with ErrBreakerOpen.
	Rejected int64 `json:"rejected"`
}

// Breaker is a sliding-window circuit breaker. Closed, it admits every
// call and records outcomes into a fixed ring; when the windowed failure
// ratio trips it opens and rejects calls for the cooldown, then goes
// half-open and admits a limited number of probes. Probe successes close
// it (clearing the window); a probe failure re-opens it.
//
// A nil *Breaker is valid: it admits everything and records nothing.
type Breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	inited   bool
	state    int
	ring     []bool // true = failure
	next     int    // ring write index
	size     int    // outcomes recorded, <= len(ring)
	failures int    // failures currently in the ring
	openedAt time.Time
	inflight int // half-open probes admitted and not yet recorded
	probeOK  int // consecutive probe successes in half-open
	stats    BreakerStats
}

// NewBreaker returns a breaker with the given configuration (zero fields
// select defaults).
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg}
}

func (b *Breaker) init() {
	if !b.inited {
		b.cfg = b.cfg.withDefaults()
		b.ring = make([]bool, b.cfg.Window)
		b.inited = true
	}
}

// Allow reports whether a call may proceed. It returns ErrBreakerOpen
// while the circuit is open; once the cooldown elapses it transitions to
// half-open and admits up to HalfOpenProbes concurrent probes. Every
// admitted call must be matched by exactly one Record.
func (b *Breaker) Allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.init()
	switch b.state {
	case stateClosed:
		return nil
	case stateOpen:
		if b.cfg.now().Sub(b.openedAt) < b.cfg.Cooldown {
			b.stats.Rejected++
			return ErrBreakerOpen
		}
		b.state = stateHalfOpen
		b.stats.HalfOpens++
		b.inflight = 0
		b.probeOK = 0
		fallthrough
	default: // half-open
		if b.inflight >= b.cfg.HalfOpenProbes {
			b.stats.Rejected++
			return ErrBreakerOpen
		}
		b.inflight++
		return nil
	}
}

// Record reports the outcome of an admitted call. In the closed state it
// slides the outcome into the window and trips the breaker when the
// failure ratio is reached; in the half-open state a failure re-opens the
// circuit immediately and enough successes close it.
func (b *Breaker) Record(success bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.init()
	switch b.state {
	case stateClosed:
		b.push(!success)
		if b.size >= b.cfg.MinSamples &&
			float64(b.failures) >= b.cfg.FailureRatio*float64(b.size) {
			b.open()
		}
	case stateHalfOpen:
		if b.inflight > 0 {
			b.inflight--
		}
		if !success {
			b.open()
			return
		}
		b.probeOK++
		if b.probeOK >= b.cfg.HalfOpenProbes {
			b.state = stateClosed
			b.stats.Closes++
			b.reset()
		}
	case stateOpen:
		// A straggler from before the trip; the window is void now.
	}
}

// push slides one outcome into the ring.
func (b *Breaker) push(failure bool) {
	if b.size == len(b.ring) {
		if b.ring[b.next] {
			b.failures--
		}
	} else {
		b.size++
	}
	b.ring[b.next] = failure
	if failure {
		b.failures++
	}
	b.next = (b.next + 1) % len(b.ring)
}

func (b *Breaker) open() {
	b.state = stateOpen
	b.openedAt = b.cfg.now()
	b.stats.Opens++
	b.reset()
}

// reset clears the sliding window (entering open or closed anew).
func (b *Breaker) reset() {
	for i := range b.ring {
		b.ring[i] = false
	}
	b.next, b.size, b.failures = 0, 0, 0
	b.inflight, b.probeOK = 0, 0
}

// State returns "closed", "open", or "half-open".
func (b *Breaker) State() string {
	if b == nil {
		return "closed"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.init()
	switch b.state {
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Stats returns a snapshot of the transition counters.
func (b *Breaker) Stats() BreakerStats {
	if b == nil {
		return BreakerStats{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}
