package laplace

import (
	"errors"
	"math"
	"math/cmplx"
	"testing"

	"somrm/internal/brownian"
	"somrm/internal/core"
	"somrm/internal/ctmc"
	"somrm/internal/sparse"
)

func buildModel(t *testing.T, a, b float64, r, s []float64) *core.Model {
	t.Helper()
	gen, err := ctmc.NewGeneratorFromDense(2, []float64{-a, a, b, -b})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(gen, r, s, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewTransformerErrors(t *testing.T) {
	if _, err := NewTransformer(nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("nil model: %v", err)
	}
	m := buildModel(t, 1, 1, []float64{1, 1}, []float64{0, 0})
	b := sparse.NewBuilder(2, 2)
	if err := b.Add(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	mi, err := m.WithImpulses(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTransformer(mi); !errors.Is(err, ErrBadArgument) {
		t.Errorf("impulse model: %v", err)
	}
}

// Resolvent identity: [sI - Q + vR - v^2/2 S] b** = h must hold exactly.
func TestResolventIdentity(t *testing.T) {
	m := buildModel(t, 2, 3, []float64{1.5, -0.5}, []float64{0.4, 1.2})
	tr, err := NewTransformer(m)
	if err != nil {
		t.Fatal(err)
	}
	s := complex(1.2, 0.7)
	v := complex(0.3, -0.4)
	x, err := tr.Resolvent(s, v)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the matrix and verify A x = h.
	r := m.Rates()
	sv := m.Variances()
	q := m.Generator().Matrix().Dense()
	n := m.N()
	for i := 0; i < n; i++ {
		var acc complex128
		for j := 0; j < n; j++ {
			a := complex(-q[i*n+j], 0)
			if i == j {
				a += s + v*complex(r[i], 0) - v*v/2*complex(sv[i], 0)
			}
			acc += a * x[j]
		}
		if cmplx.Abs(acc-1) > 1e-10 {
			t.Errorf("row %d: A b** = %v, want 1", i, acc)
		}
	}
}

// b*(t, v) at v=0 must be 1 (total probability), and its first derivative
// in v at 0 gives -E[B(t)].
func TestRewardTransformMomentsConsistency(t *testing.T) {
	m := buildModel(t, 2, 3, []float64{1.5, -0.5}, []float64{0.4, 1.2})
	tr, err := NewTransformer(m)
	if err != nil {
		t.Fatal(err)
	}
	const tt = 0.8
	at0, err := tr.RewardTransform(tt, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range at0 {
		if cmplx.Abs(x-1) > 1e-12 {
			t.Errorf("b*(t, 0)[%d] = %v, want 1", i, x)
		}
	}
	// Central difference in v approximates -V1.
	h := 1e-5
	plus, err := tr.RewardTransform(tt, complex(h, 0))
	if err != nil {
		t.Fatal(err)
	}
	minus, err := tr.RewardTransform(tt, complex(-h, 0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.AccumulatedReward(tt, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.N(); i++ {
		deriv := real(plus[i]-minus[i]) / (2 * h)
		want := -res.VectorMoments[1][i]
		if math.Abs(deriv-want) > 1e-5*(1+math.Abs(want)) {
			t.Errorf("state %d: d/dv b* = %g, want %g", i, deriv, want)
		}
	}
}

// The characteristic function of a normal-reward model matches the normal
// characteristic function.
func TestCharacteristicFunctionNormalModel(t *testing.T) {
	m := buildModel(t, 3, 3, []float64{2, 2}, []float64{1.5, 1.5})
	tr, err := NewTransformer(m)
	if err != nil {
		t.Fatal(err)
	}
	const tt = 0.6
	for _, omega := range []float64{0.1, 0.5, 2, 5} {
		phi, err := tr.CharacteristicFunction(tt, omega)
		if err != nil {
			t.Fatal(err)
		}
		want := cmplx.Exp(complex(-omega*omega*1.5*tt/2, omega*2*tt))
		for i := range phi {
			if cmplx.Abs(phi[i]-want) > 1e-9 {
				t.Errorf("omega=%g state %d: %v, want %v", omega, i, phi[i], want)
			}
		}
	}
}

func TestInvertEulerKnownTransforms(t *testing.T) {
	// L^-1[1/(s+a)] = e^{-at}.
	for _, a := range []float64{0.5, 1, 3} {
		f := func(s complex128) (complex128, error) { return 1 / (s + complex(a, 0)), nil }
		for _, tt := range []float64{0.3, 1, 2} {
			got, err := InvertEuler(f, tt, nil)
			if err != nil {
				t.Fatal(err)
			}
			want := math.Exp(-a * tt)
			if math.Abs(got-want) > 1e-6*(1+want) {
				t.Errorf("a=%g t=%g: %g, want %g", a, tt, got, want)
			}
		}
	}
	// L^-1[1/s^2] = t.
	f := func(s complex128) (complex128, error) { return 1 / (s * s), nil }
	got, err := InvertEuler(f, 1.7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.7) > 1e-6 {
		t.Errorf("ramp: %g, want 1.7", got)
	}
}

func TestInvertEulerErrors(t *testing.T) {
	if _, err := InvertEuler(nil, 1, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("nil transform: %v", err)
	}
	ok := func(s complex128) (complex128, error) { return 1 / s, nil }
	if _, err := InvertEuler(ok, 0, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("t=0: %v", err)
	}
	boom := errors.New("boom")
	bad := func(s complex128) (complex128, error) { return 0, boom }
	if _, err := InvertEuler(bad, 1, nil); !errors.Is(err, boom) {
		t.Errorf("callback error not propagated: %v", err)
	}
}

// Euler inversion of the resolvent in s recovers b*(t, v): ties eq. (5) to
// eq. (2) numerically.
func TestResolventInvertsToRewardTransform(t *testing.T) {
	m := buildModel(t, 2, 3, []float64{1, 0.5}, []float64{0.3, 0.8})
	tr, err := NewTransformer(m)
	if err != nil {
		t.Fatal(err)
	}
	v := complex(0.4, 0)
	const tt = 0.9
	direct, err := tr.RewardTransform(tt, v)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.N(); i++ {
		i := i
		inv, err := InvertEuler(func(s complex128) (complex128, error) {
			x, err := tr.Resolvent(s, v)
			if err != nil {
				return 0, err
			}
			return x[i], nil
		}, tt, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(inv-real(direct[i])) > 1e-6*(1+math.Abs(real(direct[i]))) {
			t.Errorf("state %d: inverted %g vs direct %g", i, inv, real(direct[i]))
		}
	}
}

func TestDensityMatchesNormal(t *testing.T) {
	m := buildModel(t, 3, 3, []float64{2, 2}, []float64{1.5, 1.5})
	tr, err := NewTransformer(m)
	if err != nil {
		t.Fatal(err)
	}
	const tt = 0.6
	for _, x := range []float64{0, 0.8, 1.2, 2.5} {
		d, err := tr.Density(tt, x, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := brownian.NormalPDF(x, 2*tt, 1.5*tt)
		for i := range d {
			if math.Abs(d[i]-want) > 1e-6*(1+want) {
				t.Errorf("x=%g state %d: density %g, want %g", x, i, d[i], want)
			}
		}
	}
}

func TestDensityRequiresPositiveVariances(t *testing.T) {
	m := buildModel(t, 1, 1, []float64{1, 1}, []float64{0, 1})
	tr, err := NewTransformer(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Density(1, 0, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("zero variance density: %v", err)
	}
	if _, err := tr.Density(0, 0, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("t=0 density: %v", err)
	}
}

func TestCDFMatchesNormal(t *testing.T) {
	m := buildModel(t, 3, 3, []float64{2, 2}, []float64{1.5, 1.5})
	tr, err := NewTransformer(m)
	if err != nil {
		t.Fatal(err)
	}
	const tt = 0.6
	for _, x := range []float64{-0.5, 0.5, 1.2, 3} {
		c, err := tr.CDF(tt, x, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := brownian.NormalCDF(x, 2*tt, 1.5*tt)
		for i := range c {
			if math.Abs(c[i]-want) > 1e-4 {
				t.Errorf("x=%g state %d: CDF %g, want %g", x, i, c[i], want)
			}
		}
	}
}

func TestCDFBatchMatchesPointwise(t *testing.T) {
	m := buildModel(t, 2, 4, []float64{3, -1}, []float64{0.8, 1.4})
	tr, err := NewTransformer(m)
	if err != nil {
		t.Fatal(err)
	}
	const tt = 0.6
	xs := []float64{-0.5, 0.4, 1.1, 2.7}
	batch, err := tr.CDFBatch(tt, xs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, x := range xs {
		single, err := tr.CDF(tt, x, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range single {
			if math.Abs(batch[k][i]-single[i]) > 1e-12 {
				t.Errorf("x=%g state %d: batch %.14g vs single %.14g", x, i, batch[k][i], single[i])
			}
		}
	}
	if _, err := tr.CDFBatch(0, xs, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("t=0: %v", err)
	}
	if _, err := tr.CDFBatch(tt, nil, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("no points: %v", err)
	}
}

func TestCDFFirstOrderModelWithAtoms(t *testing.T) {
	// First-order model: B(t) is a mixture with smooth parts; Gil-Pelaez
	// must still work. Compare against the randomization mean through the
	// identity E[B] = integral of (1 - F(x)) dx - integral F(-x) dx
	// (checked loosely via a quadrature over the CDF).
	m := buildModel(t, 2, 3, []float64{2, 0}, []float64{0, 0})
	tr, err := NewTransformer(m)
	if err != nil {
		t.Fatal(err)
	}
	const tt = 1.0
	// CDF must be within [0, 1] and non-decreasing on a grid.
	prev := 0.0
	for k := 0; k <= 40; k++ {
		x := -0.2 + 2.6*float64(k)/40
		c, err := tr.CDF(tt, x, nil)
		if err != nil {
			t.Fatal(err)
		}
		agg := 0.5*c[0] + 0.5*c[1]
		if agg < prev-5e-3 {
			t.Errorf("CDF decreasing at x=%g: %g after %g", x, agg, prev)
		}
		prev = agg
	}
}
