package laplace

import (
	"fmt"
	"math"
)

// EulerOptions configures the Abate-Whitt Euler inversion algorithm.
type EulerOptions struct {
	// A controls the discretization error (~ e^{-A}); default 18.4 (~1e-8).
	A float64
	// Terms is the base number of series terms (default 15).
	Terms int
	// BinomialTerms is the Euler-averaging depth (default 11).
	BinomialTerms int
}

func (o *EulerOptions) withDefaults() EulerOptions {
	cfg := EulerOptions{A: 18.4, Terms: 15, BinomialTerms: 11}
	if o != nil {
		if o.A > 0 {
			cfg.A = o.A
		}
		if o.Terms > 0 {
			cfg.Terms = o.Terms
		}
		if o.BinomialTerms > 0 {
			cfg.BinomialTerms = o.BinomialTerms
		}
	}
	return cfg
}

// InvertEuler numerically inverts a one-sided Laplace transform F(s) at
// time t > 0 using the Abate-Whitt Euler algorithm (the classical
// alternating-series Bromwich discretization with Euler binomial
// averaging). The transform callback may be invoked with complex s having
// positive real part.
//
// The paper points to multi-dimensional transform inversion (its ref [11])
// as one way to obtain the reward distribution from eq. (5); this is the
// standard one-dimensional building block of those methods.
func InvertEuler(f func(s complex128) (complex128, error), t float64, opts *EulerOptions) (float64, error) {
	if f == nil {
		return 0, fmt.Errorf("%w: nil transform", ErrBadArgument)
	}
	if t <= 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return 0, fmt.Errorf("%w: inversion time %g", ErrBadArgument, t)
	}
	cfg := opts.withDefaults()

	a := cfg.A
	n := cfg.Terms
	m := cfg.BinomialTerms

	// Partial sums s_k for k = 0..n+m.
	eval := func(k int) (float64, error) {
		s := complex(a/(2*t), math.Pi*float64(k)/t)
		v, err := f(s)
		if err != nil {
			return 0, fmt.Errorf("laplace: euler term %d: %w", k, err)
		}
		if k == 0 {
			return real(v) / 2, nil
		}
		sign := 1.0
		if k%2 == 1 {
			sign = -1
		}
		return sign * real(v), nil
	}

	partial := make([]float64, n+m+1)
	var running float64
	for k := 0; k <= n+m; k++ {
		term, err := eval(k)
		if err != nil {
			return 0, err
		}
		running += term
		partial[k] = running
	}

	// Euler (binomial) averaging of the last m+1 partial sums.
	var avg float64
	binom := 1.0
	var norm float64
	for j := 0; j <= m; j++ {
		if j > 0 {
			binom = binom * float64(m-j+1) / float64(j)
		}
		avg += binom * partial[n+j]
		norm += binom
	}
	avg /= norm

	return math.Exp(a/2) / t * avg, nil
}
