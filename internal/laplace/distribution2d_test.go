package laplace

import (
	"errors"
	"math"
	"math/cmplx"
	"testing"

	"somrm/internal/brownian"
)

func TestRewardTransformViaResolventMatchesDirect(t *testing.T) {
	m := buildModel(t, 2, 3, []float64{1, 0.5}, []float64{0.3, 0.8})
	tr, err := NewTransformer(m)
	if err != nil {
		t.Fatal(err)
	}
	const tt = 0.9
	for _, v := range []complex128{0.4, complex(0.2, -0.6), complex(0, 1.3)} {
		direct, err := tr.RewardTransform(tt, v)
		if err != nil {
			t.Fatal(err)
		}
		inverted, err := tr.RewardTransformViaResolvent(tt, v, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range direct {
			if cmplx.Abs(inverted[i]-direct[i]) > 1e-5*(1+cmplx.Abs(direct[i])) {
				t.Errorf("v=%v state %d: 2D %v vs direct %v", v, i, inverted[i], direct[i])
			}
		}
	}
}

func TestRewardTransformViaResolventErrors(t *testing.T) {
	m := buildModel(t, 1, 1, []float64{1, 1}, []float64{1, 1})
	tr, err := NewTransformer(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.RewardTransformViaResolvent(0, 0, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("t=0: %v", err)
	}
	if _, err := tr.RewardTransformViaResolvent(math.NaN(), 0, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("NaN t: %v", err)
	}
}

func TestDensityViaResolventMatchesNormal(t *testing.T) {
	m := buildModel(t, 3, 3, []float64{2, 2}, []float64{1.5, 1.5})
	tr, err := NewTransformer(m)
	if err != nil {
		t.Fatal(err)
	}
	const tt = 0.6
	for _, x := range []float64{0.8, 1.2} {
		d, err := tr.DensityViaResolvent(tt, x, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := brownian.NormalPDF(x, 2*tt, 1.5*tt)
		for i := range d {
			if math.Abs(d[i]-want) > 1e-3*(1+want) {
				t.Errorf("x=%g state %d: 2D density %g, want %g", x, i, d[i], want)
			}
		}
	}
}

func TestDensityViaResolventErrors(t *testing.T) {
	m := buildModel(t, 1, 1, []float64{1, 1}, []float64{0, 1})
	tr, err := NewTransformer(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.DensityViaResolvent(1, 0, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("zero variance: %v", err)
	}
	if _, err := tr.DensityViaResolvent(0, 0, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("t=0: %v", err)
	}
}
