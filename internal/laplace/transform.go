// Package laplace evaluates and inverts the transform-domain descriptions
// of the accumulated reward (section 4 of the paper): the closed
// double-transform resolvent of eq. (5),
//
//	b**(s,v) = [sI - Q + vR - v^2/2 S]^{-1} h,
//
// the time-domain Laplace transform b*(t,v) = exp((Q - vR + v^2/2 S) t) h
// of eq. (2), the Abate-Whitt Euler algorithm for one-sided transforms, and
// Fourier/Gil-Pelaez inversion of the characteristic function for the
// density and distribution of the accumulated reward. These are the
// "fewer than 100 states" solution paths the paper describes before
// introducing the randomization method.
package laplace

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"somrm/internal/core"
	"somrm/internal/linalg"
)

// ErrBadArgument is returned for invalid arguments.
var ErrBadArgument = errors.New("laplace: invalid argument")

// Transformer evaluates transform-domain quantities of a model. It caches
// the dense generator since every evaluation densifies it anyway.
type Transformer struct {
	model *core.Model
	n     int
	q     []float64 // dense generator, row major
	r, s  []float64
}

// NewTransformer prepares transform-domain evaluation for the model.
// Intended for small models (it works densely).
func NewTransformer(m *core.Model) (*Transformer, error) {
	if m == nil {
		return nil, fmt.Errorf("%w: nil model", ErrBadArgument)
	}
	if m.HasImpulses() {
		return nil, fmt.Errorf("%w: transform solvers do not support impulse rewards", ErrBadArgument)
	}
	return &Transformer{
		model: m,
		n:     m.N(),
		q:     m.Generator().Matrix().Dense(),
		r:     m.Rates(),
		s:     m.Variances(),
	}, nil
}

// Resolvent returns b**(s,v) of eq. (5): the double (time x reward) Laplace
// transform of the accumulated reward density, one entry per initial state.
func (tr *Transformer) Resolvent(s, v complex128) ([]complex128, error) {
	n := tr.n
	a := linalg.NewCDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var val complex128
			if i == j {
				val = s + v*complex(tr.r[i], 0) - v*v/2*complex(tr.s[i], 0)
			}
			val -= complex(tr.q[i*n+j], 0)
			a.Set(i, j, val)
		}
	}
	h := make([]complex128, n)
	for i := range h {
		h[i] = 1
	}
	x, err := linalg.SolveComplexLinear(a, h)
	if err != nil {
		return nil, fmt.Errorf("laplace: resolvent: %w", err)
	}
	return x, nil
}

// RewardTransform returns b*(t,v) = exp((Q - vR + v^2/2 S) t) h, the
// double-sided Laplace transform (in the reward variable) of the density of
// B(t), one entry per initial state. It solves the linear ODE of eq. (2)
// by complex scaling-and-squaring matrix exponentiation.
func (tr *Transformer) RewardTransform(t float64, v complex128) ([]complex128, error) {
	if t < 0 || math.IsNaN(t) {
		return nil, fmt.Errorf("%w: time %g", ErrBadArgument, t)
	}
	n := tr.n
	a := linalg.NewCDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			val := complex(tr.q[i*n+j]*t, 0)
			if i == j {
				val += (-v*complex(tr.r[i], 0) + v*v/2*complex(tr.s[i], 0)) * complex(t, 0)
			}
			a.Set(i, j, val)
		}
	}
	e, err := cexpm(a)
	if err != nil {
		return nil, err
	}
	h := make([]complex128, n)
	for i := range h {
		h[i] = 1
	}
	return e.MatVec(h)
}

// CharacteristicFunction returns phi_i(omega) = E[e^{i omega B(t)} | Z(0)=i]
// = b*(t, -i*omega).
func (tr *Transformer) CharacteristicFunction(t, omega float64) ([]complex128, error) {
	return tr.RewardTransform(t, complex(0, -omega))
}

// cexpm computes exp(a) for a complex dense matrix by scaling and squaring
// with a Taylor series.
func cexpm(a *linalg.CDense) (*linalg.CDense, error) {
	n := a.Rows
	norm := cinfNorm(a)
	s := 0
	if norm > 0.5 {
		s = int(math.Ceil(math.Log2(norm / 0.5)))
	}
	scaled := a.Clone().Scale(complex(math.Pow(2, -float64(s)), 0))

	sum := linalg.CIdentity(n)
	term := linalg.CIdentity(n)
	for k := 1; k <= 64; k++ {
		next, err := term.Mul(scaled)
		if err != nil {
			return nil, fmt.Errorf("laplace: cexpm: %w", err)
		}
		term = next.Scale(complex(1/float64(k), 0))
		for i := range sum.Data {
			sum.Data[i] += term.Data[i]
		}
		if cinfNorm(term) < 1e-18*cinfNorm(sum) {
			break
		}
	}
	for i := 0; i < s; i++ {
		sq, err := sum.Mul(sum)
		if err != nil {
			return nil, fmt.Errorf("laplace: cexpm: %w", err)
		}
		sum = sq
	}
	return sum, nil
}

func cinfNorm(m *linalg.CDense) float64 {
	var mx float64
	for i := 0; i < m.Rows; i++ {
		var rs float64
		for j := 0; j < m.Cols; j++ {
			rs += cmplx.Abs(m.Data[i*m.Cols+j])
		}
		if rs > mx {
			mx = rs
		}
	}
	return mx
}
