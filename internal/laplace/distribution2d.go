package laplace

import (
	"fmt"
	"math"
	"math/cmplx"
)

// RewardTransformViaResolvent computes b*(t, v) by numerically inverting
// the double-transform resolvent b**(s, v) of eq. (5) in the time
// variable with the Euler algorithm — the first stage of the
// multi-dimensional transform inversion the paper cites (its ref [11],
// Choudhury-Lucantoni-Whitt). The direct matrix-exponential route
// (RewardTransform) is faster and more accurate; this path exists to
// realize and validate the paper's eq. (5) pipeline end to end.
//
// For complex v the time function is complex-valued; its real and
// imaginary parts are inverted separately using
//
//	L{Re f}(s) = (F(s) + conj(F(conj(s))))/2,
//	L{Im f}(s) = (F(s) - conj(F(conj(s))))/(2i).
func (tr *Transformer) RewardTransformViaResolvent(t float64, v complex128, opts *EulerOptions) ([]complex128, error) {
	if t <= 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return nil, fmt.Errorf("%w: inversion time %g", ErrBadArgument, t)
	}
	// pair(s) returns (F(s), conj(F(conj(s)))) for all states at once.
	pair := func(s complex128) ([]complex128, []complex128, error) {
		x, err := tr.Resolvent(s, v)
		if err != nil {
			return nil, nil, err
		}
		xc, err := tr.Resolvent(cmplx.Conj(s), v)
		if err != nil {
			return nil, nil, err
		}
		for i := range xc {
			xc[i] = cmplx.Conj(xc[i])
		}
		return x, xc, nil
	}
	out := make([]complex128, tr.n)
	for i := 0; i < tr.n; i++ {
		i := i
		re, err := InvertEuler(func(s complex128) (complex128, error) {
			x, xc, err := pair(s)
			if err != nil {
				return 0, err
			}
			return (x[i] + xc[i]) / 2, nil
		}, t, opts)
		if err != nil {
			return nil, err
		}
		im, err := InvertEuler(func(s complex128) (complex128, error) {
			x, xc, err := pair(s)
			if err != nil {
				return 0, err
			}
			return (x[i] - xc[i]) / complex(0, 2), nil
		}, t, opts)
		if err != nil {
			return nil, err
		}
		out[i] = complex(re, im)
	}
	return out, nil
}

// DensityViaResolvent computes the density b_i(t, x) through the full
// two-dimensional inversion of eq. (5): Euler inversion in the time
// variable nested inside Fourier inversion in the reward variable. It is
// O(grid * EulerTerms * n^3) — only sensible for small models — and exists
// as an independent check of the Fourier/expm path.
func (tr *Transformer) DensityViaResolvent(t, x float64, opts *DistributionOptions) ([]float64, error) {
	if t <= 0 {
		return nil, fmt.Errorf("%w: density needs t > 0, got %g", ErrBadArgument, t)
	}
	minVar := math.Inf(1)
	for _, v := range tr.s {
		if v < minVar {
			minVar = v
		}
	}
	if minVar <= 0 {
		return nil, fmt.Errorf("%w: 2D-inversion density needs all sigma^2 > 0 (min is %g)", ErrBadArgument, minVar)
	}
	step, maxOmega := tr.frequencyGrid(t, minVar, opts)

	out := make([]float64, tr.n)
	for omega := 0.0; omega <= maxOmega; omega += step {
		phi, err := tr.RewardTransformViaResolvent(t, complex(0, -omega), nil)
		if err != nil {
			return nil, err
		}
		w := 1.0
		if omega == 0 {
			w = 0.5
		}
		c := complex(math.Cos(-omega*x), math.Sin(-omega*x))
		for i := 0; i < tr.n; i++ {
			out[i] += w * real(phi[i]*c)
		}
	}
	for i := range out {
		out[i] *= step / math.Pi
		if out[i] < 0 && out[i] > -1e-6 {
			out[i] = 0
		}
	}
	return out, nil
}
