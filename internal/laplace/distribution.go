package laplace

import (
	"fmt"
	"math"
)

// DistributionOptions configures the Fourier-based density and CDF
// inversion.
type DistributionOptions struct {
	// OmegaStep is the frequency quadrature step (default adaptive from the
	// model's time and variance scales).
	OmegaStep float64
	// MaxOmega truncates the frequency integral (default adaptive).
	MaxOmega float64
	// Tol is the tail truncation tolerance (default 1e-10).
	Tol float64
}

func (o *DistributionOptions) tol() float64 {
	if o != nil && o.Tol > 0 {
		return o.Tol
	}
	return 1e-10
}

// Density computes the density vector b_i(t, x) of the accumulated reward
// by Fourier inversion of the characteristic function,
//
//	b_i(t,x) = (1/2pi) Integral phi_i(omega) e^{-i omega x} d omega.
//
// It requires every state variance to be positive (otherwise the
// distribution can carry atoms and the integral does not converge
// absolutely); use CDF for mixed cases.
func (tr *Transformer) Density(t, x float64, opts *DistributionOptions) ([]float64, error) {
	if t <= 0 {
		return nil, fmt.Errorf("%w: density needs t > 0, got %g", ErrBadArgument, t)
	}
	minVar := math.Inf(1)
	for _, v := range tr.s {
		if v < minVar {
			minVar = v
		}
	}
	if minVar <= 0 {
		return nil, fmt.Errorf("%w: Fourier density needs all sigma^2 > 0 (min is %g)", ErrBadArgument, minVar)
	}
	step, maxOmega := tr.frequencyGrid(t, minVar, opts)

	// Trapezoid quadrature over omega in [-maxOmega, maxOmega], exploiting
	// phi(-omega) = conj(phi(omega)): integrate omega >= 0 and double the
	// real part.
	out := make([]float64, tr.n)
	half := 0.5
	for omega := 0.0; omega <= maxOmega; omega += step {
		phi, err := tr.CharacteristicFunction(t, omega)
		if err != nil {
			return nil, err
		}
		w := 1.0
		if omega == 0 {
			w = half
		}
		c := complex(math.Cos(-omega*x), math.Sin(-omega*x))
		for i := 0; i < tr.n; i++ {
			out[i] += w * real(phi[i]*c)
		}
	}
	for i := range out {
		out[i] *= step / math.Pi
		if out[i] < 0 && out[i] > -1e-9 {
			out[i] = 0
		}
	}
	return out, nil
}

// CDF computes F_i(t, x) = P(B(t) <= x | Z(0)=i) with the Gil-Pelaez
// inversion formula,
//
//	F(x) = 1/2 - (1/pi) Integral_0^inf Im[phi(omega) e^{-i omega x}]/omega d omega,
//
// which converges also when some state variances are zero (first-order
// models with atoms in the reward distribution).
func (tr *Transformer) CDF(t, x float64, opts *DistributionOptions) ([]float64, error) {
	if t <= 0 {
		return nil, fmt.Errorf("%w: CDF needs t > 0, got %g", ErrBadArgument, t)
	}
	minVar := 0.0
	for i, v := range tr.s {
		if i == 0 || v < minVar {
			minVar = v
		}
	}
	step, maxOmega := tr.frequencyGrid(t, minVar, opts)

	out := make([]float64, tr.n)
	for i := range out {
		out[i] = 0.5
	}
	// Midpoint rule on (0, maxOmega] avoids the omega=0 singularity.
	for omega := step / 2; omega <= maxOmega; omega += step {
		phi, err := tr.CharacteristicFunction(t, omega)
		if err != nil {
			return nil, err
		}
		c := complex(math.Cos(-omega*x), math.Sin(-omega*x))
		for i := 0; i < tr.n; i++ {
			out[i] -= step / math.Pi * imag(phi[i]*c) / omega
		}
	}
	for i := range out {
		if out[i] < 0 {
			out[i] = 0
		}
		if out[i] > 1 {
			out[i] = 1
		}
	}
	return out, nil
}

// CDFBatch computes F_i(t, x) for many x values at once, evaluating the
// characteristic function once per frequency instead of once per (x,
// frequency) pair — the dominant cost is the complex matrix exponential
// per frequency, so batching is ~len(xs) times faster than repeated CDF
// calls. Used by the Figures 5-7 harness for the exact-CDF overlay.
func (tr *Transformer) CDFBatch(t float64, xs []float64, opts *DistributionOptions) ([][]float64, error) {
	if t <= 0 {
		return nil, fmt.Errorf("%w: CDF needs t > 0, got %g", ErrBadArgument, t)
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("%w: no evaluation points", ErrBadArgument)
	}
	minVar := 0.0
	for i, v := range tr.s {
		if i == 0 || v < minVar {
			minVar = v
		}
	}
	step, maxOmega := tr.frequencyGrid(t, minVar, opts)

	out := make([][]float64, len(xs))
	for k := range out {
		out[k] = make([]float64, tr.n)
		for i := range out[k] {
			out[k][i] = 0.5
		}
	}
	for omega := step / 2; omega <= maxOmega; omega += step {
		phi, err := tr.CharacteristicFunction(t, omega)
		if err != nil {
			return nil, err
		}
		for k, x := range xs {
			c := complex(math.Cos(-omega*x), math.Sin(-omega*x))
			for i := 0; i < tr.n; i++ {
				out[k][i] -= step / math.Pi * imag(phi[i]*c) / omega
			}
		}
	}
	for k := range out {
		for i := range out[k] {
			if out[k][i] < 0 {
				out[k][i] = 0
			}
			if out[k][i] > 1 {
				out[k][i] = 1
			}
		}
	}
	return out, nil
}

// frequencyGrid picks the quadrature step and truncation point. The step
// controls aliasing: with step delta the inversion wraps at period
// 2pi/delta, so delta is chosen to cover roughly +-8 standard deviations
// around the mean reward. Truncation uses the Gaussian decay
// |phi(omega)| <= e^{-omega^2 minVar t/2} when minVar > 0, otherwise a
// heuristic multiple of the aliasing period.
func (tr *Transformer) frequencyGrid(t, minVar float64, opts *DistributionOptions) (step, maxOmega float64) {
	if opts != nil && opts.OmegaStep > 0 && opts.MaxOmega > 0 {
		return opts.OmegaStep, opts.MaxOmega
	}
	// Scale estimates from the per-state extremes.
	maxAbsMean := 0.0
	maxVar := 0.0
	for i := range tr.r {
		if a := math.Abs(tr.r[i]) * t; a > maxAbsMean {
			maxAbsMean = a
		}
		if v := tr.s[i] * t; v > maxVar {
			maxVar = v
		}
	}
	span := 2*maxAbsMean + 16*math.Sqrt(maxVar) + 1
	step = 2 * math.Pi / span
	tol := opts.tol()
	if minVar > 0 {
		// e^{-omega^2 minVar t / 2} <= tol.
		maxOmega = math.Sqrt(2 * math.Log(1/tol) / (minVar * t))
	} else {
		maxOmega = 400 * step
	}
	if opts != nil && opts.OmegaStep > 0 {
		step = opts.OmegaStep
	}
	if opts != nil && opts.MaxOmega > 0 {
		maxOmega = opts.MaxOmega
	}
	return step, maxOmega
}
